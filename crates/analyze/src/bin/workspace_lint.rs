//! Workspace source-convention lint driver.
//!
//! Run with `cargo run -p fuseconv-analyze --bin workspace-lint`. Checks
//! conventions the compiler does not enforce on its own:
//!
//! 1. every crate root carries `#![forbid(unsafe_code)]` and
//!    `#![warn(missing_docs)]` (binaries: at least `forbid(unsafe_code)`);
//! 2. no `.unwrap()` in simulator and latency-model non-test code — hot
//!    loops must propagate errors, not abort;
//! 3. no bare `as u64`/`as u32` casts in the latency accounting — cycle
//!    arithmetic must use the checked/saturating helpers;
//! 4. every `#[allow(...)]` attribute anywhere in the workspace (crate
//!    sources, `examples/`, `tests/`) carries a trailing `// reason:`
//!    comment on the same line justifying the suppression;
//! 5. no bare `println!`/`eprintln!` in library-crate non-test code —
//!    libraries report through return values and sinks, not stdio
//!    (binaries, examples and tests are exempt);
//! 6. no `std::time::Instant::now` in library-crate non-test code
//!    outside `crates/telemetry` — host timing goes through
//!    `fuseconv_telemetry::Stopwatch` (or spans) so one crate owns the
//!    clock (binaries, examples and tests are exempt);
//! 7. every `pub` item in `crates/serve` non-test code carries a `///`
//!    doc comment — the serving simulator is the workspace's newest
//!    public surface and `#![warn(missing_docs)]` alone only warns
//!    (`pub use` re-exports and `pub(crate)` items are exempt; modules
//!    document themselves with inner `//!` comments);
//! 8. the same doc-comment rule for `crates/analyze` library code — the
//!    analyzer's diagnostic vocabulary and rule entry points are public
//!    contract surface too (its `src/bin/` tree, this driver included,
//!    is a binary and exempt like rules 5/6);
//! 9. the same doc-comment rule for `crates/latency` library code — the
//!    fold-plan IR (`ir.rs`) made the latency model's types a public
//!    analysis substrate, so its `pub` surface is documented like the
//!    serve and analyze crates;
//! 10. the same doc-comment rule for `crates/telemetry` library code —
//!     the quantile sketch made the telemetry crate part of the serving
//!     observability contract (sketch error bound, manifest schema), so
//!     its `pub` surface is documented like the other three.
//!
//! Exits nonzero when any convention is violated, printing one line per
//! finding.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fs;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

/// The workspace root, resolved from this crate's manifest directory.
fn workspace_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../..")
}

/// Reads a source file, panicking with a clear message if it vanished
/// mid-run (a lint driver has no caller to propagate to).
fn read(path: &Path) -> String {
    match fs::read_to_string(path) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("workspace-lint: cannot read {}: {e}", path.display());
            String::new()
        }
    }
}

/// The portion of a source file before its `#[cfg(test)]` module.
fn non_test_code(source: &str) -> &str {
    match source.find("#[cfg(test)]") {
        Some(idx) => &source[..idx],
        None => source,
    }
}

/// 1-indexed line number of a byte offset.
fn line_of(source: &str, offset: usize) -> usize {
    source[..offset].bytes().filter(|&b| b == b'\n').count() + 1
}

/// Checks that a crate root declares the two lint attributes.
fn check_lint_attrs(root: &Path, rel: &str, require_docs: bool, findings: &mut Vec<String>) {
    let path = root.join(rel);
    let source = read(&path);
    if !source.contains("#![forbid(unsafe_code)]") {
        findings.push(format!("{rel}: missing #![forbid(unsafe_code)]"));
    }
    if require_docs && !source.contains("#![warn(missing_docs)]") {
        findings.push(format!("{rel}: missing #![warn(missing_docs)]"));
    }
}

/// Flags every occurrence of `needle` in a file's non-test code.
fn check_forbidden(root: &Path, rel: &str, needle: &str, why: &str, findings: &mut Vec<String>) {
    let path = root.join(rel);
    let source = read(&path);
    let head = non_test_code(&source);
    let mut from = 0;
    while let Some(idx) = head[from..].find(needle) {
        let at = from + idx;
        findings.push(format!(
            "{rel}:{}: `{}` in non-test code ({why})",
            line_of(head, at),
            needle.trim()
        ));
        from = at + needle.len();
    }
}

/// Every `.rs` file under a directory tree, sorted for stable output.
fn rs_files(dir: &Path) -> Vec<PathBuf> {
    let mut out = Vec::new();
    let mut stack = vec![dir.to_path_buf()];
    while let Some(d) = stack.pop() {
        if let Ok(entries) = fs::read_dir(&d) {
            for entry in entries.flatten() {
                let p = entry.path();
                if p.is_dir() {
                    stack.push(p);
                } else if p.extension().is_some_and(|x| x == "rs") {
                    out.push(p);
                }
            }
        }
    }
    out.sort();
    out
}

/// Flags every `#[allow(...)]` attribute lacking a same-line `// reason:`
/// justification. Comment lines are skipped (prose may mention the
/// attribute); the needle is assembled so this lint never flags itself.
fn check_allow_reasons(root: &Path, rel: &str, findings: &mut Vec<String>) {
    let needle = concat!("#[", "allow(");
    let source = read(&root.join(rel));
    for (i, line) in source.lines().enumerate() {
        if line.trim_start().starts_with("//") {
            continue;
        }
        if line.contains(needle) && !line.contains("// reason:") {
            findings.push(format!(
                "{rel}:{}: `{needle}...)]` without a trailing `// reason:` comment",
                i + 1
            ));
        }
    }
}

/// Flags every `println!`/`eprintln!` in a library file's non-test,
/// non-comment code. The needles are assembled so this lint (a binary,
/// itself exempt) never flags its own source when scanned.
fn check_no_stdio_macros(root: &Path, rel: &str, findings: &mut Vec<String>) {
    let needles = [concat!("print", "ln!("), concat!("eprint", "ln!(")];
    let source = read(&root.join(rel));
    for (i, line) in non_test_code(&source).lines().enumerate() {
        if line.trim_start().starts_with("//") {
            continue;
        }
        for needle in needles {
            if line.contains(needle) {
                findings.push(format!(
                    "{rel}:{}: `{needle}...)` in library non-test code \
                     (report through return values or sinks, not stdio)",
                    i + 1
                ));
            }
        }
    }
}

/// Flags host-clock reads in a library file's non-test, non-comment
/// code. Host timing must flow through `fuseconv_telemetry::Stopwatch`
/// so profiler spans and bench timings share one clock discipline;
/// `crates/telemetry` is the sanctioned home of the call and is skipped
/// by the caller. The needle is assembled so this lint (a binary,
/// itself exempt) never flags its own source when scanned.
fn check_no_instant_now(root: &Path, rel: &str, findings: &mut Vec<String>) {
    let needle = concat!("Instant", "::now(");
    let source = read(&root.join(rel));
    for (i, line) in non_test_code(&source).lines().enumerate() {
        if line.trim_start().starts_with("//") {
            continue;
        }
        if line.contains(needle) {
            findings.push(format!(
                "{rel}:{}: `{needle}...)` in library non-test code (time \
                 through fuseconv_telemetry::Stopwatch; only crates/telemetry \
                 reads the host clock)",
                i + 1
            ));
        }
    }
}

/// Flags every `pub` item in a file's non-test code that lacks a `///`
/// doc comment on the line above (attribute lines in between are
/// skipped). `pub use` re-exports, `pub(crate)`/`pub(super)` visibility
/// restrictions and `pub mod` declarations are exempt — re-exports
/// inherit docs, restricted items are not public API, and modules carry
/// inner `//!` docs.
fn check_pub_docs(root: &Path, rel: &str, findings: &mut Vec<String>) {
    let source = read(&root.join(rel));
    let lines: Vec<&str> = non_test_code(&source).lines().collect();
    for (i, line) in lines.iter().enumerate() {
        let t = line.trim_start();
        if !t.starts_with("pub ") || t.starts_with("pub use ") || t.starts_with("pub mod ") {
            continue;
        }
        // Walk back over attributes to the nearest prose line; a doc
        // comment there attaches to this item.
        let mut j = i;
        let documented = loop {
            if j == 0 {
                break false;
            }
            j -= 1;
            let prev = lines[j].trim_start();
            if prev.starts_with("///") {
                break true;
            }
            if prev.starts_with("#[") || prev.ends_with(")]") || prev.ends_with(']') {
                continue;
            }
            break false;
        };
        if !documented {
            findings.push(format!(
                "{rel}:{}: undocumented `pub` item (public API requires /// docs)",
                i + 1
            ));
        }
    }
}

/// Every `crates/*/src/lib.rs`, sorted for stable output.
fn crate_roots(root: &Path) -> Vec<String> {
    let mut out = Vec::new();
    let crates = root.join("crates");
    if let Ok(entries) = fs::read_dir(&crates) {
        for entry in entries.flatten() {
            let lib = entry.path().join("src/lib.rs");
            if lib.is_file() {
                out.push(format!(
                    "crates/{}/src/lib.rs",
                    entry.file_name().to_string_lossy()
                ));
            }
        }
    }
    out.sort();
    out
}

fn main() -> ExitCode {
    let root = workspace_root();
    let mut findings = Vec::new();

    // Rule 1: lint attributes on every crate root (and the binaries).
    let mut roots = crate_roots(&root);
    roots.push("src/lib.rs".to_string());
    for rel in &roots {
        check_lint_attrs(&root, rel, true, &mut findings);
    }
    check_lint_attrs(&root, "crates/cli/src/main.rs", true, &mut findings);
    check_lint_attrs(
        &root,
        "crates/analyze/src/bin/workspace_lint.rs",
        false,
        &mut findings,
    );

    // Rule 2: no `.unwrap()` in simulator / latency-model non-test code.
    for dir in ["crates/systolic/src", "crates/latency/src"] {
        let mut files: Vec<_> = fs::read_dir(root.join(dir))
            .into_iter()
            .flatten()
            .flatten()
            .map(|e| e.path())
            .filter(|p| p.extension().is_some_and(|x| x == "rs"))
            .collect();
        files.sort();
        for path in files {
            let rel = format!(
                "{dir}/{}",
                path.file_name().unwrap_or_default().to_string_lossy()
            );
            check_forbidden(
                &root,
                &rel,
                ".unwrap()",
                "propagate errors in simulator hot paths",
                &mut findings,
            );
        }
    }

    // Rule 3: no bare widening casts in the latency accounting.
    for rel in [
        "crates/latency/src/map.rs",
        "crates/latency/src/plan.rs",
        "crates/latency/src/audit.rs",
    ] {
        for needle in [" as u64", " as u32"] {
            check_forbidden(
                &root,
                rel,
                needle,
                "use the checked/saturating conversion helpers",
                &mut findings,
            );
        }
    }

    // Rule 4: every lint suppression is justified — workspace-wide,
    // including the umbrella crate, examples and integration tests.
    let mut scan_dirs = vec![root.join("src"), root.join("examples"), root.join("tests")];
    if let Ok(entries) = fs::read_dir(root.join("crates")) {
        for entry in entries.flatten() {
            scan_dirs.push(entry.path().join("src"));
        }
    }
    scan_dirs.sort();
    for dir in scan_dirs {
        for path in rs_files(&dir) {
            let rel = path
                .strip_prefix(&root)
                .unwrap_or(&path)
                .to_string_lossy()
                .into_owned();
            check_allow_reasons(&root, &rel, &mut findings);
        }
    }

    // Rule 5: no stdio macros in library crates. Library crates are the
    // ones with a `src/lib.rs` (so `crates/cli`, a pure binary, is
    // exempt), plus the umbrella crate; their `src/bin/` trees are
    // binaries and stay exempt.
    let mut lib_dirs = vec![root.join("src")];
    if let Ok(entries) = fs::read_dir(root.join("crates")) {
        for entry in entries.flatten() {
            let src = entry.path().join("src");
            if src.join("lib.rs").is_file() {
                lib_dirs.push(src);
            }
        }
    }
    lib_dirs.sort();
    for dir in &lib_dirs {
        let bin_dir = dir.join("bin");
        for path in rs_files(dir) {
            if path.starts_with(&bin_dir) {
                continue;
            }
            let rel = path
                .strip_prefix(&root)
                .unwrap_or(&path)
                .to_string_lossy()
                .into_owned();
            check_no_stdio_macros(&root, &rel, &mut findings);
        }
    }

    // Rule 6: host-clock discipline — only `crates/telemetry` may call
    // `Instant::now`; every other library crate times through its
    // `Stopwatch` (same library-crate set and binary exemptions as
    // rule 5).
    let telemetry_src = root.join("crates/telemetry/src");
    for dir in &lib_dirs {
        if *dir == telemetry_src {
            continue;
        }
        let bin_dir = dir.join("bin");
        for path in rs_files(dir) {
            if path.starts_with(&bin_dir) {
                continue;
            }
            let rel = path
                .strip_prefix(&root)
                .unwrap_or(&path)
                .to_string_lossy()
                .into_owned();
            check_no_instant_now(&root, &rel, &mut findings);
        }
    }

    // Rules 7–10: the serving simulator's, the analyzer's, the latency
    // model's and the telemetry crate's public APIs are fully
    // documented. The analyzer's `src/bin/` tree (this driver) is a
    // binary and exempt, like rules 5/6.
    for dir in [
        root.join("crates/serve/src"),
        root.join("crates/analyze/src"),
        root.join("crates/latency/src"),
        root.join("crates/telemetry/src"),
    ] {
        let bin_dir = dir.join("bin");
        for path in rs_files(&dir) {
            if path.starts_with(&bin_dir) {
                continue;
            }
            let rel = path
                .strip_prefix(&root)
                .unwrap_or(&path)
                .to_string_lossy()
                .into_owned();
            check_pub_docs(&root, &rel, &mut findings);
        }
    }

    if findings.is_empty() {
        println!(
            "workspace-lint: {} crate roots, the latency/simulator sources, library \
             stdio and host-clock discipline, serve/analyze/latency/telemetry API \
             docs, and all workspace/example/test suppressions are clean",
            roots.len() + 1
        );
        ExitCode::SUCCESS
    } else {
        for f in &findings {
            println!("workspace-lint: {f}");
        }
        println!("workspace-lint: {} violation(s)", findings.len());
        ExitCode::FAILURE
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Runs `check_pub_docs` on `source` written to a scratch file,
    /// returning the findings it produced.
    fn pub_doc_findings(name: &str, source: &str) -> Vec<String> {
        let dir = std::env::temp_dir().join("fuseconv-workspace-lint-test");
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join(name);
        fs::write(&path, source).unwrap();
        let mut findings = Vec::new();
        check_pub_docs(&dir, name, &mut findings);
        fs::remove_file(&path).unwrap();
        findings
    }

    #[test]
    fn undocumented_pub_items_are_flagged() {
        let findings = pub_doc_findings(
            "undocumented.rs",
            "pub fn naked() {}\n\n#[derive(Debug)]\npub struct AlsoNaked;\n",
        );
        assert_eq!(findings.len(), 2, "{findings:?}");
        assert!(findings[0].contains("undocumented.rs:1"), "{findings:?}");
        // The attribute walk-back must not mistake `#[derive(..)]` for
        // a doc comment.
        assert!(findings[1].contains("undocumented.rs:4"), "{findings:?}");
    }

    #[test]
    fn documented_and_exempt_pub_items_pass() {
        let findings = pub_doc_findings(
            "documented.rs",
            concat!(
                "/// Documented directly.\n",
                "pub fn fine() {}\n",
                "/// Documented through an attribute stack.\n",
                "#[derive(Debug)]\n",
                "pub struct Fine;\n",
                "pub use other::Thing;\n",
                "pub mod submodule;\n",
                "pub(crate) fn internal() {}\n",
            ),
        );
        assert!(findings.is_empty(), "{findings:?}");
    }

    #[test]
    fn undocumented_trait_and_type_items_are_flagged() {
        // The rule-9 extension to `crates/latency` covers the fold-plan
        // IR's trait/type-alias-heavy surface: all of these must carry
        // docs, and a preceding `//` line comment does not count.
        let findings = pub_doc_findings(
            "ir_like.rs",
            concat!(
                "pub trait NakedTrait {}\n",
                "pub type NakedAlias = u64;\n",
                "// a line comment is not a doc comment\n",
                "pub const NAKED: u32 = 0;\n",
            ),
        );
        assert_eq!(findings.len(), 3, "{findings:?}");
        assert!(findings[0].contains("ir_like.rs:1"), "{findings:?}");
        assert!(findings[1].contains("ir_like.rs:2"), "{findings:?}");
        assert!(findings[2].contains("ir_like.rs:4"), "{findings:?}");
    }

    #[test]
    fn telemetry_sources_pass_the_rule_10_pub_docs_check() {
        // Rule 10 extends the pub-docs rule to `crates/telemetry`; the
        // crate's real sources must already satisfy it (negative
        // coverage lives in `undocumented_pub_items_are_flagged`).
        let root = workspace_root();
        let dir = root.join("crates/telemetry/src");
        let mut findings = Vec::new();
        for path in rs_files(&dir) {
            let rel = path
                .strip_prefix(&root)
                .unwrap_or(&path)
                .to_string_lossy()
                .into_owned();
            check_pub_docs(&root, &rel, &mut findings);
        }
        assert!(findings.is_empty(), "{findings:?}");
    }

    #[test]
    fn undocumented_sketch_like_items_are_flagged() {
        // A rule-10 regression guard: associated consts and methods of
        // a sketch-like surface need docs like everything else.
        let findings = pub_doc_findings(
            "sketch_like.rs",
            concat!(
                "/// Documented type.\n",
                "pub struct Sketch;\n",
                "impl Sketch {\n",
                "    pub const BOUND: f64 = 0.015625;\n",
                "    pub fn quantile(&self) -> u64 { 0 }\n",
                "}\n",
            ),
        );
        assert_eq!(findings.len(), 2, "{findings:?}");
        assert!(findings[0].contains("sketch_like.rs:4"), "{findings:?}");
        assert!(findings[1].contains("sketch_like.rs:5"), "{findings:?}");
    }

    #[test]
    fn test_module_code_is_exempt() {
        let findings = pub_doc_findings(
            "test_only.rs",
            "#[cfg(test)]\nmod tests {\n    pub fn helper() {}\n}\n",
        );
        assert!(findings.is_empty(), "{findings:?}");
    }
}

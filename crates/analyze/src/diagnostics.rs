//! Structured diagnostics: rule identifiers, severities and reports.
//!
//! Every check the analyzer runs is identified by a stable [`RuleId`] so
//! CI, tests and humans can match on findings without parsing prose. A
//! [`Diagnostic`] carries the rule, a severity, the offending dependence
//! vector when one exists, and a suggested fix; a [`Report`] aggregates
//! diagnostics and renders them as text or JSON (hand-rolled — the
//! workspace carries no serde).

use std::fmt;

/// Stable identifier of one analyzer rule.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[non_exhaustive]
pub enum RuleId {
    /// A variable is assigned by more than one recurrence (§II's single
    /// assignment condition).
    Ria001MultipleAssignment,
    /// A term's index offset is not a constant vector (§II's constant
    /// offset condition — the direct-convolution pathology of §III-A).
    Ria002NonConstantOffset,
    /// A term's index rank disagrees with its recurrence's iteration rank.
    Ria003RankMismatch,
    /// The linear schedule violates a dependence: `τ·d < 1`.
    Sch001ScheduleViolatesDependence,
    /// A dependence's space projection spans more than one PE hop.
    Loc001NonLocalProjection,
    /// A dependence needs the per-row weight-broadcast link (§IV-C-1) and
    /// the array does not provide it.
    Loc002BroadcastLinkRequired,
    /// The operator's cycle accounting overflows `u64`.
    Res001CycleArithmeticOverflow,
    /// The operator has zero-sized (degenerate) dimensions.
    Res002DegenerateOp,
    /// An operand footprint exceeds the 32-bit SRAM element address space
    /// assumed by the trace sinks.
    Res003SramAddressOverflow,
    /// The operator lowers to a single-column GEMM: at most one array
    /// column is ever busy, bounding utilization by `1/W` (§III-B,
    /// Fig. 1(d)).
    Utl001SingleColumnGemm,
    /// The operator lowers to a single-row GEMM: at most one array row is
    /// ever busy, bounding utilization by `1/H`.
    Utl002SingleRowGemm,
    /// The operator's fold plan is compute-stall dominated: the cycle-
    /// accounted counters predict ≥ 90% of compute-phase PE slots idle.
    Utl003ComputeStallDominated,
    /// The fold plan leaves part of the output iteration space uncovered:
    /// some output elements are computed by no fold.
    Plan001CoverageGap,
    /// The fold plan computes part of the output iteration space more than
    /// once (double-compute between folds).
    Plan002Overlap,
    /// A fold's tile occupancy exceeds the physical array dimensions.
    Plan003OversizedTile,
    /// The plan's summed per-fold MACs disagree with the operator's
    /// iteration-space MAC total.
    Plan004MacsMismatch,
    /// A single fold's operand working set exceeds an SRAM buffer even
    /// single-buffered — the fold cannot be resident at all.
    Mem001FoldExceedsSram,
    /// A fold's double-buffered working set (2x, overlapping next-fold
    /// prefetch) exceeds an SRAM buffer: fills serialize against compute.
    Mem002DoubleBufferExceedsSram,
    /// A fold needs more DRAM bandwidth than its compute window covers:
    /// the fold is bandwidth-bound at the modeled array size.
    Mem003BandwidthInfeasible,
    /// Consecutive blocks in a topology disagree on the tensor shape
    /// flowing between them.
    Shp001ShapeMismatch,
    /// A FuSe substitution changes the output shape of the depthwise block
    /// it replaces.
    Shp002SubstitutionShapeChange,
    /// Offered load ρ = Σ rateᵢ·E[costᵢ] / pod capacity ≥ 1: the open-loop
    /// arrival process outruns the pod and the queue diverges.
    Srv001PodOverload,
    /// A network's zero-queueing latency floor on its cheapest array
    /// already exceeds the configured absolute SLO budget.
    Srv002SloUnattainable,
    /// A network in the mix has no provisioned shape bucket under
    /// bucketed batching: every one of its requests is rejected at
    /// admission.
    Srv003BucketUncovered,
    /// The LPT shard plan is illegal: shares fail to partition the op
    /// list, disagree with recomputed per-array sums, or an op's fold
    /// plan fails the PLAN audit on its target array.
    Srv004ShardPlanIllegal,
    /// The bounded admission queue is statically guaranteed to drop:
    /// expected arrivals during one worst-case service window exceed
    /// the configured capacity even at ρ < 1.
    Srv005QueueUndersized,
    /// Preemption is configured but statically dead (zero high-priority
    /// traffic) or perverse (refill penalty provably exceeds the best
    /// possible latency cut).
    Srv006PreemptionDeadOrPerverse,
    /// An array is never the cheapest choice for any network under
    /// whole-request dispatch: predicted utilization 0 until every
    /// cheaper array saturates.
    Srv007StaticallyDeadArray,
    /// A producer/consumer op pair is statically fusible: a dependence
    /// edge connects their fold plans, the intermediate tile fits on-array
    /// residency, and keeping it there saves the reported SRAM bytes.
    Fus001FusiblePair,
    /// An intermediate tile exceeds the array's accumulator residency
    /// (rows × cols elements): on-array forwarding is impossible.
    Fus002ResidencyExceeded,
    /// The lifted fold-plan dependence graph contains a cycle: no legal
    /// schedule, fused or not, exists.
    Fus003DependenceCycle,
    /// The consumer's dataflow preloads its inputs during fill, so a
    /// producer cannot forward results to it on-array.
    Fus004DataflowMismatch,
    /// An op's output is consumed by no later op in its block: the folds
    /// computing it are dead work.
    Fus005DeadValue,
    /// Per-network fusion headroom: layers ranked by the SRAM round-trip
    /// traffic fusion would avoid.
    Fus006FusionHeadroom,
}

impl RuleId {
    /// Number of rules the analyzer ships. Tied to [`Self::ALL`]'s
    /// length and to the exhaustive match in [`Self::ordinal`], so a
    /// new `RuleId` variant fails to compile until it is registered in
    /// both places — catalogue registration cannot be forgotten.
    pub const COUNT: usize = 34;

    /// Every rule the analyzer ships, in catalogue order. Pinned by the
    /// `tests/golden/analyze_schema.json` regression test: extending the
    /// list is additive, renaming or removing an entry is a breaking
    /// change to the machine-readable report surface.
    pub const ALL: [RuleId; RuleId::COUNT] = [
        RuleId::Ria001MultipleAssignment,
        RuleId::Ria002NonConstantOffset,
        RuleId::Ria003RankMismatch,
        RuleId::Sch001ScheduleViolatesDependence,
        RuleId::Loc001NonLocalProjection,
        RuleId::Loc002BroadcastLinkRequired,
        RuleId::Res001CycleArithmeticOverflow,
        RuleId::Res002DegenerateOp,
        RuleId::Res003SramAddressOverflow,
        RuleId::Utl001SingleColumnGemm,
        RuleId::Utl002SingleRowGemm,
        RuleId::Utl003ComputeStallDominated,
        RuleId::Plan001CoverageGap,
        RuleId::Plan002Overlap,
        RuleId::Plan003OversizedTile,
        RuleId::Plan004MacsMismatch,
        RuleId::Mem001FoldExceedsSram,
        RuleId::Mem002DoubleBufferExceedsSram,
        RuleId::Mem003BandwidthInfeasible,
        RuleId::Shp001ShapeMismatch,
        RuleId::Shp002SubstitutionShapeChange,
        RuleId::Srv001PodOverload,
        RuleId::Srv002SloUnattainable,
        RuleId::Srv003BucketUncovered,
        RuleId::Srv004ShardPlanIllegal,
        RuleId::Srv005QueueUndersized,
        RuleId::Srv006PreemptionDeadOrPerverse,
        RuleId::Srv007StaticallyDeadArray,
        RuleId::Fus001FusiblePair,
        RuleId::Fus002ResidencyExceeded,
        RuleId::Fus003DependenceCycle,
        RuleId::Fus004DataflowMismatch,
        RuleId::Fus005DeadValue,
        RuleId::Fus006FusionHeadroom,
    ];

    /// The rule's position in [`Self::ALL`]. The match is exhaustive on
    /// purpose: adding a variant without extending it (and bumping
    /// [`Self::COUNT`], which sizes `ALL`) is a compile error, and the
    /// `all_is_exhaustive_and_ordered` test pins `ALL[ordinal] == self`
    /// so the two registrations cannot drift apart.
    pub fn ordinal(self) -> usize {
        match self {
            RuleId::Ria001MultipleAssignment => 0,
            RuleId::Ria002NonConstantOffset => 1,
            RuleId::Ria003RankMismatch => 2,
            RuleId::Sch001ScheduleViolatesDependence => 3,
            RuleId::Loc001NonLocalProjection => 4,
            RuleId::Loc002BroadcastLinkRequired => 5,
            RuleId::Res001CycleArithmeticOverflow => 6,
            RuleId::Res002DegenerateOp => 7,
            RuleId::Res003SramAddressOverflow => 8,
            RuleId::Utl001SingleColumnGemm => 9,
            RuleId::Utl002SingleRowGemm => 10,
            RuleId::Utl003ComputeStallDominated => 11,
            RuleId::Plan001CoverageGap => 12,
            RuleId::Plan002Overlap => 13,
            RuleId::Plan003OversizedTile => 14,
            RuleId::Plan004MacsMismatch => 15,
            RuleId::Mem001FoldExceedsSram => 16,
            RuleId::Mem002DoubleBufferExceedsSram => 17,
            RuleId::Mem003BandwidthInfeasible => 18,
            RuleId::Shp001ShapeMismatch => 19,
            RuleId::Shp002SubstitutionShapeChange => 20,
            RuleId::Srv001PodOverload => 21,
            RuleId::Srv002SloUnattainable => 22,
            RuleId::Srv003BucketUncovered => 23,
            RuleId::Srv004ShardPlanIllegal => 24,
            RuleId::Srv005QueueUndersized => 25,
            RuleId::Srv006PreemptionDeadOrPerverse => 26,
            RuleId::Srv007StaticallyDeadArray => 27,
            RuleId::Fus001FusiblePair => 28,
            RuleId::Fus002ResidencyExceeded => 29,
            RuleId::Fus003DependenceCycle => 30,
            RuleId::Fus004DataflowMismatch => 31,
            RuleId::Fus005DeadValue => 32,
            RuleId::Fus006FusionHeadroom => 33,
        }
    }

    /// The rule's stable short code (e.g. `"SCH001"`).
    pub fn code(&self) -> &'static str {
        match self {
            RuleId::Ria001MultipleAssignment => "RIA001",
            RuleId::Ria002NonConstantOffset => "RIA002",
            RuleId::Ria003RankMismatch => "RIA003",
            RuleId::Sch001ScheduleViolatesDependence => "SCH001",
            RuleId::Loc001NonLocalProjection => "LOC001",
            RuleId::Loc002BroadcastLinkRequired => "LOC002",
            RuleId::Res001CycleArithmeticOverflow => "RES001",
            RuleId::Res002DegenerateOp => "RES002",
            RuleId::Res003SramAddressOverflow => "RES003",
            RuleId::Utl001SingleColumnGemm => "UTL001",
            RuleId::Utl002SingleRowGemm => "UTL002",
            RuleId::Utl003ComputeStallDominated => "UTL003",
            RuleId::Plan001CoverageGap => "PLAN001",
            RuleId::Plan002Overlap => "PLAN002",
            RuleId::Plan003OversizedTile => "PLAN003",
            RuleId::Plan004MacsMismatch => "PLAN004",
            RuleId::Mem001FoldExceedsSram => "MEM001",
            RuleId::Mem002DoubleBufferExceedsSram => "MEM002",
            RuleId::Mem003BandwidthInfeasible => "MEM003",
            RuleId::Shp001ShapeMismatch => "SHP001",
            RuleId::Shp002SubstitutionShapeChange => "SHP002",
            RuleId::Srv001PodOverload => "SRV001",
            RuleId::Srv002SloUnattainable => "SRV002",
            RuleId::Srv003BucketUncovered => "SRV003",
            RuleId::Srv004ShardPlanIllegal => "SRV004",
            RuleId::Srv005QueueUndersized => "SRV005",
            RuleId::Srv006PreemptionDeadOrPerverse => "SRV006",
            RuleId::Srv007StaticallyDeadArray => "SRV007",
            RuleId::Fus001FusiblePair => "FUS001",
            RuleId::Fus002ResidencyExceeded => "FUS002",
            RuleId::Fus003DependenceCycle => "FUS003",
            RuleId::Fus004DataflowMismatch => "FUS004",
            RuleId::Fus005DeadValue => "FUS005",
            RuleId::Fus006FusionHeadroom => "FUS006",
        }
    }

    /// One-line description of what the rule checks.
    pub fn description(&self) -> &'static str {
        match self {
            RuleId::Ria001MultipleAssignment => {
                "single assignment: each variable defined by exactly one recurrence"
            }
            RuleId::Ria002NonConstantOffset => {
                "regular iterative algorithm: every index offset is constant"
            }
            RuleId::Ria003RankMismatch => {
                "every term indexes the full iteration vector of its recurrence"
            }
            RuleId::Sch001ScheduleViolatesDependence => {
                "schedule legality: tau . d >= 1 for every dependence vector d"
            }
            RuleId::Loc001NonLocalProjection => {
                "locality: space-projected dependences reach nearest-neighbour PEs only"
            }
            RuleId::Loc002BroadcastLinkRequired => {
                "broadcast-served dependences need the per-row weight-broadcast link"
            }
            RuleId::Res001CycleArithmeticOverflow => {
                "cycle accounting must fit u64 (checked arithmetic)"
            }
            RuleId::Res002DegenerateOp => "operators must have nonzero dimensions",
            RuleId::Res003SramAddressOverflow => {
                "operand footprints must fit the 32-bit SRAM element address space"
            }
            RuleId::Utl001SingleColumnGemm => {
                "single-column GEMM lowering bounds array utilization by 1/W"
            }
            RuleId::Utl002SingleRowGemm => {
                "single-row GEMM lowering bounds array utilization by 1/H"
            }
            RuleId::Utl003ComputeStallDominated => {
                "fold plan predicts >= 90% of compute-phase PE slots idle"
            }
            RuleId::Plan001CoverageGap => {
                "fold plans must cover every output element at least once"
            }
            RuleId::Plan002Overlap => "fold plans must compute every output element at most once",
            RuleId::Plan003OversizedTile => {
                "per-fold tile occupancy must fit the physical array dims"
            }
            RuleId::Plan004MacsMismatch => {
                "per-fold MACs must sum to the operator's iteration-space total"
            }
            RuleId::Mem001FoldExceedsSram => {
                "each fold's single-buffered operand set must fit its SRAM buffer"
            }
            RuleId::Mem002DoubleBufferExceedsSram => {
                "each fold's double-buffered operand set should fit its SRAM buffer"
            }
            RuleId::Mem003BandwidthInfeasible => {
                "each fold's DRAM transfer should fit inside its compute window"
            }
            RuleId::Shp001ShapeMismatch => {
                "consecutive blocks must agree on the tensor shape between them"
            }
            RuleId::Shp002SubstitutionShapeChange => {
                "FuSe substitution must preserve the replaced block's output shape"
            }
            RuleId::Srv001PodOverload => {
                "offered load must stay below aggregate pod capacity (rho < 1)"
            }
            RuleId::Srv002SloUnattainable => {
                "each network's zero-queueing floor must fit its SLO budget"
            }
            RuleId::Srv003BucketUncovered => {
                "every workload network needs a provisioned shape bucket"
            }
            RuleId::Srv004ShardPlanIllegal => {
                "LPT shares must partition the op list with every share feasible"
            }
            RuleId::Srv005QueueUndersized => {
                "the admission queue must absorb the configured burst at rho < 1"
            }
            RuleId::Srv006PreemptionDeadOrPerverse => {
                "preemption needs live high-priority traffic and a worthwhile refill"
            }
            RuleId::Srv007StaticallyDeadArray => {
                "every array should be cheapest for some network under whole dispatch"
            }
            RuleId::Fus001FusiblePair => {
                "producer/consumer pair fusible: intermediate fits on-array residency"
            }
            RuleId::Fus002ResidencyExceeded => {
                "intermediate tile must fit rows x cols on-array elements to fuse"
            }
            RuleId::Fus003DependenceCycle => {
                "the fold dependence graph must be acyclic to schedule at all"
            }
            RuleId::Fus004DataflowMismatch => {
                "fusion needs a consumer dataflow that streams inputs during compute"
            }
            RuleId::Fus005DeadValue => "every op output should be consumed by a later op",
            RuleId::Fus006FusionHeadroom => {
                "per-network ranking of layers by avoidable SRAM round-trip traffic"
            }
        }
    }
}

impl fmt::Display for RuleId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.code())
    }
}

/// How serious a finding is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// Informational: worth knowing, nothing to fix.
    Info,
    /// Suspicious but legal — e.g. a mapping that runs correctly at `1/W`
    /// utilization.
    Warning,
    /// Illegal: the mapping or operator cannot run as described.
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Severity::Info => "info",
            Severity::Warning => "warning",
            Severity::Error => "error",
        })
    }
}

/// One analyzer finding.
#[derive(Debug, Clone, PartialEq)]
pub struct Diagnostic {
    /// The violated (or triggered) rule.
    pub rule: RuleId,
    /// Finding severity.
    pub severity: Severity,
    /// What the analyzer is looking at (a dataflow name, or
    /// `network/block/op` for operator findings).
    pub context: String,
    /// Human-readable statement of the finding.
    pub message: String,
    /// The offending dependence vector, when the rule concerns one.
    pub dependence: Option<Vec<i64>>,
    /// Suggested fix.
    pub suggestion: String,
}

impl Diagnostic {
    /// Serializes the diagnostic as one JSON object.
    pub fn to_json(&self) -> String {
        let dep = match &self.dependence {
            Some(d) => {
                let parts: Vec<String> = d.iter().map(i64::to_string).collect();
                format!("[{}]", parts.join(","))
            }
            None => "null".to_string(),
        };
        format!(
            "{{\"rule\":\"{}\",\"severity\":\"{}\",\"context\":\"{}\",\
             \"message\":\"{}\",\"dependence\":{},\"suggestion\":\"{}\"}}",
            self.rule,
            self.severity,
            json_escape(&self.context),
            json_escape(&self.message),
            dep,
            json_escape(&self.suggestion),
        )
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} [{}] {}: {}",
            self.severity, self.rule, self.context, self.message
        )?;
        if let Some(d) = &self.dependence {
            write!(f, " (dependence {d:?})")?;
        }
        if !self.suggestion.is_empty() {
            write!(f, " — fix: {}", self.suggestion)?;
        }
        Ok(())
    }
}

/// An ordered collection of diagnostics with rendering helpers.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Report {
    /// The findings, in the order they were produced.
    pub diagnostics: Vec<Diagnostic>,
}

impl Report {
    /// An empty report.
    pub fn new() -> Self {
        Report::default()
    }

    /// Appends a finding.
    pub fn push(&mut self, d: Diagnostic) {
        self.diagnostics.push(d);
    }

    /// Appends every finding of another report.
    pub fn merge(&mut self, other: Report) {
        self.diagnostics.extend(other.diagnostics);
    }

    /// Number of error-severity findings.
    pub fn error_count(&self) -> usize {
        self.count(Severity::Error)
    }

    /// Number of warning-severity findings.
    pub fn warning_count(&self) -> usize {
        self.count(Severity::Warning)
    }

    /// Whether any finding has error severity.
    pub fn has_errors(&self) -> bool {
        self.error_count() > 0
    }

    /// Findings matching a rule.
    pub fn with_rule(&self, rule: RuleId) -> Vec<&Diagnostic> {
        self.diagnostics.iter().filter(|d| d.rule == rule).collect()
    }

    fn count(&self, severity: Severity) -> usize {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == severity)
            .count()
    }

    /// Renders the report as human-readable text, one finding per line,
    /// with a trailing summary.
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        for d in &self.diagnostics {
            out.push_str(&d.to_string());
            out.push('\n');
        }
        out.push_str(&format!(
            "{} error(s), {} warning(s), {} finding(s) total\n",
            self.error_count(),
            self.warning_count(),
            self.diagnostics.len()
        ));
        out
    }

    /// Renders the report as one JSON document, with run provenance
    /// (`fuseconv-manifest-v1`) embedded under `"manifest"`.
    pub fn to_json(&self) -> String {
        let items: Vec<String> = self.diagnostics.iter().map(Diagnostic::to_json).collect();
        format!(
            "{{\"errors\":{},\"warnings\":{},\"diagnostics\":[{}],\"manifest\":{}}}",
            self.error_count(),
            self.warning_count(),
            items.join(","),
            fuseconv_telemetry::RunManifest::capture().to_json_compact()
        )
    }
}

/// Escapes a string for embedding in a JSON string literal.
pub(crate) fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Diagnostic {
        Diagnostic {
            rule: RuleId::Sch001ScheduleViolatesDependence,
            severity: Severity::Error,
            context: "output-stationary GEMM".into(),
            message: "tau = [1, 1, -1] gives tau.d = -1".into(),
            dependence: Some(vec![0, 0, 1]),
            suggestion: "use a schedule with tau.d >= 1".into(),
        }
    }

    #[test]
    fn all_is_exhaustive_and_ordered() {
        // `ordinal`'s match is exhaustive over RuleId and `ALL`'s length
        // is `COUNT`; here the two registrations are pinned against each
        // other, so a variant cannot appear in one without the other.
        assert_eq!(RuleId::ALL.len(), RuleId::COUNT);
        for (i, rule) in RuleId::ALL.iter().enumerate() {
            assert_eq!(
                rule.ordinal(),
                i,
                "{} is out of catalogue order in RuleId::ALL",
                rule.code()
            );
        }
        // Codes are unique — a copy-paste duplicate in ALL would shadow
        // a missing variant.
        let mut codes: Vec<&str> = RuleId::ALL.iter().map(RuleId::code).collect();
        codes.sort_unstable();
        codes.dedup();
        assert_eq!(codes.len(), RuleId::COUNT);
    }

    #[test]
    fn codes_are_stable() {
        assert_eq!(RuleId::Ria001MultipleAssignment.code(), "RIA001");
        assert_eq!(RuleId::Sch001ScheduleViolatesDependence.code(), "SCH001");
        assert_eq!(RuleId::Utl001SingleColumnGemm.code(), "UTL001");
        assert_eq!(RuleId::Plan001CoverageGap.code(), "PLAN001");
        assert_eq!(RuleId::Plan002Overlap.code(), "PLAN002");
        assert_eq!(RuleId::Plan003OversizedTile.code(), "PLAN003");
        assert_eq!(RuleId::Plan004MacsMismatch.code(), "PLAN004");
        assert_eq!(RuleId::Mem001FoldExceedsSram.code(), "MEM001");
        assert_eq!(RuleId::Mem002DoubleBufferExceedsSram.code(), "MEM002");
        assert_eq!(RuleId::Mem003BandwidthInfeasible.code(), "MEM003");
        assert_eq!(RuleId::Shp001ShapeMismatch.code(), "SHP001");
        assert_eq!(RuleId::Shp002SubstitutionShapeChange.code(), "SHP002");
        assert_eq!(RuleId::Srv001PodOverload.code(), "SRV001");
        assert_eq!(RuleId::Srv002SloUnattainable.code(), "SRV002");
        assert_eq!(RuleId::Srv003BucketUncovered.code(), "SRV003");
        assert_eq!(RuleId::Srv004ShardPlanIllegal.code(), "SRV004");
        assert_eq!(RuleId::Srv005QueueUndersized.code(), "SRV005");
        assert_eq!(RuleId::Srv006PreemptionDeadOrPerverse.code(), "SRV006");
        assert_eq!(RuleId::Srv007StaticallyDeadArray.code(), "SRV007");
        assert_eq!(RuleId::Fus001FusiblePair.code(), "FUS001");
        assert_eq!(RuleId::Fus002ResidencyExceeded.code(), "FUS002");
        assert_eq!(RuleId::Fus003DependenceCycle.code(), "FUS003");
        assert_eq!(RuleId::Fus004DataflowMismatch.code(), "FUS004");
        assert_eq!(RuleId::Fus005DeadValue.code(), "FUS005");
        assert_eq!(RuleId::Fus006FusionHeadroom.code(), "FUS006");
    }

    #[test]
    fn report_counts_by_severity() {
        let mut r = Report::new();
        r.push(sample());
        let mut warn = sample();
        warn.severity = Severity::Warning;
        warn.rule = RuleId::Utl001SingleColumnGemm;
        r.push(warn);
        assert_eq!(r.error_count(), 1);
        assert_eq!(r.warning_count(), 1);
        assert!(r.has_errors());
        assert_eq!(r.with_rule(RuleId::Utl001SingleColumnGemm).len(), 1);
    }

    #[test]
    fn text_rendering_mentions_rule_and_fix() {
        let mut r = Report::new();
        r.push(sample());
        let text = r.to_text();
        assert!(text.contains("SCH001"), "{text}");
        assert!(text.contains("fix:"), "{text}");
        assert!(text.contains("1 error(s)"), "{text}");
    }

    #[test]
    fn json_is_well_formed() {
        let mut r = Report::new();
        r.push(sample());
        let json = r.to_json();
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\"rule\":\"SCH001\""), "{json}");
        assert!(json.contains("\"dependence\":[0,0,1]"), "{json}");
        // Balanced braces/brackets (a cheap well-formedness proxy given
        // the workspace has no JSON parser).
        let opens = json.matches('{').count();
        let closes = json.matches('}').count();
        assert_eq!(opens, closes);
    }

    #[test]
    fn json_escapes_quotes() {
        let mut d = sample();
        d.message = "say \"hi\"".into();
        assert!(d.to_json().contains("say \\\"hi\\\""));
    }

    #[test]
    fn severities_order() {
        assert!(Severity::Error > Severity::Warning);
        assert!(Severity::Warning > Severity::Info);
    }
}

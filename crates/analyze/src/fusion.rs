//! Fusion-legality analysis (FUS001–FUS006): static liveness, dependence
//! and on-array residency proofs over the fold-plan IR.
//!
//! FuSeConv's row/col 1-D banks feed straight into the block's 1×1
//! pointwise projection, yet every fold of today's flat plan round-trips
//! its intermediate through SRAM — exactly the producer/consumer traffic
//! a fused depthwise+pointwise schedule eliminates. This module lifts
//! each candidate pair into a [`PlanIr`] ([`fuseconv_latency::ir`]) and
//! proves, statically:
//!
//! * **FUS001** — the pair is fusible: a producer→consumer dependence
//!   edge set connects their fold plans, the intermediate tile fits the
//!   array's accumulator residency (`rows × cols` elements), and keeping
//!   it on-array saves exactly the reported SRAM bytes (the
//!   `plan_high_water` delta with the intermediate dropped from the
//!   working set — the constructive check the differential tests rerun).
//! * **FUS002** — an intermediate tile exceeds `rows × cols` elements:
//!   on-array forwarding is impossible at this array size.
//! * **FUS003** — the fold dependence graph has a cycle: no schedule,
//!   fused or not, exists. Lifted plans are acyclic by construction, so
//!   this fires only on hand-mutated IRs.
//! * **FUS004** — the consumer's dataflow preloads its inputs during the
//!   fill phase (input-stationary), so the producer cannot forward
//!   results into a running fold.
//! * **FUS005** — dead value: an op's output is consumed by no later op
//!   in its block (by the slice-or-concat channel rule of
//!   [`fuseconv_models::op_consumes`]); every fold computing it is dead
//!   work.
//! * **FUS006** — per-network fusion headroom: layers ranked by the SRAM
//!   round-trip traffic fusion would avoid.

use crate::diagnostics::{Diagnostic, RuleId, Severity};
use crate::memory::MemoryBudget;
use fuseconv_latency::ir::ValueClass;
use fuseconv_latency::{Dataflow, LatencyModel, PlanIr};
use fuseconv_models::{op_consumes, Network};
use fuseconv_nn::ops::Op;

/// A statically fusible producer/consumer pair, with the proof artifacts
/// behind its FUS001 verdict.
#[derive(Debug, Clone)]
pub struct FusiblePair {
    /// Name of the block the pair lives in.
    pub block: String,
    /// The producing op (a depthwise filter or FuSe 1-D bank).
    pub producer: Op,
    /// The consuming op (the block's pointwise projection).
    pub consumer: Op,
    /// Producer→consumer dependence edges in the lifted IR.
    pub edges: usize,
    /// Largest intermediate output tile that must stay on-array (elems).
    pub tile_elems: u64,
    /// Live interval (inclusive fold indices) of the intermediate tensor
    /// in the pair's schedule, from the liveness fixpoint.
    pub interval: (usize, usize),
    /// SRAM high-water elements saved when the intermediate never stages
    /// in SRAM (the `plan_high_water` delta).
    pub saving_elems: u64,
    /// The same saving in bytes, at the budget's element width.
    pub saving_bytes: u64,
    /// Total SRAM round-trip traffic fusion avoids (producer output
    /// writes plus consumer input re-reads), in bytes.
    pub traffic_bytes: u64,
}

/// Outcome of checking one lifted producer/consumer pair.
enum PairCheck {
    Fusible {
        edges: usize,
        tile_elems: u64,
        interval: (usize, usize),
        saving_elems: u64,
        traffic_elems: u64,
    },
    ResidencyExceeded {
        tile_elems: u64,
        budget_elems: u64,
    },
    Cycle,
    DataflowMismatch,
}

/// Classifies a lifted pair IR against an array's residency budget and
/// GEMM dataflow.
fn check_pair(ir: &PlanIr, rows: u64, cols: u64, dataflow: Dataflow) -> PairCheck {
    if ir.has_cycle() {
        return PairCheck::Cycle;
    }
    if dataflow == Dataflow::InputStationary {
        return PairCheck::DataflowMismatch;
    }
    let tile_elems = ir
        .intermediates()
        .iter()
        .filter(|&&v| ir.value(v).class == ValueClass::Ofmap)
        .map(|&v| ir.value(v).elems)
        .max()
        .unwrap_or(0);
    let budget_elems = rows * cols;
    if tile_elems > budget_elems {
        return PairCheck::ResidencyExceeded {
            tile_elems,
            budget_elems,
        };
    }
    let edges = ir.nodes().iter().map(|n| n.succs.len()).sum();
    let mut inter = fuseconv_latency::ir::ValueSet::empty(ir.values().len());
    for &v in ir.intermediates() {
        inter.insert(v);
    }
    let intervals = ir.live_intervals();
    let mut interval = (usize::MAX, 0usize);
    for iv in &intervals {
        if inter.contains(iv.value) {
            interval.0 = interval.0.min(iv.start);
            interval.1 = interval.1.max(iv.end);
        }
    }
    if interval.0 == usize::MAX {
        interval = (0, 0);
    }
    let saving_elems = ir
        .high_water()
        .total()
        .saturating_sub(ir.high_water_without(ir.intermediates()).total());
    let traffic_elems = ir.intermediates().iter().map(|&v| ir.value(v).elems).sum();
    PairCheck::Fusible {
        edges,
        tile_elems,
        interval,
        saving_elems,
        traffic_elems,
    }
}

/// Diagnoses one lifted pair IR, emitting the FUS001/FUS002/FUS003/FUS004
/// finding it warrants. `pair` labels the pair in messages (e.g.
/// `` `dw 3x3` -> `pw 1x1` ``); `context` is the usual
/// `network/block` context string.
pub fn diagnose_pair_ir(
    ir: &PlanIr,
    rows: u64,
    cols: u64,
    dataflow: Dataflow,
    bytes_per_elem: u64,
    context: &str,
    pair: &str,
) -> Vec<Diagnostic> {
    match check_pair(ir, rows, cols, dataflow) {
        PairCheck::Cycle => vec![Diagnostic {
            rule: RuleId::Fus003DependenceCycle,
            severity: Severity::Error,
            context: context.to_string(),
            message: format!("{pair}: the fold dependence graph contains a cycle; no schedule (fused or not) exists"),
            dependence: None,
            suggestion: "the lifted plan pair is self-contradictory; rebuild the IR from fold_plan output".into(),
        }],
        PairCheck::DataflowMismatch => vec![Diagnostic {
            rule: RuleId::Fus004DataflowMismatch,
            severity: Severity::Warning,
            context: context.to_string(),
            message: format!(
                "{pair}: the consumer runs input-stationary, preloading its inputs during fill — the producer cannot forward results into a running fold"
            ),
            dependence: None,
            suggestion: "fuse under an output- or weight-stationary consumer dataflow, which streams inputs during compute".into(),
        }],
        PairCheck::ResidencyExceeded {
            tile_elems,
            budget_elems,
        } => vec![Diagnostic {
            rule: RuleId::Fus002ResidencyExceeded,
            severity: Severity::Warning,
            context: context.to_string(),
            message: format!(
                "{pair}: intermediate tile holds {tile_elems} elements but the array retains only {budget_elems} ({rows}x{cols}) on-array; forwarding is impossible at this array size"
            ),
            dependence: None,
            suggestion: "re-tile the producer so each output tile fits the array, or fuse on a larger array".into(),
        }],
        PairCheck::Fusible {
            edges,
            tile_elems,
            interval,
            saving_elems,
            ..
        } => vec![Diagnostic {
            rule: RuleId::Fus001FusiblePair,
            severity: Severity::Info,
            context: context.to_string(),
            message: format!(
                "{pair}: statically fusible — {edges} dependence edges, intermediate tile {tile_elems} elems fits {rows}x{cols} on-array residency over folds {}..={}; keeping it on-array saves {} bytes of SRAM high-water",
                interval.0,
                interval.1,
                saving_elems * bytes_per_elem,
            ),
            dependence: None,
            suggestion: "schedule the pair back-to-back and forward the producer's output through the array (ROADMAP item 4)".into(),
        }],
    }
}

/// Candidate producer/consumer pairs of one block's op expansion: each
/// spatial filter op (depthwise or FuSe 1-D bank) paired with the next
/// pointwise op — the block's projection, which reads its output.
fn candidate_pairs(ops: &[Op]) -> Vec<(usize, usize)> {
    let mut out = Vec::new();
    for (i, op) in ops.iter().enumerate() {
        if !matches!(op, Op::Depthwise { .. } | Op::FuSe1d { .. }) {
            continue;
        }
        if let Some(j) = ops
            .iter()
            .enumerate()
            .skip(i + 1)
            .find(|(_, o)| matches!(o, Op::Pointwise { .. }))
            .map(|(j, _)| j)
        {
            out.push((i, j));
        }
    }
    out
}

/// The statically fusible pairs of a network, with their proof artifacts.
/// Pairs that fail a legality check (residency, dataflow) are omitted —
/// [`analyze_fusion`] reports those as FUS002/FUS004 findings instead.
pub fn fusible_pairs(
    model: &LatencyModel,
    net: &Network,
    budget: &MemoryBudget,
) -> Vec<FusiblePair> {
    let rows = model.array().rows() as u64;
    let cols = model.array().cols() as u64;
    let mut out = Vec::new();
    for (block_name, block) in net.blocks() {
        let ops = block.ops();
        for (i, j) in candidate_pairs(&ops) {
            let (Ok(producer), Ok(consumer)) = (model.fold_plan(&ops[i]), model.fold_plan(&ops[j]))
            else {
                continue;
            };
            let ir = PlanIr::from_pair(&producer, &consumer);
            if let PairCheck::Fusible {
                edges,
                tile_elems,
                interval,
                saving_elems,
                traffic_elems,
            } = check_pair(&ir, rows, cols, model.dataflow())
            {
                out.push(FusiblePair {
                    block: block_name.clone(),
                    producer: ops[i],
                    consumer: ops[j],
                    edges,
                    tile_elems,
                    interval,
                    saving_elems,
                    saving_bytes: saving_elems * budget.bytes_per_elem,
                    traffic_bytes: traffic_elems * budget.bytes_per_elem,
                });
            }
        }
    }
    out
}

/// Runs the whole FUS family over a network: per-pair fusibility
/// (FUS001–FUS004), per-op dead-value findings (FUS005) and the
/// per-network fusion-headroom ranking (FUS006).
pub fn analyze_fusion(
    model: &LatencyModel,
    net: &Network,
    budget: &MemoryBudget,
) -> Vec<Diagnostic> {
    let _span = fuseconv_telemetry::span("analyze.fusion");
    let rows = model.array().rows() as u64;
    let cols = model.array().cols() as u64;
    let label = format!("{}[{}]", net.name(), net.variant_label());
    let mut out = Vec::new();
    let mut headroom: Vec<(String, String, u64)> = Vec::new();

    for (block_name, block) in net.blocks() {
        let ops = block.ops();
        let context = format!("{label}/{block_name}");
        for (i, j) in candidate_pairs(&ops) {
            let (Ok(producer), Ok(consumer)) = (model.fold_plan(&ops[i]), model.fold_plan(&ops[j]))
            else {
                continue;
            };
            let ir = PlanIr::from_pair(&producer, &consumer);
            let pair = format!("`{}` -> `{}`", ops[i], ops[j]);
            if let PairCheck::Fusible { traffic_elems, .. } =
                check_pair(&ir, rows, cols, model.dataflow())
            {
                headroom.push((
                    block_name.clone(),
                    pair.clone(),
                    traffic_elems * budget.bytes_per_elem,
                ));
            }
            out.extend(diagnose_pair_ir(
                &ir,
                rows,
                cols,
                model.dataflow(),
                budget.bytes_per_elem,
                &context,
                &pair,
            ));
        }
        out.extend(diagnose_dead_ops(model, &ops, &context));
    }

    // FUS006: rank blocks by the SRAM round-trip traffic fusion avoids.
    if !headroom.is_empty() {
        headroom.sort_by(|a, b| b.2.cmp(&a.2).then_with(|| a.0.cmp(&b.0)));
        let total: u64 = headroom.iter().map(|h| h.2).sum();
        let top: Vec<String> = headroom
            .iter()
            .take(5)
            .enumerate()
            .map(|(rank, (block, pair, bytes))| format!("{}. {block} {pair}: {bytes} B", rank + 1))
            .collect();
        out.push(Diagnostic {
            rule: RuleId::Fus006FusionHeadroom,
            severity: Severity::Info,
            context: label,
            message: format!(
                "fusion headroom: {} fusible pair(s) could avoid {total} B of SRAM round-trip traffic; top layers: {}",
                headroom.len(),
                top.join("; "),
            ),
            dependence: None,
            suggestion: "fuse the highest-traffic pairs first (ROADMAP item 4)".into(),
        });
    }
    out
}

/// FUS005: ops whose output no later op in the block consumes. The IR
/// confirms the structural verdict: lifting the op against an empty
/// consumer shows every output tile dead.
fn diagnose_dead_ops(model: &LatencyModel, ops: &[Op], context: &str) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    for (i, op) in ops.iter().enumerate() {
        // The block's last op is the block output: always consumed.
        if i + 1 == ops.len() {
            continue;
        }
        if ops[i + 1..].iter().any(|c| op_consumes(op, c)) {
            continue;
        }
        let dead_tiles = model
            .fold_plan(op)
            .map(|plan| PlanIr::from_pair(&plan, &[]).dead_values().len())
            .unwrap_or(0);
        out.push(Diagnostic {
            rule: RuleId::Fus005DeadValue,
            severity: Severity::Warning,
            context: context.to_string(),
            message: format!(
                "output of `{op}` is consumed by no later op in the block: all {dead_tiles} output tiles of its fold plan are dead work"
            ),
            dependence: None,
            suggestion: "remove the op or rewire the block so its output is read".into(),
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use fuseconv_latency::{fold_footprint, plan_high_water, FoldFootprint};
    use fuseconv_models::zoo;
    use fuseconv_nn::ops::Axis1d;
    use fuseconv_nn::FuSeVariant;
    use fuseconv_systolic::ArrayConfig;
    use fuseconv_trace::{FoldKind, FoldSpec};

    fn model() -> LatencyModel {
        LatencyModel::new(
            ArrayConfig::square(64)
                .expect("nonzero")
                .with_broadcast(true),
        )
    }

    fn budget() -> MemoryBudget {
        MemoryBudget::paper_default()
    }

    #[test]
    fn mobilenet_v2_full_has_fusible_pairs() {
        let net = zoo::mobilenet_v2().transform_all(FuSeVariant::Full);
        let pairs = fusible_pairs(&model(), &net, &budget());
        assert!(!pairs.is_empty());
        // Every fused block contributes its row and col banks.
        assert!(pairs.iter().any(|p| matches!(
            p.producer,
            Op::FuSe1d {
                axis: Axis1d::Row,
                ..
            }
        )));
        assert!(pairs.iter().any(|p| matches!(
            p.producer,
            Op::FuSe1d {
                axis: Axis1d::Col,
                ..
            }
        )));
        assert!(pairs
            .iter()
            .all(|p| matches!(p.consumer, Op::Pointwise { .. })));
    }

    #[test]
    fn fusible_verdicts_are_constructively_true() {
        // The acceptance criterion: every FUS001 verdict re-verified from
        // scratch — dependence edges exist, the intermediate's tile fits
        // the rows×cols residency budget over its live interval, and the
        // reported saving equals the measured plan_high_water delta with
        // the intermediate's streams dropped from the working set.
        let m = model();
        let b = budget();
        let net = zoo::mobilenet_v2().transform_all(FuSeVariant::Half);
        let pairs = fusible_pairs(&m, &net, &b);
        assert!(!pairs.is_empty());
        for p in &pairs {
            let producer = m.fold_plan(&p.producer).expect("plans");
            let consumer = m.fold_plan(&p.consumer).expect("plans");
            let ir = PlanIr::from_pair(&producer, &consumer);
            // Dependence edges exist and match the reported count.
            let edges: usize = ir.nodes().iter().map(|n| n.succs.len()).sum();
            assert!(edges > 0);
            assert_eq!(edges, p.edges);
            // The intermediate tile fits on-array residency.
            assert!(p.tile_elems <= 64 * 64, "{p:?}");
            assert!(p.interval.0 <= p.interval.1);
            assert!(p.interval.1 < ir.nodes().len());
            // The saving equals the high-water delta measured on the flat
            // concatenated plan with the intermediate never staged.
            let mut concat = producer.clone();
            concat.extend(consumer.iter().copied());
            let base = plan_high_water(&concat);
            let fused = producer
                .iter()
                .map(|f| {
                    let mut fp = fold_footprint(f);
                    fp.ofmap_elems = 0;
                    fp
                })
                .chain(consumer.iter().map(|f| {
                    let mut fp = fold_footprint(f);
                    fp.ifmap_elems = 0;
                    fp
                }))
                .fold(FoldFootprint::default(), FoldFootprint::max);
            let measured = base.total().saturating_sub(fused.total());
            assert_eq!(p.saving_elems, measured, "{p:?}");
            assert_eq!(p.saving_bytes, measured * b.bytes_per_elem);
        }
    }

    #[test]
    fn depthwise_baseline_pairs_are_also_fusible() {
        let net = zoo::mobilenet_v2();
        let pairs = fusible_pairs(&model(), &net, &budget());
        assert!(!pairs.is_empty());
        assert!(pairs
            .iter()
            .all(|p| matches!(p.producer, Op::Depthwise { .. })));
    }

    #[test]
    fn gemm_only_network_has_no_pairs_and_no_fus_findings() {
        // ResNet-50's baseline has no depthwise/FuSe ops at all.
        let net = zoo::resnet50();
        assert!(fusible_pairs(&model(), &net, &budget()).is_empty());
        let diags = analyze_fusion(&model(), &net, &budget());
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn analyze_fusion_emits_fus001_and_headroom() {
        let net = zoo::mobilenet_v2().transform_all(FuSeVariant::Full);
        let diags = analyze_fusion(&model(), &net, &budget());
        let fus001 = diags
            .iter()
            .filter(|d| d.rule == RuleId::Fus001FusiblePair)
            .count();
        assert_eq!(fus001, fusible_pairs(&model(), &net, &budget()).len());
        let headroom: Vec<_> = diags
            .iter()
            .filter(|d| d.rule == RuleId::Fus006FusionHeadroom)
            .collect();
        assert_eq!(headroom.len(), 1);
        assert_eq!(headroom[0].severity, Severity::Info);
        assert!(
            headroom[0].message.contains("top layers"),
            "{}",
            headroom[0].message
        );
        // No illegal-fusion findings on real zoo networks.
        assert!(diags.iter().all(|d| d.severity != Severity::Error));
        assert!(diags.iter().all(|d| d.rule != RuleId::Fus005DeadValue));
    }

    #[test]
    fn input_stationary_consumer_is_fus004() {
        let m = model().with_dataflow(Dataflow::InputStationary);
        let net = zoo::mobilenet_v2();
        let diags = analyze_fusion(&m, &net, &budget());
        assert!(diags
            .iter()
            .any(|d| d.rule == RuleId::Fus004DataflowMismatch && d.severity == Severity::Warning));
        assert!(diags.iter().all(|d| d.rule != RuleId::Fus001FusiblePair));
        assert!(fusible_pairs(&m, &net, &budget()).is_empty());
    }

    fn synthetic_spec(rows_used: u32, cols_used: u32) -> FoldSpec {
        FoldSpec {
            tag: 0,
            kind: FoldKind::OutputStationary,
            rows_used,
            cols_used,
            fill: 0,
            compute: 8,
            drain: 4,
            macs: 64,
        }
    }

    #[test]
    fn oversized_intermediate_tile_is_fus002() {
        // A hand-built producer whose output tile (rows_used × cols_used)
        // exceeds an 8×8 array's on-array residency.
        let producer = [synthetic_spec(100, 100)];
        let consumer = [synthetic_spec(8, 8)];
        let ir = PlanIr::from_pair(&producer, &consumer);
        let diags = diagnose_pair_ir(&ir, 8, 8, Dataflow::OutputStationary, 2, "test", "pair");
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].rule, RuleId::Fus002ResidencyExceeded);
        assert_eq!(diags[0].severity, Severity::Warning);
        assert!(diags[0].message.contains("10000"), "{}", diags[0].message);
    }

    #[test]
    fn dependence_cycle_is_fus003_error() {
        let producer = [synthetic_spec(8, 8)];
        let consumer = [synthetic_spec(8, 8)];
        let mut ir = PlanIr::from_pair(&producer, &consumer);
        ir.add_dependence(1, 0);
        let diags = diagnose_pair_ir(&ir, 8, 8, Dataflow::OutputStationary, 2, "test", "pair");
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].rule, RuleId::Fus003DependenceCycle);
        assert_eq!(diags[0].severity, Severity::Error);
    }

    #[test]
    fn unread_output_is_fus005() {
        // depthwise(c=7) followed only by pointwise(in_c=3): 3 neither
        // covers nor evenly slices 7 channels, so the depthwise output is
        // dead by the slice-or-concat rule.
        let ops = [Op::depthwise(8, 8, 7, 3, 1, 1), Op::pointwise(8, 8, 3, 16)];
        let diags = diagnose_dead_ops(&model(), &ops, "test");
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].rule, RuleId::Fus005DeadValue);
        assert_eq!(diags[0].severity, Severity::Warning);
        assert!(
            diags[0].message.contains("dead work"),
            "{}",
            diags[0].message
        );
    }
}

//! Static dataflow-legality analyzer for the FuSeConv reproduction.
//!
//! Before a single cycle is simulated, this crate verifies — for each
//! simulator dataflow (output-/weight-/input-stationary GEMM and the
//! row-broadcast conv1d of §IV-C) and each array × operator shape — that
//! the induced recurrence system and space–time mapping are sound:
//!
//! 1. **RIA well-formedness** (RIA001–RIA003): single assignment and
//!    constant index offsets, §II's conditions for mapping an algorithm
//!    onto a systolic array at all.
//! 2. **Schedule legality** (SCH001): `τ·d ≥ 1` for every dependence
//!    vector, so every consumer runs strictly after its producer.
//! 3. **Locality** (LOC001/LOC002): space-projected dependences reach
//!    nearest-neighbour PEs only, or ride the paper's per-row
//!    weight-broadcast link when the array provides one.
//! 4. **Resource sanity** (RES001–RES003): cycle accounting fits `u64`,
//!    no degenerate shapes, operand footprints fit SRAM addressing.
//! 5. **Utilization** (UTL001/UTL002): degenerate single-column /
//!    single-row GEMM lowerings are reported with their static
//!    utilization bound — the Fig. 1(c)–(d) argument for why im2col
//!    depthwise wastes a systolic array while FuSe fills it.
//! 6. **Fold-plan coverage** (PLAN001–PLAN004): the latency model's fold
//!    plans partition the output iteration space — no gaps, no
//!    double-compute, tiles within the array, MAC totals exact — proved
//!    by an independent interval analysis ([`fuseconv_latency::audit`]).
//! 7. **Memory feasibility** (MEM001–MEM003): every fold's operand
//!    working set fits SRAM (single- and double-buffered) and its DRAM
//!    traffic fits its compute window at the modeled bandwidth.
//! 8. **Shape flow** (SHP001/SHP002): symbolic shape propagation through
//!    whole topologies — consecutive blocks agree on the flowing shape,
//!    and every FuSe substitution preserves the output shape of the
//!    depthwise block it replaces (§IV-A's drop-in contract).
//! 9. **Serving feasibility** (SRV001–SRV007): static proofs about a
//!    whole pod/workload/SLO deployment from the analytic cost oracle
//!    alone — pod overload (ρ ≥ 1), unattainable SLO budgets, shape
//!    bucket coverage, LPT shard-plan legality, admission-queue sizing,
//!    dead or perverse preemption, and statically-dead arrays — so
//!    `fuseconv serve` can refuse a million-request simulation of a
//!    configuration already provably broken.
//! 10. **Fusion legality** (FUS001–FUS006): liveness, dependence and
//!     on-array residency proofs over the fold-plan IR
//!     ([`fuseconv_latency::ir`]) — statically fusible producer/consumer
//!     pairs (FuSe row/col or depthwise → pointwise) with the exact SRAM
//!     bytes fusion saves, illegal-fusion findings (residency exceeded,
//!     dependence cycle, dataflow mismatch), dead-value findings, and a
//!     per-network fusion-headroom ranking.
//!
//! Findings are structured [`Diagnostic`]s (stable rule ID, severity,
//! offending dependence vector, suggested fix) aggregated into
//! [`Report`]s that render as text or JSON. The `fuseconv analyze` CLI
//! subcommand audits every zoo network with these rules; the
//! `workspace-lint` binary in this crate additionally enforces source
//! conventions across the workspace.
//!
//! The mapping-level verdicts themselves live in
//! [`fuseconv_systolic::legality`] so the simulators can gate their own
//! entry points without a dependency cycle; this crate wraps them into
//! the diagnostic vocabulary and adds the operator/network rules.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod diagnostics;
pub mod fusion;
pub mod mapping;
pub mod memory;
pub mod ops;
pub mod plan;
pub mod serve;
pub mod shapes;

pub use diagnostics::{Diagnostic, Report, RuleId, Severity};
pub use fusion::{analyze_fusion, diagnose_pair_ir, fusible_pairs, FusiblePair};
pub use mapping::{analyze_dataflows, analyze_mapping};
pub use memory::{analyze_memory, diagnose_memory, MemoryBudget};
pub use ops::{analyze_network, analyze_network_with_budget, analyze_op, gemm_dataflow_kind};
pub use plan::{analyze_plan, diagnose_plan};
pub use serve::analyze_pod;
pub use shapes::analyze_shapes;

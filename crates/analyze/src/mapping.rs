//! Mapping-level analysis: RIA well-formedness, schedule legality and
//! locality of each simulator dataflow, reported as diagnostics.
//!
//! The underlying verification lives in [`fuseconv_systolic::legality`]
//! (where the simulators' entry gates can reach it without a dependency
//! cycle); this module converts its violations into the structured
//! [`Diagnostic`]s of the report format, and analyzes arbitrary — possibly
//! tampered — [`DataflowMapping`]s, which is how the mutation-grid tests
//! prove each rule actually fires.

use crate::diagnostics::{Diagnostic, Report, RuleId, Severity};
use fuseconv_ria::RiaViolation;
use fuseconv_systolic::legality::{
    canonical_mapping, verify_mapping, DataflowKind, DataflowMapping, LegalityViolation,
};
use fuseconv_systolic::ArrayConfig;

/// Analyzes one space–time mapping on one array, returning every finding.
///
/// A clean mapping yields an empty vector. Findings map one-to-one onto
/// the legality violations: RIA001–003 for non-RIA systems, SCH001 for
/// schedule violations, LOC001/LOC002 for locality violations.
pub fn analyze_mapping(mapping: &DataflowMapping, cfg: &ArrayConfig) -> Vec<Diagnostic> {
    let context = mapping.kind.name().to_string();
    let Err(violations) = verify_mapping(mapping, cfg) else {
        return Vec::new();
    };
    let mut out = Vec::new();
    for v in violations {
        match v {
            LegalityViolation::NotRegular { violations } => {
                for ria in violations {
                    out.push(ria_diagnostic(&context, &ria));
                }
            }
            LegalityViolation::ScheduleViolatesDependence {
                dependence,
                tau,
                product,
            } => out.push(Diagnostic {
                rule: RuleId::Sch001ScheduleViolatesDependence,
                severity: Severity::Error,
                context: context.clone(),
                message: format!(
                    "schedule tau = {tau:?} executes dependence {dependence:?} at \
                     tau.d = {product} < 1: the consumer would not run strictly \
                     after its producer"
                ),
                dependence: Some(dependence),
                suggestion: "choose a linear schedule with tau.d >= 1 for every \
                             dependence (fuseconv_ria::schedule::find_schedule \
                             searches one)"
                    .into(),
            }),
            LegalityViolation::NonLocalProjection {
                dependence,
                projected,
            } => out.push(Diagnostic {
                rule: RuleId::Loc001NonLocalProjection,
                severity: Severity::Error,
                context: context.clone(),
                message: format!(
                    "dependence {dependence:?} projects to {projected:?} on the \
                     array: data would have to hop more than one PE per cycle"
                ),
                dependence: Some(dependence),
                suggestion: "restrict offsets on space axes to ±1, or serve the \
                             dependence over a broadcast link"
                    .into(),
            }),
            LegalityViolation::BroadcastLinkMissing { var, dependence } => out.push(Diagnostic {
                rule: RuleId::Loc002BroadcastLinkRequired,
                severity: Severity::Error,
                context: context.clone(),
                message: format!(
                    "variable {var}'s reuse (dependence {dependence:?}) rides the \
                     per-row weight-broadcast link, which this array lacks"
                ),
                dependence: Some(dependence),
                suggestion: "configure the array with ArrayConfig::with_broadcast(true) \
                             (§IV-C-1's added links)"
                    .into(),
            }),
            // `LegalityViolation` is non_exhaustive: surface future
            // variants rather than dropping them.
            other => out.push(Diagnostic {
                rule: RuleId::Sch001ScheduleViolatesDependence,
                severity: Severity::Error,
                context: context.clone(),
                message: format!("unrecognized legality violation: {other}"),
                dependence: None,
                suggestion: String::new(),
            }),
        }
    }
    out
}

fn ria_diagnostic(context: &str, v: &RiaViolation) -> Diagnostic {
    let (rule, message, suggestion) = match v {
        RiaViolation::MultipleAssignment { var } => (
            RuleId::Ria001MultipleAssignment,
            format!("variable {var} is assigned by more than one recurrence"),
            "rewrite with one defining recurrence per variable (single assignment)".to_string(),
        ),
        RiaViolation::NonConstantOffset { lhs, term } => (
            RuleId::Ria002NonConstantOffset,
            format!("recurrence for {lhs}: term {term} has a non-constant index offset"),
            "re-express the access with constant offsets, e.g. via im2col or the \
             FuSe 1-D decomposition (§III-A)"
                .to_string(),
        ),
        RiaViolation::RankMismatch {
            lhs,
            term,
            expected,
            actual,
        } => (
            RuleId::Ria003RankMismatch,
            format!("recurrence for {lhs}: term {term} has rank {actual}, expected {expected}"),
            "index every term with the full iteration vector".to_string(),
        ),
        other => (
            RuleId::Ria002NonConstantOffset,
            format!("unrecognized RIA violation: {other}"),
            String::new(),
        ),
    };
    Diagnostic {
        rule,
        severity: Severity::Error,
        context: context.to_string(),
        message,
        dependence: None,
        suggestion,
    }
}

/// Analyzes the canonical mapping of every simulator dataflow on `cfg`.
///
/// With broadcast links present this report is empty for the shipped
/// dataflows; without them it carries one LOC002 error for the
/// row-broadcast dataflow.
pub fn analyze_dataflows(cfg: &ArrayConfig) -> Report {
    let mut report = Report::new();
    for kind in DataflowKind::ALL {
        for d in analyze_mapping(&canonical_mapping(kind), cfg) {
            report.push(d);
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use fuseconv_ria::Schedule;

    fn bcast() -> ArrayConfig {
        ArrayConfig::square(8).unwrap().with_broadcast(true)
    }

    #[test]
    fn shipped_dataflows_are_clean_with_broadcast() {
        let report = analyze_dataflows(&bcast());
        assert!(report.diagnostics.is_empty(), "{}", report.to_text());
    }

    #[test]
    fn missing_broadcast_is_loc002() {
        let report = analyze_dataflows(&ArrayConfig::square(8).unwrap());
        assert!(!report.has_errors() || report.error_count() == 1);
        let loc = report.with_rule(RuleId::Loc002BroadcastLinkRequired);
        assert_eq!(loc.len(), 1);
        assert!(loc[0].message.contains('W'));
    }

    #[test]
    fn tampered_schedule_yields_sch001_with_dependence() {
        let mapping = canonical_mapping(DataflowKind::OutputStationary)
            .with_schedule(Schedule::new(vec![1, 1, -1]));
        let diags = analyze_mapping(&mapping, &bcast());
        let sch: Vec<_> = diags
            .iter()
            .filter(|d| d.rule == RuleId::Sch001ScheduleViolatesDependence)
            .collect();
        assert!(!sch.is_empty());
        assert_eq!(sch[0].dependence, Some(vec![0, 0, 1]));
        assert_eq!(sch[0].severity, Severity::Error);
    }
}

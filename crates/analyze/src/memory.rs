//! Memory-feasibility rules (`MEM001–MEM003`).
//!
//! Checks every fold of a plan against an SRAM/DRAM budget, statically:
//!
//! * **MEM001** (error) — a fold's single-buffered operand working set
//!   exceeds its SRAM buffer: the fold cannot be made resident at all and
//!   the latency model's "operands are on-chip" premise is void.
//! * **MEM002** (warning) — the double-buffered working set (2×, so the
//!   next fold's operands can prefetch during compute) exceeds the
//!   buffer: the plan runs, but fills serialize against compute and the
//!   serial-fold accounting becomes optimistic.
//! * **MEM003** (warning) — the fold's compulsory DRAM traffic needs more
//!   cycles at the modeled bandwidth than the fold's own occupancy
//!   window: the fold is bandwidth-bound, violating the paper's
//!   compute-limited idealization (§V-A-3).
//!
//! Footprints come from [`fuseconv_latency::fold_footprint`], which the
//! `footprint_vs_trace` integration test pins to the traced simulators'
//! distinct-address counts.

use crate::diagnostics::{Diagnostic, RuleId, Severity};
use fuseconv_latency::memory::SramConfig;
use fuseconv_latency::{fold_footprint, LatencyModel};
use fuseconv_nn::ops::Op;
use fuseconv_trace::FoldSpec;

/// The memory system the MEM rules budget against.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemoryBudget {
    /// Per-stream SRAM capacities, in elements.
    pub sram: SramConfig,
    /// Bytes per tensor element (2 for the FP16 datapath).
    pub bytes_per_elem: u64,
    /// Sustained DRAM bandwidth, bytes per array cycle.
    pub dram_bytes_per_cycle: u64,
}

impl MemoryBudget {
    /// The budget the shipped analyses use: the SCALE-Sim-style SRAM of
    /// [`SramConfig::scale_sim_default`] with the filter buffer doubled to
    /// 512 Ki elements — ResNet-50's widest im2col tile (`k = 9·512` on a
    /// 64-wide array) needs 294 912 filter elements resident, which the
    /// 256 Ki default cannot hold even single-buffered — at FP16 over a
    /// 256 B/cycle DRAM interface.
    pub fn paper_default() -> Self {
        MemoryBudget {
            sram: SramConfig {
                ifmap_elems: 512 * 1024,
                filter_elems: 512 * 1024,
                ofmap_elems: 128 * 1024,
            },
            bytes_per_elem: 2,
            dram_bytes_per_cycle: 256,
        }
    }
}

impl Default for MemoryBudget {
    fn default() -> Self {
        MemoryBudget::paper_default()
    }
}

/// Audits the folds of an already-computed plan against `budget`,
/// reporting at most one diagnostic per `MEM` rule (the worst fold of
/// each).
pub fn diagnose_memory(
    op: &Op,
    plan: &[FoldSpec],
    budget: &MemoryBudget,
    context: &str,
) -> Vec<Diagnostic> {
    // Worst offender per rule: (fold index, stream, used, capacity).
    let mut single: Option<(usize, &'static str, u64, u64)> = None;
    let mut double: Option<(usize, &'static str, u64, u64)> = None;
    let mut bandwidth: Option<(usize, u64, u64)> = None;

    for (i, f) in plan.iter().enumerate() {
        let fp = fold_footprint(f);
        let streams = [
            ("ifmap", fp.ifmap_elems, budget.sram.ifmap_elems),
            ("filter", fp.filter_elems, budget.sram.filter_elems),
            ("ofmap", fp.ofmap_elems, budget.sram.ofmap_elems),
        ];
        for (stream, used, cap) in streams {
            if used > cap {
                if single.is_none_or(|(_, _, worst, _)| used > worst) {
                    single = Some((i, stream, used, cap));
                }
            } else if used.saturating_mul(2) > cap
                && double.is_none_or(|(_, _, worst, _)| used.saturating_mul(2) > worst)
            {
                double = Some((i, stream, used.saturating_mul(2), cap));
            }
        }
        // Bandwidth: moving the fold's working set from/to DRAM must fit
        // inside the fold's own cycle window.
        let bytes = fp.total().saturating_mul(budget.bytes_per_elem);
        let window_bytes = f.cycles().saturating_mul(budget.dram_bytes_per_cycle);
        if bytes > window_bytes && bandwidth.is_none_or(|(_, worst, _)| bytes > worst) {
            bandwidth = Some((i, bytes, f.cycles()));
        }
    }

    let mut out = Vec::new();
    if let Some((i, stream, used, cap)) = single {
        out.push(Diagnostic {
            rule: RuleId::Mem001FoldExceedsSram,
            severity: Severity::Error,
            context: context.to_string(),
            message: format!(
                "`{op}`: fold {i} needs {used} {stream} elements resident but the \
                 {stream} SRAM holds {cap}"
            ),
            dependence: None,
            suggestion: "shrink the tile (smaller array mapping) or grow the SRAM \
                         buffer; the fold cannot execute from on-chip memory as \
                         planned"
                .into(),
        });
    }
    if let Some((i, stream, used2, cap)) = double {
        out.push(Diagnostic {
            rule: RuleId::Mem002DoubleBufferExceedsSram,
            severity: Severity::Warning,
            context: context.to_string(),
            message: format!(
                "`{op}`: fold {i} double-buffered needs {used2} {stream} elements \
                 but the {stream} SRAM holds {cap}; next-fold prefetch cannot \
                 overlap compute"
            ),
            dependence: None,
            suggestion: "expect serial-fold latency, not the double-buffered \
                         idealization, for this layer"
                .into(),
        });
    }
    if let Some((i, bytes, cycles)) = bandwidth {
        out.push(Diagnostic {
            rule: RuleId::Mem003BandwidthInfeasible,
            severity: Severity::Warning,
            context: context.to_string(),
            message: format!(
                "`{op}`: fold {i} moves {bytes} DRAM bytes but its {cycles}-cycle \
                 window covers only {} at {} B/cycle",
                cycles.saturating_mul(budget.dram_bytes_per_cycle),
                budget.dram_bytes_per_cycle
            ),
            dependence: None,
            suggestion: "the compute-limited latency estimate is a lower bound \
                         here; the fold is DRAM-bandwidth-bound at this array size"
                .into(),
        });
    }
    out
}

/// Plans `op` under `model` and budgets the result. Planning failures are
/// reported by `analyze_op`, not here.
pub fn analyze_memory(
    model: &LatencyModel,
    op: &Op,
    budget: &MemoryBudget,
    context: &str,
) -> Vec<Diagnostic> {
    match model.fold_plan(op) {
        Ok(plan) => diagnose_memory(op, &plan, budget, context),
        Err(_) => Vec::new(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fuseconv_systolic::ArrayConfig;

    fn model() -> LatencyModel {
        LatencyModel::new(ArrayConfig::square(64).unwrap().with_broadcast(true))
    }

    fn tiny_budget() -> MemoryBudget {
        MemoryBudget {
            sram: SramConfig {
                ifmap_elems: 16,
                filter_elems: 16,
                ofmap_elems: 16,
            },
            bytes_per_elem: 2,
            dram_bytes_per_cycle: 256,
        }
    }

    #[test]
    fn zoo_scale_ops_fit_the_paper_budget() {
        let m = model();
        let budget = MemoryBudget::paper_default();
        // The heaviest layers of the zoo at the paper's 64×64 array.
        for op in [
            Op::conv2d(14, 14, 512, 512, 3, 1, 1), // ResNet-50's widest im2col
            Op::pointwise(7, 7, 320, 1280),        // MobileNet-V2 head
            Op::fuse1d(112, 112, 32, 3, 1, 1, fuseconv_nn::ops::Axis1d::Row),
            Op::fc(2048, 1000),
        ] {
            let plan = m.fold_plan(&op).unwrap();
            let diags = diagnose_memory(&op, &plan, &budget, "test");
            assert!(
                diags.iter().all(|d| d.severity != Severity::Error),
                "{op}: {diags:?}"
            );
        }
    }

    #[test]
    fn undersized_sram_fires_mem001() {
        let m = model();
        let op = Op::pointwise(28, 28, 192, 64);
        let plan = m.fold_plan(&op).unwrap();
        let diags = diagnose_memory(&op, &plan, &tiny_budget(), "test");
        assert!(diags
            .iter()
            .any(|d| d.rule == RuleId::Mem001FoldExceedsSram && d.severity == Severity::Error));
    }

    #[test]
    fn marginal_sram_fires_mem002_not_mem001() {
        let m = model();
        let op = Op::pointwise(8, 8, 12, 8); // one fold: ifmap 64·12 = 768
        let plan = m.fold_plan(&op).unwrap();
        let budget = MemoryBudget {
            sram: SramConfig {
                ifmap_elems: 1000, // 768 fits, 1536 does not
                filter_elems: 512 * 1024,
                ofmap_elems: 128 * 1024,
            },
            bytes_per_elem: 2,
            dram_bytes_per_cycle: u64::MAX,
        };
        let diags = diagnose_memory(&op, &plan, &budget, "test");
        assert!(
            diags
                .iter()
                .all(|d| d.rule != RuleId::Mem001FoldExceedsSram),
            "{diags:?}"
        );
        assert!(
            diags
                .iter()
                .any(|d| d.rule == RuleId::Mem002DoubleBufferExceedsSram
                    && d.severity == Severity::Warning),
            "{diags:?}"
        );
    }

    #[test]
    fn starved_dram_fires_mem003() {
        let m = model();
        let op = Op::pointwise(28, 28, 192, 64);
        let plan = m.fold_plan(&op).unwrap();
        let budget = MemoryBudget {
            dram_bytes_per_cycle: 1,
            ..MemoryBudget::paper_default()
        };
        let diags = diagnose_memory(&op, &plan, &budget, "test");
        assert!(diags.iter().any(
            |d| d.rule == RuleId::Mem003BandwidthInfeasible && d.severity == Severity::Warning
        ));
    }

    #[test]
    fn at_most_one_diagnostic_per_rule() {
        let m = model();
        let op = Op::conv2d(28, 28, 64, 128, 3, 1, 1); // many folds
        let plan = m.fold_plan(&op).unwrap();
        let diags = diagnose_memory(&op, &plan, &tiny_budget(), "test");
        for rule in [
            RuleId::Mem001FoldExceedsSram,
            RuleId::Mem002DoubleBufferExceedsSram,
            RuleId::Mem003BandwidthInfeasible,
        ] {
            assert!(
                diags.iter().filter(|d| d.rule == rule).count() <= 1,
                "{diags:?}"
            );
        }
        assert!(!diags.is_empty());
    }
}

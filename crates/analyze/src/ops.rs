//! Operator- and network-level analysis: resource/bounds sanity and the
//! paper's utilization argument, evaluated statically.
//!
//! For each operator the analyzer derives the GEMM (or packed conv1d)
//! lowering the latency model would use and checks, without simulating a
//! cycle:
//!
//! * **RES001** — the cycle accounting fits `u64` (checked arithmetic);
//! * **RES002** — no zero-sized dimensions;
//! * **RES003** — operand footprints fit the 32-bit SRAM element address
//!   space the trace sinks assume;
//! * **UTL001/UTL002** — degenerate GEMM lowerings. A depthwise layer
//!   lowers to per-channel `M×K²·K²×1` GEMMs: a single array column is
//!   ever busy, so utilization is statically bounded by `1/W` — the
//!   Fig. 1(d) argument, reported here as a warning while the FuSe
//!   row-broadcast lowering of the same work passes clean;
//! * **UTL003** — the cycle-accounted counters derived from the fold plan
//!   predict ≥ 90% of compute-phase PE slots idle: the operator is
//!   compute-stall dominated regardless of its fill/drain overheads.

use crate::diagnostics::{Diagnostic, Report, RuleId, Severity};
use crate::mapping::analyze_mapping;
use crate::memory::MemoryBudget;
use fuseconv_latency::{Dataflow, LatencyError, LatencyModel};
use fuseconv_models::Network;
use fuseconv_nn::ops::Op;
use fuseconv_systolic::legality::{canonical_mapping, DataflowKind};

/// SRAM element address space assumed by the trace sinks (32-bit).
const SRAM_ADDRESS_SPACE: u64 = 1 << 32;

/// Compute-phase PE idleness at or above which UTL003 fires.
const COMPUTE_STALL_THRESHOLD: f64 = 0.90;

/// Upper bound on the estimated fold count for which UTL003 will
/// materialize a fold plan. Every zoo operator plans well under 10⁴
/// folds; pathological shapes (which already trip the RES rules) would
/// materialize billions of `FoldSpec`s just to be told they stall.
const MAX_UTL003_FOLDS: u64 = 1_000_000;

/// The legality-mapping kind a model's GEMM-lowered operators execute on.
pub fn gemm_dataflow_kind(model: &LatencyModel) -> DataflowKind {
    match model.dataflow() {
        Dataflow::OutputStationary => DataflowKind::OutputStationary,
        Dataflow::WeightStationary => DataflowKind::WeightStationary,
        Dataflow::InputStationary => DataflowKind::InputStationary,
    }
}

/// The GEMM dimensions `(M, K, N)` an operator lowers to, or `None` for
/// the FuSe 1-D operators (which use the packed row-broadcast mapping,
/// not a GEMM).
fn gemm_lowering(model: &LatencyModel, op: &Op) -> Option<(u64, u64, u64)> {
    let (oh, ow, _) = op.output_shape();
    let m = |x: usize, y: usize| (x as u64).saturating_mul(y as u64);
    let spatial = m(oh, ow).saturating_mul(model.batch() as u64);
    match *op {
        Op::Conv2d { in_c, out_c, k, .. } => {
            Some((spatial, m(k, k).saturating_mul(in_c as u64), out_c as u64))
        }
        Op::Depthwise { k, .. } => Some((spatial, m(k, k), 1)),
        Op::Pointwise { in_c, out_c, .. } => Some((spatial, in_c as u64, out_c as u64)),
        Op::FuSe1d { .. } => None,
        Op::Fc {
            in_features,
            out_features,
        } => Some((1, in_features as u64, out_features as u64)),
    }
}

/// Cheap upper-bound estimate of how many folds the operator's plan
/// holds, without materializing it (the plan is `O(folds)` memory).
fn estimated_folds(model: &LatencyModel, op: &Op) -> u64 {
    let rows = model.array().rows() as u64;
    let cols = model.array().cols() as u64;
    let tiles = |m: u64, n: u64| m.div_ceil(rows).saturating_mul(n.div_ceil(cols));
    match (gemm_lowering(model, op), *op) {
        // Depthwise lowers to one such GEMM *per channel*.
        (Some((m, _, n)), Op::Depthwise { c, .. }) => tiles(m, n).saturating_mul(c as u64),
        (Some((m, _, n)), _) => tiles(m, n),
        // FuSe 1-D: one conv per (channel, line), `l_out` outputs wide;
        // bound both by the larger spatial extent.
        (None, _) => {
            let (oh, ow, c) = op.output_shape();
            let extent = oh.max(ow) as u64;
            let convs = (c as u64)
                .saturating_mul(extent)
                .saturating_mul(model.batch() as u64);
            tiles(convs, extent)
        }
    }
}

/// Total elements of the operator's input, weight and output operands
/// (saturating — anything that saturates certainly exceeds the SRAM
/// space).
fn operand_footprints(model: &LatencyModel, op: &Op) -> [(&'static str, u64); 3] {
    let (oh, ow, out_c) = op.output_shape();
    let m = |x: usize, y: usize| (x as u64).saturating_mul(y as u64);
    let batch = model.batch() as u64;
    let (in_elems, out_elems) = match *op {
        Op::Conv2d {
            in_h, in_w, in_c, ..
        }
        | Op::Pointwise {
            in_h, in_w, in_c, ..
        } => (m(in_h, in_w).saturating_mul(in_c as u64), m(oh, ow)),
        Op::Depthwise { in_h, in_w, c, .. } | Op::FuSe1d { in_h, in_w, c, .. } => {
            (m(in_h, in_w).saturating_mul(c as u64), m(oh, ow))
        }
        Op::Fc { in_features, .. } => (in_features as u64, 1),
    };
    [
        ("input", in_elems.saturating_mul(batch)),
        ("weights", op.params()),
        (
            "output",
            out_elems.saturating_mul(out_c as u64).saturating_mul(batch),
        ),
    ]
}

/// Analyzes one operator under one latency model, returning every
/// finding. `context` labels the findings (e.g. `network/block/op`).
pub fn analyze_op(model: &LatencyModel, op: &Op, context: &str) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    let cols = model.array().cols();
    let rows = model.array().rows();

    // Resource sanity: run the checked accounting and convert its errors.
    match model.cycles(op) {
        Ok(_) => {}
        Err(LatencyError::ArithmeticOverflow { .. }) => out.push(Diagnostic {
            rule: RuleId::Res001CycleArithmeticOverflow,
            severity: Severity::Error,
            context: context.to_string(),
            message: format!("cycle count of `{op}` overflows u64"),
            dependence: None,
            suggestion: "tile or split the operator; shapes this large cannot be \
                         scheduled in one pass"
                .into(),
        }),
        Err(LatencyError::DegenerateOp { .. }) => out.push(Diagnostic {
            rule: RuleId::Res002DegenerateOp,
            severity: Severity::Error,
            context: context.to_string(),
            message: format!("`{op}` has zero-sized dimensions"),
            dependence: None,
            suggestion: "remove the operator or fix its shape".into(),
        }),
        Err(LatencyError::BroadcastRequired { .. }) => out.push(Diagnostic {
            rule: RuleId::Loc002BroadcastLinkRequired,
            severity: Severity::Error,
            context: context.to_string(),
            message: format!(
                "`{op}` uses the row-broadcast dataflow but the array has no \
                 broadcast links"
            ),
            dependence: None,
            suggestion: "configure the array with ArrayConfig::with_broadcast(true)".into(),
        }),
        // `LatencyError` is non_exhaustive; report unknown errors rather
        // than dropping them.
        Err(other) => out.push(Diagnostic {
            rule: RuleId::Res002DegenerateOp,
            severity: Severity::Error,
            context: context.to_string(),
            message: format!("latency model rejected `{op}`: {other}"),
            dependence: None,
            suggestion: String::new(),
        }),
    }

    // SRAM footprint sanity.
    for (what, elems) in operand_footprints(model, op) {
        if elems >= SRAM_ADDRESS_SPACE {
            out.push(Diagnostic {
                rule: RuleId::Res003SramAddressOverflow,
                severity: Severity::Warning,
                context: context.to_string(),
                message: format!(
                    "{what} operand of `{op}` holds {elems} elements, exceeding \
                     the 32-bit SRAM element address space"
                ),
                dependence: None,
                suggestion: "tile the operator so each operand fits on-chip \
                             addressing"
                    .into(),
            });
        }
    }

    // Utilization: the paper's degenerate-GEMM argument (§III-B).
    if let Some((m, _k, n)) = gemm_lowering(model, op) {
        if n == 1 && cols > 1 {
            let (severity, detail, suggestion) = if matches!(op, Op::Depthwise { .. }) {
                (
                    Severity::Warning,
                    "the im2col depthwise lowering is legal but degenerate: every \
                     channel is an M×K²·K²×1 GEMM, so exactly one array column is \
                     busy (Fig. 1(d))",
                    "replace the depthwise filter with FuSe row/column banks \
                     (Network::transform_all), whose row-broadcast mapping fills \
                     every row",
                )
            } else {
                (
                    Severity::Warning,
                    "the operator lowers to a single-column GEMM: one array column \
                     is ever busy",
                    "widen the output dimension or batch several such operators \
                     side by side",
                )
            };
            out.push(Diagnostic {
                rule: RuleId::Utl001SingleColumnGemm,
                severity,
                context: context.to_string(),
                message: format!(
                    "`{op}`: {detail}; utilization statically bounded by 1/{cols} \
                     ≈ {:.4}",
                    1.0 / cols as f64
                ),
                dependence: None,
                suggestion: suggestion.into(),
            });
        }
        if m == 1 && rows > 1 {
            out.push(Diagnostic {
                rule: RuleId::Utl002SingleRowGemm,
                severity: Severity::Info,
                context: context.to_string(),
                message: format!(
                    "`{op}` lowers to a single-row GEMM; utilization statically \
                     bounded by 1/{rows} ≈ {:.4}",
                    1.0 / rows as f64
                ),
                dependence: None,
                suggestion: "batch inferences to fill the array rows".into(),
            });
        }
    }

    // Stall attribution: derive cycle-accounted counters analytically from
    // the fold plan and flag compute-stall-dominated operators. This is
    // the dynamic counterpart of UTL001/UTL002 — it measures how idle the
    // compute phase actually is rather than bounding it by shape alone.
    // Skipped for shapes whose plan would not fit in memory; those trip
    // the RES rules above instead.
    let plan = if estimated_folds(model, op) <= MAX_UTL003_FOLDS {
        model.fold_plan(op).ok()
    } else {
        None
    };
    if let Some(plan) = plan {
        let counters = fuseconv_perf::PerfCounters::from_fold_plan(&plan, rows, cols);
        let stall = counters.compute_stall_fraction();
        if stall >= COMPUTE_STALL_THRESHOLD {
            out.push(Diagnostic {
                rule: RuleId::Utl003ComputeStallDominated,
                severity: Severity::Info,
                context: context.to_string(),
                message: format!(
                    "`{op}` is compute-stall dominated: {:.1}% of compute-phase PE \
                     slots are idle ({} of {} PE-cycles busy)",
                    stall * 100.0,
                    counters.busy_pe_cycles(),
                    counters.compute_pe_cycles(),
                ),
                dependence: None,
                suggestion: "inspect `fuseconv perf` for the fill/active/bubble/drain \
                             split and remap the operator to fill the array"
                    .into(),
            });
        }
    }
    out
}

/// Audits a whole network: the legality of every dataflow mapping its
/// operators use, the per-operator resource and utilization rules, the
/// fold-plan coverage and memory-feasibility rules of every operator's
/// plan (under [`MemoryBudget::paper_default`]), and the topology's shape
/// flow.
pub fn analyze_network(model: &LatencyModel, net: &Network) -> Report {
    analyze_network_with_budget(model, net, &MemoryBudget::paper_default())
}

/// [`analyze_network`] with a caller-chosen memory budget for the `MEM`
/// rules.
pub fn analyze_network_with_budget(
    model: &LatencyModel,
    net: &Network,
    budget: &MemoryBudget,
) -> Report {
    let _span = fuseconv_telemetry::span("analyze.network");
    let mut report = Report::new();
    let ops = net.ops();

    // Mapping legality, once per dataflow the network actually uses.
    let mut kinds = vec![gemm_dataflow_kind(model)];
    if ops.iter().any(|n| matches!(n.op, Op::FuSe1d { .. })) {
        kinds.push(DataflowKind::RowBroadcast);
    }
    for kind in kinds {
        for d in analyze_mapping(&canonical_mapping(kind), model.array()) {
            report.push(d);
        }
    }

    // Operator rules, including the per-plan coverage and memory audits
    // (the plan is computed once and shared by both rule families).
    let label = format!("{}[{}]", net.name(), net.variant_label());
    for named in &ops {
        let context = format!("{label}/{}/{}", named.block_name, named.op);
        for d in analyze_op(model, &named.op, &context) {
            report.push(d);
        }
        if let Ok(plan) = model.fold_plan(&named.op) {
            for d in crate::plan::diagnose_plan(model, &named.op, &plan, &context) {
                report.push(d);
            }
            for d in crate::memory::diagnose_memory(&named.op, &plan, budget, &context) {
                report.push(d);
            }
        }
    }

    // Fusion legality over the fold-plan IR.
    for d in crate::fusion::analyze_fusion(model, net, budget) {
        report.push(d);
    }

    // Topology shape flow.
    for d in crate::shapes::analyze_shapes(net) {
        report.push(d);
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use fuseconv_nn::ops::Axis1d;
    use fuseconv_nn::FuSeVariant;
    use fuseconv_systolic::ArrayConfig;

    fn model() -> LatencyModel {
        LatencyModel::new(ArrayConfig::square(64).unwrap().with_broadcast(true))
    }

    #[test]
    fn depthwise_is_flagged_with_utilization_bound() {
        let op = Op::depthwise(56, 56, 64, 3, 1, 1);
        let diags = analyze_op(&model(), &op, "test");
        let utl: Vec<_> = diags
            .iter()
            .filter(|d| d.rule == RuleId::Utl001SingleColumnGemm)
            .collect();
        assert_eq!(utl.len(), 1);
        assert_eq!(utl[0].severity, Severity::Warning);
        assert!(utl[0].message.contains("1/64"), "{}", utl[0].message);
        assert!(diags.iter().all(|d| d.severity != Severity::Error));
    }

    #[test]
    fn fuse_passes_clean() {
        let op = Op::fuse1d(56, 56, 32, 3, 1, 1, Axis1d::Row);
        let diags = analyze_op(&model(), &op, "test");
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn fc_is_single_row_info() {
        let op = Op::fc(1024, 1000);
        let diags = analyze_op(&model(), &op, "test");
        let utl: Vec<_> = diags
            .iter()
            .filter(|d| d.rule == RuleId::Utl002SingleRowGemm)
            .collect();
        assert_eq!(utl.len(), 1);
        assert_eq!(utl[0].severity, Severity::Info);
        // A single-row GEMM is also compute-stall dominated: one row of a
        // 64×64 array leaves > 98% of compute-phase PE slots idle.
        assert!(
            diags
                .iter()
                .any(|d| d.rule == RuleId::Utl003ComputeStallDominated
                    && d.severity == Severity::Info)
        );
    }

    #[test]
    fn depthwise_is_compute_stall_dominated_but_fuse_is_not() {
        let dw = Op::depthwise(56, 56, 64, 3, 1, 1);
        let diags = analyze_op(&model(), &dw, "test");
        let stall: Vec<_> = diags
            .iter()
            .filter(|d| d.rule == RuleId::Utl003ComputeStallDominated)
            .collect();
        assert_eq!(stall.len(), 1);
        assert_eq!(stall[0].severity, Severity::Info);
        assert!(
            stall[0].message.contains("compute-stall dominated"),
            "{}",
            stall[0].message
        );

        let fuse = Op::fuse1d(56, 56, 32, 3, 1, 1, Axis1d::Row);
        let diags = analyze_op(&model(), &fuse, "test");
        assert!(diags
            .iter()
            .all(|d| d.rule != RuleId::Utl003ComputeStallDominated));
    }

    #[test]
    fn fuse_without_broadcast_is_loc002_error() {
        let plain = LatencyModel::new(ArrayConfig::square(64).unwrap());
        let op = Op::fuse1d(56, 56, 32, 3, 1, 1, Axis1d::Row);
        let diags = analyze_op(&plain, &op, "test");
        assert!(diags.iter().any(
            |d| d.rule == RuleId::Loc002BroadcastLinkRequired && d.severity == Severity::Error
        ));
    }

    #[test]
    fn huge_op_is_res001_error() {
        let big = 3_000_000_000usize;
        let op = Op::pointwise(big, big, 4_000_000_000, 4_000_000_000);
        let diags = analyze_op(&model(), &op, "test");
        assert!(diags
            .iter()
            .any(|d| d.rule == RuleId::Res001CycleArithmeticOverflow
                && d.severity == Severity::Error));
    }

    #[test]
    fn oversized_footprint_is_res003_warning() {
        let op = Op::pointwise(70_000, 70_000, 1024, 1024);
        let diags = analyze_op(&model(), &op, "test");
        assert!(diags.iter().any(
            |d| d.rule == RuleId::Res003SramAddressOverflow && d.severity == Severity::Warning
        ));
    }

    #[test]
    fn network_audit_flags_depthwise_but_not_fuse() {
        let net = fuseconv_models::zoo::mobilenet_v1();
        let report = analyze_network(&model(), &net);
        assert!(!report.has_errors(), "{}", report.to_text());
        assert!(!report.with_rule(RuleId::Utl001SingleColumnGemm).is_empty());

        let fused = net.transform_all(FuSeVariant::Full);
        let report = analyze_network(&model(), &fused);
        assert!(!report.has_errors(), "{}", report.to_text());
        assert!(report.with_rule(RuleId::Utl001SingleColumnGemm).is_empty());
    }
}

//! Fold-plan coverage rules (`PLAN001–PLAN004`).
//!
//! Wraps [`fuseconv_latency::audit_plan`]'s interval/partition analysis in
//! the diagnostic vocabulary: a plan that leaves a coverage gap, computes
//! output elements twice, claims a tile beyond the physical array, or
//! whose per-fold MACs do not sum to the operator's iteration-space total
//! is reported as an error-severity finding. An empty result is the
//! coverage proof: the folds partition the output iteration space exactly.

use crate::diagnostics::{Diagnostic, RuleId, Severity};
use fuseconv_latency::{audit_plan, LatencyModel, PlanViolation};
use fuseconv_nn::ops::Op;
use fuseconv_trace::FoldSpec;

/// Classifies one violation into its rule.
fn rule_of(v: &PlanViolation) -> (RuleId, String, &'static str) {
    match v {
        PlanViolation::Gap { .. } => (
            RuleId::Plan001CoverageGap,
            v.to_string(),
            "every output element must be owned by exactly one fold; regenerate \
             the plan from the tile partition",
        ),
        PlanViolation::Overlap { .. } => (
            RuleId::Plan002Overlap,
            v.to_string(),
            "remove the double-computed region from all but one fold",
        ),
        PlanViolation::OversizedTile { .. } => (
            RuleId::Plan003OversizedTile,
            v.to_string(),
            "clamp per-fold occupancy to the array dimensions",
        ),
        PlanViolation::MacsMismatch { .. } => (
            RuleId::Plan004MacsMismatch,
            v.to_string(),
            "recompute per-fold MACs as tile_rows x tile_cols x reduction",
        ),
        // `PlanViolation` is non_exhaustive; surface unknown kinds loudly
        // rather than dropping them.
        other => (
            RuleId::Plan004MacsMismatch,
            format!("unclassified plan violation: {other}"),
            "",
        ),
    }
}

/// Audits an already-computed fold plan of `op`, reporting at most one
/// diagnostic per `PLAN` rule (the first violation of each kind — plans
/// with thousands of folds would otherwise flood the report).
pub fn diagnose_plan(
    model: &LatencyModel,
    op: &Op,
    plan: &[FoldSpec],
    context: &str,
) -> Vec<Diagnostic> {
    let mut out: Vec<Diagnostic> = Vec::new();
    for v in audit_plan(model, op, plan) {
        let (rule, message, suggestion) = rule_of(&v);
        if out.iter().any(|d| d.rule == rule) {
            continue;
        }
        out.push(Diagnostic {
            rule,
            severity: Severity::Error,
            context: context.to_string(),
            message: format!("`{op}`: {message}"),
            dependence: None,
            suggestion: suggestion.into(),
        });
    }
    out
}

/// Plans `op` under `model` and audits the result. Planning failures are
/// not reported here — `analyze_op` already converts [`LatencyModel`]
/// errors to `RES`/`LOC` findings.
pub fn analyze_plan(model: &LatencyModel, op: &Op, context: &str) -> Vec<Diagnostic> {
    match model.fold_plan(op) {
        Ok(plan) => diagnose_plan(model, op, &plan, context),
        Err(_) => Vec::new(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fuseconv_systolic::ArrayConfig;

    fn model() -> LatencyModel {
        LatencyModel::new(ArrayConfig::square(8).unwrap().with_broadcast(true))
    }

    fn probe() -> Op {
        Op::pointwise(7, 7, 12, 20)
    }

    #[test]
    fn shipped_plans_have_no_plan_findings() {
        let m = model();
        for op in [
            Op::conv2d(14, 14, 8, 24, 3, 1, 1),
            Op::depthwise(9, 9, 6, 3, 1, 1),
            probe(),
            Op::fuse1d(12, 12, 5, 3, 1, 1, fuseconv_nn::ops::Axis1d::Row),
            Op::fc(100, 37),
        ] {
            assert!(analyze_plan(&m, &op, "test").is_empty(), "{op}");
        }
    }

    #[test]
    fn injected_gap_fires_plan001() {
        let m = model();
        let op = probe();
        let mut plan = m.fold_plan(&op).unwrap();
        plan.pop();
        let diags = diagnose_plan(&m, &op, &plan, "test");
        assert!(diags
            .iter()
            .any(|d| d.rule == RuleId::Plan001CoverageGap && d.severity == Severity::Error));
    }

    #[test]
    fn injected_overlap_fires_plan002() {
        let m = model();
        let op = probe();
        let mut plan = m.fold_plan(&op).unwrap();
        let dup = plan[0];
        plan.insert(0, dup);
        let diags = diagnose_plan(&m, &op, &plan, "test");
        assert!(diags
            .iter()
            .any(|d| d.rule == RuleId::Plan002Overlap && d.severity == Severity::Error));
    }

    #[test]
    fn oversized_tile_fires_plan003() {
        let m = model();
        let op = probe();
        let mut plan = m.fold_plan(&op).unwrap();
        plan[0].cols_used = 200;
        let diags = diagnose_plan(&m, &op, &plan, "test");
        assert!(diags
            .iter()
            .any(|d| d.rule == RuleId::Plan003OversizedTile && d.severity == Severity::Error));
    }

    #[test]
    fn mutated_macs_fires_plan004() {
        let m = model();
        let op = probe();
        let mut plan = m.fold_plan(&op).unwrap();
        plan[0].macs += 1;
        let diags = diagnose_plan(&m, &op, &plan, "test");
        assert!(diags
            .iter()
            .any(|d| d.rule == RuleId::Plan004MacsMismatch && d.severity == Severity::Error));
    }

    #[test]
    fn one_diagnostic_per_rule() {
        let m = model();
        let op = probe();
        let mut plan = m.fold_plan(&op).unwrap();
        plan.truncate(1); // many missing tiles → many Gap violations
        let diags = diagnose_plan(&m, &op, &plan, "test");
        let gaps = diags
            .iter()
            .filter(|d| d.rule == RuleId::Plan001CoverageGap)
            .count();
        assert_eq!(gaps, 1, "{diags:?}");
    }
}

//! Serving feasibility rules (SRV001–SRV007): static proofs about a
//! pod/workload/SLO configuration before a single simulated cycle.
//!
//! [`crate::analyze_pod`] consumes the same inputs as
//! [`fuseconv_serve::simulate`] — a [`PodSpec`], a [`Workload`] and a
//! [`ServeConfig`] — but touches only the memoised analytic cost oracle
//! ([`fuseconv_serve::CostOracle`]): no event loop, no traffic, no
//! queues. Where the RIA/SCH/LOC family proves one op's mapping legal
//! and PLAN/MEM prove one fold plan sound, this family proves (or
//! refutes) steady-state claims about a whole serving deployment:
//!
//! * **SRV001 pod overload** — offered load ρ = Σ rateᵢ·E[costᵢ] /
//!   aggregate pod capacity ≥ 1 means the open-loop queue diverges; no
//!   simulation length changes the verdict. The capacity denominator is
//!   [`fuseconv_serve::CostOracle::pod_capacity`], the *same* estimate
//!   the engine calibrates its arrival rate against, so the static ρ
//!   and the simulated offered load agree by construction.
//! * **SRV002 SLO unattainable** — a network's zero-queueing floor
//!   (best batch-1 cycles anywhere in the pod) already exceeds the
//!   absolute `slo_budget_cycles`; every completion will miss.
//! * **SRV003 bucket coverage** — bucketed batching with fewer
//!   provisioned shape buckets than workload networks rejects every
//!   request of the uncovered networks at admission.
//! * **SRV004 shard-plan legality** — every op must price on its
//!   target array, the LPT assignment must partition the op list with
//!   shares equal to the recomputed per-array sums, and each op's fold
//!   plan must pass the [`fuseconv_latency::audit`] interval audit on
//!   its target array.
//! * **SRV005 admission-queue sizing** — expected arrivals during one
//!   worst-case service window exceed the bounded queue's capacity
//!   (plus the pod's parallelism) by 2×: drops are statistically
//!   certain even at ρ < 1.
//! * **SRV006 dead/perverse preemption** — preemption enabled with
//!   zero high-priority traffic never fires; a pipeline-refill penalty
//!   at least as large as any batch's service time on every array costs
//!   the victim more than any eviction can save the trigger.
//! * **SRV007 statically-dead array** — an array never strictly
//!   cheapest for any network under whole-request dispatch serves
//!   traffic only once every cheaper array saturates; at moderate load
//!   its predicted utilization is 0.
//!
//! `tests/serve_analysis.rs` differentially validates every verdict
//! against the real discrete-event engine on a deterministic grid.

use crate::diagnostics::{Diagnostic, Report, RuleId, Severity};
use fuseconv_latency::audit::audit_plan;
use fuseconv_serve::{
    BatchPolicy, CostOracle, Dispatch, PodSpec, ServeConfig, ServeError, Workload,
};

/// SRV005's safety factor: the expected burst must exceed the queue's
/// slack this many times over before drops are called statically
/// certain (guards the verdict against Poisson variance).
const BURST_SAFETY_FACTOR: f64 = 2.0;

fn diag(
    rule: RuleId,
    severity: Severity,
    context: String,
    message: String,
    fix: &str,
) -> Diagnostic {
    Diagnostic {
        rule,
        severity,
        context,
        message,
        dependence: None,
        suggestion: fix.to_string(),
    }
}

/// The largest batch the configured policy can launch (preemption
/// victims are normal-lane batches of up to this size).
fn policy_max_batch(policy: BatchPolicy) -> usize {
    match policy {
        BatchPolicy::Fifo => 1,
        BatchPolicy::Dynamic { max_batch, .. } | BatchPolicy::Bucketed { max_batch, .. } => {
            max_batch
        }
    }
}

/// Statically audits a pod/workload/SLO configuration with the
/// SRV001–SRV007 rules, using only the analytic cost oracle.
///
/// Error-severity findings (SRV001–SRV004) mark configurations that a
/// simulation would only confirm as broken — the `fuseconv serve`
/// preflight refuses them without `--force`. Warnings (SRV005–SRV007)
/// mark configurations that run but waste capacity or preemptions.
///
/// # Errors
///
/// Returns [`ServeError`] for inputs [`fuseconv_serve::simulate`]
/// rejects before its event loop (zero requests, non-positive load,
/// preemption under sharded dispatch, shape buckets without the
/// bucketed policy, unbuildable arrays). Per-op pricing failures do
/// *not* error — they become SRV004 diagnostics so the capacity rules
/// that survive them still run.
pub fn analyze_pod(
    pod: &PodSpec,
    workload: &Workload,
    cfg: &ServeConfig,
) -> Result<Report, ServeError> {
    let _span = fuseconv_telemetry::span("analyze.pod");
    if cfg.requests == 0 {
        return Err(ServeError::Config(
            "requests must be at least 1".to_string(),
        ));
    }
    if !(cfg.load.is_finite() && cfg.load > 0.0) {
        return Err(ServeError::Config(format!(
            "load must be finite and positive, got {}",
            cfg.load
        )));
    }
    if cfg.preemption && cfg.dispatch == Dispatch::Sharded {
        return Err(ServeError::Config(
            "preemption requires whole-request dispatch".to_string(),
        ));
    }
    if cfg.shape_buckets.is_some() && !matches!(cfg.policy, BatchPolicy::Bucketed { .. }) {
        return Err(ServeError::Config(
            "shape buckets require the bucketed batching policy".to_string(),
        ));
    }

    let mut report = Report::new();
    let mut oracle = CostOracle::new(pod.models()?, workload.networks());
    let pod_name = pod.to_string();
    let names: Vec<String> = workload
        .networks()
        .iter()
        .map(|n| n.name().to_string())
        .collect();
    let weights = workload.weights().to_vec();
    let n_nets = workload.len();

    // SRV004 — dispatch legality. Every (array, network) pair must
    // price (the engine prices all idle arrays, so one infeasible pair
    // aborts a simulation); under sharded dispatch the LPT plan is
    // additionally re-derived from its assignment and each op's fold
    // plan is audited on its target array.
    let mut pricing_ok = true;
    for (net, name) in names.iter().enumerate() {
        for array in 0..pod.len() {
            if let Err(e) = oracle.request_cycles(array, net, 1) {
                pricing_ok = false;
                report.push(diag(
                    RuleId::Srv004ShardPlanIllegal,
                    Severity::Error,
                    format!("{} / {} on {}", pod_name, name, pod.arrays[array].name()),
                    format!("operator unpriceable on its dispatch target: {e}"),
                    "remove the degenerate network from the mix or fix the array spec",
                ));
            }
        }
    }
    if cfg.dispatch == Dispatch::Sharded && pricing_ok {
        for (net, name) in names.iter().enumerate() {
            audit_shard_plan(&mut oracle, pod, net, name, &mut report)?;
        }
    }

    // SRV003 — bucket coverage: requests of a network with no
    // provisioned shape bucket never pass admission.
    if let (BatchPolicy::Bucketed { .. }, Some(k)) = (cfg.policy, cfg.shape_buckets) {
        for net in 0..n_nets {
            if net >= k && weights[net] > 0 {
                report.push(diag(
                    RuleId::Srv003BucketUncovered,
                    Severity::Error,
                    format!("{} / {}", pod_name, names[net]),
                    format!(
                        "no shape bucket admits {} ({} buckets provisioned for {} networks): \
                         every request is rejected at admission",
                        names[net], k, n_nets
                    ),
                    "provision a bucket for every workload network or drop it from the mix",
                ));
            }
        }
    }

    // SRV006a — preemption with zero high-priority traffic is dead
    // configuration: the preemption path can never execute.
    if cfg.preemption && cfg.high_priority_frac <= 0.0 {
        report.push(diag(
            RuleId::Srv006PreemptionDeadOrPerverse,
            Severity::Warning,
            pod_name.clone(),
            "preemption is enabled but the high-priority fraction is 0: \
             no arrival can ever trigger an eviction"
                .to_string(),
            "set --high-frac above 0 or drop --preempt",
        ));
    }

    // Everything below needs every pair priceable.
    if !pricing_ok {
        return Ok(report);
    }

    let mix = workload.mix_fractions();
    let capacity = oracle.pod_capacity(&mix, cfg.dispatch)?;
    let rate = cfg.load * capacity;

    // SRV001 — pod overload. The engine calibrates its mean arrival
    // gap as 1 / (load × capacity) from the same oracle estimate, so
    // ρ = rate / capacity = load exactly; ≥ 1 diverges open-loop.
    let rho = rate / capacity;
    if rho >= 1.0 {
        let mut mean_cost = 0.0;
        for (net, &frac) in mix.iter().enumerate() {
            mean_cost += frac * oracle.best_cycles(net)? as f64;
        }
        report.push(diag(
            RuleId::Srv001PodOverload,
            Severity::Error,
            pod_name.clone(),
            format!(
                "offered load rho = {:.3} >= 1: {:.3e} requests/cycle against pod capacity \
                 {:.3e} requests/cycle (mix mean best-case cost {:.0} cycles) — the open-loop \
                 queue diverges and goodput saturates below the offered rate",
                rho, rate, capacity, mean_cost
            ),
            "lower --load below 1.0 or add arrays to the pod",
        ));
    }

    // SRV002 — SLO attainability: the floor is the cheapest batch-1
    // service anywhere in the pod; an absolute budget below it cannot
    // be met even by a request that never queues.
    if let Some(budget) = cfg.slo_budget_cycles {
        for (net, name) in names.iter().enumerate() {
            let floor = oracle.best_cycles(net)?;
            if floor > budget {
                report.push(diag(
                    RuleId::Srv002SloUnattainable,
                    Severity::Error,
                    format!("{} / {}", pod_name, name),
                    format!(
                        "zero-queueing floor {} cycles exceeds the SLO budget {} cycles: \
                         every {} completion misses its SLO",
                        floor, budget, name
                    ),
                    "raise --slo-budget above the floor or add a faster array",
                ));
            }
        }
    }

    // Worst-case single service window across the mix: under whole
    // dispatch the cheapest-array cost (a lower bound — the dispatcher
    // may do worse), under sharded the LPT makespan.
    let mut s_max = 0u64;
    for (net, &weight) in weights.iter().enumerate() {
        if weight == 0 {
            continue;
        }
        let service = match cfg.dispatch {
            Dispatch::Whole => oracle.best_cycles(net)?,
            Dispatch::Sharded => oracle.shard_plan(net, 1)?.makespan,
        };
        s_max = s_max.max(service);
    }

    // SRV005 — admission-queue sizing: while one worst-case request is
    // in service, arrivals keep coming at the calibrated rate; when the
    // expected count exceeds the queue plus the pod's parallel slack by
    // the safety factor, drops are statistically certain even at ρ < 1.
    if rho < 1.0 {
        let expected_burst = rate * s_max as f64;
        let slack = (cfg.queue_capacity + pod.len()) as f64;
        if expected_burst > BURST_SAFETY_FACTOR * slack {
            report.push(diag(
                RuleId::Srv005QueueUndersized,
                Severity::Warning,
                pod_name.clone(),
                format!(
                    "queue capacity {} cannot absorb the configured burst: one worst-case \
                     service window of {} cycles expects {:.0} arrivals (> {}x the queue + \
                     pod slack of {:.0}) — drops are statically certain despite rho = {:.3}",
                    cfg.queue_capacity, s_max, expected_burst, BURST_SAFETY_FACTOR, slack, rho
                ),
                "raise --queue-cap or rebalance the mix away from the expensive network",
            ));
        }
    }

    // SRV006b — perverse refill: if on every array the pipeline-refill
    // penalty is at least the largest batch any policy launch can
    // carry, the victim's re-run always costs more than the evicted
    // remainder the trigger could possibly save.
    if cfg.preemption && cfg.high_priority_frac > 0.0 {
        let max_batch = policy_max_batch(cfg.policy);
        let mut perverse_everywhere = true;
        let mut worst = (0u64, 0u64); // (refill, max cut) of the last array
        for (a, spec) in pod.arrays.iter().enumerate() {
            let mut max_cut = 0u64;
            for (net, &weight) in weights.iter().enumerate() {
                if weight == 0 {
                    continue;
                }
                max_cut = max_cut.max(oracle.request_cycles(a, net, max_batch)?);
            }
            let refill = spec.refill_penalty();
            worst = (refill, max_cut);
            if refill < max_cut {
                perverse_everywhere = false;
                break;
            }
        }
        if perverse_everywhere {
            report.push(diag(
                RuleId::Srv006PreemptionDeadOrPerverse,
                Severity::Warning,
                pod_name.clone(),
                format!(
                    "pipeline-refill penalty provably exceeds any latency cut: on every array \
                     the refill (e.g. {} cycles) is at least the largest batch service time \
                     (e.g. {} cycles), so each preemption adds more work than it can save",
                    worst.0, worst.1
                ),
                "drop --preempt for this workload; the requests are cheaper than the refill",
            ));
        }
    }

    // SRV007 — statically-dead array: strictly dominated for every
    // network in the mix under whole dispatch, so the dispatcher only
    // ever picks it when all cheaper arrays are busy.
    if cfg.dispatch == Dispatch::Whole && pod.len() > 1 {
        for a in 0..pod.len() {
            let mut dominated = true;
            for (net, &weight) in weights.iter().enumerate() {
                if weight == 0 {
                    continue;
                }
                let own = oracle.request_cycles(a, net, 1)?;
                let mut beaten = false;
                for b in 0..pod.len() {
                    if b != a && oracle.request_cycles(b, net, 1)? < own {
                        beaten = true;
                        break;
                    }
                }
                if !beaten {
                    dominated = false;
                    break;
                }
            }
            if dominated {
                report.push(diag(
                    RuleId::Srv007StaticallyDeadArray,
                    Severity::Warning,
                    format!("{} / array {} ({})", pod_name, a, pod.arrays[a].name()),
                    format!(
                        "array {} is never the cheapest dispatch target for any network in \
                         the mix: predicted utilization 0 until every cheaper array saturates",
                        pod.arrays[a].name()
                    ),
                    "remove the array from the pod or route a workload it wins at",
                ));
            }
        }
    }

    Ok(report)
}

/// Re-derives one network's LPT shard plan from its op assignment and
/// audits every op's fold plan on its target array (SRV004).
fn audit_shard_plan(
    oracle: &mut CostOracle,
    pod: &PodSpec,
    net: usize,
    net_name: &str,
    report: &mut Report,
) -> Result<(), ServeError> {
    let plan = oracle.shard_plan(net, 1)?;
    let ops = oracle
        .network_ops(net)
        .map(<[_]>::to_vec)
        .unwrap_or_default();
    let context = format!("{} / {} (sharded)", pod, net_name);
    if plan.assignment.len() != ops.len() {
        report.push(diag(
            RuleId::Srv004ShardPlanIllegal,
            Severity::Error,
            context,
            format!(
                "shard assignment covers {} ops but the network lowers to {}: \
                 the shares do not partition the op list",
                plan.assignment.len(),
                ops.len()
            ),
            "rebuild the shard plan from the network's full op list",
        ));
        return Ok(());
    }
    // Shares must be exactly the per-array sums under the assignment,
    // and the makespan the largest share.
    let mut shares = vec![0u64; pod.len()];
    for (i, (op, &a)) in ops.iter().zip(&plan.assignment).enumerate() {
        let Some(model) = oracle.model(a).copied() else {
            report.push(diag(
                RuleId::Srv004ShardPlanIllegal,
                Severity::Error,
                context.clone(),
                format!("op {i} is assigned to array {a}, which is outside the pod"),
                "rebuild the shard plan against the pod's array list",
            ));
            return Ok(());
        };
        let cost = model.cycles(op)?;
        shares[a] = shares[a].saturating_add(cost);
        // PLAN-audit the op's fold plan on its target array: the share
        // is only meaningful if the fold accounting behind it is sound.
        let folds = model.fold_plan(op)?;
        for v in audit_plan(&model, op, &folds) {
            report.push(diag(
                RuleId::Srv004ShardPlanIllegal,
                Severity::Error,
                context.clone(),
                format!("op {i} fails the fold-plan audit on its target array: {v}"),
                "fix the latency model's fold plan for this op/array pair",
            ));
        }
    }
    if shares != plan.shares {
        report.push(diag(
            RuleId::Srv004ShardPlanIllegal,
            Severity::Error,
            context.clone(),
            format!(
                "plan shares {:?} disagree with the per-array sums {:?} recomputed from \
                 the assignment",
                plan.shares, shares
            ),
            "rebuild the shard plan; its share accounting drifted from its assignment",
        ));
    }
    let max_share = shares.iter().copied().max().unwrap_or(0);
    if plan.makespan != max_share {
        report.push(diag(
            RuleId::Srv004ShardPlanIllegal,
            Severity::Error,
            context,
            format!(
                "plan makespan {} is not the largest share {}",
                plan.makespan, max_share
            ),
            "rebuild the shard plan; its makespan drifted from its shares",
        ));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use fuseconv_models::zoo;

    fn cfg() -> ServeConfig {
        ServeConfig::new()
    }

    fn uniform(nets: Vec<fuseconv_models::Network>) -> Workload {
        Workload::uniform(nets).expect("mix")
    }

    #[test]
    fn clean_config_has_no_findings() {
        let pod = PodSpec::parse("16x16:os,16x16:os").expect("pod");
        let w = uniform(vec![zoo::mobilenet_v1()]);
        let report = analyze_pod(&pod, &w, &cfg()).expect("analysis");
        assert!(report.diagnostics.is_empty(), "{}", report.to_text());
    }

    #[test]
    fn overload_fires_srv001_at_the_boundary() {
        let pod = PodSpec::parse("16x16:os").expect("pod");
        let w = uniform(vec![zoo::mobilenet_v1()]);
        for (load, fires) in [(0.99, false), (1.0, true), (1.5, true)] {
            let report = analyze_pod(&pod, &w, &ServeConfig { load, ..cfg() }).expect("analysis");
            assert_eq!(
                !report.with_rule(RuleId::Srv001PodOverload).is_empty(),
                fires,
                "load {load}: {}",
                report.to_text()
            );
        }
    }

    #[test]
    fn nonsense_configs_error_like_the_engine() {
        let pod = PodSpec::parse("8x8:os").expect("pod");
        let w = uniform(vec![zoo::mobilenet_v1()]);
        for bad in [
            ServeConfig {
                requests: 0,
                ..cfg()
            },
            ServeConfig { load: 0.0, ..cfg() },
            ServeConfig {
                preemption: true,
                dispatch: Dispatch::Sharded,
                ..cfg()
            },
            ServeConfig {
                shape_buckets: Some(1),
                ..cfg()
            },
        ] {
            assert!(matches!(
                analyze_pod(&pod, &w, &bad),
                Err(ServeError::Config(_))
            ));
        }
    }
}

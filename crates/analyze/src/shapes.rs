//! Shape-flow rules (`SHP001`/`SHP002`).
//!
//! Propagates symbolic feature-map shapes ([`fuseconv_models::ShapeFlow`])
//! through a whole topology without expanding a single operator:
//!
//! * **SHP001** (error) — consecutive blocks disagree on the shape flowing
//!   between them. The walk understands the three legal non-identity
//!   transitions the zoo uses: residual branches (a block consuming the
//!   *same* input as its predecessor, e.g. ResNet's projection shortcut),
//!   channel-preserving spatial pooling (max/avg pool between stages), and
//!   global pooling into the classifier (`H×W×C → 1×1×C`).
//! * **SHP002** (error) — a FuSe substitution changes the output shape of
//!   the depthwise block it replaces, or splits the expanded channels into
//!   row/column banks whose concatenation disagrees with the projection's
//!   expected input width (`2·⌊C/D⌋ ≠ ⌊2C/D⌋` for odd `C`).

use crate::diagnostics::{Diagnostic, RuleId, Severity};
use fuseconv_models::{Block, Network, SeparableBlock, Shape, ShapeFlow, SpatialFilter};
use fuseconv_nn::FuSeVariant;

/// Whether `cur` may legally follow `prev` in a topology.
fn transition_ok(prev_in: Shape, prev_out: Shape, cur_in: Shape) -> bool {
    // The common case: straight-line dataflow.
    if cur_in == prev_out {
        return true;
    }
    // A parallel branch re-reading the block input (residual shortcut
    // projection, or the main path listed after its shortcut).
    if cur_in == prev_in {
        return true;
    }
    // Channel-preserving spatial down-sampling between the blocks: an
    // inter-stage pooling layer (topologies model pooling implicitly via
    // `set_resolution`), including the global pool before the classifier
    // (`h = w = 1`).
    cur_in.c == prev_out.c && cur_in.h <= prev_out.h && cur_in.w <= prev_out.w
}

/// Checks the bank-splitting arithmetic of one fused (or hypothetically
/// fused) separable block: the row+column banks each filter `⌊C/D⌋`
/// channels and concatenate, so the projection must expect exactly
/// `2·⌊C/D⌋` input channels.
fn bank_width_consistent(b: &SeparableBlock, variant: FuSeVariant) -> bool {
    let fused = b.fused(variant);
    2 * (b.exp_c / variant.d()) == fused.spatial_out_c()
}

/// Audits the shape flow of a whole network. An empty result proves the
/// topology is shape-consistent and every FuSe substitution (actual and
/// hypothetical) preserves the shape contract of the block it replaces.
pub fn analyze_shapes(net: &Network) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    let label = format!("{}[{}]", net.name(), net.variant_label());

    // SHP001: pairwise chain consistency.
    let blocks = net.blocks();
    for pair in blocks.windows(2) {
        let [(prev_name, prev), (cur_name, cur)] = pair else {
            continue;
        };
        if !transition_ok(prev.input_shape(), prev.output_shape(), cur.input_shape()) {
            out.push(Diagnostic {
                rule: RuleId::Shp001ShapeMismatch,
                severity: Severity::Error,
                context: format!("{label}/{cur_name}"),
                message: format!(
                    "block `{cur}` expects {} but `{prev_name}` produces {} \
                     (from input {})",
                    cur.input_shape(),
                    prev.output_shape(),
                    prev.input_shape()
                ),
                dependence: None,
                suggestion: "fix the topology so consecutive blocks agree on the \
                             feature-map shape"
                    .into(),
            });
        }
    }

    // SHP002: substitution shape preservation, for every separable block.
    for (name, block) in blocks {
        let Block::Separable(sep) = block else {
            continue;
        };
        let context = format!("{label}/{name}");
        // Variants to vet: the actual filter if already fused, otherwise
        // both candidate substitutions of a replaceable depthwise block.
        let variants: Vec<FuSeVariant> = match sep.filter {
            SpatialFilter::Fuse(v) => vec![v],
            SpatialFilter::Depthwise => vec![FuSeVariant::Full, FuSeVariant::Half],
        };
        let depthwise = SeparableBlock {
            filter: SpatialFilter::Depthwise,
            ..*sep
        };
        for variant in variants {
            let fused = depthwise.fused(variant);
            if fused.output_shape() != depthwise.output_shape() {
                out.push(Diagnostic {
                    rule: RuleId::Shp002SubstitutionShapeChange,
                    severity: Severity::Error,
                    context: context.clone(),
                    message: format!(
                        "fuse-{variant} substitution changes the block output from \
                         {} to {}",
                        depthwise.output_shape(),
                        fused.output_shape()
                    ),
                    dependence: None,
                    suggestion: "a FuSe substitution must be a drop-in replacement \
                                 (§IV-A); keep stride, kernel and out_c unchanged"
                        .into(),
                });
            } else if !bank_width_consistent(sep, variant) {
                out.push(Diagnostic {
                    rule: RuleId::Shp002SubstitutionShapeChange,
                    severity: Severity::Error,
                    context: context.clone(),
                    message: format!(
                        "fuse-{variant} banks concatenate to {} channels but the \
                         projection expects {} (exp_c = {} is not divisible by \
                         D = {})",
                        2 * (sep.exp_c / variant.d()),
                        fused.spatial_out_c(),
                        sep.exp_c,
                        variant.d()
                    ),
                    dependence: None,
                    suggestion: "pad exp_c to a multiple of the variant divisor \
                                 before substituting"
                        .into(),
                });
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use fuseconv_models::zoo;

    #[test]
    fn zoo_topologies_are_shape_consistent() {
        let mut nets = zoo::all_baselines();
        nets.push(zoo::resnet50());
        nets.push(zoo::efficientnet_b0());
        for net in &nets {
            for v in [None, Some(FuSeVariant::Full), Some(FuSeVariant::Half)] {
                let n = match v {
                    None => net.clone(),
                    Some(var) => net.transform_all(var),
                };
                let diags = analyze_shapes(&n);
                assert!(
                    diags.is_empty(),
                    "{} [{}]: {diags:?}",
                    n.name(),
                    n.variant_label()
                );
            }
        }
    }

    #[test]
    fn channel_mismatch_fires_shp001() {
        let net = Network::new(
            "broken",
            vec![
                (
                    "stem".into(),
                    Block::Conv {
                        in_h: 32,
                        in_w: 32,
                        in_c: 3,
                        out_c: 16,
                        k: 3,
                        stride: 1,
                    },
                ),
                (
                    "head".into(),
                    Block::Head {
                        in_h: 32,
                        in_w: 32,
                        in_c: 24, // stem produced 16
                        out_c: 64,
                    },
                ),
            ],
        );
        let diags = analyze_shapes(&net);
        assert!(
            diags
                .iter()
                .any(|d| d.rule == RuleId::Shp001ShapeMismatch && d.severity == Severity::Error),
            "{diags:?}"
        );
    }

    #[test]
    fn spatial_mismatch_fires_shp001() {
        // Spatial *growth* between blocks is not a pooling transition.
        let net = Network::new(
            "broken-spatial",
            vec![
                (
                    "stem".into(),
                    Block::Conv {
                        in_h: 32,
                        in_w: 32,
                        in_c: 3,
                        out_c: 16,
                        k: 3,
                        stride: 2,
                    },
                ),
                (
                    "head".into(),
                    Block::Head {
                        in_h: 32, // stem produced 16×16
                        in_w: 32,
                        in_c: 16,
                        out_c: 64,
                    },
                ),
            ],
        );
        let diags = analyze_shapes(&net);
        assert!(
            diags.iter().any(|d| d.rule == RuleId::Shp001ShapeMismatch),
            "{diags:?}"
        );
    }

    #[test]
    fn odd_expansion_fires_shp002_for_half() {
        let net = Network::new(
            "odd-exp",
            vec![(
                "sep".into(),
                Block::Separable(SeparableBlock {
                    in_h: 14,
                    in_w: 14,
                    in_c: 33,
                    exp_c: 33, // odd: 2·⌊33/2⌋ = 32 ≠ ⌊66/2⌋ = 33
                    out_c: 64,
                    k: 3,
                    stride: 1,
                    se_div: None,
                    filter: SpatialFilter::Depthwise,
                }),
            )],
        );
        let diags = analyze_shapes(&net);
        assert!(
            diags
                .iter()
                .any(|d| d.rule == RuleId::Shp002SubstitutionShapeChange
                    && d.severity == Severity::Error
                    && d.message.contains("half")),
            "{diags:?}"
        );
    }

    #[test]
    fn residual_branch_and_pooling_transitions_are_legal() {
        // ResNet-50 exercises both: branch_conv shares its input with the
        // following conv, and set_resolution models the stem max-pool.
        assert!(analyze_shapes(&zoo::resnet50()).is_empty());
    }
}

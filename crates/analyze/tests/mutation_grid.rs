//! Deterministic mutation grid: perturb every canonical dataflow mapping
//! into each class of illegality and assert the analyzer rejects it with
//! the expected rule ID — and that the pristine mappings stay clean.
//!
//! Randomness (which axis to tamper, which illegal coefficient to inject)
//! comes from the workspace's deterministic [`fuseconv_tensor::rng`], so
//! the grid is reproducible bit-for-bit.

use fuseconv_analyze::{analyze_mapping, RuleId, Severity};
use fuseconv_ria::{IndexExpr, Recurrence, RecurrenceSystem, Schedule, Term};
use fuseconv_systolic::legality::{canonical_mapping, DataflowKind, DataflowMapping};
use fuseconv_systolic::ArrayConfig;
use fuseconv_tensor::rng::Rng;

fn array() -> ArrayConfig {
    ArrayConfig::square(8)
        .expect("8 is nonzero")
        .with_broadcast(true)
}

fn rank_of(mapping: &DataflowMapping) -> usize {
    mapping.schedule.coefficients().len()
}

/// The identity index vector `(x0, ..., x{rank-1})`.
fn identity(rank: usize) -> Vec<IndexExpr> {
    (0..rank).map(IndexExpr::axis).collect()
}

/// Asserts the analyzer reports `rule` at error severity for `mapping`.
fn assert_rejected(mapping: &DataflowMapping, rule: RuleId, what: &str) {
    let diags = analyze_mapping(mapping, &array());
    assert!(
        diags
            .iter()
            .any(|d| d.rule == rule && d.severity == Severity::Error),
        "{what} on {} should raise {}; got {diags:?}",
        mapping.kind,
        rule.code()
    );
}

#[test]
fn pristine_mappings_are_clean() {
    for kind in DataflowKind::ALL {
        let diags = analyze_mapping(&canonical_mapping(kind), &array());
        assert!(diags.is_empty(), "{kind}: {diags:?}");
    }
}

#[test]
fn tampered_schedules_raise_sch001() {
    let mut rng = Rng::seed_from_u64(0xF05E);
    for kind in DataflowKind::ALL {
        for _ in 0..8 {
            let pristine = canonical_mapping(kind);
            let mut tau = pristine.schedule.coefficients().to_vec();
            // Every iteration axis of every canonical system carries a unit
            // dependence, so zeroing or negating any single coefficient is
            // guaranteed illegal.
            let axis = rng.below(tau.len());
            tau[axis] = -(rng.below(3) as i64);
            let mapping = pristine.with_schedule(Schedule::new(tau.clone()));
            assert_rejected(
                &mapping,
                RuleId::Sch001ScheduleViolatesDependence,
                &format!("tau = {tau:?}"),
            );
        }
    }
}

#[test]
fn truncated_schedules_raise_sch001() {
    for kind in DataflowKind::ALL {
        let pristine = canonical_mapping(kind);
        let short = pristine.schedule.coefficients()[1..].to_vec();
        let mapping = pristine.with_schedule(Schedule::new(short));
        assert_rejected(
            &mapping,
            RuleId::Sch001ScheduleViolatesDependence,
            "rank-truncated schedule",
        );
    }
}

#[test]
fn duplicate_assignment_raises_ria001() {
    for kind in DataflowKind::ALL {
        let mut mapping = canonical_mapping(kind);
        let rank = rank_of(&mapping);
        let rec = || Recurrence::new("X", rank, vec![Term::new("X", identity(rank))]);
        mapping.system = RecurrenceSystem::new("dup", vec![rec(), rec()]);
        assert_rejected(
            &mapping,
            RuleId::Ria001MultipleAssignment,
            "duplicated recurrence",
        );
    }
}

#[test]
fn non_constant_offset_raises_ria002() {
    for kind in DataflowKind::ALL {
        let mut mapping = canonical_mapping(kind);
        let rank = rank_of(&mapping);
        // The §III-A pathology: a ⌊x0/3⌋ access, as direct 2-D convolution
        // induces when flattened onto a 1-D index space.
        let mut index = identity(rank);
        index[0] = IndexExpr::axis(0).floor_div(3);
        mapping.system = RecurrenceSystem::new(
            "strided",
            vec![Recurrence::new("X", rank, vec![Term::new("X", index)])],
        );
        assert_rejected(
            &mapping,
            RuleId::Ria002NonConstantOffset,
            "floor-div offset",
        );
    }
}

#[test]
fn rank_mismatch_raises_ria003() {
    for kind in DataflowKind::ALL {
        let mut mapping = canonical_mapping(kind);
        let rank = rank_of(&mapping);
        mapping.system = RecurrenceSystem::new(
            "short-index",
            vec![Recurrence::new(
                "X",
                rank,
                vec![Term::new("X", identity(rank - 1))],
            )],
        );
        assert_rejected(&mapping, RuleId::Ria003RankMismatch, "truncated index");
    }
}

#[test]
fn two_hop_dependences_raise_loc001() {
    let mut rng = Rng::seed_from_u64(0x10CA);
    for kind in DataflowKind::ALL {
        let mut mapping = canonical_mapping(kind);
        let rank = rank_of(&mapping);
        // Offset −2..−3 on a space axis: schedulable, but the projected
        // hop spans more than one PE.
        let axis = mapping.space_axes[rng.below(mapping.space_axes.len())];
        let hop = 2 + rng.below(2) as i64;
        let mut index = identity(rank);
        index[axis] = IndexExpr::axis(axis) - IndexExpr::constant(hop);
        mapping.system = RecurrenceSystem::new(
            "two-hop",
            vec![Recurrence::new("X", rank, vec![Term::new("X", index)])],
        );
        assert_rejected(
            &mapping,
            RuleId::Loc001NonLocalProjection,
            &format!("{hop}-hop dependence"),
        );
    }
}

#[test]
fn broadcast_reuse_needs_the_link() {
    let plain = ArrayConfig::square(8).expect("8 is nonzero");
    let diags = analyze_mapping(&canonical_mapping(DataflowKind::RowBroadcast), &plain);
    assert!(
        diags
            .iter()
            .any(|d| d.rule == RuleId::Loc002BroadcastLinkRequired
                && d.severity == Severity::Error),
        "{diags:?}"
    );
}

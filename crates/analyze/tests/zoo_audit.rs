//! Cross-checks the full model zoo against the static analyzer: every
//! shipped network, in every FuSe variant, must audit with zero
//! error-severity findings on the paper's 64×64 broadcast array — and the
//! Fig. 1(c)–(d) asymmetry must hold: baselines with depthwise layers are
//! flagged UTL001 (single-column GEMM, utilization ≤ 1/W) while their
//! FuSe-transformed counterparts pass with no utilization warnings.

use fuseconv_analyze::{analyze_network, RuleId};
use fuseconv_latency::LatencyModel;
use fuseconv_models::zoo;
use fuseconv_nn::{FuSeVariant, Op};
use fuseconv_systolic::ArrayConfig;

fn paper_model() -> LatencyModel {
    LatencyModel::new(
        ArrayConfig::square(64)
            .expect("64 is nonzero")
            .with_broadcast(true),
    )
}

#[test]
fn every_zoo_network_audits_with_zero_errors() {
    // The full grid the plan-audit CI step sweeps: every network × every
    // variant × the 8/32/64 arrays, all with zero error-severity findings
    // (PLAN/MEM/SHP rules included).
    let mut nets = zoo::all_baselines();
    nets.push(zoo::resnet50());
    nets.push(zoo::efficientnet_b0());
    for side in [8usize, 32, 64] {
        let model = LatencyModel::new(
            ArrayConfig::square(side)
                .expect("side is nonzero")
                .with_broadcast(true),
        );
        for net in &nets {
            for variant in [None, Some(FuSeVariant::Full), Some(FuSeVariant::Half)] {
                let v = match variant {
                    None => net.clone(),
                    Some(var) => net.transform_all(var),
                };
                let report = analyze_network(&model, &v);
                assert!(
                    !report.has_errors(),
                    "{} [{}] at {side}x{side} has error findings:\n{}",
                    v.name(),
                    v.variant_label(),
                    report.to_text()
                );
            }
        }
    }
}

#[test]
fn depthwise_baselines_are_flagged_utl001() {
    let model = paper_model();
    let mut nets = zoo::all_baselines();
    nets.push(zoo::efficientnet_b0());
    for net in &nets {
        let depthwise = net
            .ops()
            .iter()
            .filter(|n| matches!(n.op, Op::Depthwise { .. }))
            .count();
        let report = analyze_network(&model, net);
        let flagged = report.with_rule(RuleId::Utl001SingleColumnGemm).len();
        assert_eq!(
            flagged,
            depthwise,
            "{}: every depthwise layer (and nothing else) should be UTL001\n{}",
            net.name(),
            report.to_text()
        );
        assert!(
            depthwise > 0,
            "{} should contain depthwise layers",
            net.name()
        );
    }
}

#[test]
fn fuse_transformed_networks_carry_no_utilization_warnings() {
    let model = paper_model();
    for net in zoo::all_baselines() {
        for var in [FuSeVariant::Full, FuSeVariant::Half] {
            let fused = net.transform_all(var);
            let report = analyze_network(&model, &fused);
            assert!(
                report.with_rule(RuleId::Utl001SingleColumnGemm).is_empty(),
                "{} [{}]:\n{}",
                fused.name(),
                fused.variant_label(),
                report.to_text()
            );
        }
    }
}

#[test]
fn resnet_has_no_depthwise_and_no_utl001() {
    let report = analyze_network(&paper_model(), &zoo::resnet50());
    assert!(report.with_rule(RuleId::Utl001SingleColumnGemm).is_empty());
    assert!(!report.has_errors());
}

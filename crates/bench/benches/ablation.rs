//! Ablation bench (DESIGN.md E11 + modelling-choice ablations): dataflow ×
//! fold-overlap sweep, and the Neural Operator Search. Regenerates the
//! ablation tables, then times the NOS frontier computation and the model
//! under every accounting mode.

use fuseconv_bench::micro::{BenchmarkId, Micro};
use fuseconv_bench::{banner, paper_array};
use fuseconv_core::nos;
use fuseconv_latency::{estimate_network, Dataflow, FoldOverlap, LatencyModel};
use fuseconv_models::zoo;
use fuseconv_nn::FuSeVariant;
use std::hint::black_box;

fn print_dataflow_ablation() {
    banner("ablation: dataflow x fold-overlap (MobileNet-V2)");
    let net = zoo::mobilenet_v2();
    let full = net.transform_all(FuSeVariant::Full);
    let half = net.transform_all(FuSeVariant::Half);
    for dataflow in [Dataflow::OutputStationary, Dataflow::WeightStationary] {
        for overlap in [FoldOverlap::Serial, FoldOverlap::DoubleBuffered] {
            let model = LatencyModel::new(paper_array())
                .with_dataflow(dataflow)
                .with_overlap(overlap);
            let base = estimate_network(&model, &net).expect("estimate");
            let f = estimate_network(&model, &full).expect("estimate");
            let h = estimate_network(&model, &half).expect("estimate");
            println!(
                "{dataflow:?}/{overlap:?}: base {} cycles, full {:.2}x, half {:.2}x",
                base.total_cycles,
                f.speedup_over(&base),
                h.speedup_over(&base)
            );
        }
    }
}

fn print_nos_frontiers() {
    banner("E11: NOS Pareto frontier sizes");
    for net in zoo::all_baselines() {
        let frontier = nos::pareto_frontier(&net, &paper_array()).expect("frontier");
        println!(
            "{:<20} {:>3} frontier points over {} replaceable blocks",
            net.name(),
            frontier.len(),
            net.replaceable_indices().len()
        );
    }
}

fn bench_ablation(c: &mut Micro) {
    print_dataflow_ablation();
    print_nos_frontiers();

    let mut group = c.benchmark_group("ablation/estimate_v2_full");
    let full = zoo::mobilenet_v2().transform_all(FuSeVariant::Full);
    for (label, dataflow, overlap) in [
        ("os_serial", Dataflow::OutputStationary, FoldOverlap::Serial),
        (
            "os_db",
            Dataflow::OutputStationary,
            FoldOverlap::DoubleBuffered,
        ),
        ("ws_serial", Dataflow::WeightStationary, FoldOverlap::Serial),
        (
            "ws_db",
            Dataflow::WeightStationary,
            FoldOverlap::DoubleBuffered,
        ),
    ] {
        let model = LatencyModel::new(paper_array())
            .with_dataflow(dataflow)
            .with_overlap(overlap);
        group.bench_with_input(BenchmarkId::from_parameter(label), &model, |b, model| {
            b.iter(|| estimate_network(model, black_box(&full)).expect("estimate"))
        });
    }
    group.finish();

    let mut group = c.benchmark_group("nos/pareto_frontier");
    for net in [zoo::mobilenet_v3_small(), zoo::mobilenet_v2()] {
        group.bench_with_input(
            BenchmarkId::from_parameter(net.name().to_string()),
            &net,
            |b, net| b.iter(|| nos::pareto_frontier(black_box(net), &paper_array()).expect("ok")),
        );
    }
    group.finish();
}

fn main() {
    let mut c = Micro::from_env();
    bench_ablation(&mut c);
}

//! Bench target for **Fig. 8(b)/(c)/(d)** (experiments E5/E6/E7):
//! regenerates each figure's series, then times its driver.

use fuseconv_bench::micro::{BenchmarkId, Micro};
use fuseconv_bench::{banner, paper_array};
use fuseconv_core::experiments::{array_scaling, layerwise, operator_breakdown};
use fuseconv_core::variant::Variant;
use fuseconv_models::zoo;
use std::hint::black_box;

fn print_fig8b() {
    banner("Fig. 8(b): MobileNet-V2 FuSe-Full layer-wise speed-up");
    let rows =
        layerwise(&zoo::mobilenet_v2(), Variant::FuseFull, &paper_array()).expect("layerwise");
    for row in rows.iter().filter(|r| r.transformed) {
        println!("{:<10} {:>6.2}x", row.block, row.speedup);
    }
}

fn print_fig8c() {
    banner("Fig. 8(c): operator-class latency distribution");
    let rows = operator_breakdown(&paper_array()).expect("breakdown");
    for row in &rows {
        print!("{:<20} {:<10}", row.network, row.variant.to_string());
        for (class, fraction) in &row.fractions {
            print!("  {class}: {:4.1}%", fraction * 100.0);
        }
        println!();
    }
}

fn print_fig8d(sizes: &[usize]) {
    banner("Fig. 8(d): FuSe-Full speed-up vs array size");
    let rows = array_scaling(sizes).expect("scaling");
    for row in &rows {
        println!(
            "{:<20} {:>4}x{:<4} {:>6.2}x",
            row.network, row.array_size, row.array_size, row.speedup
        );
    }
}

fn bench_fig8(c: &mut Micro) {
    let sizes = [8usize, 16, 32, 64, 128];
    print_fig8b();
    print_fig8c();
    print_fig8d(&sizes);

    c.bench_function("fig8b/layerwise_v2_full", |b| {
        let net = zoo::mobilenet_v2();
        b.iter(|| layerwise(black_box(&net), Variant::FuseFull, &paper_array()).expect("rows"))
    });
    c.bench_function("fig8c/operator_breakdown", |b| {
        b.iter(|| operator_breakdown(black_box(&paper_array())).expect("rows"))
    });
    let mut group = c.benchmark_group("fig8d/array_scaling");
    for s in sizes {
        group.bench_with_input(BenchmarkId::from_parameter(s), &s, |b, &s| {
            b.iter(|| array_scaling(black_box(&[s])).expect("rows"))
        });
    }
    group.finish();
}

fn main() {
    let mut c = Micro::from_env();
    bench_fig8(&mut c);
}

//! Bench target for the **§V-B-5 area/power overhead** experiment (E8):
//! regenerates the overhead table, then times the structural cost model.

use fuseconv_bench::banner;
use fuseconv_bench::micro::{BenchmarkId, Micro};
use fuseconv_core::experiments::hw_overhead;
use fuseconv_core::paper::HW_OVERHEAD_32X32;
use fuseconv_hwcost::TechnologyProfile;
use std::hint::black_box;

fn print_overheads(sizes: &[usize]) {
    banner("§V-B-5: broadcast-link area/power overhead");
    for (s, o) in hw_overhead(sizes) {
        println!(
            "{s:>4}x{s:<4} area +{:.2}%  power +{:.2}%",
            o.area_pct, o.power_pct
        );
    }
    println!(
        "paper @32x32: area +{:.2}%  power +{:.2}%",
        HW_OVERHEAD_32X32.0, HW_OVERHEAD_32X32.1
    );
}

fn bench_hw(c: &mut Micro) {
    let sizes = [8usize, 16, 32, 64, 128, 256];
    print_overheads(&sizes);

    let tech = TechnologyProfile::nangate45();
    let mut group = c.benchmark_group("hwcost/broadcast_overhead");
    for s in [32usize, 256] {
        group.bench_with_input(BenchmarkId::from_parameter(s), &s, |b, &s| {
            b.iter(|| tech.broadcast_overhead(black_box(s), black_box(s)))
        });
    }
    group.finish();
}

fn main() {
    let mut c = Micro::from_env();
    bench_hw(&mut c);
}

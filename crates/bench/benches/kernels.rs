//! Micro-benchmarks of the functional kernels: the reference layer
//! implementations that back the accuracy study and every golden-model
//! comparison. Not a paper artifact per se, but the harness users profile
//! when extending the library.

use fuseconv_bench::micro::{BenchmarkId, Micro};
use fuseconv_nn::conv::{conv2d, depthwise2d, pointwise, Conv2dSpec};
use fuseconv_nn::{FuSeConv, FuSeVariant};
use fuseconv_tensor::Tensor;
use std::hint::black_box;

fn tensor(dims: &[usize]) -> Tensor {
    let mut i = 0u32;
    Tensor::from_fn(dims, |_| {
        i = i.wrapping_mul(1664525).wrapping_add(1013904223);
        (i >> 16) as f32 / 65536.0 - 0.5
    })
    .expect("valid dims")
}

fn bench_kernels(c: &mut Micro) {
    // A representative mid-network shape: 32 channels at 28x28.
    let (ch, h, w, k) = (32usize, 28usize, 28usize, 3usize);
    let input = tensor(&[ch, h, w]);

    c.bench_function("kernels/conv2d_3x3_32to32@28", |b| {
        let weight = tensor(&[ch, ch, k, k]);
        let spec = Conv2dSpec::square(k, 1, 1).expect("spec");
        b.iter(|| conv2d(black_box(&input), &weight, &spec).expect("conv"))
    });

    c.bench_function("kernels/depthwise_3x3_c32@28", |b| {
        let weight = tensor(&[ch, k, k]);
        let spec = Conv2dSpec::square(k, 1, 1).expect("spec");
        b.iter(|| depthwise2d(black_box(&input), &weight, &spec).expect("dw"))
    });

    let mut group = c.benchmark_group("kernels/fuseconv_c32@28");
    for variant in [FuSeVariant::Full, FuSeVariant::Half] {
        let layer = FuSeConv::new(
            variant,
            ch,
            k,
            1,
            tensor(&[ch / variant.d(), 1, k]),
            tensor(&[ch / variant.d(), k, 1]),
        )
        .expect("layer");
        group.bench_with_input(BenchmarkId::from_parameter(variant), &layer, |b, layer| {
            b.iter(|| layer.forward(black_box(&input)).expect("fuse"))
        });
    }
    group.finish();

    c.bench_function("kernels/pointwise_32to64@28", |b| {
        let weight = tensor(&[64, ch]);
        b.iter(|| pointwise(black_box(&input), &weight).expect("pw"))
    });
}

fn main() {
    let mut c = Micro::from_env();
    bench_kernels(&mut c);
}

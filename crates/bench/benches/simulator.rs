//! Bench target for the cycle-level simulator, including the **§III-B vs
//! §IV-C utilization** comparison (experiment E10): regenerates the
//! utilization numbers, then times both dataflows.

use fuseconv_bench::banner;
use fuseconv_bench::micro::{BenchmarkId, Micro};
use fuseconv_systolic::{conv1d, gemm, ArrayConfig};
use fuseconv_tensor::Tensor;
use std::hint::black_box;

fn print_utilization() {
    banner("E10: array utilization, im2col single-column vs FuSe broadcast");
    let array = ArrayConfig::square(16).expect("16").with_broadcast(true);
    // 16 channels of 3-tap filtering over 16 outputs each.
    let patches = Tensor::full(&[16, 9], 1.0).expect("patches");
    let kernel = Tensor::full(&[9, 1], 0.5).expect("kernel");
    let one = gemm::simulate(&array, &patches, &kernel).expect("sim");
    let im2col_cycles = one.cycles() * 16;
    let im2col_util = one.utilization(); // identical per channel

    let work: Vec<conv1d::ChannelLines> = (0..16)
        .map(|_| conv1d::ChannelLines {
            kernel: vec![0.5, 1.0, 0.5],
            lines: vec![vec![1.0; 18]],
        })
        .collect();
    let fuse = conv1d::simulate_packed(&array, &work).expect("sim");
    println!(
        "im2col : {} cycles, utilization {:5.1}%",
        im2col_cycles,
        im2col_util * 100.0
    );
    println!(
        "fuse   : {} cycles, utilization {:5.1}%  (speed-up {:.1}x)",
        fuse.cycles(),
        fuse.utilization() * 100.0,
        im2col_cycles as f64 / fuse.cycles() as f64
    );
}

fn bench_simulator(c: &mut Micro) {
    print_utilization();

    let mut group = c.benchmark_group("simulator/os_gemm");
    for s in [8usize, 16, 32] {
        let array = ArrayConfig::square(s).expect("nonzero");
        let a = Tensor::full(&[2 * s, 24], 1.0).expect("a");
        let b_mat = Tensor::full(&[24, 2 * s], 1.0).expect("b");
        group.bench_with_input(BenchmarkId::from_parameter(s), &array, |bench, array| {
            bench.iter(|| gemm::simulate(array, black_box(&a), black_box(&b_mat)).expect("sim"))
        });
    }
    group.finish();

    let mut group = c.benchmark_group("simulator/broadcast_conv1d");
    for channels in [8usize, 32, 128] {
        let array = ArrayConfig::square(16).expect("16").with_broadcast(true);
        let work: Vec<conv1d::ChannelLines> = (0..channels)
            .map(|_| conv1d::ChannelLines {
                kernel: vec![0.25, 0.5, 0.25],
                lines: (0..8).map(|_| vec![1.0; 18]).collect(),
            })
            .collect();
        group.bench_with_input(
            BenchmarkId::from_parameter(channels),
            &work,
            |bench, work| {
                bench.iter(|| conv1d::simulate_packed(&array, black_box(work)).expect("sim"))
            },
        );
    }
    group.finish();

    // The analytic forms the latency model relies on (must stay cheap:
    // Table I evaluates thousands of them).
    c.bench_function("simulator/analytic_gemm_cycles", |b| {
        let array = ArrayConfig::square(64).expect("64");
        b.iter(|| gemm::analytic_cycles(&array, black_box(12544), 64, 128))
    });
    c.bench_function("simulator/analytic_packed_cycles", |b| {
        let array = ArrayConfig::square(64).expect("64").with_broadcast(true);
        b.iter(|| conv1d::analytic_cycles_packed(&array, black_box(512), 14, 14, 3))
    });
}

fn main() {
    let mut c = Micro::from_env();
    bench_simulator(&mut c);
}

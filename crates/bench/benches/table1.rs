//! Bench target for **Table I** (experiments E1/E2/E4, incl. Fig. 8(a)
//! latencies): regenerates the table once, then times the latency
//! estimation per network × variant.

use fuseconv_bench::micro::{BenchmarkId, Micro};
use fuseconv_bench::{banner, paper_array};
use fuseconv_core::experiments::table1;
use fuseconv_core::paper;
use fuseconv_core::variant::{apply_variant, Variant};
use fuseconv_latency::{estimate_network, LatencyModel};
use fuseconv_models::zoo;
use std::hint::black_box;

fn print_table1() {
    banner("Table I (measured vs paper)");
    let rows = table1(&paper_array()).expect("table1");
    println!(
        "{:<20} {:<14} {:>9} {:>8} {:>12} {:>8} {:>8}",
        "network", "variant", "MACs(M)", "par(M)", "cycles", "speedup", "paper"
    );
    for row in &rows {
        let ps = paper::lookup(&row.network, row.variant)
            .map(|p| format!("{:.2}x", p.speedup))
            .unwrap_or_default();
        println!(
            "{:<20} {:<14} {:>9.0} {:>8.2} {:>12} {:>7.2}x {:>8}",
            row.network,
            row.variant.to_string(),
            row.macs_millions,
            row.params_millions,
            row.latency_cycles,
            row.speedup,
            ps
        );
    }
}

fn bench_table1(c: &mut Micro) {
    print_table1();

    let array = paper_array();
    let model = LatencyModel::new(array);
    let mut group = c.benchmark_group("table1/estimate_network");
    for baseline in zoo::all_baselines() {
        for variant in [Variant::Baseline, Variant::FuseFull, Variant::FuseHalf] {
            let net = apply_variant(&baseline, variant, &array).expect("transform");
            group.bench_with_input(
                BenchmarkId::new(baseline.name(), variant),
                &net,
                |b, net| b.iter(|| estimate_network(&model, black_box(net)).expect("estimate")),
            );
        }
    }
    group.finish();

    // The full Table I generation (includes the latency-guided 50% block
    // selection, the expensive part).
    c.bench_function("table1/full_generation", |b| {
        b.iter(|| table1(black_box(&array)).expect("table1"))
    });
}

fn main() {
    let mut c = Micro::from_env();
    bench_table1(&mut c);
}

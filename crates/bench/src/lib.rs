//! Shared helpers for the benchmark harness.
//!
//! Each bench target regenerates one of the paper's tables or figures —
//! printing the same rows/series the paper reports — and then times the
//! computation that produced it with the offline [`micro`] harness. The
//! experiment ↔ bench mapping is indexed in `DESIGN.md` (E1–E10).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod micro;
pub mod suite;

use fuseconv_systolic::ArrayConfig;
use std::io::Write as _;

/// The paper's evaluation array: 64×64 with row-broadcast links (§V-A-3).
pub fn paper_array() -> ArrayConfig {
    ArrayConfig::square(64)
        .expect("64 is nonzero")
        .with_broadcast(true)
}

/// Prints a banner separating regenerated artifacts in bench output.
pub fn banner(title: &str) {
    let _ = writeln!(std::io::stdout(), "\n=== {title} ===");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_array_is_64x64_broadcast() {
        let a = paper_array();
        assert_eq!((a.rows(), a.cols()), (64, 64));
        assert!(a.has_broadcast());
    }
}

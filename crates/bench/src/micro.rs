//! A minimal stopwatch-based micro-bench harness.
//!
//! The workspace builds fully offline, so instead of Criterion the bench
//! targets use this drop-in subset of its API: [`Micro`] stands in for
//! `Criterion`, with `bench_function`, `benchmark_group`,
//! `bench_with_input` and [`BenchmarkId`] mirroring the shapes the bench
//! sources were written against. Timing is adaptive: each bench gets one
//! calibration pass, then as many iterations as fit the per-bench budget
//! (default 100 ms, overridable via `FUSECONV_BENCH_BUDGET_MS`), spent as
//! five equal batches of which the fastest is reported (min-of-5
//! discards scheduler noise).

use fuseconv_telemetry::Stopwatch;
use std::fmt::Display;
use std::io::Write as _;
use std::time::Duration;

fn fmt_per_iter(ns: f64) -> String {
    if ns < 1e3 {
        format!("{ns:.1} ns")
    } else if ns < 1e6 {
        format!("{:.2} us", ns / 1e3)
    } else if ns < 1e9 {
        format!("{:.2} ms", ns / 1e6)
    } else {
        format!("{:.3} s", ns / 1e9)
    }
}

/// Passed to bench closures; call [`Bencher::iter`] with the code under
/// test.
pub struct Bencher {
    budget: Duration,
    iters: u64,
    total: Duration,
}

impl Bencher {
    /// Times `f`: one untimed calibration pass sizes the iteration count
    /// to the harness budget, then the budget is spent as five equal
    /// timed batches and the fastest batch wins — the min discards
    /// scheduler/migration noise that a single long batch would fold
    /// into its mean.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        let t0 = Stopwatch::start();
        std::hint::black_box(f());
        let once = t0.elapsed().max(Duration::from_nanos(1));
        let n = (self.budget.as_nanos() / once.as_nanos()).clamp(1, 100_000) as u64;
        let per_batch = (n / 5).max(1);
        let mut best = Duration::MAX;
        for _ in 0..5 {
            let t1 = Stopwatch::start();
            for _ in 0..per_batch {
                std::hint::black_box(f());
            }
            best = best.min(t1.elapsed());
        }
        self.total = best;
        self.iters = per_batch;
    }
}

/// The timing outcome of one completed bench.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchRecord {
    /// Full bench name (`group/label` for grouped benches).
    pub name: String,
    /// Mean wall time per iteration, nanoseconds.
    pub ns_per_iter: f64,
    /// Timed iterations the mean was taken over.
    pub iters: u64,
}

/// The harness: a drop-in stand-in for `criterion::Criterion`.
pub struct Micro {
    budget: Duration,
    records: Vec<BenchRecord>,
}

impl Micro {
    /// A harness with the default 100 ms per-bench budget.
    pub fn new() -> Self {
        Micro {
            budget: Duration::from_millis(100),
            records: Vec::new(),
        }
    }

    /// Reads the per-bench budget from `FUSECONV_BENCH_BUDGET_MS` (smoke
    /// runs in CI set a small value; unset means the 100 ms default).
    pub fn from_env() -> Self {
        let ms = std::env::var("FUSECONV_BENCH_BUDGET_MS")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(100);
        Micro::with_budget_ms(ms)
    }

    /// A harness with an explicit per-bench budget in milliseconds.
    pub fn with_budget_ms(ms: u64) -> Self {
        Micro {
            budget: Duration::from_millis(ms),
            records: Vec::new(),
        }
    }

    /// Every completed bench's timing, in run order.
    pub fn records(&self) -> &[BenchRecord] {
        &self.records
    }

    /// The most recently completed bench, if any.
    pub fn last_record(&self) -> Option<&BenchRecord> {
        self.records.last()
    }

    fn run(&mut self, name: &str, b: &mut Bencher) {
        let ns = if b.iters == 0 {
            0.0
        } else {
            b.total.as_nanos() as f64 / b.iters as f64
        };
        self.records.push(BenchRecord {
            name: name.to_string(),
            ns_per_iter: ns,
            iters: b.iters,
        });
        let _ = writeln!(
            std::io::stdout(),
            "bench {name:<52} {:>12}/iter  (n={})",
            fmt_per_iter(ns),
            b.iters
        );
    }

    /// Runs one named bench.
    pub fn bench_function(&mut self, name: &str, mut f: impl FnMut(&mut Bencher)) -> &mut Self {
        let mut b = Bencher {
            budget: self.budget,
            iters: 0,
            total: Duration::ZERO,
        };
        f(&mut b);
        self.run(name, &mut b);
        self
    }

    /// Opens a named group of benches.
    pub fn benchmark_group(&mut self, name: &str) -> Group<'_> {
        Group {
            harness: self,
            name: name.to_string(),
        }
    }
}

impl Default for Micro {
    fn default() -> Self {
        Self::new()
    }
}

/// A named group of benches, mirroring `criterion::BenchmarkGroup`.
pub struct Group<'a> {
    harness: &'a mut Micro,
    name: String,
}

impl Group<'_> {
    /// Runs one bench inside the group, labelled by `id`, with `input`
    /// passed through to the closure.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id.0);
        let mut b = Bencher {
            budget: self.harness.budget,
            iters: 0,
            total: Duration::ZERO,
        };
        f(&mut b, input);
        self.harness.run(&full, &mut b);
        self
    }

    /// Ends the group (kept for API parity; nothing to flush).
    pub fn finish(self) {}
}

/// A bench label, mirroring `criterion::BenchmarkId`.
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// A two-part label: `function/parameter`.
    pub fn new(function: impl Display, parameter: impl Display) -> Self {
        BenchmarkId(format!("{function}/{parameter}"))
    }

    /// A label consisting of a parameter alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId(parameter.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Micro {
        Micro {
            budget: Duration::from_millis(1),
            records: Vec::new(),
        }
    }

    #[test]
    fn bencher_runs_and_counts_iterations() {
        let mut h = tiny();
        let mut count = 0u64;
        h.bench_function("noop", |b| {
            b.iter(|| {
                count += 1;
            })
        });
        assert!(count >= 2, "calibration + at least one timed iteration");
        let rec = h.last_record().unwrap();
        assert_eq!(rec.name, "noop");
        assert!(rec.iters >= 1);
        assert!(rec.ns_per_iter >= 0.0);
    }

    #[test]
    fn groups_and_ids_compose() {
        let mut h = tiny();
        let mut g = h.benchmark_group("grp");
        g.bench_with_input(BenchmarkId::from_parameter(42), &3usize, |b, &x| {
            b.iter(|| x * 2)
        });
        g.bench_with_input(BenchmarkId::new("f", "p"), &1usize, |b, &x| b.iter(|| x));
        g.finish();
    }

    #[test]
    fn per_iter_formatting_picks_units() {
        assert!(fmt_per_iter(12.0).ends_with("ns"));
        assert!(fmt_per_iter(12e3).ends_with("us"));
        assert!(fmt_per_iter(12e6).ends_with("ms"));
        assert!(fmt_per_iter(12e9).ends_with('s'));
    }
}

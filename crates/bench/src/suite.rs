//! The fixed micro-bench suite behind `fuseconv bench` and the
//! `BENCH_fuseconv.json` trajectory file.
//!
//! Five cycle-exact simulator benches (one per dataflow plus the packed
//! FuSe path), two analytic benches (fold planning and counter replay),
//! one static-analysis bench (fold-plan-IR fusion legality) and three
//! serving-simulator benches (10k-request pod runs, one with the
//! time-series recorder attached) run under
//! the [`crate::micro`] harness; each reports wall time per iteration
//! *and* the simulated cycle count of its workload, giving a
//! machine-independent `cycles/sec` throughput figure.
//!
//! Regression gating normalizes per-bench ratios by the suite geomean
//! before comparing against the committed baseline, so a uniformly faster
//! or slower CI machine cancels out and only *relative* regressions of a
//! single bench trip the gate.

use crate::micro::Micro;
use fuseconv_latency::LatencyModel;
use fuseconv_models::zoo;
use fuseconv_nn::ops::Op;
use fuseconv_perf::replay_counted;
use fuseconv_serve as serve;
use fuseconv_systolic::conv1d::ChannelLines;
use fuseconv_systolic::{conv1d, gemm, is_gemm, ws_gemm, ArrayConfig};
use fuseconv_tensor::rng::Rng;
use fuseconv_tensor::Tensor;
use fuseconv_trace::FoldSpec;
use std::fmt::Write as _;

/// One suite bench's outcome: wall time plus the simulated-cycle count of
/// the workload it times.
#[derive(Debug, Clone, PartialEq)]
pub struct SuiteBench {
    /// Bench name (stable across runs; the JSON key).
    pub name: String,
    /// Mean wall nanoseconds per iteration.
    pub ns_per_iter: f64,
    /// Timed iterations.
    pub iters: u64,
    /// Simulated cycles covered by one iteration.
    pub cycles: u64,
}

impl SuiteBench {
    /// Simulated cycles per wall-clock second — the machine-dependent
    /// throughput figure `BENCH_fuseconv.json` tracks.
    pub fn cycles_per_sec(&self) -> f64 {
        if self.ns_per_iter <= 0.0 {
            0.0
        } else {
            self.cycles as f64 * 1e9 / self.ns_per_iter
        }
    }
}

fn tensor(rng: &mut Rng, dims: &[usize]) -> Tensor {
    Tensor::from_fn(dims, |_| rng.uniform(-1.0, 1.0)).expect("nonzero dims")
}

fn record(h: &Micro, cycles: u64) -> SuiteBench {
    let rec = h.last_record().expect("bench just ran");
    SuiteBench {
        name: rec.name.clone(),
        ns_per_iter: rec.ns_per_iter,
        iters: rec.iters,
        cycles,
    }
}

/// Runs the fixed suite under `h`, returning one [`SuiteBench`] per bench
/// in a stable order.
///
/// # Panics
///
/// Panics only if a fixed-shape workload is rejected by the simulator —
/// impossible without a simulator bug.
pub fn run_suite(h: &mut Micro) -> Vec<SuiteBench> {
    let _span = fuseconv_telemetry::span("bench.suite");
    let mut out = Vec::new();
    let cfg = ArrayConfig::new(16, 16)
        .expect("nonzero dims")
        .with_broadcast(true);
    let mut rng = Rng::seed_from_u64(0xBE5C);
    let a = tensor(&mut rng, &[48, 32]);
    let b = tensor(&mut rng, &[32, 40]);

    let cycles = gemm::simulate(&cfg, &a, &b).expect("valid gemm").cycles();
    h.bench_function("sim/gemm_os", |ben| {
        ben.iter(|| gemm::simulate(&cfg, &a, &b).expect("valid gemm"))
    });
    out.push(record(h, cycles));

    let cycles = ws_gemm::simulate(&cfg, &a, &b)
        .expect("valid gemm")
        .cycles();
    h.bench_function("sim/gemm_ws", |ben| {
        ben.iter(|| ws_gemm::simulate(&cfg, &a, &b).expect("valid gemm"))
    });
    out.push(record(h, cycles));

    let cycles = is_gemm::simulate(&cfg, &a, &b)
        .expect("valid gemm")
        .cycles();
    h.bench_function("sim/gemm_is", |ben| {
        ben.iter(|| is_gemm::simulate(&cfg, &a, &b).expect("valid gemm"))
    });
    out.push(record(h, cycles));

    let inputs: Vec<Vec<f32>> = (0..20)
        .map(|_| (0..26).map(|_| rng.uniform(-1.0, 1.0)).collect())
        .collect();
    let kernels: Vec<Vec<f32>> = (0..20)
        .map(|_| (0..3).map(|_| rng.uniform(-1.0, 1.0)).collect())
        .collect();
    let cycles = conv1d::simulate(&cfg, &inputs, &kernels)
        .expect("valid conv1d")
        .cycles();
    h.bench_function("sim/conv1d_bcast", |ben| {
        ben.iter(|| conv1d::simulate(&cfg, &inputs, &kernels).expect("valid conv1d"))
    });
    out.push(record(h, cycles));

    let work: Vec<ChannelLines> = (0..6)
        .map(|_| ChannelLines {
            kernel: (0..3).map(|_| rng.uniform(-1.0, 1.0)).collect(),
            lines: (0..8)
                .map(|_| (0..10).map(|_| rng.uniform(-1.0, 1.0)).collect())
                .collect(),
        })
        .collect();
    let cycles = conv1d::simulate_packed(&cfg, &work)
        .expect("valid packed conv1d")
        .cycles();
    h.bench_function("sim/conv1d_packed", |ben| {
        ben.iter(|| conv1d::simulate_packed(&cfg, &work).expect("valid packed conv1d"))
    });
    out.push(record(h, cycles));

    let model = LatencyModel::new(crate::paper_array());
    let net = zoo::mobilenet_v1();
    let plan_cycles: u64 = net
        .ops()
        .iter()
        .map(|n| model.cycles(&n.op).expect("zoo op plans"))
        .sum();
    h.bench_function("analytic/fold_plan_mobilenet_v1", |ben| {
        ben.iter(|| {
            net.ops()
                .iter()
                .map(|n| {
                    model
                        .fold_plan(&n.op)
                        .expect("zoo op plans")
                        .iter()
                        .map(FoldSpec::cycles)
                        .sum::<u64>()
                })
                .sum::<u64>()
        })
    });
    out.push(record(h, plan_cycles));

    let dw = Op::depthwise(14, 14, 64, 3, 1, 1);
    let plan = model.fold_plan(&dw).expect("depthwise plans");
    let cycles: u64 = plan.iter().map(FoldSpec::cycles).sum();
    h.bench_function("analytic/counter_replay_depthwise", |ben| {
        ben.iter(|| replay_counted(&plan, 64, 64))
    });
    out.push(record(h, cycles));

    // Fusion-legality analysis over the fold-plan IR: lifts every
    // FuSe row/col -> pointwise pair of FuSe-Full MobileNet-V2, runs the
    // liveness/dependence checks and prices the SRAM savings. `cycles` is
    // the analytic fold-plan total of the analyzed network, so the figure
    // reads as "modeled cycles statically audited per second".
    let fused_v2 = zoo::mobilenet_v2().transform_all(fuseconv_nn::FuSeVariant::Full);
    let budget = fuseconv_analyze::MemoryBudget::paper_default();
    let fused_cycles: u64 = fused_v2
        .ops()
        .iter()
        .map(|n| model.cycles(&n.op).expect("zoo op plans"))
        .sum();
    h.bench_function("analyze/fusion_mobilenet_v2", |ben| {
        ben.iter(|| fuseconv_analyze::analyze_fusion(&model, &fused_v2, &budget))
    });
    out.push(record(h, fused_cycles));

    // Serving-simulator benches: 10k requests through the discrete-event
    // pod. Each iteration rebuilds the cost oracle too, so the figure
    // covers the full `fuseconv serve` hot path; `cycles` is the pod
    // makespan, giving the usual simulated-cycles/sec throughput.
    let pod = serve::PodSpec::parse("16x16:os,8x8:ws").expect("valid pod");
    let workload = serve::Workload::uniform(vec![
        zoo::mobilenet_v3_small().transform_all(fuseconv_nn::FuSeVariant::Full)
    ])
    .expect("valid workload");
    let fifo_cfg = serve::ServeConfig {
        requests: 10_000,
        ..serve::ServeConfig::default()
    };
    let cycles = serve::simulate(&pod, &workload, &fifo_cfg, None)
        .expect("pod simulation runs")
        .makespan_cycles;
    h.bench_function("serve/fifo_10k_requests", |ben| {
        ben.iter(|| serve::simulate(&pod, &workload, &fifo_cfg, None).expect("pod simulation runs"))
    });
    out.push(record(h, cycles));

    let bucketed_cfg = serve::ServeConfig {
        requests: 10_000,
        policy: serve::BatchPolicy::Bucketed {
            max_batch: 8,
            max_wait: 50_000,
        },
        dispatch: serve::Dispatch::Sharded,
        ..serve::ServeConfig::default()
    };
    let cycles = serve::simulate(&pod, &workload, &bucketed_cfg, None)
        .expect("pod simulation runs")
        .makespan_cycles;
    h.bench_function("serve/bucketed_sharded_10k_requests", |ben| {
        ben.iter(|| {
            serve::simulate(&pod, &workload, &bucketed_cfg, None).expect("pod simulation runs")
        })
    });
    out.push(record(h, cycles));

    // The FIFO run again with the time-series recorder attached: the
    // figure prices the observability layer itself, and the overhead
    // test pins it within 10% of the plain `serve/fifo_10k_requests`.
    let ts_cfg = serve::TimeSeriesConfig::new();
    let cycles = serve::simulate_observed(&pod, &workload, &fifo_cfg, None, Some(&ts_cfg))
        .expect("pod simulation runs")
        .0
        .makespan_cycles;
    h.bench_function("serve/timeseries_10k_requests", |ben| {
        ben.iter(|| {
            serve::simulate_observed(&pod, &workload, &fifo_cfg, None, Some(&ts_cfg))
                .expect("pod simulation runs")
        })
    });
    out.push(record(h, cycles));

    out
}

/// Merges several suite runs into one result, keeping each bench's
/// fastest observation.
///
/// Noise on shared machines is one-sided — a bench can only be measured
/// *slower* than the code allows, never faster — so the per-bench min
/// over runs spaced seconds apart is a far better estimate of true cost
/// than any single run, and is what the regression gate should judge.
pub fn min_merge(runs: &[Vec<SuiteBench>]) -> Vec<SuiteBench> {
    let mut out: Vec<SuiteBench> = Vec::new();
    for run in runs {
        for b in run {
            match out.iter_mut().find(|o| o.name == b.name) {
                Some(o) => {
                    if b.ns_per_iter < o.ns_per_iter {
                        *o = b.clone();
                    }
                }
                None => out.push(b.clone()),
            }
        }
    }
    out
}

/// Renders suite results as `BENCH_fuseconv.json` (schema
/// `fuseconv-bench-v1`), with run provenance (`fuseconv-manifest-v1`)
/// embedded under `"manifest"`. [`parse_json`] ignores the manifest: its
/// line prefixes (`"name":`, `"ns_per_iter":`) never occur in one.
pub fn to_json(benches: &[SuiteBench]) -> String {
    let mut out = String::from("{\n");
    let _ = writeln!(out, "  \"schema\": \"fuseconv-bench-v1\",");
    let _ = writeln!(out, "  \"benches\": [");
    for (i, b) in benches.iter().enumerate() {
        let _ = writeln!(out, "    {{");
        let _ = writeln!(out, "      \"name\": \"{}\",", b.name);
        let _ = writeln!(out, "      \"ns_per_iter\": {:.1},", b.ns_per_iter);
        let _ = writeln!(out, "      \"iters\": {},", b.iters);
        let _ = writeln!(out, "      \"cycles\": {},", b.cycles);
        let _ = writeln!(out, "      \"cycles_per_sec\": {:.1}", b.cycles_per_sec());
        let _ = write!(out, "    }}");
        out.push_str(if i + 1 < benches.len() { ",\n" } else { "\n" });
    }
    let _ = writeln!(out, "  ],");
    let _ = writeln!(
        out,
        "  \"manifest\": {}",
        fuseconv_telemetry::RunManifest::capture().to_json_pretty("  ")
    );
    out.push_str("}\n");
    out
}

/// Parses a `fuseconv-bench-v1` JSON file back to `(name, ns_per_iter)`
/// pairs. Tolerant line-based scanning — exactly inverse to [`to_json`]'s
/// one-field-per-line output; unknown fields are ignored.
pub fn parse_json(s: &str) -> Vec<(String, f64)> {
    let mut out = Vec::new();
    let mut name: Option<String> = None;
    for line in s.lines() {
        let line = line.trim();
        if let Some(rest) = line.strip_prefix("\"name\":") {
            name = rest
                .trim()
                .trim_end_matches(',')
                .trim_matches('"')
                .to_string()
                .into();
        } else if let Some(rest) = line.strip_prefix("\"ns_per_iter\":") {
            if let (Some(n), Ok(v)) = (
                name.take(),
                rest.trim().trim_end_matches(',').parse::<f64>(),
            ) {
                out.push((n, v));
            }
        }
    }
    out
}

/// The outcome of a baseline comparison.
#[derive(Debug, Clone, PartialEq)]
pub struct Comparison {
    /// One human-readable line per compared bench.
    pub lines: Vec<String>,
    /// Benches whose geomean-normalized slowdown exceeded the threshold.
    pub failures: Vec<String>,
}

impl Comparison {
    /// True when no bench regressed past the threshold.
    pub fn passed(&self) -> bool {
        self.failures.is_empty()
    }
}

/// Compares `current` against a committed `baseline`, failing any bench
/// whose slowdown relative to the *suite geomean* exceeds
/// `max_regress_pct` percent.
///
/// Raw per-bench ratios confound machine speed with code changes: a CI
/// host half as fast as the baseline recorder would fail every bench. The
/// geomean of all ratios estimates exactly that machine factor, so each
/// bench is judged by `ratio / geomean` — uniform shifts cancel, and only
/// benches that got slower *relative to the rest of the suite* fail.
pub fn compare(
    current: &[SuiteBench],
    baseline: &[(String, f64)],
    max_regress_pct: f64,
) -> Comparison {
    let mut lines = Vec::new();
    let mut failures = Vec::new();
    let mut ratios: Vec<(String, f64)> = Vec::new();
    for cur in current {
        match baseline.iter().find(|(n, _)| *n == cur.name) {
            Some((_, base_ns)) if *base_ns > 0.0 && cur.ns_per_iter > 0.0 => {
                ratios.push((cur.name.clone(), cur.ns_per_iter / base_ns));
            }
            _ => lines.push(format!("  {:<44} new bench (no baseline)", cur.name)),
        }
    }
    for (name, _) in baseline {
        if !current.iter().any(|c| c.name == *name) {
            lines.push(format!("  {name:<44} missing from current run"));
        }
    }
    if ratios.is_empty() {
        return Comparison { lines, failures };
    }
    let geomean = (ratios.iter().map(|(_, r)| r.ln()).sum::<f64>() / ratios.len() as f64).exp();
    let threshold = 1.0 + max_regress_pct / 100.0;
    lines.push(format!(
        "  suite geomean ratio {geomean:.3} (machine factor, cancelled out)"
    ));
    for (name, ratio) in &ratios {
        let normalized = ratio / geomean;
        let verdict = if normalized > threshold {
            failures.push(name.clone());
            "REGRESSED"
        } else {
            "ok"
        };
        lines.push(format!(
            "  {name:<44} ratio {ratio:>7.3}  normalized {normalized:>7.3}  {verdict}"
        ));
    }
    Comparison { lines, failures }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bench(name: &str, ns: f64) -> SuiteBench {
        SuiteBench {
            name: name.to_string(),
            ns_per_iter: ns,
            iters: 10,
            cycles: 1000,
        }
    }

    #[test]
    fn json_roundtrips_names_and_times() {
        let benches = vec![bench("sim/gemm_os", 123.4), bench("analytic/plan", 5678.9)];
        let json = to_json(&benches);
        assert!(json.contains("\"schema\": \"fuseconv-bench-v1\""));
        let parsed = parse_json(&json);
        assert_eq!(parsed.len(), 2);
        assert_eq!(parsed[0].0, "sim/gemm_os");
        assert!((parsed[0].1 - 123.4).abs() < 0.05);
        assert!((parsed[1].1 - 5678.9).abs() < 0.05);
    }

    #[test]
    fn cycles_per_sec_is_rate() {
        let b = bench("x", 1000.0); // 1000 cycles in 1000 ns = 1 Gcycle/s
        assert!((b.cycles_per_sec() - 1e9).abs() < 1.0);
        assert_eq!(
            SuiteBench {
                ns_per_iter: 0.0,
                ..bench("y", 0.0)
            }
            .cycles_per_sec(),
            0.0
        );
    }

    #[test]
    fn uniform_slowdown_cancels_out() {
        // Everything 3x slower (a slower machine): no regression.
        let baseline = vec![("a".to_string(), 100.0), ("b".to_string(), 200.0)];
        let current = vec![bench("a", 300.0), bench("b", 600.0)];
        let cmp = compare(&current, &baseline, 25.0);
        assert!(cmp.passed(), "{:?}", cmp.failures);
    }

    #[test]
    fn single_bench_regression_is_caught() {
        let baseline = vec![
            ("a".to_string(), 100.0),
            ("b".to_string(), 100.0),
            ("c".to_string(), 100.0),
        ];
        // a and b unchanged, c 3x slower: normalized ratio ~2.1 > 1.25.
        let current = vec![bench("a", 100.0), bench("b", 100.0), bench("c", 300.0)];
        let cmp = compare(&current, &baseline, 25.0);
        assert_eq!(cmp.failures, vec!["c".to_string()]);
    }

    #[test]
    fn new_and_missing_benches_are_reported_not_failed() {
        let baseline = vec![("gone".to_string(), 100.0)];
        let current = vec![bench("fresh", 50.0)];
        let cmp = compare(&current, &baseline, 25.0);
        assert!(cmp.passed());
        assert!(cmp.lines.iter().any(|l| l.contains("new bench")));
        assert!(cmp.lines.iter().any(|l| l.contains("missing")));
    }

    #[test]
    fn min_merge_keeps_fastest_observation() {
        let runs = vec![
            vec![bench("a", 100.0), bench("b", 50.0)],
            vec![bench("a", 80.0), bench("b", 70.0), bench("c", 1.0)],
        ];
        let merged = min_merge(&runs);
        assert_eq!(merged.len(), 3);
        assert_eq!(merged[0].ns_per_iter, 80.0);
        assert_eq!(merged[1].ns_per_iter, 50.0);
        assert_eq!(merged[2].name, "c");
    }

    #[test]
    fn suite_runs_under_tiny_budget() {
        // Smoke: FUSECONV_BENCH_BUDGET_MS is not read here; build a
        // 1 ms harness directly through the public API.
        std::env::set_var("FUSECONV_BENCH_BUDGET_MS", "1");
        let mut h = Micro::from_env();
        std::env::remove_var("FUSECONV_BENCH_BUDGET_MS");
        let results = run_suite(&mut h);
        assert_eq!(results.len(), 11);
        assert!(results.iter().all(|b| b.cycles > 0));
        assert!(results.iter().all(|b| b.iters >= 1));
        let names: Vec<&str> = results.iter().map(|b| b.name.as_str()).collect();
        assert!(names.contains(&"sim/gemm_os"));
        assert!(names.contains(&"analytic/counter_replay_depthwise"));
        assert!(names.contains(&"analyze/fusion_mobilenet_v2"));
        assert!(names.contains(&"serve/fifo_10k_requests"));
        assert!(names.contains(&"serve/timeseries_10k_requests"));
    }
}

//! Minimal flag parsing for the CLI (hand-rolled; the workspace's
//! dependency policy does not include an argument-parsing crate).

use std::fmt;

/// Flags that take no value: `--name` alone means `--name true`.
/// (`--name=value` still works for these, which is how `profile`'s
/// `--chrome-trace[=PATH]` / `--metrics-json[=PATH]` take optional paths.)
const SWITCHES: &[&str] = &[
    "all",
    "json",
    "chrome-trace",
    "metrics-json",
    "preempt",
    "serve",
    "fusion",
    "force",
    "timeseries",
];

/// A parsed command line: the subcommand and its `--flag value` pairs.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ParsedArgs {
    /// The subcommand (first positional argument).
    pub command: String,
    /// Remaining positional arguments.
    pub positional: Vec<String>,
    /// `--flag value` pairs, in order.
    flags: Vec<(String, String)>,
}

/// Error from argument parsing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseArgsError(pub String);

impl fmt::Display for ParseArgsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for ParseArgsError {}

impl ParsedArgs {
    /// Parses `argv` (without the program name). Flags are `--name value`
    /// or `--name=value`; everything else is positional.
    ///
    /// # Errors
    ///
    /// Returns [`ParseArgsError`] when a subcommand is missing or a flag
    /// lacks a value.
    pub fn parse<I: IntoIterator<Item = String>>(argv: I) -> Result<Self, ParseArgsError> {
        let mut iter = argv.into_iter().peekable();
        let command = iter
            .next()
            .ok_or_else(|| ParseArgsError("missing subcommand; try `fuseconv help`".into()))?;
        let mut parsed = ParsedArgs {
            command,
            ..ParsedArgs::default()
        };
        while let Some(arg) = iter.next() {
            if let Some(name) = arg.strip_prefix("--") {
                if let Some((key, value)) = name.split_once('=') {
                    parsed.flags.push((key.to_string(), value.to_string()));
                } else if SWITCHES.contains(&name) {
                    parsed.flags.push((name.to_string(), "true".to_string()));
                } else {
                    let value = iter
                        .next()
                        .ok_or_else(|| ParseArgsError(format!("flag --{name} requires a value")))?;
                    parsed.flags.push((name.to_string(), value));
                }
            } else {
                parsed.positional.push(arg);
            }
        }
        Ok(parsed)
    }

    /// The last occurrence of `--name`, if any.
    pub fn flag(&self, name: &str) -> Option<&str> {
        self.flags
            .iter()
            .rev()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.as_str())
    }

    /// Parses `--name` as `usize`, with a default.
    ///
    /// # Errors
    ///
    /// Returns [`ParseArgsError`] if the value is present but not an
    /// integer.
    pub fn usize_flag(&self, name: &str, default: usize) -> Result<usize, ParseArgsError> {
        match self.flag(name) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| ParseArgsError(format!("--{name} expects an integer, got `{v}`"))),
        }
    }

    /// Parses `--name` as `f64`, with a default.
    ///
    /// # Errors
    ///
    /// Returns [`ParseArgsError`] if the value is present but not a number.
    pub fn f64_flag(&self, name: &str, default: f64) -> Result<f64, ParseArgsError> {
        match self.flag(name) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| ParseArgsError(format!("--{name} expects a number, got `{v}`"))),
        }
    }

    /// Parses `--name` as a comma-separated list of `usize`, with a
    /// default.
    ///
    /// # Errors
    ///
    /// Returns [`ParseArgsError`] on any non-integer element.
    pub fn usize_list_flag(
        &self,
        name: &str,
        default: &[usize],
    ) -> Result<Vec<usize>, ParseArgsError> {
        match self.flag(name) {
            None => Ok(default.to_vec()),
            Some(v) => v
                .split(',')
                .map(|piece| {
                    piece.trim().parse().map_err(|_| {
                        ParseArgsError(format!("--{name} expects integers, got `{piece}`"))
                    })
                })
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(args: &[&str]) -> Result<ParsedArgs, ParseArgsError> {
        ParsedArgs::parse(args.iter().map(|s| s.to_string()))
    }

    #[test]
    fn parses_command_flags_and_positionals() {
        let p = parse(&["nos", "--array", "32", "topo.txt", "--mhz=800"]).unwrap();
        assert_eq!(p.command, "nos");
        assert_eq!(p.positional, vec!["topo.txt"]);
        assert_eq!(p.flag("array"), Some("32"));
        assert_eq!(p.flag("mhz"), Some("800"));
        assert_eq!(p.flag("missing"), None);
    }

    #[test]
    fn typed_flags_with_defaults() {
        let p = parse(&["table1", "--array", "128"]).unwrap();
        assert_eq!(p.usize_flag("array", 64).unwrap(), 128);
        assert_eq!(p.usize_flag("other", 7).unwrap(), 7);
        assert_eq!(p.f64_flag("mhz", 700.0).unwrap(), 700.0);
        let p = parse(&["scaling", "--sizes", "8, 16,32"]).unwrap();
        assert_eq!(p.usize_list_flag("sizes", &[64]).unwrap(), vec![8, 16, 32]);
    }

    #[test]
    fn switches_need_no_value() {
        let p = parse(&["analyze", "--all", "--format", "json"]).unwrap();
        assert_eq!(p.flag("all"), Some("true"));
        assert_eq!(p.flag("format"), Some("json"));
    }

    #[test]
    fn switches_accept_optional_equals_value() {
        let p = parse(&["profile", "--chrome-trace", "--metrics-json=m.json"]).unwrap();
        assert_eq!(p.flag("chrome-trace"), Some("true"));
        assert_eq!(p.flag("metrics-json"), Some("m.json"));
    }

    #[test]
    fn last_flag_wins() {
        let p = parse(&["x", "--array", "8", "--array", "16"]).unwrap();
        assert_eq!(p.usize_flag("array", 64).unwrap(), 16);
    }

    #[test]
    fn errors() {
        assert!(parse(&[]).is_err());
        assert!(parse(&["x", "--array"]).is_err());
        let p = parse(&["x", "--array", "lots"]).unwrap();
        assert!(p.usize_flag("array", 64).is_err());
        let p = parse(&["x", "--sizes", "8,no"]).unwrap();
        assert!(p.usize_list_flag("sizes", &[]).is_err());
    }
}

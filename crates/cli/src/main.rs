//! `fuseconv` — command-line interface to the FuSeConv reproduction.
//!
//! ```text
//! fuseconv table1    [--array 64]
//! fuseconv layerwise [--network MobileNet-V2] [--variant full|half] [--array 64]
//! fuseconv breakdown [--array 64]
//! fuseconv scaling   [--sizes 8,16,32,64,128]
//! fuseconv overhead  [--sizes 8,16,32,64,128,256]
//! fuseconv energy    [--array 64] [--mhz 700]
//! fuseconv nos       [--network MobileNet-V2] [--array 64]
//! fuseconv topology  <file> [--array 64]
//! fuseconv reports   [--dir reports] [--array 64]
//! fuseconv trace     [--network MobileNet-V2] [--variant baseline|full|half]
//!                    [--layer N] [--format scalesim|chrome|heatmap] [--out trace.json]
//! fuseconv analyze   [--all | --network NAME] [--variant baseline|full|half]
//!                    [--array 64] [--fusion] [--format text|json] [--out PATH]
//! fuseconv analyze   --serve [serve flags] [--format text|json] [--out PATH]
//! fuseconv perf      [--network MobileNet-V2] [--variant baseline|full|half]
//!                    [--array 64] [--bytes-per-elem 2] [--bandwidth 64]
//!                    [--format text|json] [--out PATH]
//! fuseconv bench     [--json] [--out BENCH_fuseconv.json]
//!                    [--baseline PATH] [--max-regress 25] [--budget-ms N]
//!                    [--runs 1]
//! fuseconv profile   [NETWORK] [--variant baseline|full|half] [--array 64]
//!                    [--chrome-trace[=PATH]] [--metrics-json[=PATH]]
//! fuseconv serve     [--pod 64x64:os,32x32:ws,...] [--networks NAME,...|zoo]
//!                    [--variant baseline|full|half] [--requests N] [--load F]
//!                    [--policy fifo|dynamic|bucketed] [--max-batch N] [--max-wait N]
//!                    [--dispatch whole|sharded] [--preempt[=false]] [--high-frac F]
//!                    [--queue-cap N] [--slo-mult F] [--slo-budget N] [--buckets N]
//!                    [--seed N] [--force]
//!                    [--format text|json] [--out PATH] [--chrome-trace[=PATH]]
//!                    [--timeseries[=PATH]]
//! fuseconv help
//! ```
//!
//! Every command also accepts `--log-level error|warn|info|debug|trace`
//! (default `warn`) for the structured stderr logger.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod args;

use args::ParsedArgs;
use fuseconv_analyze as analyze;
use fuseconv_core::experiments;
use fuseconv_core::nos;
use fuseconv_core::report;
use fuseconv_core::trace as tracecap;
use fuseconv_core::variant::{apply_variant, Variant};
use fuseconv_latency::{estimate_network, Dataflow, LatencyModel};
use fuseconv_models::{topology, zoo, Network};
use fuseconv_nn::FuSeVariant;
use fuseconv_serve as serve;
use fuseconv_systolic::ArrayConfig;
use fuseconv_telemetry as telemetry;
use fuseconv_trace::{ChromeTraceSink, NullSink, ScaleSimSink, UtilizationSink};
use std::path::Path;
use std::process::ExitCode;

const HELP: &str = "\
fuseconv — FuSeConv (DATE 2021) reproduction CLI

USAGE: fuseconv <command> [flags]

COMMANDS:
  table1     Table I: MACs, params, latency and speed-up (all networks/variants)
  layerwise  Fig. 8(b): per-block speed-up   [--network NAME] [--variant full|half]
  breakdown  Fig. 8(c): operator-class latency distribution
  scaling    Fig. 8(d): speed-up vs array size   [--sizes 8,16,...]
  overhead   §V-B-5: broadcast-link area/power overhead   [--sizes ...]
  energy     per-inference energy (latency x power model)   [--mhz 700]
  nos        Neural Operator Search Pareto frontier   [--network NAME]
  topology   evaluate a custom network from a topology file: fuseconv topology FILE
  reports    write every latency-side experiment to CSV   [--dir reports]
  trace      capture an execution trace   [--network NAME] [--variant baseline|full|half]
             [--layer N] [--format scalesim|chrome|heatmap] [--out PATH]
             chrome:   whole-network (or --layer) Chrome/Perfetto JSON timeline
             heatmap:  per-PE activity of one layer (--layer, cycle-exact sim);
                       prints ASCII art, writes CSV
             scalesim: SCALE-Sim-style SRAM read/write traces of one layer
                       (--layer); writes <out>_{ifmap_read,filter_read,ofmap_write}.csv
  analyze    static dataflow-legality audit: verify RIA well-formedness, schedule
             legality (tau.d >= 1), locality and resource/utilization rules, plus
             fold-plan coverage (PLAN), SRAM/bandwidth feasibility (MEM) and
             tensor shape flow (SHP) — all before any simulation
             [--all | --network NAME] [--variant baseline|full|half]
             [--format text|json] [--out PATH]; exits nonzero on error findings
             --fusion: restrict the audit to the fold-plan-IR fusion family
             (FUS rules) — statically fusible producer/consumer pairs with
             exact SRAM savings, illegal-fusion findings and the per-network
             fusion-headroom ranking
             --serve: serving-feasibility mode (SRV rules) — statically prove
             pod capacity (rho < 1), SLO attainability, bucket coverage,
             shard-plan legality, queue sizing and preemption sanity for a
             pod/workload/SLO deployment; accepts all `serve` flags
  perf       cycle-accounted performance counters (fill/active/bubble/drain with
             sum == total cycles), stall attribution and a roofline/efficiency
             report from the analytic fold plans
             [--network NAME] [--variant baseline|full|half] [--array 64]
             [--bytes-per-elem 2] [--bandwidth 64] [--format text|json] [--out PATH]
  bench      run the fixed micro-bench suite (simulators + analytic paths)
             [--json] [--out BENCH_fuseconv.json] [--budget-ms N]
             [--runs N] (per-bench min over N suite runs; default 1)
             [--baseline PATH] [--max-regress 25]; with --baseline, exits
             nonzero when a bench regresses past the geomean-normalized gate;
             --out also writes run provenance to <out>.manifest.json
  profile    profile the host-side pipeline (analyze + fold-plan replay +
             a cycle-exact 1-D conv calibration sim + perf counters) for
             one network: prints the aggregated span tree (total/self
             wall-clock per span) and the metrics
             registry   [NETWORK] [--variant baseline|full|half]
             [--chrome-trace[=PATH]]  host spans as Chrome trace JSON
                                      (default profile_trace.json)
             [--metrics-json[=PATH]]  fuseconv-metrics-v1 snapshot
                                      (default profile_metrics.json)
  serve      discrete-event pod simulation: N heterogeneous arrays behind a
             request queue under open-loop Poisson-ish traffic, at analytic
             (fold-plan oracle) speed — millions of requests in seconds
             [--pod 64x64:os,32x32:ws,...]  arrays as ROWSxCOLS[:os|ws|is]
             [--networks NAME,...|zoo] [--variant baseline|full|half]
             [--requests N] [--load F]  offered load vs estimated capacity
             [--policy fifo|dynamic|bucketed] [--max-batch N] [--max-wait N]
             [--dispatch whole|sharded]  whole-array or LPT-sharded batches
             [--preempt[=false]] [--high-frac F]  priority traffic + fold-level preemption
             [--queue-cap N] [--slo-mult F] [--seed N]
             [--slo-budget N]  absolute SLO latency budget in cycles
                               (overrides --slo-mult)
             [--buckets N]  only the first N networks get shape buckets
                            (bucketed policy only; uncovered requests drop)
             [--force]  simulate even when the static preflight
                        (fuseconv analyze --serve) proves the config infeasible
             [--format text|json] [--out PATH]
             [--chrome-trace[=PATH]]  per-array lanes (default serve_trace.json)
             [--timeseries[=PATH]]  windowed time-series observability
                            (fuseconv-serve-timeseries-v1: offered/goodput/
                            drops, queue depth, per-array utilization, latency
                            sketch, SLO burn-rate alerts, tail exemplars;
                            default serve_timeseries.json); with --chrome-trace
                            also adds goodput/utilization counter tracks
  help       this text

Common flags: --array N (square array side, default 64);
              --log-level error|warn|info|debug|trace (stderr logger,
              default warn).";

fn find_network(name: &str) -> Option<Network> {
    zoo::all_baselines()
        .into_iter()
        .chain([zoo::resnet50(), zoo::efficientnet_b0()])
        .find(|n| n.name().eq_ignore_ascii_case(name))
}

/// Parses the pod / workload / serving-config flags shared by
/// `fuseconv serve` and `fuseconv analyze --serve`, so the simulator
/// and its static preflight always see the same configuration.
fn serve_setup(
    parsed: &ParsedArgs,
) -> Result<(serve::PodSpec, serve::Workload, serve::ServeConfig), String> {
    let pod_spec = parsed
        .flag("pod")
        .unwrap_or("64x64:os,32x32:ws,16x16:os,8x8:os");
    let pod = serve::PodSpec::parse(pod_spec).map_err(|e| e.to_string())?;
    let names = parsed.flag("networks").unwrap_or("MobileNet-V2");
    let mut networks: Vec<Network> = if names == "zoo" {
        zoo::all_baselines()
    } else {
        names
            .split(',')
            .filter(|s| !s.trim().is_empty())
            .map(|name| {
                find_network(name.trim())
                    .ok_or_else(|| format!("unknown network `{}`", name.trim()))
            })
            .collect::<Result<_, _>>()?
    };
    match parsed.flag("variant").unwrap_or("full") {
        "baseline" => {}
        "full" => {
            networks = networks
                .iter()
                .map(|n| n.transform_all(FuSeVariant::Full))
                .collect();
        }
        "half" => {
            networks = networks
                .iter()
                .map(|n| n.transform_all(FuSeVariant::Half))
                .collect();
        }
        other => {
            return Err(format!(
                "--variant must be baseline, full or half, got `{other}`"
            ))
        }
    }
    let workload = serve::Workload::uniform(networks).map_err(|e| e.to_string())?;
    let requests = parsed
        .usize_flag("requests", 100_000)
        .map_err(|e| e.to_string())?;
    let max_batch = parsed
        .usize_flag("max-batch", 8)
        .map_err(|e| e.to_string())?;
    let max_wait = parsed
        .usize_flag("max-wait", 50_000)
        .map_err(|e| e.to_string())?;
    let policy_name = parsed.flag("policy").unwrap_or("fifo");
    let policy =
        serve::BatchPolicy::parse(policy_name, max_batch, max_wait as u64).ok_or_else(|| {
            format!("--policy must be fifo, dynamic or bucketed, got `{policy_name}`")
        })?;
    let dispatch_name = parsed.flag("dispatch").unwrap_or("whole");
    let dispatch = serve::Dispatch::parse(dispatch_name)
        .ok_or_else(|| format!("--dispatch must be whole or sharded, got `{dispatch_name}`"))?;
    // A switch, but negatable: `--preempt=false` / `--preempt=0`
    // explicitly disables it.
    let preemption = parsed
        .flag("preempt")
        .is_some_and(|v| v != "false" && v != "0");
    let high_default = if preemption { 0.05 } else { 0.0 };
    let slo_budget_cycles = match parsed.flag("slo-budget") {
        None => None,
        Some(_) => Some(
            parsed
                .usize_flag("slo-budget", 0)
                .map_err(|e| e.to_string())? as u64,
        ),
    };
    let shape_buckets = match parsed.flag("buckets") {
        None => None,
        Some(_) => Some(parsed.usize_flag("buckets", 0).map_err(|e| e.to_string())?),
    };
    let cfg = serve::ServeConfig {
        policy,
        dispatch,
        preemption,
        queue_capacity: parsed
            .usize_flag("queue-cap", 4096)
            .map_err(|e| e.to_string())?,
        requests: requests as u64,
        load: parsed.f64_flag("load", 0.8).map_err(|e| e.to_string())?,
        seed: parsed.usize_flag("seed", 42).map_err(|e| e.to_string())? as u64,
        high_priority_frac: parsed
            .f64_flag("high-frac", high_default)
            .map_err(|e| e.to_string())?,
        slo_multiplier: parsed
            .f64_flag("slo-mult", 10.0)
            .map_err(|e| e.to_string())?,
        slo_budget_cycles,
        shape_buckets,
    };
    Ok((pod, workload, cfg))
}

fn array_of(parsed: &ParsedArgs) -> Result<ArrayConfig, String> {
    let side = parsed.usize_flag("array", 64).map_err(|e| e.to_string())?;
    let array = ArrayConfig::square(side)
        .map(|a| a.with_broadcast(true))
        .map_err(|e| e.to_string())?;
    // Record the array in the process run-config so every manifest
    // captured later in this invocation carries the real dimensions.
    telemetry::manifest::set_run_array(
        array.rows(),
        array.cols(),
        dataflow_name(Dataflow::OutputStationary),
        array.has_broadcast(),
    );
    Ok(array)
}

/// Short manifest name for a dataflow.
fn dataflow_name(d: Dataflow) -> &'static str {
    match d {
        Dataflow::OutputStationary => "os",
        Dataflow::WeightStationary => "ws",
        Dataflow::InputStationary => "is",
    }
}

fn run(parsed: &ParsedArgs) -> Result<(), String> {
    match parsed.command.as_str() {
        "help" | "--help" | "-h" => {
            println!("{HELP}");
            Ok(())
        }
        "table1" => {
            let array = array_of(parsed)?;
            let rows = experiments::table1(&array).map_err(|e| e.to_string())?;
            println!("{}", report::table1_csv(&rows).trim_end());
            Ok(())
        }
        "layerwise" => {
            let array = array_of(parsed)?;
            let name = parsed.flag("network").unwrap_or("MobileNet-V2");
            let net = find_network(name).ok_or_else(|| format!("unknown network `{name}`"))?;
            let variant = match parsed.flag("variant").unwrap_or("full") {
                "full" => Variant::FuseFull,
                "half" => Variant::FuseHalf,
                other => return Err(format!("--variant must be full or half, got `{other}`")),
            };
            let rows = experiments::layerwise(&net, variant, &array).map_err(|e| e.to_string())?;
            println!("{}", report::layerwise_csv(&rows).trim_end());
            Ok(())
        }
        "breakdown" => {
            let array = array_of(parsed)?;
            let rows = experiments::operator_breakdown(&array).map_err(|e| e.to_string())?;
            println!("{}", report::breakdown_csv(&rows).trim_end());
            Ok(())
        }
        "scaling" => {
            let sizes = parsed
                .usize_list_flag("sizes", &[8, 16, 32, 64, 128])
                .map_err(|e| e.to_string())?;
            let rows = experiments::array_scaling(&sizes).map_err(|e| e.to_string())?;
            println!("{}", report::scaling_csv(&rows).trim_end());
            Ok(())
        }
        "overhead" => {
            let sizes = parsed
                .usize_list_flag("sizes", &[8, 16, 32, 64, 128, 256])
                .map_err(|e| e.to_string())?;
            let rows = experiments::hw_overhead(&sizes);
            println!("{}", report::overhead_csv(&rows).trim_end());
            Ok(())
        }
        "energy" => {
            let side = parsed.usize_flag("array", 64).map_err(|e| e.to_string())?;
            let mhz = parsed.f64_flag("mhz", 700.0).map_err(|e| e.to_string())?;
            let rows = experiments::energy_study(side, mhz).map_err(|e| e.to_string())?;
            println!("{}", report::energy_csv(&rows).trim_end());
            Ok(())
        }
        "nos" => {
            let array = array_of(parsed)?;
            let name = parsed.flag("network").unwrap_or("MobileNet-V2");
            let net = find_network(name).ok_or_else(|| format!("unknown network `{name}`"))?;
            let frontier = nos::pareto_frontier(&net, &array).map_err(|e| e.to_string())?;
            println!("latency_cycles,params,assignment");
            for p in &frontier {
                let asg: String = p
                    .assignment
                    .iter()
                    .map(|c| match c {
                        nos::OpChoice::Depthwise => 'D',
                        nos::OpChoice::FuseFull => 'F',
                        nos::OpChoice::FuseHalf => 'H',
                    })
                    .collect();
                println!("{},{},{asg}", p.latency, p.params);
            }
            Ok(())
        }
        "topology" => {
            let file = parsed
                .positional
                .first()
                .ok_or("usage: fuseconv topology <file> [--array N]")?;
            let text =
                std::fs::read_to_string(file).map_err(|e| format!("cannot read {file}: {e}"))?;
            let net = topology::parse(file, &text).map_err(|e| e.to_string())?;
            let array = array_of(parsed)?;
            let model = LatencyModel::new(array);
            let base = estimate_network(&model, &net).map_err(|e| e.to_string())?;
            println!("network,variant,macs,params,latency_cycles,speedup");
            for variant in Variant::ALL {
                let v = apply_variant(&net, variant, &array).map_err(|e| e.to_string())?;
                let lat = estimate_network(&model, &v).map_err(|e| e.to_string())?;
                println!(
                    "{},{},{},{},{},{:.4}",
                    net.name(),
                    variant,
                    v.macs(),
                    v.params(),
                    lat.total_cycles,
                    lat.speedup_over(&base)
                );
            }
            Ok(())
        }
        "trace" => {
            let array = array_of(parsed)?;
            let model = LatencyModel::new(array);
            let name = parsed.flag("network").unwrap_or("MobileNet-V2");
            let net = find_network(name).ok_or_else(|| format!("unknown network `{name}`"))?;
            let variant = match parsed.flag("variant").unwrap_or("baseline") {
                "baseline" => Variant::Baseline,
                "full" => Variant::FuseFull,
                "half" => Variant::FuseHalf,
                other => {
                    return Err(format!(
                        "--variant must be baseline, full or half, got `{other}`"
                    ))
                }
            };
            let net = apply_variant(&net, variant, &array).map_err(|e| e.to_string())?;
            let layer = match parsed.flag("layer") {
                None => None,
                Some(_) => Some(parsed.usize_flag("layer", 0).map_err(|e| e.to_string())?),
            };
            let pick_op = |i: usize| {
                let ops = net.ops();
                ops.get(i).cloned().ok_or(format!(
                    "layer {i} out of range; {} has {} operators",
                    net.name(),
                    ops.len()
                ))
            };
            match parsed.flag("format").unwrap_or("chrome") {
                "chrome" => {
                    let mut sink = ChromeTraceSink::new();
                    match layer {
                        // One layer: cycle-exact, with per-row PE tracks.
                        Some(i) => {
                            let named = pick_op(i)?;
                            tracecap::simulate_op_traced(&model, &named.op, &mut sink)
                                .map_err(|e| e.to_string())?;
                        }
                        // Whole network: analytic fold-plan replay.
                        None => {
                            let plan = tracecap::network_fold_plan(&model, &net, None)
                                .map_err(|e| e.to_string())?;
                            for (tag, label) in &plan.labels {
                                sink.label_tag(*tag, label);
                            }
                            fuseconv_trace::replay(&plan.folds, &mut sink);
                        }
                    }
                    let path = parsed.flag("out").unwrap_or("trace.json");
                    std::fs::write(path, sink.into_json())
                        .map_err(|e| format!("cannot write {path}: {e}"))?;
                    println!("{path}");
                    Ok(())
                }
                "heatmap" => {
                    let i = layer.ok_or("--format heatmap needs --layer N")?;
                    let named = pick_op(i)?;
                    let mut sink = UtilizationSink::new(array.rows(), array.cols());
                    let traced = tracecap::simulate_op_traced(&model, &named.op, &mut sink)
                        .map_err(|e| e.to_string())?;
                    let (fill, compute, drain) = sink.phase_cycles();
                    println!(
                        "{} / {}  ({} on {}x{})",
                        net.name(),
                        named.op,
                        named.block_name,
                        array.rows(),
                        array.cols()
                    );
                    println!(
                        "cycles {} (x{} repeats = {})  fill {}  compute {}  drain {}",
                        sink.cycles(),
                        traced.repeats,
                        traced.total_cycles(),
                        fill,
                        compute,
                        drain
                    );
                    println!(
                        "active rows {}/{}  active cols {}/{}  utilization {:.2}%",
                        sink.active_rows(),
                        array.rows(),
                        sink.active_cols(),
                        array.cols(),
                        100.0 * sink.utilization()
                    );
                    println!("{}", sink.heatmap_ascii());
                    if let Some(path) = parsed.flag("out") {
                        std::fs::write(path, sink.heatmap_csv())
                            .map_err(|e| format!("cannot write {path}: {e}"))?;
                        println!("{path}");
                    }
                    Ok(())
                }
                "scalesim" => {
                    let i = layer.ok_or("--format scalesim needs --layer N")?;
                    let named = pick_op(i)?;
                    let mut sink = ScaleSimSink::new();
                    tracecap::simulate_op_traced(&model, &named.op, &mut sink)
                        .map_err(|e| e.to_string())?;
                    let stem = parsed
                        .flag("out")
                        .unwrap_or("trace")
                        .trim_end_matches(".csv")
                        .to_string();
                    for (suffix, csv) in [
                        ("ifmap_read", sink.ifmap_read_csv()),
                        ("filter_read", sink.filter_read_csv()),
                        ("ofmap_write", sink.ofmap_write_csv()),
                    ] {
                        let path = format!("{stem}_{suffix}.csv");
                        std::fs::write(&path, csv)
                            .map_err(|e| format!("cannot write {path}: {e}"))?;
                        println!("{path}");
                    }
                    Ok(())
                }
                other => Err(format!(
                    "--format must be scalesim, chrome or heatmap, got `{other}`"
                )),
            }
        }
        "analyze" => {
            if parsed.flag("serve").is_some() {
                // Serving-feasibility mode: audit a pod/workload/SLO
                // deployment statically instead of per-network mappings.
                let (pod, workload, cfg) = serve_setup(parsed)?;
                let report =
                    analyze::analyze_pod(&pod, &workload, &cfg).map_err(|e| e.to_string())?;
                let rendered = match parsed.flag("format").unwrap_or("text") {
                    "text" => report.to_text(),
                    "json" => report.to_json(),
                    other => return Err(format!("--format must be text or json, got `{other}`")),
                };
                match parsed.flag("out") {
                    Some(path) => {
                        std::fs::write(path, &rendered)
                            .map_err(|e| format!("cannot write {path}: {e}"))?;
                        println!("{path}");
                    }
                    None => println!("{}", rendered.trim_end()),
                }
                if report.has_errors() {
                    return Err(format!(
                        "{} error-severity diagnostic(s)",
                        report.error_count()
                    ));
                }
                return Ok(());
            }
            let array = array_of(parsed)?;
            let model = LatencyModel::new(array);
            let nets: Vec<Network> = if parsed.flag("all").is_some() {
                zoo::all_baselines()
                    .into_iter()
                    .chain([zoo::resnet50(), zoo::efficientnet_b0()])
                    .collect()
            } else {
                let name = parsed.flag("network").unwrap_or("MobileNet-V2");
                vec![find_network(name).ok_or_else(|| format!("unknown network `{name}`"))?]
            };
            let variants: Vec<Variant> = match parsed.flag("variant") {
                None => Variant::ALL.to_vec(),
                Some("baseline") => vec![Variant::Baseline],
                Some("full") => vec![Variant::FuseFull],
                Some("half") => vec![Variant::FuseHalf],
                Some(other) => {
                    return Err(format!(
                        "--variant must be baseline, full or half, got `{other}`"
                    ))
                }
            };
            let fusion_only = parsed.flag("fusion").is_some();
            let mut report = analyze::Report::new();
            for net in &nets {
                for &variant in &variants {
                    let v = apply_variant(net, variant, &array).map_err(|e| e.to_string())?;
                    let diagnostics = if fusion_only {
                        analyze::analyze_fusion(&model, &v, &analyze::MemoryBudget::paper_default())
                    } else {
                        analyze::analyze_network(&model, &v).diagnostics
                    };
                    for d in diagnostics {
                        // Mapping-level findings repeat identically across
                        // networks sharing a dataflow; keep one copy each.
                        if !report.diagnostics.contains(&d) {
                            report.push(d);
                        }
                    }
                }
            }
            let rendered = match parsed.flag("format").unwrap_or("text") {
                "text" => report.to_text(),
                "json" => report.to_json(),
                other => return Err(format!("--format must be text or json, got `{other}`")),
            };
            match parsed.flag("out") {
                Some(path) => {
                    std::fs::write(path, &rendered)
                        .map_err(|e| format!("cannot write {path}: {e}"))?;
                    println!("{path}");
                }
                None => println!("{}", rendered.trim_end()),
            }
            if report.has_errors() {
                return Err(format!(
                    "{} error-severity diagnostic(s)",
                    report.error_count()
                ));
            }
            Ok(())
        }
        "reports" => {
            let array = array_of(parsed)?;
            let dir = parsed.flag("dir").unwrap_or("reports");
            let written = report::write_all(Path::new(dir), &array).map_err(|e| e.to_string())?;
            for p in written {
                println!("{}", p.display());
            }
            Ok(())
        }
        "perf" => {
            let array = array_of(parsed)?;
            let model = LatencyModel::new(array);
            let name = parsed.flag("network").unwrap_or("MobileNet-V2");
            let net = find_network(name).ok_or_else(|| format!("unknown network `{name}`"))?;
            let variant = match parsed.flag("variant").unwrap_or("baseline") {
                "baseline" => Variant::Baseline,
                "full" => Variant::FuseFull,
                "half" => Variant::FuseHalf,
                other => {
                    return Err(format!(
                        "--variant must be baseline, full or half, got `{other}`"
                    ))
                }
            };
            let net = apply_variant(&net, variant, &array).map_err(|e| e.to_string())?;
            let bytes_per_elem = parsed
                .usize_flag("bytes-per-elem", 2)
                .map_err(|e| e.to_string())?;
            let bandwidth = parsed
                .usize_flag("bandwidth", 64)
                .map_err(|e| e.to_string())?;
            if bandwidth == 0 {
                return Err("--bandwidth must be nonzero".into());
            }
            let report = fuseconv_perf::network_perf_report(
                &model,
                &net,
                &variant.to_string(),
                bytes_per_elem as u64,
                bandwidth as u64,
            )
            .map_err(|e| e.to_string())?;
            let rendered = match parsed.flag("format").unwrap_or("text") {
                "text" => report.to_text(),
                "json" => report.to_json(),
                other => return Err(format!("--format must be text or json, got `{other}`")),
            };
            match parsed.flag("out") {
                Some(path) => {
                    std::fs::write(path, &rendered)
                        .map_err(|e| format!("cannot write {path}: {e}"))?;
                    println!("{path}");
                }
                None => println!("{}", rendered.trim_end()),
            }
            Ok(())
        }
        "bench" => {
            let mut harness = match parsed.flag("budget-ms") {
                Some(_) => fuseconv_bench::micro::Micro::with_budget_ms(
                    parsed
                        .usize_flag("budget-ms", 100)
                        .map_err(|e| e.to_string())? as u64,
                ),
                None => fuseconv_bench::micro::Micro::from_env(),
            };
            let runs = parsed.usize_flag("runs", 1).map_err(|e| e.to_string())?;
            if runs == 0 {
                return Err("--runs must be at least 1".to_string());
            }
            // One-sided noise: a bench can only measure slower than the
            // code allows, so the per-bench min over spaced runs is the
            // robust estimate the gate should judge.
            let all: Vec<_> = (0..runs)
                .map(|_| fuseconv_bench::suite::run_suite(&mut harness))
                .collect();
            let results = fuseconv_bench::suite::min_merge(&all);
            if parsed.flag("json").is_some() || parsed.flag("out").is_some() {
                let path = parsed.flag("out").unwrap_or("BENCH_fuseconv.json");
                std::fs::write(path, fuseconv_bench::suite::to_json(&results))
                    .map_err(|e| format!("cannot write {path}: {e}"))?;
                println!("{path}");
                // Standalone provenance sibling, so CI can archive the
                // manifest next to the bench numbers it describes.
                let mpath = format!("{path}.manifest.json");
                let manifest = telemetry::RunManifest::capture().to_json_pretty("");
                std::fs::write(&mpath, format!("{manifest}\n"))
                    .map_err(|e| format!("cannot write {mpath}: {e}"))?;
                println!("{mpath}");
            }
            if let Some(base_path) = parsed.flag("baseline") {
                let text = std::fs::read_to_string(base_path)
                    .map_err(|e| format!("cannot read {base_path}: {e}"))?;
                let baseline = fuseconv_bench::suite::parse_json(&text);
                if baseline.is_empty() {
                    return Err(format!("no benches parsed from baseline {base_path}"));
                }
                let max_regress = parsed
                    .f64_flag("max-regress", 25.0)
                    .map_err(|e| e.to_string())?;
                let cmp = fuseconv_bench::suite::compare(&results, &baseline, max_regress);
                println!("baseline comparison (fail above +{max_regress:.0}% of geomean):");
                for line in &cmp.lines {
                    println!("{line}");
                }
                if !cmp.passed() {
                    return Err(format!(
                        "{} bench(es) regressed past the {max_regress:.0}% gate: {}",
                        cmp.failures.len(),
                        cmp.failures.join(", ")
                    ));
                }
            }
            Ok(())
        }
        "profile" => {
            let array = array_of(parsed)?;
            let model = LatencyModel::new(array);
            let name = parsed
                .positional
                .first()
                .map(String::as_str)
                .or_else(|| parsed.flag("network"))
                .unwrap_or("MobileNet-V2");
            let net = find_network(name).ok_or_else(|| format!("unknown network `{name}`"))?;
            let variant = match parsed.flag("variant").unwrap_or("baseline") {
                "baseline" => Variant::Baseline,
                "full" => Variant::FuseFull,
                "half" => Variant::FuseHalf,
                other => {
                    return Err(format!(
                        "--variant must be baseline, full or half, got `{other}`"
                    ))
                }
            };
            let net = apply_variant(&net, variant, &array).map_err(|e| e.to_string())?;

            // Fresh registry + profiler, enabled only around the profiled
            // pipeline; the closure keeps error paths from leaving the
            // process-wide profiler switched on.
            telemetry::metrics::reset();
            telemetry::span::reset();
            telemetry::set_spans_enabled(true);
            let profiled = (|| -> Result<(), String> {
                let _root = telemetry::span("profile");
                {
                    let _s = telemetry::span("profile.analyze");
                    let _ = analyze::analyze_network(&model, &net);
                }
                {
                    let _s = telemetry::span("profile.plan");
                    let plan = tracecap::network_fold_plan(&model, &net, None)
                        .map_err(|e| e.to_string())?;
                    fuseconv_trace::replay(&plan.folds, &mut NullSink);
                }
                {
                    // Cycle-exact calibration: row-wise 1-D convolutions
                    // filling the array — FuSeConv's core primitive — so
                    // the sim.* counters and the throughput gauge reflect
                    // real simulator work at this array size.
                    let _s = telemetry::span("profile.sim");
                    let width = 64 + 3;
                    let lines: Vec<Vec<f32>> = (0..array.rows())
                        .map(|r| (0..width).map(|i| ((r + i) % 7) as f32).collect())
                        .collect();
                    let kernels: Vec<Vec<f32>> =
                        (0..array.rows()).map(|_| vec![1.0, 0.5, -1.0]).collect();
                    fuseconv_perf::conv1d_counted(&array, &lines, &kernels)
                        .map_err(|e| e.to_string())?;
                }
                let _s = telemetry::span("profile.perf");
                fuseconv_perf::network_perf_report(&model, &net, &variant.to_string(), 2, 64)
                    .map_err(|e| e.to_string())?;
                Ok(())
            })();
            telemetry::set_spans_enabled(false);
            profiled?;

            // Host throughput: how many simulated cycles each host second
            // of cycle-exact simulation buys at this array size.
            let tree = telemetry::span_snapshot();
            let sim_cycles = telemetry::counter("sim.cycles_total").get();
            let sim_ns = tree
                .find("profile/profile.sim")
                .map_or(0, |n| n.total_ns)
                .max(1);
            let per_sec = (u128::from(sim_cycles) * 1_000_000_000) / u128::from(sim_ns);
            telemetry::gauge("profile.sim_cycles_per_host_sec")
                .set(i64::try_from(per_sec).unwrap_or(i64::MAX));

            let metrics = telemetry::metrics_snapshot();
            let manifest = telemetry::RunManifest::capture()
                .with_array(array.rows(), array.cols(), array.has_broadcast())
                .with_dataflow(dataflow_name(model.dataflow()));
            println!(
                "profile: {} [{variant}] on {}x{} — {} folds, {} sim cycles",
                net.name(),
                array.rows(),
                array.cols(),
                metrics.counter("sim.folds_total"),
                sim_cycles,
            );
            println!("{}", tree.to_text().trim_end());
            println!();
            println!("{}", metrics.to_text().trim_end());
            if let Some(value) = parsed.flag("chrome-trace") {
                let path = if value == "true" {
                    "profile_trace.json"
                } else {
                    value
                };
                std::fs::write(path, tree.chrome_trace_json(&manifest))
                    .map_err(|e| format!("cannot write {path}: {e}"))?;
                println!("{path}");
            }
            if let Some(value) = parsed.flag("metrics-json") {
                let path = if value == "true" {
                    "profile_metrics.json"
                } else {
                    value
                };
                std::fs::write(path, metrics.to_json(&manifest))
                    .map_err(|e| format!("cannot write {path}: {e}"))?;
                println!("{path}");
            }
            Ok(())
        }
        "serve" => {
            let (pod, workload, cfg) = serve_setup(parsed)?;
            // Static preflight: prove the deployment feasible before
            // spending a single simulated cycle on it.
            let preflight =
                analyze::analyze_pod(&pod, &workload, &cfg).map_err(|e| e.to_string())?;
            for d in &preflight.diagnostics {
                telemetry::log::warn("serve", &format!("preflight: {d}"));
            }
            if preflight.has_errors() && parsed.flag("force").is_none() {
                return Err(format!(
                    "preflight: {} error finding(s) statically prove this configuration \
                     infeasible (pass --force to simulate it anyway):\n{}",
                    preflight.error_count(),
                    preflight.to_text().trim_end()
                ));
            }
            telemetry::manifest::set_run_seed(cfg.seed);
            let mut sink = parsed
                .flag("chrome-trace")
                .map(|_| serve::PodTraceSink::new(&pod));
            let ts_cfg = parsed
                .flag("timeseries")
                .map(|_| serve::TimeSeriesConfig::new());
            let (report, ts) =
                serve::simulate_observed(&pod, &workload, &cfg, sink.as_mut(), ts_cfg.as_ref())
                    .map_err(|e| e.to_string())?;
            let rendered = match parsed.flag("format").unwrap_or("text") {
                "text" => report.to_text(),
                "json" => report.to_json(),
                other => return Err(format!("--format must be text or json, got `{other}`")),
            };
            match parsed.flag("out") {
                Some(path) => {
                    std::fs::write(path, &rendered)
                        .map_err(|e| format!("cannot write {path}: {e}"))?;
                    println!("{path}");
                }
                None => println!("{}", rendered.trim_end()),
            }
            if let Some(ts) = &ts {
                if let Some(sink) = sink.as_mut() {
                    // Counter tracks render beside the pid-0 batch
                    // lanes in the same Perfetto view.
                    ts.append_counters(sink);
                }
                if parsed.flag("format").unwrap_or("text") == "text" {
                    println!("{}", ts.to_text().trim_end());
                }
                let value = parsed.flag("timeseries").unwrap_or("true");
                let path = if value == "true" {
                    "serve_timeseries.json"
                } else {
                    value
                };
                std::fs::write(path, ts.to_json())
                    .map_err(|e| format!("cannot write {path}: {e}"))?;
                println!("{path}");
            }
            if let Some(sink) = sink {
                let value = parsed.flag("chrome-trace").unwrap_or("true");
                let path = if value == "true" {
                    "serve_trace.json"
                } else {
                    value
                };
                std::fs::write(path, sink.into_json())
                    .map_err(|e| format!("cannot write {path}: {e}"))?;
                println!("{path}");
            }
            Ok(())
        }
        other => Err(format!("unknown command `{other}`; try `fuseconv help`")),
    }
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    // Seed run provenance with the full invocation before any artifact
    // can capture a manifest.
    telemetry::manifest::set_run_config(&argv.join(" "));
    let parsed = match ParsedArgs::parse(argv) {
        Ok(p) => p,
        Err(e) => {
            telemetry::log::error("cli", &e.to_string());
            eprintln!("{HELP}");
            return ExitCode::FAILURE;
        }
    };
    if let Some(value) = parsed.flag("log-level") {
        match value.parse() {
            Ok(level) => telemetry::log::set_max_level(level),
            Err(e) => {
                telemetry::log::error("cli", &e);
                return ExitCode::FAILURE;
            }
        }
    }
    match run(&parsed) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            telemetry::log::error("cli", &e);
            ExitCode::FAILURE
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parsed(args: &[&str]) -> ParsedArgs {
        ParsedArgs::parse(args.iter().map(|s| s.to_string())).unwrap()
    }

    #[test]
    fn help_runs() {
        assert!(run(&parsed(&["help"])).is_ok());
    }

    #[test]
    fn unknown_command_errors() {
        let e = run(&parsed(&["frobnicate"])).unwrap_err();
        assert!(e.contains("unknown command"));
    }

    #[test]
    fn table1_runs_on_small_array() {
        assert!(run(&parsed(&["table1", "--array", "8"])).is_ok());
    }

    #[test]
    fn layerwise_validates_inputs() {
        assert!(run(&parsed(&["layerwise", "--network", "nope"])).is_err());
        assert!(run(&parsed(&["layerwise", "--variant", "quarter"])).is_err());
        assert!(run(&parsed(&[
            "layerwise",
            "--network",
            "mobilenet-v1",
            "--variant",
            "half",
            "--array",
            "16"
        ]))
        .is_ok());
    }

    #[test]
    fn overhead_and_scaling_accept_size_lists() {
        assert!(run(&parsed(&["overhead", "--sizes", "8,32"])).is_ok());
        assert!(run(&parsed(&["scaling", "--sizes", "8"])).is_ok());
        assert!(run(&parsed(&["scaling", "--sizes", "8,x"])).is_err());
    }

    #[test]
    fn nos_runs_for_resnet_too() {
        // ResNet-50 has no replaceable blocks: frontier is a single point.
        assert!(run(&parsed(&["nos", "--network", "resnet-50", "--array", "16"])).is_ok());
    }

    #[test]
    fn topology_requires_file() {
        assert!(run(&parsed(&["topology"])).is_err());
        assert!(run(&parsed(&["topology", "/nonexistent/x.txt"])).is_err());
    }

    #[test]
    fn zero_array_rejected() {
        assert!(run(&parsed(&["table1", "--array", "0"])).is_err());
    }

    #[test]
    fn trace_validates_inputs() {
        assert!(run(&parsed(&["trace", "--network", "nope"])).is_err());
        assert!(run(&parsed(&["trace", "--variant", "quarter"])).is_err());
        assert!(run(&parsed(&["trace", "--format", "vcd"])).is_err());
        // heatmap and scalesim need a concrete layer to simulate.
        assert!(run(&parsed(&["trace", "--format", "heatmap", "--array", "8"])).is_err());
        assert!(run(&parsed(&["trace", "--format", "scalesim", "--array", "8"])).is_err());
        assert!(run(&parsed(&[
            "trace", "--format", "heatmap", "--layer", "99999", "--array", "8"
        ]))
        .is_err());
    }

    #[test]
    fn analyze_validates_inputs() {
        assert!(run(&parsed(&["analyze", "--network", "nope"])).is_err());
        assert!(run(&parsed(&["analyze", "--variant", "quarter"])).is_err());
        assert!(run(&parsed(&["analyze", "--format", "xml"])).is_err());
    }

    #[test]
    fn analyze_passes_shipped_networks() {
        // Warnings (the depthwise UTL001 pathology) must not fail the run;
        // only error-severity findings do.
        assert!(run(&parsed(&[
            "analyze",
            "--network",
            "mobilenet-v1",
            "--array",
            "8"
        ]))
        .is_ok());
        assert!(run(&parsed(&["analyze", "--all", "--array", "8"])).is_ok());
    }

    #[test]
    fn analyze_writes_json_report() {
        let dir = std::env::temp_dir().join("fuseconv-cli-analyze-test");
        std::fs::create_dir_all(&dir).unwrap();
        let out = dir.join("report.json");
        let out = out.to_str().unwrap();
        assert!(run(&parsed(&[
            "analyze",
            "--network",
            "mobilenet-v2",
            "--array",
            "8",
            "--format",
            "json",
            "--out",
            out
        ]))
        .is_ok());
        let text = std::fs::read_to_string(out).unwrap();
        assert!(text.starts_with('{') && text.trim_end().ends_with('}'));
        assert!(text.contains("\"diagnostics\""), "{text}");
        assert!(text.contains("UTL001"), "{text}");
        std::fs::remove_file(out).unwrap();
    }

    #[test]
    fn analyze_fusion_mode_reports_fus_rules_only() {
        let dir = std::env::temp_dir().join("fuseconv-cli-analyze-fusion-test");
        std::fs::create_dir_all(&dir).unwrap();
        let out = dir.join("fusion.json");
        let out = out.to_str().unwrap();
        // FuSe-Full MobileNet-V2 has fusible row/col -> pointwise pairs.
        assert!(run(&parsed(&[
            "analyze",
            "--network",
            "mobilenet-v2",
            "--variant",
            "full",
            "--fusion",
            "--format",
            "json",
            "--out",
            out
        ]))
        .is_ok());
        let text = std::fs::read_to_string(out).unwrap();
        assert!(text.contains("\"rule\":\"FUS001\""), "{text}");
        assert!(text.contains("\"rule\":\"FUS006\""), "{text}");
        assert!(!text.contains("\"rule\":\"UTL001\""), "{text}");
        std::fs::remove_file(out).unwrap();
        // A GEMM-only network has no separable blocks and thus no FUS findings.
        let out2 = dir.join("fusion_resnet.json");
        let out2 = out2.to_str().unwrap();
        assert!(run(&parsed(&[
            "analyze",
            "--network",
            "resnet-50",
            "--fusion",
            "--format",
            "json",
            "--out",
            out2
        ]))
        .is_ok());
        let text2 = std::fs::read_to_string(out2).unwrap();
        assert!(!text2.contains("FUS"), "{text2}");
        std::fs::remove_file(out2).unwrap();
    }

    #[test]
    fn trace_chrome_writes_valid_json() {
        let dir = std::env::temp_dir().join("fuseconv-cli-trace-test");
        std::fs::create_dir_all(&dir).unwrap();
        let out = dir.join("trace.json");
        let out = out.to_str().unwrap();
        assert!(run(&parsed(&[
            "trace",
            "--network",
            "mobilenet-v2",
            "--variant",
            "half",
            "--array",
            "8",
            "--out",
            out
        ]))
        .is_ok());
        let text = std::fs::read_to_string(out).unwrap();
        assert!(text.starts_with('{') && text.trim_end().ends_with('}'));
        assert!(text.contains("\"traceEvents\""));
        std::fs::remove_file(out).unwrap();
    }

    #[test]
    fn perf_validates_inputs() {
        assert!(run(&parsed(&["perf", "--network", "nope"])).is_err());
        assert!(run(&parsed(&["perf", "--variant", "quarter"])).is_err());
        assert!(run(&parsed(&["perf", "--format", "xml"])).is_err());
        assert!(run(&parsed(&["perf", "--bandwidth", "0"])).is_err());
    }

    #[test]
    fn perf_text_runs_on_small_array() {
        assert!(run(&parsed(&[
            "perf",
            "--network",
            "mobilenet-v1",
            "--variant",
            "half",
            "--array",
            "8"
        ]))
        .is_ok());
    }

    #[test]
    fn perf_writes_json_report() {
        let dir = std::env::temp_dir().join("fuseconv-cli-perf-test");
        std::fs::create_dir_all(&dir).unwrap();
        let out = dir.join("perf.json");
        let out = out.to_str().unwrap();
        assert!(run(&parsed(&[
            "perf",
            "--network",
            "mobilenet-v2",
            "--array",
            "8",
            "--format",
            "json",
            "--out",
            out
        ]))
        .is_ok());
        let text = std::fs::read_to_string(out).unwrap();
        assert!(text.contains("\"schema\": \"fuseconv-perf-v1\""), "{text}");
        assert!(text.contains("\"compute_stall_fraction\""), "{text}");
        std::fs::remove_file(out).unwrap();
    }

    #[test]
    fn bench_writes_json_and_gates_against_itself() {
        let dir = std::env::temp_dir().join("fuseconv-cli-bench-test");
        std::fs::create_dir_all(&dir).unwrap();
        let out = dir.join("bench.json");
        let out = out.to_str().unwrap();
        assert!(run(&parsed(&[
            "bench",
            "--json",
            "--out",
            out,
            "--budget-ms",
            "1"
        ]))
        .is_ok());
        let text = std::fs::read_to_string(out).unwrap();
        assert!(text.contains("\"schema\": \"fuseconv-bench-v1\""), "{text}");
        assert!(text.contains("\"cycles_per_sec\""), "{text}");
        // A generous gate against the just-written baseline must pass even
        // with 1 ms timing noise.
        assert!(run(&parsed(&[
            "bench",
            "--baseline",
            out,
            "--max-regress",
            "10000",
            "--budget-ms",
            "1"
        ]))
        .is_ok());
        // Reading a missing baseline is an error.
        assert!(run(&parsed(&["bench", "--baseline", "/nonexistent/b.json"])).is_err());
        std::fs::remove_file(out).unwrap();
    }

    #[test]
    fn profile_validates_inputs() {
        assert!(run(&parsed(&["profile", "nope", "--array", "8"])).is_err());
        assert!(run(&parsed(&[
            "profile",
            "--variant",
            "quarter",
            "--array",
            "8"
        ]))
        .is_err());
    }

    #[test]
    fn profile_prints_balanced_tree_and_writes_artifacts() {
        let dir = std::env::temp_dir().join("fuseconv-cli-profile-test");
        std::fs::create_dir_all(&dir).unwrap();
        let trace = dir.join("profile_trace.json");
        let metrics = dir.join("profile_metrics.json");
        let trace_flag = format!("--chrome-trace={}", trace.display());
        let metrics_flag = format!("--metrics-json={}", metrics.display());
        assert!(run(&parsed(&[
            "profile",
            "mobilenet-v2",
            "--variant",
            "half",
            "--array",
            "8",
            &trace_flag,
            &metrics_flag
        ]))
        .is_ok());
        // The aggregate left behind satisfies the balance invariant and
        // contains the pipeline phases under the root span. (Concurrent
        // tests may add unrelated roots; `find` pins the profile subtree.)
        let tree = telemetry::span_snapshot();
        assert!(tree.is_balanced(), "span tree lost balance");
        let root = tree.find("profile").expect("missing profile root span");
        assert_eq!(root.count, 1);
        for phase in [
            "profile.analyze",
            "profile.plan",
            "profile.sim",
            "profile.perf",
        ] {
            assert!(
                root.children.iter().any(|c| c.name == phase),
                "missing phase span {phase}"
            );
        }
        let t = std::fs::read_to_string(&trace).unwrap();
        assert!(t.contains("\"traceEvents\""), "{t}");
        assert!(t.contains("\"manifest\":{\"schema\":\"fuseconv-manifest-v1\""));
        assert_eq!(t.matches('{').count(), t.matches('}').count());
        let m = std::fs::read_to_string(&metrics).unwrap();
        assert!(m.contains("\"schema\": \"fuseconv-metrics-v1\""), "{m}");
        assert!(m.contains("\"sim.cycles_total\""), "{m}");
        assert!(m.contains("\"profile.sim_cycles_per_host_sec\""), "{m}");
        // The calibration sim ran for real cycles, so the registry (reset
        // at the start of the profile arm) counted some.
        assert!(telemetry::counter("sim.cycles_total").get() > 0);
        std::fs::remove_file(trace).unwrap();
        std::fs::remove_file(metrics).unwrap();
    }

    #[test]
    fn bench_out_writes_manifest_sibling() {
        let dir = std::env::temp_dir().join("fuseconv-cli-bench-manifest-test");
        std::fs::create_dir_all(&dir).unwrap();
        let out = dir.join("bench.json");
        let out = out.to_str().unwrap();
        assert!(run(&parsed(&["bench", "--out", out, "--budget-ms", "1"])).is_ok());
        let sibling = format!("{out}.manifest.json");
        let text = std::fs::read_to_string(&sibling).unwrap();
        assert!(
            text.contains("\"schema\": \"fuseconv-manifest-v1\""),
            "{text}"
        );
        assert!(text.contains("\"config_hash\": \"fnv1a64:"), "{text}");
        std::fs::remove_file(out).unwrap();
        std::fs::remove_file(sibling).unwrap();
    }

    #[test]
    fn serve_validates_inputs() {
        assert!(run(&parsed(&["serve", "--pod", "64x64:xx"])).is_err());
        assert!(run(&parsed(&["serve", "--networks", "nope"])).is_err());
        assert!(run(&parsed(&["serve", "--variant", "quarter"])).is_err());
        assert!(run(&parsed(&["serve", "--policy", "lifo"])).is_err());
        assert!(run(&parsed(&["serve", "--dispatch", "split"])).is_err());
        assert!(run(&parsed(&["serve", "--format", "xml"])).is_err());
        assert!(run(&parsed(&["serve", "--requests", "0"])).is_err());
        assert!(run(&parsed(&["serve", "--load", "0"])).is_err());
        assert!(run(&parsed(&["serve", "--preempt", "--dispatch", "sharded"])).is_err());
    }

    #[test]
    fn serve_preempt_switch_is_negatable() {
        // `--preempt=false` must really disable preemption: the
        // sharded-dispatch config check only rejects it when enabled.
        assert!(run(&parsed(&[
            "serve",
            "--preempt=false",
            "--dispatch",
            "sharded",
            "--pod",
            "16x16:os",
            "--networks",
            "mobilenet-v1",
            "--requests",
            "50"
        ]))
        .is_ok());
    }

    #[test]
    fn serve_text_runs_on_a_small_pod() {
        assert!(run(&parsed(&[
            "serve",
            "--pod",
            "16x16:os,8x8:ws",
            "--networks",
            "mobilenet-v1",
            "--requests",
            "500",
            "--policy",
            "dynamic",
            "--max-batch",
            "4",
            "--max-wait",
            "10000"
        ]))
        .is_ok());
    }

    #[test]
    fn serve_writes_json_report_and_chrome_trace() {
        let dir = std::env::temp_dir().join("fuseconv-cli-serve-test");
        std::fs::create_dir_all(&dir).unwrap();
        let out = dir.join("serve.json");
        let out = out.to_str().unwrap();
        let trace = dir.join("serve_trace.json");
        let trace = trace.to_str().unwrap();
        let trace_flag = format!("--chrome-trace={trace}");
        assert!(run(&parsed(&[
            "serve",
            "--pod",
            "16x16:os,8x8:os",
            "--networks",
            "mobilenet-v1,mobilenet-v2",
            "--requests",
            "400",
            "--seed",
            "7",
            "--format",
            "json",
            "--out",
            out,
            &trace_flag
        ]))
        .is_ok());
        let text = std::fs::read_to_string(out).unwrap();
        assert!(text.contains("\"schema\": \"fuseconv-serve-v1\""), "{text}");
        assert!(text.contains("\"results_fnv1a64\": \"fnv1a64:"), "{text}");
        assert!(
            text.contains("\"schema\": \"fuseconv-manifest-v1\""),
            "{text}"
        );
        assert!(text.contains("\"seed\": 7"), "{text}");
        let tr = std::fs::read_to_string(trace).unwrap();
        assert!(tr.contains("\"traceEvents\""), "{tr}");
        assert!(tr.contains("array 0: 16x16:os"), "{tr}");
        std::fs::remove_file(out).unwrap();
        std::fs::remove_file(trace).unwrap();
    }

    #[test]
    fn serve_writes_timeseries_artifact_with_counter_tracks() {
        let dir = std::env::temp_dir().join("fuseconv-cli-serve-ts-test");
        std::fs::create_dir_all(&dir).unwrap();
        let ts = dir.join("serve_timeseries.json");
        let ts = ts.to_str().unwrap();
        let ts_flag = format!("--timeseries={ts}");
        let trace = dir.join("serve_trace.json");
        let trace = trace.to_str().unwrap();
        let trace_flag = format!("--chrome-trace={trace}");
        assert!(run(&parsed(&[
            "serve",
            "--pod",
            "16x16:os,8x8:os",
            "--networks",
            "mobilenet-v1",
            "--requests",
            "400",
            "--seed",
            "7",
            &ts_flag,
            &trace_flag
        ]))
        .is_ok());
        let body = std::fs::read_to_string(ts).unwrap();
        assert!(
            body.contains("\"schema\": \"fuseconv-serve-timeseries-v1\""),
            "{body}"
        );
        assert!(body.contains("\"results_fnv1a64\": \"fnv1a64:"), "{body}");
        assert!(
            body.contains("\"schema\": \"fuseconv-manifest-v1\""),
            "{body}"
        );
        let tr = std::fs::read_to_string(trace).unwrap();
        assert!(tr.contains("\"name\":\"goodput\""), "{tr}");
        assert!(tr.contains("\"name\":\"util 16x16:os\""), "{tr}");
        std::fs::remove_file(ts).unwrap();
        std::fs::remove_file(trace).unwrap();
    }

    #[test]
    fn serve_preflight_refuses_overload_unless_forced() {
        let base = [
            "serve",
            "--pod",
            "16x16:os",
            "--networks",
            "mobilenet-v1",
            "--requests",
            "50",
            "--load",
            "1.5",
        ];
        let e = run(&parsed(&base)).unwrap_err();
        assert!(e.contains("preflight"), "{e}");
        assert!(e.contains("SRV001"), "{e}");
        let mut forced = base.to_vec();
        forced.push("--force");
        assert!(run(&parsed(&forced)).is_ok());
    }

    #[test]
    fn serve_accepts_slo_budget_and_buckets_flags() {
        // A generous absolute budget passes preflight and the run.
        assert!(run(&parsed(&[
            "serve",
            "--pod",
            "16x16:os",
            "--networks",
            "mobilenet-v1",
            "--requests",
            "50",
            "--slo-budget",
            "999999999999"
        ]))
        .is_ok());
        // --buckets demands the bucketed policy, same as the engine.
        let e = run(&parsed(&[
            "serve",
            "--pod",
            "16x16:os",
            "--networks",
            "mobilenet-v1",
            "--requests",
            "50",
            "--buckets",
            "1",
        ]))
        .unwrap_err();
        assert!(e.contains("bucketed"), "{e}");
        assert!(run(&parsed(&[
            "serve",
            "--pod",
            "16x16:os",
            "--networks",
            "mobilenet-v1",
            "--requests",
            "50",
            "--policy",
            "bucketed",
            "--buckets",
            "1"
        ]))
        .is_ok());
    }

    #[test]
    fn analyze_serve_mode_reports_feasibility() {
        // Clean pod: no findings, exit ok.
        assert!(run(&parsed(&[
            "analyze",
            "--serve",
            "--pod",
            "16x16:os,16x16:os",
            "--networks",
            "mobilenet-v1"
        ]))
        .is_ok());
        // Overloaded pod: SRV001 is an error finding, so the command fails.
        let e = run(&parsed(&[
            "analyze",
            "--serve",
            "--pod",
            "16x16:os",
            "--networks",
            "mobilenet-v1",
            "--load",
            "1.5",
        ]))
        .unwrap_err();
        assert!(e.contains("error-severity"), "{e}");
    }

    #[test]
    fn analyze_serve_writes_json_with_rule_codes() {
        let dir = std::env::temp_dir().join("fuseconv-cli-analyze-serve-test");
        std::fs::create_dir_all(&dir).unwrap();
        let out = dir.join("feasibility.json");
        let out = out.to_str().unwrap();
        let e = run(&parsed(&[
            "analyze",
            "--serve",
            "--pod",
            "16x16:os",
            "--networks",
            "mobilenet-v1",
            "--load",
            "2.0",
            "--format",
            "json",
            "--out",
            out,
        ]))
        .unwrap_err();
        assert!(e.contains("error-severity"), "{e}");
        let text = std::fs::read_to_string(out).unwrap();
        assert!(text.contains("\"rule\":\"SRV001\""), "{text}");
        std::fs::remove_file(out).unwrap();
    }

    #[test]
    fn trace_heatmap_runs_on_a_layer() {
        // Layer 1 of MobileNet-V1 is the first depthwise: the §III-B
        // pathology should confine activity to a single array column.
        assert!(run(&parsed(&[
            "trace",
            "--network",
            "mobilenet-v1",
            "--format",
            "heatmap",
            "--layer",
            "1",
            "--array",
            "8"
        ]))
        .is_ok());
    }
}

//! Small trainable CNNs with a selectable spatial stage, used by the
//! accuracy study (the Table I accuracy column, on the synthetic
//! substitute task).
//!
//! Each network is the same depthwise-separable architecture except for its
//! spatial filters, mirroring the paper's drop-in replacement protocol: the
//! baseline uses `K×K` depthwise filters, the variants use FuSe banks. All
//! three see identical parameter budgets elsewhere.

use crate::variant::Variant;
use fuseconv_nn::FuSeVariant;
use fuseconv_train::layers::{
    ActivationLayer, AvgPoolLayer, ChannelNormLayer, Conv2dLayer, DenseLayer, DepthwiseLayer,
    FuseLayer, GlobalPoolLayer, PointwiseLayer,
};
use fuseconv_train::Sequential;

/// Architecture hyper-parameters for the study CNN.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CnnConfig {
    /// Input channels (1 for the synthetic textures).
    pub in_channels: usize,
    /// Stem output channels.
    pub stem_channels: usize,
    /// Channels after the first separable block.
    pub mid_channels: usize,
    /// Number of output classes.
    pub classes: usize,
    /// Depthwise/FuSe kernel length.
    pub k: usize,
    /// Weight initialization seed.
    pub seed: u64,
}

impl Default for CnnConfig {
    fn default() -> Self {
        CnnConfig {
            in_channels: 1,
            stem_channels: 8,
            mid_channels: 16,
            classes: 4,
            k: 3,
            seed: 0,
        }
    }
}

/// Builds the study CNN with the spatial stage selected by `variant`
/// (`Baseline` → depthwise; the 50 % variants are treated as their full
/// counterparts since the network has a single separable stage per block).
///
/// Architecture (normalize-then-activate after every conv, as MobileNets
/// do): stem conv → norm → ReLU → \[spatial → pointwise → norm → ReLU\] →
/// pool/2 → \[spatial → pointwise → norm → ReLU\] → global pool → dense.
pub fn build_cnn(variant: Variant, cfg: &CnnConfig) -> Sequential {
    let mut net = Sequential::new();
    let s = cfg.seed;
    net.push(Conv2dLayer::new(
        cfg.in_channels,
        cfg.stem_channels,
        3,
        1,
        s.wrapping_add(1),
    ));
    net.push(ChannelNormLayer::new(cfg.stem_channels));
    net.push(ActivationLayer::relu());

    push_separable(
        &mut net,
        variant,
        cfg.stem_channels,
        cfg.mid_channels,
        cfg.k,
        s.wrapping_add(2),
    );
    net.push(ActivationLayer::relu());
    net.push(AvgPoolLayer::new(2));
    push_separable(
        &mut net,
        variant,
        cfg.mid_channels,
        cfg.mid_channels * 2,
        cfg.k,
        s.wrapping_add(3),
    );
    net.push(ActivationLayer::relu());
    net.push(GlobalPoolLayer::new());
    net.push(DenseLayer::new(
        cfg.mid_channels * 2,
        cfg.classes,
        s.wrapping_add(4),
    ));
    net
}

fn push_separable(
    net: &mut Sequential,
    variant: Variant,
    in_c: usize,
    out_c: usize,
    k: usize,
    seed: u64,
) {
    match variant.fuse_variant() {
        None => {
            net.push(DepthwiseLayer::new(in_c, k, k, seed));
            net.push(PointwiseLayer::new(in_c, out_c, seed ^ 0xbeef));
        }
        Some(v @ FuSeVariant::Full) => {
            net.push(FuseLayer::new(v, in_c, k, seed));
            net.push(PointwiseLayer::new(2 * in_c, out_c, seed ^ 0xbeef));
        }
        Some(v @ FuSeVariant::Half) => {
            net.push(FuseLayer::new(v, in_c, k, seed));
            net.push(PointwiseLayer::new(in_c, out_c, seed ^ 0xbeef));
        }
    }
    net.push(ChannelNormLayer::new(out_c));
}

#[cfg(test)]
mod tests {
    use super::*;
    use fuseconv_tensor::Tensor;

    #[test]
    fn all_variants_produce_same_output_shape() {
        let cfg = CnnConfig::default();
        let x = Tensor::full(&[1, 16, 16], 0.5).unwrap();
        for v in [Variant::Baseline, Variant::FuseFull, Variant::FuseHalf] {
            let mut net = build_cnn(v, &cfg);
            let y = net.forward(&x).unwrap();
            assert_eq!(y.shape().dims(), &[4], "{v}");
        }
    }

    #[test]
    fn full_variant_has_more_parameters_half_fewer() {
        // Mirrors Table I's parameter ordering: Full > baseline > Half.
        let cfg = CnnConfig::default();
        let count = |v: Variant| build_cnn(v, &cfg).num_params();
        let base = count(Variant::Baseline);
        let full = count(Variant::FuseFull);
        let half = count(Variant::FuseHalf);
        assert!(full > base, "full {full} vs base {base}");
        assert!(half < base, "half {half} vs base {base}");
    }

    #[test]
    fn partial_variants_fall_back_to_full_counterparts() {
        let cfg = CnnConfig::default();
        let a = build_cnn(Variant::FuseFull50, &cfg).num_params();
        let b = build_cnn(Variant::FuseFull, &cfg).num_params();
        assert_eq!(a, b);
    }

    #[test]
    fn gradients_flow_through_every_variant() {
        let cfg = CnnConfig::default();
        let x = Tensor::from_fn(&[1, 16, 16], |ix| ((ix[1] + ix[2]) % 3) as f32 - 1.0).unwrap();
        for v in [Variant::Baseline, Variant::FuseFull, Variant::FuseHalf] {
            let mut net = build_cnn(v, &cfg);
            let _ = net.forward(&x).unwrap();
            let g = Tensor::full(&[4], 0.25).unwrap();
            let gx = net.backward(&g).unwrap();
            assert_eq!(gx.shape().dims(), &[1, 16, 16]);
            // At least one parameter gradient must be nonzero.
            let nonzero = net
                .params_mut()
                .iter()
                .any(|p| p.grad.as_slice().iter().any(|&g| g != 0.0));
            assert!(nonzero, "{v}");
        }
    }
}

//! One driver per table/figure of the paper's evaluation (§V).
//!
//! Every function returns plain data rows; the example binaries and the
//! bench harness format them. The experiment ↔ artifact mapping lives in
//! `DESIGN.md` (E1–E10).

use crate::cnn::{build_cnn, CnnConfig};
use crate::variant::{apply_variant, Variant};
use fuseconv_hwcost::{Overhead, TechnologyProfile};
use fuseconv_latency::{block_speedups, estimate_network, LatencyError, LatencyModel};
use fuseconv_models::{zoo, Network};
use fuseconv_nn::ops::OpClass;
use fuseconv_nn::NnError;
use fuseconv_systolic::ArrayConfig;
use fuseconv_train::dataset::{DiagonalStripes, OrientedTextures};
use fuseconv_train::trainer::{train, TrainConfig};

/// One measured row of Table I (E1/E2/E4).
#[derive(Debug, Clone, PartialEq)]
pub struct Table1Row {
    /// Network name.
    pub network: String,
    /// Variant.
    pub variant: Variant,
    /// Measured MACs, millions.
    pub macs_millions: f64,
    /// Measured parameters, millions.
    pub params_millions: f64,
    /// Latency on the given array, cycles (Fig. 8(a)).
    pub latency_cycles: u64,
    /// Speed-up relative to the same network's baseline.
    pub speedup: f64,
}

/// Reproduces Table I (MACs, params, latency and speed-up) for all five
/// networks and five variants on `array`.
///
/// # Errors
///
/// Propagates [`LatencyError`] (e.g. FuSe on a broadcast-less array).
pub fn table1(array: &ArrayConfig) -> Result<Vec<Table1Row>, LatencyError> {
    let model = LatencyModel::new(*array);
    let mut rows = Vec::with_capacity(25);
    for baseline in zoo::all_baselines() {
        let base_latency = estimate_network(&model, &baseline)?;
        for variant in Variant::ALL {
            let net = apply_variant(&baseline, variant, array)?;
            let latency = estimate_network(&model, &net)?;
            let summary = net.summary();
            rows.push(Table1Row {
                network: baseline.name().to_string(),
                variant,
                macs_millions: summary.macs_millions(),
                params_millions: summary.params_millions(),
                latency_cycles: latency.total_cycles,
                speedup: latency.speedup_over(&base_latency),
            });
        }
    }
    Ok(rows)
}

/// One block of the Fig. 8(b) layer-wise study.
#[derive(Debug, Clone, PartialEq)]
pub struct LayerwiseRow {
    /// Block label.
    pub block: String,
    /// Whether the block was FuSe-transformed.
    pub transformed: bool,
    /// Baseline block cycles.
    pub baseline_cycles: u64,
    /// Transformed-network block cycles.
    pub fused_cycles: u64,
    /// Block speed-up.
    pub speedup: f64,
}

/// Reproduces Fig. 8(b): per-block speed-up of a network's Full variant.
/// The paper plots MobileNet-V2; any baseline network works.
///
/// # Errors
///
/// Propagates [`LatencyError`].
pub fn layerwise(
    network: &Network,
    variant: Variant,
    array: &ArrayConfig,
) -> Result<Vec<LayerwiseRow>, LatencyError> {
    let model = LatencyModel::new(*array);
    let base = estimate_network(&model, network)?;
    let transformed_net = apply_variant(network, variant, array)?;
    let fused = estimate_network(&model, &transformed_net)?;
    let speedups = block_speedups(&base, &fused);
    let base_blocks = base.by_block();
    let fused_blocks = fused.by_block();
    Ok(network
        .blocks()
        .iter()
        .enumerate()
        .map(|(i, (_, block))| LayerwiseRow {
            block: base_blocks[i].name.clone(),
            transformed: block.is_replaceable() && !transformed_net.blocks()[i].1.is_replaceable(),
            baseline_cycles: base_blocks[i].cycles,
            fused_cycles: fused_blocks[i].cycles,
            speedup: speedups[i].1,
        })
        .collect())
}

/// One network's operator-class latency distribution (Fig. 8(c)).
#[derive(Debug, Clone, PartialEq)]
pub struct BreakdownRow {
    /// Network name.
    pub network: String,
    /// Variant.
    pub variant: Variant,
    /// `(class, latency fraction)` pairs summing to 1.
    pub fractions: Vec<(OpClass, f64)>,
}

/// Reproduces Fig. 8(c): latency distribution across operator classes for
/// baseline and Full-variant networks.
///
/// # Errors
///
/// Propagates [`LatencyError`].
pub fn operator_breakdown(array: &ArrayConfig) -> Result<Vec<BreakdownRow>, LatencyError> {
    let model = LatencyModel::new(*array);
    let mut rows = Vec::new();
    for baseline in zoo::all_baselines() {
        for variant in [Variant::Baseline, Variant::FuseFull] {
            let net = apply_variant(&baseline, variant, array)?;
            let report = estimate_network(&model, &net)?;
            let bd = report.breakdown();
            rows.push(BreakdownRow {
                network: baseline.name().to_string(),
                variant,
                fractions: bd
                    .entries()
                    .map(|(class, cycles)| (class, cycles as f64 / bd.total() as f64))
                    .collect(),
            });
        }
    }
    Ok(rows)
}

/// One point of the Fig. 8(d) ablation.
#[derive(Debug, Clone, PartialEq)]
pub struct ScalingRow {
    /// Square array side.
    pub array_size: usize,
    /// Network name.
    pub network: String,
    /// Full-variant speed-up at this size.
    pub speedup: f64,
}

/// Reproduces Fig. 8(d): Full-variant speed-up versus systolic-array size,
/// for all five networks. Sizes are evaluated in parallel.
///
/// # Errors
///
/// Propagates [`LatencyError`]; `ArrayConfig` construction failures cannot
/// occur for nonzero sizes, which are validated here.
pub fn array_scaling(sizes: &[usize]) -> Result<Vec<ScalingRow>, LatencyError> {
    let results: Vec<Result<Vec<ScalingRow>, LatencyError>> = std::thread::scope(|scope| {
        let handles: Vec<_> = sizes
            .iter()
            .map(|&s| {
                scope.spawn(move || -> Result<Vec<ScalingRow>, LatencyError> {
                    let array = ArrayConfig::square(s)
                        .expect("sizes must be nonzero")
                        .with_broadcast(true);
                    let model = LatencyModel::new(array);
                    let mut rows = Vec::new();
                    for baseline in zoo::all_baselines() {
                        let base = estimate_network(&model, &baseline)?;
                        let full = estimate_network(
                            &model,
                            &baseline.transform_all(fuseconv_nn::FuSeVariant::Full),
                        )?;
                        rows.push(ScalingRow {
                            array_size: s,
                            network: baseline.name().to_string(),
                            speedup: full.speedup_over(&base),
                        });
                    }
                    Ok(rows)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("scaling worker panicked"))
            .collect()
    });
    let mut rows = Vec::new();
    for r in results {
        rows.extend(r?);
    }
    Ok(rows)
}

/// The paper's §I motivating comparison, measured.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IntroClaim {
    /// ResNet-50 MACs divided by MobileNet-V2 MACs (paper: ~12×).
    pub mac_ratio: f64,
    /// ResNet-50 latency divided by MobileNet-V2 latency on the array
    /// (paper: only ~1.3× on 32×32 — the incommensurate scaling that
    /// motivates the whole work).
    pub latency_ratio: f64,
    /// MobileNet-V2 latency, cycles.
    pub mobilenet_cycles: u64,
    /// ResNet-50 latency, cycles.
    pub resnet_cycles: u64,
}

/// Reproduces the §I claim: "MobileNet-V2 has 12× fewer computations than
/// ResNet-50, but runs only 1.3× faster on a systolic array with MACs
/// arranged in a 32×32 array."
///
/// # Errors
///
/// Propagates [`LatencyError`]; neither network needs broadcast links.
pub fn intro_claim(array_side: usize) -> Result<IntroClaim, LatencyError> {
    let array = ArrayConfig::square(array_side).expect("array side must be nonzero");
    let model = LatencyModel::new(array);
    let v2 = zoo::mobilenet_v2();
    let resnet = zoo::resnet50();
    let v2_lat = estimate_network(&model, &v2)?;
    let rn_lat = estimate_network(&model, &resnet)?;
    Ok(IntroClaim {
        mac_ratio: resnet.macs() as f64 / v2.macs() as f64,
        latency_ratio: rn_lat.total_cycles as f64 / v2_lat.total_cycles as f64,
        mobilenet_cycles: v2_lat.total_cycles,
        resnet_cycles: rn_lat.total_cycles,
    })
}

/// Reproduces §V-B-5: broadcast-link area/power overhead per array size.
pub fn hw_overhead(sizes: &[usize]) -> Vec<(usize, Overhead)> {
    let tech = TechnologyProfile::nangate45();
    sizes
        .iter()
        .map(|&s| (s, tech.broadcast_overhead(s, s)))
        .collect()
}

/// One row of the energy study: latency and the structural power model
/// combined into per-inference energy.
#[derive(Debug, Clone, PartialEq)]
pub struct EnergyRow {
    /// Network name.
    pub network: String,
    /// Variant.
    pub variant: Variant,
    /// Latency, cycles.
    pub cycles: u64,
    /// Array power draw, milliwatts (broadcast links included for FuSe
    /// variants — they physically require them; the baseline runs on the
    /// plain array).
    pub power_mw: f64,
    /// Per-inference energy, microjoules.
    pub energy_uj: f64,
}

/// Combines the latency model (E2) with the structural power model (E8)
/// into per-inference energy at the given clock. This is the paper's
/// implicit value proposition quantified: FuSeConv pays ~2 % more power on
/// a broadcast-equipped array but finishes several times sooner, for a
/// large net energy win.
///
/// # Errors
///
/// Propagates [`LatencyError`].
pub fn energy_study(array_side: usize, clock_mhz: f64) -> Result<Vec<EnergyRow>, LatencyError> {
    let plain = ArrayConfig::square(array_side).expect("array side must be nonzero");
    let broadcast = plain.with_broadcast(true);
    let tech = TechnologyProfile::nangate45();
    let plain_power = tech.array_cost(array_side, array_side, false).power_mw();
    let bcast_power = tech.array_cost(array_side, array_side, true).power_mw();

    let mut rows = Vec::new();
    for baseline in zoo::all_baselines() {
        for variant in [Variant::Baseline, Variant::FuseFull, Variant::FuseHalf] {
            // Baselines run on the plain array; FuSe variants need the
            // broadcast links (and therefore pay their power).
            let (array, power_mw) = match variant {
                Variant::Baseline => (plain, plain_power),
                _ => (broadcast, bcast_power),
            };
            let model = LatencyModel::new(array);
            let net = apply_variant(&baseline, variant, &broadcast)?;
            let report = estimate_network(&model, &net)?;
            let seconds = report.total_cycles as f64 / (clock_mhz * 1e6);
            rows.push(EnergyRow {
                network: baseline.name().to_string(),
                variant,
                cycles: report.total_cycles,
                power_mw,
                energy_uj: power_mw * 1e3 * seconds, // mW·s = mJ → µJ ×1e3
            });
        }
    }
    Ok(rows)
}

/// Which synthetic task the accuracy study trains on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum TaskKind {
    /// Oriented sinusoidal gratings — separable signals, the friendly
    /// case for 1-D filters (default).
    #[default]
    OrientedTextures,
    /// ±45° diagonal stripes — non-separable; 1-D marginals carry no
    /// class information, probing what the substitution gives up.
    DiagonalStripes,
}

/// Configuration of the accuracy study (E3).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AccuracyConfig {
    /// Training samples.
    pub train_samples: usize,
    /// Held-out samples.
    pub test_samples: usize,
    /// Image side length.
    pub image_size: usize,
    /// Orientation classes.
    pub classes: usize,
    /// Training epochs.
    pub epochs: usize,
    /// Random seed (dataset and weights).
    pub seed: u64,
    /// Which synthetic task to train on.
    pub task: TaskKind,
}

impl Default for AccuracyConfig {
    fn default() -> Self {
        AccuracyConfig {
            train_samples: 192,
            test_samples: 64,
            image_size: 16,
            classes: 4,
            epochs: 12,
            seed: 7,
            task: TaskKind::OrientedTextures,
        }
    }
}

/// One trained variant's result.
#[derive(Debug, Clone, PartialEq)]
pub struct AccuracyRow {
    /// Variant trained.
    pub variant: Variant,
    /// Held-out accuracy in `[0, 1]`.
    pub accuracy: f64,
    /// Trainable parameter count.
    pub params: usize,
}

/// Trains baseline, FuSe-Full and FuSe-Half study CNNs on the synthetic
/// oriented-texture task with the paper's recipe, reporting held-out
/// accuracy — the substitute for the Table I accuracy column.
///
/// # Errors
///
/// Propagates [`NnError`] from training.
pub fn accuracy_study(cfg: &AccuracyConfig) -> Result<Vec<AccuracyRow>, NnError> {
    let (classes, train_data, test_data) = match cfg.task {
        TaskKind::OrientedTextures => {
            let gen = OrientedTextures::new(cfg.image_size, cfg.classes);
            (
                cfg.classes,
                gen.generate(cfg.train_samples, cfg.seed),
                gen.generate(cfg.test_samples, cfg.seed.wrapping_add(1)),
            )
        }
        TaskKind::DiagonalStripes => {
            let gen = DiagonalStripes::new(cfg.image_size);
            (
                gen.classes(),
                gen.generate(cfg.train_samples, cfg.seed),
                gen.generate(cfg.test_samples, cfg.seed.wrapping_add(1)),
            )
        }
    };
    let mut rows = Vec::new();
    for variant in [Variant::Baseline, Variant::FuseFull, Variant::FuseHalf] {
        let mut net = build_cnn(
            variant,
            &CnnConfig {
                classes,
                seed: cfg.seed,
                ..CnnConfig::default()
            },
        );
        let report = train(
            &mut net,
            &train_data,
            &test_data,
            &TrainConfig {
                epochs: cfg.epochs,
                batch_size: 16,
                base_lr: 0.012,
                ema_decay: None,
                seed: cfg.seed,
            },
        )?;
        rows.push(AccuracyRow {
            variant,
            accuracy: report.test_accuracy,
            params: net.num_params(),
        });
    }
    Ok(rows)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn array64() -> ArrayConfig {
        ArrayConfig::square(64).unwrap().with_broadcast(true)
    }

    #[test]
    fn table1_has_25_rows_with_consistent_speedups() {
        let rows = table1(&array64()).unwrap();
        assert_eq!(rows.len(), 25);
        for row in &rows {
            match row.variant {
                Variant::Baseline => assert!((row.speedup - 1.0).abs() < 1e-12),
                _ => assert!(row.speedup > 1.0, "{} {}", row.network, row.variant),
            }
            assert!(row.macs_millions > 0.0 && row.params_millions > 0.0);
        }
        // Half beats Full everywhere (Table I).
        for net in ["MobileNet-V1", "MobileNet-V2", "MnasNet-B1"] {
            let get = |v: Variant| {
                rows.iter()
                    .find(|r| r.network == net && r.variant == v)
                    .unwrap()
                    .speedup
            };
            assert!(get(Variant::FuseHalf) > get(Variant::FuseFull), "{net}");
            assert!(get(Variant::FuseFull) > get(Variant::FuseFull50), "{net}");
        }
    }

    #[test]
    fn layerwise_covers_all_blocks() {
        let net = zoo::mobilenet_v2();
        let rows = layerwise(&net, Variant::FuseFull, &array64()).unwrap();
        assert_eq!(rows.len(), net.blocks().len());
        let transformed: Vec<_> = rows.iter().filter(|r| r.transformed).collect();
        assert_eq!(transformed.len(), 17);
        // Every transformed block speeds up; untransformed blocks don't
        // change except via identical op sets (speedup == 1).
        for r in &rows {
            if r.transformed {
                assert!(r.speedup > 1.0, "{}", r.block);
            } else {
                assert!((r.speedup - 1.0).abs() < 1e-9, "{}", r.block);
            }
        }
    }

    #[test]
    fn breakdown_fractions_sum_to_one() {
        let rows = operator_breakdown(&array64()).unwrap();
        assert_eq!(rows.len(), 10);
        for row in &rows {
            let sum: f64 = row.fractions.iter().map(|(_, f)| f).sum();
            assert!((sum - 1.0).abs() < 1e-9, "{} {}", row.network, row.variant);
        }
    }

    #[test]
    fn scaling_is_monotone_per_network() {
        let rows = array_scaling(&[8, 32, 128]).unwrap();
        assert_eq!(rows.len(), 15);
        for net in ["MobileNet-V1", "MobileNet-V3-Small"] {
            let mut s: Vec<_> = rows.iter().filter(|r| r.network == net).collect();
            s.sort_by_key(|r| r.array_size);
            assert!(s[0].speedup < s[1].speedup && s[1].speedup < s[2].speedup);
        }
    }

    #[test]
    fn hw_overhead_reports_paper_point() {
        let rows = hw_overhead(&[16, 32, 64]);
        let at32 = rows.iter().find(|(s, _)| *s == 32).unwrap().1;
        assert!((at32.area_pct - crate::paper::HW_OVERHEAD_32X32.0).abs() < 0.2);
        assert!((at32.power_pct - crate::paper::HW_OVERHEAD_32X32.1).abs() < 0.2);
    }

    #[test]
    fn intro_claim_reproduces() {
        // §I: ~12x fewer MACs, but only ~1.3x faster on 32x32. Our model
        // must show the same incommensurate scaling: a MAC ratio an order
        // of magnitude larger than the latency ratio.
        let claim = intro_claim(32).unwrap();
        assert!(
            (10.0..16.0).contains(&claim.mac_ratio),
            "MAC ratio {:.1}",
            claim.mac_ratio
        );
        assert!(
            (0.8..4.0).contains(&claim.latency_ratio),
            "latency ratio {:.2}",
            claim.latency_ratio
        );
        assert!(
            claim.mac_ratio > 4.0 * claim.latency_ratio,
            "scaling should be incommensurate: {:.1} vs {:.2}",
            claim.mac_ratio,
            claim.latency_ratio
        );
    }

    #[test]
    fn energy_win_despite_power_overhead() {
        let rows = energy_study(64, 700.0).unwrap();
        assert_eq!(rows.len(), 15);
        for base_row in rows.iter().filter(|r| r.variant == Variant::Baseline) {
            let get = |v: Variant| {
                rows.iter()
                    .find(|r| r.network == base_row.network && r.variant == v)
                    .unwrap()
            };
            for v in [Variant::FuseFull, Variant::FuseHalf] {
                let fused = get(v);
                // FuSe pays more power…
                assert!(fused.power_mw > base_row.power_mw);
                // …but wins on energy by at least 2x.
                assert!(
                    fused.energy_uj * 2.0 < base_row.energy_uj,
                    "{} {v}: {:.1}uJ vs baseline {:.1}uJ",
                    base_row.network,
                    fused.energy_uj,
                    base_row.energy_uj
                );
            }
        }
    }

    #[test]
    fn accuracy_study_beats_chance_for_all_variants() {
        // Small-but-real training run; keeps CI fast while still learning.
        let cfg = AccuracyConfig {
            train_samples: 96,
            test_samples: 32,
            epochs: 6,
            ..AccuracyConfig::default()
        };
        let rows = accuracy_study(&cfg).unwrap();
        assert_eq!(rows.len(), 3);
        let chance = 1.0 / cfg.classes as f64;
        for row in &rows {
            assert!(
                row.accuracy > chance,
                "{}: accuracy {:.2} at or below chance",
                row.variant,
                row.accuracy
            );
        }
        // Parameter ordering mirrors Table I.
        let get = |v: Variant| rows.iter().find(|r| r.variant == v).unwrap().params;
        assert!(get(Variant::FuseFull) > get(Variant::Baseline));
        assert!(get(Variant::FuseHalf) < get(Variant::Baseline));
    }
}

#[cfg(test)]
mod extension_tests {
    use super::*;
    use fuseconv_latency::{estimate_network, LatencyModel};

    /// The FuSe speed-up generalizes beyond the paper's five networks: the
    /// EfficientNet-B0 the paper cites for poor EdgeTPU scaling (§I)
    /// benefits just as much.
    #[test]
    fn efficientnet_b0_also_speeds_up() {
        let array = ArrayConfig::square(64).unwrap().with_broadcast(true);
        let model = LatencyModel::new(array);
        let net = zoo::efficientnet_b0();
        let base = estimate_network(&model, &net).unwrap();
        for variant in [Variant::FuseFull, Variant::FuseHalf] {
            let fused = apply_variant(&net, variant, &array).unwrap();
            let report = estimate_network(&model, &fused).unwrap();
            let s = report.speedup_over(&base);
            assert!(s > 3.0, "{variant}: {s:.2}x");
        }
    }
}

//! The FuSeConv system: drop-in network transformation plus the drivers for
//! every experiment in the paper's evaluation (§V).
//!
//! This crate ties the substrates together:
//!
//! - [`variant`] — the five Table I variants (baseline, Full, Half,
//!   Full-50 %, Half-50 %) and their application to a network, including
//!   the latency-guided block selection of the 50 % variants;
//! - [`experiments`] — one driver per table/figure:
//!   [`experiments::table1`] (Table I), [`experiments::layerwise`]
//!   (Fig. 8(b)), [`experiments::operator_breakdown`] (Fig. 8(c)),
//!   [`experiments::array_scaling`] (Fig. 8(d)),
//!   [`experiments::hw_overhead`] (§V-B-5) and
//!   [`experiments::accuracy_study`] (the Table I accuracy column, on the
//!   synthetic substitute task);
//! - [`paper`] — the published Table I numbers, kept as data so reports can
//!   print paper-vs-measured side by side;
//! - [`cnn`] — small trainable CNNs whose spatial stage is selectable
//!   (depthwise / FuSe-Full / FuSe-Half) for the accuracy study.
//!
//! # Examples
//!
//! ```
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! use fuseconv_core::experiments;
//! use fuseconv_core::variant::Variant;
//! use fuseconv_systolic::ArrayConfig;
//!
//! let array = ArrayConfig::square(64)?.with_broadcast(true);
//! let rows = experiments::table1(&array)?;
//! let v1_half = rows
//!     .iter()
//!     .find(|r| r.network == "MobileNet-V1" && r.variant == Variant::FuseHalf)
//!     .expect("present");
//! assert!(v1_half.speedup > 3.0);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cnn;
pub mod experiments;
pub mod nos;
pub mod paper;
pub mod report;
pub mod trace;
pub mod variant;

pub use variant::{apply_variant, Variant};

//! Neural Operator Search (NOS) — the paper's motivated future work
//! (§I, §VI), implemented as an exact per-block search.
//!
//! The paper frames FuSeConv as the result of a *manual* operator search
//! and calls for automating the choice of operator per layer. Because the
//! FuSe transformation preserves every block's interface (shapes in/out),
//! operator choices are independent across blocks, and the network-level
//! trade-off decomposes exactly: each separable block independently picks
//! one of {depthwise, FuSe-Full, FuSe-Half}, contributing its own latency
//! and parameter count.
//!
//! Parameters act as the capacity (accuracy) proxy — Table I shows accuracy
//! ordering tracking parameter count (Full > baseline > Half) — so the
//! search computes the exact **Pareto frontier over (latency, parameters)**
//! by dynamic programming with dominance pruning, and answers two dual
//! queries:
//!
//! - [`search_under_latency`] — maximize capacity subject to a latency
//!   budget;
//! - [`search_under_params`] — minimize latency subject to a capacity
//!   floor.
//!
//! # Examples
//!
//! ```
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! use fuseconv_core::nos;
//! use fuseconv_models::zoo;
//! use fuseconv_systolic::ArrayConfig;
//!
//! let array = ArrayConfig::square(64)?.with_broadcast(true);
//! let frontier = nos::pareto_frontier(&zoo::mobilenet_v1(), &array)?;
//! assert!(frontier.len() > 2); // more than just the Table I variants
//! # Ok(())
//! # }
//! ```

use crate::variant::Variant;
use fuseconv_latency::{LatencyError, LatencyModel};
use fuseconv_models::{Block, Network};
use fuseconv_nn::ops::Op;
use fuseconv_nn::FuSeVariant;
use fuseconv_systolic::ArrayConfig;
use std::fmt;

/// The operator choices available to one separable block.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OpChoice {
    /// Keep the baseline `K×K` depthwise filter.
    Depthwise,
    /// Replace with FuSe-Full (`D = 1`).
    FuseFull,
    /// Replace with FuSe-Half (`D = 2`).
    FuseHalf,
}

impl OpChoice {
    /// All choices, in capacity order (most parameters first).
    pub const ALL: [OpChoice; 3] = [OpChoice::FuseFull, OpChoice::Depthwise, OpChoice::FuseHalf];

    fn fuse_variant(&self) -> Option<FuSeVariant> {
        match self {
            OpChoice::Depthwise => None,
            OpChoice::FuseFull => Some(FuSeVariant::Full),
            OpChoice::FuseHalf => Some(FuSeVariant::Half),
        }
    }
}

impl fmt::Display for OpChoice {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            OpChoice::Depthwise => "dw",
            OpChoice::FuseFull => "full",
            OpChoice::FuseHalf => "half",
        };
        f.write_str(s)
    }
}

/// One point on the (latency, parameters) Pareto frontier.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NosPoint {
    /// Total network latency, cycles.
    pub latency: u64,
    /// Total network parameters.
    pub params: u64,
    /// Per-separable-block operator assignment, in block order (indices
    /// refer to the network's replaceable blocks, in order).
    pub assignment: Vec<OpChoice>,
}

/// A search outcome: a frontier point plus the materialized network.
#[derive(Debug, Clone, PartialEq)]
pub struct NosResult {
    /// The selected frontier point.
    pub point: NosPoint,
    /// The network with the assignment applied.
    pub network: Network,
    /// Speed-up relative to the all-depthwise baseline.
    pub speedup: f64,
}

/// Per-block cost of each operator choice.
#[derive(Debug, Clone)]
struct BlockCosts {
    /// `(latency, params)` per [`OpChoice::ALL`] entry.
    costs: [(u64, u64); 3],
}

fn block_cost(
    model: &LatencyModel,
    block: &Block,
    choice: OpChoice,
) -> Result<(u64, u64), LatencyError> {
    let b = match choice.fuse_variant() {
        None => *block,
        Some(v) => block.fused(v),
    };
    let ops = b.ops();
    let mut latency = 0u64;
    let mut params = 0u64;
    for op in &ops {
        latency += model.cycles(op)?;
        params += Op::params(op);
    }
    Ok((latency, params))
}

fn gather_costs(
    network: &Network,
    model: &LatencyModel,
) -> Result<(Vec<BlockCosts>, u64, u64), LatencyError> {
    let mut fixed_latency = 0u64;
    let mut fixed_params = 0u64;
    let mut blocks = Vec::new();
    for (_, block) in network.blocks() {
        if block.is_replaceable() {
            let mut costs = [(0u64, 0u64); 3];
            for (slot, &choice) in OpChoice::ALL.iter().enumerate() {
                costs[slot] = block_cost(model, block, choice)?;
            }
            blocks.push(BlockCosts { costs });
        } else {
            let (l, p) = block_cost(model, block, OpChoice::Depthwise)?;
            fixed_latency += l;
            fixed_params += p;
        }
    }
    Ok((blocks, fixed_latency, fixed_params))
}

/// Removes dominated points: keeps, for increasing latency, strictly
/// increasing parameter counts.
fn prune(mut points: Vec<NosPoint>) -> Vec<NosPoint> {
    points.sort_by(|a, b| a.latency.cmp(&b.latency).then(b.params.cmp(&a.params)));
    let mut kept: Vec<NosPoint> = Vec::new();
    for p in points {
        match kept.last() {
            Some(last) if p.params <= last.params => {}   // dominated
            Some(last) if p.latency == last.latency => {} // same latency, fewer params already kept
            _ => kept.push(p),
        }
    }
    kept
}

/// Computes the exact (latency, parameters) Pareto frontier over all
/// per-block operator assignments, by DP with dominance pruning.
///
/// Frontier points are sorted by increasing latency (and therefore
/// increasing parameters). The two extremes are the all-FuSe-Half
/// assignment (fastest) and whichever assignment maximizes parameters
/// (all-FuSe-Full).
///
/// # Errors
///
/// Propagates [`LatencyError`] (e.g. a broadcast-less array).
pub fn pareto_frontier(
    network: &Network,
    array: &ArrayConfig,
) -> Result<Vec<NosPoint>, LatencyError> {
    let model = LatencyModel::new(*array);
    let (blocks, fixed_latency, fixed_params) = gather_costs(network, &model)?;
    let mut frontier = vec![NosPoint {
        latency: fixed_latency,
        params: fixed_params,
        assignment: Vec::new(),
    }];
    for block in &blocks {
        let mut next = Vec::with_capacity(frontier.len() * 3);
        for point in &frontier {
            for (slot, &choice) in OpChoice::ALL.iter().enumerate() {
                let (l, p) = block.costs[slot];
                let mut assignment = point.assignment.clone();
                assignment.push(choice);
                next.push(NosPoint {
                    latency: point.latency + l,
                    params: point.params + p,
                    assignment,
                });
            }
        }
        frontier = prune(next);
    }
    Ok(frontier)
}

fn materialize(
    network: &Network,
    array: &ArrayConfig,
    point: NosPoint,
) -> Result<NosResult, LatencyError> {
    let replaceable = network.replaceable_indices();
    debug_assert_eq!(replaceable.len(), point.assignment.len());
    let mut full_idx = Vec::new();
    let mut half_idx = Vec::new();
    for (&i, &choice) in replaceable.iter().zip(&point.assignment) {
        match choice {
            OpChoice::Depthwise => {}
            OpChoice::FuseFull => full_idx.push(i),
            OpChoice::FuseHalf => half_idx.push(i),
        }
    }
    let mut net = network.clone();
    if !full_idx.is_empty() {
        net = net
            .transform_selected(FuSeVariant::Full, &full_idx)
            .expect("indices replaceable");
    }
    if !half_idx.is_empty() {
        net = net
            .transform_selected(FuSeVariant::Half, &half_idx)
            .expect("indices replaceable");
    }
    let model = LatencyModel::new(*array);
    let base = fuseconv_latency::estimate_network(&model, network)?;
    let this = fuseconv_latency::estimate_network(&model, &net)?;
    let speedup = this.speedup_over(&base);
    Ok(NosResult {
        point,
        network: net,
        speedup,
    })
}

/// Maximizes capacity (parameters) subject to `latency ≤ budget` cycles.
/// Returns `None` if even the fastest assignment exceeds the budget.
///
/// # Errors
///
/// Propagates [`LatencyError`].
pub fn search_under_latency(
    network: &Network,
    array: &ArrayConfig,
    latency_budget: u64,
) -> Result<Option<NosResult>, LatencyError> {
    let frontier = pareto_frontier(network, array)?;
    let best = frontier
        .into_iter()
        .filter(|p| p.latency <= latency_budget)
        .max_by_key(|p| p.params);
    match best {
        None => Ok(None),
        Some(point) => Ok(Some(materialize(network, array, point)?)),
    }
}

/// Minimizes latency subject to `params ≥ floor` (a capacity floor standing
/// in for an accuracy requirement). Returns `None` if no assignment can
/// reach the floor.
///
/// # Errors
///
/// Propagates [`LatencyError`].
pub fn search_under_params(
    network: &Network,
    array: &ArrayConfig,
    params_floor: u64,
) -> Result<Option<NosResult>, LatencyError> {
    let frontier = pareto_frontier(network, array)?;
    let best = frontier
        .into_iter()
        .filter(|p| p.params >= params_floor)
        .min_by_key(|p| p.latency);
    match best {
        None => Ok(None),
        Some(point) => Ok(Some(materialize(network, array, point)?)),
    }
}

/// The frontier points corresponding to the paper's fixed variants, for
/// comparison in reports: `(variant, latency, params)`.
///
/// # Errors
///
/// Propagates [`LatencyError`].
pub fn fixed_variant_points(
    network: &Network,
    array: &ArrayConfig,
) -> Result<Vec<(Variant, u64, u64)>, LatencyError> {
    let model = LatencyModel::new(*array);
    let mut rows = Vec::new();
    for variant in Variant::ALL {
        let net = crate::variant::apply_variant(network, variant, array)?;
        let report = fuseconv_latency::estimate_network(&model, &net)?;
        rows.push((variant, report.total_cycles, net.params()));
    }
    Ok(rows)
}

#[cfg(test)]
mod tests {
    use super::*;
    use fuseconv_latency::estimate_network;
    use fuseconv_models::zoo;

    fn array64() -> ArrayConfig {
        ArrayConfig::square(64).unwrap().with_broadcast(true)
    }

    #[test]
    fn frontier_is_sorted_and_nondominated() {
        let frontier = pareto_frontier(&zoo::mobilenet_v1(), &array64()).unwrap();
        assert!(frontier.len() >= 3);
        for pair in frontier.windows(2) {
            assert!(pair[0].latency < pair[1].latency);
            assert!(pair[0].params < pair[1].params);
        }
    }

    #[test]
    fn frontier_extremes_are_all_half_and_all_full() {
        let net = zoo::mobilenet_v1();
        let frontier = pareto_frontier(&net, &array64()).unwrap();
        let fastest = frontier.first().unwrap();
        assert!(fastest.assignment.iter().all(|&c| c == OpChoice::FuseHalf));
        let richest = frontier.last().unwrap();
        assert!(richest.assignment.iter().all(|&c| c == OpChoice::FuseFull));
    }

    #[test]
    fn frontier_points_materialize_consistently() {
        // A middle frontier point's predicted latency/params must match the
        // materialized network exactly.
        let net = zoo::mobilenet_v3_small();
        let array = array64();
        let frontier = pareto_frontier(&net, &array).unwrap();
        let mid = frontier[frontier.len() / 2].clone();
        let result = materialize(&net, &array, mid.clone()).unwrap();
        assert_eq!(result.network.params(), mid.params);
        let model = LatencyModel::new(array);
        let measured = estimate_network(&model, &result.network).unwrap();
        assert_eq!(measured.total_cycles, mid.latency);
    }

    #[test]
    fn latency_budget_search_respects_budget() {
        let net = zoo::mobilenet_v1();
        let array = array64();
        let model = LatencyModel::new(array);
        let base = estimate_network(&model, &net).unwrap().total_cycles;
        // Budget: 4x faster than baseline.
        let budget = base / 4;
        let found = search_under_latency(&net, &array, budget)
            .unwrap()
            .expect("budget reachable");
        assert!(found.point.latency <= budget);
        assert!(found.speedup >= 4.0);
        // Capacity-maximal under the budget: beats the all-half extreme.
        let frontier = pareto_frontier(&net, &array).unwrap();
        assert!(found.point.params >= frontier.first().unwrap().params);
    }

    #[test]
    fn impossible_budgets_return_none() {
        let net = zoo::mobilenet_v3_small();
        let array = array64();
        assert!(search_under_latency(&net, &array, 1).unwrap().is_none());
        assert!(search_under_params(&net, &array, u64::MAX)
            .unwrap()
            .is_none());
    }

    #[test]
    fn params_floor_search_respects_floor() {
        let net = zoo::mobilenet_v2();
        let array = array64();
        // Floor: keep at least the baseline's parameter count.
        let floor = net.params();
        let found = search_under_params(&net, &array, floor)
            .unwrap()
            .expect("all-full exceeds baseline params");
        assert!(found.point.params >= floor);
        // And it should still be much faster than the baseline.
        assert!(found.speedup > 2.0, "speedup {:.2}", found.speedup);
    }

    #[test]
    fn nos_beats_fixed_variants_at_their_own_params() {
        // The searched assignment at the Full variant's parameter count
        // must be at least as fast as the Full variant itself (the fixed
        // variants are feasible points of the search space).
        let net = zoo::mnasnet_b1();
        let array = array64();
        let fixed = fixed_variant_points(&net, &array).unwrap();
        let (_, full_latency, full_params) = *fixed
            .iter()
            .find(|(v, _, _)| *v == Variant::FuseFull)
            .unwrap();
        let found = search_under_params(&net, &array, full_params)
            .unwrap()
            .expect("reachable");
        assert!(
            found.point.latency <= full_latency,
            "NOS {} vs fixed Full {}",
            found.point.latency,
            full_latency
        );
    }

    #[test]
    fn dp_frontier_equals_brute_force_on_small_network() {
        // Exhaustively enumerate all 3^5 assignments of a 5-block network
        // and check the DP frontier is exactly the nondominated set.
        let net = fuseconv_models::topology::parse(
            "brute",
            "input, 64, 3
             conv,  8, 3, 2
             sep,   8, 16, 3, 1
             sep,   48, 24, 3, 2
             sep,   72, 32, 5, 1, se4
             sep,   96, 40, 3, 2
             sep,   120, 48, 5, 1
             fc,    10",
        )
        .unwrap();
        let array = array64();
        let model = LatencyModel::new(array);
        let replaceable = net.replaceable_indices();
        assert_eq!(replaceable.len(), 5);

        // Brute force: evaluate every assignment end to end.
        let mut points: Vec<(u64, u64)> = Vec::new();
        for code in 0..3usize.pow(5) {
            let mut c = code;
            let mut full = Vec::new();
            let mut half = Vec::new();
            for &i in &replaceable {
                match c % 3 {
                    0 => {}
                    1 => full.push(i),
                    _ => half.push(i),
                }
                c /= 3;
            }
            let mut n = net.clone();
            if !full.is_empty() {
                n = n.transform_selected(FuSeVariant::Full, &full).unwrap();
            }
            if !half.is_empty() {
                n = n.transform_selected(FuSeVariant::Half, &half).unwrap();
            }
            let lat = fuseconv_latency::estimate_network(&model, &n).unwrap();
            points.push((lat.total_cycles, n.params()));
        }
        // Nondominated subset of the brute-force cloud.
        points.sort_by(|a, b| a.0.cmp(&b.0).then(b.1.cmp(&a.1)));
        let mut brute: Vec<(u64, u64)> = Vec::new();
        for p in points {
            match brute.last() {
                Some(&(last_l, last_p)) if p.1 <= last_p || p.0 == last_l => {}
                _ => brute.push(p),
            }
        }

        let dp: Vec<(u64, u64)> = pareto_frontier(&net, &array)
            .unwrap()
            .into_iter()
            .map(|p| (p.latency, p.params))
            .collect();
        assert_eq!(dp, brute);
    }

    #[test]
    fn mixed_assignments_appear_on_the_frontier() {
        // The frontier should contain genuinely mixed assignments, not just
        // the three uniform ones.
        let frontier = pareto_frontier(&zoo::mobilenet_v3_large(), &array64()).unwrap();
        let mixed = frontier.iter().any(|p| {
            let mut kinds = p.assignment.clone();
            kinds.dedup();
            kinds.len() > 1
        });
        assert!(mixed, "frontier has only uniform assignments");
    }
}

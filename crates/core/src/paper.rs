//! The paper's published Table I numbers, kept as data so every report can
//! print paper-vs-measured side by side.

use crate::variant::Variant;

/// One published row of Table I.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PaperRow {
    /// Network name (matching `fuseconv_models::zoo` names).
    pub network: &'static str,
    /// Variant.
    pub variant: Variant,
    /// ImageNet top-1 accuracy (%).
    pub imagenet_accuracy: f64,
    /// MACs in millions.
    pub macs_millions: f64,
    /// Parameters in millions.
    pub params_millions: f64,
    /// Speed-up over the baseline on a 64×64 array.
    pub speedup: f64,
}

/// Every row of the paper's Table I.
pub const TABLE1: [PaperRow; 25] = [
    row("MobileNet-V1", Variant::Baseline, 70.60, 589.0, 4.23, 1.0),
    row("MobileNet-V1", Variant::FuseFull, 72.86, 1122.0, 7.36, 4.1),
    row("MobileNet-V1", Variant::FuseHalf, 72.00, 573.0, 4.20, 6.76),
    row("MobileNet-V1", Variant::FuseFull50, 72.42, 764.0, 4.35, 2.2),
    row(
        "MobileNet-V1",
        Variant::FuseHalf50,
        71.77,
        578.0,
        4.22,
        2.36,
    ),
    row("MobileNet-V2", Variant::Baseline, 72.00, 315.0, 3.50, 1.0),
    row("MobileNet-V2", Variant::FuseFull, 72.49, 430.0, 4.46, 5.1),
    row("MobileNet-V2", Variant::FuseHalf, 70.80, 300.0, 3.46, 7.23),
    row("MobileNet-V2", Variant::FuseFull50, 72.11, 361.0, 3.61, 2.0),
    row("MobileNet-V2", Variant::FuseHalf50, 71.98, 305.0, 3.49, 2.1),
    row("MnasNet-B1", Variant::Baseline, 73.50, 325.0, 4.38, 1.0),
    row("MnasNet-B1", Variant::FuseFull, 73.16, 440.0, 5.66, 5.06),
    row("MnasNet-B1", Variant::FuseHalf, 71.48, 305.0, 4.25, 7.15),
    row("MnasNet-B1", Variant::FuseFull50, 73.52, 361.0, 4.47, 1.88),
    row("MnasNet-B1", Variant::FuseHalf50, 72.61, 312.0, 4.35, 1.97),
    row(
        "MobileNet-V3-Small",
        Variant::Baseline,
        67.40,
        66.0,
        2.93,
        1.0,
    ),
    row(
        "MobileNet-V3-Small",
        Variant::FuseFull,
        67.17,
        84.0,
        4.44,
        3.02,
    ),
    row(
        "MobileNet-V3-Small",
        Variant::FuseHalf,
        64.55,
        61.0,
        2.89,
        4.16,
    ),
    row(
        "MobileNet-V3-Small",
        Variant::FuseFull50,
        67.91,
        73.0,
        3.18,
        1.6,
    ),
    row(
        "MobileNet-V3-Small",
        Variant::FuseHalf50,
        66.90,
        63.0,
        2.92,
        1.68,
    ),
    row(
        "MobileNet-V3-Large",
        Variant::Baseline,
        75.20,
        238.0,
        5.47,
        1.0,
    ),
    row(
        "MobileNet-V3-Large",
        Variant::FuseFull,
        74.40,
        322.0,
        10.57,
        3.61,
    ),
    row(
        "MobileNet-V3-Large",
        Variant::FuseHalf,
        73.02,
        225.0,
        5.40,
        5.45,
    ),
    row(
        "MobileNet-V3-Large",
        Variant::FuseFull50,
        74.50,
        264.0,
        5.57,
        1.76,
    ),
    row(
        "MobileNet-V3-Large",
        Variant::FuseHalf50,
        73.80,
        230.0,
        5.46,
        1.83,
    ),
];

const fn row(
    network: &'static str,
    variant: Variant,
    imagenet_accuracy: f64,
    macs_millions: f64,
    params_millions: f64,
    speedup: f64,
) -> PaperRow {
    PaperRow {
        network,
        variant,
        imagenet_accuracy,
        macs_millions,
        params_millions,
        speedup,
    }
}

/// Looks up a published row.
pub fn lookup(network: &str, variant: Variant) -> Option<&'static PaperRow> {
    TABLE1
        .iter()
        .find(|r| r.network == network && r.variant == variant)
}

/// The paper's hardware overhead measurements at 32×32 (§V-B-5), in
/// percent: `(area, power)`.
pub const HW_OVERHEAD_32X32: (f64, f64) = (4.35, 2.25);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_covers_five_networks_five_variants() {
        assert_eq!(TABLE1.len(), 25);
        for v in Variant::ALL {
            assert_eq!(TABLE1.iter().filter(|r| r.variant == v).count(), 5);
        }
    }

    #[test]
    fn lookup_finds_rows() {
        let r = lookup("MobileNet-V2", Variant::FuseHalf).unwrap();
        assert!((r.speedup - 7.23).abs() < 1e-9);
        assert!(lookup("MobileNet-V2", Variant::Baseline).is_some());
        assert!(lookup("nonexistent", Variant::Baseline).is_none());
    }

    #[test]
    fn baselines_have_unit_speedup() {
        for r in TABLE1.iter().filter(|r| r.variant == Variant::Baseline) {
            assert_eq!(r.speedup, 1.0);
        }
    }

    #[test]
    fn half_speedups_exceed_full_speedups() {
        for net in [
            "MobileNet-V1",
            "MobileNet-V2",
            "MnasNet-B1",
            "MobileNet-V3-Small",
            "MobileNet-V3-Large",
        ] {
            let full = lookup(net, Variant::FuseFull).unwrap().speedup;
            let half = lookup(net, Variant::FuseHalf).unwrap().speedup;
            assert!(half > full, "{net}");
        }
    }
}

//! CSV report emission, SCALE-Sim style.
//!
//! SCALE-Sim's user-facing artifacts are CSV reports; this module emits the
//! same for every experiment so results can be plotted or diffed without
//! running Rust. [`write_all`] regenerates every experiment and writes one
//! file per artifact.

use crate::experiments::{
    AccuracyRow, BreakdownRow, EnergyRow, LayerwiseRow, ScalingRow, Table1Row,
};
use fuseconv_hwcost::Overhead;
use fuseconv_systolic::ArrayConfig;
use std::fmt::Write as _;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// Formats Table I rows (E1/E2/E4) as CSV.
pub fn table1_csv(rows: &[Table1Row]) -> String {
    let mut out =
        String::from("network,variant,macs_millions,params_millions,latency_cycles,speedup\n");
    for r in rows {
        let _ = writeln!(
            out,
            "{},{},{:.3},{:.4},{},{:.4}",
            r.network, r.variant, r.macs_millions, r.params_millions, r.latency_cycles, r.speedup
        );
    }
    out
}

/// Formats Fig. 8(b) rows (E5) as CSV.
pub fn layerwise_csv(rows: &[LayerwiseRow]) -> String {
    let mut out = String::from("block,transformed,baseline_cycles,fused_cycles,speedup\n");
    for r in rows {
        let _ = writeln!(
            out,
            "{},{},{},{},{:.4}",
            r.block, r.transformed, r.baseline_cycles, r.fused_cycles, r.speedup
        );
    }
    out
}

/// Formats Fig. 8(c) rows (E6) as CSV (long format: one line per class).
pub fn breakdown_csv(rows: &[BreakdownRow]) -> String {
    let mut out = String::from("network,variant,op_class,latency_fraction\n");
    for r in rows {
        for (class, fraction) in &r.fractions {
            let _ = writeln!(out, "{},{},{class},{fraction:.6}", r.network, r.variant);
        }
    }
    out
}

/// Formats Fig. 8(d) rows (E7) as CSV.
pub fn scaling_csv(rows: &[ScalingRow]) -> String {
    let mut out = String::from("network,array_size,speedup\n");
    for r in rows {
        let _ = writeln!(out, "{},{},{:.4}", r.network, r.array_size, r.speedup);
    }
    out
}

/// Formats §V-B-5 rows (E8) as CSV.
pub fn overhead_csv(rows: &[(usize, Overhead)]) -> String {
    let mut out = String::from("array_size,area_overhead_pct,power_overhead_pct\n");
    for (s, o) in rows {
        let _ = writeln!(out, "{s},{:.4},{:.4}", o.area_pct, o.power_pct);
    }
    out
}

/// Formats energy-study rows as CSV.
pub fn energy_csv(rows: &[EnergyRow]) -> String {
    let mut out = String::from("network,variant,cycles,power_mw,energy_uj\n");
    for r in rows {
        let _ = writeln!(
            out,
            "{},{},{},{:.3},{:.3}",
            r.network, r.variant, r.cycles, r.power_mw, r.energy_uj
        );
    }
    out
}

/// Formats accuracy-study rows (E3) as CSV.
pub fn accuracy_csv(rows: &[AccuracyRow]) -> String {
    let mut out = String::from("variant,accuracy,params\n");
    for r in rows {
        let _ = writeln!(out, "{},{:.4},{}", r.variant, r.accuracy, r.params);
    }
    out
}

/// Regenerates every latency-side experiment on `array` and writes one CSV
/// per artifact into `dir` (created if missing). Returns the written
/// paths. The accuracy study is excluded (it trains networks and is
/// seconds-long; call [`accuracy_csv`] explicitly when needed).
///
/// # Errors
///
/// Returns [`io::Error`] on filesystem failures; experiment errors are
/// converted to [`io::Error`] with kind `Other`.
pub fn write_all(dir: &Path, array: &ArrayConfig) -> io::Result<Vec<PathBuf>> {
    use crate::experiments as exp;
    let to_io = |e: fuseconv_latency::LatencyError| io::Error::other(e.to_string());

    fs::create_dir_all(dir)?;
    let mut written = Vec::new();
    let mut emit = |name: &str, contents: String| -> io::Result<()> {
        let path = dir.join(name);
        fs::write(&path, contents)?;
        written.push(path);
        Ok(())
    };

    emit(
        "table1.csv",
        table1_csv(&exp::table1(array).map_err(to_io)?),
    )?;
    emit(
        "fig8b_layerwise.csv",
        layerwise_csv(
            &exp::layerwise(
                &fuseconv_models::zoo::mobilenet_v2(),
                crate::variant::Variant::FuseFull,
                array,
            )
            .map_err(to_io)?,
        ),
    )?;
    emit(
        "fig8c_breakdown.csv",
        breakdown_csv(&exp::operator_breakdown(array).map_err(to_io)?),
    )?;
    emit(
        "fig8d_scaling.csv",
        scaling_csv(&exp::array_scaling(&[8, 16, 32, 64, 128]).map_err(to_io)?),
    )?;
    emit(
        "hw_overhead.csv",
        overhead_csv(&exp::hw_overhead(&[8, 16, 32, 64, 128, 256])),
    )?;
    emit(
        "energy.csv",
        energy_csv(&exp::energy_study(array.rows(), 700.0).map_err(to_io)?),
    )?;
    Ok(written)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments;
    use crate::variant::Variant;

    fn array64() -> ArrayConfig {
        ArrayConfig::square(64).unwrap().with_broadcast(true)
    }

    #[test]
    fn table1_csv_has_header_and_25_rows() {
        let rows = experiments::table1(&array64()).unwrap();
        let csv = table1_csv(&rows);
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 26);
        assert!(lines[0].starts_with("network,variant,"));
        // Every data line parses back to 6 fields with numeric tail.
        for line in &lines[1..] {
            let fields: Vec<&str> = line.split(',').collect();
            assert_eq!(fields.len(), 6);
            assert!(fields[5].parse::<f64>().is_ok());
        }
    }

    #[test]
    fn breakdown_csv_fractions_sum_per_network() {
        let rows = experiments::operator_breakdown(&array64()).unwrap();
        let csv = breakdown_csv(&rows);
        // Sum the fractions of one (network, variant) group.
        let sum: f64 = csv
            .lines()
            .skip(1)
            .filter(|l| l.starts_with("MobileNet-V1,baseline"))
            .map(|l| l.rsplit(',').next().unwrap().parse::<f64>().unwrap())
            .sum();
        assert!((sum - 1.0).abs() < 1e-3);
    }

    #[test]
    fn write_all_creates_files() {
        let dir = std::env::temp_dir().join("fuseconv_report_test");
        let _ = std::fs::remove_dir_all(&dir);
        let written = write_all(&dir, &array64()).unwrap();
        assert_eq!(written.len(), 6);
        for path in &written {
            let text = std::fs::read_to_string(path).unwrap();
            assert!(text.lines().count() > 1, "{}", path.display());
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn accuracy_and_scaling_csv_shapes() {
        let scaling = experiments::array_scaling(&[16]).unwrap();
        let csv = scaling_csv(&scaling);
        assert_eq!(csv.lines().count(), 6); // header + 5 networks
        let acc = vec![experiments::AccuracyRow {
            variant: Variant::Baseline,
            accuracy: 0.875,
            params: 1234,
        }];
        let csv = accuracy_csv(&acc);
        assert!(csv.contains("baseline,0.8750,1234"));
    }
}

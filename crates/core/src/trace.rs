//! Trace-capture drivers: turn networks and layers into trace event
//! streams.
//!
//! Two capture paths, matched to two scales of question:
//!
//! * **Whole network** — [`network_fold_plan`] lowers every operator to
//!   its analytic fold plan ([`LatencyModel::fold_plan`]) and tags each
//!   fold with its operator index, ready for
//!   [`fuseconv_trace::replay`]. This produces fold/phase/busy events for
//!   millions of cycles in milliseconds, but no per-PE activity.
//! * **Single layer** — [`simulate_op_traced`] runs the cycle-exact
//!   systolic simulator on synthetic operands, emitting every PE fire and
//!   SRAM access. This is what the per-PE heatmaps and SCALE-Sim traces
//!   are made of.
//!
//! Both paths agree on cycle counts under serial fold accounting; the
//! `trace_cross_check` integration test pins that equality.

use crate::variant::{apply_variant, Variant};
use fuseconv_latency::{Dataflow, LatencyError, LatencyModel};
use fuseconv_models::Network;
use fuseconv_nn::ops::{Axis1d, Op};
use fuseconv_systolic::conv1d::ChannelLines;
use fuseconv_systolic::{conv1d, gemm, is_gemm, ws_gemm, ConfigError, SimResult};
use fuseconv_tensor::rng::Rng;
use fuseconv_tensor::Tensor;
use fuseconv_trace::{FoldSpec, TraceSink};
use std::fmt;

/// Error from trace capture.
#[derive(Debug)]
pub enum TraceError {
    /// The analytic model rejected an operator.
    Latency(LatencyError),
    /// The systolic simulator rejected its configuration or operands.
    Config(ConfigError),
    /// `--layer` index past the end of the network's operator list.
    LayerOutOfRange {
        /// The requested operator index.
        layer: usize,
        /// Number of operators in the network.
        len: usize,
    },
}

impl fmt::Display for TraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceError::Latency(e) => write!(f, "{e}"),
            TraceError::Config(e) => write!(f, "{e}"),
            TraceError::LayerOutOfRange { layer, len } => {
                write!(f, "layer {layer} out of range; network has {len} operators")
            }
        }
    }
}

impl std::error::Error for TraceError {}

impl From<LatencyError> for TraceError {
    fn from(e: LatencyError) -> Self {
        TraceError::Latency(e)
    }
}

impl From<ConfigError> for TraceError {
    fn from(e: ConfigError) -> Self {
        TraceError::Config(e)
    }
}

/// A whole-network fold plan plus human-readable labels for its tags.
#[derive(Debug, Clone)]
pub struct NetworkPlan {
    /// Every fold of every operator, in execution order. Each fold's
    /// `tag` is the operator's index into [`Network::ops`].
    pub folds: Vec<FoldSpec>,
    /// `(tag, label)` pairs naming each traced operator
    /// (`"block/op"`), for sinks that display provenance.
    pub labels: Vec<(u64, String)>,
}

impl NetworkPlan {
    /// Total cycles of the plan under serial fold accounting.
    pub fn total_cycles(&self) -> u64 {
        self.folds.iter().map(FoldSpec::cycles).sum()
    }
}

/// Lowers a network (or one operator of it) to a tagged fold plan.
///
/// With `layer: Some(i)` only the `i`-th operator of [`Network::ops`] is
/// planned (still tagged `i`). Feed the result to
/// [`fuseconv_trace::replay`]; under the model's serial overlap mode the
/// replayed cycle count equals the summed
/// [`LatencyModel::cycles`] of the planned operators.
///
/// # Errors
///
/// [`TraceError::LayerOutOfRange`] for a bad `layer`, otherwise whatever
/// [`LatencyModel::fold_plan`] reports.
pub fn network_fold_plan(
    model: &LatencyModel,
    network: &Network,
    layer: Option<usize>,
) -> Result<NetworkPlan, TraceError> {
    let _span = fuseconv_telemetry::span("trace.network_fold_plan");
    let ops = network.ops();
    let selected: Vec<usize> = match layer {
        Some(i) if i >= ops.len() => {
            return Err(TraceError::LayerOutOfRange {
                layer: i,
                len: ops.len(),
            })
        }
        Some(i) => vec![i],
        None => (0..ops.len()).collect(),
    };
    let mut plan = NetworkPlan {
        folds: Vec::new(),
        labels: Vec::new(),
    };
    for i in selected {
        let named = &ops[i];
        let tag = i as u64;
        plan.labels
            .push((tag, format!("{}/{}", named.block_name, named.op)));
        let mut folds = model.fold_plan(&named.op)?;
        fuseconv_trace::tag_plan(&mut folds, tag);
        plan.folds.extend(folds);
    }
    Ok(plan)
}

/// A cycle-exact traced simulation of one operator.
#[derive(Debug)]
pub struct TracedSim {
    /// The simulation result (output tensor, cycles, utilization).
    pub sim: SimResult,
    /// How many identical repetitions of the simulated workload the full
    /// operator comprises. `1` for everything except depthwise, where one
    /// representative channel is simulated and the operator runs `c`
    /// channel-identical folding sequences (§III-B); the operator's total
    /// is `sim.cycles() * repeats`.
    pub repeats: u64,
}

impl TracedSim {
    /// Total operator cycles: simulated cycles times [`Self::repeats`].
    pub fn total_cycles(&self) -> u64 {
        self.sim.cycles() * self.repeats
    }
}

fn synth(rng: &mut Rng, dims: &[usize]) -> Tensor {
    Tensor::from_fn(dims, |_| rng.uniform(-0.5, 0.5)).expect("nonzero dims")
}

fn simulate_gemm(
    model: &LatencyModel,
    m: usize,
    k: usize,
    n: usize,
    sink: &mut dyn TraceSink,
) -> Result<SimResult, TraceError> {
    let mut rng = Rng::seed_from_u64(0x7472_6163);
    let a = synth(&mut rng, &[m, k]);
    let b = synth(&mut rng, &[k, n]);
    let sim = match model.dataflow() {
        Dataflow::OutputStationary => gemm::simulate_traced(model.array(), &a, &b, sink),
        Dataflow::WeightStationary => ws_gemm::simulate_traced(model.array(), &a, &b, sink),
        Dataflow::InputStationary => is_gemm::simulate_traced(model.array(), &a, &b, sink),
    }?;
    Ok(sim)
}

/// Runs the cycle-exact systolic simulator for one operator on synthetic
/// operands, narrating every cycle to `sink`.
///
/// The operator is lowered exactly as the latency model lowers it
/// (im2col GEMM under the model's dataflow; packed row-broadcast for FuSe
/// banks), at batch 1. Depthwise convs simulate one representative
/// channel — all `c` channels fold identically — and report
/// `repeats = c`. FuSe lines are simulated at their effective (padded)
/// input length `l_out + k - 1`, matching the analytic model's schedule.
///
/// Under [`FoldOverlap::Serial`](fuseconv_latency::FoldOverlap::Serial)
/// the returned [`TracedSim::total_cycles`] equals
/// [`LatencyModel::cycles`] for the same operator.
///
/// # Errors
///
/// [`TraceError::Latency`] for operators the model rejects (degenerate
/// shapes, FuSe without broadcast), [`TraceError::Config`] from the
/// simulator itself.
pub fn simulate_op_traced(
    model: &LatencyModel,
    op: &Op,
    sink: &mut dyn TraceSink,
) -> Result<TracedSim, TraceError> {
    let _span = fuseconv_telemetry::span("trace.simulate_op");
    // Let the analytic model vet the operator first so both paths reject
    // exactly the same inputs.
    model.cycles(op)?;
    let (oh, ow, _) = op.output_shape();
    match *op {
        Op::Conv2d { in_c, out_c, k, .. } => {
            let sim = simulate_gemm(model, oh * ow, k * k * in_c, out_c, sink)?;
            Ok(TracedSim { sim, repeats: 1 })
        }
        Op::Depthwise { c, k, .. } => {
            let sim = simulate_gemm(model, oh * ow, k * k, 1, sink)?;
            Ok(TracedSim {
                sim,
                repeats: c as u64,
            })
        }
        Op::Pointwise { in_c, out_c, .. } => {
            let sim = simulate_gemm(model, oh * ow, in_c, out_c, sink)?;
            Ok(TracedSim { sim, repeats: 1 })
        }
        Op::FuSe1d { c, k, axis, .. } => {
            let (lines, l_out) = match axis {
                Axis1d::Row => (oh, ow),
                Axis1d::Col => (ow, oh),
            };
            let l_in = l_out + k - 1;
            let mut rng = Rng::seed_from_u64(0x66757365);
            let work: Vec<ChannelLines> = (0..c)
                .map(|_| ChannelLines {
                    kernel: (0..k).map(|_| rng.uniform(-0.5, 0.5)).collect(),
                    lines: (0..lines)
                        .map(|_| (0..l_in).map(|_| rng.uniform(-0.5, 0.5)).collect())
                        .collect(),
                })
                .collect();
            let sim = conv1d::simulate_packed_traced(model.array(), &work, sink)?;
            Ok(TracedSim { sim, repeats: 1 })
        }
        Op::Fc {
            in_features,
            out_features,
        } => {
            let sim = simulate_gemm(model, 1, in_features, out_features, sink)?;
            Ok(TracedSim { sim, repeats: 1 })
        }
    }
}

/// Applies a Table-I variant and plans the result — the common
/// "trace this network as published" entry point.
///
/// # Errors
///
/// Propagates variant-application and planning errors.
pub fn plan_variant(
    model: &LatencyModel,
    network: &Network,
    variant: Variant,
    layer: Option<usize>,
) -> Result<NetworkPlan, TraceError> {
    let transformed = apply_variant(network, variant, model.array())?;
    network_fold_plan(model, &transformed, layer)
}

#[cfg(test)]
mod tests {
    use super::*;
    use fuseconv_models::zoo;
    use fuseconv_systolic::ArrayConfig;
    use fuseconv_trace::{replay, NullSink, UtilizationSink};

    fn model(side: usize) -> LatencyModel {
        LatencyModel::new(ArrayConfig::square(side).unwrap().with_broadcast(true))
    }

    #[test]
    fn network_plan_replays_to_model_cycles() {
        let model = model(16);
        let net = zoo::mobilenet_v1().transform_all(fuseconv_nn::FuSeVariant::Half);
        let plan = network_fold_plan(&model, &net, None).unwrap();
        let expected: u64 = net.ops().iter().map(|n| model.cycles(&n.op).unwrap()).sum();
        assert_eq!(plan.total_cycles(), expected);
        assert_eq!(replay(&plan.folds, &mut NullSink), expected);
        assert_eq!(plan.labels.len(), net.ops().len());
    }

    #[test]
    fn single_layer_plan_selects_and_tags() {
        let model = model(16);
        let net = zoo::mobilenet_v2();
        let plan = network_fold_plan(&model, &net, Some(3)).unwrap();
        assert!(plan.folds.iter().all(|f| f.tag == 3));
        assert_eq!(plan.labels.len(), 1);
        assert_eq!(plan.total_cycles(), model.cycles(&net.ops()[3].op).unwrap());
        assert!(matches!(
            network_fold_plan(&model, &net, Some(9999)),
            Err(TraceError::LayerOutOfRange { .. })
        ));
    }

    #[test]
    fn simulated_layer_matches_model_cycles() {
        let model = model(8);
        for op in [
            Op::conv2d(6, 6, 3, 8, 3, 1, 1),
            Op::depthwise(6, 6, 4, 3, 1, 1),
            Op::pointwise(5, 5, 6, 10),
            Op::fuse1d(8, 8, 3, 3, 1, 1, Axis1d::Row),
            Op::fc(20, 12),
        ] {
            let mut sink = UtilizationSink::new(8, 8);
            let traced = simulate_op_traced(&model, &op, &mut sink).unwrap();
            assert_eq!(traced.total_cycles(), model.cycles(&op).unwrap(), "{op}");
            assert_eq!(sink.cycles(), traced.sim.cycles(), "{op}");
        }
    }

    #[test]
    fn depthwise_sim_is_single_column_but_fuse_fills_rows() {
        let model = model(8);
        let mut dw_sink = UtilizationSink::new(8, 8);
        simulate_op_traced(&model, &Op::depthwise(8, 8, 4, 3, 1, 1), &mut dw_sink).unwrap();
        assert_eq!(dw_sink.active_cols(), 1);

        let mut fuse_sink = UtilizationSink::new(8, 8);
        simulate_op_traced(
            &model,
            &Op::fuse1d(8, 8, 4, 3, 1, 1, Axis1d::Row),
            &mut fuse_sink,
        )
        .unwrap();
        assert_eq!(fuse_sink.active_rows(), 8);
    }

    #[test]
    fn plan_variant_transforms_before_planning() {
        let model = model(16);
        let net = zoo::mobilenet_v2();
        let base = plan_variant(&model, &net, Variant::Baseline, None).unwrap();
        let half = plan_variant(&model, &net, Variant::FuseHalf, None).unwrap();
        assert!(half.total_cycles() < base.total_cycles());
    }
}

//! The five Table I variants and their application to a network.

use fuseconv_latency::{estimate_network, LatencyError, LatencyModel};
use fuseconv_models::Network;
use fuseconv_nn::FuSeVariant;
use fuseconv_systolic::ArrayConfig;
use std::fmt;

/// One row-family of Table I.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Variant {
    /// The unmodified baseline network.
    Baseline,
    /// All depthwise layers replaced by FuSe-Full (`D = 1`).
    FuseFull,
    /// All depthwise layers replaced by FuSe-Half (`D = 2`).
    FuseHalf,
    /// The 50 % of layers with the largest latency benefit replaced by
    /// FuSe-Full.
    FuseFull50,
    /// The 50 % of layers with the largest latency benefit replaced by
    /// FuSe-Half.
    FuseHalf50,
}

impl Variant {
    /// All five variants in Table I order.
    pub const ALL: [Variant; 5] = [
        Variant::Baseline,
        Variant::FuseFull,
        Variant::FuseHalf,
        Variant::FuseFull50,
        Variant::FuseHalf50,
    ];

    /// The underlying FuSe variant, if any.
    pub fn fuse_variant(&self) -> Option<FuSeVariant> {
        match self {
            Variant::Baseline => None,
            Variant::FuseFull | Variant::FuseFull50 => Some(FuSeVariant::Full),
            Variant::FuseHalf | Variant::FuseHalf50 => Some(FuSeVariant::Half),
        }
    }

    /// Whether only half the replaceable layers are transformed.
    pub fn is_partial(&self) -> bool {
        matches!(self, Variant::FuseFull50 | Variant::FuseHalf50)
    }
}

impl fmt::Display for Variant {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Variant::Baseline => "baseline",
            Variant::FuseFull => "FuSe-Full",
            Variant::FuseHalf => "FuSe-Half",
            Variant::FuseFull50 => "FuSe-Full-50%",
            Variant::FuseHalf50 => "FuSe-Half-50%",
        };
        f.write_str(s)
    }
}

/// Applies a variant to a baseline network.
///
/// For the 50 % variants, the replaced blocks are chosen **for maximum
/// latency benefit** (§V-A-1): every replaceable block's baseline-vs-fused
/// latency delta is evaluated on `array`, and the half with the largest
/// savings is transformed.
///
/// # Errors
///
/// Propagates [`LatencyError`] from the benefit evaluation (e.g. a FuSe
/// variant on an array without broadcast links).
pub fn apply_variant(
    network: &Network,
    variant: Variant,
    array: &ArrayConfig,
) -> Result<Network, LatencyError> {
    let Some(fuse) = variant.fuse_variant() else {
        return Ok(network.clone());
    };
    if !variant.is_partial() {
        return Ok(network.transform_all(fuse));
    }
    let model = LatencyModel::new(*array);
    let replaceable = network.replaceable_indices();
    let base = estimate_network(&model, network)?;
    let base_blocks = base.by_block();

    // Benefit of fusing each block alone.
    let mut benefits: Vec<(usize, u64)> = Vec::with_capacity(replaceable.len());
    for &i in &replaceable {
        let fused = network
            .transform_selected(fuse, &[i])
            .expect("index is replaceable");
        let report = estimate_network(&model, &fused)?;
        let fused_block = report
            .by_block()
            .into_iter()
            .find(|b| b.index == i)
            .expect("block exists");
        let base_block = base_blocks
            .iter()
            .find(|b| b.index == i)
            .expect("block exists");
        benefits.push((i, base_block.cycles.saturating_sub(fused_block.cycles)));
    }
    benefits.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
    let keep = replaceable.len().div_ceil(2);
    let mut chosen: Vec<usize> = benefits.into_iter().take(keep).map(|(i, _)| i).collect();
    chosen.sort_unstable();
    Ok(network
        .transform_selected(fuse, &chosen)
        .expect("chosen indices are replaceable"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use fuseconv_models::zoo;

    fn array64() -> ArrayConfig {
        ArrayConfig::square(64).unwrap().with_broadcast(true)
    }

    #[test]
    fn baseline_is_identity() {
        let net = zoo::mobilenet_v1();
        let same = apply_variant(&net, Variant::Baseline, &array64()).unwrap();
        assert_eq!(net, same);
    }

    #[test]
    fn full_and_half_transform_everything() {
        let net = zoo::mobilenet_v2();
        for v in [Variant::FuseFull, Variant::FuseHalf] {
            let t = apply_variant(&net, v, &array64()).unwrap();
            assert!(t.replaceable_indices().is_empty());
        }
    }

    #[test]
    fn partial_variants_transform_half_the_blocks() {
        let net = zoo::mobilenet_v1(); // 13 replaceable blocks
        let t = apply_variant(&net, Variant::FuseHalf50, &array64()).unwrap();
        // ceil(13/2) = 7 replaced, 6 remain.
        assert_eq!(t.replaceable_indices().len(), 6);
        assert!(t.variant_label().contains("7of13"));
    }

    #[test]
    fn partial_selection_maximizes_latency_benefit() {
        // The chosen half must yield a speedup at least as good as the
        // complementary half.
        let net = zoo::mobilenet_v1();
        let array = array64();
        let model = LatencyModel::new(array);
        let base = estimate_network(&model, &net).unwrap();

        let best = apply_variant(&net, Variant::FuseFull50, &array).unwrap();
        let best_lat = estimate_network(&model, &best).unwrap();

        // Complementary selection: the blocks NOT chosen.
        let replaceable = net.replaceable_indices();
        let still_replaceable = best.replaceable_indices();
        let complement: Vec<usize> = replaceable
            .iter()
            .copied()
            .filter(|i| still_replaceable.contains(i))
            .collect();
        let worst = net
            .transform_selected(FuSeVariant::Full, &complement)
            .unwrap();
        let worst_lat = estimate_network(&model, &worst).unwrap();

        assert!(
            best_lat.speedup_over(&base) > worst_lat.speedup_over(&base),
            "picked half ({:.2}x) must beat complement ({:.2}x)",
            best_lat.speedup_over(&base),
            worst_lat.speedup_over(&base)
        );
    }

    #[test]
    fn partial_speedups_land_between_baseline_and_full() {
        let net = zoo::mnasnet_b1();
        let array = array64();
        let model = LatencyModel::new(array);
        let base = estimate_network(&model, &net).unwrap();
        let full = estimate_network(
            &model,
            &apply_variant(&net, Variant::FuseFull, &array).unwrap(),
        )
        .unwrap();
        let partial = estimate_network(
            &model,
            &apply_variant(&net, Variant::FuseFull50, &array).unwrap(),
        )
        .unwrap();
        let sp = partial.speedup_over(&base);
        let sf = full.speedup_over(&base);
        assert!(sp > 1.0 && sp < sf, "1 < {sp:.2} < {sf:.2}");
    }

    #[test]
    fn variant_metadata() {
        assert_eq!(Variant::ALL.len(), 5);
        assert_eq!(Variant::Baseline.fuse_variant(), None);
        assert_eq!(Variant::FuseFull50.fuse_variant(), Some(FuSeVariant::Full));
        assert!(Variant::FuseHalf50.is_partial());
        assert!(!Variant::FuseHalf.is_partial());
        assert_eq!(Variant::FuseHalf.to_string(), "FuSe-Half");
    }
}

//! Structural area/power model for the modified systolic array (§V-B-5).
//!
//! The paper measures the cost of the per-row weight-broadcast links by
//! synthesizing a 32×32 array, with and without the links, in Bluespec →
//! NanGate 45 nm → Synopsys Design Compiler, reporting **4.35 % area** and
//! **2.25 % power** overhead.
//!
//! Synthesis tools are not available here, so this crate substitutes a
//! *structural* model: the array is composed from per-component 45 nm-class
//! area/power constants (MAC, registers, PE control, edge FIFOs, the
//! broadcast input mux, and the per-row broadcast wire/driver), combined
//! exactly as the RTL would instantiate them. The component constants are
//! calibrated so the 32×32 overhead matches the paper's synthesis numbers;
//! everything else — the scaling of the overhead with array size, the
//! area/power split, the asymptote at large arrays — is *derived* from the
//! structure, not fitted.
//!
//! # Examples
//!
//! ```
//! use fuseconv_hwcost::{ArrayCost, TechnologyProfile};
//!
//! let tech = TechnologyProfile::nangate45();
//! let overhead = tech.broadcast_overhead(32, 32);
//! assert!((overhead.area_pct - 4.35).abs() < 0.5);
//! assert!((overhead.power_pct - 2.25).abs() < 0.5);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;

/// Per-component area (µm²) and power (µW at nominal frequency/activity)
/// constants for one technology node.
///
/// The defaults ([`TechnologyProfile::nangate45`]) describe an FP16 MAC
/// datapath in a 45 nm-class library.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TechnologyProfile {
    /// MAC unit area per PE.
    pub mac_area: f64,
    /// Register file area per PE (operand + accumulator registers).
    pub reg_area: f64,
    /// Local control area per PE.
    pub ctl_area: f64,
    /// Edge FIFO/skew-buffer area per array row or column lane.
    pub edge_area: f64,
    /// Global control/sequencer area per array.
    pub global_area: f64,
    /// Broadcast additions per PE: input mux + configuration bit + wire
    /// pitch share.
    pub bcast_pe_area: f64,
    /// Broadcast driver + repeater area per array row.
    pub bcast_row_area: f64,
    /// MAC power per PE.
    pub mac_power: f64,
    /// Register power per PE.
    pub reg_power: f64,
    /// Control power per PE.
    pub ctl_power: f64,
    /// Edge FIFO power per lane.
    pub edge_power: f64,
    /// Global control power per array.
    pub global_power: f64,
    /// Broadcast additions power per PE.
    pub bcast_pe_power: f64,
    /// Broadcast driver power per row.
    pub bcast_row_power: f64,
}

impl TechnologyProfile {
    /// The 45 nm-class profile calibrated to the paper's 32×32 synthesis
    /// (4.35 % area / 2.25 % power overhead).
    pub fn nangate45() -> Self {
        TechnologyProfile {
            mac_area: 1600.0,
            reg_area: 500.0,
            ctl_area: 150.0,
            edge_area: 800.0,
            global_area: 50_000.0,
            bcast_pe_area: 88.0,
            bcast_row_area: 450.0,
            mac_power: 500.0,
            reg_power: 150.0,
            ctl_power: 50.0,
            edge_power: 250.0,
            global_power: 20_000.0,
            bcast_pe_power: 12.8,
            bcast_row_power: 120.0,
        }
    }

    /// Area/power of one baseline PE.
    pub fn pe_area(&self) -> f64 {
        self.mac_area + self.reg_area + self.ctl_area
    }

    /// Power of one baseline PE.
    pub fn pe_power(&self) -> f64 {
        self.mac_power + self.reg_power + self.ctl_power
    }

    /// Estimates a full array's cost.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn array_cost(&self, rows: usize, cols: usize, broadcast: bool) -> ArrayCost {
        assert!(rows > 0 && cols > 0, "array dimensions must be nonzero");
        let pes = (rows * cols) as f64;
        let lanes = (rows + cols) as f64;
        let mut area = pes * self.pe_area() + lanes * self.edge_area + self.global_area;
        let mut power = pes * self.pe_power() + lanes * self.edge_power + self.global_power;
        if broadcast {
            area += pes * self.bcast_pe_area + rows as f64 * self.bcast_row_area;
            power += pes * self.bcast_pe_power + rows as f64 * self.bcast_row_power;
        }
        ArrayCost {
            rows,
            cols,
            broadcast,
            area_um2: area,
            power_uw: power,
        }
    }

    /// Relative overhead of adding broadcast links to a `rows×cols` array.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn broadcast_overhead(&self, rows: usize, cols: usize) -> Overhead {
        let base = self.array_cost(rows, cols, false);
        let bcast = self.array_cost(rows, cols, true);
        Overhead {
            area_pct: (bcast.area_um2 / base.area_um2 - 1.0) * 100.0,
            power_pct: (bcast.power_uw / base.power_uw - 1.0) * 100.0,
        }
    }
}

impl Default for TechnologyProfile {
    fn default() -> Self {
        Self::nangate45()
    }
}

/// Estimated silicon cost of one array configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ArrayCost {
    /// PE rows.
    pub rows: usize,
    /// PE columns.
    pub cols: usize,
    /// Whether broadcast links are included.
    pub broadcast: bool,
    /// Total area in µm².
    pub area_um2: f64,
    /// Total power in µW.
    pub power_uw: f64,
}

impl ArrayCost {
    /// Area in mm².
    pub fn area_mm2(&self) -> f64 {
        self.area_um2 / 1e6
    }

    /// Power in mW.
    pub fn power_mw(&self) -> f64 {
        self.power_uw / 1e3
    }

    /// Serializes to a single JSON object (hand-rolled; the workspace
    /// carries no serde).
    pub fn to_json(&self) -> String {
        format!(
            "{{\"rows\":{},\"cols\":{},\"broadcast\":{},\"area_um2\":{},\"power_uw\":{}}}",
            self.rows, self.cols, self.broadcast, self.area_um2, self.power_uw
        )
    }
}

impl fmt::Display for ArrayCost {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}x{}{}: {:.3} mm2, {:.1} mW",
            self.rows,
            self.cols,
            if self.broadcast { " +broadcast" } else { "" },
            self.area_mm2(),
            self.power_mw()
        )
    }
}

/// Relative overhead of the broadcast dataflow, in percent.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Overhead {
    /// Area overhead in percent.
    pub area_pct: f64,
    /// Power overhead in percent.
    pub power_pct: f64,
}

impl Overhead {
    /// Serializes to a single JSON object (hand-rolled; the workspace
    /// carries no serde).
    pub fn to_json(&self) -> String {
        format!(
            "{{\"area_pct\":{},\"power_pct\":{}}}",
            self.area_pct, self.power_pct
        )
    }
}

impl fmt::Display for Overhead {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "area +{:.2}%, power +{:.2}%",
            self.area_pct, self.power_pct
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reproduces_paper_overheads_at_32x32() {
        let o = TechnologyProfile::nangate45().broadcast_overhead(32, 32);
        assert!(
            (o.area_pct - 4.35).abs() < 0.1,
            "area overhead {:.2}% should be ~4.35%",
            o.area_pct
        );
        assert!(
            (o.power_pct - 2.25).abs() < 0.1,
            "power overhead {:.2}% should be ~2.25%",
            o.power_pct
        );
    }

    #[test]
    fn overhead_is_modest_at_every_size() {
        let tech = TechnologyProfile::nangate45();
        for s in [8usize, 16, 32, 64, 128, 256] {
            let o = tech.broadcast_overhead(s, s);
            assert!(o.area_pct > 0.0 && o.area_pct < 6.0, "{s}: {o}");
            assert!(o.power_pct > 0.0 && o.power_pct < 4.0, "{s}: {o}");
        }
    }

    #[test]
    fn overhead_asymptotes_to_per_pe_ratio() {
        // As S → ∞, drivers/edges vanish and the overhead tends to the
        // per-PE mux ratio.
        let tech = TechnologyProfile::nangate45();
        let huge = tech.broadcast_overhead(4096, 4096);
        let per_pe = tech.bcast_pe_area / tech.pe_area() * 100.0;
        assert!((huge.area_pct - per_pe).abs() < 0.1);
    }

    #[test]
    fn cost_scales_quadratically_in_pes() {
        let tech = TechnologyProfile::nangate45();
        let small = tech.array_cost(16, 16, false);
        let big = tech.array_cost(64, 64, false);
        let ratio = big.area_um2 / small.area_um2;
        assert!(
            (12.0..=16.0).contains(&ratio),
            "64x64 should be ~16x a 16x16 array, got {ratio:.1}"
        );
        assert!(big.power_uw > small.power_uw);
    }

    #[test]
    fn broadcast_always_costs_more() {
        let tech = TechnologyProfile::nangate45();
        for (r, c) in [(8, 8), (32, 64), (128, 16)] {
            let base = tech.array_cost(r, c, false);
            let b = tech.array_cost(r, c, true);
            assert!(b.area_um2 > base.area_um2);
            assert!(b.power_uw > base.power_uw);
        }
    }

    #[test]
    fn rectangular_arrays_charge_rows_for_drivers() {
        // Broadcast cost depends on rows (one driver per row), so a tall
        // array pays more driver overhead than a wide one of equal PEs.
        let tech = TechnologyProfile::nangate45();
        let tall =
            tech.array_cost(128, 16, true).area_um2 - tech.array_cost(128, 16, false).area_um2;
        let wide =
            tech.array_cost(16, 128, true).area_um2 - tech.array_cost(16, 128, false).area_um2;
        assert!(tall > wide);
    }

    #[test]
    fn display_formats() {
        let tech = TechnologyProfile::nangate45();
        let c = tech.array_cost(32, 32, true);
        assert!(c.to_string().contains("+broadcast"));
        let o = tech.broadcast_overhead(32, 32);
        assert!(o.to_string().contains('%'));
    }

    #[test]
    fn json_writers_emit_objects() {
        let tech = TechnologyProfile::nangate45();
        let j = tech.array_cost(8, 8, true).to_json();
        assert!(j.starts_with('{') && j.ends_with('}'));
        assert!(j.contains("\"broadcast\":true"));
        assert!(tech
            .broadcast_overhead(8, 8)
            .to_json()
            .contains("\"area_pct\":"));
    }

    #[test]
    #[should_panic(expected = "nonzero")]
    fn zero_array_rejected() {
        let _ = TechnologyProfile::nangate45().array_cost(0, 32, false);
    }
}

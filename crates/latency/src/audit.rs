//! Static self-audit of fold plans: coverage, occupancy and footprints.
//!
//! [`LatencyModel::fold_plan`] promises that its folds partition the
//! operator's output iteration space — every output element computed by
//! exactly one fold, every fold within the physical array. This module
//! proves that promise from the *outside*: it independently reconstructs
//! the expected tile partition of the iteration space (an interval
//! analysis over the fold grid) and classifies every divergence of an
//! actual plan as a [`PlanViolation`].
//!
//! Two consumers build on the audit:
//!
//! * [`gate`] — a cached per-configuration verdict consulted by every
//!   [`LatencyModel`] entry point, mirroring the dataflow-legality gate in
//!   `fuseconv_systolic::legality`: debug builds refuse to estimate with a
//!   model whose probe plans fail the audit, release builds warn once per
//!   configuration and continue.
//! * `fuseconv-analyze` — the `PLAN001–PLAN004` rules wrap
//!   [`audit_plan`]'s violations as diagnostics, and the `MEM001–MEM003`
//!   rules budget the [`fold_footprint`] working sets against SRAM.

use crate::map::{c64, Dataflow, LatencyError, LatencyModel};
use fuseconv_nn::ops::{Axis1d, Op};
use fuseconv_systolic::conv1d;
use fuseconv_trace::{FoldKind, FoldSpec};
use std::collections::HashMap;
use std::fmt;
use std::sync::{Mutex, OnceLock, PoisonError};

/// One divergence between a fold plan and the expected partition of the
/// operator's output iteration space.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum PlanViolation {
    /// Part of the iteration space is computed by no fold.
    Gap {
        /// MACs of the uncovered region.
        missing_macs: u64,
        /// Where the coverage hole is.
        detail: String,
    },
    /// Part of the iteration space is computed by more than one fold (or
    /// by a fold that does not belong to the partition at all).
    Overlap {
        /// MACs computed beyond the iteration-space total.
        extra_macs: u64,
        /// Where the double-compute is.
        detail: String,
    },
    /// A fold claims more rows or columns than the array has.
    OversizedTile {
        /// Index of the offending fold in the plan.
        fold_index: usize,
        /// The fold's claimed row occupancy.
        rows_used: u32,
        /// The fold's claimed column occupancy.
        cols_used: u32,
    },
    /// The plan's summed MACs disagree with the operator's
    /// iteration-space MAC total.
    MacsMismatch {
        /// Σ `macs` over the plan's folds.
        plan_macs: u64,
        /// The independently computed iteration-space total.
        expected_macs: u64,
    },
}

impl fmt::Display for PlanViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PlanViolation::Gap {
                missing_macs,
                detail,
            } => write!(f, "coverage gap of {missing_macs} MACs ({detail})"),
            PlanViolation::Overlap { extra_macs, detail } => {
                write!(f, "double-compute of {extra_macs} MACs ({detail})")
            }
            PlanViolation::OversizedTile {
                fold_index,
                rows_used,
                cols_used,
            } => write!(
                f,
                "fold {fold_index} claims a {rows_used}x{cols_used} tile beyond the array"
            ),
            PlanViolation::MacsMismatch {
                plan_macs,
                expected_macs,
            } => write!(
                f,
                "plan sums to {plan_macs} MACs, iteration space holds {expected_macs}"
            ),
        }
    }
}

/// An expected tile of the iteration-space partition: row/column occupancy
/// plus the MACs the tile owns.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Tile {
    rows: u64,
    cols: u64,
    macs: u64,
}

/// Splits `total` into `tile`-sized chunks (full chunks then remainder),
/// the canonical 1-D interval partition all fold grids are built from.
fn chunks(total: u64, tile: u64) -> Vec<u64> {
    let mut out = Vec::new();
    if tile == 0 {
        return out;
    }
    let mut done = 0u64;
    while done < total {
        let step = tile.min(total - done);
        out.push(step);
        done += step;
    }
    out
}

/// The expected tile sequence of one GEMM fold grid: the cross product of
/// the row-axis and column-axis partitions, row-major, each tile carrying
/// `ru · cu · reduction` MACs.
fn gemm_tiles(dim_r: u64, rows: u64, dim_c: u64, cols: u64, reduction: u64) -> Vec<Tile> {
    let mut out = Vec::new();
    for ru in chunks(dim_r, rows) {
        for cu in chunks(dim_c, cols) {
            out.push(Tile {
                rows: ru,
                cols: cu,
                macs: ru.saturating_mul(cu).saturating_mul(reduction),
            });
        }
    }
    out
}

/// The expected tile sequence of a packed row-broadcast (FuSe 1-D) plan,
/// reconstructed from the same packing decision the planner makes.
fn fuse_tiles(
    model: &LatencyModel,
    channels: usize,
    lines: usize,
    l_out: usize,
    k: usize,
) -> Vec<Tile> {
    let (rows, cols) = (model.array().rows(), model.array().cols());
    let lpr = conv1d::lines_per_row(model.array(), channels, lines, l_out, k);
    let slots_per_channel = lines.div_ceil(lpr);
    let slot_lines: Vec<usize> = (0..channels)
        .flat_map(|_| (0..slots_per_channel).map(move |s| lpr.min(lines - s * lpr)))
        .collect();
    let mut out = Vec::new();
    for slot0 in (0..slot_lines.len()).step_by(rows) {
        let chunk = &slot_lines[slot0..slot_lines.len().min(slot0 + rows)];
        let ru = c64(chunk.len());
        if lpr == 1 {
            for cw in chunks(c64(l_out), c64(cols)) {
                out.push(Tile {
                    rows: ru,
                    cols: cw,
                    macs: ru.saturating_mul(cw).saturating_mul(c64(k)),
                });
            }
        } else {
            let busy: u64 = chunk
                .iter()
                .map(|&n| c64(n).saturating_mul(c64(l_out)))
                .fold(0u64, u64::saturating_add);
            out.push(Tile {
                rows: ru,
                cols: c64(lpr).saturating_mul(c64(l_out)),
                macs: busy.saturating_mul(c64(k)),
            });
        }
    }
    out
}

/// The expected iteration-space partition for `op` under `model`, or
/// `None` when the operator is degenerate / unsupported on this array (the
/// planner itself errors there, so there is nothing to audit).
fn expected_tiles(model: &LatencyModel, op: &Op) -> Option<Vec<Tile>> {
    let (oh, ow, _) = op.output_shape();
    let (rows, cols) = (c64(model.array().rows()), c64(model.array().cols()));
    let m = c64(oh)
        .checked_mul(c64(ow))?
        .checked_mul(c64(model.batch()))?;
    match *op {
        Op::Conv2d { in_c, out_c, k, .. } => {
            let kdim = c64(k).checked_mul(c64(k))?.checked_mul(c64(in_c))?;
            Some(grid_for(model.dataflow(), m, kdim, c64(out_c), rows, cols))
        }
        Op::Depthwise { c, k, .. } => {
            let kk = c64(k).checked_mul(c64(k))?;
            let per_channel = grid_for(model.dataflow(), m, kk, 1, rows, cols);
            let mut out = Vec::new();
            for _ in 0..c {
                out.extend_from_slice(&per_channel);
            }
            Some(out)
        }
        Op::Pointwise { in_c, out_c, .. } => Some(grid_for(
            model.dataflow(),
            m,
            c64(in_c),
            c64(out_c),
            rows,
            cols,
        )),
        Op::FuSe1d { c, k, axis, .. } => {
            if !model.array().has_broadcast() {
                return None;
            }
            let (lines, l_out) = match axis {
                Axis1d::Row => (oh, ow),
                Axis1d::Col => (ow, oh),
            };
            if c == 0 || lines == 0 || l_out == 0 || k == 0 {
                return None;
            }
            Some(fuse_tiles(model, c, lines, l_out, k))
        }
        Op::Fc {
            in_features,
            out_features,
        } => Some(grid_for(
            model.dataflow(),
            1,
            c64(in_features),
            c64(out_features),
            rows,
            cols,
        )),
    }
}

/// Maps a GEMM's `(m, k, n)` to its fold-grid axes under a dataflow: which
/// two dims tile onto the array, and which is the temporal reduction.
fn grid_for(dataflow: Dataflow, m: u64, k: u64, n: u64, rows: u64, cols: u64) -> Vec<Tile> {
    match dataflow {
        Dataflow::OutputStationary => gemm_tiles(m, rows, n, cols, k),
        Dataflow::WeightStationary => gemm_tiles(k, rows, n, cols, m),
        Dataflow::InputStationary => gemm_tiles(m, rows, k, cols, n),
    }
}

/// Audits a fold plan against the expected partition of `op`'s iteration
/// space under `model`. Returns every divergence found; an empty vector is
/// the coverage proof (no gaps, no double-compute, tiles within the array,
/// MAC totals exact).
pub fn audit_plan(model: &LatencyModel, op: &Op, plan: &[FoldSpec]) -> Vec<PlanViolation> {
    let mut out = Vec::new();
    let (rows, cols) = (model.array().rows(), model.array().cols());

    // PLAN003: physical occupancy, independent of the partition.
    for (i, f) in plan.iter().enumerate() {
        if c64u32(f.rows_used) > c64(rows) || c64u32(f.cols_used) > c64(cols) {
            out.push(PlanViolation::OversizedTile {
                fold_index: i,
                rows_used: f.rows_used,
                cols_used: f.cols_used,
            });
        }
    }

    let Some(expected) = expected_tiles(model, op) else {
        return out;
    };

    // PLAN001/PLAN002: walk the plan against the expected partition in
    // emission order, classifying under- and over-coverage tile by tile.
    let pairs = plan.len().max(expected.len());
    for i in 0..pairs {
        match (plan.get(i), expected.get(i)) {
            (Some(f), Some(t)) => {
                let (fr, fc) = (c64u32(f.rows_used), c64u32(f.cols_used));
                if fr < t.rows || fc < t.cols {
                    out.push(PlanViolation::Gap {
                        missing_macs: t.macs.saturating_sub(f.macs),
                        detail: format!(
                            "fold {i} covers {fr}x{fc} of the expected {}x{} tile",
                            t.rows, t.cols
                        ),
                    });
                }
                if fr > t.rows || fc > t.cols {
                    out.push(PlanViolation::Overlap {
                        extra_macs: f.macs.saturating_sub(t.macs),
                        detail: format!(
                            "fold {i} covers {fr}x{fc}, beyond the expected {}x{} tile",
                            t.rows, t.cols
                        ),
                    });
                }
            }
            (None, Some(t)) => out.push(PlanViolation::Gap {
                missing_macs: t.macs,
                detail: format!("plan ends before expected tile {i} ({}x{})", t.rows, t.cols),
            }),
            (Some(f), None) => out.push(PlanViolation::Overlap {
                extra_macs: f.macs,
                detail: format!(
                    "fold {i} ({}x{}) lies beyond the iteration space",
                    f.rows_used, f.cols_used
                ),
            }),
            (None, None) => {}
        }
    }

    // PLAN004: MAC totals, an independent global invariant (catches
    // compensating per-fold errors the tile walk cannot see).
    let plan_macs: u64 = plan.iter().map(|f| f.macs).fold(0u64, u64::saturating_add);
    let expected_macs: u64 = expected
        .iter()
        .map(|t| t.macs)
        .fold(0u64, u64::saturating_add);
    if plan_macs != expected_macs {
        out.push(PlanViolation::MacsMismatch {
            plan_macs,
            expected_macs,
        });
    }
    out
}

/// Per-fold SRAM working set, in elements per operand stream.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FoldFootprint {
    /// Distinct input-feature-map elements the fold touches.
    pub ifmap_elems: u64,
    /// Distinct filter elements the fold touches.
    pub filter_elems: u64,
    /// Distinct output elements the fold produces.
    pub ofmap_elems: u64,
}

impl FoldFootprint {
    /// Total elements across the three streams.
    pub fn total(&self) -> u64 {
        self.ifmap_elems
            .saturating_add(self.filter_elems)
            .saturating_add(self.ofmap_elems)
    }

    /// Per-stream maximum of two footprints.
    pub fn max(self, other: FoldFootprint) -> FoldFootprint {
        FoldFootprint {
            ifmap_elems: self.ifmap_elems.max(other.ifmap_elems),
            filter_elems: self.filter_elems.max(other.filter_elems),
            ofmap_elems: self.ofmap_elems.max(other.ofmap_elems),
        }
    }
}

/// The operand working set of one fold, recovered from the spec alone.
///
/// The temporal dimension is reconstructed from the compute phase: an
/// output-stationary fold computes for `ru + cu + k − 2` cycles, so
/// `k = compute + 2 − ru − cu`, and symmetrically for the other dataflows.
/// For row-broadcast folds the fill phase *is* the padded input width and
/// the compute phase is the kernel length. These are exactly the distinct
/// SRAM addresses the traced simulators touch per fold (the
/// `footprint_vs_trace` integration test pins this equality).
pub fn fold_footprint(f: &FoldSpec) -> FoldFootprint {
    let (ru, cu) = (c64u32(f.rows_used), c64u32(f.cols_used));
    match f.kind {
        FoldKind::OutputStationary => {
            let k = (f.compute + 2).saturating_sub(ru + cu);
            FoldFootprint {
                ifmap_elems: ru.saturating_mul(k),
                filter_elems: k.saturating_mul(cu),
                ofmap_elems: ru.saturating_mul(cu),
            }
        }
        FoldKind::WeightStationary => {
            let m = (f.compute + 2).saturating_sub(ru + cu);
            FoldFootprint {
                ifmap_elems: m.saturating_mul(ru),
                filter_elems: ru.saturating_mul(cu),
                ofmap_elems: m.saturating_mul(cu),
            }
        }
        FoldKind::InputStationary => {
            let n = (f.compute + 2).saturating_sub(ru + cu);
            FoldFootprint {
                ifmap_elems: ru.saturating_mul(cu),
                filter_elems: n.saturating_mul(cu),
                ofmap_elems: ru.saturating_mul(n),
            }
        }
        FoldKind::RowBroadcast => FoldFootprint {
            ifmap_elems: ru.saturating_mul(f.fill),
            filter_elems: ru.saturating_mul(f.compute),
            ofmap_elems: f.macs.checked_div(f.compute).unwrap_or(0),
        },
    }
}

/// Per-stream high-water mark over a whole plan: the largest single-fold
/// working set each SRAM buffer must hold.
pub fn plan_high_water(plan: &[FoldSpec]) -> FoldFootprint {
    plan.iter()
        .map(fold_footprint)
        .fold(FoldFootprint::default(), FoldFootprint::max)
}

/// Widening `u32 → u64` for fold occupancy fields.
fn c64u32(x: u32) -> u64 {
    u64::from(x)
}

/// Cache key: everything that changes a model's fold plans.
type Key = (usize, usize, bool, Dataflow, usize);

fn key_of(model: &LatencyModel) -> Key {
    (
        model.array().rows(),
        model.array().cols(),
        model.array().has_broadcast(),
        model.dataflow(),
        model.batch(),
    )
}

/// The probe operators the gate audits: one per lowering class, with
/// remainder tiles on every array at or above 2×2 (the same shapes the
/// plan unit tests sweep).
fn probe_ops(has_broadcast: bool) -> Vec<Op> {
    let mut ops = vec![
        Op::conv2d(14, 14, 8, 24, 3, 1, 1),
        Op::depthwise(9, 9, 6, 3, 1, 1),
        Op::pointwise(7, 7, 12, 20),
        Op::fc(100, 37),
    ];
    if has_broadcast {
        ops.push(Op::fuse1d(12, 12, 5, 3, 1, 1, Axis1d::Row));
        ops.push(Op::fuse1d(7, 7, 9, 5, 1, 2, Axis1d::Col));
    }
    ops
}

/// Computes the audit verdict for one model configuration by planning and
/// auditing every probe operator.
fn verdict_for(model: &LatencyModel) -> Result<(), LatencyError> {
    for op in probe_ops(model.array().has_broadcast()) {
        let plan = model.fold_plan_ungated(&op)?;
        let violations = audit_plan(model, &op, &plan);
        if let Some(v) = violations.first() {
            return Err(LatencyError::PlanAudit {
                detail: format!("probe `{op}` on this configuration: {v}"),
            });
        }
    }
    Ok(())
}

static VERDICTS: OnceLock<Mutex<HashMap<Key, Result<(), LatencyError>>>> = OnceLock::new();

/// Plan-audit gate consulted by every [`LatencyModel`] entry point.
///
/// The first call per `(array, dataflow, batch)` configuration audits the
/// probe plans and caches the verdict. Debug builds propagate a failed
/// verdict as [`LatencyError::PlanAudit`] on every call; release builds
/// log one warning per configuration (through the telemetry logger,
/// counted as `latency.gate_warnings`) when the verdict is first computed
/// and then continue (the shipped planner passes the audit — the gate
/// exists so a planner regression cannot silently produce latency numbers
/// from a plan that no longer partitions the iteration space).
///
/// # Errors
///
/// [`LatencyError::PlanAudit`] in debug builds when the audit fails.
pub fn gate(model: &LatencyModel) -> Result<(), LatencyError> {
    let _span = fuseconv_telemetry::span("latency.audit_gate");
    let cache = VERDICTS.get_or_init(|| Mutex::new(HashMap::new()));
    let mut map = cache.lock().unwrap_or_else(PoisonError::into_inner);
    let verdict = map.entry(key_of(model)).or_insert_with(|| {
        let v = verdict_for(model);
        if let Err(e) = &v {
            fuseconv_telemetry::counter("latency.gate_warnings").inc();
            if !cfg!(debug_assertions) {
                fuseconv_telemetry::log::warn(
                    "latency::audit",
                    &format!("{e} (release build: continuing)"),
                );
            }
        }
        v
    });
    if cfg!(debug_assertions) {
        verdict.clone()
    } else {
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fuseconv_systolic::ArrayConfig;

    fn model(rows: usize, cols: usize) -> LatencyModel {
        LatencyModel::new(ArrayConfig::new(rows, cols).unwrap().with_broadcast(true))
    }

    fn all_ops() -> Vec<Op> {
        probe_ops(true)
    }

    #[test]
    fn shipped_plans_audit_clean_everywhere() {
        for (rows, cols) in [(4usize, 6usize), (8, 8), (5, 3), (64, 64)] {
            for dataflow in [
                Dataflow::OutputStationary,
                Dataflow::WeightStationary,
                Dataflow::InputStationary,
            ] {
                let m = model(rows, cols).with_dataflow(dataflow);
                for op in all_ops() {
                    let plan = m.fold_plan_ungated(&op).unwrap();
                    let v = audit_plan(&m, &op, &plan);
                    assert!(v.is_empty(), "{rows}x{cols} {dataflow:?} {op}: {v:?}");
                }
            }
        }
    }

    #[test]
    fn gate_accepts_shipped_configurations() {
        for side in [4usize, 8, 64] {
            assert!(model(side, side)
                .cycles(&Op::pointwise(7, 7, 12, 20))
                .is_ok());
        }
    }

    #[test]
    fn dropped_fold_is_a_gap() {
        let m = model(8, 8);
        let op = Op::pointwise(7, 7, 12, 20);
        let mut plan = m.fold_plan_ungated(&op).unwrap();
        plan.pop();
        let v = audit_plan(&m, &op, &plan);
        assert!(
            v.iter().any(|x| matches!(x, PlanViolation::Gap { .. })),
            "{v:?}"
        );
        assert!(
            v.iter()
                .any(|x| matches!(x, PlanViolation::MacsMismatch { .. })),
            "{v:?}"
        );
    }

    #[test]
    fn duplicated_fold_is_an_overlap() {
        let m = model(8, 8);
        let op = Op::pointwise(7, 7, 12, 20);
        let mut plan = m.fold_plan_ungated(&op).unwrap();
        let dup = plan[plan.len() - 1];
        plan.push(dup);
        let v = audit_plan(&m, &op, &plan);
        assert!(
            v.iter().any(|x| matches!(x, PlanViolation::Overlap { .. })),
            "{v:?}"
        );
    }

    #[test]
    fn widened_tile_is_an_overlap_and_oversized() {
        let m = model(8, 8);
        let op = Op::pointwise(7, 7, 12, 20);
        let mut plan = m.fold_plan_ungated(&op).unwrap();
        plan[0].rows_used = 9; // beyond the 8-row array
        let v = audit_plan(&m, &op, &plan);
        assert!(
            v.iter()
                .any(|x| matches!(x, PlanViolation::OversizedTile { fold_index: 0, .. })),
            "{v:?}"
        );
        assert!(
            v.iter().any(|x| matches!(x, PlanViolation::Overlap { .. })),
            "{v:?}"
        );
    }

    #[test]
    fn narrowed_tile_is_a_gap() {
        let m = model(8, 8);
        let op = Op::conv2d(14, 14, 8, 24, 3, 1, 1);
        let mut plan = m.fold_plan_ungated(&op).unwrap();
        plan[0].cols_used -= 1;
        plan[0].macs -= 1;
        let v = audit_plan(&m, &op, &plan);
        assert!(
            v.iter().any(|x| matches!(x, PlanViolation::Gap { .. })),
            "{v:?}"
        );
    }

    #[test]
    fn mutated_macs_alone_is_a_macs_mismatch() {
        let m = model(8, 8);
        let op = Op::fuse1d(12, 12, 5, 3, 1, 1, Axis1d::Row);
        let mut plan = m.fold_plan_ungated(&op).unwrap();
        plan[0].macs += 7;
        let v = audit_plan(&m, &op, &plan);
        assert!(
            v.iter()
                .any(|x| matches!(x, PlanViolation::MacsMismatch { .. })),
            "{v:?}"
        );
    }

    #[test]
    fn footprints_are_consistent_with_plan_dims() {
        // OS pointwise on 8x8: full 8x8 tiles with reduction 12 → ifmap
        // 8·12, filter 12·8, ofmap 8·8.
        let m = model(8, 8);
        let plan = m.fold_plan_ungated(&Op::pointwise(8, 8, 12, 8)).unwrap();
        let fp = fold_footprint(&plan[0]);
        assert_eq!(fp.ifmap_elems, 8 * 12);
        assert_eq!(fp.filter_elems, 12 * 8);
        assert_eq!(fp.ofmap_elems, 8 * 8);
        assert_eq!(fp.total(), 8 * 12 + 12 * 8 + 8 * 8);
        let hw = plan_high_water(&plan);
        assert!(hw.ifmap_elems >= fp.ifmap_elems);
    }

    #[test]
    fn high_water_is_per_stream_max() {
        let a = FoldFootprint {
            ifmap_elems: 10,
            filter_elems: 1,
            ofmap_elems: 5,
        };
        let b = FoldFootprint {
            ifmap_elems: 2,
            filter_elems: 8,
            ofmap_elems: 5,
        };
        let m = a.max(b);
        assert_eq!(m.ifmap_elems, 10);
        assert_eq!(m.filter_elems, 8);
        assert_eq!(m.ofmap_elems, 5);
    }

    #[test]
    fn violation_display_mentions_the_numbers() {
        let v = PlanViolation::MacsMismatch {
            plan_macs: 10,
            expected_macs: 12,
        };
        let s = v.to_string();
        assert!(s.contains("10") && s.contains("12"), "{s}");
    }
}

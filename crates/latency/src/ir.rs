//! Fold-plan intermediate representation and dataflow analyses.
//!
//! [`LatencyModel::fold_plan`](crate::LatencyModel::fold_plan) emits a flat
//! `Vec<FoldSpec>` — a schedule, not a program: the specs carry no notion
//! of *what data* each fold reads and writes, so nothing downstream can
//! reason about producer/consumer structure (fold fusion, sparsity
//! packing, skip-ahead simulation). [`PlanIr`] lifts one or more fold
//! plans into a graph of [`FoldNode`]s with explicit value defs/uses —
//! one ifmap tile, one filter (weight) tile and one output tile per fold,
//! sized by the same [`fold_footprint`] address math the traced
//! simulators are pinned against — plus producer→consumer dependence
//! edges between the folds of adjacent operators. Every node carries the
//! exact [`FoldSpec`] it lowers back to, so [`PlanIr::lower`] reproduces
//! the source plan bit-for-bit and trace replay stays exact.
//!
//! On top of the graph sits a small generic fixpoint engine
//! ([`DataflowProblem`] / [`solve`]) with two shipped clients: backward
//! **liveness** and forward **reaching definitions**. They answer two
//! different questions, and the distinction matters:
//!
//! * [`PlanIr::high_water`] prices SRAM under the shipped executor's
//!   *round-trip* discipline — each fold stages exactly its own operand
//!   tiles for the duration of that fold, which is what
//!   [`plan_high_water`](crate::plan_high_water) prices and what the
//!   traced distinct-address differential test measures. The two are
//!   proven equal on the whole zoo (`tests/ir_differential.rs`).
//! * [`PlanIr::live_intervals`] (from the liveness fixpoint) reports over
//!   which schedule interval each value must exist *somewhere* — the
//!   input to fusion legality: an intermediate whose live interval is
//!   covered by on-array residency never needs its SRAM round-trip, and
//!   [`PlanIr::high_water_without`] prices exactly that saving.
//!
//! The `FUS` rule family (`fuseconv_analyze::fusion`) is the first
//! client; the fusing scheduler, sparsity packing and fast-simulator
//! skip-ahead of the roadmap build on the same graph.

use crate::audit::{fold_footprint, FoldFootprint};
use fuseconv_trace::{tag_plan, FoldSpec};

/// Identifier of a value in a [`PlanIr`] (an index into
/// [`PlanIr::values`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ValueId(pub usize);

/// Which operand stream a value occupies — the same three streams
/// [`FoldFootprint`] prices.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ValueClass {
    /// An input feature-map tile.
    Ifmap,
    /// A filter (weight) tile.
    Filter,
    /// An output tile.
    Ofmap,
}

/// Where a value's bits come from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ValueDef {
    /// Live-in: produced outside the lifted plan (network input, weights
    /// loaded from DRAM, or an upstream operator not part of this IR).
    LiveIn,
    /// Defined by the fold node at this index.
    Node(usize),
}

/// One value of the IR: a tile of one operand stream, sized by the
/// [`fold_footprint`] address math of the fold that stages it.
#[derive(Debug, Clone)]
pub struct ValueInfo {
    /// Operand stream the value occupies.
    pub class: ValueClass,
    /// Distinct SRAM elements of the tile (equal to the traced
    /// distinct-address count of its stream within its fold).
    pub elems: u64,
    /// Producer of the value.
    pub def: ValueDef,
    /// Fold nodes that semantically consume the value. For intermediates
    /// read by a whole consumer plan this records the read *span* — the
    /// earliest and final reader — rather than every fold in between
    /// (program order chains them, so liveness spans them either way).
    pub uses: Vec<usize>,
    /// The fold whose SRAM staging holds the value under the round-trip
    /// discipline (always the fold the value was created for).
    pub staged_at: usize,
    /// Whether the value escapes the lifted plan (an operator output no
    /// lifted consumer absorbs) and must therefore survive to the end of
    /// the schedule.
    pub live_out: bool,
}

/// One fold of the lifted plan: the exact [`FoldSpec`] it lowers back to
/// plus its value defs/uses and dependence edges.
#[derive(Debug, Clone)]
pub struct FoldNode {
    /// The spec this node lowers back to, unchanged from the source plan.
    pub spec: FoldSpec,
    /// Ordinal of the source operator this fold belongs to (0 for a
    /// single-plan lift; 0 = producer, 1 = consumer for a pair).
    pub op: usize,
    /// Values this fold defines.
    pub defs: Vec<ValueId>,
    /// Values this fold uses.
    pub uses: Vec<ValueId>,
    /// Dependence predecessors (fold indices that must run first).
    pub preds: Vec<usize>,
    /// Dependence successors.
    pub succs: Vec<usize>,
}

/// The schedule interval over which a value must exist somewhere
/// (inclusive fold indices), computed by the liveness fixpoint.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LiveInterval {
    /// The value.
    pub value: ValueId,
    /// First fold index at which the value is resident.
    pub start: usize,
    /// Last fold index at which the value is resident.
    pub end: usize,
}

/// A fold plan lifted into a dependence graph with explicit values.
#[derive(Debug, Clone)]
pub struct PlanIr {
    nodes: Vec<FoldNode>,
    values: Vec<ValueInfo>,
    intermediates: Vec<ValueId>,
}

impl PlanIr {
    /// Lifts a single operator's fold plan. Every fold gets a live-in
    /// ifmap tile, a live-in filter tile and a live-out output tile; the
    /// folds of one plan partition the operator's output iteration space
    /// (the PLAN audit proves it), so no dependence edges exist between
    /// them — program order is pure schedule.
    pub fn from_plan(plan: &[FoldSpec]) -> PlanIr {
        PlanIr::from_plans(std::slice::from_ref(&plan.to_vec()), &[])
    }

    /// Lifts a producer plan and a consumer plan connected by one tensor:
    /// the producer's output tiles become the intermediate the consumer's
    /// input tiles re-read. Shorthand for [`PlanIr::from_plans`] with the
    /// single edge `(0, 1)`.
    pub fn from_pair(producer: &[FoldSpec], consumer: &[FoldSpec]) -> PlanIr {
        PlanIr::from_plans(&[producer.to_vec(), consumer.to_vec()], &[(0, 1)])
    }

    /// Lifts a sequence of per-operator fold plans into one graph.
    ///
    /// `edges` are operator-level dependences `(producer, consumer)` —
    /// derived by the caller from shape flow (`ShapeFlow` /
    /// `Op::output_shape`). Fold specs carry phase lengths and occupancy
    /// but no tile offsets, so the address math cannot prove any producer
    /// tile disjoint from any consumer tile: conservatively, every
    /// consumer fold reads every producer output tile (recorded in the
    /// value use lists). At the node level each producer fold gains one
    /// dependence edge to the *earliest* consumer fold — program order
    /// chains the consumer folds, so reachability (and hence every
    /// analysis over the straight-line-plus-edges CFG) is identical to
    /// the full bipartite edge set at a fraction of the size. The
    /// producer's output tiles and the consumer's input tiles are
    /// recorded as the *intermediate* values of that edge
    /// ([`PlanIr::intermediates`]) — the SRAM round-trip fusion would
    /// eliminate.
    ///
    /// # Panics
    ///
    /// Panics if an edge names an operator index out of range.
    pub fn from_plans(plans: &[Vec<FoldSpec>], edges: &[(usize, usize)]) -> PlanIr {
        let starts: Vec<usize> = plans
            .iter()
            .scan(0usize, |acc, p| {
                let s = *acc;
                *acc += p.len();
                Some(s)
            })
            .collect();
        let op_nodes = |op: usize| starts[op]..starts[op] + plans[op].len();

        let mut ir = PlanIr {
            nodes: Vec::new(),
            values: Vec::new(),
            intermediates: Vec::new(),
        };
        for (op, plan) in plans.iter().enumerate() {
            for spec in plan {
                let node = ir.nodes.len();
                let fp = fold_footprint(spec);
                let ifmap = ir.push_value(ValueInfo {
                    class: ValueClass::Ifmap,
                    elems: fp.ifmap_elems,
                    def: ValueDef::LiveIn,
                    uses: vec![node],
                    staged_at: node,
                    live_out: false,
                });
                let filter = ir.push_value(ValueInfo {
                    class: ValueClass::Filter,
                    elems: fp.filter_elems,
                    def: ValueDef::LiveIn,
                    uses: vec![node],
                    staged_at: node,
                    live_out: false,
                });
                let ofmap = ir.push_value(ValueInfo {
                    class: ValueClass::Ofmap,
                    elems: fp.ofmap_elems,
                    def: ValueDef::Node(node),
                    uses: Vec::new(),
                    staged_at: node,
                    live_out: true,
                });
                ir.nodes.push(FoldNode {
                    spec: *spec,
                    op,
                    defs: vec![ofmap],
                    uses: vec![ifmap, filter],
                    preds: Vec::new(),
                    succs: Vec::new(),
                });
            }
        }
        let mut marked = ValueSet::empty(ir.values.len());
        for &(p, c) in edges {
            assert!(p < plans.len() && c < plans.len(), "edge op out of range");
            let producer: Vec<usize> = op_nodes(p).collect();
            let consumers: Vec<usize> = op_nodes(c).collect();
            let first_consumer_fold = consumers.first().copied();
            // Every consumer fold conservatively reads every producer
            // output tile; the use lists record that read span by its
            // earliest and final reader (program order chains the folds
            // in between, so liveness spans them either way) — O(P + C)
            // instead of the O(P·C) full cross product.
            let span: Vec<usize> = match (consumers.first(), consumers.last()) {
                (Some(&f), Some(&l)) if f != l => vec![f, l],
                (Some(&f), _) => vec![f],
                _ => Vec::new(),
            };
            for &pn in &producer {
                if let Some(cn) = first_consumer_fold {
                    ir.add_dependence(pn, cn);
                }
                // The producer's output no longer escapes: the lifted
                // consumer absorbs it.
                // (A node's defs can also carry ifmap aliases added by an
                // earlier edge; only output tiles are this edge's tensor.)
                for vid in ir.nodes[pn].defs.clone() {
                    if ir.values[vid.0].class != ValueClass::Ofmap {
                        continue;
                    }
                    let v = &mut ir.values[vid.0];
                    v.live_out = false;
                    v.uses = span.clone();
                    if marked.insert(vid) {
                        ir.intermediates.push(vid);
                    }
                    for &cn in &span {
                        ir.nodes[cn].uses.push(vid);
                    }
                }
            }
            let last_producer_fold = producer.last().copied();
            for &cn in &consumers {
                // The consumer's input tiles are re-tilings of the tensor
                // the producer finished writing at its last fold.
                let ifmaps: Vec<ValueId> = ir.nodes[cn]
                    .uses
                    .iter()
                    .copied()
                    .filter(|vid| ir.values[vid.0].class == ValueClass::Ifmap)
                    .collect();
                for vid in ifmaps {
                    if let Some(d) = last_producer_fold {
                        ir.values[vid.0].def = ValueDef::Node(d);
                        ir.nodes[d].defs.push(vid);
                    }
                    if marked.insert(vid) {
                        ir.intermediates.push(vid);
                    }
                }
            }
        }
        ir
    }

    fn push_value(&mut self, v: ValueInfo) -> ValueId {
        let id = ValueId(self.values.len());
        self.values.push(v);
        id
    }

    /// The fold nodes, in schedule order.
    pub fn nodes(&self) -> &[FoldNode] {
        &self.nodes
    }

    /// All values of the IR.
    pub fn values(&self) -> &[ValueInfo] {
        &self.values
    }

    /// Looks up one value.
    pub fn value(&self, id: ValueId) -> &ValueInfo {
        &self.values[id.0]
    }

    /// The values that form inter-operator tensors (producer output tiles
    /// plus consumer input tiles of every operator edge): the SRAM
    /// round-trips fusion would eliminate.
    pub fn intermediates(&self) -> &[ValueId] {
        &self.intermediates
    }

    /// Adds an explicit dependence edge between two folds (used by the
    /// constructors, and by tests that mutate an IR into an illegal
    /// shape, e.g. a dependence cycle).
    pub fn add_dependence(&mut self, from: usize, to: usize) {
        if !self.nodes[from].succs.contains(&to) {
            self.nodes[from].succs.push(to);
            self.nodes[to].preds.push(from);
        }
    }

    /// Lowers the IR back to the flat fold plan it was lifted from —
    /// bit-for-bit: same order, same phase lengths, same MAC counts.
    pub fn lower(&self) -> Vec<FoldSpec> {
        self.nodes.iter().map(|n| n.spec).collect()
    }

    /// Lowers the IR and stamps every fold with `tag`
    /// (see [`fuseconv_trace::tag_plan`]).
    pub fn lower_tagged(&self, tag: u64) -> Vec<FoldSpec> {
        let mut plan = self.lower();
        tag_plan(&mut plan, tag);
        plan
    }

    /// SRAM high-water under the round-trip staging discipline: each fold
    /// holds exactly its own three tiles while it runs, and the per-stream
    /// maximum over the schedule is the buffer requirement. Equal to
    /// [`plan_high_water`](crate::plan_high_water) over [`PlanIr::lower`]
    /// by construction — the differential test pins it zoo-wide.
    pub fn high_water(&self) -> FoldFootprint {
        self.high_water_without(&[])
    }

    /// The round-trip high-water with the given values removed from the
    /// SRAM working set (because they stay on-array instead). Pricing the
    /// [`PlanIr::intermediates`] this way yields the exact SRAM saving of
    /// fusing a producer/consumer pair.
    pub fn high_water_without(&self, dropped: &[ValueId]) -> FoldFootprint {
        let mut drop = ValueSet::empty(self.values.len());
        for &v in dropped {
            drop.insert(v);
        }
        let mut per_node: Vec<FoldFootprint> = vec![FoldFootprint::default(); self.nodes.len()];
        for (i, v) in self.values.iter().enumerate() {
            if drop.contains(ValueId(i)) {
                continue;
            }
            let fp = &mut per_node[v.staged_at];
            match v.class {
                ValueClass::Ifmap => fp.ifmap_elems += v.elems,
                ValueClass::Filter => fp.filter_elems += v.elems,
                ValueClass::Ofmap => fp.ofmap_elems += v.elems,
            }
        }
        per_node
            .into_iter()
            .fold(FoldFootprint::default(), FoldFootprint::max)
    }

    /// Per-value live intervals: the inclusive schedule span over which
    /// each value must exist somewhere. The interval starts at the
    /// value's definition (or first use, for live-in values that can be
    /// fetched just in time) and ends at the last schedule point the
    /// backward-liveness fixpoint keeps it alive (the final fold, for
    /// live-out values). Values that are never defined nor used are
    /// omitted.
    pub fn live_intervals(&self) -> Vec<LiveInterval> {
        // Closed form of the backward-liveness fixpoint, valid because
        // the IR is single-assignment with every use scheduled at or
        // after its def and the CFG is the straight-line schedule plus
        // forward dependence edges: a value is live exactly from its def
        // (or first use, for live-ins) to its last use — or to the
        // schedule exit if it escapes. [`live_intervals_fixpoint`] runs
        // the actual engine; `intervals_agree_with_the_fixpoint` and the
        // zoo-wide differential test pin the two against each other.
        //
        // [`live_intervals_fixpoint`]: PlanIr::live_intervals_fixpoint
        if self.nodes.is_empty() {
            return Vec::new();
        }
        let exit = self.nodes.len() - 1;
        let mut out = Vec::new();
        for (i, v) in self.values.iter().enumerate() {
            let start = match v.def {
                ValueDef::Node(d) => Some(d),
                ValueDef::LiveIn => v.uses.iter().copied().min(),
            };
            let Some(start) = start else {
                continue;
            };
            let end = if v.live_out {
                exit
            } else {
                v.uses.iter().copied().max().unwrap_or(start)
            };
            out.push(LiveInterval {
                value: ValueId(i),
                start,
                end: end.max(start),
            });
        }
        out
    }

    /// [`PlanIr::live_intervals`] recomputed by actually running the
    /// backward-liveness fixpoint ([`solve`] + [`Liveness`]) — the
    /// semantic ground truth the closed form is pinned against. Costs
    /// `O(folds × values)` bits of facts; prefer the closed form outside
    /// of verification.
    pub fn live_intervals_fixpoint(&self) -> Vec<LiveInterval> {
        let facts = solve(self, &Liveness { ir: self });
        // One ascending pass: the last node at which a value is live
        // before (or defined at) a fold is its interval end.
        let mut end: Vec<Option<usize>> = vec![None; self.values.len()];
        for (n, node) in self.nodes.iter().enumerate() {
            for &d in &node.defs {
                end[d.0] = Some(n);
            }
            for v in facts[n].before.iter() {
                end[v.0] = Some(n);
            }
        }
        // Live-out values stay live through the boundary at the exit.
        if let Some(exit) = self.nodes.len().checked_sub(1) {
            for (i, v) in self.values.iter().enumerate() {
                if v.live_out {
                    end[i] = Some(exit);
                }
            }
        }
        let mut out = Vec::new();
        for (i, v) in self.values.iter().enumerate() {
            let start = match v.def {
                ValueDef::Node(d) => Some(d),
                ValueDef::LiveIn => v.uses.iter().copied().min(),
            };
            if let (Some(start), Some(end)) = (start, end[i]) {
                out.push(LiveInterval {
                    value: ValueId(i),
                    start,
                    end: end.max(start),
                });
            }
        }
        out
    }

    /// Checks with the forward reaching-definitions fixpoint that every
    /// node-defined value reaches all of its uses — i.e. the dependence
    /// structure is consistent with the schedule. Always true for lifted
    /// plans; mutated IRs (a use scheduled before its def) fail.
    pub fn defs_reach_uses(&self) -> bool {
        let facts = solve(self, &ReachingDefs { ir: self });
        self.nodes.iter().enumerate().all(|(n, node)| {
            node.uses.iter().all(|&vid| match self.values[vid.0].def {
                ValueDef::LiveIn => true,
                ValueDef::Node(_) => facts[n].before.contains(vid),
            })
        })
    }

    /// Node-defined values no fold consumes and that do not escape the
    /// plan: computing them is pure waste. Lifted single plans have none
    /// (operator outputs are live-out); they appear when a consumer edge
    /// claims a tensor the consumer never actually reads, or in mutated
    /// IRs.
    pub fn dead_values(&self) -> Vec<ValueId> {
        self.values
            .iter()
            .enumerate()
            .filter(|(_, v)| matches!(v.def, ValueDef::Node(_)) && v.uses.is_empty() && !v.live_out)
            .map(|(i, _)| ValueId(i))
            .collect()
    }

    /// Whether the dependence edge set contains a cycle. Lifted plans are
    /// acyclic by construction (edges follow tensor flow, which follows
    /// the schedule); a cycle means the plan pair cannot be ordered at
    /// all and fusion — or any schedule — is illegal.
    pub fn has_cycle(&self) -> bool {
        // Iterative DFS three-coloring over dependence successors.
        #[derive(Clone, Copy, PartialEq)]
        enum Color {
            White,
            Grey,
            Black,
        }
        let mut color = vec![Color::White; self.nodes.len()];
        for root in 0..self.nodes.len() {
            if color[root] != Color::White {
                continue;
            }
            // Stack of (node, next-successor-position).
            let mut stack = vec![(root, 0usize)];
            color[root] = Color::Grey;
            while let Some(&mut (n, ref mut pos)) = stack.last_mut() {
                if let Some(&succ) = self.nodes[n].succs.get(*pos) {
                    *pos += 1;
                    match color[succ] {
                        Color::Grey => return true,
                        Color::White => {
                            color[succ] = Color::Grey;
                            stack.push((succ, 0));
                        }
                        Color::Black => {}
                    }
                } else {
                    color[n] = Color::Black;
                    stack.pop();
                }
            }
        }
        false
    }
}

/// Traversal direction of a dataflow analysis.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Direction {
    /// Facts flow with the schedule (entry → exit).
    Forward,
    /// Facts flow against the schedule (exit → entry).
    Backward,
}

/// Per-node result of a dataflow analysis, in *schedule* orientation
/// regardless of direction: `before` holds before the fold executes,
/// `after` holds after it.
#[derive(Debug, Clone)]
pub struct NodeFacts<F> {
    /// Fact holding before the fold executes.
    pub before: F,
    /// Fact holding after the fold executes.
    pub after: F,
}

/// A monotone dataflow problem over a [`PlanIr`] schedule.
///
/// The control-flow graph is the straight-line schedule (fold `i` →
/// fold `i+1`) plus the explicit dependence edges; [`solve`] iterates the
/// transfer/join system to a fixpoint. Transfer and join must be
/// monotone over a finite lattice or the fixpoint may not terminate.
pub trait DataflowProblem {
    /// The lattice element.
    type Fact: Clone + PartialEq;
    /// Traversal direction.
    fn direction(&self) -> Direction;
    /// Bottom element (identity of `join`).
    fn bottom(&self) -> Self::Fact;
    /// Fact at the boundary: schedule entry for forward problems,
    /// schedule exit for backward ones.
    fn boundary(&self) -> Self::Fact;
    /// Least upper bound: merges `from` into `into`.
    fn join(&self, into: &mut Self::Fact, from: &Self::Fact);
    /// Transfer function of one fold. For forward problems `fact` is the
    /// before-fact and the result the after-fact; reversed for backward.
    fn transfer(&self, index: usize, node: &FoldNode, fact: &Self::Fact) -> Self::Fact;
}

/// Runs `problem` to a fixpoint over `ir`, returning per-node facts in
/// schedule orientation.
pub fn solve<P: DataflowProblem>(ir: &PlanIr, problem: &P) -> Vec<NodeFacts<P::Fact>> {
    let n = ir.nodes.len();
    let mut facts: Vec<NodeFacts<P::Fact>> = (0..n)
        .map(|_| NodeFacts {
            before: problem.bottom(),
            after: problem.bottom(),
        })
        .collect();
    if n == 0 {
        return facts;
    }
    let forward = problem.direction() == Direction::Forward;
    loop {
        let mut changed = false;
        let order: Box<dyn Iterator<Item = usize>> = if forward {
            Box::new(0..n)
        } else {
            Box::new((0..n).rev())
        };
        for i in order {
            if forward {
                let mut before = if i == 0 {
                    problem.boundary()
                } else {
                    problem.bottom()
                };
                if i > 0 {
                    problem.join(&mut before, &facts[i - 1].after);
                }
                for &p in &ir.nodes[i].preds {
                    problem.join(&mut before, &facts[p].after);
                }
                let after = problem.transfer(i, &ir.nodes[i], &before);
                if before != facts[i].before || after != facts[i].after {
                    changed = true;
                }
                facts[i] = NodeFacts { before, after };
            } else {
                let mut after = if i + 1 == n {
                    problem.boundary()
                } else {
                    problem.bottom()
                };
                if i + 1 < n {
                    problem.join(&mut after, &facts[i + 1].before);
                }
                for &s in &ir.nodes[i].succs {
                    problem.join(&mut after, &facts[s].before);
                }
                let before = problem.transfer(i, &ir.nodes[i], &after);
                if before != facts[i].before || after != facts[i].after {
                    changed = true;
                }
                facts[i] = NodeFacts { before, after };
            }
        }
        if !changed {
            return facts;
        }
    }
}

/// Dense bit set over [`ValueId`]s — the fact domain of the shipped
/// analyses.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ValueSet {
    bits: Vec<u64>,
}

impl ValueSet {
    /// The empty set over a universe of `universe` values.
    pub fn empty(universe: usize) -> ValueSet {
        ValueSet {
            bits: vec![0; universe.div_ceil(64)],
        }
    }

    /// Inserts a value; returns whether the set changed.
    pub fn insert(&mut self, v: ValueId) -> bool {
        let (word, bit) = (v.0 / 64, 1u64 << (v.0 % 64));
        let had = self.bits[word] & bit != 0;
        self.bits[word] |= bit;
        !had
    }

    /// Removes a value.
    pub fn remove(&mut self, v: ValueId) {
        self.bits[v.0 / 64] &= !(1u64 << (v.0 % 64));
    }

    /// Membership test.
    pub fn contains(&self, v: ValueId) -> bool {
        self.bits
            .get(v.0 / 64)
            .is_some_and(|w| w & (1u64 << (v.0 % 64)) != 0)
    }

    /// In-place union.
    pub fn union_with(&mut self, other: &ValueSet) {
        for (a, b) in self.bits.iter_mut().zip(&other.bits) {
            *a |= b;
        }
    }

    /// Iterates the members in ascending order.
    pub fn iter(&self) -> impl Iterator<Item = ValueId> + '_ {
        self.bits.iter().enumerate().flat_map(|(w, &word)| {
            (0..64)
                .filter(move |b| word & (1u64 << b) != 0)
                .map(move |b| ValueId(w * 64 + b))
        })
    }

    /// Number of members.
    pub fn len(&self) -> usize {
        self.bits.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.bits.iter().all(|&w| w == 0)
    }
}

/// Backward liveness: a value is live before a fold if the fold uses it,
/// or if it is live after the fold and the fold does not define it. The
/// boundary (schedule exit) keeps every live-out value alive.
pub struct Liveness<'a> {
    /// The IR being analyzed.
    pub ir: &'a PlanIr,
}

impl DataflowProblem for Liveness<'_> {
    type Fact = ValueSet;

    fn direction(&self) -> Direction {
        Direction::Backward
    }

    fn bottom(&self) -> ValueSet {
        ValueSet::empty(self.ir.values().len())
    }

    fn boundary(&self) -> ValueSet {
        let mut s = self.bottom();
        for (i, v) in self.ir.values().iter().enumerate() {
            if v.live_out {
                s.insert(ValueId(i));
            }
        }
        s
    }

    fn join(&self, into: &mut ValueSet, from: &ValueSet) {
        into.union_with(from);
    }

    fn transfer(&self, _index: usize, node: &FoldNode, after: &ValueSet) -> ValueSet {
        let mut before = after.clone();
        for &d in &node.defs {
            before.remove(d);
        }
        for &u in &node.uses {
            before.insert(u);
        }
        before
    }
}

/// Forward reaching definitions: the set of values whose definition has
/// executed by a given schedule point. Live-in values reach from the
/// boundary; node-defined values join after their defining fold. Single
/// assignment (every value has exactly one def) means there are no kills.
pub struct ReachingDefs<'a> {
    /// The IR being analyzed.
    pub ir: &'a PlanIr,
}

impl DataflowProblem for ReachingDefs<'_> {
    type Fact = ValueSet;

    fn direction(&self) -> Direction {
        Direction::Forward
    }

    fn bottom(&self) -> ValueSet {
        ValueSet::empty(self.ir.values().len())
    }

    fn boundary(&self) -> ValueSet {
        let mut s = self.bottom();
        for (i, v) in self.ir.values().iter().enumerate() {
            if v.def == ValueDef::LiveIn {
                s.insert(ValueId(i));
            }
        }
        s
    }

    fn join(&self, into: &mut ValueSet, from: &ValueSet) {
        into.union_with(from);
    }

    fn transfer(&self, _index: usize, node: &FoldNode, before: &ValueSet) -> ValueSet {
        let mut after = before.clone();
        for &d in &node.defs {
            after.insert(d);
        }
        after
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::audit::plan_high_water;
    use crate::LatencyModel;
    use fuseconv_nn::ops::{Axis1d, Op};
    use fuseconv_systolic::ArrayConfig;

    fn model() -> LatencyModel {
        LatencyModel::new(
            ArrayConfig::square(8)
                .expect("nonzero side")
                .with_broadcast(true),
        )
    }

    fn plan_of(op: &Op) -> Vec<FoldSpec> {
        model().fold_plan(op).expect("op plans")
    }

    #[test]
    fn lift_lower_is_identity() {
        for op in [
            Op::conv2d(14, 14, 8, 24, 3, 1, 1),
            Op::depthwise(9, 9, 6, 3, 1, 1),
            Op::pointwise(7, 7, 12, 20),
            Op::fuse1d(12, 12, 5, 3, 1, 1, Axis1d::Row),
            Op::fc(100, 37),
        ] {
            let plan = plan_of(&op);
            let ir = PlanIr::from_plan(&plan);
            assert_eq!(ir.lower(), plan, "{op}");
            assert_eq!(ir.nodes().len(), plan.len());
        }
    }

    #[test]
    fn lower_tagged_stamps_every_fold() {
        let ir = PlanIr::from_plan(&plan_of(&Op::pointwise(7, 7, 12, 20)));
        assert!(ir.lower_tagged(9).iter().all(|f| f.tag == 9));
    }

    #[test]
    fn high_water_equals_plan_high_water() {
        for op in [
            Op::conv2d(14, 14, 8, 24, 3, 1, 1),
            Op::depthwise(9, 9, 6, 3, 1, 1),
            Op::fuse1d(7, 7, 9, 5, 1, 2, Axis1d::Col),
            Op::fc(100, 37),
        ] {
            let plan = plan_of(&op);
            let ir = PlanIr::from_plan(&plan);
            assert_eq!(ir.high_water(), plan_high_water(&plan), "{op}");
        }
    }

    #[test]
    fn single_plan_values_live_only_at_their_fold() {
        let plan = plan_of(&Op::pointwise(20, 1, 12, 20));
        let ir = PlanIr::from_plan(&plan);
        for iv in ir.live_intervals() {
            let v = ir.value(iv.value);
            // Live-in operands span exactly their fold; live-out outputs
            // persist from their fold to the schedule exit.
            assert_eq!(iv.start, v.staged_at);
            if v.live_out {
                assert_eq!(iv.end, ir.nodes().len() - 1);
            } else {
                assert_eq!(iv.end, v.staged_at);
            }
        }
    }

    #[test]
    fn pair_has_dependences_and_intermediates() {
        let producer = plan_of(&Op::depthwise(9, 9, 6, 3, 1, 1));
        let consumer = plan_of(&Op::pointwise(9, 9, 6, 12));
        let ir = PlanIr::from_pair(&producer, &consumer);
        assert_eq!(ir.nodes().len(), producer.len() + consumer.len());
        // Every producer fold carries a dependence edge to the earliest
        // consumer fold (program order chains the rest), and every
        // producer output tile records its consumer read span.
        let (first_c, last_c) = (producer.len(), ir.nodes().len() - 1);
        for n in 0..producer.len() {
            assert_eq!(ir.nodes()[n].succs, vec![first_c]);
            for &vid in &ir.nodes()[n].defs {
                if ir.value(vid).class == ValueClass::Ofmap {
                    assert_eq!(ir.value(vid).uses, vec![first_c, last_c]);
                }
            }
        }
        assert!(!ir.has_cycle());
        assert!(ir.defs_reach_uses());
        assert!(ir.dead_values().is_empty());
        // Intermediates = producer ofmaps + consumer ifmaps.
        assert_eq!(ir.intermediates().len(), producer.len() + consumer.len());
        // The intermediate's live interval spans producer def to last
        // consumer use.
        let intervals = ir.live_intervals();
        for &vid in ir.intermediates() {
            let v = ir.value(vid);
            if v.class == ValueClass::Ofmap {
                let iv = intervals
                    .iter()
                    .find(|iv| iv.value == vid)
                    .expect("intermediate is live");
                assert_eq!(iv.start, v.staged_at);
                assert_eq!(iv.end, ir.nodes().len() - 1);
            }
        }
    }

    #[test]
    fn dropping_intermediates_prices_the_fused_working_set() {
        let producer = plan_of(&Op::fuse1d(12, 12, 5, 3, 1, 1, Axis1d::Row));
        let consumer = plan_of(&Op::pointwise(12, 12, 10, 20));
        let ir = PlanIr::from_pair(&producer, &consumer);
        let base = ir.high_water();
        let fused = ir.high_water_without(ir.intermediates());
        assert!(fused.ifmap_elems <= base.ifmap_elems);
        assert!(fused.filter_elems <= base.filter_elems);
        assert!(fused.ofmap_elems <= base.ofmap_elems);
        // The baseline matches the flat concatenated plan exactly…
        let mut concat = producer.clone();
        concat.extend(consumer.iter().copied());
        assert_eq!(base, plan_high_water(&concat));
        // …and the fused figure equals the same plan with the producer's
        // output stream and the consumer's input stream zeroed out — the
        // intermediate never staged in SRAM.
        let expected = producer
            .iter()
            .map(|f| {
                let mut fp = fold_footprint(f);
                fp.ofmap_elems = 0;
                fp
            })
            .chain(consumer.iter().map(|f| {
                let mut fp = fold_footprint(f);
                fp.ifmap_elems = 0;
                fp
            }))
            .fold(FoldFootprint::default(), FoldFootprint::max);
        assert_eq!(fused, expected);
    }

    #[test]
    fn back_edge_makes_a_cycle() {
        let producer = plan_of(&Op::depthwise(9, 9, 6, 3, 1, 1));
        let mut ir = PlanIr::from_pair(&producer, &plan_of(&Op::pointwise(9, 9, 6, 12)));
        assert!(!ir.has_cycle());
        // The first consumer fold already depends on every producer fold;
        // a reverse edge closes a mutual dependence no schedule satisfies.
        ir.add_dependence(producer.len(), 0);
        assert!(ir.has_cycle());
    }

    #[test]
    fn empty_consumer_leaves_dead_producer_outputs() {
        let producer = plan_of(&Op::depthwise(9, 9, 6, 3, 1, 1));
        let ir = PlanIr::from_pair(&producer, &[]);
        // The edge strips live-out but attaches no uses: every producer
        // output tile is dead.
        assert_eq!(ir.dead_values().len(), producer.len());
    }

    #[test]
    fn intervals_agree_with_the_fixpoint() {
        let producer = plan_of(&Op::depthwise(9, 9, 6, 3, 1, 1));
        let consumer = plan_of(&Op::pointwise(9, 9, 6, 12));
        for ir in [
            PlanIr::from_plan(&plan_of(&Op::conv2d(14, 14, 8, 24, 3, 1, 1))),
            PlanIr::from_plan(&plan_of(&Op::fuse1d(12, 12, 5, 3, 1, 1, Axis1d::Col))),
            PlanIr::from_pair(&producer, &consumer),
            PlanIr::from_pair(&producer, &[]),
        ] {
            assert_eq!(ir.live_intervals(), ir.live_intervals_fixpoint());
        }
    }

    #[test]
    fn value_set_operations() {
        let mut s = ValueSet::empty(130);
        assert!(s.is_empty());
        assert!(s.insert(ValueId(0)));
        assert!(s.insert(ValueId(129)));
        assert!(!s.insert(ValueId(129)));
        assert!(s.contains(ValueId(129)) && !s.contains(ValueId(64)));
        assert_eq!(s.len(), 2);
        let collected: Vec<ValueId> = s.iter().collect();
        assert_eq!(collected, vec![ValueId(0), ValueId(129)]);
        s.remove(ValueId(0));
        assert_eq!(s.len(), 1);
        let mut t = ValueSet::empty(130);
        t.insert(ValueId(7));
        t.union_with(&s);
        assert!(t.contains(ValueId(7)) && t.contains(ValueId(129)));
    }
}

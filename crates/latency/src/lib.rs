//! SCALE-Sim-style analytical latency model for systolic arrays (§V-A-3).
//!
//! Following the paper's methodology, performance is assumed to be limited
//! only by operations on the array: the model adds up the time to load
//! values into the array, compute in the MACs, systolically communicate
//! partials, and flush outputs. Off-chip memory is not modelled.
//!
//! Every operator descriptor ([`Op`](fuseconv_nn::ops::Op)) is lowered to a
//! sequence of array folds:
//!
//! | operator | lowering | fold shape |
//! |---|---|---|
//! | standard conv | `im2col` GEMM | `M = OH·OW`, `K = k²·C_in`, `N = C_out` |
//! | depthwise conv | per-channel `im2col` GEMM | `M = OH·OW`, `K = k²`, `N = 1` (×C folds — the single-column pathology of §III-B) |
//! | pointwise conv | GEMM | `M = OH·OW`, `K = C_in`, `N = C_out` |
//! | FuSe 1-D bank | row-broadcast dataflow | `#convs = C·out_lines`, `L_out`, `K` |
//! | fully connected | GEMM | `M = 1`, `K = in`, `N = out` |
//!
//! The closed-form cycle counts come from
//! [`fuseconv_systolic::gemm::analytic_cycles`] and
//! [`fuseconv_systolic::conv1d::analytic_cycles`], which are validated
//! against the cycle-level simulator; this crate therefore inherits exact
//! agreement with simulation.
//!
//! # Examples
//!
//! ```
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! use fuseconv_latency::{estimate_network, LatencyModel};
//! use fuseconv_models::zoo;
//! use fuseconv_nn::FuSeVariant;
//! use fuseconv_systolic::ArrayConfig;
//!
//! let model = LatencyModel::new(ArrayConfig::square(64)?.with_broadcast(true));
//! let baseline = estimate_network(&model, &zoo::mobilenet_v1())?;
//! let fused = estimate_network(
//!     &model,
//!     &zoo::mobilenet_v1().transform_all(FuSeVariant::Half),
//! )?;
//! assert!(fused.total_cycles < baseline.total_cycles);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod audit;
pub mod ir;
pub mod map;
pub mod memory;
pub mod plan;
pub mod report;

pub use audit::{audit_plan, fold_footprint, plan_high_water, FoldFootprint, PlanViolation};
pub use ir::{
    solve, DataflowProblem, Direction, FoldNode, LiveInterval, Liveness, NodeFacts, PlanIr,
    ReachingDefs, ValueClass, ValueDef, ValueId, ValueInfo, ValueSet,
};
pub use map::{Dataflow, FoldOverlap, LatencyError, LatencyModel};
pub use report::{
    block_speedups, estimate_network, BlockLatency, ClassBreakdown, NetworkLatency, OpLatency,
};

//! Lowering of operator descriptors to array cycle counts.

use fuseconv_nn::ops::{Axis1d, Op};
use fuseconv_systolic::{conv1d, gemm, is_gemm, ws_gemm, ArrayConfig};
use std::error::Error;
use std::fmt;

/// Error produced by the latency model.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum LatencyError {
    /// A FuSeConv operator was estimated on an array without the row
    /// weight-broadcast links its dataflow requires (§IV-C-1).
    BroadcastRequired {
        /// The offending operator, pretty-printed.
        op: String,
    },
    /// An operator had degenerate (zero-sized) dimensions.
    DegenerateOp {
        /// The offending operator, pretty-printed.
        op: String,
    },
}

impl fmt::Display for LatencyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LatencyError::BroadcastRequired { op } => write!(
                f,
                "operator `{op}` requires an array with row-broadcast links"
            ),
            LatencyError::DegenerateOp { op } => {
                write!(f, "operator `{op}` has zero-sized dimensions")
            }
        }
    }
}

impl Error for LatencyError {}

/// Which systolic dataflow executes GEMM-lowered operators.
///
/// The paper evaluates output-stationary only (§V-A-3); weight-stationary
/// is provided for the ablation study. FuSeConv's broadcast dataflow is
/// orthogonal and unaffected by this choice.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Dataflow {
    /// Output-stationary: outputs accumulate in the PEs; the reduction
    /// dimension is temporal. The paper's setting and the default.
    #[default]
    OutputStationary,
    /// Weight-stationary: a weight tile is pinned in the PEs; the output
    /// rows stream through.
    WeightStationary,
    /// Input-stationary: an activation tile is pinned in the PEs; the
    /// weight columns stream through.
    InputStationary,
}

/// How consecutive folds of one operator share the array in time.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum FoldOverlap {
    /// Folds run back to back with no overlap: every fold pays its full
    /// load + compute + drain cost. This matches the cycle-level simulator
    /// exactly and is the default.
    #[default]
    Serial,
    /// Double-buffered PEs: a fold's drain and the next fold's operand
    /// fill overlap, so each fold after the first pays only its fill +
    /// compute window. An idealization used for the ablation study — real
    /// arrays land between the two modes.
    DoubleBuffered,
}

/// The analytical latency model: an array configuration plus the lowering
/// rules in the crate docs.
///
/// # Examples
///
/// ```
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// use fuseconv_latency::LatencyModel;
/// use fuseconv_nn::ops::Op;
/// use fuseconv_systolic::ArrayConfig;
///
/// let model = LatencyModel::new(ArrayConfig::square(64)?);
/// let dw = Op::depthwise(56, 56, 128, 3, 1, 1);
/// let pw = Op::pointwise(56, 56, 128, 128);
/// // Depthwise has ~9x fewer MACs than this pointwise…
/// assert!(dw.macs() * 9 < pw.macs() + dw.macs());
/// // …but takes far longer on the array (§III-B).
/// assert!(model.cycles(&dw)? > model.cycles(&pw)?);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LatencyModel {
    array: ArrayConfig,
    overlap: FoldOverlap,
    dataflow: Dataflow,
    batch: usize,
}

impl LatencyModel {
    /// Creates a model for the given array with [`FoldOverlap::Serial`]
    /// fold accounting.
    pub fn new(array: ArrayConfig) -> Self {
        LatencyModel {
            array,
            overlap: FoldOverlap::Serial,
            dataflow: Dataflow::OutputStationary,
            batch: 1,
        }
    }

    /// Sets the inference batch size (default 1, the paper's edge
    /// setting). Batched images contribute additional GEMM rows / 1-D
    /// lines; the estimate is for the whole batch.
    ///
    /// # Panics
    ///
    /// Panics if `batch == 0`.
    #[must_use]
    pub fn with_batch(mut self, batch: usize) -> Self {
        assert!(batch > 0, "batch must be nonzero");
        self.batch = batch;
        self
    }

    /// The inference batch size.
    pub fn batch(&self) -> usize {
        self.batch
    }

    /// Selects the dataflow used for GEMM-lowered operators.
    #[must_use]
    pub fn with_dataflow(mut self, dataflow: Dataflow) -> Self {
        self.dataflow = dataflow;
        self
    }

    /// The dataflow used for GEMM-lowered operators.
    pub fn dataflow(&self) -> Dataflow {
        self.dataflow
    }

    /// Selects the fold-overlap accounting mode.
    #[must_use]
    pub fn with_overlap(mut self, overlap: FoldOverlap) -> Self {
        self.overlap = overlap;
        self
    }

    /// The array configuration.
    pub fn array(&self) -> &ArrayConfig {
        &self.array
    }

    /// The fold-overlap accounting mode.
    pub fn overlap(&self) -> FoldOverlap {
        self.overlap
    }

    /// GEMM cycles under the configured dataflow and overlap mode.
    fn gemm_cycles(&self, m: usize, k: usize, n: usize) -> u64 {
        match (self.dataflow, self.overlap) {
            (Dataflow::OutputStationary, FoldOverlap::Serial) => {
                gemm::analytic_cycles(&self.array, m, k, n)
            }
            (Dataflow::WeightStationary, FoldOverlap::Serial) => {
                ws_gemm::analytic_cycles(&self.array, m, k, n)
            }
            (Dataflow::InputStationary, FoldOverlap::Serial) => {
                is_gemm::analytic_cycles(&self.array, m, k, n)
            }
            (Dataflow::InputStationary, FoldOverlap::DoubleBuffered) => {
                // Mirror of the weight-stationary treatment: the next
                // tile's input preload overlaps the current drain.
                let mut total = self.array.cols().min(k) as u64;
                for m0 in (0..m).step_by(self.array.rows()) {
                    let ru = self.array.rows().min(m - m0);
                    for k0 in (0..k).step_by(self.array.cols()) {
                        let cu = self.array.cols().min(k - k0);
                        total += (n + ru + cu - 2) as u64;
                    }
                }
                total
            }
            (Dataflow::OutputStationary, FoldOverlap::DoubleBuffered) => {
                // Each fold pays fill + compute (ru + cu + k − 2); drains
                // overlap the next fold's fill, except the final one.
                let mut total = 0u64;
                let mut last_ru = 0u64;
                for row0 in (0..m).step_by(self.array.rows()) {
                    let ru = self.array.rows().min(m - row0);
                    for col0 in (0..n).step_by(self.array.cols()) {
                        let cu = self.array.cols().min(n - col0);
                        total += (ru + cu + k - 2) as u64;
                        last_ru = ru as u64;
                    }
                }
                total + last_ru
            }
            (Dataflow::WeightStationary, FoldOverlap::DoubleBuffered) => {
                // The next tile's weight preload overlaps the current
                // fold's drain; each fold pays its streaming window only,
                // plus the first preload.
                let mut total = self.array.rows().min(k) as u64;
                for k0 in (0..k).step_by(self.array.rows()) {
                    let ru = self.array.rows().min(k - k0);
                    for n0 in (0..n).step_by(self.array.cols()) {
                        let cu = self.array.cols().min(n - n0);
                        total += (m + ru + cu - 2) as u64;
                    }
                }
                total
            }
        }
    }

    /// Packed 1-D convolution cycles under the configured overlap mode.
    fn fuse_cycles(&self, channels: usize, lines: usize, l_out: usize, k: usize) -> u64 {
        match self.overlap {
            FoldOverlap::Serial => {
                conv1d::analytic_cycles_packed(&self.array, channels, lines, l_out, k)
            }
            FoldOverlap::DoubleBuffered => {
                // Per fold: fill + broadcast compute; final fold also drains.
                let cols = self.array.cols();
                let lpr = conv1d::lines_per_row(&self.array, channels, lines, l_out, k);
                let slots_per_channel = lines.div_ceil(lpr);
                let n_slots = channels * slots_per_channel;
                let mut total = 0u64;
                let mut last_ru = 0u64;
                for slot0 in (0..n_slots).step_by(self.array.rows()) {
                    let ru = self.array.rows().min(n_slots - slot0);
                    if lpr == 1 {
                        for c0 in (0..l_out).step_by(cols) {
                            let cw = cols.min(l_out - c0);
                            total += ((cw + k - 1) + k) as u64;
                            last_ru = ru as u64;
                        }
                    } else {
                        total += ((lpr * l_out + k - 1) + k) as u64;
                        last_ru = ru as u64;
                    }
                }
                total + last_ru
            }
        }
    }

    /// Estimated cycles for one operator.
    ///
    /// # Errors
    ///
    /// Returns [`LatencyError::BroadcastRequired`] for a FuSe operator on a
    /// broadcast-less array and [`LatencyError::DegenerateOp`] for
    /// zero-sized work.
    pub fn cycles(&self, op: &Op) -> Result<u64, LatencyError> {
        let (oh, ow, _) = op.output_shape();
        match *op {
            Op::Conv2d { in_c, out_c, k, .. } => {
                let m = oh * ow * self.batch;
                let kdim = k * k * in_c;
                check_nonzero(op, &[m, kdim, out_c])?;
                Ok(self.gemm_cycles(m, kdim, out_c))
            }
            Op::Depthwise { c, k, .. } => {
                let m = oh * ow * self.batch;
                check_nonzero(op, &[m, k * k, c])?;
                // One single-column GEMM per channel: no reuse across
                // channels, one array column used (§III-B). Batching adds
                // rows but never a second column — it cannot rescue
                // depthwise utilization.
                Ok(c as u64 * self.gemm_cycles(m, k * k, 1))
            }
            Op::Pointwise { in_c, out_c, .. } => {
                let m = oh * ow * self.batch;
                check_nonzero(op, &[m, in_c, out_c])?;
                Ok(self.gemm_cycles(m, in_c, out_c))
            }
            Op::FuSe1d { c, k, axis, .. } => {
                if !self.array.has_broadcast() {
                    return Err(LatencyError::BroadcastRequired { op: op.to_string() });
                }
                // Each surviving output line of each channel is one
                // independent 1-D convolution (Fig. 6's slicing); lines of
                // the same channel share their kernel and can pack side by
                // side within an array row.
                let (lines, l_out) = match axis {
                    Axis1d::Row => (oh, ow),
                    Axis1d::Col => (ow, oh),
                };
                check_nonzero(op, &[c, lines, l_out, k])?;
                Ok(self.fuse_cycles(c, lines, l_out, k))
            }
            Op::Fc {
                in_features,
                out_features,
            } => {
                check_nonzero(op, &[in_features, out_features])?;
                Ok(self.gemm_cycles(1, in_features, out_features))
            }
        }
    }
}

fn check_nonzero(op: &Op, dims: &[usize]) -> Result<(), LatencyError> {
    if dims.contains(&0) {
        Err(LatencyError::DegenerateOp { op: op.to_string() })
    } else {
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fuseconv_nn::FuSeVariant;
    use fuseconv_systolic::ConfigError;
    use fuseconv_tensor::Tensor;

    fn array64() -> ArrayConfig {
        ArrayConfig::square(64).unwrap().with_broadcast(true)
    }

    #[test]
    fn depthwise_uses_single_column_pathology() {
        let model = LatencyModel::new(array64());
        // Same MAC budget: 64 channels of 3x3 depthwise on 56x56 vs a
        // pointwise with identical MACs (in_c=9).
        let dw = Op::depthwise(56, 56, 64, 3, 1, 1);
        let pw = Op::pointwise(56, 56, 9, 64);
        assert_eq!(dw.macs(), pw.macs());
        let (dwc, pwc) = (model.cycles(&dw).unwrap(), model.cycles(&pw).unwrap());
        assert!(
            dwc > 10 * pwc,
            "depthwise {dwc} should be >10x pointwise {pwc} at equal MACs"
        );
    }

    #[test]
    fn fuse_beats_depthwise_it_replaces() {
        let model = LatencyModel::new(array64());
        for (h, c, k, s) in [(112, 64, 3, 1), (56, 128, 3, 2), (14, 512, 5, 1)] {
            let dw = Op::depthwise(h, h, c, k, s, k / 2);
            // Half variant: row+col banks on c/2 channels each.
            let row = Op::fuse1d(h, h, c / 2, k, s, k / 2, Axis1d::Row);
            let col = Op::fuse1d(h, h, c / 2, k, s, k / 2, Axis1d::Col);
            let dwc = model.cycles(&dw).unwrap();
            let fc = model.cycles(&row).unwrap() + model.cycles(&col).unwrap();
            assert!(
                fc * 3 < dwc,
                "fuse {fc} should be >3x faster than depthwise {dwc} (h={h} c={c} k={k} s={s})"
            );
        }
    }

    #[test]
    fn fuse_requires_broadcast() {
        let plain = LatencyModel::new(ArrayConfig::square(64).unwrap());
        let op = Op::fuse1d(56, 56, 32, 3, 1, 1, Axis1d::Row);
        assert!(matches!(
            plain.cycles(&op),
            Err(LatencyError::BroadcastRequired { .. })
        ));
    }

    #[test]
    fn analytic_matches_cycle_simulation_for_gemm_ops() {
        // Estimate a small pointwise op, then run the actual simulator on
        // the equivalent GEMM and compare cycles exactly.
        let cfg = ArrayConfig::new(5, 7).unwrap().with_broadcast(true);
        let model = LatencyModel::new(cfg);
        let op = Op::pointwise(4, 3, 6, 9); // M=12, K=6, N=9
        let est = model.cycles(&op).unwrap();
        let a = Tensor::full(&[12, 6], 1.0).unwrap();
        let b = Tensor::full(&[6, 9], 1.0).unwrap();
        let sim = gemm::simulate(&cfg, &a, &b).unwrap();
        assert_eq!(est, sim.cycles());
    }

    #[test]
    fn analytic_matches_cycle_simulation_for_fuse_ops() -> Result<(), ConfigError> {
        let cfg = ArrayConfig::new(4, 6)?.with_broadcast(true);
        let model = LatencyModel::new(cfg);
        // Stride-1 row bank: c=3 channels on a 5x8 map, k=3 → 15 convs of
        // l_out 6.
        let op = Op::fuse1d(5, 8, 3, 3, 1, 1, Axis1d::Row);
        let est = model.cycles(&op).unwrap();
        // 3 channels × 5 lines. Padding 1 makes each line 10 long, so
        // l_out = 10 − 3 + 1 = 8, matching the descriptor's ow.
        let work: Vec<conv1d::ChannelLines> = (0..3)
            .map(|_| conv1d::ChannelLines {
                kernel: vec![1.0; 3],
                lines: (0..5).map(|_| vec![1.0; 10]).collect(),
            })
            .collect();
        let sim = conv1d::simulate_packed(&cfg, &work)?;
        assert_eq!(est, sim.cycles());
        Ok(())
    }

    #[test]
    fn strided_fuse_counts_surviving_lines_only() {
        let model = LatencyModel::new(array64());
        let s1 = Op::fuse1d(112, 112, 32, 3, 1, 1, Axis1d::Row);
        let s2 = Op::fuse1d(112, 112, 32, 3, 2, 1, Axis1d::Row);
        // Stride 2 processes half the lines and half the positions: at
        // least ~3x cheaper.
        let (c1, c2) = (model.cycles(&s1).unwrap(), model.cycles(&s2).unwrap());
        assert!(c2 * 3 < c1, "stride-2 {c2} vs stride-1 {c1}");
    }

    #[test]
    fn fc_uses_single_row() {
        // M = 1: only one array row active; cycles dominated by K.
        let model = LatencyModel::new(array64());
        let op = Op::fc(1024, 1000);
        let cycles = model.cycles(&op).unwrap();
        // 15 full column tiles of 64 plus a 40-wide remainder tile:
        // 15 × (2 + 64 + 1024 − 2) + (2 + 40 + 1024 − 2).
        assert_eq!(cycles, 15 * (2 + 64 + 1024 - 2) + (2 + 40 + 1024 - 2));
    }

    #[test]
    fn full_and_half_variant_op_sets_order_correctly() {
        // For the same block, Half's bank pair is cheaper than Full's.
        let model = LatencyModel::new(array64());
        let mk = |variant: FuSeVariant| -> u64 {
            let per_bank = 128 / variant.d();
            let row = Op::fuse1d(28, 28, per_bank, 3, 1, 1, Axis1d::Row);
            let col = Op::fuse1d(28, 28, per_bank, 3, 1, 1, Axis1d::Col);
            model.cycles(&row).unwrap() + model.cycles(&col).unwrap()
        };
        assert!(mk(FuSeVariant::Half) < mk(FuSeVariant::Full));
    }

    #[test]
    fn larger_arrays_never_slower() {
        let ops = [
            Op::conv2d(56, 56, 32, 64, 3, 1, 1),
            Op::depthwise(56, 56, 64, 3, 1, 1),
            Op::pointwise(28, 28, 96, 160),
            Op::fuse1d(56, 56, 32, 3, 1, 1, Axis1d::Col),
            Op::fc(512, 1000),
        ];
        for op in ops {
            let mut prev = u64::MAX;
            for s in [8usize, 16, 32, 64, 128] {
                let m = LatencyModel::new(ArrayConfig::square(s).unwrap().with_broadcast(true));
                let c = m.cycles(&op).unwrap();
                assert!(
                    c <= prev,
                    "{op}: cycles increased from {prev} to {c} at size {s}"
                );
                prev = c;
            }
        }
    }

    #[test]
    fn dataflow_ablation_preserves_fuse_advantage() {
        // Under either dataflow for the GEMM-lowered ops, FuSe networks
        // still beat their baselines — the paper's conclusion is not an
        // artifact of the output-stationary choice.
        use crate::map::Dataflow;
        for dataflow in [Dataflow::OutputStationary, Dataflow::WeightStationary] {
            let model = LatencyModel::new(array64()).with_dataflow(dataflow);
            let dw = Op::depthwise(56, 56, 128, 3, 1, 1);
            let row = Op::fuse1d(56, 56, 64, 3, 1, 1, Axis1d::Row);
            let col = Op::fuse1d(56, 56, 64, 3, 1, 1, Axis1d::Col);
            let dwc = model.cycles(&dw).unwrap();
            let fc = model.cycles(&row).unwrap() + model.cycles(&col).unwrap();
            assert!(fc < dwc, "{dataflow:?}: fuse {fc} vs dw {dwc}");
        }
    }

    #[test]
    fn input_stationary_wins_for_wide_pointwise() {
        use crate::map::Dataflow;
        // A pointwise layer at 7x7 with few pixels but many output
        // channels: the input tile fits, the filters stream once.
        let op = Op::pointwise(7, 7, 64, 1280);
        let os = LatencyModel::new(array64());
        let is = LatencyModel::new(array64()).with_dataflow(Dataflow::InputStationary);
        assert!(is.cycles(&op).unwrap() < os.cycles(&op).unwrap());
        // Double-buffered input-stationary is never slower than serial.
        let is_db = is.with_overlap(crate::map::FoldOverlap::DoubleBuffered);
        assert!(is_db.cycles(&op).unwrap() <= is.cycles(&op).unwrap());
    }

    #[test]
    fn weight_stationary_trades_differently_than_output_stationary() {
        use crate::map::Dataflow;
        let os = LatencyModel::new(array64());
        let ws = LatencyModel::new(array64()).with_dataflow(Dataflow::WeightStationary);
        // Depthwise (tall-skinny GEMMs): WS streams pixels once per channel
        // and wins.
        let dw = Op::depthwise(56, 56, 128, 3, 1, 1);
        assert!(ws.cycles(&dw).unwrap() < os.cycles(&dw).unwrap());
        // FC (deep reduction, M = 1): OS wins.
        let fc = Op::fc(1024, 1000);
        assert!(os.cycles(&fc).unwrap() < ws.cycles(&fc).unwrap());
        // Accessors round-trip.
        assert_eq!(ws.dataflow(), Dataflow::WeightStationary);
        assert_eq!(os.dataflow(), Dataflow::OutputStationary);
    }

    #[test]
    fn ws_double_buffering_is_cheaper_than_ws_serial() {
        use crate::map::{Dataflow, FoldOverlap};
        let serial = LatencyModel::new(array64()).with_dataflow(Dataflow::WeightStationary);
        let piped = serial.with_overlap(FoldOverlap::DoubleBuffered);
        // Multi-fold ops overlap strictly; a single-fold op (the stem
        // conv: k = 27 ≤ rows, n = 32 ≤ cols) has nothing to overlap and
        // costs the same.
        for op in [Op::pointwise(28, 28, 192, 64), Op::fc(512, 1000)] {
            assert!(
                piped.cycles(&op).unwrap() < serial.cycles(&op).unwrap(),
                "{op}"
            );
        }
        let stem = Op::conv2d(112, 112, 3, 32, 3, 2, 1);
        assert_eq!(piped.cycles(&stem).unwrap(), serial.cycles(&stem).unwrap());
    }

    #[test]
    fn double_buffering_is_cheaper_but_preserves_ordering() {
        use crate::map::FoldOverlap;
        let serial = LatencyModel::new(array64());
        let piped = LatencyModel::new(array64()).with_overlap(FoldOverlap::DoubleBuffered);
        let ops = [
            Op::conv2d(112, 112, 3, 32, 3, 2, 1),
            Op::depthwise(56, 56, 128, 3, 1, 1),
            Op::pointwise(28, 28, 192, 64),
            Op::fuse1d(56, 56, 64, 3, 1, 1, Axis1d::Row),
            Op::fuse1d(7, 7, 960, 5, 1, 2, Axis1d::Col),
            Op::fc(1280, 1000),
        ];
        for op in &ops {
            let s = serial.cycles(op).unwrap();
            let p = piped.cycles(op).unwrap();
            assert!(p < s, "{op}: double-buffered {p} not below serial {s}");
            // Overlap can at best halve the time of any single op here.
            assert!(p * 3 > s, "{op}: {p} suspiciously below {s}");
        }
        // The depthwise-vs-fuse ordering that drives the paper's result is
        // insensitive to the overlap mode.
        for model in [serial, piped] {
            let dw = model.cycles(&ops[1]).unwrap();
            let fuse = model.cycles(&ops[3]).unwrap() * 2;
            assert!(fuse < dw);
        }
    }

    #[test]
    fn error_display() {
        let e = LatencyError::BroadcastRequired {
            op: "fuse 1x3".into(),
        };
        assert!(e.to_string().contains("broadcast"));
    }
}

#[cfg(test)]
mod batch_tests {
    use super::*;
    use fuseconv_nn::ops::Op;
    use fuseconv_systolic::ArrayConfig;

    fn model(batch: usize) -> LatencyModel {
        LatencyModel::new(ArrayConfig::square(64).unwrap().with_broadcast(true)).with_batch(batch)
    }

    #[test]
    fn fc_amortizes_under_batching_depthwise_does_not() {
        // Per-sample FC cost collapses with batch (the single row becomes a
        // full tile); per-sample depthwise cost stays flat (batching adds
        // rows, never a second column).
        let fc = Op::fc(1024, 1000);
        let dw = Op::depthwise(56, 56, 64, 3, 1, 1);
        let per_sample = |op: &Op, b: usize| model(b).cycles(op).unwrap() as f64 / b as f64;
        assert!(
            per_sample(&fc, 64) < per_sample(&fc, 1) / 10.0,
            "fc: {} vs {}",
            per_sample(&fc, 64),
            per_sample(&fc, 1)
        );
        let dw_ratio = per_sample(&dw, 8) / per_sample(&dw, 1);
        assert!(
            dw_ratio > 0.9,
            "depthwise per-sample cost should barely amortize, ratio {dw_ratio:.2}"
        );
    }

    #[test]
    fn batch_scales_whole_networks_superlinearly_never() {
        use fuseconv_models::zoo;
        let net = zoo::mobilenet_v2();
        let b1 = crate::estimate_network(&model(1), &net)
            .unwrap()
            .total_cycles;
        let b4 = crate::estimate_network(&model(4), &net)
            .unwrap()
            .total_cycles;
        // Batched work is at most linear and at least one-batch's worth.
        assert!(b4 <= 4 * b1);
        assert!(b4 >= b1);
    }

    #[test]
    #[should_panic(expected = "batch must be nonzero")]
    fn zero_batch_panics() {
        let _ = model(0);
    }
}

//! Lowering of operator descriptors to array cycle counts.

use fuseconv_nn::ops::{Axis1d, Op};
use fuseconv_systolic::ArrayConfig;
use std::error::Error;
use std::fmt;

/// Error produced by the latency model.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum LatencyError {
    /// A FuSeConv operator was estimated on an array without the row
    /// weight-broadcast links its dataflow requires (§IV-C-1).
    BroadcastRequired {
        /// The offending operator, pretty-printed.
        op: String,
    },
    /// An operator had degenerate (zero-sized) dimensions.
    DegenerateOp {
        /// The offending operator, pretty-printed.
        op: String,
    },
    /// The operator's cycle count does not fit in `u64`. All fold
    /// accounting uses checked arithmetic, so absurdly large shapes are
    /// reported instead of silently wrapping.
    ArithmeticOverflow {
        /// The offending operator, pretty-printed.
        op: String,
    },
    /// The cached fold-plan self-audit found an inconsistent plan for this
    /// model configuration (debug builds only; release builds warn once
    /// and continue). See [`crate::audit`].
    PlanAudit {
        /// What the audit found, pretty-printed.
        detail: String,
    },
}

impl fmt::Display for LatencyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LatencyError::BroadcastRequired { op } => write!(
                f,
                "operator `{op}` requires an array with row-broadcast links"
            ),
            LatencyError::DegenerateOp { op } => {
                write!(f, "operator `{op}` has zero-sized dimensions")
            }
            LatencyError::ArithmeticOverflow { op } => {
                write!(f, "cycle count of operator `{op}` overflows u64")
            }
            LatencyError::PlanAudit { detail } => {
                write!(f, "fold-plan self-audit failed: {detail}")
            }
        }
    }
}

impl Error for LatencyError {}

/// Which systolic dataflow executes GEMM-lowered operators.
///
/// The paper evaluates output-stationary only (§V-A-3); weight-stationary
/// is provided for the ablation study. FuSeConv's broadcast dataflow is
/// orthogonal and unaffected by this choice.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Dataflow {
    /// Output-stationary: outputs accumulate in the PEs; the reduction
    /// dimension is temporal. The paper's setting and the default.
    #[default]
    OutputStationary,
    /// Weight-stationary: a weight tile is pinned in the PEs; the output
    /// rows stream through.
    WeightStationary,
    /// Input-stationary: an activation tile is pinned in the PEs; the
    /// weight columns stream through.
    InputStationary,
}

/// How consecutive folds of one operator share the array in time.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum FoldOverlap {
    /// Folds run back to back with no overlap: every fold pays its full
    /// load + compute + drain cost. This matches the cycle-level simulator
    /// exactly and is the default.
    #[default]
    Serial,
    /// Double-buffered PEs: a fold's drain and the next fold's operand
    /// fill overlap, so each fold after the first pays only its fill +
    /// compute window. An idealization used for the ablation study — real
    /// arrays land between the two modes.
    DoubleBuffered,
}

/// The analytical latency model: an array configuration plus the lowering
/// rules in the crate docs.
///
/// # Examples
///
/// ```
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// use fuseconv_latency::LatencyModel;
/// use fuseconv_nn::ops::Op;
/// use fuseconv_systolic::ArrayConfig;
///
/// let model = LatencyModel::new(ArrayConfig::square(64)?);
/// let dw = Op::depthwise(56, 56, 128, 3, 1, 1);
/// let pw = Op::pointwise(56, 56, 128, 128);
/// // Depthwise has ~9x fewer MACs than this pointwise…
/// assert!(dw.macs() * 9 < pw.macs() + dw.macs());
/// // …but takes far longer on the array (§III-B).
/// assert!(model.cycles(&dw)? > model.cycles(&pw)?);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LatencyModel {
    array: ArrayConfig,
    overlap: FoldOverlap,
    dataflow: Dataflow,
    batch: usize,
}

impl LatencyModel {
    /// Creates a model for the given array with [`FoldOverlap::Serial`]
    /// fold accounting.
    pub fn new(array: ArrayConfig) -> Self {
        LatencyModel {
            array,
            overlap: FoldOverlap::Serial,
            dataflow: Dataflow::OutputStationary,
            batch: 1,
        }
    }

    /// Sets the inference batch size (default 1, the paper's edge
    /// setting). Batched images contribute additional GEMM rows / 1-D
    /// lines; the estimate is for the whole batch.
    ///
    /// # Panics
    ///
    /// Panics if `batch == 0`.
    #[must_use]
    pub fn with_batch(mut self, batch: usize) -> Self {
        assert!(batch > 0, "batch must be nonzero");
        self.batch = batch;
        self
    }

    /// The inference batch size.
    pub fn batch(&self) -> usize {
        self.batch
    }

    /// Selects the dataflow used for GEMM-lowered operators.
    #[must_use]
    pub fn with_dataflow(mut self, dataflow: Dataflow) -> Self {
        self.dataflow = dataflow;
        self
    }

    /// The dataflow used for GEMM-lowered operators.
    pub fn dataflow(&self) -> Dataflow {
        self.dataflow
    }

    /// Selects the fold-overlap accounting mode.
    #[must_use]
    pub fn with_overlap(mut self, overlap: FoldOverlap) -> Self {
        self.overlap = overlap;
        self
    }

    /// The array configuration.
    pub fn array(&self) -> &ArrayConfig {
        &self.array
    }

    /// The fold-overlap accounting mode.
    pub fn overlap(&self) -> FoldOverlap {
        self.overlap
    }

    /// GEMM cycles under the configured dataflow and overlap mode.
    ///
    /// Closed-form over tile classes (full tiles + remainder), all in
    /// checked `u64` arithmetic: equals the fold-by-fold loop accounting
    /// of the cycle simulators exactly, but costs O(1) and returns `None`
    /// instead of wrapping when the total exceeds `u64`.
    fn gemm_cycles(&self, m: u64, k: u64, n: u64) -> Option<u64> {
        let (rows, cols) = (c64(self.array.rows()), c64(self.array.cols()));
        match (self.dataflow, self.overlap) {
            // Serial folds pay the full fold_cycles of each simulator.
            (Dataflow::OutputStationary, FoldOverlap::Serial) => {
                sum_folds(m, rows, n, cols, |ru, cu| {
                    // 2·ru + cu + k − 2
                    ru.checked_mul(2)?
                        .checked_add(cu)?
                        .checked_add(k)?
                        .checked_sub(2)
                })
            }
            (Dataflow::WeightStationary, FoldOverlap::Serial) => {
                sum_folds(k, rows, n, cols, |ru, cu| {
                    // ru + (m + ru + cu − 2)
                    ru.checked_mul(2)?
                        .checked_add(cu)?
                        .checked_add(m)?
                        .checked_sub(2)
                })
            }
            (Dataflow::InputStationary, FoldOverlap::Serial) => {
                sum_folds(m, rows, k, cols, |ru, cu| {
                    // cu + (n + ru + cu − 2)
                    cu.checked_mul(2)?
                        .checked_add(ru)?
                        .checked_add(n)?
                        .checked_sub(2)
                })
            }
            (Dataflow::OutputStationary, FoldOverlap::DoubleBuffered) => {
                // Each fold pays fill + compute (ru + cu + k − 2); drains
                // overlap the next fold's fill, except the final one.
                let folds = sum_folds(m, rows, n, cols, |ru, cu| {
                    ru.checked_add(cu)?.checked_add(k)?.checked_sub(2)
                })?;
                folds.checked_add(last_tile(m, rows))
            }
            (Dataflow::WeightStationary, FoldOverlap::DoubleBuffered) => {
                // The next tile's weight preload overlaps the current
                // fold's drain; each fold pays its streaming window only,
                // plus the first preload.
                let folds = sum_folds(k, rows, n, cols, |ru, cu| {
                    m.checked_add(ru)?.checked_add(cu)?.checked_sub(2)
                })?;
                folds.checked_add(rows.min(k))
            }
            (Dataflow::InputStationary, FoldOverlap::DoubleBuffered) => {
                // Mirror of the weight-stationary treatment: the next
                // tile's input preload overlaps the current drain.
                let folds = sum_folds(m, rows, k, cols, |ru, cu| {
                    n.checked_add(ru)?.checked_add(cu)?.checked_sub(2)
                })?;
                folds.checked_add(cols.min(k))
            }
        }
    }

    /// Packed 1-D convolution cycles under the configured overlap mode,
    /// in checked arithmetic (see [`LatencyModel::gemm_cycles`]).
    fn fuse_cycles(&self, channels: u64, lines: u64, l_out: u64, k: u64) -> Option<u64> {
        let (rows, cols) = (c64(self.array.rows()), c64(self.array.cols()));
        let lpr = best_lpr(rows, cols, channels, lines, l_out, k);
        let slots_per_channel = div_ceil(lines, lpr)?;
        let n_slots = channels.checked_mul(slots_per_channel)?;
        match self.overlap {
            FoldOverlap::Serial => fuse_cycles_at_lpr(rows, cols, n_slots, l_out, k, lpr),
            FoldOverlap::DoubleBuffered => {
                // Per fold: fill + broadcast compute ((width + k − 1) + k);
                // only the final fold drains its ru rows.
                let mut total = 0u64;
                for (_ru, count) in tile_classes(n_slots, rows) {
                    if count == 0 {
                        continue;
                    }
                    if lpr == 1 {
                        for (cw, cc) in tile_classes(l_out, cols) {
                            if cc == 0 {
                                continue;
                            }
                            let fold = cw.checked_add(k.checked_mul(2)?)?.checked_sub(1)?;
                            total = total.checked_add(fold.checked_mul(count)?.checked_mul(cc)?)?;
                        }
                    } else {
                        let width = lpr.checked_mul(l_out)?;
                        let fold = width.checked_add(k.checked_mul(2)?)?.checked_sub(1)?;
                        total = total.checked_add(fold.checked_mul(count)?)?;
                    }
                }
                total.checked_add(last_tile(n_slots, rows))
            }
        }
    }

    /// Estimated cycles for one operator.
    ///
    /// The first call per model configuration runs the cached fold-plan
    /// self-audit (see [`crate::audit`]); an inconsistent plan is an
    /// [`LatencyError::PlanAudit`] in debug builds and a once-per-config
    /// warning in release builds.
    ///
    /// # Errors
    ///
    /// Returns [`LatencyError::BroadcastRequired`] for a FuSe operator on a
    /// broadcast-less array, [`LatencyError::DegenerateOp`] for zero-sized
    /// work, and [`LatencyError::ArithmeticOverflow`] when the cycle count
    /// does not fit in `u64`.
    pub fn cycles(&self, op: &Op) -> Result<u64, LatencyError> {
        let _span = fuseconv_telemetry::span("latency.cycles");
        crate::audit::gate(self)?;
        self.cycles_ungated(op)
    }

    /// [`LatencyModel::cycles`] without the plan-audit gate — used by the
    /// audit itself (which must not recurse) and by [`fold_plan`].
    ///
    /// [`fold_plan`]: LatencyModel::fold_plan
    pub(crate) fn cycles_ungated(&self, op: &Op) -> Result<u64, LatencyError> {
        let (oh, ow, _) = op.output_shape();
        let overflow = || LatencyError::ArithmeticOverflow { op: op.to_string() };
        match *op {
            Op::Conv2d { in_c, out_c, k, .. } => {
                check_nonzero(op, &[oh, ow, self.batch, k, in_c, out_c])?;
                let m = mul3(oh, ow, self.batch).ok_or_else(overflow)?;
                let kdim = mul3(k, k, in_c).ok_or_else(overflow)?;
                self.gemm_cycles(m, kdim, c64(out_c)).ok_or_else(overflow)
            }
            Op::Depthwise { c, k, .. } => {
                check_nonzero(op, &[oh, ow, self.batch, k, c])?;
                let m = mul3(oh, ow, self.batch).ok_or_else(overflow)?;
                let kk = c64(k).checked_mul(c64(k)).ok_or_else(overflow)?;
                // One single-column GEMM per channel: no reuse across
                // channels, one array column used (§III-B). Batching adds
                // rows but never a second column — it cannot rescue
                // depthwise utilization.
                let per_channel = self.gemm_cycles(m, kk, 1).ok_or_else(overflow)?;
                c64(c).checked_mul(per_channel).ok_or_else(overflow)
            }
            Op::Pointwise { in_c, out_c, .. } => {
                check_nonzero(op, &[oh, ow, self.batch, in_c, out_c])?;
                let m = mul3(oh, ow, self.batch).ok_or_else(overflow)?;
                self.gemm_cycles(m, c64(in_c), c64(out_c))
                    .ok_or_else(overflow)
            }
            Op::FuSe1d { c, k, axis, .. } => {
                if !self.array.has_broadcast() {
                    return Err(LatencyError::BroadcastRequired { op: op.to_string() });
                }
                // Each surviving output line of each channel is one
                // independent 1-D convolution (Fig. 6's slicing); lines of
                // the same channel share their kernel and can pack side by
                // side within an array row.
                let (lines, l_out) = match axis {
                    Axis1d::Row => (oh, ow),
                    Axis1d::Col => (ow, oh),
                };
                check_nonzero(op, &[c, lines, l_out, k])?;
                self.fuse_cycles(c64(c), c64(lines), c64(l_out), c64(k))
                    .ok_or_else(overflow)
            }
            Op::Fc {
                in_features,
                out_features,
            } => {
                check_nonzero(op, &[in_features, out_features])?;
                self.gemm_cycles(1, c64(in_features), c64(out_features))
                    .ok_or_else(overflow)
            }
        }
    }
}

fn check_nonzero(op: &Op, dims: &[usize]) -> Result<(), LatencyError> {
    if dims.contains(&0) {
        Err(LatencyError::DegenerateOp { op: op.to_string() })
    } else {
        Ok(())
    }
}

/// Lossless `usize → u64` conversion (saturating on exotic >64-bit
/// targets), so shape products can be formed in checked `u64` arithmetic.
pub(crate) fn c64(x: usize) -> u64 {
    u64::try_from(x).unwrap_or(u64::MAX)
}

/// Saturating `usize → u64 → u32` conversion for fold-occupancy fields.
pub(crate) fn c32(x: usize) -> u32 {
    u32::try_from(x).unwrap_or(u32::MAX)
}

fn mul3(a: usize, b: usize, c: usize) -> Option<u64> {
    c64(a).checked_mul(c64(b))?.checked_mul(c64(c))
}

fn div_ceil(a: u64, b: u64) -> Option<u64> {
    Some(a.checked_add(b.checked_sub(1)?)? / b)
}

/// The tile classes of `total` split into `tile`-sized folds: full tiles
/// plus an optional remainder, as `(size, count)` pairs. A class with
/// `count == 0` must be skipped.
fn tile_classes(total: u64, tile: u64) -> [(u64, u64); 2] {
    let rem = total % tile;
    [(tile, total / tile), (rem, u64::from(rem != 0))]
}

/// Size of the *last* tile when `total` is split into `tile`-sized folds —
/// the remainder if one exists, else a full tile (clamped for
/// `total < tile`).
fn last_tile(total: u64, tile: u64) -> u64 {
    let rem = total % tile;
    if rem != 0 {
        rem
    } else {
        tile.min(total)
    }
}

/// Checked Σ over the 2-D fold grid `tiles(dim_r, rows) × tiles(dim_c,
/// cols)` of a per-fold cycle cost — the closed form of the simulators'
/// fold loops.
fn sum_folds(
    dim_r: u64,
    rows: u64,
    dim_c: u64,
    cols: u64,
    fold: impl Fn(u64, u64) -> Option<u64>,
) -> Option<u64> {
    let mut total = 0u64;
    for (ru, rc) in tile_classes(dim_r, rows) {
        if rc == 0 {
            continue;
        }
        for (cu, cc) in tile_classes(dim_c, cols) {
            if cc == 0 {
                continue;
            }
            total = total.checked_add(fold(ru, cu)?.checked_mul(rc)?.checked_mul(cc)?)?;
        }
    }
    Some(total)
}

/// Serial packed-conv1d cycles at a fixed packing factor, mirroring
/// `conv1d::cycles_at_lpr` in checked arithmetic: each fold costs
/// `(width + k − 1) + k + ru`.
fn fuse_cycles_at_lpr(
    rows: u64,
    cols: u64,
    n_slots: u64,
    l_out: u64,
    k: u64,
    lpr: u64,
) -> Option<u64> {
    let mut total = 0u64;
    for (ru, rc) in tile_classes(n_slots, rows) {
        if rc == 0 {
            continue;
        }
        if lpr == 1 {
            for (cw, cc) in tile_classes(l_out, cols) {
                if cc == 0 {
                    continue;
                }
                let fold = cw
                    .checked_add(k.checked_mul(2)?)?
                    .checked_sub(1)?
                    .checked_add(ru)?;
                total = total.checked_add(fold.checked_mul(rc)?.checked_mul(cc)?)?;
            }
        } else {
            let width = lpr.checked_mul(l_out)?;
            let fold = width
                .checked_add(k.checked_mul(2)?)?
                .checked_sub(1)?
                .checked_add(ru)?;
            total = total.checked_add(fold.checked_mul(rc)?)?;
        }
    }
    Some(total)
}

/// The packing factor `conv1d::lines_per_row` would choose, evaluated with
/// the checked closed form (candidates whose cycle count overflows are
/// never selected).
fn best_lpr(rows: u64, cols: u64, channels: u64, lines: u64, l_out: u64, k: u64) -> u64 {
    let max_lpr = if l_out >= cols {
        1
    } else {
        (cols / l_out).clamp(1, lines)
    };
    (1..=max_lpr)
        .min_by_key(|&lpr| {
            div_ceil(lines, lpr)
                .and_then(|spc| channels.checked_mul(spc))
                .and_then(|n_slots| fuse_cycles_at_lpr(rows, cols, n_slots, l_out, k, lpr))
                .unwrap_or(u64::MAX)
        })
        .unwrap_or(1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use fuseconv_nn::FuSeVariant;
    use fuseconv_systolic::{conv1d, gemm, is_gemm, ws_gemm, ConfigError};
    use fuseconv_tensor::Tensor;

    fn array64() -> ArrayConfig {
        ArrayConfig::square(64).unwrap().with_broadcast(true)
    }

    #[test]
    fn closed_form_matches_loop_accounting_on_grids() {
        // The checked closed-form fold accounting must reproduce the
        // simulators' loop-based analytic counts exactly, dataflow by
        // dataflow, including remainder tiles.
        for (rows, cols) in [(3usize, 5usize), (8, 8), (5, 3), (64, 64)] {
            let cfg = ArrayConfig::new(rows, cols).unwrap().with_broadcast(true);
            for m in [1usize, 2, 7, 64, 65, 200] {
                for k in [1usize, 3, 64, 130] {
                    for n in [1usize, 5, 64, 100] {
                        let (mu, ku, nu) = (c64(m), c64(k), c64(n));
                        let os = LatencyModel::new(cfg);
                        assert_eq!(
                            os.gemm_cycles(mu, ku, nu),
                            Some(gemm::analytic_cycles(&cfg, m, k, n)),
                            "OS {rows}x{cols} m={m} k={k} n={n}"
                        );
                        let ws = os.with_dataflow(Dataflow::WeightStationary);
                        assert_eq!(
                            ws.gemm_cycles(mu, ku, nu),
                            Some(ws_gemm::analytic_cycles(&cfg, m, k, n)),
                            "WS {rows}x{cols} m={m} k={k} n={n}"
                        );
                        let is = os.with_dataflow(Dataflow::InputStationary);
                        assert_eq!(
                            is.gemm_cycles(mu, ku, nu),
                            Some(is_gemm::analytic_cycles(&cfg, m, k, n)),
                            "IS {rows}x{cols} m={m} k={k} n={n}"
                        );
                    }
                }
            }
            for channels in [1usize, 3, 9] {
                for lines in [1usize, 5, 12] {
                    for l_out in [1usize, 2, 7, 30] {
                        for k in [1usize, 3, 5] {
                            let model = LatencyModel::new(cfg);
                            assert_eq!(
                                model.fuse_cycles(c64(channels), c64(lines), c64(l_out), c64(k)),
                                Some(conv1d::analytic_cycles_packed(
                                    &cfg, channels, lines, l_out, k
                                )),
                                "fuse {rows}x{cols} c={channels} lines={lines} \
                                 l_out={l_out} k={k}"
                            );
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn huge_shapes_error_instead_of_wrapping() {
        // Regression: these shapes previously wrapped the u64 accumulator
        // in release builds (and the loop-based accounting would not even
        // terminate in reasonable time). They must now fail fast.
        let model = LatencyModel::new(array64());
        let big = 3_000_000_000usize; // 3e9: m = oh·ow ≈ 9e18 still fits u64…
        let huge_pw = Op::pointwise(big, big, 4_000_000_000, 4_000_000_000);
        assert!(matches!(
            model.cycles(&huge_pw),
            Err(LatencyError::ArithmeticOverflow { .. })
        ));
        assert!(matches!(
            model.fold_plan(&huge_pw),
            Err(LatencyError::ArithmeticOverflow { .. })
        ));
        // …and per-channel × channel-count products are checked too.
        let huge_dw = Op::depthwise(big, 1_000_000, 4_000_000_000, 3, 1, 1);
        assert!(matches!(
            model.cycles(&huge_dw),
            Err(LatencyError::ArithmeticOverflow { .. })
        ));
        // Overflow holds across every dataflow × overlap combination.
        for dataflow in [
            Dataflow::OutputStationary,
            Dataflow::WeightStationary,
            Dataflow::InputStationary,
        ] {
            for overlap in [FoldOverlap::Serial, FoldOverlap::DoubleBuffered] {
                let m = model.with_dataflow(dataflow).with_overlap(overlap);
                assert!(
                    matches!(
                        m.cycles(&huge_pw),
                        Err(LatencyError::ArithmeticOverflow { .. })
                    ),
                    "{dataflow:?} {overlap:?}"
                );
            }
        }
    }

    #[test]
    fn depthwise_uses_single_column_pathology() {
        let model = LatencyModel::new(array64());
        // Same MAC budget: 64 channels of 3x3 depthwise on 56x56 vs a
        // pointwise with identical MACs (in_c=9).
        let dw = Op::depthwise(56, 56, 64, 3, 1, 1);
        let pw = Op::pointwise(56, 56, 9, 64);
        assert_eq!(dw.macs(), pw.macs());
        let (dwc, pwc) = (model.cycles(&dw).unwrap(), model.cycles(&pw).unwrap());
        assert!(
            dwc > 10 * pwc,
            "depthwise {dwc} should be >10x pointwise {pwc} at equal MACs"
        );
    }

    #[test]
    fn fuse_beats_depthwise_it_replaces() {
        let model = LatencyModel::new(array64());
        for (h, c, k, s) in [(112, 64, 3, 1), (56, 128, 3, 2), (14, 512, 5, 1)] {
            let dw = Op::depthwise(h, h, c, k, s, k / 2);
            // Half variant: row+col banks on c/2 channels each.
            let row = Op::fuse1d(h, h, c / 2, k, s, k / 2, Axis1d::Row);
            let col = Op::fuse1d(h, h, c / 2, k, s, k / 2, Axis1d::Col);
            let dwc = model.cycles(&dw).unwrap();
            let fc = model.cycles(&row).unwrap() + model.cycles(&col).unwrap();
            assert!(
                fc * 3 < dwc,
                "fuse {fc} should be >3x faster than depthwise {dwc} (h={h} c={c} k={k} s={s})"
            );
        }
    }

    #[test]
    fn fuse_requires_broadcast() {
        let plain = LatencyModel::new(ArrayConfig::square(64).unwrap());
        let op = Op::fuse1d(56, 56, 32, 3, 1, 1, Axis1d::Row);
        assert!(matches!(
            plain.cycles(&op),
            Err(LatencyError::BroadcastRequired { .. })
        ));
    }

    #[test]
    fn analytic_matches_cycle_simulation_for_gemm_ops() {
        // Estimate a small pointwise op, then run the actual simulator on
        // the equivalent GEMM and compare cycles exactly.
        let cfg = ArrayConfig::new(5, 7).unwrap().with_broadcast(true);
        let model = LatencyModel::new(cfg);
        let op = Op::pointwise(4, 3, 6, 9); // M=12, K=6, N=9
        let est = model.cycles(&op).unwrap();
        let a = Tensor::full(&[12, 6], 1.0).unwrap();
        let b = Tensor::full(&[6, 9], 1.0).unwrap();
        let sim = gemm::simulate(&cfg, &a, &b).unwrap();
        assert_eq!(est, sim.cycles());
    }

    #[test]
    fn analytic_matches_cycle_simulation_for_fuse_ops() -> Result<(), ConfigError> {
        let cfg = ArrayConfig::new(4, 6)?.with_broadcast(true);
        let model = LatencyModel::new(cfg);
        // Stride-1 row bank: c=3 channels on a 5x8 map, k=3 → 15 convs of
        // l_out 6.
        let op = Op::fuse1d(5, 8, 3, 3, 1, 1, Axis1d::Row);
        let est = model.cycles(&op).unwrap();
        // 3 channels × 5 lines. Padding 1 makes each line 10 long, so
        // l_out = 10 − 3 + 1 = 8, matching the descriptor's ow.
        let work: Vec<conv1d::ChannelLines> = (0..3)
            .map(|_| conv1d::ChannelLines {
                kernel: vec![1.0; 3],
                lines: (0..5).map(|_| vec![1.0; 10]).collect(),
            })
            .collect();
        let sim = conv1d::simulate_packed(&cfg, &work)?;
        assert_eq!(est, sim.cycles());
        Ok(())
    }

    #[test]
    fn strided_fuse_counts_surviving_lines_only() {
        let model = LatencyModel::new(array64());
        let s1 = Op::fuse1d(112, 112, 32, 3, 1, 1, Axis1d::Row);
        let s2 = Op::fuse1d(112, 112, 32, 3, 2, 1, Axis1d::Row);
        // Stride 2 processes half the lines and half the positions: at
        // least ~3x cheaper.
        let (c1, c2) = (model.cycles(&s1).unwrap(), model.cycles(&s2).unwrap());
        assert!(c2 * 3 < c1, "stride-2 {c2} vs stride-1 {c1}");
    }

    #[test]
    fn fc_uses_single_row() {
        // M = 1: only one array row active; cycles dominated by K.
        let model = LatencyModel::new(array64());
        let op = Op::fc(1024, 1000);
        let cycles = model.cycles(&op).unwrap();
        // 15 full column tiles of 64 plus a 40-wide remainder tile:
        // 15 × (2 + 64 + 1024 − 2) + (2 + 40 + 1024 − 2).
        assert_eq!(cycles, 15 * (2 + 64 + 1024 - 2) + (2 + 40 + 1024 - 2));
    }

    #[test]
    fn full_and_half_variant_op_sets_order_correctly() {
        // For the same block, Half's bank pair is cheaper than Full's.
        let model = LatencyModel::new(array64());
        let mk = |variant: FuSeVariant| -> u64 {
            let per_bank = 128 / variant.d();
            let row = Op::fuse1d(28, 28, per_bank, 3, 1, 1, Axis1d::Row);
            let col = Op::fuse1d(28, 28, per_bank, 3, 1, 1, Axis1d::Col);
            model.cycles(&row).unwrap() + model.cycles(&col).unwrap()
        };
        assert!(mk(FuSeVariant::Half) < mk(FuSeVariant::Full));
    }

    #[test]
    fn larger_arrays_never_slower() {
        let ops = [
            Op::conv2d(56, 56, 32, 64, 3, 1, 1),
            Op::depthwise(56, 56, 64, 3, 1, 1),
            Op::pointwise(28, 28, 96, 160),
            Op::fuse1d(56, 56, 32, 3, 1, 1, Axis1d::Col),
            Op::fc(512, 1000),
        ];
        for op in ops {
            let mut prev = u64::MAX;
            for s in [8usize, 16, 32, 64, 128] {
                let m = LatencyModel::new(ArrayConfig::square(s).unwrap().with_broadcast(true));
                let c = m.cycles(&op).unwrap();
                assert!(
                    c <= prev,
                    "{op}: cycles increased from {prev} to {c} at size {s}"
                );
                prev = c;
            }
        }
    }

    #[test]
    fn dataflow_ablation_preserves_fuse_advantage() {
        // Under either dataflow for the GEMM-lowered ops, FuSe networks
        // still beat their baselines — the paper's conclusion is not an
        // artifact of the output-stationary choice.
        use crate::map::Dataflow;
        for dataflow in [Dataflow::OutputStationary, Dataflow::WeightStationary] {
            let model = LatencyModel::new(array64()).with_dataflow(dataflow);
            let dw = Op::depthwise(56, 56, 128, 3, 1, 1);
            let row = Op::fuse1d(56, 56, 64, 3, 1, 1, Axis1d::Row);
            let col = Op::fuse1d(56, 56, 64, 3, 1, 1, Axis1d::Col);
            let dwc = model.cycles(&dw).unwrap();
            let fc = model.cycles(&row).unwrap() + model.cycles(&col).unwrap();
            assert!(fc < dwc, "{dataflow:?}: fuse {fc} vs dw {dwc}");
        }
    }

    #[test]
    fn input_stationary_wins_for_wide_pointwise() {
        use crate::map::Dataflow;
        // A pointwise layer at 7x7 with few pixels but many output
        // channels: the input tile fits, the filters stream once.
        let op = Op::pointwise(7, 7, 64, 1280);
        let os = LatencyModel::new(array64());
        let is = LatencyModel::new(array64()).with_dataflow(Dataflow::InputStationary);
        assert!(is.cycles(&op).unwrap() < os.cycles(&op).unwrap());
        // Double-buffered input-stationary is never slower than serial.
        let is_db = is.with_overlap(crate::map::FoldOverlap::DoubleBuffered);
        assert!(is_db.cycles(&op).unwrap() <= is.cycles(&op).unwrap());
    }

    #[test]
    fn weight_stationary_trades_differently_than_output_stationary() {
        use crate::map::Dataflow;
        let os = LatencyModel::new(array64());
        let ws = LatencyModel::new(array64()).with_dataflow(Dataflow::WeightStationary);
        // Depthwise (tall-skinny GEMMs): WS streams pixels once per channel
        // and wins.
        let dw = Op::depthwise(56, 56, 128, 3, 1, 1);
        assert!(ws.cycles(&dw).unwrap() < os.cycles(&dw).unwrap());
        // FC (deep reduction, M = 1): OS wins.
        let fc = Op::fc(1024, 1000);
        assert!(os.cycles(&fc).unwrap() < ws.cycles(&fc).unwrap());
        // Accessors round-trip.
        assert_eq!(ws.dataflow(), Dataflow::WeightStationary);
        assert_eq!(os.dataflow(), Dataflow::OutputStationary);
    }

    #[test]
    fn ws_double_buffering_is_cheaper_than_ws_serial() {
        use crate::map::{Dataflow, FoldOverlap};
        let serial = LatencyModel::new(array64()).with_dataflow(Dataflow::WeightStationary);
        let piped = serial.with_overlap(FoldOverlap::DoubleBuffered);
        // Multi-fold ops overlap strictly; a single-fold op (the stem
        // conv: k = 27 ≤ rows, n = 32 ≤ cols) has nothing to overlap and
        // costs the same.
        for op in [Op::pointwise(28, 28, 192, 64), Op::fc(512, 1000)] {
            assert!(
                piped.cycles(&op).unwrap() < serial.cycles(&op).unwrap(),
                "{op}"
            );
        }
        let stem = Op::conv2d(112, 112, 3, 32, 3, 2, 1);
        assert_eq!(piped.cycles(&stem).unwrap(), serial.cycles(&stem).unwrap());
    }

    #[test]
    fn double_buffering_is_cheaper_but_preserves_ordering() {
        use crate::map::FoldOverlap;
        let serial = LatencyModel::new(array64());
        let piped = LatencyModel::new(array64()).with_overlap(FoldOverlap::DoubleBuffered);
        let ops = [
            Op::conv2d(112, 112, 3, 32, 3, 2, 1),
            Op::depthwise(56, 56, 128, 3, 1, 1),
            Op::pointwise(28, 28, 192, 64),
            Op::fuse1d(56, 56, 64, 3, 1, 1, Axis1d::Row),
            Op::fuse1d(7, 7, 960, 5, 1, 2, Axis1d::Col),
            Op::fc(1280, 1000),
        ];
        for op in &ops {
            let s = serial.cycles(op).unwrap();
            let p = piped.cycles(op).unwrap();
            assert!(p < s, "{op}: double-buffered {p} not below serial {s}");
            // Overlap can at best halve the time of any single op here.
            assert!(p * 3 > s, "{op}: {p} suspiciously below {s}");
        }
        // The depthwise-vs-fuse ordering that drives the paper's result is
        // insensitive to the overlap mode.
        for model in [serial, piped] {
            let dw = model.cycles(&ops[1]).unwrap();
            let fuse = model.cycles(&ops[3]).unwrap() * 2;
            assert!(fuse < dw);
        }
    }

    #[test]
    fn error_display() {
        let e = LatencyError::BroadcastRequired {
            op: "fuse 1x3".into(),
        };
        assert!(e.to_string().contains("broadcast"));
    }
}

#[cfg(test)]
mod batch_tests {
    use super::*;
    use fuseconv_nn::ops::Op;
    use fuseconv_systolic::ArrayConfig;

    fn model(batch: usize) -> LatencyModel {
        LatencyModel::new(ArrayConfig::square(64).unwrap().with_broadcast(true)).with_batch(batch)
    }

    #[test]
    fn fc_amortizes_under_batching_depthwise_does_not() {
        // Per-sample FC cost collapses with batch (the single row becomes a
        // full tile); per-sample depthwise cost stays flat (batching adds
        // rows, never a second column).
        let fc = Op::fc(1024, 1000);
        let dw = Op::depthwise(56, 56, 64, 3, 1, 1);
        let per_sample = |op: &Op, b: usize| model(b).cycles(op).unwrap() as f64 / b as f64;
        assert!(
            per_sample(&fc, 64) < per_sample(&fc, 1) / 10.0,
            "fc: {} vs {}",
            per_sample(&fc, 64),
            per_sample(&fc, 1)
        );
        let dw_ratio = per_sample(&dw, 8) / per_sample(&dw, 1);
        assert!(
            dw_ratio > 0.9,
            "depthwise per-sample cost should barely amortize, ratio {dw_ratio:.2}"
        );
    }

    #[test]
    fn batch_scales_whole_networks_superlinearly_never() {
        use fuseconv_models::zoo;
        let net = zoo::mobilenet_v2();
        let b1 = crate::estimate_network(&model(1), &net)
            .unwrap()
            .total_cycles;
        let b4 = crate::estimate_network(&model(4), &net)
            .unwrap()
            .total_cycles;
        // Batched work is at most linear and at least one-batch's worth.
        assert!(b4 <= 4 * b1);
        assert!(b4 >= b1);
    }

    #[test]
    #[should_panic(expected = "batch must be nonzero")]
    fn zero_batch_panics() {
        let _ = model(0);
    }
}

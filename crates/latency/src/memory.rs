//! Operand traffic and roofline analysis.
//!
//! The paper idealizes memory ("performance is limited only by operations
//! on the array", §V-A-3); SCALE-Sim itself also reports SRAM/DRAM traffic.
//! This module adds that second axis: for every operator it counts the
//! elements streamed into and out of the array under the same fold
//! schedules the cycle model uses, and a simple roofline combines both
//! into a bandwidth-aware latency bound.
//!
//! Two structural effects matter for the paper's story:
//!
//! - the `im2col` lowering of a `K×K` (depthwise) convolution inflates
//!   input traffic by up to `K²` (every pixel appears in up to `K²`
//!   patches), while FuSeConv's 1-D lines are streamed essentially once
//!   (plus a `K−1` halo per row tile);
//! - output-stationary folds reload operand tiles once per orthogonal
//!   tile (`A` once per column tile, `B` once per row tile).

use crate::map::LatencyModel;
use crate::{LatencyError, NetworkLatency};
use fuseconv_models::Network;
use fuseconv_nn::ops::{Axis1d, Op};
use std::fmt;

/// Elements moved for one operator, split by stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Traffic {
    /// Activation elements streamed into the array.
    pub input_elems: u64,
    /// Weight elements streamed into the array.
    pub weight_elems: u64,
    /// Result elements drained out of the array.
    pub output_elems: u64,
}

impl Traffic {
    /// Total elements moved.
    pub fn total(&self) -> u64 {
        self.input_elems + self.weight_elems + self.output_elems
    }

    fn add(self, other: Traffic) -> Traffic {
        Traffic {
            input_elems: self.input_elems + other.input_elems,
            weight_elems: self.weight_elems + other.weight_elems,
            output_elems: self.output_elems + other.output_elems,
        }
    }
}

impl fmt::Display for Traffic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "in {} + w {} + out {} = {} elems",
            self.input_elems,
            self.weight_elems,
            self.output_elems,
            self.total()
        )
    }
}

/// Whether an operator's roofline bound comes from compute or memory.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Bound {
    /// The array's cycle count dominates.
    Compute,
    /// The bandwidth-limited transfer time dominates.
    Memory,
}

impl fmt::Display for Bound {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Bound::Compute => f.write_str("compute-bound"),
            Bound::Memory => f.write_str("memory-bound"),
        }
    }
}

/// Output-stationary GEMM traffic under the fold schedule: `A` streamed
/// once per column tile, `B` once per row tile, `C` drained once.
fn gemm_traffic(model: &LatencyModel, m: usize, k: usize, n: usize) -> Traffic {
    let row_tiles = m.div_ceil(model.array().rows()) as u64;
    let col_tiles = n.div_ceil(model.array().cols()) as u64;
    Traffic {
        input_elems: (m * k) as u64 * col_tiles,
        weight_elems: (k * n) as u64 * row_tiles,
        output_elems: (m * n) as u64,
    }
}

/// Estimates an operator's operand traffic on the model's array.
///
/// # Errors
///
/// Returns [`LatencyError::DegenerateOp`] for zero-sized work (broadcast
/// availability is irrelevant for traffic, so FuSe ops never fail here).
pub fn op_traffic(model: &LatencyModel, op: &Op) -> Result<Traffic, LatencyError> {
    let (oh, ow, _) = op.output_shape();
    let degenerate = || LatencyError::DegenerateOp { op: op.to_string() };
    match *op {
        Op::Conv2d { in_c, out_c, k, .. } => {
            let m = oh * ow;
            let kdim = k * k * in_c;
            if m == 0 || kdim == 0 || out_c == 0 {
                return Err(degenerate());
            }
            // The streamed A is the im2col matrix: built-in K²-ish
            // amplification relative to the raw feature map.
            Ok(gemm_traffic(model, m, kdim, out_c))
        }
        Op::Depthwise { c, k, .. } => {
            let m = oh * ow;
            if m == 0 || c == 0 || k == 0 {
                return Err(degenerate());
            }
            let per_channel = gemm_traffic(model, m, k * k, 1);
            Ok(Traffic {
                input_elems: per_channel.input_elems * c as u64,
                weight_elems: per_channel.weight_elems * c as u64,
                output_elems: per_channel.output_elems * c as u64,
            })
        }
        Op::Pointwise { in_c, out_c, .. } => {
            let m = oh * ow;
            if m == 0 || in_c == 0 || out_c == 0 {
                return Err(degenerate());
            }
            Ok(gemm_traffic(model, m, in_c, out_c))
        }
        Op::FuSe1d {
            c,
            k,
            stride,
            pad,
            axis,
            ..
        } => {
            let (lines, l_out, line_in) = match axis {
                Axis1d::Row => (oh, ow, (ow - 1) * stride + k),
                Axis1d::Col => (ow, oh, (oh - 1) * stride + k),
            };
            if c == 0 || lines == 0 || l_out == 0 || k == 0 {
                return Err(degenerate());
            }
            let _ = pad; // padding zeros are generated, not fetched
            let cols = model.array().cols();
            // Each line is loaded once per column tile it spans (usually 1
            // thanks to line packing); weights go once per line over the
            // broadcast link.
            let col_tiles = if l_out >= cols {
                l_out.div_ceil(cols) as u64
            } else {
                1
            };
            let total_lines = (c * lines) as u64;
            Ok(Traffic {
                input_elems: total_lines * line_in as u64 * col_tiles,
                weight_elems: total_lines * k as u64,
                output_elems: total_lines * l_out as u64,
            })
        }
        Op::Fc {
            in_features,
            out_features,
        } => {
            if in_features == 0 || out_features == 0 {
                return Err(degenerate());
            }
            Ok(gemm_traffic(model, 1, in_features, out_features))
        }
    }
}

/// A network's total traffic.
///
/// # Errors
///
/// Propagates [`LatencyError`].
pub fn network_traffic(model: &LatencyModel, network: &Network) -> Result<Traffic, LatencyError> {
    let mut total = Traffic::default();
    for named in network.ops() {
        total = total.add(op_traffic(model, &named.op)?);
    }
    Ok(total)
}

/// Roofline combination of a latency report with its traffic: transfer
/// time at `bytes_per_cycle` (with `bytes_per_elem` wide elements, FP16 = 2)
/// versus array cycles.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Roofline {
    /// Array compute cycles.
    pub compute_cycles: u64,
    /// Bandwidth-limited transfer cycles.
    pub transfer_cycles: u64,
    /// The binding constraint.
    pub bound: Bound,
}

impl Roofline {
    /// The bound latency: `max(compute, transfer)`.
    pub fn bound_cycles(&self) -> u64 {
        self.compute_cycles.max(self.transfer_cycles)
    }
}

/// Evaluates the roofline for a whole network.
///
/// # Errors
///
/// Propagates [`LatencyError`].
///
/// # Panics
///
/// Panics if `bytes_per_cycle` is zero.
pub fn roofline(
    model: &LatencyModel,
    network: &Network,
    report: &NetworkLatency,
    bytes_per_elem: u64,
    bytes_per_cycle: u64,
) -> Result<Roofline, LatencyError> {
    assert!(bytes_per_cycle > 0, "bandwidth must be nonzero");
    let traffic = network_traffic(model, network)?;
    let transfer_cycles = (traffic.total() * bytes_per_elem).div_ceil(bytes_per_cycle);
    let compute_cycles = report.total_cycles;
    Ok(Roofline {
        compute_cycles,
        transfer_cycles,
        bound: if transfer_cycles > compute_cycles {
            Bound::Memory
        } else {
            Bound::Compute
        },
    })
}

/// On-chip buffer capacities for the two-level DRAM model (SCALE-Sim's
/// double-buffered SRAM organization: separate ifmap, filter and ofmap
/// buffers).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SramConfig {
    /// Activation (ifmap) buffer capacity, elements.
    pub ifmap_elems: u64,
    /// Weight (filter) buffer capacity, elements.
    pub filter_elems: u64,
    /// Output (ofmap) buffer capacity, elements.
    pub ofmap_elems: u64,
}

impl SramConfig {
    /// SCALE-Sim's default-ish configuration at FP16: 1 MiB ifmap,
    /// 512 KiB filter, 256 KiB ofmap.
    pub fn scale_sim_default() -> Self {
        SramConfig {
            ifmap_elems: 512 * 1024,
            filter_elems: 256 * 1024,
            ofmap_elems: 128 * 1024,
        }
    }
}

/// Unique (compulsory) element counts of an operator's streams — the
/// lower bound on DRAM traffic.
fn unique_traffic(op: &Op) -> Traffic {
    let (oh, ow, oc) = op.output_shape();
    match *op {
        Op::Conv2d {
            in_h,
            in_w,
            in_c,
            out_c,
            k,
            ..
        } => Traffic {
            input_elems: (in_h * in_w * in_c) as u64,
            weight_elems: (k * k * in_c * out_c) as u64,
            output_elems: (oh * ow * oc) as u64,
        },
        Op::Depthwise {
            in_h, in_w, c, k, ..
        } => Traffic {
            input_elems: (in_h * in_w * c) as u64,
            weight_elems: (k * k * c) as u64,
            output_elems: (oh * ow * oc) as u64,
        },
        Op::Pointwise {
            in_h,
            in_w,
            in_c,
            out_c,
        } => Traffic {
            input_elems: (in_h * in_w * in_c) as u64,
            weight_elems: (in_c * out_c) as u64,
            output_elems: (oh * ow * oc) as u64,
        },
        Op::FuSe1d {
            in_h, in_w, c, k, ..
        } => Traffic {
            input_elems: (in_h * in_w * c) as u64,
            weight_elems: (c * k) as u64,
            output_elems: (oh * ow * oc) as u64,
        },
        Op::Fc {
            in_features,
            out_features,
        } => Traffic {
            input_elems: in_features as u64,
            weight_elems: (in_features * out_features) as u64,
            output_elems: out_features as u64,
        },
    }
}

/// Two-level DRAM traffic estimate: a stream whose unique working set fits
/// its SRAM buffer is fetched from DRAM exactly once (the buffer captures
/// all reuse); otherwise every array-side access misses to DRAM — the
/// pessimistic end SCALE-Sim's reuse analysis refines between.
///
/// # Errors
///
/// Propagates [`LatencyError::DegenerateOp`].
pub fn dram_traffic(
    model: &LatencyModel,
    op: &Op,
    sram: &SramConfig,
) -> Result<Traffic, LatencyError> {
    let streamed = op_traffic(model, op)?;
    let unique = unique_traffic(op);
    let pick = |unique: u64, streamed: u64, capacity: u64| {
        if unique <= capacity {
            unique
        } else {
            streamed
        }
    };
    Ok(Traffic {
        input_elems: pick(unique.input_elems, streamed.input_elems, sram.ifmap_elems),
        weight_elems: pick(
            unique.weight_elems,
            streamed.weight_elems,
            sram.filter_elems,
        ),
        // Outputs are written once regardless (they stream out).
        output_elems: unique
            .output_elems
            .max(if unique.output_elems <= sram.ofmap_elems {
                unique.output_elems
            } else {
                streamed.output_elems
            }),
    })
}

/// A network's total DRAM traffic under the two-level model.
///
/// # Errors
///
/// Propagates [`LatencyError`].
pub fn network_dram_traffic(
    model: &LatencyModel,
    network: &Network,
    sram: &SramConfig,
) -> Result<Traffic, LatencyError> {
    let mut total = Traffic::default();
    for named in network.ops() {
        total = total.add(dram_traffic(model, &named.op, sram)?);
    }
    Ok(total)
}

#[cfg(test)]
mod tests {
    use super::*;
    use fuseconv_models::zoo;
    use fuseconv_nn::FuSeVariant;
    use fuseconv_systolic::ArrayConfig;

    fn model64() -> LatencyModel {
        LatencyModel::new(ArrayConfig::square(64).unwrap().with_broadcast(true))
    }

    #[test]
    fn gemm_traffic_by_hand() {
        // M=100, K=10, N=130 on 64x64: 2 row tiles, 3 col tiles.
        let t = op_traffic(&model64(), &Op::fc(10, 130)).unwrap();
        // FC is M=1: 1 row tile, 3 col tiles.
        assert_eq!(t.input_elems, 10 * 3);
        assert_eq!(t.weight_elems, 10 * 130);
        assert_eq!(t.output_elems, 130);
    }

    #[test]
    fn im2col_amplifies_depthwise_input_traffic() {
        let dw = Op::depthwise(56, 56, 64, 3, 1, 1);
        let t = op_traffic(&model64(), &dw).unwrap();
        let raw_ifmap = (56 * 56 * 64) as u64;
        // The im2col stream is ~K² times the raw feature map.
        assert!(t.input_elems > 8 * raw_ifmap);
        assert!(t.input_elems < 10 * raw_ifmap);
    }

    #[test]
    fn fuse_moves_far_less_input_than_depthwise() {
        let model = model64();
        let dw = Op::depthwise(56, 56, 64, 3, 1, 1);
        let row = Op::fuse1d(56, 56, 32, 3, 1, 1, Axis1d::Row);
        let col = Op::fuse1d(56, 56, 32, 3, 1, 1, Axis1d::Col);
        let dw_t = op_traffic(&model, &dw).unwrap();
        let fuse_t = op_traffic(&model, &row)
            .unwrap()
            .add(op_traffic(&model, &col).unwrap());
        assert!(
            fuse_t.input_elems * 4 < dw_t.input_elems,
            "fuse {} vs dw {}",
            fuse_t.input_elems,
            dw_t.input_elems
        );
    }

    #[test]
    fn fuse_line_traffic_by_hand() {
        // 2 channels, 4x6 map, k=3, stride 1, pad 1 → 4 lines of l_in 8
        // per channel, l_out 6 ≤ 64 cols → one tile.
        let op = Op::fuse1d(4, 6, 2, 3, 1, 1, Axis1d::Row);
        let t = op_traffic(&model64(), &op).unwrap();
        assert_eq!(t.input_elems, 2 * 4 * 8);
        assert_eq!(t.weight_elems, 2 * 4 * 3);
        assert_eq!(t.output_elems, 2 * 4 * 6);
    }

    #[test]
    fn network_traffic_drops_after_transform() {
        let model = model64();
        let net = zoo::mobilenet_v1();
        let base = network_traffic(&model, &net).unwrap();
        let half = network_traffic(&model, &net.transform_all(FuSeVariant::Half)).unwrap();
        assert!(
            half.total() < base.total(),
            "half {} vs base {}",
            half.total(),
            base.total()
        );
        assert!(half.input_elems < base.input_elems);
    }

    #[test]
    fn roofline_classifies_by_bandwidth() {
        let model = model64();
        let net = zoo::mobilenet_v2();
        let report = crate::estimate_network(&model, &net).unwrap();
        // Absurdly slow memory: memory-bound.
        let slow = roofline(&model, &net, &report, 2, 1).unwrap();
        assert_eq!(slow.bound, Bound::Memory);
        assert_eq!(slow.bound_cycles(), slow.transfer_cycles);
        // Generous memory (a wide on-chip bus): compute-bound, matching
        // the paper's idealization.
        let fast = roofline(&model, &net, &report, 2, 4096).unwrap();
        assert_eq!(fast.bound, Bound::Compute);
        assert_eq!(fast.bound_cycles(), report.total_cycles);
        // Transfer time scales inversely with bandwidth.
        assert!(slow.transfer_cycles > fast.transfer_cycles * 1000);
    }

    #[test]
    fn strided_fuse_counts_stride_in_line_length() {
        // Stride 2: each surviving line reads (l_out-1)*2 + k inputs.
        let op = Op::fuse1d(8, 8, 1, 3, 2, 1, Axis1d::Row);
        let (oh, ow, _) = op.output_shape();
        assert_eq!((oh, ow), (4, 4));
        let t = op_traffic(&model64(), &op).unwrap();
        assert_eq!(t.input_elems, 4 * ((4 - 1) * 2 + 3));
    }

    #[test]
    fn dram_traffic_bounded_by_unique_and_streamed() {
        let model = model64();
        let sram = SramConfig::scale_sim_default();
        let ops = [
            Op::conv2d(56, 56, 32, 64, 3, 1, 1),
            Op::depthwise(56, 56, 64, 3, 1, 1),
            Op::pointwise(28, 28, 96, 160),
            Op::fuse1d(56, 56, 32, 3, 1, 1, Axis1d::Row),
            Op::fc(1280, 1000),
        ];
        for op in ops {
            let dram = dram_traffic(&model, &op, &sram).unwrap();
            let streamed = op_traffic(&model, &op).unwrap();
            let unique = unique_traffic(&op);
            assert!(dram.input_elems >= unique.input_elems, "{op}");
            assert!(
                dram.input_elems <= streamed.input_elems.max(unique.input_elems),
                "{op}"
            );
            assert!(dram.weight_elems >= unique.weight_elems, "{op}");
        }
    }

    #[test]
    fn big_buffers_capture_all_reuse() {
        let model = model64();
        let huge = SramConfig {
            ifmap_elems: u64::MAX,
            filter_elems: u64::MAX,
            ofmap_elems: u64::MAX,
        };
        let op = Op::depthwise(56, 56, 64, 3, 1, 1);
        let dram = dram_traffic(&model, &op, &huge).unwrap();
        let unique = unique_traffic(&op);
        assert_eq!(dram, unique);
        // With ample SRAM, the im2col K² amplification never reaches DRAM.
        assert_eq!(dram.input_elems, 56 * 56 * 64);
    }

    #[test]
    fn tiny_buffers_degrade_to_streamed_traffic() {
        let model = model64();
        let tiny = SramConfig {
            ifmap_elems: 16,
            filter_elems: 16,
            ofmap_elems: 16,
        };
        let op = Op::pointwise(28, 28, 96, 160);
        let dram = dram_traffic(&model, &op, &tiny).unwrap();
        let streamed = op_traffic(&model, &op).unwrap();
        assert_eq!(dram.input_elems, streamed.input_elems);
        assert_eq!(dram.weight_elems, streamed.weight_elems);
    }

    #[test]
    fn fuse_networks_cut_dram_traffic_even_with_small_sram() {
        let model = model64();
        let sram = SramConfig {
            ifmap_elems: 16 * 1024,
            filter_elems: 16 * 1024,
            ofmap_elems: 16 * 1024,
        };
        let net = zoo::mobilenet_v1();
        let base = network_dram_traffic(&model, &net, &sram).unwrap();
        let half =
            network_dram_traffic(&model, &net.transform_all(FuSeVariant::Half), &sram).unwrap();
        assert!(half.total() < base.total());
    }

    #[test]
    #[should_panic(expected = "bandwidth must be nonzero")]
    fn zero_bandwidth_panics() {
        let model = model64();
        let net = zoo::mobilenet_v3_small();
        let report = crate::estimate_network(&model, &net).unwrap();
        let _ = roofline(&model, &net, &report, 2, 0);
    }
}

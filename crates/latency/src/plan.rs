//! Per-fold provenance: the analytic model's fold-by-fold plan.
//!
//! [`LatencyModel::cycles`] reports one number per operator; this module
//! exposes the folds behind that number as [`FoldSpec`]s, each tagged with
//! its dataflow, occupancy and fill/compute/drain split. The specs serve
//! two purposes:
//!
//! * **Cross-referencing** — a traced simulation of the same op produces
//!   folds in the same order with the same phase lengths, so analytic and
//!   simulated folds can be matched one-to-one (the `trace_cross_check`
//!   integration test enforces this).
//! * **Replay** — [`fuseconv_trace::replay`] turns a plan into the trace
//!   event stream directly, which is how whole-network traces are produced
//!   without cycle-simulating millions of cycles.
//!
//! Plans always use [`FoldOverlap::Serial`] accounting (folds back to
//! back, exactly like the cycle simulator): under the default serial mode
//! the plan's total cycles equal [`LatencyModel::cycles`] exactly.
//!
//! [`FoldOverlap::Serial`]: crate::FoldOverlap::Serial

use crate::map::{c32, c64, Dataflow, FoldOverlap, LatencyError, LatencyModel};
use fuseconv_nn::ops::{Axis1d, Op};
use fuseconv_systolic::conv1d;
use fuseconv_trace::{FoldKind, FoldSpec};

fn check_nonzero(op: &Op, dims: &[usize]) -> Result<(), LatencyError> {
    if dims.contains(&0) {
        Err(LatencyError::DegenerateOp { op: op.to_string() })
    } else {
        Ok(())
    }
}

/// Saturating `Σ dims − sub` in `u64`: a fold-phase length. Saturation is
/// unreachable in practice because [`LatencyModel::fold_plan`] first
/// proves the plan's total cycles fit `u64` via the checked accounting.
fn phase(dims: &[usize], sub: u64) -> u64 {
    dims.iter()
        .map(|&d| c64(d))
        .fold(0u64, u64::saturating_add)
        .saturating_sub(sub)
}

/// Saturating three-way product in `u64`: a fold's MAC count.
fn macs3(a: usize, b: usize, c: usize) -> u64 {
    c64(a).saturating_mul(c64(b)).saturating_mul(c64(c))
}

impl LatencyModel {
    /// Emits one fold per GEMM tile under the configured dataflow.
    fn gemm_plan(&self, m: usize, k: usize, n: usize, out: &mut Vec<FoldSpec>) {
        let (rows, cols) = (self.array().rows(), self.array().cols());
        match self.dataflow() {
            Dataflow::OutputStationary => {
                for row0 in (0..m).step_by(rows) {
                    let ru = rows.min(m - row0);
                    for col0 in (0..n).step_by(cols) {
                        let cu = cols.min(n - col0);
                        out.push(FoldSpec {
                            tag: 0,
                            kind: FoldKind::OutputStationary,
                            rows_used: c32(ru),
                            cols_used: c32(cu),
                            fill: 0,
                            compute: phase(&[ru, cu, k], 2),
                            drain: c64(ru),
                            macs: macs3(ru, cu, k),
                        });
                    }
                }
            }
            Dataflow::WeightStationary => {
                for k0 in (0..k).step_by(rows) {
                    let ru = rows.min(k - k0);
                    for n0 in (0..n).step_by(cols) {
                        let cu = cols.min(n - n0);
                        out.push(FoldSpec {
                            tag: 0,
                            kind: FoldKind::WeightStationary,
                            rows_used: c32(ru),
                            cols_used: c32(cu),
                            fill: c64(ru),
                            compute: phase(&[m, ru, cu], 2),
                            drain: 0,
                            macs: macs3(ru, cu, m),
                        });
                    }
                }
            }
            Dataflow::InputStationary => {
                for m0 in (0..m).step_by(rows) {
                    let ru = rows.min(m - m0);
                    for k0 in (0..k).step_by(cols) {
                        let cu = cols.min(k - k0);
                        out.push(FoldSpec {
                            tag: 0,
                            kind: FoldKind::InputStationary,
                            rows_used: c32(ru),
                            cols_used: c32(cu),
                            fill: c64(cu),
                            compute: phase(&[n, ru, cu], 2),
                            drain: 0,
                            macs: macs3(ru, cu, n),
                        });
                    }
                }
            }
        }
    }

    /// Emits the packed row-broadcast folds (mirrors
    /// `conv1d::analytic_cycles_packed` tile by tile).
    fn fuse_plan(
        &self,
        channels: usize,
        lines: usize,
        l_out: usize,
        k: usize,
        out: &mut Vec<FoldSpec>,
    ) {
        let (rows, cols) = (self.array().rows(), self.array().cols());
        let lpr = conv1d::lines_per_row(self.array(), channels, lines, l_out, k);
        let slots_per_channel = lines.div_ceil(lpr);
        // Per-slot line counts, channel-major: full slots of `lpr` lines
        // plus one remainder slot per channel.
        let slot_lines: Vec<usize> = (0..channels)
            .flat_map(|_| (0..slots_per_channel).map(move |s| lpr.min(lines - s * lpr)))
            .collect();
        for slot0 in (0..slot_lines.len()).step_by(rows) {
            let chunk = &slot_lines[slot0..slot_lines.len().min(slot0 + rows)];
            let ru = chunk.len();
            if lpr == 1 {
                for c0 in (0..l_out).step_by(cols) {
                    let cw = cols.min(l_out - c0);
                    out.push(FoldSpec {
                        tag: 0,
                        kind: FoldKind::RowBroadcast,
                        rows_used: c32(ru),
                        cols_used: c32(cw),
                        fill: phase(&[cw, k], 1),
                        compute: c64(k),
                        drain: c64(ru),
                        macs: macs3(ru, cw, k),
                    });
                }
            } else {
                let nominal_width = lpr * l_out;
                let busy: u64 = chunk
                    .iter()
                    .map(|&n| c64(n).saturating_mul(c64(l_out)))
                    .fold(0u64, u64::saturating_add);
                out.push(FoldSpec {
                    tag: 0,
                    kind: FoldKind::RowBroadcast,
                    rows_used: c32(ru),
                    cols_used: c32(nominal_width),
                    fill: phase(&[nominal_width, k], 1),
                    compute: c64(k),
                    drain: c64(ru),
                    macs: busy.saturating_mul(c64(k)),
                });
            }
        }
    }

    /// The fold-by-fold plan behind [`LatencyModel::cycles`] for one
    /// operator, under serial fold accounting.
    ///
    /// Folds are emitted in exactly the order the cycle simulator executes
    /// them; with [`FoldOverlap::Serial`](crate::FoldOverlap::Serial) (the
    /// default) the plan's summed cycles equal [`LatencyModel::cycles`]
    /// and the per-fold MACs sum to
    /// [`Op::macs`]. All specs carry `tag = 0`; callers
    /// replaying several ops re-tag them (typically with the op's index).
    ///
    /// # Errors
    ///
    /// Same conditions as [`LatencyModel::cycles`]:
    /// [`LatencyError::BroadcastRequired`] for a FuSe operator on a
    /// broadcast-less array, [`LatencyError::DegenerateOp`] for zero-sized
    /// work, [`LatencyError::ArithmeticOverflow`] when the serial cycle
    /// total the plan describes does not fit `u64`.
    pub fn fold_plan(&self, op: &Op) -> Result<Vec<FoldSpec>, LatencyError> {
        let _span = fuseconv_telemetry::span("latency.fold_plan");
        crate::audit::gate(self)?;
        let plan = self.fold_plan_ungated(op)?;
        fuseconv_telemetry::counter("latency.folds_planned_total")
            .add(u64::try_from(plan.len()).unwrap_or(u64::MAX));
        Ok(plan)
    }

    /// [`LatencyModel::fold_plan`] without the plan-audit gate — used by
    /// the audit itself, which must not recurse through the gate.
    pub(crate) fn fold_plan_ungated(&self, op: &Op) -> Result<Vec<FoldSpec>, LatencyError> {
        // Plans document serial accounting; prove that total fits u64
        // before emitting a single spec, so overflow is an error here too.
        self.with_overlap(FoldOverlap::Serial).cycles_ungated(op)?;
        let (oh, ow, _) = op.output_shape();
        let mut plan = Vec::new();
        match *op {
            Op::Conv2d { in_c, out_c, k, .. } => {
                let m = oh * ow * self.batch();
                let kdim = k * k * in_c;
                check_nonzero(op, &[m, kdim, out_c])?;
                self.gemm_plan(m, kdim, out_c, &mut plan);
            }
            Op::Depthwise { c, k, .. } => {
                let m = oh * ow * self.batch();
                check_nonzero(op, &[m, k * k, c])?;
                // One single-column GEMM per channel (§III-B).
                for _ in 0..c {
                    self.gemm_plan(m, k * k, 1, &mut plan);
                }
            }
            Op::Pointwise { in_c, out_c, .. } => {
                let m = oh * ow * self.batch();
                check_nonzero(op, &[m, in_c, out_c])?;
                self.gemm_plan(m, in_c, out_c, &mut plan);
            }
            Op::FuSe1d { c, k, axis, .. } => {
                if !self.array().has_broadcast() {
                    return Err(LatencyError::BroadcastRequired { op: op.to_string() });
                }
                let (lines, l_out) = match axis {
                    Axis1d::Row => (oh, ow),
                    Axis1d::Col => (ow, oh),
                };
                check_nonzero(op, &[c, lines, l_out, k])?;
                self.fuse_plan(c, lines, l_out, k, &mut plan);
            }
            Op::Fc {
                in_features,
                out_features,
            } => {
                check_nonzero(op, &[in_features, out_features])?;
                self.gemm_plan(1, in_features, out_features, &mut plan);
            }
        }
        Ok(plan)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::map::FoldOverlap;
    use fuseconv_systolic::ArrayConfig;

    fn array(rows: usize, cols: usize) -> ArrayConfig {
        ArrayConfig::new(rows, cols).unwrap().with_broadcast(true)
    }

    fn ops() -> Vec<Op> {
        vec![
            Op::conv2d(14, 14, 8, 24, 3, 1, 1),
            Op::depthwise(9, 9, 6, 3, 1, 1),
            Op::pointwise(7, 7, 12, 20),
            Op::fuse1d(12, 12, 5, 3, 1, 1, Axis1d::Row),
            Op::fuse1d(7, 7, 9, 5, 1, 2, Axis1d::Col),
            Op::fc(100, 37),
        ]
    }

    #[test]
    fn plan_totals_match_cycles_for_all_dataflows() {
        for (rows, cols) in [(4usize, 6usize), (8, 8), (5, 3), (64, 64)] {
            for dataflow in [
                Dataflow::OutputStationary,
                Dataflow::WeightStationary,
                Dataflow::InputStationary,
            ] {
                let model = LatencyModel::new(array(rows, cols)).with_dataflow(dataflow);
                for op in ops() {
                    let plan = model.fold_plan(&op).unwrap();
                    let total: u64 = plan.iter().map(FoldSpec::cycles).sum();
                    assert_eq!(
                        total,
                        model.cycles(&op).unwrap(),
                        "{rows}x{cols} {dataflow:?} {op}"
                    );
                    let macs: u64 = plan.iter().map(|f| f.macs).sum();
                    assert_eq!(macs, op.macs(), "{rows}x{cols} {dataflow:?} {op}");
                    assert!(!plan.is_empty());
                }
            }
        }
    }

    #[test]
    fn plan_respects_batching() {
        let model = LatencyModel::new(array(8, 8)).with_batch(3);
        let op = Op::pointwise(5, 5, 8, 8);
        let plan = model.fold_plan(&op).unwrap();
        let total: u64 = plan.iter().map(FoldSpec::cycles).sum();
        assert_eq!(total, model.cycles(&op).unwrap());
    }

    #[test]
    fn plan_is_serial_even_for_double_buffered_models() {
        // The plan documents serial accounting; a double-buffered model's
        // cycles() is smaller than the plan total for multi-fold ops.
        let serial = LatencyModel::new(array(8, 8));
        let piped = serial.with_overlap(FoldOverlap::DoubleBuffered);
        let op = Op::pointwise(28, 28, 192, 64);
        let plan_total: u64 = piped
            .fold_plan(&op)
            .unwrap()
            .iter()
            .map(FoldSpec::cycles)
            .sum();
        assert_eq!(plan_total, serial.cycles(&op).unwrap());
        assert!(piped.cycles(&op).unwrap() < plan_total);
    }

    #[test]
    fn fuse_plan_requires_broadcast() {
        let model = LatencyModel::new(ArrayConfig::square(8).unwrap());
        let op = Op::fuse1d(12, 12, 5, 3, 1, 1, Axis1d::Row);
        assert!(matches!(
            model.fold_plan(&op),
            Err(LatencyError::BroadcastRequired { .. })
        ));
    }

    #[test]
    fn depthwise_plan_is_single_column() {
        let model = LatencyModel::new(array(8, 8));
        let op = Op::depthwise(5, 5, 4, 3, 1, 1);
        let plan = model.fold_plan(&op).unwrap();
        assert!(plan.iter().all(|f| f.cols_used == 1));
        assert!(plan.iter().all(|f| f.kind == FoldKind::OutputStationary));
    }
}

//! Network-level latency reports: per-operator, per-block and per-class
//! aggregation, plus the speed-up arithmetic behind Table I and Fig. 8.

use crate::map::{LatencyError, LatencyModel};
use fuseconv_models::Network;
use fuseconv_nn::ops::{Op, OpClass};
use std::collections::BTreeMap;
use std::fmt;

/// Escapes a string for embedding in a JSON string literal (hand-rolled;
/// the workspace carries no serde).
pub(crate) fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Latency of a single operator within a network.
#[derive(Debug, Clone, PartialEq)]
pub struct OpLatency {
    /// Index of the owning block.
    pub block_index: usize,
    /// Label of the owning block.
    pub block_name: String,
    /// The operator, pretty-printed.
    pub op_label: String,
    /// The operator's class.
    pub class: OpClass,
    /// MACs performed.
    pub macs: u64,
    /// Estimated cycles.
    pub cycles: u64,
}

impl OpLatency {
    /// Serializes to a single JSON object. `class` is omitted, matching
    /// the crate's historical wire format.
    pub fn to_json(&self) -> String {
        format!(
            "{{\"block_index\":{},\"block_name\":\"{}\",\"op_label\":\"{}\",\"macs\":{},\"cycles\":{}}}",
            self.block_index,
            json_escape(&self.block_name),
            json_escape(&self.op_label),
            self.macs,
            self.cycles
        )
    }
}

/// Aggregate latency of one network block.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BlockLatency {
    /// Block index.
    pub index: usize,
    /// Block label.
    pub name: String,
    /// Total cycles of the block's operators.
    pub cycles: u64,
}

/// Latency share per operator class — the quantity plotted in Fig. 8(c).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ClassBreakdown {
    cycles: BTreeMap<OpClass, u64>,
}

impl ClassBreakdown {
    /// Total cycles across all classes.
    pub fn total(&self) -> u64 {
        self.cycles.values().sum()
    }

    /// Cycles attributed to a class.
    pub fn cycles_of(&self, class: OpClass) -> u64 {
        self.cycles.get(&class).copied().unwrap_or(0)
    }

    /// Fraction of total latency attributed to a class, in `[0, 1]`.
    pub fn fraction_of(&self, class: OpClass) -> f64 {
        let total = self.total();
        if total == 0 {
            0.0
        } else {
            self.cycles_of(class) as f64 / total as f64
        }
    }

    /// All `(class, cycles)` entries, sorted by class.
    pub fn entries(&self) -> impl Iterator<Item = (OpClass, u64)> + '_ {
        self.cycles.iter().map(|(&c, &v)| (c, v))
    }
}

impl fmt::Display for ClassBreakdown {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (class, cycles) in self.entries() {
            writeln!(
                f,
                "  {class:<16} {cycles:>12} cycles ({:5.1}%)",
                self.fraction_of(class) * 100.0
            )?;
        }
        Ok(())
    }
}

/// The complete latency estimate of one network on one array.
#[derive(Debug, Clone, PartialEq)]
pub struct NetworkLatency {
    /// Network name.
    pub network: String,
    /// Variant label (`"baseline"`, `"fuse-full"`, …).
    pub variant: String,
    /// Total cycles for one inference.
    pub total_cycles: u64,
    /// Per-operator detail, in execution order.
    pub ops: Vec<OpLatency>,
}

impl NetworkLatency {
    /// Aggregates operator latencies by block.
    pub fn by_block(&self) -> Vec<BlockLatency> {
        let mut blocks: Vec<BlockLatency> = Vec::new();
        for op in &self.ops {
            match blocks.last_mut() {
                Some(b) if b.index == op.block_index => b.cycles += op.cycles,
                _ => blocks.push(BlockLatency {
                    index: op.block_index,
                    name: op.block_name.clone(),
                    cycles: op.cycles,
                }),
            }
        }
        blocks
    }

    /// Aggregates operator latencies by operator class (Fig. 8(c)).
    pub fn breakdown(&self) -> ClassBreakdown {
        let mut cycles = BTreeMap::new();
        for op in &self.ops {
            *cycles.entry(op.class).or_insert(0) += op.cycles;
        }
        ClassBreakdown { cycles }
    }

    /// Speed-up of `self` relative to `baseline` (`>1` means faster).
    pub fn speedup_over(&self, baseline: &NetworkLatency) -> f64 {
        baseline.total_cycles as f64 / self.total_cycles as f64
    }

    /// Serializes the whole report to JSON (hand-rolled; the workspace
    /// carries no serde).
    pub fn to_json(&self) -> String {
        let ops: Vec<String> = self.ops.iter().map(|o| o.to_json()).collect();
        format!(
            "{{\"network\":\"{}\",\"variant\":\"{}\",\"total_cycles\":{},\"ops\":[{}]}}",
            json_escape(&self.network),
            json_escape(&self.variant),
            self.total_cycles,
            ops.join(",")
        )
    }

    /// Serializes the per-operator detail to CSV, one row per operator
    /// with a header line. Fields containing commas or quotes are quoted.
    pub fn to_csv(&self) -> String {
        fn field(s: &str) -> String {
            if s.contains(',') || s.contains('"') || s.contains('\n') {
                format!("\"{}\"", s.replace('"', "\"\""))
            } else {
                s.to_string()
            }
        }
        let mut out = String::from("block_index,block_name,op_label,class,macs,cycles\n");
        for o in &self.ops {
            out.push_str(&format!(
                "{},{},{},{},{},{}\n",
                o.block_index,
                field(&o.block_name),
                field(&o.op_label),
                o.class,
                o.macs,
                o.cycles
            ));
        }
        out
    }
}

impl fmt::Display for NetworkLatency {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} [{}]: {} cycles",
            self.network, self.variant, self.total_cycles
        )
    }
}

/// Estimates the end-to-end latency of a network on the model's array.
///
/// Only array-bound operators are counted (convolutions of all kinds,
/// squeeze-and-excite FCs and classifier FCs), exactly as in §V-A-3.
///
/// # Errors
///
/// Propagates [`LatencyError`] from any operator (e.g. a FuSe op on a
/// broadcast-less array).
pub fn estimate_network(
    model: &LatencyModel,
    network: &Network,
) -> Result<NetworkLatency, LatencyError> {
    let mut ops = Vec::new();
    let mut total = 0u64;
    for named in network.ops() {
        let cycles = model.cycles(&named.op)?;
        total += cycles;
        ops.push(OpLatency {
            block_index: named.block_index,
            block_name: named.block_name,
            op_label: named.op.to_string(),
            class: named.op.class(),
            macs: named.op.macs(),
            cycles,
        });
    }
    Ok(NetworkLatency {
        network: network.name().to_string(),
        variant: network.variant_label().to_string(),
        total_cycles: total,
        ops,
    })
}

/// Per-block speed-ups of a transformed network relative to its baseline —
/// the quantity plotted in Fig. 8(b). Blocks are matched by index; both
/// networks must have the same block structure (the FuSe transform
/// preserves it).
///
/// # Panics
///
/// Panics if the two reports have different block counts.
pub fn block_speedups(
    baseline: &NetworkLatency,
    transformed: &NetworkLatency,
) -> Vec<(String, f64)> {
    let b = baseline.by_block();
    let t = transformed.by_block();
    assert_eq!(
        b.len(),
        t.len(),
        "networks must share block structure to compare per block"
    );
    b.iter()
        .zip(&t)
        .map(|(bb, tb)| (bb.name.clone(), bb.cycles as f64 / tb.cycles as f64))
        .collect()
}

/// Convenience: latency of `op` classes alone.
pub fn op_cycles(model: &LatencyModel, op: &Op) -> Result<u64, LatencyError> {
    model.cycles(op)
}

#[cfg(test)]
mod tests {
    use super::*;
    use fuseconv_models::zoo;
    use fuseconv_nn::FuSeVariant;
    use fuseconv_systolic::ArrayConfig;

    fn model64() -> LatencyModel {
        LatencyModel::new(ArrayConfig::square(64).unwrap().with_broadcast(true))
    }

    #[test]
    fn total_is_sum_of_ops() {
        let net = zoo::mobilenet_v1();
        let r = estimate_network(&model64(), &net).unwrap();
        let sum: u64 = r.ops.iter().map(|o| o.cycles).sum();
        assert_eq!(sum, r.total_cycles);
        assert_eq!(r.ops.len(), net.ops().len());
    }

    #[test]
    fn by_block_partitions_ops() {
        let net = zoo::mobilenet_v2();
        let r = estimate_network(&model64(), &net).unwrap();
        let blocks = r.by_block();
        assert_eq!(blocks.len(), net.blocks().len());
        let sum: u64 = blocks.iter().map(|b| b.cycles).sum();
        assert_eq!(sum, r.total_cycles);
    }

    #[test]
    fn breakdown_partitions_cycles() {
        let net = zoo::mobilenet_v3_large();
        let r = estimate_network(&model64(), &net).unwrap();
        let bd = r.breakdown();
        assert_eq!(bd.total(), r.total_cycles);
        // Baseline networks have depthwise but no FuSe latency.
        assert!(bd.cycles_of(OpClass::Depthwise) > 0);
        assert_eq!(bd.cycles_of(OpClass::FuSe), 0);
    }

    #[test]
    fn half_variant_speeds_up_every_network() {
        // Table I direction: all Half variants ≥ 3x on a 64x64 array.
        for net in zoo::all_baselines() {
            let base = estimate_network(&model64(), &net).unwrap();
            let half = estimate_network(&model64(), &net.transform_all(FuSeVariant::Half)).unwrap();
            let s = half.speedup_over(&base);
            assert!(s >= 3.0, "{}: half speedup {s:.2} < 3", net.name());
        }
    }

    #[test]
    fn full_variant_faster_despite_more_macs() {
        // §V-B-2's headline: the Full variant has MORE MACs than baseline
        // yet is significantly faster.
        for net in zoo::all_baselines() {
            let full_net = net.transform_all(FuSeVariant::Full);
            assert!(full_net.macs() > net.macs());
            let base = estimate_network(&model64(), &net).unwrap();
            let full = estimate_network(&model64(), &full_net).unwrap();
            let s = full.speedup_over(&base);
            assert!(s >= 2.0, "{}: full speedup {s:.2} < 2", net.name());
        }
    }

    #[test]
    fn half_beats_full_on_speed() {
        for net in zoo::all_baselines() {
            let base = estimate_network(&model64(), &net).unwrap();
            let full = estimate_network(&model64(), &net.transform_all(FuSeVariant::Full)).unwrap();
            let half = estimate_network(&model64(), &net.transform_all(FuSeVariant::Half)).unwrap();
            assert!(
                half.speedup_over(&base) > full.speedup_over(&base),
                "{}",
                net.name()
            );
        }
    }

    #[test]
    fn pointwise_dominates_after_transform() {
        // Fig. 8(c): after the transform, latency shifts to pointwise and
        // the FuSe ops account for a small fraction.
        for net in zoo::all_baselines() {
            let full = estimate_network(&model64(), &net.transform_all(FuSeVariant::Full)).unwrap();
            let bd = full.breakdown();
            let pw = bd.fraction_of(OpClass::Pointwise);
            let fuse = bd.fraction_of(OpClass::FuSe);
            assert!(pw > fuse, "{}: pw {pw:.2} vs fuse {fuse:.2}", net.name());
            assert!(fuse < 0.35, "{}: fuse fraction {fuse:.2}", net.name());
        }
    }

    #[test]
    fn early_blocks_speed_up_most_on_v2() {
        // Fig. 8(b): initial layers (larger feature maps) benefit more.
        let net = zoo::mobilenet_v2();
        let base = estimate_network(&model64(), &net).unwrap();
        let full = estimate_network(&model64(), &net.transform_all(FuSeVariant::Full)).unwrap();
        let speedups: Vec<f64> = block_speedups(&base, &full)
            .into_iter()
            .enumerate()
            .filter(|(i, _)| net.blocks()[*i].1.is_replaceable())
            .map(|(_, (_, s))| s)
            .collect();
        assert_eq!(speedups.len(), 17);
        let first3: f64 = speedups[..3].iter().sum::<f64>() / 3.0;
        let last3: f64 = speedups[speedups.len() - 3..].iter().sum::<f64>() / 3.0;
        assert!(
            first3 > last3,
            "early blocks ({first3:.2}x) should outpace late blocks ({last3:.2}x)"
        );
        // Every separable block individually gets faster.
        assert!(speedups.iter().all(|&s| s > 1.0));
    }

    #[test]
    fn speedup_grows_with_array_size() {
        // Fig. 8(d): under-utilization grows with array size, so FuSe
        // speed-ups grow monotonically in S.
        let net = zoo::mobilenet_v1();
        let full_net = net.transform_all(FuSeVariant::Full);
        let mut prev = 0.0;
        for s in [8usize, 16, 32, 64, 128] {
            let m = LatencyModel::new(ArrayConfig::square(s).unwrap().with_broadcast(true));
            let base = estimate_network(&m, &net).unwrap();
            let full = estimate_network(&m, &full_net).unwrap();
            let speedup = full.speedup_over(&base);
            assert!(
                speedup > prev,
                "speedup {speedup:.2} at {s} not above {prev:.2}"
            );
            prev = speedup;
        }
    }

    #[test]
    fn display_formats() {
        let net = zoo::mobilenet_v3_small();
        let r = estimate_network(&model64(), &net).unwrap();
        assert!(r.to_string().contains("MobileNet-V3-Small"));
        assert!(r.breakdown().to_string().contains("depthwise"));
    }

    #[test]
    fn json_and_csv_writers_cover_every_op() {
        let net = zoo::mobilenet_v2();
        let r = estimate_network(&model64(), &net).unwrap();
        let json = r.to_json();
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains(&format!("\"total_cycles\":{}", r.total_cycles)));
        assert_eq!(json.matches("\"op_label\":").count(), r.ops.len());
        let csv = r.to_csv();
        assert_eq!(csv.lines().count(), r.ops.len() + 1);
        assert!(csv.starts_with("block_index,block_name,op_label,class,macs,cycles"));
    }

    #[test]
    fn json_escape_handles_specials() {
        assert_eq!(super::json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(super::json_escape("\u{1}"), "\\u0001");
    }
}

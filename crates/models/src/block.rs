//! Network building blocks and their expansion into operator descriptors.

use fuseconv_nn::ops::{Axis1d, Op};
use fuseconv_nn::FuSeVariant;
use std::fmt;

/// The spatial filtering stage of a separable block: either the baseline
/// `K×K` depthwise convolution or a FuSeConv replacement.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SpatialFilter {
    /// Baseline `K×K` depthwise convolution.
    Depthwise,
    /// FuSeConv 1-D row/column filter banks (§IV-A).
    Fuse(FuSeVariant),
}

impl fmt::Display for SpatialFilter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SpatialFilter::Depthwise => f.write_str("depthwise"),
            SpatialFilter::Fuse(v) => write!(f, "fuse-{v}"),
        }
    }
}

/// A depthwise-separable / inverted-residual block.
///
/// Covers MobileNet-V1's separable blocks (`exp_c == in_c`, no SE),
/// MobileNet-V2/MnasNet inverted residuals (`exp_c = t·in_c`), and
/// MobileNet-V3 bottlenecks (adds squeeze-and-excite). The block expands to:
///
/// 1. expand pointwise `in_c → exp_c` (omitted when `exp_c == in_c`),
/// 2. the spatial filter (`K×K` depthwise, or FuSe row+column banks),
/// 3. squeeze-and-excite FCs on the spatial output (when configured),
/// 4. project pointwise `spatial_out → out_c`.
///
/// Under the Full FuSe variant the spatial output has `2·exp_c` channels,
/// so the SE and projection widths grow accordingly — this is where the
/// Full variant's extra parameters (Table I) come from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SeparableBlock {
    /// Input feature-map height.
    pub in_h: usize,
    /// Input feature-map width.
    pub in_w: usize,
    /// Input channels.
    pub in_c: usize,
    /// Expanded channels (`t·in_c`; equal to `in_c` when there is no
    /// expansion stage).
    pub exp_c: usize,
    /// Output channels.
    pub out_c: usize,
    /// Depthwise kernel extent.
    pub k: usize,
    /// Stride of the spatial stage.
    pub stride: usize,
    /// Squeeze-and-excite bottleneck divisor: `Some(d)` gives a bottleneck
    /// of `spatial_out / d` features (MobileNet-V3 uses `d = 4`).
    pub se_div: Option<usize>,
    /// Which spatial filter the block currently uses.
    pub filter: SpatialFilter,
}

impl SeparableBlock {
    /// Output spatial extents after the strided spatial stage.
    pub fn out_hw(&self) -> (usize, usize) {
        let pad = self.k / 2;
        (
            (self.in_h + 2 * pad - self.k) / self.stride + 1,
            (self.in_w + 2 * pad - self.k) / self.stride + 1,
        )
    }

    /// Channels leaving the spatial stage (before projection): `exp_c` for
    /// depthwise, `2·exp_c/D` for FuSe.
    pub fn spatial_out_c(&self) -> usize {
        match self.filter {
            SpatialFilter::Depthwise => self.exp_c,
            SpatialFilter::Fuse(v) => 2 * self.exp_c / v.d(),
        }
    }

    /// Returns a copy with the spatial filter replaced by a FuSe bank.
    #[must_use]
    pub fn fused(mut self, variant: FuSeVariant) -> Self {
        self.filter = SpatialFilter::Fuse(variant);
        self
    }

    /// Expands the block into operator descriptors, in execution order.
    pub fn ops(&self) -> Vec<Op> {
        let mut ops = Vec::new();
        if self.exp_c != self.in_c {
            ops.push(Op::pointwise(self.in_h, self.in_w, self.in_c, self.exp_c));
        }
        let pad = self.k / 2;
        match self.filter {
            SpatialFilter::Depthwise => {
                ops.push(Op::depthwise(
                    self.in_h,
                    self.in_w,
                    self.exp_c,
                    self.k,
                    self.stride,
                    pad,
                ));
            }
            SpatialFilter::Fuse(v) => {
                let per_bank = self.exp_c / v.d();
                ops.push(Op::fuse1d(
                    self.in_h,
                    self.in_w,
                    per_bank,
                    self.k,
                    self.stride,
                    pad,
                    Axis1d::Row,
                ));
                ops.push(Op::fuse1d(
                    self.in_h,
                    self.in_w,
                    per_bank,
                    self.k,
                    self.stride,
                    pad,
                    Axis1d::Col,
                ));
            }
        }
        let (oh, ow) = self.out_hw();
        let spatial_c = self.spatial_out_c();
        if let Some(div) = self.se_div {
            let reduced = (spatial_c / div).max(1);
            ops.push(Op::fc(spatial_c, reduced));
            ops.push(Op::fc(reduced, spatial_c));
        }
        ops.push(Op::pointwise(oh, ow, spatial_c, self.out_c));
        ops
    }
}

/// One stage of a network.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Block {
    /// A standard convolution (network stems).
    Conv {
        /// Input feature-map height.
        in_h: usize,
        /// Input feature-map width.
        in_w: usize,
        /// Input channels.
        in_c: usize,
        /// Output channels.
        out_c: usize,
        /// Kernel extent.
        k: usize,
        /// Stride.
        stride: usize,
    },
    /// A depthwise-separable / inverted-residual block.
    Separable(SeparableBlock),
    /// A `1×1` convolution head (e.g. the 1280-channel feature head).
    Head {
        /// Feature-map height.
        in_h: usize,
        /// Feature-map width.
        in_w: usize,
        /// Input channels.
        in_c: usize,
        /// Output channels.
        out_c: usize,
    },
    /// A fully-connected layer (after global pooling).
    Fc {
        /// Input features.
        in_features: usize,
        /// Output features.
        out_features: usize,
    },
}

impl Block {
    /// Whether the FuSe transformation applies to this block.
    pub fn is_replaceable(&self) -> bool {
        matches!(
            self,
            Block::Separable(SeparableBlock {
                filter: SpatialFilter::Depthwise,
                ..
            })
        )
    }

    /// Expands the block into operator descriptors.
    pub fn ops(&self) -> Vec<Op> {
        match *self {
            Block::Conv {
                in_h,
                in_w,
                in_c,
                out_c,
                k,
                stride,
            } => vec![Op::conv2d(in_h, in_w, in_c, out_c, k, stride, k / 2)],
            Block::Separable(b) => b.ops(),
            Block::Head {
                in_h,
                in_w,
                in_c,
                out_c,
            } => vec![Op::pointwise(in_h, in_w, in_c, out_c)],
            Block::Fc {
                in_features,
                out_features,
            } => vec![Op::fc(in_features, out_features)],
        }
    }

    /// Returns the FuSe-transformed copy of a separable block; other block
    /// kinds are returned unchanged.
    #[must_use]
    pub fn fused(self, variant: FuSeVariant) -> Self {
        match self {
            Block::Separable(b) => Block::Separable(b.fused(variant)),
            other => other,
        }
    }
}

impl fmt::Display for Block {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Block::Conv {
                out_c, k, stride, ..
            } => {
                write!(f, "conv{k}x{k}-s{stride}-{out_c}")
            }
            Block::Separable(b) => write!(
                f,
                "{}-k{}-s{}-e{}-o{}",
                b.filter, b.k, b.stride, b.exp_c, b.out_c
            ),
            Block::Head { out_c, .. } => write!(f, "head-{out_c}"),
            Block::Fc { out_features, .. } => write!(f, "fc-{out_features}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v1_block() -> SeparableBlock {
        SeparableBlock {
            in_h: 56,
            in_w: 56,
            in_c: 128,
            exp_c: 128,
            out_c: 256,
            k: 3,
            stride: 2,
            se_div: None,
            filter: SpatialFilter::Depthwise,
        }
    }

    #[test]
    fn v1_style_block_has_no_expansion() {
        let ops = v1_block().ops();
        assert_eq!(ops.len(), 2); // depthwise + project
        assert_eq!(ops[0].macs(), 28 * 28 * 128 * 9);
        assert_eq!(ops[1].macs(), 28 * 28 * 128 * 256);
    }

    #[test]
    fn inverted_residual_has_expansion() {
        let b = SeparableBlock {
            in_h: 28,
            in_w: 28,
            in_c: 32,
            exp_c: 192,
            out_c: 64,
            k: 3,
            stride: 2,
            se_div: None,
            filter: SpatialFilter::Depthwise,
        };
        let ops = b.ops();
        assert_eq!(ops.len(), 3); // expand + dw + project
        assert_eq!(ops[0].macs(), 28 * 28 * 32 * 192);
        assert_eq!(ops[2].macs(), 14 * 14 * 192 * 64);
    }

    #[test]
    fn se_adds_two_fcs_on_spatial_output() {
        let b = SeparableBlock {
            se_div: Some(4),
            ..v1_block()
        };
        let ops = b.ops();
        assert_eq!(ops.len(), 4);
        assert_eq!(ops[1].macs(), 128 * 32); // squeeze
        assert_eq!(ops[2].macs(), 32 * 128); // excite
    }

    #[test]
    fn full_fuse_doubles_projection_and_se_width() {
        let base = SeparableBlock {
            se_div: Some(4),
            ..v1_block()
        };
        let fused = base.fused(FuSeVariant::Full);
        assert_eq!(fused.spatial_out_c(), 256);
        let ops = fused.ops();
        // row + col + 2 SE FCs + project
        assert_eq!(ops.len(), 5);
        assert_eq!(ops[2].macs(), 256 * 64); // SE squeeze on 2C
        assert_eq!(ops[4].macs(), 28 * 28 * 256 * 256); // project from 2C
    }

    #[test]
    fn half_fuse_preserves_widths() {
        let fused = v1_block().fused(FuSeVariant::Half);
        assert_eq!(fused.spatial_out_c(), 128);
        let ops = fused.ops();
        assert_eq!(ops.len(), 3);
        // Row and col banks each on C/2 channels.
        assert_eq!(ops[0].macs(), 28 * 28 * 64 * 3);
        assert_eq!(ops[1].macs(), 28 * 28 * 64 * 3);
        assert_eq!(ops[2].macs(), 28 * 28 * 128 * 256);
    }

    #[test]
    fn fuse_preserves_block_output_shape() {
        for variant in [FuSeVariant::Full, FuSeVariant::Half] {
            let base = v1_block();
            let fused = base.fused(variant);
            assert_eq!(base.out_hw(), fused.out_hw());
            let (bh, bw, bc) = base.ops().last().unwrap().output_shape();
            let (fh, fw, fc) = fused.ops().last().unwrap().output_shape();
            assert_eq!((bh, bw, bc), (fh, fw, fc));
        }
    }

    #[test]
    fn replaceability() {
        let sep = Block::Separable(v1_block());
        assert!(sep.is_replaceable());
        assert!(!sep.fused(FuSeVariant::Half).is_replaceable());
        let conv = Block::Conv {
            in_h: 224,
            in_w: 224,
            in_c: 3,
            out_c: 32,
            k: 3,
            stride: 2,
        };
        assert!(!conv.is_replaceable());
        assert!(!Block::Fc {
            in_features: 1024,
            out_features: 1000
        }
        .is_replaceable());
    }

    #[test]
    fn display_is_descriptive() {
        assert_eq!(
            Block::Separable(v1_block()).to_string(),
            "depthwise-k3-s2-e128-o256"
        );
        assert_eq!(
            Block::Separable(v1_block().fused(FuSeVariant::Full)).to_string(),
            "fuse-full-k3-s2-e128-o256"
        );
    }
}

//! Architecture tables for the five networks the paper evaluates, plus the
//! FuSeConv drop-in transformation (§V-A-1).
//!
//! Networks are sequences of [`Block`]s; each block expands into the
//! shape-level [`Op`](fuseconv_nn::ops::Op) descriptors that the latency
//! model consumes. The five constructors in [`zoo`] transcribe the
//! published layer tables of MobileNet-V1/V2/V3-Small/V3-Large and
//! MnasNet-B1 at 224×224 input resolution.
//!
//! The FuSeConv transformation replaces the depthwise convolution inside
//! any separable block with the paper's 1-D row/column filter banks —
//! either in **all** blocks (`Full`/`Half` variants) or in a caller-chosen
//! subset (the `-50%` variants, whose subset is selected for maximum
//! latency benefit by `fuseconv-core`).
//!
//! # Examples
//!
//! ```
//! use fuseconv_models::zoo;
//! use fuseconv_nn::FuSeVariant;
//!
//! let v1 = zoo::mobilenet_v1();
//! let fuse = v1.transform_all(FuSeVariant::Half);
//! // The half variant has slightly fewer MACs than the baseline (§IV-A).
//! assert!(fuse.macs() < v1.macs());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod block;
pub mod network;
pub mod shape;
pub mod topology;
pub mod zoo;

pub use block::{Block, SeparableBlock, SpatialFilter};
pub use network::{Network, NetworkSummary};
pub use shape::{op_consumes, Shape, ShapeFlow};

//! Whole-network descriptions: named block sequences with MAC/parameter
//! summaries and the FuSe transformation.

use crate::block::Block;
use fuseconv_nn::ops::Op;
use fuseconv_nn::FuSeVariant;
use std::fmt;

/// A named operator within a network, tagged with the block it came from.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NamedOp {
    /// Index of the owning block within the network.
    pub block_index: usize,
    /// Human-readable block label (e.g. `"bneck3"`).
    pub block_name: String,
    /// The operator descriptor.
    pub op: Op,
}

/// Aggregate MAC/parameter summary, as reported in Table I.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NetworkSummary {
    /// Total multiply-accumulates for one 224×224 inference.
    pub macs: u64,
    /// Total weight parameters.
    pub params: u64,
}

impl NetworkSummary {
    /// MACs in millions, the unit used by Table I.
    pub fn macs_millions(&self) -> f64 {
        self.macs as f64 / 1e6
    }

    /// Parameters in millions.
    pub fn params_millions(&self) -> f64 {
        self.params as f64 / 1e6
    }
}

/// A complete network: an ordered list of named blocks.
#[derive(Debug, Clone, PartialEq)]
pub struct Network {
    name: String,
    variant_label: String,
    blocks: Vec<(String, Block)>,
}

impl Network {
    /// Creates a network from named blocks.
    pub fn new(name: impl Into<String>, blocks: Vec<(String, Block)>) -> Self {
        Network {
            name: name.into(),
            variant_label: "baseline".into(),
            blocks,
        }
    }

    /// The network's name (e.g. `"MobileNet-V2"`).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Label of the variant this network represents (`"baseline"`,
    /// `"fuse-full"`, `"fuse-half-50%"`, …).
    pub fn variant_label(&self) -> &str {
        &self.variant_label
    }

    /// The blocks, with their labels.
    pub fn blocks(&self) -> &[(String, Block)] {
        &self.blocks
    }

    /// All operator descriptors in execution order, tagged by block.
    pub fn ops(&self) -> Vec<NamedOp> {
        self.blocks
            .iter()
            .enumerate()
            .flat_map(|(i, (name, block))| {
                block.ops().into_iter().map(move |op| NamedOp {
                    block_index: i,
                    block_name: name.clone(),
                    op,
                })
            })
            .collect()
    }

    /// Total MACs.
    pub fn macs(&self) -> u64 {
        self.ops().iter().map(|n| n.op.macs()).sum()
    }

    /// Total parameters.
    pub fn params(&self) -> u64 {
        self.ops().iter().map(|n| n.op.params()).sum()
    }

    /// MAC/parameter summary.
    pub fn summary(&self) -> NetworkSummary {
        NetworkSummary {
            macs: self.macs(),
            params: self.params(),
        }
    }

    /// Indices of blocks eligible for the FuSe transformation.
    pub fn replaceable_indices(&self) -> Vec<usize> {
        self.blocks
            .iter()
            .enumerate()
            .filter(|(_, (_, b))| b.is_replaceable())
            .map(|(i, _)| i)
            .collect()
    }

    /// Replaces the depthwise filter with FuSe banks in **all** separable
    /// blocks — the paper's `Full`/`Half` variants.
    #[must_use]
    pub fn transform_all(&self, variant: FuSeVariant) -> Network {
        let indices = self.replaceable_indices();
        self.transform_selected(variant, &indices)
            .expect("replaceable indices are valid by construction")
    }

    /// Replaces the depthwise filter in the chosen blocks only — used by
    /// the `-50%` variants, whose selection maximizes latency benefit.
    ///
    /// # Errors
    ///
    /// Returns the offending index if any selected block is not
    /// replaceable.
    pub fn transform_selected(
        &self,
        variant: FuSeVariant,
        indices: &[usize],
    ) -> Result<Network, usize> {
        for &i in indices {
            if self.blocks.get(i).is_none_or(|(_, b)| !b.is_replaceable()) {
                return Err(i);
            }
        }
        let blocks = self
            .blocks
            .iter()
            .enumerate()
            .map(|(i, (name, block))| {
                let b = if indices.contains(&i) {
                    block.fused(variant)
                } else {
                    *block
                };
                (name.clone(), b)
            })
            .collect();
        let all = indices.len() == self.replaceable_indices().len();
        let label = match (variant, all) {
            (FuSeVariant::Full, true) => "fuse-full".to_string(),
            (FuSeVariant::Half, true) => "fuse-half".to_string(),
            (FuSeVariant::Full, false) => format!(
                "fuse-full-{}of{}",
                indices.len(),
                self.replaceable_indices().len()
            ),
            (FuSeVariant::Half, false) => format!(
                "fuse-half-{}of{}",
                indices.len(),
                self.replaceable_indices().len()
            ),
        };
        Ok(Network {
            name: self.name.clone(),
            variant_label: label,
            blocks,
        })
    }
}

impl fmt::Display for Network {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = self.summary();
        write!(
            f,
            "{} [{}]: {} blocks, {:.0}M MACs, {:.2}M params",
            self.name,
            self.variant_label,
            self.blocks.len(),
            s.macs_millions(),
            s.params_millions()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::block::{SeparableBlock, SpatialFilter};

    fn tiny_network() -> Network {
        let stem = Block::Conv {
            in_h: 32,
            in_w: 32,
            in_c: 3,
            out_c: 8,
            k: 3,
            stride: 2,
        };
        let sep = Block::Separable(SeparableBlock {
            in_h: 16,
            in_w: 16,
            in_c: 8,
            exp_c: 8,
            out_c: 16,
            k: 3,
            stride: 1,
            se_div: None,
            filter: SpatialFilter::Depthwise,
        });
        let fc = Block::Fc {
            in_features: 16,
            out_features: 10,
        };
        Network::new(
            "tiny",
            vec![
                ("stem".into(), stem),
                ("sep1".into(), sep),
                ("fc".into(), fc),
            ],
        )
    }

    #[test]
    fn ops_are_tagged_by_block() {
        let net = tiny_network();
        let ops = net.ops();
        assert_eq!(ops.len(), 4); // conv, dw, pw, fc
        assert_eq!(ops[0].block_name, "stem");
        assert_eq!(ops[1].block_index, 1);
        assert_eq!(ops[2].block_index, 1);
        assert_eq!(ops[3].block_name, "fc");
    }

    #[test]
    fn summary_sums_ops() {
        let net = tiny_network();
        let by_hand: u64 = net.ops().iter().map(|n| n.op.macs()).sum();
        assert_eq!(net.summary().macs, by_hand);
        assert!(net.summary().params > 0);
    }

    #[test]
    fn transform_all_replaces_every_separable() {
        let net = tiny_network();
        let fused = net.transform_all(FuSeVariant::Half);
        assert_eq!(fused.replaceable_indices(), Vec::<usize>::new());
        assert_eq!(fused.variant_label(), "fuse-half");
        // Block count unchanged; op count grows by one (row+col vs dw).
        assert_eq!(fused.blocks().len(), net.blocks().len());
        assert_eq!(fused.ops().len(), net.ops().len() + 1);
    }

    #[test]
    fn transform_selected_validates_indices() {
        let net = tiny_network();
        assert!(net.transform_selected(FuSeVariant::Full, &[0]).is_err()); // stem
        assert!(net.transform_selected(FuSeVariant::Full, &[9]).is_err()); // out of range
        let ok = net.transform_selected(FuSeVariant::Full, &[1]).unwrap();
        assert!(ok.variant_label().starts_with("fuse-full"));
    }

    #[test]
    fn partial_transform_labels_fraction() {
        let mut blocks = tiny_network().blocks().to_vec();
        blocks.push(blocks[1].clone()); // a second separable block
        let net = Network::new("tiny2", blocks);
        let partial = net.transform_selected(FuSeVariant::Half, &[1]).unwrap();
        assert_eq!(partial.variant_label(), "fuse-half-1of2");
        assert_eq!(partial.replaceable_indices().len(), 1);
    }

    #[test]
    fn display_reports_summary() {
        let s = tiny_network().to_string();
        assert!(s.contains("tiny"));
        assert!(s.contains("baseline"));
    }
}

//! Symbolic tensor shapes and shape propagation through blocks.
//!
//! Every [`Block`] consumes one feature map and produces another; this
//! module makes those shapes first-class so static analyses can propagate
//! them through a whole topology without expanding any operators. The
//! `fuseconv-analyze` SHP rules build on [`ShapeFlow`] to prove
//! channel/spatial consistency of the zoo and that FuSe substitution
//! preserves every replaced block's output shape.

use crate::block::{Block, SeparableBlock};
use fuseconv_nn::ops::Op;

/// A feature-map shape: height × width × channels.
///
/// Fully-connected layers are modelled as `1×1×features`, matching the
/// global-pool-then-classify structure of every zoo network.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Shape {
    /// Feature-map height.
    pub h: usize,
    /// Feature-map width.
    pub w: usize,
    /// Channels (or features for FC layers).
    pub c: usize,
}

impl Shape {
    /// Convenience constructor.
    pub fn new(h: usize, w: usize, c: usize) -> Self {
        Shape { h, w, c }
    }

    /// Total elements.
    pub fn elems(&self) -> usize {
        self.h * self.w * self.c
    }
}

impl std::fmt::Display for Shape {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}x{}x{}", self.h, self.w, self.c)
    }
}

/// Symbolic shape propagation: what a stage consumes and produces.
pub trait ShapeFlow {
    /// The input feature-map shape the stage expects.
    fn input_shape(&self) -> Shape;
    /// The output feature-map shape the stage produces.
    fn output_shape(&self) -> Shape;
}

/// `same`-padded strided output extent, the convention every block
/// constructor uses (`pad = k/2`).
fn conv_out(extent: usize, k: usize, stride: usize) -> usize {
    (extent + 2 * (k / 2) - k) / stride + 1
}

impl ShapeFlow for SeparableBlock {
    fn input_shape(&self) -> Shape {
        Shape::new(self.in_h, self.in_w, self.in_c)
    }

    fn output_shape(&self) -> Shape {
        let (oh, ow) = self.out_hw();
        Shape::new(oh, ow, self.out_c)
    }
}

impl ShapeFlow for Block {
    fn input_shape(&self) -> Shape {
        match *self {
            Block::Conv {
                in_h, in_w, in_c, ..
            } => Shape::new(in_h, in_w, in_c),
            Block::Separable(b) => b.input_shape(),
            Block::Head {
                in_h, in_w, in_c, ..
            } => Shape::new(in_h, in_w, in_c),
            Block::Fc { in_features, .. } => Shape::new(1, 1, in_features),
        }
    }

    fn output_shape(&self) -> Shape {
        match *self {
            Block::Conv {
                in_h,
                in_w,
                out_c,
                k,
                stride,
                ..
            } => Shape::new(conv_out(in_h, k, stride), conv_out(in_w, k, stride), out_c),
            Block::Separable(b) => b.output_shape(),
            Block::Head {
                in_h, in_w, out_c, ..
            } => Shape::new(in_h, in_w, out_c),
            Block::Fc { out_features, .. } => Shape::new(1, 1, out_features),
        }
    }
}

/// Whether `consumer` can read the tensor `producer` writes, under the
/// slice-or-concat channel rule the zoo's block expansions use.
///
/// Within a block, an op's output is consumed either whole (`in_c` of
/// the consumer at least the producer's `out_c` — the project pointwise
/// reading the concatenation of both FuSe banks), or as an even channel
/// slice (`out_c` a multiple of the consumer's channel count — each FuSe
/// bank reading `exp_c / d` channels of the expansion). Fully-connected
/// consumers follow a global pool, which flattens any shape. Fusion
/// analysis uses this to prove an op's output is dead: no later op in
/// its block satisfies either reading pattern.
pub fn op_consumes(producer: &Op, consumer: &Op) -> bool {
    let (_, _, out_c) = producer.output_shape();
    let reads = |in_c: usize| in_c >= out_c || (in_c != 0 && out_c % in_c == 0);
    match *consumer {
        Op::Fc { .. } => true,
        Op::Conv2d { in_c, .. } | Op::Pointwise { in_c, .. } => reads(in_c),
        Op::Depthwise { c, .. } | Op::FuSe1d { c, .. } => reads(c),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::block::SpatialFilter;
    use fuseconv_nn::FuSeVariant;

    fn sep() -> SeparableBlock {
        SeparableBlock {
            in_h: 56,
            in_w: 56,
            in_c: 128,
            exp_c: 128,
            out_c: 256,
            k: 3,
            stride: 2,
            se_div: None,
            filter: SpatialFilter::Depthwise,
        }
    }

    #[test]
    fn conv_shapes_match_op_descriptor() {
        let b = Block::Conv {
            in_h: 224,
            in_w: 224,
            in_c: 3,
            out_c: 32,
            k: 3,
            stride: 2,
        };
        assert_eq!(b.input_shape(), Shape::new(224, 224, 3));
        // Matches Op::conv2d(224, 224, 3, 32, 3, 2, 1).output_shape().
        let (oh, ow, oc) = b.ops()[0].output_shape();
        assert_eq!(b.output_shape(), Shape::new(oh, ow, oc));
    }

    #[test]
    fn separable_output_matches_last_op() {
        for block in [
            Block::Separable(sep()),
            Block::Separable(sep().fused(FuSeVariant::Full)),
            Block::Separable(sep().fused(FuSeVariant::Half)),
        ] {
            let (oh, ow, oc) = block.ops().last().unwrap().output_shape();
            assert_eq!(block.output_shape(), Shape::new(oh, ow, oc), "{block}");
        }
    }

    #[test]
    fn fc_is_one_by_one() {
        let b = Block::Fc {
            in_features: 1024,
            out_features: 1000,
        };
        assert_eq!(b.input_shape(), Shape::new(1, 1, 1024));
        assert_eq!(b.output_shape(), Shape::new(1, 1, 1000));
        assert_eq!(b.output_shape().elems(), 1000);
    }

    #[test]
    fn display_reads_h_w_c() {
        assert_eq!(Shape::new(7, 7, 960).to_string(), "7x7x960");
    }

    #[test]
    fn op_consumes_covers_every_block_expansion() {
        // Every adjacent (and concat-skipping) producer/consumer pair the
        // zoo's blocks generate satisfies the slice-or-concat rule.
        for block in [
            Block::Separable(sep()),
            Block::Separable(sep().fused(FuSeVariant::Full)),
            Block::Separable(sep().fused(FuSeVariant::Half)),
        ] {
            let ops = block.ops();
            for (i, producer) in ops.iter().enumerate() {
                if i + 1 == ops.len() {
                    continue;
                }
                assert!(
                    ops[i + 1..].iter().any(|c| op_consumes(producer, c)),
                    "{block}: output of `{producer}` is unread"
                );
            }
        }
        // A consumer that neither covers nor evenly slices the producer's
        // channels does not read it.
        let producer = fuseconv_nn::ops::Op::depthwise(8, 8, 7, 3, 1, 1);
        let consumer = fuseconv_nn::ops::Op::pointwise(8, 8, 3, 16);
        assert!(!op_consumes(&producer, &consumer));
    }
}

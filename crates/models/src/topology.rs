//! A SCALE-Sim-style textual topology format for custom networks.
//!
//! The paper's latency methodology comes from SCALE-Sim, which describes
//! workloads as CSV topology files. This module provides an equivalent so
//! downstream users can evaluate their own networks without writing Rust:
//! one block per line, comma-separated, `#` comments allowed.
//!
//! ```text
//! # kind, args…
//! conv,   <out_c>, <k>, <stride>
//! sep,    <exp_c>, <out_c>, <k>, <stride>[, se<div>]
//! head,   <out_c>
//! fc,     <out_features>
//! input,  <side>, <channels>          (must be the first directive)
//! ```
//!
//! Feature-map geometry is tracked implicitly, exactly like the builders in
//! [`crate::zoo`]. `sep` blocks are the replaceable depthwise-separable /
//! inverted-residual stages.
//!
//! # Examples
//!
//! ```
//! # fn main() -> Result<(), fuseconv_models::topology::ParseTopologyError> {
//! use fuseconv_models::topology;
//!
//! let net = topology::parse(
//!     "my-net",
//!     "input, 32, 3
//!      conv,  8, 3, 2
//!      sep,   8, 16, 3, 1
//!      fc,    10",
//! )?;
//! assert_eq!(net.replaceable_indices().len(), 1);
//! # Ok(())
//! # }
//! ```

use crate::block::{Block, SeparableBlock, SpatialFilter};
use crate::network::Network;
use std::error::Error;
use std::fmt;

/// Error produced when parsing a topology description.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseTopologyError {
    /// 1-based line number of the offending directive.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for ParseTopologyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "topology line {}: {}", self.line, self.message)
    }
}

impl Error for ParseTopologyError {}

fn err(line: usize, message: impl Into<String>) -> ParseTopologyError {
    ParseTopologyError {
        line,
        message: message.into(),
    }
}

fn parse_usize(line: usize, field: &str, what: &str) -> Result<usize, ParseTopologyError> {
    field.trim().parse().map_err(|_| {
        err(
            line,
            format!("{what} must be an integer, got `{}`", field.trim()),
        )
    })
}

/// Parses a topology description into a [`Network`].
///
/// # Errors
///
/// Returns [`ParseTopologyError`] for unknown directives, wrong arity,
/// non-integer fields, a missing/duplicate `input` directive, or
/// zero-sized dimensions.
pub fn parse(name: &str, text: &str) -> Result<Network, ParseTopologyError> {
    let mut blocks: Vec<(String, Block)> = Vec::new();
    let mut geom: Option<(usize, usize, usize)> = None; // (h, w, c)

    for (idx, raw) in text.lines().enumerate() {
        let line_no = idx + 1;
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let fields: Vec<&str> = line.split(',').map(str::trim).collect();
        let kind = fields[0].to_ascii_lowercase();
        let args = &fields[1..];

        if kind == "input" {
            if geom.is_some() {
                return Err(err(line_no, "duplicate `input` directive"));
            }
            if args.len() != 2 {
                return Err(err(line_no, "`input` takes <side>, <channels>"));
            }
            let side = parse_usize(line_no, args[0], "input side")?;
            let channels = parse_usize(line_no, args[1], "input channels")?;
            if side == 0 || channels == 0 {
                return Err(err(line_no, "input dimensions must be nonzero"));
            }
            geom = Some((side, side, channels));
            continue;
        }

        let Some((h, w, c)) = geom else {
            return Err(err(line_no, "the first directive must be `input`"));
        };

        match kind.as_str() {
            "conv" => {
                if args.len() != 3 {
                    return Err(err(line_no, "`conv` takes <out_c>, <k>, <stride>"));
                }
                let out_c = parse_usize(line_no, args[0], "out_c")?;
                let k = parse_usize(line_no, args[1], "k")?;
                let stride = parse_usize(line_no, args[2], "stride")?;
                validate_spatial(line_no, h, w, k, stride)?;
                blocks.push((
                    format!("conv{}", blocks.len()),
                    Block::Conv {
                        in_h: h,
                        in_w: w,
                        in_c: c,
                        out_c,
                        k,
                        stride,
                    },
                ));
                let pad = k / 2;
                geom = Some((
                    (h + 2 * pad - k) / stride + 1,
                    (w + 2 * pad - k) / stride + 1,
                    out_c,
                ));
            }
            "sep" => {
                if args.len() != 4 && args.len() != 5 {
                    return Err(err(
                        line_no,
                        "`sep` takes <exp_c>, <out_c>, <k>, <stride>[, se<div>]",
                    ));
                }
                let exp_c = parse_usize(line_no, args[0], "exp_c")?;
                let out_c = parse_usize(line_no, args[1], "out_c")?;
                let k = parse_usize(line_no, args[2], "k")?;
                let stride = parse_usize(line_no, args[3], "stride")?;
                validate_spatial(line_no, h, w, k, stride)?;
                let se_div = match args.get(4) {
                    None => None,
                    Some(field) => {
                        let stripped = field
                            .strip_prefix("se")
                            .ok_or_else(|| err(line_no, "fifth field must be `se<div>`"))?;
                        Some(parse_usize(line_no, stripped, "se divisor")?)
                    }
                };
                if exp_c == 0 || out_c == 0 {
                    return Err(err(line_no, "channel counts must be nonzero"));
                }
                let block = SeparableBlock {
                    in_h: h,
                    in_w: w,
                    in_c: c,
                    exp_c,
                    out_c,
                    k,
                    stride,
                    se_div,
                    filter: SpatialFilter::Depthwise,
                };
                let (oh, ow) = block.out_hw();
                blocks.push((format!("sep{}", blocks.len()), Block::Separable(block)));
                geom = Some((oh, ow, out_c));
            }
            "head" => {
                if args.len() != 1 {
                    return Err(err(line_no, "`head` takes <out_c>"));
                }
                let out_c = parse_usize(line_no, args[0], "out_c")?;
                blocks.push((
                    format!("head{}", blocks.len()),
                    Block::Head {
                        in_h: h,
                        in_w: w,
                        in_c: c,
                        out_c,
                    },
                ));
                geom = Some((h, w, out_c));
            }
            "fc" => {
                if args.len() != 1 {
                    return Err(err(line_no, "`fc` takes <out_features>"));
                }
                let out = parse_usize(line_no, args[0], "out_features")?;
                blocks.push((
                    format!("fc{}", blocks.len()),
                    Block::Fc {
                        in_features: c,
                        out_features: out,
                    },
                ));
                geom = Some((1, 1, out));
            }
            other => {
                return Err(err(
                    line_no,
                    format!("unknown directive `{other}` (expected input/conv/sep/head/fc)"),
                ));
            }
        }
    }

    if geom.is_none() {
        return Err(err(0, "empty topology: missing `input` directive"));
    }
    if blocks.is_empty() {
        return Err(err(0, "topology declares no blocks"));
    }
    Ok(Network::new(name, blocks))
}

fn validate_spatial(
    line: usize,
    _h: usize,
    _w: usize,
    k: usize,
    stride: usize,
) -> Result<(), ParseTopologyError> {
    // With same-padding (k/2) every kernel fits any nonzero feature map,
    // so only degenerate hyper-parameters can be rejected here.
    if k == 0 || stride == 0 {
        return Err(err(line, "kernel and stride must be nonzero"));
    }
    Ok(())
}

/// Serializes a network back into the topology format. `parse ∘ to_text`
/// is the identity on block structure (labels are regenerated).
pub fn to_text(network: &Network) -> String {
    let mut out = format!("# topology of {}\n", network.name());
    let mut wrote_input = false;
    for (_, block) in network.blocks() {
        if !wrote_input {
            let (h, c) = match *block {
                Block::Conv { in_h, in_c, .. } => (in_h, in_c),
                Block::Separable(b) => (b.in_h, b.in_c),
                Block::Head { in_h, in_c, .. } => (in_h, in_c),
                Block::Fc { in_features, .. } => (1, in_features),
            };
            out.push_str(&format!("input, {h}, {c}\n"));
            wrote_input = true;
        }
        match *block {
            Block::Conv {
                out_c, k, stride, ..
            } => out.push_str(&format!("conv, {out_c}, {k}, {stride}\n")),
            Block::Separable(b) => {
                let se = b.se_div.map(|d| format!(", se{d}")).unwrap_or_default();
                out.push_str(&format!(
                    "sep, {}, {}, {}, {}{se}\n",
                    b.exp_c, b.out_c, b.k, b.stride
                ));
            }
            Block::Head { out_c, .. } => out.push_str(&format!("head, {out_c}\n")),
            Block::Fc { out_features, .. } => out.push_str(&format!("fc, {out_features}\n")),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::zoo;

    const TINY: &str = "
        # a tiny edge network
        input, 32, 3
        conv,  8, 3, 2
        sep,   8, 16, 3, 1          # V1-style block
        sep,   96, 24, 5, 2, se4    # V3-style block with SE
        head,  64
        fc,    10
    ";

    #[test]
    fn parses_valid_topology() {
        let net = parse("tiny", TINY).unwrap();
        assert_eq!(net.blocks().len(), 5);
        assert_eq!(net.replaceable_indices(), vec![1, 2]);
        assert!(net.macs() > 0);
        // SE present on the second sep block: its ops include two FCs.
        let ops = net.blocks()[2].1.ops();
        assert_eq!(ops.len(), 5); // expand, dw, 2x SE fc, project
    }

    #[test]
    fn geometry_is_tracked() {
        let net = parse("tiny", TINY).unwrap();
        // conv stride 2 on 32 → 16; sep stride 1 keeps 16; sep stride 2 → 8.
        let (oh, ow, oc) = net.blocks()[2].1.ops().last().unwrap().output_shape();
        assert_eq!((oh, ow, oc), (8, 8, 24));
    }

    #[test]
    fn round_trips_the_zoo() {
        for net in zoo::all_baselines() {
            let text = to_text(&net);
            let parsed = parse(net.name(), &text).unwrap();
            assert_eq!(parsed.macs(), net.macs(), "{}", net.name());
            assert_eq!(parsed.params(), net.params(), "{}", net.name());
            assert_eq!(
                parsed.replaceable_indices(),
                net.replaceable_indices(),
                "{}",
                net.name()
            );
        }
    }

    #[test]
    fn parse_errors_carry_line_numbers() {
        let cases = [
            ("conv, 8, 3, 1", "first directive"),
            ("input, 32, 3\ninput, 32, 3", "duplicate"),
            ("input, 32, 3\nconv, 8, 3", "`conv` takes"),
            ("input, 32, 3\nwat, 1", "unknown directive"),
            ("input, 32, 3\nconv, 8, 0, 1", "nonzero"),
            ("input, 32, 3\nconv, 8, 3, x", "integer"),
            ("input, 32, 3\nsep, 8, 16, 3, 1, foo4", "se<div>"),
            ("input, 0, 3", "nonzero"),
            ("", "missing `input`"),
            ("input, 32, 3", "no blocks"),
        ];
        for (text, needle) in cases {
            let e = parse("bad", text).unwrap_err();
            assert!(
                e.to_string().contains(needle),
                "`{text}` → `{e}` (expected `{needle}`)"
            );
        }
    }

    #[test]
    fn parsed_networks_transform_like_builtin_ones() {
        use fuseconv_nn::FuSeVariant;
        let net = parse("tiny", TINY).unwrap();
        let fused = net.transform_all(FuSeVariant::Half);
        assert!(fused.replaceable_indices().is_empty());
        assert!(fused.macs() < net.macs());
    }
}

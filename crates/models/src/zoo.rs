//! The five baseline networks of §V-A-1, transcribed from their published
//! layer tables at 224×224 input resolution.
//!
//! MAC totals are validated in tests against the ballpark figures in the
//! paper's Table I (which include squeeze-and-excite and classifier
//! layers); exact parity with Table I is not expected because framework
//! summaries differ in what they count, but every figure lands within a few
//! percent.

use crate::block::{Block, SeparableBlock, SpatialFilter};
use crate::network::Network;

/// Incrementally tracks feature-map geometry while stacking blocks.
struct Builder {
    h: usize,
    w: usize,
    c: usize,
    blocks: Vec<(String, Block)>,
}

impl Builder {
    fn new(input: usize) -> Self {
        Builder {
            h: input,
            w: input,
            c: 3, // RGB input
            blocks: Vec::new(),
        }
    }

    fn conv(&mut self, out_c: usize, k: usize, stride: usize) {
        let name = format!("conv{}", self.blocks.len());
        self.blocks.push((
            name,
            Block::Conv {
                in_h: self.h,
                in_w: self.w,
                in_c: self.c,
                out_c,
                k,
                stride,
            },
        ));
        let pad = k / 2;
        self.h = (self.h + 2 * pad - k) / stride + 1;
        self.w = (self.w + 2 * pad - k) / stride + 1;
        self.c = out_c;
    }

    /// A separable / inverted-residual block with expansion factor `t`
    /// (`exp_c = t · in_c`), kernel `k`, stride and optional SE divisor.
    fn bneck(&mut self, t: usize, out_c: usize, k: usize, stride: usize, se_div: Option<usize>) {
        self.bneck_exp(t * self.c, out_c, k, stride, se_div);
    }

    /// Same as [`Builder::bneck`] but with an explicit expanded width
    /// (MobileNet-V3's tables list absolute expansion sizes).
    fn bneck_exp(
        &mut self,
        exp_c: usize,
        out_c: usize,
        k: usize,
        stride: usize,
        se_div: Option<usize>,
    ) {
        let name = format!("bneck{}", self.blocks.len());
        let block = SeparableBlock {
            in_h: self.h,
            in_w: self.w,
            in_c: self.c,
            exp_c,
            out_c,
            k,
            stride,
            se_div,
            filter: SpatialFilter::Depthwise,
        };
        let (oh, ow) = block.out_hw();
        self.blocks.push((name, Block::Separable(block)));
        self.h = oh;
        self.w = ow;
        self.c = out_c;
    }

    fn head(&mut self, out_c: usize) {
        let name = format!("head{}", self.blocks.len());
        self.blocks.push((
            name,
            Block::Head {
                in_h: self.h,
                in_w: self.w,
                in_c: self.c,
                out_c,
            },
        ));
        self.c = out_c;
    }

    fn fc(&mut self, out_features: usize) {
        let name = format!("fc{}", self.blocks.len());
        self.blocks.push((
            name,
            Block::Fc {
                in_features: self.c,
                out_features,
            },
        ));
        self.c = out_features;
    }

    /// Records a convolution on the *current* input geometry without
    /// advancing it — a parallel branch such as a residual projection
    /// shortcut. The main path continues from the same input.
    fn branch_conv(&mut self, out_c: usize, k: usize, stride: usize) {
        let name = format!("shortcut{}", self.blocks.len());
        self.blocks.push((
            name,
            Block::Conv {
                in_h: self.h,
                in_w: self.w,
                in_c: self.c,
                out_c,
                k,
                stride,
            },
        ));
    }

    /// Overrides the tracked resolution (used to fold in pooling layers,
    /// which cost no array cycles).
    fn set_resolution(&mut self, h: usize, w: usize) {
        self.h = h;
        self.w = w;
    }

    fn build(self, name: &str) -> Network {
        Network::new(name, self.blocks)
    }
}

/// MobileNet-V1 (Howard et al., 2017): a stem followed by 13 depthwise
/// separable blocks and a 1024→1000 classifier.
pub fn mobilenet_v1() -> Network {
    let mut b = Builder::new(224);
    b.conv(32, 3, 2);
    // (out_c, stride) pairs of the 13 separable blocks.
    let table = [
        (64, 1),
        (128, 2),
        (128, 1),
        (256, 2),
        (256, 1),
        (512, 2),
        (512, 1),
        (512, 1),
        (512, 1),
        (512, 1),
        (512, 1),
        (1024, 2),
        (1024, 1),
    ];
    for (out_c, stride) in table {
        b.bneck(1, out_c, 3, stride, None);
    }
    b.fc(1000);
    b.build("MobileNet-V1")
}

/// MobileNet-V2 (Sandler et al., 2018): inverted residuals with expansion 6
/// (first block 1), a 1280-channel head and classifier.
pub fn mobilenet_v2() -> Network {
    let mut b = Builder::new(224);
    b.conv(32, 3, 2);
    // (t, out_c, repeats, first-stride) rows of Table 2 in the V2 paper.
    let rows = [
        (1, 16, 1, 1),
        (6, 24, 2, 2),
        (6, 32, 3, 2),
        (6, 64, 4, 2),
        (6, 96, 3, 1),
        (6, 160, 3, 2),
        (6, 320, 1, 1),
    ];
    for (t, out_c, n, s) in rows {
        for i in 0..n {
            let stride = if i == 0 { s } else { 1 };
            b.bneck(t, out_c, 3, stride, None);
        }
    }
    b.head(1280);
    b.fc(1000);
    b.build("MobileNet-V2")
}

/// MobileNet-V3 Large (Howard et al., 2019): bottlenecks with mixed 3×3 and
/// 5×5 kernels, squeeze-and-excite on selected rows, 960→1280→1000 head.
pub fn mobilenet_v3_large() -> Network {
    let mut b = Builder::new(224);
    b.conv(16, 3, 2);
    // (k, exp, out, se, stride) rows of Table 1 in the V3 paper.
    let rows: [(usize, usize, usize, bool, usize); 15] = [
        (3, 16, 16, false, 1),
        (3, 64, 24, false, 2),
        (3, 72, 24, false, 1),
        (5, 72, 40, true, 2),
        (5, 120, 40, true, 1),
        (5, 120, 40, true, 1),
        (3, 240, 80, false, 2),
        (3, 200, 80, false, 1),
        (3, 184, 80, false, 1),
        (3, 184, 80, false, 1),
        (3, 480, 112, true, 1),
        (3, 672, 112, true, 1),
        (5, 672, 160, true, 2),
        (5, 960, 160, true, 1),
        (5, 960, 160, true, 1),
    ];
    for (k, exp, out, se, stride) in rows {
        b.bneck_exp(exp, out, k, stride, se.then_some(4));
    }
    b.head(960);
    b.fc(1280);
    b.fc(1000);
    b.build("MobileNet-V3-Large")
}

/// MobileNet-V3 Small (Howard et al., 2019).
pub fn mobilenet_v3_small() -> Network {
    let mut b = Builder::new(224);
    b.conv(16, 3, 2);
    // (k, exp, out, se, stride) rows of Table 2 in the V3 paper.
    let rows: [(usize, usize, usize, bool, usize); 11] = [
        (3, 16, 16, true, 2),
        (3, 72, 24, false, 2),
        (3, 88, 24, false, 1),
        (5, 96, 40, true, 2),
        (5, 240, 40, true, 1),
        (5, 240, 40, true, 1),
        (5, 120, 48, true, 1),
        (5, 144, 48, true, 1),
        (5, 288, 96, true, 2),
        (5, 576, 96, true, 1),
        (5, 576, 96, true, 1),
    ];
    for (k, exp, out, se, stride) in rows {
        b.bneck_exp(exp, out, k, stride, se.then_some(4));
    }
    b.head(576);
    b.fc(1024);
    b.fc(1000);
    b.build("MobileNet-V3-Small")
}

/// MnasNet-B1 (Tan et al., 2019): the SE-free searched baseline with mixed
/// 3×3/5×5 kernels.
pub fn mnasnet_b1() -> Network {
    let mut b = Builder::new(224);
    b.conv(32, 3, 2);
    // SepConv block: depthwise 3x3 + project to 16 (no expansion).
    b.bneck(1, 16, 3, 1, None);
    // (t, out_c, k, repeats, first-stride) rows of the MnasNet-B1 figure.
    let rows = [
        (3, 24, 3, 3, 2),
        (3, 40, 5, 3, 2),
        (6, 80, 5, 3, 2),
        (6, 96, 3, 2, 1),
        (6, 192, 5, 4, 2),
        (6, 320, 3, 1, 1),
    ];
    for (t, out_c, k, n, s) in rows {
        for i in 0..n {
            let stride = if i == 0 { s } else { 1 };
            b.bneck(t, out_c, k, stride, None);
        }
    }
    b.head(1280);
    b.fc(1000);
    b.build("MnasNet-B1")
}

/// ResNet-50 (He et al., 2016), bottleneck form — not in Table I, but the
/// yardstick of the paper's §I motivating claim: "MobileNet-V2 has 12×
/// fewer computations than ResNet-50, but runs only 1.3× faster on a
/// systolic array with MACs arranged in a 32×32 array". It is built from
/// standard convolutions only, which map efficiently onto the array; the
/// claim is reproduced by `fuseconv-core`'s `intro_claim` experiment.
pub fn resnet50() -> Network {
    let mut b = Builder::new(224);
    b.conv(64, 7, 2);
    // The 3x3/2 max-pool costs no array cycles; fold it into the entry
    // resolution of the first stage.
    b.set_resolution(56, 56);
    // (mid_c, out_c, blocks, first-stride) per stage.
    let stages = [
        (64, 256, 3, 1),
        (128, 512, 4, 2),
        (256, 1024, 6, 2),
        (512, 2048, 3, 2),
    ];
    for (mid, out, n, s) in stages {
        for i in 0..n {
            let stride = if i == 0 { s } else { 1 };
            if i == 0 {
                // Projection shortcut: strided 1x1 on the block input.
                b.branch_conv(out, 1, stride);
            }
            // Bottleneck main path: 1x1 reduce, 3x3 (strided), 1x1 expand.
            b.conv(mid, 1, 1);
            b.conv(mid, 3, stride);
            b.conv(out, 1, 1);
        }
    }
    b.fc(1000);
    b.build("ResNet-50")
}

/// EfficientNet-B0 (Tan & Le, 2019) — not in Table I, but the network
/// whose poor EdgeTPU scaling the paper cites as prior evidence of the
/// depthwise/systolic mismatch (§I, ref. \[7\]). MBConv blocks with
/// squeeze-and-excite; SE bottlenecks are `in_c/4` wide, approximated here
/// by a divisor on the expanded width (`exp/24` for the t=6 blocks,
/// `exp/4` for the t=1 stem block — identical widths, different bases).
pub fn efficientnet_b0() -> Network {
    let mut b = Builder::new(224);
    b.conv(32, 3, 2);
    // (t, out_c, k, repeats, first-stride, se_div) rows.
    b.bneck(1, 16, 3, 1, Some(4));
    let rows = [
        (6, 24, 3, 2, 2),
        (6, 40, 5, 2, 2),
        (6, 80, 3, 3, 2),
        (6, 112, 5, 3, 1),
        (6, 192, 5, 4, 2),
        (6, 320, 3, 1, 1),
    ];
    for (t, out_c, k, n, s) in rows {
        for i in 0..n {
            let stride = if i == 0 { s } else { 1 };
            b.bneck(t, out_c, k, stride, Some(24));
        }
    }
    b.head(1280);
    b.fc(1000);
    b.build("EfficientNet-B0")
}

/// All five baselines, in the order of Table I.
pub fn all_baselines() -> Vec<Network> {
    vec![
        mobilenet_v1(),
        mobilenet_v2(),
        mnasnet_b1(),
        mobilenet_v3_small(),
        mobilenet_v3_large(),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use fuseconv_nn::FuSeVariant;

    /// Published MAC counts (millions) for 224×224 single-crop inference;
    /// our analytic counts must land within 10% (differences come from
    /// counting conventions for SE, head and classifier layers).
    #[test]
    fn mac_counts_near_published_figures() {
        let cases: [(Network, f64); 5] = [
            (mobilenet_v1(), 569.0),
            (mobilenet_v2(), 300.0),
            (mnasnet_b1(), 315.0),
            (mobilenet_v3_small(), 56.0),
            (mobilenet_v3_large(), 219.0),
        ];
        for (net, published) in cases {
            let got = net.summary().macs_millions();
            let rel = (got - published).abs() / published;
            assert!(
                rel < 0.10,
                "{}: computed {got:.1}M vs published {published}M ({:.1}% off)",
                net.name(),
                rel * 100.0
            );
        }
    }

    /// Published parameter counts (millions); weight-only counting lands
    /// within 15% (biases/BN excluded).
    #[test]
    fn param_counts_near_published_figures() {
        let cases: [(Network, f64); 5] = [
            (mobilenet_v1(), 4.23),
            (mobilenet_v2(), 3.50),
            (mnasnet_b1(), 4.38),
            (mobilenet_v3_small(), 2.54),
            (mobilenet_v3_large(), 5.48),
        ];
        for (net, published) in cases {
            let got = net.summary().params_millions();
            let rel = (got - published).abs() / published;
            assert!(
                rel < 0.15,
                "{}: computed {got:.2}M vs published {published}M ({:.1}% off)",
                net.name(),
                rel * 100.0
            );
        }
    }

    #[test]
    fn v1_has_thirteen_separable_blocks() {
        assert_eq!(mobilenet_v1().replaceable_indices().len(), 13);
    }

    #[test]
    fn v2_has_seventeen_separable_blocks() {
        assert_eq!(mobilenet_v2().replaceable_indices().len(), 17);
    }

    #[test]
    fn v3_block_counts() {
        assert_eq!(mobilenet_v3_large().replaceable_indices().len(), 15);
        assert_eq!(mobilenet_v3_small().replaceable_indices().len(), 11);
    }

    #[test]
    fn mnasnet_block_count() {
        assert_eq!(
            mnasnet_b1().replaceable_indices().len(),
            1 + 3 + 3 + 3 + 2 + 4 + 1
        );
    }

    /// Table I direction checks: Full variants gain MACs and params over
    /// baseline; Half variants shed a little of both.
    #[test]
    fn fuse_variants_move_macs_in_paper_direction() {
        for net in all_baselines() {
            let base = net.summary();
            let full = net.transform_all(FuSeVariant::Full).summary();
            let half = net.transform_all(FuSeVariant::Half).summary();
            assert!(full.macs > base.macs, "{} full MACs", net.name());
            assert!(full.params > base.params, "{} full params", net.name());
            assert!(half.macs < base.macs, "{} half MACs", net.name());
            assert!(half.params < base.params, "{} half params", net.name());
        }
    }

    /// Table I magnitude check for MobileNet-V1: Full ≈ 1122M MACs / 7.36M
    /// params (paper), i.e. roughly 1.9× baseline MACs.
    #[test]
    fn v1_full_variant_magnitude() {
        let net = mobilenet_v1();
        let base = net.summary();
        let full = net.transform_all(FuSeVariant::Full).summary();
        let ratio = full.macs as f64 / base.macs as f64;
        assert!(
            (1.6..=2.1).contains(&ratio),
            "full/base MAC ratio {ratio:.2} out of range"
        );
        let pratio = full.params as f64 / base.params as f64;
        assert!(
            (1.5..=1.9).contains(&pratio),
            "full/base param ratio {pratio:.2} out of range"
        );
    }

    /// The final feature resolution of every network must be 7x7 before
    /// pooling — a structural sanity check of the stride bookkeeping.
    #[test]
    fn final_resolution_is_7x7() {
        for net in all_baselines() {
            let last_conv_op = net
                .ops()
                .into_iter()
                .rfind(|n| !matches!(n.op, fuseconv_nn::ops::Op::Fc { .. }))
                .unwrap();
            let (h, w, _) = last_conv_op.op.output_shape();
            assert_eq!((h, w), (7, 7), "{}", net.name());
        }
    }
}

#[cfg(test)]
mod resnet_tests {
    use super::*;

    #[test]
    fn resnet50_mac_count_near_published() {
        // Published: ~4.1 GMACs at 224x224 (counting conventions vary by a
        // few percent).
        let net = resnet50();
        let macs = net.summary().macs_millions();
        assert!(
            (3500.0..4500.0).contains(&macs),
            "ResNet-50 MACs {macs:.0}M out of range"
        );
    }

    #[test]
    fn resnet50_param_count_near_published() {
        let net = resnet50();
        let params = net.summary().params_millions();
        // ~25.5M published; weight-only counting lands close.
        assert!(
            (23.0..27.0).contains(&params),
            "ResNet-50 params {params:.1}M out of range"
        );
    }

    #[test]
    fn resnet50_has_no_replaceable_blocks() {
        // Standard convolutions only: the FuSe transform is a no-op.
        let net = resnet50();
        assert!(net.replaceable_indices().is_empty());
        let same = net.transform_all(fuseconv_nn::FuSeVariant::Half);
        assert_eq!(same.macs(), net.macs());
    }

    #[test]
    fn resnet50_final_resolution_is_7x7() {
        let last_conv = resnet50()
            .ops()
            .into_iter()
            .rfind(|n| !matches!(n.op, fuseconv_nn::ops::Op::Fc { .. }))
            .unwrap();
        let (h, w, c) = last_conv.op.output_shape();
        assert_eq!((h, w, c), (7, 7, 2048));
    }
}

#[cfg(test)]
mod efficientnet_tests {
    use super::*;
    use fuseconv_nn::FuSeVariant;

    #[test]
    fn efficientnet_b0_counts_near_published() {
        let net = efficientnet_b0();
        let s = net.summary();
        // Published: ~390M MACs, ~5.3M params at 224x224.
        assert!(
            (350.0..430.0).contains(&s.macs_millions()),
            "MACs {:.0}M",
            s.macs_millions()
        );
        assert!(
            (4.6..5.8).contains(&s.params_millions()),
            "params {:.2}M",
            s.params_millions()
        );
    }

    #[test]
    fn efficientnet_b0_structure() {
        let net = efficientnet_b0();
        assert_eq!(net.replaceable_indices().len(), 1 + 2 + 2 + 3 + 3 + 4 + 1);
        let fused = net.transform_all(FuSeVariant::Half);
        assert!(fused.macs() < net.macs());
    }
}

//! Activation functions used by the paper's networks.
//!
//! MobileNet-V1/V2 use ReLU/ReLU6; MobileNet-V3 and MnasNet use h-swish and
//! h-sigmoid in places (the latter inside squeeze-and-excite blocks).

use fuseconv_tensor::Tensor;

/// Identifies an activation function; carried in layer descriptors so the
/// functional layers and the trainer agree on nonlinearities.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Activation {
    /// Identity (no activation).
    #[default]
    Linear,
    /// `max(0, x)`.
    Relu,
    /// `min(max(0, x), 6)`.
    Relu6,
    /// `x · relu6(x + 3) / 6` (MobileNet-V3's h-swish).
    HSwish,
    /// `relu6(x + 3) / 6` (hard sigmoid).
    HSigmoid,
    /// Logistic sigmoid `1 / (1 + e^{-x})`.
    Sigmoid,
}

impl Activation {
    /// Applies the activation to a scalar.
    pub fn apply_scalar(&self, x: f32) -> f32 {
        match self {
            Activation::Linear => x,
            Activation::Relu => x.max(0.0),
            Activation::Relu6 => x.clamp(0.0, 6.0),
            Activation::HSwish => x * (x + 3.0).clamp(0.0, 6.0) / 6.0,
            Activation::HSigmoid => (x + 3.0).clamp(0.0, 6.0) / 6.0,
            Activation::Sigmoid => 1.0 / (1.0 + (-x).exp()),
        }
    }

    /// Applies the activation element-wise.
    pub fn apply(&self, x: &Tensor) -> Tensor {
        x.map(|v| self.apply_scalar(v))
    }

    /// Derivative with respect to the pre-activation input, evaluated at
    /// `x`. Used by the trainer's backward passes. At the (measure-zero)
    /// kink points the subgradient 0 is returned.
    pub fn derivative_scalar(&self, x: f32) -> f32 {
        match self {
            Activation::Linear => 1.0,
            Activation::Relu => {
                if x > 0.0 {
                    1.0
                } else {
                    0.0
                }
            }
            Activation::Relu6 => {
                if x > 0.0 && x < 6.0 {
                    1.0
                } else {
                    0.0
                }
            }
            Activation::HSwish => {
                if x <= -3.0 {
                    0.0
                } else if x >= 3.0 {
                    1.0
                } else {
                    (2.0 * x + 3.0) / 6.0
                }
            }
            Activation::HSigmoid => {
                if x > -3.0 && x < 3.0 {
                    1.0 / 6.0
                } else {
                    0.0
                }
            }
            Activation::Sigmoid => {
                let s = self.apply_scalar(x);
                s * (1.0 - s)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const ACTS: [Activation; 6] = [
        Activation::Linear,
        Activation::Relu,
        Activation::Relu6,
        Activation::HSwish,
        Activation::HSigmoid,
        Activation::Sigmoid,
    ];

    #[test]
    fn relu_family_values() {
        assert_eq!(Activation::Relu.apply_scalar(-1.0), 0.0);
        assert_eq!(Activation::Relu.apply_scalar(2.5), 2.5);
        assert_eq!(Activation::Relu6.apply_scalar(7.0), 6.0);
        assert_eq!(Activation::Relu6.apply_scalar(3.0), 3.0);
    }

    #[test]
    fn hswish_matches_definition() {
        for &x in &[-4.0f32, -3.0, -1.0, 0.0, 1.0, 3.0, 5.0] {
            let expect = x * ((x + 3.0).clamp(0.0, 6.0)) / 6.0;
            assert!((Activation::HSwish.apply_scalar(x) - expect).abs() < 1e-6);
        }
        // Saturations.
        assert_eq!(Activation::HSwish.apply_scalar(-5.0), 0.0);
        assert_eq!(Activation::HSwish.apply_scalar(10.0), 10.0);
    }

    #[test]
    fn hsigmoid_bounds() {
        assert_eq!(Activation::HSigmoid.apply_scalar(-10.0), 0.0);
        assert_eq!(Activation::HSigmoid.apply_scalar(10.0), 1.0);
        assert!((Activation::HSigmoid.apply_scalar(0.0) - 0.5).abs() < 1e-6);
    }

    #[test]
    fn sigmoid_is_symmetric() {
        let s = Activation::Sigmoid;
        assert!((s.apply_scalar(0.0) - 0.5).abs() < 1e-6);
        assert!((s.apply_scalar(2.0) + s.apply_scalar(-2.0) - 1.0).abs() < 1e-6);
    }

    #[test]
    fn derivatives_match_finite_differences() {
        let eps = 1e-3f32;
        // Probe away from kinks, where the analytic derivative must agree.
        for act in ACTS {
            for &x in &[-4.0f32, -1.7, -0.4, 0.6, 1.9, 4.2] {
                let fd = (act.apply_scalar(x + eps) - act.apply_scalar(x - eps)) / (2.0 * eps);
                let an = act.derivative_scalar(x);
                assert!(
                    (fd - an).abs() < 1e-2,
                    "{act:?} at {x}: fd={fd} analytic={an}"
                );
            }
        }
    }

    #[test]
    fn apply_is_elementwise() {
        let t = Tensor::from_vec(vec![-1.0, 0.0, 7.0], &[3]).unwrap();
        let r = Activation::Relu6.apply(&t);
        assert_eq!(r.as_slice(), &[0.0, 0.0, 6.0]);
    }

    #[test]
    fn default_is_linear() {
        assert_eq!(Activation::default(), Activation::Linear);
    }
}

//! Reference convolution forward passes on `[C, H, W]` tensors.
//!
//! These are the golden functional models: straightforward nested loops,
//! validated against `im2col`+GEMM and the systolic simulator in tests and
//! used as building blocks by [`crate::fuse`], [`crate::se`] and the
//! training crate.

use crate::NnError;
use fuseconv_tensor::Tensor;

/// Per-axis convolution hyper-parameters (stride is shared by both axes, as
/// in every network the paper evaluates; padding may differ per axis, which
/// the 1-D FuSeConv filters need).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Conv2dSpec {
    /// Kernel height.
    pub k_h: usize,
    /// Kernel width.
    pub k_w: usize,
    /// Stride on both axes.
    pub stride: usize,
    /// Zero padding on the height axis (top and bottom).
    pub pad_h: usize,
    /// Zero padding on the width axis (left and right).
    pub pad_w: usize,
}

impl Conv2dSpec {
    /// Creates a spec, validating the stride.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::BadConfig`] if `stride == 0` or a kernel extent is
    /// zero.
    pub fn new(
        k_h: usize,
        k_w: usize,
        stride: usize,
        pad_h: usize,
        pad_w: usize,
    ) -> Result<Self, NnError> {
        if stride == 0 {
            return Err(NnError::bad_config("stride must be nonzero"));
        }
        if k_h == 0 || k_w == 0 {
            return Err(NnError::bad_config("kernel extents must be nonzero"));
        }
        Ok(Conv2dSpec {
            k_h,
            k_w,
            stride,
            pad_h,
            pad_w,
        })
    }

    /// Square `k×k` kernel with symmetric padding — the common case.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::BadConfig`] if `stride == 0` or `k == 0`.
    pub fn square(k: usize, stride: usize, pad: usize) -> Result<Self, NnError> {
        Self::new(k, k, stride, pad, pad)
    }

    /// Output extents for an `h×w` input.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::BadConfig`] if the padded input is smaller than
    /// the kernel on either axis.
    pub fn output_extents(&self, h: usize, w: usize) -> Result<(usize, usize), NnError> {
        if h + 2 * self.pad_h < self.k_h || w + 2 * self.pad_w < self.k_w {
            return Err(NnError::bad_config(format!(
                "kernel {}x{} does not fit padded input {}x{}",
                self.k_h,
                self.k_w,
                h + 2 * self.pad_h,
                w + 2 * self.pad_w
            )));
        }
        Ok((
            (h + 2 * self.pad_h - self.k_h) / self.stride + 1,
            (w + 2 * self.pad_w - self.k_w) / self.stride + 1,
        ))
    }
}

fn read_padded(plane: &[f32], h: usize, w: usize, y: isize, x: isize) -> f32 {
    if y < 0 || x < 0 || y as usize >= h || x as usize >= w {
        0.0
    } else {
        plane[y as usize * w + x as usize]
    }
}

/// Standard convolution: input `[C, H, W]`, weight `[O, C, k_h, k_w]` →
/// output `[O, OH, OW]`.
///
/// # Errors
///
/// Returns [`NnError::BadInput`] for rank/shape mismatches between input,
/// weight and spec.
pub fn conv2d(input: &Tensor, weight: &Tensor, spec: &Conv2dSpec) -> Result<Tensor, NnError> {
    let id = input.shape().dims();
    let wd = weight.shape().dims();
    if id.len() != 3 {
        return Err(bad_input("conv2d", "[C, H, W]", id));
    }
    if wd.len() != 4 || wd[1] != id[0] || wd[2] != spec.k_h || wd[3] != spec.k_w {
        return Err(bad_input("conv2d weight", "[O, C, k_h, k_w]", wd));
    }
    let (c, h, w) = (id[0], id[1], id[2]);
    let o = wd[0];
    let (oh, ow) = spec.output_extents(h, w)?;
    let iv = input.as_slice();
    let wv = weight.as_slice();
    let mut out = vec![0.0f32; o * oh * ow];
    let plane = h * w;
    let kplane = spec.k_h * spec.k_w;
    for oc in 0..o {
        for ic in 0..c {
            let wbase = (oc * c + ic) * kplane;
            let pbase = ic * plane;
            for oy in 0..oh {
                for ox in 0..ow {
                    let y0 = (oy * spec.stride) as isize - spec.pad_h as isize;
                    let x0 = (ox * spec.stride) as isize - spec.pad_w as isize;
                    let mut acc = 0.0;
                    for ky in 0..spec.k_h {
                        for kx in 0..spec.k_w {
                            acc += wv[wbase + ky * spec.k_w + kx]
                                * read_padded(
                                    &iv[pbase..pbase + plane],
                                    h,
                                    w,
                                    y0 + ky as isize,
                                    x0 + kx as isize,
                                );
                        }
                    }
                    out[(oc * oh + oy) * ow + ox] += acc;
                }
            }
        }
    }
    Ok(Tensor::from_vec(out, &[o, oh, ow])?)
}

/// Depthwise convolution: input `[C, H, W]`, weight `[C, k_h, k_w]` →
/// output `[C, OH, OW]`. Each channel is filtered independently — the
/// operation §III shows is *not* systolic.
///
/// # Errors
///
/// Returns [`NnError::BadInput`] for rank/shape mismatches.
pub fn depthwise2d(input: &Tensor, weight: &Tensor, spec: &Conv2dSpec) -> Result<Tensor, NnError> {
    let id = input.shape().dims();
    let wd = weight.shape().dims();
    if id.len() != 3 {
        return Err(bad_input("depthwise2d", "[C, H, W]", id));
    }
    if wd.len() != 3 || wd[0] != id[0] || wd[1] != spec.k_h || wd[2] != spec.k_w {
        return Err(bad_input("depthwise2d weight", "[C, k_h, k_w]", wd));
    }
    let (c, h, w) = (id[0], id[1], id[2]);
    let (oh, ow) = spec.output_extents(h, w)?;
    let iv = input.as_slice();
    let wv = weight.as_slice();
    let mut out = vec![0.0f32; c * oh * ow];
    let plane = h * w;
    let kplane = spec.k_h * spec.k_w;
    for ch in 0..c {
        let pbase = ch * plane;
        let wbase = ch * kplane;
        for oy in 0..oh {
            for ox in 0..ow {
                let y0 = (oy * spec.stride) as isize - spec.pad_h as isize;
                let x0 = (ox * spec.stride) as isize - spec.pad_w as isize;
                let mut acc = 0.0;
                for ky in 0..spec.k_h {
                    for kx in 0..spec.k_w {
                        acc += wv[wbase + ky * spec.k_w + kx]
                            * read_padded(
                                &iv[pbase..pbase + plane],
                                h,
                                w,
                                y0 + ky as isize,
                                x0 + kx as isize,
                            );
                    }
                }
                out[(ch * oh + oy) * ow + ox] = acc;
            }
        }
    }
    Ok(Tensor::from_vec(out, &[c, oh, ow])?)
}

/// Pointwise (`1×1`) convolution: input `[C, H, W]`, weight `[O, C]` →
/// output `[O, H, W]`. This is a GEMM over channels at every pixel.
///
/// # Errors
///
/// Returns [`NnError::BadInput`] for rank/shape mismatches.
pub fn pointwise(input: &Tensor, weight: &Tensor) -> Result<Tensor, NnError> {
    let id = input.shape().dims();
    let wd = weight.shape().dims();
    if id.len() != 3 {
        return Err(bad_input("pointwise", "[C, H, W]", id));
    }
    if wd.len() != 2 || wd[1] != id[0] {
        return Err(bad_input("pointwise weight", "[O, C]", wd));
    }
    let (c, h, w) = (id[0], id[1], id[2]);
    let o = wd[0];
    let plane = h * w;
    let iv = input.as_slice();
    let wv = weight.as_slice();
    let mut out = vec![0.0f32; o * plane];
    for oc in 0..o {
        for ic in 0..c {
            let wgt = wv[oc * c + ic];
            let src = &iv[ic * plane..(ic + 1) * plane];
            let dst = &mut out[oc * plane..(oc + 1) * plane];
            for (d, &s) in dst.iter_mut().zip(src) {
                *d += wgt * s;
            }
        }
    }
    Ok(Tensor::from_vec(out, &[o, h, w])?)
}

fn bad_input(layer: &'static str, expected: &str, actual: &[usize]) -> NnError {
    NnError::BadInput {
        layer,
        expected: expected.to_string(),
        actual: actual.to_vec(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fuseconv_tensor::im2col::{conv2d_direct, ConvGeometry};

    fn seq(dims: &[usize], scale: f32) -> Tensor {
        let mut i = 0.0f32;
        Tensor::from_fn(dims, |_| {
            i += 1.0;
            (i * scale) % 5.0 - 2.0
        })
        .unwrap()
    }

    #[test]
    fn conv2d_single_channel_matches_im2col_golden() {
        let input = seq(&[1, 6, 7], 0.7);
        let weight = seq(&[1, 1, 3, 3], 0.3);
        let spec = Conv2dSpec::square(3, 1, 1).unwrap();
        let out = conv2d(&input, &weight, &spec).unwrap();
        let g = ConvGeometry::new(6, 7, 3, 3, 1, 1).unwrap();
        let gold = conv2d_direct(
            &input.reshape(&[6, 7]).unwrap(),
            &weight.reshape(&[3, 3]).unwrap(),
            &g,
        )
        .unwrap();
        assert_eq!(out.shape().dims(), &[1, 6, 7]);
        assert!(out.reshape(&[6, 7]).unwrap().max_abs_diff(&gold).unwrap() < 1e-5);
    }

    #[test]
    fn conv2d_sums_over_input_channels() {
        // Two identical input channels with an all-ones kernel = 2x the
        // single-channel result.
        let one = seq(&[1, 4, 4], 0.9);
        let mut two_data = one.as_slice().to_vec();
        two_data.extend_from_slice(one.as_slice());
        let two = Tensor::from_vec(two_data, &[2, 4, 4]).unwrap();
        let w1 = Tensor::full(&[1, 1, 3, 3], 1.0).unwrap();
        let w2 = Tensor::full(&[1, 2, 3, 3], 1.0).unwrap();
        let spec = Conv2dSpec::square(3, 1, 0).unwrap();
        let o1 = conv2d(&one, &w1, &spec).unwrap();
        let o2 = conv2d(&two, &w2, &spec).unwrap();
        assert!(o2.max_abs_diff(&o1.scale(2.0)).unwrap() < 1e-5);
    }

    #[test]
    fn depthwise_is_independent_per_channel() {
        let input = seq(&[3, 5, 5], 0.61);
        let weight = seq(&[3, 3, 3], 0.37);
        let spec = Conv2dSpec::square(3, 1, 1).unwrap();
        let out = depthwise2d(&input, &weight, &spec).unwrap();
        // Channel 1 computed in isolation must match channel 1 of the batch.
        let in1 = Tensor::from_vec(input.as_slice()[25..50].to_vec(), &[1, 5, 5]).unwrap();
        let w1 = Tensor::from_vec(weight.as_slice()[9..18].to_vec(), &[1, 3, 3]).unwrap();
        let o1 = depthwise2d(&in1, &w1, &spec).unwrap();
        assert_eq!(&out.as_slice()[25..50], o1.as_slice());
    }

    #[test]
    fn pointwise_is_channel_gemm() {
        let input = seq(&[3, 2, 2], 0.43);
        let weight = seq(&[4, 3], 0.77);
        let out = pointwise(&input, &weight).unwrap();
        assert_eq!(out.shape().dims(), &[4, 2, 2]);
        // Check one pixel by hand.
        let pix = |t: &Tensor, c: usize| t.get(&[c, 1, 0]).unwrap();
        for oc in 0..4 {
            let expect: f32 = (0..3)
                .map(|ic| weight.get(&[oc, ic]).unwrap() * pix(&input, ic))
                .sum();
            assert!((pix(&out, oc) - expect).abs() < 1e-5);
        }
    }

    #[test]
    fn pointwise_equals_conv2d_with_1x1_kernel() {
        let input = seq(&[3, 4, 5], 0.59);
        let weight = seq(&[2, 3], 0.83);
        let pw = pointwise(&input, &weight).unwrap();
        let w4 = weight.reshape(&[2, 3, 1, 1]).unwrap();
        let spec = Conv2dSpec::square(1, 1, 0).unwrap();
        let full = conv2d(&input, &w4, &spec).unwrap();
        assert!(pw.max_abs_diff(&full).unwrap() < 1e-5);
    }

    #[test]
    fn row_filter_via_depthwise_spec() {
        // A 1xK row filter with stride 2: output height = ceil(H/2).
        let input = seq(&[2, 7, 8], 0.71);
        let weight = seq(&[2, 1, 3], 0.53);
        let spec = Conv2dSpec::new(1, 3, 2, 0, 1).unwrap();
        let out = depthwise2d(&input, &weight, &spec).unwrap();
        assert_eq!(out.shape().dims(), &[2, 4, 4]);
    }

    #[test]
    fn shape_errors_reported() {
        let input = seq(&[2, 4, 4], 1.0);
        let spec = Conv2dSpec::square(3, 1, 1).unwrap();
        // Wrong weight rank.
        assert!(conv2d(&input, &seq(&[2, 3, 3], 1.0), &spec).is_err());
        // Wrong channel count.
        assert!(depthwise2d(&input, &seq(&[3, 3, 3], 1.0), &spec).is_err());
        // Kernel larger than padded input.
        let big = Conv2dSpec::square(9, 1, 0).unwrap();
        assert!(depthwise2d(&input, &seq(&[2, 9, 9], 1.0), &big).is_err());
        // Bad spec construction.
        assert!(Conv2dSpec::square(3, 0, 1).is_err());
        assert!(Conv2dSpec::new(0, 3, 1, 0, 0).is_err());
    }

    #[test]
    fn stride_subsamples() {
        let input = seq(&[1, 8, 8], 0.91);
        let weight = Tensor::full(&[1, 3, 3], 1.0 / 9.0).unwrap();
        let s1 = Conv2dSpec::square(3, 1, 1).unwrap();
        let s2 = Conv2dSpec::square(3, 2, 1).unwrap();
        let o1 = depthwise2d(&input, &weight, &s1).unwrap();
        let o2 = depthwise2d(&input, &weight, &s2).unwrap();
        assert_eq!(o1.shape().dims(), &[1, 8, 8]);
        assert_eq!(o2.shape().dims(), &[1, 4, 4]);
        // Strided output is a subsampling of the dense output.
        for y in 0..4 {
            for x in 0..4 {
                assert_eq!(
                    o2.get(&[0, y, x]).unwrap(),
                    o1.get(&[0, 2 * y, 2 * x]).unwrap()
                );
            }
        }
    }
}

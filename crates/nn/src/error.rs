//! Error type for layer construction and forward passes.

use fuseconv_tensor::TensorError;
use std::error::Error;
use std::fmt;

/// Error returned by layer constructors and forward passes.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum NnError {
    /// An underlying tensor operation failed (shape mismatch, bad index…).
    Tensor(TensorError),
    /// A layer was configured with inconsistent hyper-parameters.
    BadConfig {
        /// What was wrong.
        what: String,
    },
    /// A forward pass received an input whose shape does not match the
    /// layer's expectation.
    BadInput {
        /// The layer that rejected the input.
        layer: &'static str,
        /// Expected shape description.
        expected: String,
        /// Received shape.
        actual: Vec<usize>,
    },
}

impl NnError {
    /// Convenience constructor for configuration errors.
    pub fn bad_config(what: impl Into<String>) -> Self {
        NnError::BadConfig { what: what.into() }
    }
}

impl fmt::Display for NnError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NnError::Tensor(e) => write!(f, "tensor error: {e}"),
            NnError::BadConfig { what } => write!(f, "invalid layer configuration: {what}"),
            NnError::BadInput {
                layer,
                expected,
                actual,
            } => write!(f, "{layer} expected input {expected}, got {actual:?}"),
        }
    }
}

impl Error for NnError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            NnError::Tensor(e) => Some(e),
            _ => None,
        }
    }
}

impl From<TensorError> for NnError {
    fn from(e: TensorError) -> Self {
        NnError::Tensor(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_and_sources() {
        let e = NnError::from(TensorError::ZeroStride);
        assert!(e.to_string().contains("stride"));
        assert!(e.source().is_some());
        let e = NnError::bad_config("kernel must be odd");
        assert!(e.to_string().contains("kernel must be odd"));
        assert!(e.source().is_none());
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_traits<T: Send + Sync>() {}
        assert_traits::<NnError>();
    }
}

//! The FuSeConv operator (§IV-A) — the paper's contribution, as a
//! functional layer.
//!
//! A FuSeConv layer factorizes a `K×K` depthwise filter bank into `1×K`
//! *row* filters and `K×1` *column* filters on `C/D` channels each:
//!
//! - **Full** variant (`D = 1`): both filter banks run on *all* `C`
//!   channels; their outputs are concatenated into `2C` channels.
//! - **Half** variant (`D = 2`): row filters on the first `C/2` channels,
//!   column filters on the other `C/2`; concatenated back to `C` channels.
//!
//! The subsequent `1×1` pointwise convolution (not part of this struct —
//! it is unchanged from the depthwise-separable block) restores the desired
//! output channel count, making FuSeConv a drop-in replacement.

use crate::conv::{depthwise2d, Conv2dSpec};
use crate::ops::{Axis1d, Op};
use crate::NnError;
use fuseconv_tensor::Tensor;
use std::fmt;

/// Which FuSeConv variant (the paper's design knob `D`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FuSeVariant {
    /// `D = 1`: row and column filters on all channels; output has `2C`
    /// channels.
    Full,
    /// `D = 2`: row filters on half the channels, column filters on the
    /// other half; output has `C` channels.
    Half,
}

impl FuSeVariant {
    /// The paper's `D` value.
    pub fn d(&self) -> usize {
        match self {
            FuSeVariant::Full => 1,
            FuSeVariant::Half => 2,
        }
    }
}

impl fmt::Display for FuSeVariant {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FuSeVariant::Full => f.write_str("full"),
            FuSeVariant::Half => f.write_str("half"),
        }
    }
}

/// A FuSeConv layer: fully separable 1-D depthwise filters.
///
/// # Examples
///
/// ```
/// # fn main() -> Result<(), fuseconv_nn::NnError> {
/// use fuseconv_nn::{FuSeConv, FuSeVariant};
/// use fuseconv_tensor::Tensor;
///
/// let layer = FuSeConv::with_constant_weights(FuSeVariant::Half, 4, 3, 1, 0.5)?;
/// let x = Tensor::full(&[4, 8, 8], 1.0)?;
/// let y = layer.forward(&x)?;
/// assert_eq!(y.shape().dims(), &[4, 8, 8]); // half variant keeps C
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct FuSeConv {
    variant: FuSeVariant,
    channels: usize,
    k: usize,
    stride: usize,
    row_weight: Tensor,
    col_weight: Tensor,
}

impl FuSeConv {
    /// Creates a layer with the given filter banks.
    ///
    /// `row_weight` must be `[C/D, 1, K]` and `col_weight` `[C/D, K, 1]`.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::BadConfig`] for a zero stride/kernel/channel
    /// count, an even kernel (the paper's networks use odd kernels so the
    /// `K/2` padding preserves extents), a Half variant with odd `C`, or
    /// weight tensors of the wrong shape.
    pub fn new(
        variant: FuSeVariant,
        channels: usize,
        k: usize,
        stride: usize,
        row_weight: Tensor,
        col_weight: Tensor,
    ) -> Result<Self, NnError> {
        if channels == 0 || k == 0 || stride == 0 {
            return Err(NnError::bad_config(
                "channels, kernel and stride must be nonzero",
            ));
        }
        if k.is_multiple_of(2) {
            return Err(NnError::bad_config("kernel length must be odd"));
        }
        if variant == FuSeVariant::Half && !channels.is_multiple_of(2) {
            return Err(NnError::bad_config(
                "half variant requires an even channel count",
            ));
        }
        let per_bank = channels / variant.d();
        if row_weight.shape().dims() != [per_bank, 1, k] {
            return Err(NnError::bad_config(format!(
                "row weight must be [{per_bank}, 1, {k}], got {:?}",
                row_weight.shape().dims()
            )));
        }
        if col_weight.shape().dims() != [per_bank, k, 1] {
            return Err(NnError::bad_config(format!(
                "col weight must be [{per_bank}, {k}, 1], got {:?}",
                col_weight.shape().dims()
            )));
        }
        Ok(FuSeConv {
            variant,
            channels,
            k,
            stride,
            row_weight,
            col_weight,
        })
    }

    /// Creates a layer whose filters are all `value` — handy for tests and
    /// examples.
    ///
    /// # Errors
    ///
    /// Same conditions as [`FuSeConv::new`].
    pub fn with_constant_weights(
        variant: FuSeVariant,
        channels: usize,
        k: usize,
        stride: usize,
        value: f32,
    ) -> Result<Self, NnError> {
        let per_bank = channels
            .checked_div(variant.d())
            .filter(|&p| p > 0)
            .ok_or_else(|| NnError::bad_config("channels too small for variant"))?;
        let row = Tensor::full(&[per_bank, 1, k.max(1)], value)?;
        let col = Tensor::full(&[per_bank, k.max(1), 1], value)?;
        Self::new(variant, channels, k, stride, row, col)
    }

    /// The variant.
    pub fn variant(&self) -> FuSeVariant {
        self.variant
    }

    /// Input channel count `C`.
    pub fn channels(&self) -> usize {
        self.channels
    }

    /// Filter length `K`.
    pub fn kernel(&self) -> usize {
        self.k
    }

    /// Stride.
    pub fn stride(&self) -> usize {
        self.stride
    }

    /// Output channel count: `2C` for Full, `C` for Half.
    pub fn output_channels(&self) -> usize {
        2 * self.channels / self.variant.d()
    }

    /// The row filter bank, `[C/D, 1, K]`.
    pub fn row_weight(&self) -> &Tensor {
        &self.row_weight
    }

    /// The column filter bank, `[C/D, K, 1]`.
    pub fn col_weight(&self) -> &Tensor {
        &self.col_weight
    }

    /// Shape-level descriptors of this layer's two 1-D filter banks over an
    /// `in_h×in_w` feature map, for MAC/latency accounting.
    pub fn ops(&self, in_h: usize, in_w: usize) -> Vec<Op> {
        let per_bank = self.channels / self.variant.d();
        let pad = self.k / 2;
        vec![
            Op::fuse1d(in_h, in_w, per_bank, self.k, self.stride, pad, Axis1d::Row),
            Op::fuse1d(in_h, in_w, per_bank, self.k, self.stride, pad, Axis1d::Col),
        ]
    }

    /// Runs the layer on a `[C, H, W]` input.
    ///
    /// The row bank output comes first in the channel concatenation, then
    /// the column bank — matching Fig. 4(b)'s layout.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::BadInput`] unless the input is `[C, H, W]` with
    /// this layer's channel count.
    pub fn forward(&self, input: &Tensor) -> Result<Tensor, NnError> {
        let d = input.shape().dims();
        if d.len() != 3 || d[0] != self.channels {
            return Err(NnError::BadInput {
                layer: "fuseconv",
                expected: format!("[{}, H, W]", self.channels),
                actual: d.to_vec(),
            });
        }
        let (h, w) = (d[1], d[2]);
        let pad = self.k / 2;
        let row_spec = Conv2dSpec::new(1, self.k, self.stride, 0, pad)?;
        let col_spec = Conv2dSpec::new(self.k, 1, self.stride, pad, 0)?;
        let per_bank = self.channels / self.variant.d();
        let plane = h * w;

        let (row_in, col_in) = match self.variant {
            FuSeVariant::Full => (input.clone(), input.clone()),
            FuSeVariant::Half => {
                let iv = input.as_slice();
                let first = Tensor::from_vec(iv[..per_bank * plane].to_vec(), &[per_bank, h, w])?;
                let second = Tensor::from_vec(iv[per_bank * plane..].to_vec(), &[per_bank, h, w])?;
                (first, second)
            }
        };
        let row_out = depthwise2d(&row_in, &self.row_weight, &row_spec)?;
        let col_out = depthwise2d(&col_in, &self.col_weight, &col_spec)?;

        let rd = row_out.shape().dims();
        let cd = col_out.shape().dims();
        // The two banks must agree spatially (odd K, pad K/2, same stride
        // guarantee it; assert the invariant rather than silently mixing).
        debug_assert_eq!(&rd[1..], &cd[1..], "bank output extents must agree");
        let (oh, ow) = (rd[1], rd[2]);
        let mut data = Vec::with_capacity((rd[0] + cd[0]) * oh * ow);
        data.extend_from_slice(row_out.as_slice());
        data.extend_from_slice(col_out.as_slice());
        Ok(Tensor::from_vec(data, &[rd[0] + cd[0], oh, ow])?)
    }
}

impl fmt::Display for FuSeConv {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "fuseconv-{} c{} k{} s{}",
            self.variant, self.channels, self.k, self.stride
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seq_tensor(dims: &[usize], scale: f32) -> Tensor {
        let mut i = 0.0f32;
        Tensor::from_fn(dims, |_| {
            i += 1.0;
            (i * scale) % 3.0 - 1.0
        })
        .unwrap()
    }

    fn layer(variant: FuSeVariant, c: usize, k: usize, s: usize) -> FuSeConv {
        FuSeConv::new(
            variant,
            c,
            k,
            s,
            seq_tensor(&[c / variant.d(), 1, k], 0.37),
            seq_tensor(&[c / variant.d(), k, 1], 0.53),
        )
        .unwrap()
    }

    #[test]
    fn full_variant_doubles_channels() {
        let l = layer(FuSeVariant::Full, 4, 3, 1);
        let x = seq_tensor(&[4, 6, 6], 0.71);
        let y = l.forward(&x).unwrap();
        assert_eq!(y.shape().dims(), &[8, 6, 6]);
        assert_eq!(l.output_channels(), 8);
    }

    #[test]
    fn half_variant_keeps_channels() {
        let l = layer(FuSeVariant::Half, 4, 3, 1);
        let x = seq_tensor(&[4, 6, 6], 0.71);
        let y = l.forward(&x).unwrap();
        assert_eq!(y.shape().dims(), &[4, 6, 6]);
        assert_eq!(l.output_channels(), 4);
    }

    #[test]
    fn forward_matches_manual_1d_convolutions() {
        // Full variant, channel 1's row output must equal a hand-rolled 1-D
        // convolution of each image row.
        let l = layer(FuSeVariant::Full, 2, 3, 1);
        let x = seq_tensor(&[2, 4, 5], 0.93);
        let y = l.forward(&x).unwrap();
        let k: Vec<f32> = l.row_weight().as_slice()[3..6].to_vec(); // channel 1
        for row in 0..4 {
            for col in 0..5 {
                let mut acc = 0.0;
                for (t, kv) in k.iter().enumerate() {
                    let xi = col as isize + t as isize - 1; // pad 1
                    if xi >= 0 && (xi as usize) < 5 {
                        acc += kv * x.get(&[1, row, xi as usize]).unwrap();
                    }
                }
                let got = y.get(&[1, row, col]).unwrap();
                assert!((got - acc).abs() < 1e-5, "row {row} col {col}");
            }
        }
    }

    #[test]
    fn column_bank_is_transposed_row_bank() {
        // With col weights equal to row weights, running on a transposed
        // input transposes the output.
        let c = 2;
        let row_w = seq_tensor(&[c, 1, 3], 0.41);
        let col_w = row_w.reshape(&[c, 3, 1]).unwrap();
        let l = FuSeConv::new(FuSeVariant::Full, c, 3, 1, row_w, col_w).unwrap();
        let x = seq_tensor(&[c, 5, 5], 0.87);
        // Transpose spatial dims of x.
        let xt = Tensor::from_fn(&[c, 5, 5], |ix| x.get(&[ix[0], ix[2], ix[1]]).unwrap()).unwrap();
        let y = l.forward(&x).unwrap();
        let yt = l.forward(&xt).unwrap();
        // Row output of x == transposed col output of xt.
        for ch in 0..c {
            for a in 0..5 {
                for b in 0..5 {
                    let row_xy = y.get(&[ch, a, b]).unwrap();
                    let col_xty = yt.get(&[c + ch, b, a]).unwrap();
                    assert!((row_xy - col_xty).abs() < 1e-5);
                }
            }
        }
    }

    #[test]
    fn stride_two_matches_descriptor_shapes() {
        for variant in [FuSeVariant::Full, FuSeVariant::Half] {
            let l = layer(variant, 4, 3, 2);
            let x = seq_tensor(&[4, 7, 9], 0.67);
            let y = l.forward(&x).unwrap();
            let ops = l.ops(7, 9);
            let (oh, ow, oc) = ops[0].output_shape();
            assert_eq!(ops[1].output_shape(), (oh, ow, oc));
            assert_eq!(y.shape().dims(), &[l.output_channels(), oh, ow]);
        }
    }

    #[test]
    fn parameter_count_follows_paper_formula() {
        // Params of the depthwise part: (2/D)·C·K.
        for (variant, c, k) in [(FuSeVariant::Full, 8, 3), (FuSeVariant::Half, 8, 5)] {
            let l = layer(variant, c, k, 1);
            let params: u64 = l.ops(16, 16).iter().map(|o| o.params()).sum();
            assert_eq!(params, (2 * c * k / variant.d()) as u64);
        }
    }

    #[test]
    fn invalid_configs_rejected() {
        let w_row = Tensor::zeros(&[2, 1, 3]).unwrap();
        let w_col = Tensor::zeros(&[2, 3, 1]).unwrap();
        // Even kernel.
        assert!(FuSeConv::with_constant_weights(FuSeVariant::Full, 2, 4, 1, 0.0).is_err());
        // Odd channels with half variant.
        assert!(FuSeConv::with_constant_weights(FuSeVariant::Half, 3, 3, 1, 0.0).is_err());
        // Zero stride.
        assert!(FuSeConv::new(FuSeVariant::Full, 2, 3, 0, w_row.clone(), w_col.clone()).is_err());
        // Wrong weight shape for the variant.
        assert!(FuSeConv::new(FuSeVariant::Half, 2, 3, 1, w_row, w_col).is_err());
        // Wrong input channels at forward time.
        let l = FuSeConv::with_constant_weights(FuSeVariant::Full, 2, 3, 1, 1.0).unwrap();
        assert!(l.forward(&Tensor::zeros(&[3, 4, 4]).unwrap()).is_err());
    }

    #[test]
    fn display_names_variant() {
        let l = FuSeConv::with_constant_weights(FuSeVariant::Half, 4, 3, 2, 0.0).unwrap();
        assert_eq!(l.to_string(), "fuseconv-half c4 k3 s2");
    }
}

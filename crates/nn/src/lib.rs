//! Functional DNN layer library with exact MAC/parameter accounting.
//!
//! Two views of every layer coexist here:
//!
//! - [`ops::Op`] — a lightweight *descriptor* (shapes only) from which MACs,
//!   parameters and output sizes are computed analytically. The network
//!   tables in `fuseconv-models` and the latency model in `fuseconv-latency`
//!   work entirely on descriptors.
//! - The functional layers ([`conv`], [`fuse`], [`linear`], [`se`], …) —
//!   reference `f32` implementations operating on `[C, H, W]` tensors, used
//!   to validate the descriptors, the simulator mappings, and to train small
//!   networks in `fuseconv-train`.
//!
//! The crate implements every operator appearing in the paper's five
//! networks: standard/depthwise/pointwise convolution, the two FuSeConv
//! variants (§IV-A), squeeze-and-excite, fully-connected layers, batch norm
//! (inference form), ReLU/ReLU6/h-swish/h-sigmoid, and pooling.
//!
//! # Examples
//!
//! ```
//! use fuseconv_nn::ops::Op;
//!
//! // A 3x3 depthwise layer over a 112x112x32 feature map (MobileNet-V1's
//! // first depthwise layer).
//! let dw = Op::depthwise(112, 112, 32, 3, 1, 1);
//! assert_eq!(dw.macs(), 112 * 112 * 32 * 9);
//! assert_eq!(dw.params(), 32 * 9);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod activation;
pub mod conv;
pub mod error;
pub mod fuse;
pub mod linear;
pub mod norm;
pub mod ops;
pub mod pool;
pub mod se;

pub use error::NnError;
pub use fuse::{FuSeConv, FuSeVariant};
pub use ops::Op;

//! Fully-connected (linear) layers.

use crate::NnError;
use fuseconv_tensor::Tensor;

/// Applies a fully-connected layer: `y = W·x + b`.
///
/// `input` is `[in_features]`, `weight` is `[out_features, in_features]`,
/// `bias` (optional) is `[out_features]`.
///
/// # Errors
///
/// Returns [`NnError::BadInput`] for rank/shape mismatches.
pub fn linear(input: &Tensor, weight: &Tensor, bias: Option<&Tensor>) -> Result<Tensor, NnError> {
    let id = input.shape().dims();
    let wd = weight.shape().dims();
    if id.len() != 1 {
        return Err(NnError::BadInput {
            layer: "linear",
            expected: "[in_features]".into(),
            actual: id.to_vec(),
        });
    }
    if wd.len() != 2 || wd[1] != id[0] {
        return Err(NnError::BadInput {
            layer: "linear weight",
            expected: format!("[out_features, {}]", id[0]),
            actual: wd.to_vec(),
        });
    }
    let (o, n) = (wd[0], wd[1]);
    if let Some(b) = bias {
        if b.shape().dims() != [o] {
            return Err(NnError::BadInput {
                layer: "linear bias",
                expected: format!("[{o}]"),
                actual: b.shape().dims().to_vec(),
            });
        }
    }
    let iv = input.as_slice();
    let wv = weight.as_slice();
    let mut out = vec![0.0f32; o];
    for (oc, slot) in out.iter_mut().enumerate() {
        let row = &wv[oc * n..(oc + 1) * n];
        *slot = row.iter().zip(iv).map(|(w, x)| w * x).sum();
        if let Some(b) = bias {
            *slot += b.as_slice()[oc];
        }
    }
    Ok(Tensor::from_vec(out, &[o])?)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn computes_affine_map() {
        let x = Tensor::from_vec(vec![1.0, 2.0], &[2]).unwrap();
        let w = Tensor::from_vec(vec![1.0, 0.0, 0.0, 1.0, 1.0, 1.0], &[3, 2]).unwrap();
        let b = Tensor::from_vec(vec![0.5, -0.5, 0.0], &[3]).unwrap();
        let y = linear(&x, &w, Some(&b)).unwrap();
        assert_eq!(y.as_slice(), &[1.5, 1.5, 3.0]);
        let y = linear(&x, &w, None).unwrap();
        assert_eq!(y.as_slice(), &[1.0, 2.0, 3.0]);
    }

    #[test]
    fn shape_validation() {
        let x = Tensor::zeros(&[2]).unwrap();
        let w = Tensor::zeros(&[3, 4]).unwrap();
        assert!(linear(&x, &w, None).is_err());
        let w = Tensor::zeros(&[3, 2]).unwrap();
        let bad_b = Tensor::zeros(&[4]).unwrap();
        assert!(linear(&x, &w, Some(&bad_b)).is_err());
        let mat = Tensor::zeros(&[2, 2]).unwrap();
        assert!(linear(&mat, &w, None).is_err());
    }
}

//! Batch normalization, inference form.
//!
//! At inference time batch norm is the per-channel affine map
//! `y = γ·(x − μ)/√(σ² + ε) + β`, which folds into a scale and shift. Only
//! that folded form is needed here; training-time statistics live in
//! `fuseconv-train`.

use crate::NnError;
use fuseconv_tensor::Tensor;

/// Folded per-channel batch-norm parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct BatchNorm {
    scale: Vec<f32>,
    shift: Vec<f32>,
}

impl BatchNorm {
    /// Builds the folded form from learned statistics.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::BadConfig`] if the four parameter vectors have
    /// differing lengths, are empty, or `eps <= 0`.
    pub fn from_stats(
        gamma: &[f32],
        beta: &[f32],
        mean: &[f32],
        var: &[f32],
        eps: f32,
    ) -> Result<Self, NnError> {
        let c = gamma.len();
        if c == 0 || beta.len() != c || mean.len() != c || var.len() != c {
            return Err(NnError::bad_config(
                "batch-norm parameter vectors must be nonempty and equal length",
            ));
        }
        if eps <= 0.0 {
            return Err(NnError::bad_config("batch-norm eps must be positive"));
        }
        let mut scale = Vec::with_capacity(c);
        let mut shift = Vec::with_capacity(c);
        for i in 0..c {
            let s = gamma[i] / (var[i] + eps).sqrt();
            scale.push(s);
            shift.push(beta[i] - mean[i] * s);
        }
        Ok(BatchNorm { scale, shift })
    }

    /// Identity normalization over `c` channels (useful in tests and as a
    /// starting point).
    ///
    /// # Errors
    ///
    /// Returns [`NnError::BadConfig`] if `c == 0`.
    pub fn identity(c: usize) -> Result<Self, NnError> {
        if c == 0 {
            return Err(NnError::bad_config("channel count must be nonzero"));
        }
        Ok(BatchNorm {
            scale: vec![1.0; c],
            shift: vec![0.0; c],
        })
    }

    /// Number of channels.
    pub fn channels(&self) -> usize {
        self.scale.len()
    }

    /// Applies the folded normalization to a `[C, H, W]` tensor.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::BadInput`] unless the input is rank-3 with the
    /// right channel count.
    pub fn forward(&self, input: &Tensor) -> Result<Tensor, NnError> {
        let d = input.shape().dims();
        if d.len() != 3 || d[0] != self.channels() {
            return Err(NnError::BadInput {
                layer: "batch_norm",
                expected: format!("[{}, H, W]", self.channels()),
                actual: d.to_vec(),
            });
        }
        let plane = d[1] * d[2];
        let mut out = input.as_slice().to_vec();
        for ch in 0..d[0] {
            let (s, b) = (self.scale[ch], self.shift[ch]);
            for v in &mut out[ch * plane..(ch + 1) * plane] {
                *v = *v * s + b;
            }
        }
        Ok(Tensor::from_vec(out, d)?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_preserves_input() {
        let bn = BatchNorm::identity(2).unwrap();
        let t = Tensor::from_fn(&[2, 2, 2], |ix| ix[2] as f32).unwrap();
        assert_eq!(bn.forward(&t).unwrap(), t);
    }

    #[test]
    fn folded_form_matches_definition() {
        let bn = BatchNorm::from_stats(&[2.0], &[1.0], &[3.0], &[4.0], 1e-5).unwrap();
        let t = Tensor::from_vec(vec![5.0], &[1, 1, 1]).unwrap();
        let y = bn.forward(&t).unwrap();
        let expect = 2.0 * (5.0 - 3.0) / (4.0f32 + 1e-5).sqrt() + 1.0;
        assert!((y.as_slice()[0] - expect).abs() < 1e-5);
    }

    #[test]
    fn normalizes_to_unit_stats() {
        // With gamma=1, beta=0 the folded map standardizes its own stats.
        let data: Vec<f32> = (0..8).map(|x| x as f32).collect();
        let mean = data.iter().sum::<f32>() / 8.0;
        let var = data.iter().map(|x| (x - mean).powi(2)).sum::<f32>() / 8.0;
        let bn = BatchNorm::from_stats(&[1.0], &[0.0], &[mean], &[var], 1e-8).unwrap();
        let t = Tensor::from_vec(data, &[1, 2, 4]).unwrap();
        let y = bn.forward(&t).unwrap();
        let m: f32 = y.as_slice().iter().sum::<f32>() / 8.0;
        let v: f32 = y.as_slice().iter().map(|x| (x - m).powi(2)).sum::<f32>() / 8.0;
        assert!(m.abs() < 1e-4);
        assert!((v - 1.0).abs() < 1e-3);
    }

    #[test]
    fn validation() {
        assert!(BatchNorm::from_stats(&[1.0], &[0.0, 0.0], &[0.0], &[1.0], 1e-5).is_err());
        assert!(BatchNorm::from_stats(&[], &[], &[], &[], 1e-5).is_err());
        assert!(BatchNorm::from_stats(&[1.0], &[0.0], &[0.0], &[1.0], 0.0).is_err());
        assert!(BatchNorm::identity(0).is_err());
        let bn = BatchNorm::identity(3).unwrap();
        assert!(bn.forward(&Tensor::zeros(&[2, 2, 2]).unwrap()).is_err());
    }
}

//! Shape-level operator descriptors with exact MAC/parameter accounting.
//!
//! Descriptors are what the architecture tables (`fuseconv-models`) are made
//! of and what the latency model (`fuseconv-latency`) consumes. The MAC and
//! parameter formulas are those of §II-D and §IV-A of the paper; unit tests
//! pin them to hand counts, and integration tests check them against the
//! functional layers.

use std::fmt;

/// Broad operator class, used for the paper's Fig. 8(c) latency-distribution
/// breakdown.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum OpClass {
    /// Standard (dense) 2-D convolution.
    Standard,
    /// Depthwise 2-D convolution.
    Depthwise,
    /// Pointwise (`1×1`) convolution.
    Pointwise,
    /// A FuSeConv 1-D depthwise convolution (row or column).
    FuSe,
    /// Fully-connected layer (including the squeeze-and-excite FCs).
    Fc,
}

impl fmt::Display for OpClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            OpClass::Standard => "standard conv",
            OpClass::Depthwise => "depthwise conv",
            OpClass::Pointwise => "pointwise conv",
            OpClass::FuSe => "fuse conv",
            OpClass::Fc => "fully connected",
        };
        f.write_str(s)
    }
}

/// Orientation of a FuSeConv 1-D filter.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Axis1d {
    /// `1×K` filter sliding along image rows (the paper's *row filters*).
    Row,
    /// `K×1` filter sliding along image columns (*column filters*).
    Col,
}

/// A shape-level description of one array-bound operator.
///
/// All spatial fields are in elements; `stride` applies to both axes (the
/// networks in the paper only use uniform strides). Padding is symmetric
/// per axis. Batch size is 1 throughout, matching the paper's edge-inference
/// latency setting.
// Deliberately exhaustive (no `#[non_exhaustive]`): the latency model must
// fail to compile, not silently miscost, when an operator kind is added.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Op {
    /// Standard convolution: `in_c → out_c` with a `k×k` kernel.
    Conv2d {
        /// Input feature-map height.
        in_h: usize,
        /// Input feature-map width.
        in_w: usize,
        /// Input channels.
        in_c: usize,
        /// Output channels (number of filters).
        out_c: usize,
        /// Kernel extent (square).
        k: usize,
        /// Stride on both axes.
        stride: usize,
        /// Symmetric zero padding on both axes.
        pad: usize,
    },
    /// Depthwise convolution: each of `c` channels filtered independently
    /// with its own `k×k` kernel.
    Depthwise {
        /// Input feature-map height.
        in_h: usize,
        /// Input feature-map width.
        in_w: usize,
        /// Channels (input = output).
        c: usize,
        /// Kernel extent (square).
        k: usize,
        /// Stride on both axes.
        stride: usize,
        /// Symmetric zero padding on both axes.
        pad: usize,
    },
    /// Pointwise (`1×1`) convolution, stride 1.
    Pointwise {
        /// Feature-map height.
        in_h: usize,
        /// Feature-map width.
        in_w: usize,
        /// Input channels.
        in_c: usize,
        /// Output channels.
        out_c: usize,
    },
    /// A bank of FuSeConv 1-D depthwise filters on `c` channels.
    FuSe1d {
        /// Input feature-map height.
        in_h: usize,
        /// Input feature-map width.
        in_w: usize,
        /// Channels this bank filters (`C/D` in the paper).
        c: usize,
        /// Filter length `K`.
        k: usize,
        /// Stride (applied along the filter axis; the orthogonal axis is
        /// subsampled by the same stride so the output matches the
        /// depthwise layer it replaces).
        stride: usize,
        /// Zero padding along the filter axis.
        pad: usize,
        /// Filter orientation.
        axis: Axis1d,
    },
    /// Fully-connected layer.
    Fc {
        /// Input features.
        in_features: usize,
        /// Output features.
        out_features: usize,
    },
}

/// Ceiling division helper shared by the shape formulas.
fn out_extent(input: usize, k: usize, stride: usize, pad: usize) -> usize {
    (input + 2 * pad - k) / stride + 1
}

/// Ceiling of `a / b`.
fn div_ceil(a: usize, b: usize) -> usize {
    a.div_ceil(b)
}

impl Op {
    /// Standard convolution descriptor.
    pub fn conv2d(
        in_h: usize,
        in_w: usize,
        in_c: usize,
        out_c: usize,
        k: usize,
        stride: usize,
        pad: usize,
    ) -> Self {
        Op::Conv2d {
            in_h,
            in_w,
            in_c,
            out_c,
            k,
            stride,
            pad,
        }
    }

    /// Depthwise convolution descriptor.
    pub fn depthwise(
        in_h: usize,
        in_w: usize,
        c: usize,
        k: usize,
        stride: usize,
        pad: usize,
    ) -> Self {
        Op::Depthwise {
            in_h,
            in_w,
            c,
            k,
            stride,
            pad,
        }
    }

    /// Pointwise convolution descriptor.
    pub fn pointwise(in_h: usize, in_w: usize, in_c: usize, out_c: usize) -> Self {
        Op::Pointwise {
            in_h,
            in_w,
            in_c,
            out_c,
        }
    }

    /// FuSeConv 1-D filter-bank descriptor.
    pub fn fuse1d(
        in_h: usize,
        in_w: usize,
        c: usize,
        k: usize,
        stride: usize,
        pad: usize,
        axis: Axis1d,
    ) -> Self {
        Op::FuSe1d {
            in_h,
            in_w,
            c,
            k,
            stride,
            pad,
            axis,
        }
    }

    /// Fully-connected descriptor.
    pub fn fc(in_features: usize, out_features: usize) -> Self {
        Op::Fc {
            in_features,
            out_features,
        }
    }

    /// The operator's class for breakdown reports.
    pub fn class(&self) -> OpClass {
        match self {
            Op::Conv2d { .. } => OpClass::Standard,
            Op::Depthwise { .. } => OpClass::Depthwise,
            Op::Pointwise { .. } => OpClass::Pointwise,
            Op::FuSe1d { .. } => OpClass::FuSe,
            Op::Fc { .. } => OpClass::Fc,
        }
    }

    /// Output feature-map shape `(out_h, out_w, out_c)`. FC layers report
    /// `(1, 1, out_features)`.
    pub fn output_shape(&self) -> (usize, usize, usize) {
        match *self {
            Op::Conv2d {
                in_h,
                in_w,
                out_c,
                k,
                stride,
                pad,
                ..
            } => (
                out_extent(in_h, k, stride, pad),
                out_extent(in_w, k, stride, pad),
                out_c,
            ),
            Op::Depthwise {
                in_h,
                in_w,
                c,
                k,
                stride,
                pad,
            } => (
                out_extent(in_h, k, stride, pad),
                out_extent(in_w, k, stride, pad),
                c,
            ),
            Op::Pointwise {
                in_h, in_w, out_c, ..
            } => (in_h, in_w, out_c),
            Op::FuSe1d {
                in_h,
                in_w,
                c,
                k,
                stride,
                pad,
                axis,
            } => match axis {
                // The filter axis convolves; the orthogonal axis is
                // subsampled by the stride (ceil to keep at least one line).
                Axis1d::Row => (div_ceil(in_h, stride), out_extent(in_w, k, stride, pad), c),
                Axis1d::Col => (out_extent(in_h, k, stride, pad), div_ceil(in_w, stride), c),
            },
            Op::Fc { out_features, .. } => (1, 1, out_features),
        }
    }

    /// Exact multiply-accumulate count (§II-D / §IV-A formulas).
    pub fn macs(&self) -> u64 {
        let (oh, ow, _) = self.output_shape();
        match *self {
            Op::Conv2d { in_c, out_c, k, .. } => (oh * ow * out_c * k * k * in_c) as u64,
            Op::Depthwise { c, k, .. } => (oh * ow * c * k * k) as u64,
            Op::Pointwise { in_c, out_c, .. } => (oh * ow * in_c * out_c) as u64,
            Op::FuSe1d { c, k, .. } => (oh * ow * c * k) as u64,
            Op::Fc {
                in_features,
                out_features,
            } => (in_features * out_features) as u64,
        }
    }

    /// Exact weight-parameter count (biases and batch-norm affine terms are
    /// excluded uniformly; the comparisons in the paper are insensitive to
    /// them).
    pub fn params(&self) -> u64 {
        match *self {
            Op::Conv2d { in_c, out_c, k, .. } => (out_c * k * k * in_c) as u64,
            Op::Depthwise { c, k, .. } => (c * k * k) as u64,
            Op::Pointwise { in_c, out_c, .. } => (in_c * out_c) as u64,
            Op::FuSe1d { c, k, .. } => (c * k) as u64,
            Op::Fc {
                in_features,
                out_features,
            } => (in_features * out_features) as u64,
        }
    }
}

impl fmt::Display for Op {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            Op::Conv2d {
                in_h,
                in_w,
                in_c,
                out_c,
                k,
                stride,
                ..
            } => write!(f, "conv {k}x{k} s{stride} {in_c}->{out_c} @{in_h}x{in_w}"),
            Op::Depthwise {
                in_h,
                in_w,
                c,
                k,
                stride,
                ..
            } => write!(f, "dwconv {k}x{k} s{stride} c{c} @{in_h}x{in_w}"),
            Op::Pointwise {
                in_h,
                in_w,
                in_c,
                out_c,
            } => write!(f, "pwconv {in_c}->{out_c} @{in_h}x{in_w}"),
            Op::FuSe1d {
                in_h,
                in_w,
                c,
                k,
                stride,
                axis,
                ..
            } => {
                let (kh, kw) = match axis {
                    Axis1d::Row => (1, k),
                    Axis1d::Col => (k, 1),
                };
                write!(f, "fuse {kh}x{kw} s{stride} c{c} @{in_h}x{in_w}")
            }
            Op::Fc {
                in_features,
                out_features,
            } => write!(f, "fc {in_features}->{out_features}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standard_conv_counts() {
        // MobileNet-V1 stem: 3x3 s2 3->32 on 224x224 -> 112x112.
        let op = Op::conv2d(224, 224, 3, 32, 3, 2, 1);
        assert_eq!(op.output_shape(), (112, 112, 32));
        assert_eq!(op.macs(), 112 * 112 * 32 * 9 * 3);
        assert_eq!(op.params(), 32 * 9 * 3);
        assert_eq!(op.class(), OpClass::Standard);
    }

    #[test]
    fn depthwise_counts() {
        let op = Op::depthwise(112, 112, 64, 3, 2, 1);
        assert_eq!(op.output_shape(), (56, 56, 64));
        assert_eq!(op.macs(), 56 * 56 * 64 * 9);
        assert_eq!(op.params(), 64 * 9);
    }

    #[test]
    fn pointwise_counts() {
        let op = Op::pointwise(56, 56, 64, 128);
        assert_eq!(op.output_shape(), (56, 56, 128));
        assert_eq!(op.macs(), 56 * 56 * 64 * 128);
        assert_eq!(op.params(), 64 * 128);
    }

    #[test]
    fn fuse1d_row_and_col_shapes_match_depthwise_replacement() {
        // A stride-2 3x3 depthwise on 112x112 yields 56x56; both FuSe
        // orientations must produce the same spatial output (drop-in).
        let dw = Op::depthwise(112, 112, 64, 3, 2, 1);
        let row = Op::fuse1d(112, 112, 64, 3, 2, 1, Axis1d::Row);
        let col = Op::fuse1d(112, 112, 64, 3, 2, 1, Axis1d::Col);
        assert_eq!(dw.output_shape(), row.output_shape());
        assert_eq!(dw.output_shape(), col.output_shape());
    }

    #[test]
    fn fuse1d_counts_follow_paper_formula() {
        // §IV-A: depthwise part of FuSeConv has (2/D)·N·M·C·K MACs. One
        // FuSe1d op holds one direction on C/D channels: N·M·(C/D)·K.
        let op = Op::fuse1d(56, 56, 32, 3, 1, 1, Axis1d::Row);
        assert_eq!(op.output_shape(), (56, 56, 32));
        assert_eq!(op.macs(), 56 * 56 * 32 * 3);
        assert_eq!(op.params(), 32 * 3);
        assert_eq!(op.class(), OpClass::FuSe);
    }

    #[test]
    fn full_variant_total_matches_closed_form() {
        // Full variant (D=1) on a K=3, C=16, 28x28 stride-1 layer followed
        // by C'=32 pointwise: ops must equal (2/D)·N·M·C·(K + C').
        let (n, m, c, k, c_out) = (28usize, 28usize, 16usize, 3usize, 32usize);
        let row = Op::fuse1d(n, m, c, k, 1, 1, Axis1d::Row);
        let col = Op::fuse1d(n, m, c, k, 1, 1, Axis1d::Col);
        let pw = Op::pointwise(n, m, 2 * c, c_out);
        let total = row.macs() + col.macs() + pw.macs();
        let closed_form = (2 * n * m * c * (k + c_out)) as u64;
        assert_eq!(total, closed_form);
    }

    #[test]
    fn half_variant_total_matches_closed_form() {
        // Half variant (D=2): row on C/2, col on C/2, concat -> C channels.
        let (n, m, c, k, c_out) = (28usize, 28usize, 16usize, 3usize, 32usize);
        let row = Op::fuse1d(n, m, c / 2, k, 1, 1, Axis1d::Row);
        let col = Op::fuse1d(n, m, c / 2, k, 1, 1, Axis1d::Col);
        let pw = Op::pointwise(n, m, c, c_out);
        let total = row.macs() + col.macs() + pw.macs();
        let closed_form = (2 * n * m * c * (k + c_out) / 2) as u64;
        assert_eq!(total, closed_form);
    }

    #[test]
    fn depthwise_separable_matches_paper_closed_form() {
        // §II-D: N·M·C·(K² + C').
        let (n, m, c, k, c_out) = (14usize, 14usize, 96usize, 3usize, 160usize);
        let dw = Op::depthwise(n, m, c, k, 1, 1);
        let pw = Op::pointwise(n, m, c, c_out);
        assert_eq!(dw.macs() + pw.macs(), (n * m * c * (k * k + c_out)) as u64);
    }

    #[test]
    fn fc_counts() {
        let op = Op::fc(1280, 1000);
        assert_eq!(op.macs(), 1_280_000);
        assert_eq!(op.params(), 1_280_000);
        assert_eq!(op.output_shape(), (1, 1, 1000));
        assert_eq!(op.class(), OpClass::Fc);
    }

    #[test]
    fn display_is_informative() {
        assert_eq!(
            Op::depthwise(56, 56, 128, 3, 1, 1).to_string(),
            "dwconv 3x3 s1 c128 @56x56"
        );
        assert_eq!(
            Op::fuse1d(56, 56, 64, 5, 1, 2, Axis1d::Col).to_string(),
            "fuse 5x1 s1 c64 @56x56"
        );
    }

    #[test]
    fn odd_input_subsampling_rounds_up() {
        // 7x7 input, stride 2 row filter: 4 surviving rows (ceil 7/2).
        let op = Op::fuse1d(7, 7, 8, 3, 2, 1, Axis1d::Row);
        let (oh, ow, _) = op.output_shape();
        assert_eq!(oh, 4);
        assert_eq!(ow, 4);
    }
}

//! Pooling operations.

use crate::NnError;
use fuseconv_tensor::Tensor;

/// Global average pooling: `[C, H, W]` → `[C]`.
///
/// # Errors
///
/// Returns [`NnError::BadInput`] unless the input is rank-3.
pub fn global_avg_pool(input: &Tensor) -> Result<Tensor, NnError> {
    let d = input.shape().dims();
    if d.len() != 3 {
        return Err(NnError::BadInput {
            layer: "global_avg_pool",
            expected: "[C, H, W]".into(),
            actual: d.to_vec(),
        });
    }
    let (c, h, w) = (d[0], d[1], d[2]);
    let plane = h * w;
    let iv = input.as_slice();
    let out: Vec<f32> = (0..c)
        .map(|ch| iv[ch * plane..(ch + 1) * plane].iter().sum::<f32>() / plane as f32)
        .collect();
    Ok(Tensor::from_vec(out, &[c])?)
}

/// Non-overlapping average pooling with a square `k×k` window and stride
/// `k`: `[C, H, W]` → `[C, H/k, W/k]`.
///
/// # Errors
///
/// Returns [`NnError::BadInput`] unless the input is rank-3, and
/// [`NnError::BadConfig`] unless `k` divides both spatial extents.
pub fn avg_pool(input: &Tensor, k: usize) -> Result<Tensor, NnError> {
    let d = input.shape().dims();
    if d.len() != 3 {
        return Err(NnError::BadInput {
            layer: "avg_pool",
            expected: "[C, H, W]".into(),
            actual: d.to_vec(),
        });
    }
    if k == 0 || !d[1].is_multiple_of(k) || !d[2].is_multiple_of(k) {
        return Err(NnError::bad_config(format!(
            "pool window {k} must be nonzero and divide the {}x{} input",
            d[1], d[2]
        )));
    }
    let (c, h, w) = (d[0], d[1], d[2]);
    let (oh, ow) = (h / k, w / k);
    let iv = input.as_slice();
    let mut out = vec![0.0f32; c * oh * ow];
    let norm = 1.0 / (k * k) as f32;
    for ch in 0..c {
        for oy in 0..oh {
            for ox in 0..ow {
                let mut acc = 0.0;
                for dy in 0..k {
                    for dx in 0..k {
                        acc += iv[(ch * h + oy * k + dy) * w + ox * k + dx];
                    }
                }
                out[(ch * oh + oy) * ow + ox] = acc * norm;
            }
        }
    }
    Ok(Tensor::from_vec(out, &[c, oh, ow])?)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn global_pool_averages_each_channel() {
        let t = Tensor::from_fn(&[2, 2, 2], |ix| if ix[0] == 0 { 1.0 } else { 3.0 }).unwrap();
        let p = global_avg_pool(&t).unwrap();
        assert_eq!(p.as_slice(), &[1.0, 3.0]);
    }

    #[test]
    fn avg_pool_windows() {
        let t = Tensor::from_fn(&[1, 4, 4], |ix| (ix[1] * 4 + ix[2]) as f32).unwrap();
        let p = avg_pool(&t, 2).unwrap();
        assert_eq!(p.shape().dims(), &[1, 2, 2]);
        // Window (0,0): mean of {0,1,4,5} = 2.5.
        assert_eq!(p.get(&[0, 0, 0]).unwrap(), 2.5);
        assert_eq!(p.get(&[0, 1, 1]).unwrap(), 12.5);
    }

    #[test]
    fn avg_pool_then_global_equals_global() {
        let t = Tensor::from_fn(&[3, 4, 4], |ix| ((ix[0] + ix[1] * 2 + ix[2]) % 7) as f32).unwrap();
        let direct = global_avg_pool(&t).unwrap();
        let two_step = global_avg_pool(&avg_pool(&t, 2).unwrap()).unwrap();
        assert!(direct.max_abs_diff(&two_step).unwrap() < 1e-5);
    }

    #[test]
    fn validation() {
        let t = Tensor::zeros(&[4]).unwrap();
        assert!(global_avg_pool(&t).is_err());
        let t = Tensor::zeros(&[1, 5, 4]).unwrap();
        assert!(avg_pool(&t, 2).is_err());
        assert!(avg_pool(&t, 0).is_err());
    }
}

//! Squeeze-and-excite blocks (used by MobileNet-V3 and MnasNet).
//!
//! The paper includes the squeeze-and-excite FC layers in its latency
//! accounting (§V-A-3), so the block exposes [`SqueezeExcite::ops`]
//! descriptors alongside the functional forward pass.

use crate::activation::Activation;
use crate::linear::linear;
use crate::ops::Op;
use crate::pool::global_avg_pool;
use crate::NnError;
use fuseconv_tensor::Tensor;

/// A squeeze-and-excite block: global pool → FC (ReLU) → FC (h-sigmoid) →
/// channel-wise rescale.
#[derive(Debug, Clone, PartialEq)]
pub struct SqueezeExcite {
    w1: Tensor,
    w2: Tensor,
}

impl SqueezeExcite {
    /// Creates a block from its two FC weights: `w1` is `[reduced, c]`,
    /// `w2` is `[c, reduced]`.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::BadConfig`] for inconsistent weight shapes.
    pub fn new(w1: Tensor, w2: Tensor) -> Result<Self, NnError> {
        let (d1, d2) = (w1.shape().dims().to_vec(), w2.shape().dims().to_vec());
        if d1.len() != 2 || d2.len() != 2 || d1[0] != d2[1] || d1[1] != d2[0] {
            return Err(NnError::bad_config(format!(
                "se weights must be [r, c] and [c, r], got {d1:?} and {d2:?}"
            )));
        }
        Ok(SqueezeExcite { w1, w2 })
    }

    /// Creates a block with all-constant weights (tests/examples).
    ///
    /// # Errors
    ///
    /// Returns [`NnError::BadConfig`] if `c` or `reduced` is zero.
    pub fn with_constant_weights(c: usize, reduced: usize, value: f32) -> Result<Self, NnError> {
        if c == 0 || reduced == 0 {
            return Err(NnError::bad_config("channel counts must be nonzero"));
        }
        Self::new(
            Tensor::full(&[reduced, c], value)?,
            Tensor::full(&[c, reduced], value)?,
        )
    }

    /// Channel count `C`.
    pub fn channels(&self) -> usize {
        self.w1.shape().dims()[1]
    }

    /// Bottleneck width.
    pub fn reduced(&self) -> usize {
        self.w1.shape().dims()[0]
    }

    /// The two FC descriptors for latency/MAC accounting.
    pub fn ops(&self) -> Vec<Op> {
        vec![
            Op::fc(self.channels(), self.reduced()),
            Op::fc(self.reduced(), self.channels()),
        ]
    }

    /// Runs the block on a `[C, H, W]` input, returning the re-scaled map.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::BadInput`] unless the input is `[C, H, W]` with
    /// this block's channel count.
    pub fn forward(&self, input: &Tensor) -> Result<Tensor, NnError> {
        let d = input.shape().dims();
        if d.len() != 3 || d[0] != self.channels() {
            return Err(NnError::BadInput {
                layer: "squeeze_excite",
                expected: format!("[{}, H, W]", self.channels()),
                actual: d.to_vec(),
            });
        }
        let squeezed = global_avg_pool(input)?;
        let hidden = Activation::Relu.apply(&linear(&squeezed, &self.w1, None)?);
        let gates = Activation::HSigmoid.apply(&linear(&hidden, &self.w2, None)?);
        let plane = d[1] * d[2];
        let mut out = input.as_slice().to_vec();
        for ch in 0..d[0] {
            let g = gates.as_slice()[ch];
            for v in &mut out[ch * plane..(ch + 1) * plane] {
                *v *= g;
            }
        }
        Ok(Tensor::from_vec(out, d)?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gates_are_bounded_channel_scales() {
        let se = SqueezeExcite::with_constant_weights(4, 2, 0.1).unwrap();
        let x = Tensor::from_fn(&[4, 3, 3], |ix| (ix[0] + 1) as f32).unwrap();
        let y = se.forward(&x).unwrap();
        // Every output is input scaled by a per-channel factor in [0, 1].
        for ch in 0..4 {
            let ratio = y.get(&[ch, 0, 0]).unwrap() / x.get(&[ch, 0, 0]).unwrap();
            assert!((0.0..=1.0).contains(&ratio));
            for yy in 0..3 {
                for xx in 0..3 {
                    let r = y.get(&[ch, yy, xx]).unwrap() / x.get(&[ch, yy, xx]).unwrap();
                    assert!((r - ratio).abs() < 1e-5);
                }
            }
        }
    }

    #[test]
    fn zero_weights_saturate_hsigmoid_to_half() {
        // With w2 = 0 the gate input is 0 and h-sigmoid(0) = 0.5.
        let se = SqueezeExcite::new(
            Tensor::full(&[2, 4], 1.0).unwrap(),
            Tensor::zeros(&[4, 2]).unwrap(),
        )
        .unwrap();
        let x = Tensor::full(&[4, 2, 2], 2.0).unwrap();
        let y = se.forward(&x).unwrap();
        for v in y.as_slice() {
            assert!((v - 1.0).abs() < 1e-6);
        }
    }

    #[test]
    fn op_descriptors_cover_both_fcs() {
        let se = SqueezeExcite::with_constant_weights(16, 4, 0.0).unwrap();
        let ops = se.ops();
        assert_eq!(ops.len(), 2);
        assert_eq!(ops[0].macs(), 16 * 4);
        assert_eq!(ops[1].macs(), 4 * 16);
        assert_eq!(se.channels(), 16);
        assert_eq!(se.reduced(), 4);
    }

    #[test]
    fn validation() {
        assert!(SqueezeExcite::with_constant_weights(0, 2, 0.0).is_err());
        assert!(SqueezeExcite::new(
            Tensor::zeros(&[2, 4]).unwrap(),
            Tensor::zeros(&[4, 3]).unwrap()
        )
        .is_err());
        let se = SqueezeExcite::with_constant_weights(4, 2, 0.0).unwrap();
        assert!(se.forward(&Tensor::zeros(&[3, 2, 2]).unwrap()).is_err());
    }
}

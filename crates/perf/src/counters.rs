//! Cycle-accountable performance counters.
//!
//! Every simulated cycle is attributed to exactly one category — fill,
//! active compute, compute bubble or drain — with the hard invariant
//!
//! ```text
//! fill + active + bubble + drain == cycles
//! ```
//!
//! enforced structurally (each `Cycle` event increments exactly one
//! category) and re-checked against [`SimResult::cycles`] by the counted
//! simulation wrappers in [`crate::sim`]. The same counters can be built
//! three independent ways:
//!
//! * from a cycle-exact simulation, by handing a [`CounterSink`] to any
//!   `simulate_*_traced` entry point;
//! * from analytic fold replay ([`fuseconv_trace::replay`]) with the same
//!   sink;
//! * directly from the latency model's fold plan via
//!   [`PerfCounters::from_fold_plan`], with no event stream at all.
//!
//! All three agree fold by fold for every supported workload — the
//! `perf_accountability` integration test pins that equality.
//!
//! [`SimResult::cycles`]: fuseconv_systolic::SimResult::cycles

use fuseconv_trace::{FoldKind, FoldSpec, Phase, TraceEvent, TraceSink};

/// Cycle attribution for one fold.
///
/// `fill + active + bubble + drain` is the fold's total cycle count;
/// `busy_pe_cycles` and `broadcast_ticks` are supplementary work counters
/// at PE·cycle and link-tick granularity.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FoldCounters {
    /// Provenance tag from the fold's `FoldStart` (op index for network
    /// plans, fold ordinal for raw simulations).
    pub tag: u64,
    /// Dataflow the fold executed under.
    pub kind: FoldKind,
    /// Array rows the fold occupied.
    pub rows_used: u32,
    /// Array columns the fold occupied.
    pub cols_used: u32,
    /// Operand-preload cycles (no PE does useful work).
    pub fill: u64,
    /// Compute cycles in which at least one PE performed a MAC.
    pub active: u64,
    /// Compute cycles in which *no* PE performed a MAC — structural
    /// pipeline bubbles inside the compute window.
    pub bubble: u64,
    /// Output-drain cycles (no PE does useful work).
    pub drain: u64,
    /// PE·cycles of useful work (one MAC each) in the fold.
    pub busy_pe_cycles: u64,
    /// Weight-broadcast link ticks (row-broadcast folds only; one tick per
    /// used row per compute cycle).
    pub broadcast_ticks: u64,
}

impl FoldCounters {
    /// Zeroed counters for a fold that is about to execute.
    pub fn start(tag: u64, kind: FoldKind, rows_used: u32, cols_used: u32) -> FoldCounters {
        FoldCounters {
            tag,
            kind,
            rows_used,
            cols_used,
            fill: 0,
            active: 0,
            bubble: 0,
            drain: 0,
            busy_pe_cycles: 0,
            broadcast_ticks: 0,
        }
    }

    /// Total cycles of the fold — the sum of all four categories.
    pub fn cycles(&self) -> u64 {
        self.fill + self.active + self.bubble + self.drain
    }

    /// Compute-window cycles (`active + bubble`).
    pub fn compute(&self) -> u64 {
        self.active + self.bubble
    }

    fn from_spec(spec: &FoldSpec) -> FoldCounters {
        // Replay spreads a fold's MACs uniformly over its compute window,
        // so a compute cycle is idle exactly when there are fewer MACs
        // than compute cycles: active = min(macs, compute). The cycle
        // simulator agrees because every real fold shape carries at least
        // one MAC per compute cycle.
        let active = spec.macs.min(spec.compute);
        FoldCounters {
            tag: spec.tag,
            kind: spec.kind,
            rows_used: spec.rows_used,
            cols_used: spec.cols_used,
            fill: spec.fill,
            active,
            bubble: spec.compute - active,
            drain: spec.drain,
            busy_pe_cycles: spec.macs,
            broadcast_ticks: if spec.kind == FoldKind::RowBroadcast {
                u64::from(spec.rows_used) * spec.compute
            } else {
                0
            },
        }
    }
}

/// Aggregated, fully cycle-accounted performance counters for a run
/// (one op, one fold plan, or a whole network).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PerfCounters {
    rows: usize,
    cols: usize,
    fill: u64,
    active: u64,
    bubble: u64,
    drain: u64,
    busy_pe_cycles: u64,
    broadcast_ticks: u64,
    folds: Vec<FoldCounters>,
    row_busy: Vec<u64>,
    col_busy: Vec<u64>,
}

impl PerfCounters {
    /// Empty counters for a `rows × cols` array.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn new(rows: usize, cols: usize) -> Self {
        assert!(rows > 0 && cols > 0, "array dimensions must be nonzero");
        PerfCounters {
            rows,
            cols,
            fill: 0,
            active: 0,
            bubble: 0,
            drain: 0,
            busy_pe_cycles: 0,
            broadcast_ticks: 0,
            folds: Vec::new(),
            row_busy: Vec::new(),
            col_busy: Vec::new(),
        }
    }

    /// Derives the counters analytically from a fold plan — no event
    /// stream, no simulation. Identical to what a [`CounterSink`] collects
    /// when [`fuseconv_trace::replay`] drives it with the same specs.
    pub fn from_fold_plan(specs: &[FoldSpec], rows: usize, cols: usize) -> Self {
        let mut out = PerfCounters::new(rows, cols);
        for spec in specs {
            let fc = FoldCounters::from_spec(spec);
            out.fill += fc.fill;
            out.active += fc.active;
            out.bubble += fc.bubble;
            out.drain += fc.drain;
            out.busy_pe_cycles += fc.busy_pe_cycles;
            out.broadcast_ticks += fc.broadcast_ticks;
            out.folds.push(fc);
        }
        out
    }

    /// Total cycles — by the accountability invariant, exactly
    /// `fill() + active() + bubble() + drain()`.
    pub fn cycles(&self) -> u64 {
        self.fill + self.active + self.bubble + self.drain
    }

    /// Array-fill (operand preload) cycles.
    pub fn fill(&self) -> u64 {
        self.fill
    }

    /// Compute cycles with at least one PE doing useful work.
    pub fn active(&self) -> u64 {
        self.active
    }

    /// Compute cycles with no PE doing useful work (structural stall).
    pub fn bubble(&self) -> u64 {
        self.bubble
    }

    /// Output-drain cycles.
    pub fn drain(&self) -> u64 {
        self.drain
    }

    /// Compute-window cycles (`active + bubble`).
    pub fn compute(&self) -> u64 {
        self.active + self.bubble
    }

    /// PE·cycles of useful work (MACs performed).
    pub fn busy_pe_cycles(&self) -> u64 {
        self.busy_pe_cycles
    }

    /// Weight-broadcast link ticks over the whole run.
    pub fn broadcast_ticks(&self) -> u64 {
        self.broadcast_ticks
    }

    /// Array rows the counters were collected for.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Array columns the counters were collected for.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// PEs in the array.
    pub fn pe_count(&self) -> usize {
        self.rows * self.cols
    }

    /// Per-fold counters, in execution order.
    pub fn folds(&self) -> &[FoldCounters] {
        &self.folds
    }

    /// Per-array-row useful-work counts (MACs), only populated when the
    /// counters came from a [`CounterSink`] with
    /// [`CounterSink::with_pe_detail`]; empty otherwise.
    pub fn row_busy(&self) -> &[u64] {
        &self.row_busy
    }

    /// Per-array-column useful-work counts (MACs); see [`Self::row_busy`].
    pub fn col_busy(&self) -> &[u64] {
        &self.col_busy
    }

    /// Fraction of PE·cycles doing MACs over the whole run, in `[0, 1]` —
    /// the shared [`fuseconv_trace::pe_utilization`] definition.
    pub fn utilization(&self) -> f64 {
        fuseconv_trace::pe_utilization(self.busy_pe_cycles, self.cycles(), self.pe_count())
    }

    /// PE·cycles spent in the fill phase (all idle by construction).
    pub fn fill_pe_cycles(&self) -> u64 {
        self.fill * self.pe_count() as u64
    }

    /// PE·cycles spent in the drain phase (all idle by construction).
    pub fn drain_pe_cycles(&self) -> u64 {
        self.drain * self.pe_count() as u64
    }

    /// PE·cycles inside the compute window, busy or not.
    pub fn compute_pe_cycles(&self) -> u64 {
        self.compute() * self.pe_count() as u64
    }

    /// Idle PE·cycles *inside the compute window* — the structural stall
    /// the paper's Fig. 1(d) depthwise pathology is made of (work confined
    /// to one array column leaves the other `W−1` columns stalled).
    pub fn stall_pe_cycles(&self) -> u64 {
        self.compute_pe_cycles().saturating_sub(self.busy_pe_cycles)
    }

    /// `stall_pe_cycles / compute_pe_cycles`, or 0 for an empty run.
    pub fn compute_stall_fraction(&self) -> f64 {
        let total = self.compute_pe_cycles();
        if total == 0 {
            0.0
        } else {
            self.stall_pe_cycles() as f64 / total as f64
        }
    }

    /// Verifies the accountability invariants:
    ///
    /// 1. per-fold categories sum to the global categories (every cycle
    ///    belongs to exactly one fold), and
    /// 2. per-fold work counters sum to the global work counters.
    ///
    /// The categories-sum-to-cycles invariant holds by construction
    /// (each cycle increments exactly one category); use
    /// [`Self::verify_total`] to check against an external cycle count.
    ///
    /// # Errors
    ///
    /// A human-readable description of the first violated invariant.
    pub fn check(&self) -> Result<(), String> {
        let sum = |f: fn(&FoldCounters) -> u64| self.folds.iter().map(f).sum::<u64>();
        let checks: [(&str, u64, u64); 6] = [
            ("fill", sum(|f| f.fill), self.fill),
            ("active", sum(|f| f.active), self.active),
            ("bubble", sum(|f| f.bubble), self.bubble),
            ("drain", sum(|f| f.drain), self.drain),
            (
                "busy_pe_cycles",
                sum(|f| f.busy_pe_cycles),
                self.busy_pe_cycles,
            ),
            (
                "broadcast_ticks",
                sum(|f| f.broadcast_ticks),
                self.broadcast_ticks,
            ),
        ];
        for (name, fold_sum, global) in checks {
            if fold_sum != global {
                return Err(format!(
                    "accountability violation: per-fold {name} sums to {fold_sum} \
                     but the global counter is {global}"
                ));
            }
        }
        Ok(())
    }

    /// Verifies full cycle accountability against an externally known
    /// total (e.g. [`SimResult::cycles`]): the four categories must sum to
    /// exactly `expected`.
    ///
    /// # Errors
    ///
    /// A description of the mismatch.
    ///
    /// [`SimResult::cycles`]: fuseconv_systolic::SimResult::cycles
    pub fn verify_total(&self, expected: u64) -> Result<(), String> {
        self.check()?;
        let got = self.cycles();
        if got != expected {
            return Err(format!(
                "cycle accountability violation: fill {} + active {} + bubble {} + \
                 drain {} = {got}, but the run took {expected} cycles",
                self.fill, self.active, self.bubble, self.drain
            ));
        }
        Ok(())
    }

    /// Merges counters from a run that executed after this one: categories
    /// add, folds concatenate. Per-PE row/column detail merges only when
    /// both sides carry it for the same array shape.
    ///
    /// # Panics
    ///
    /// Panics if the array shapes differ.
    #[must_use]
    pub fn then(mut self, next: PerfCounters) -> PerfCounters {
        assert_eq!(
            (self.rows, self.cols),
            (next.rows, next.cols),
            "cannot merge counters from different array shapes"
        );
        self.fill += next.fill;
        self.active += next.active;
        self.bubble += next.bubble;
        self.drain += next.drain;
        self.busy_pe_cycles += next.busy_pe_cycles;
        self.broadcast_ticks += next.broadcast_ticks;
        self.folds.extend(next.folds);
        if self.row_busy.len() == next.row_busy.len() {
            for (a, b) in self.row_busy.iter_mut().zip(&next.row_busy) {
                *a += b;
            }
            for (a, b) in self.col_busy.iter_mut().zip(&next.col_busy) {
                *a += b;
            }
        } else {
            self.row_busy.clear();
            self.col_busy.clear();
        }
        self
    }
}

/// A [`TraceSink`] that aggregates a [`PerfCounters`] from any trace event
/// stream — a cycle-exact simulation or an analytic replay.
///
/// Subscribes to broadcast ticks but not per-element operand events; per-PE
/// fires are opt-in via [`Self::with_pe_detail`] (they are the expensive
/// part of a trace).
#[derive(Debug, Clone)]
pub struct CounterSink {
    counters: PerfCounters,
    pe_detail: bool,
}

impl CounterSink {
    /// A sink for a `rows × cols` array.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn new(rows: usize, cols: usize) -> Self {
        CounterSink {
            counters: PerfCounters::new(rows, cols),
            pe_detail: false,
        }
    }

    /// Also attribute useful work to individual array rows and columns
    /// (requires the generator to emit `PeFire` events, which analytic
    /// replay does not).
    #[must_use]
    pub fn with_pe_detail(mut self) -> Self {
        self.pe_detail = true;
        self.counters.row_busy = vec![0; self.counters.rows];
        self.counters.col_busy = vec![0; self.counters.cols];
        self
    }

    /// The counters collected so far.
    pub fn counters(&self) -> &PerfCounters {
        &self.counters
    }

    /// Consumes the sink, returning the collected counters.
    pub fn into_counters(self) -> PerfCounters {
        self.counters
    }
}

impl TraceSink for CounterSink {
    fn on_event(&mut self, event: &TraceEvent) {
        let c = &mut self.counters;
        match *event {
            TraceEvent::FoldStart {
                tag,
                kind,
                rows_used,
                cols_used,
                ..
            } => c
                .folds
                .push(FoldCounters::start(tag, kind, rows_used, cols_used)),
            TraceEvent::Cycle { phase, busy, .. } => {
                let busy = u64::from(busy);
                let fold = c.folds.last_mut();
                match (phase, busy > 0) {
                    (Phase::Fill, _) => {
                        c.fill += 1;
                        if let Some(f) = fold {
                            f.fill += 1;
                        }
                    }
                    (Phase::Compute, true) => {
                        c.active += 1;
                        c.busy_pe_cycles += busy;
                        if let Some(f) = fold {
                            f.active += 1;
                            f.busy_pe_cycles += busy;
                        }
                    }
                    (Phase::Compute, false) => {
                        c.bubble += 1;
                        if let Some(f) = fold {
                            f.bubble += 1;
                        }
                    }
                    (Phase::Drain, _) => {
                        c.drain += 1;
                        if let Some(f) = fold {
                            f.drain += 1;
                        }
                    }
                }
            }
            TraceEvent::WeightBroadcast { .. } => {
                c.broadcast_ticks += 1;
                if let Some(f) = c.folds.last_mut() {
                    f.broadcast_ticks += 1;
                }
            }
            TraceEvent::PeFire { row, col, .. } if self.pe_detail => {
                let (row, col) = (row as usize, col as usize);
                if row < c.rows && col < c.cols {
                    c.row_busy[row] += 1;
                    c.col_busy[col] += 1;
                }
            }
            _ => {}
        }
    }

    fn wants_pe_fires(&self) -> bool {
        self.pe_detail
    }

    fn wants_operand_events(&self) -> bool {
        false
    }

    fn wants_broadcast_events(&self) -> bool {
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec(kind: FoldKind, fill: u64, compute: u64, drain: u64, macs: u64) -> FoldSpec {
        FoldSpec {
            tag: 7,
            kind,
            rows_used: 3,
            cols_used: 4,
            fill,
            compute,
            drain,
            macs,
        }
    }

    #[test]
    fn plan_counters_attribute_every_cycle() {
        let specs = [
            spec(FoldKind::OutputStationary, 0, 10, 3, 120),
            spec(FoldKind::WeightStationary, 3, 8, 0, 96),
        ];
        let c = PerfCounters::from_fold_plan(&specs, 8, 8);
        assert_eq!(c.cycles(), 13 + 11);
        assert_eq!(c.fill(), 3);
        assert_eq!(c.active(), 18);
        assert_eq!(c.bubble(), 0);
        assert_eq!(c.drain(), 3);
        assert_eq!(c.busy_pe_cycles(), 216);
        c.verify_total(24).unwrap();
        assert!(c.verify_total(25).is_err());
    }

    #[test]
    fn starved_fold_shows_bubbles() {
        // 4 MACs over 10 compute cycles: 4 active, 6 bubbles.
        let c =
            PerfCounters::from_fold_plan(&[spec(FoldKind::OutputStationary, 0, 10, 0, 4)], 4, 4);
        assert_eq!(c.active(), 4);
        assert_eq!(c.bubble(), 6);
        assert_eq!(c.cycles(), 10);
    }

    #[test]
    fn broadcast_ticks_follow_rows_and_compute() {
        let c = PerfCounters::from_fold_plan(&[spec(FoldKind::RowBroadcast, 5, 3, 3, 36)], 8, 8);
        // 3 rows_used × 3 compute cycles.
        assert_eq!(c.broadcast_ticks(), 9);
        let gemm =
            PerfCounters::from_fold_plan(&[spec(FoldKind::OutputStationary, 0, 3, 3, 36)], 8, 8);
        assert_eq!(gemm.broadcast_ticks(), 0);
    }

    #[test]
    fn sink_and_plan_agree_under_replay() {
        let specs = [
            spec(FoldKind::RowBroadcast, 5, 3, 3, 36),
            spec(FoldKind::OutputStationary, 0, 9, 3, 5),
        ];
        let mut sink = CounterSink::new(8, 8);
        let total = fuseconv_trace::replay(&specs, &mut sink);
        let replayed = sink.into_counters();
        replayed.verify_total(total).unwrap();
        let analytic = PerfCounters::from_fold_plan(&specs, 8, 8);
        assert_eq!(replayed, analytic);
    }

    #[test]
    fn pe_detail_attributes_rows_and_cols() {
        let mut sink = CounterSink::new(2, 2).with_pe_detail();
        assert!(sink.wants_pe_fires());
        sink.on_event(&TraceEvent::FoldStart {
            fold: 0,
            tag: 0,
            cycle: 0,
            kind: FoldKind::OutputStationary,
            rows_used: 2,
            cols_used: 1,
        });
        sink.on_event(&TraceEvent::PeFire {
            cycle: 0,
            row: 0,
            col: 0,
        });
        sink.on_event(&TraceEvent::PeFire {
            cycle: 0,
            row: 1,
            col: 0,
        });
        sink.on_event(&TraceEvent::Cycle {
            cycle: 0,
            phase: Phase::Compute,
            busy: 2,
        });
        let c = sink.into_counters();
        assert_eq!(c.row_busy(), &[1, 1]);
        assert_eq!(c.col_busy(), &[2, 0]);
        assert_eq!(c.stall_pe_cycles(), 2);
        assert!((c.compute_stall_fraction() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn then_merges_categories_and_folds() {
        let a =
            PerfCounters::from_fold_plan(&[spec(FoldKind::OutputStationary, 0, 10, 3, 120)], 8, 8);
        let b =
            PerfCounters::from_fold_plan(&[spec(FoldKind::WeightStationary, 3, 8, 0, 96)], 8, 8);
        let merged = a.then(b);
        assert_eq!(merged.cycles(), 24);
        assert_eq!(merged.folds().len(), 2);
        merged.check().unwrap();
    }

    #[test]
    #[should_panic(expected = "different array shapes")]
    fn then_rejects_shape_mismatch() {
        let a = PerfCounters::new(4, 4);
        let b = PerfCounters::new(8, 8);
        let _ = a.then(b);
    }
}

//! Cycle-accounted performance counters for the FuSeConv simulators.
//!
//! The paper's argument is a utilization argument: im2col'd depthwise
//! convolution strands a `W×W` systolic array at ~`1/W` column occupancy,
//! while FuSeConv's row-broadcast 1-D convolutions fill both dimensions
//! (§III-B, Fig. 1). This crate makes that argument *auditable*: every
//! simulated cycle is attributed to exactly one category —
//!
//! * **fill** — operand preload, no PE does useful work;
//! * **active** — compute cycles in which at least one PE fires a MAC;
//! * **bubble** — compute cycles in which no PE fires (structural stall);
//! * **drain** — results streaming out of the array;
//!
//! with the hard invariant `fill + active + bubble + drain == cycles`
//! enforced in debug builds against [`SimResult::cycles`]. Supplementary
//! work counters — busy PE·cycles (one MAC each), idle-during-compute
//! stall PE·cycles, and weight-broadcast link ticks — attribute activity
//! below cycle granularity, per fold and (opt-in) per array row/column.
//!
//! The same [`PerfCounters`] can be produced three independent ways and
//! cross-checked:
//!
//! 1. cycle-exact simulation through a [`CounterSink`]
//!    ([`gemm_counted`], [`ws_gemm_counted`], [`is_gemm_counted`],
//!    [`conv1d_counted`], [`conv1d_packed_counted`],
//!    [`simulate_op_counted`]);
//! 2. analytic fold replay ([`replay_counted`]);
//! 3. the latency model's fold plan in closed form ([`plan_counters`],
//!    [`PerfCounters::from_fold_plan`]).
//!
//! [`network_perf_report`] aggregates the analytic counters over a whole
//! network and combines them with the MEM-rule traffic model into a
//! roofline/efficiency report (text and JSON, `fuseconv perf` in the CLI).
//!
//! [`SimResult::cycles`]: fuseconv_systolic::SimResult::cycles

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod counters;
mod report;
mod sim;

pub use counters::{CounterSink, FoldCounters, PerfCounters};
pub use report::{network_perf_report, OpPerf, PerfReport};
pub use sim::{
    conv1d_counted, conv1d_packed_counted, gemm_counted, is_gemm_counted, plan_counters,
    replay_counted, simulate_op_counted, ws_gemm_counted,
};

//! Network-level performance reports: counter taxonomy totals, per-op
//! breakdowns and a roofline/efficiency summary, rendered as text and as
//! hand-rolled JSON (schema `fuseconv-perf-v1`, pinned by the
//! `perf_schema` golden test).

use crate::counters::PerfCounters;
use fuseconv_latency::memory::{network_traffic, roofline, Roofline, Traffic};
use fuseconv_latency::{estimate_network, Dataflow, LatencyError, LatencyModel};
use fuseconv_models::Network;
use fuseconv_telemetry::RunManifest;
use std::fmt::Write as _;

/// Analytic performance counters for one operator of a network.
#[derive(Debug, Clone)]
pub struct OpPerf {
    /// Block name the operator came from (`Network::ops` provenance).
    pub block: String,
    /// Human-readable operator description.
    pub op: String,
    /// Fully cycle-accounted counters for the whole operator.
    pub counters: PerfCounters,
}

/// A complete performance report for one network on one array: counter
/// totals with full cycle accountability, per-op attribution, operand
/// traffic and a bandwidth-aware roofline.
#[derive(Debug, Clone)]
pub struct PerfReport {
    /// Network name.
    pub network: String,
    /// Variant label (e.g. `baseline`, `fuse-half`).
    pub variant: String,
    /// Array rows.
    pub rows: usize,
    /// Array columns.
    pub cols: usize,
    /// Element width used for the roofline, bytes.
    pub bytes_per_elem: u64,
    /// Memory bandwidth used for the roofline, bytes per cycle.
    pub bytes_per_cycle: u64,
    /// Per-operator counters, in network order.
    pub ops: Vec<OpPerf>,
    /// Operand traffic under the fold schedules.
    pub traffic: Traffic,
    /// Compute-vs-transfer roofline.
    pub roofline: Roofline,
    /// Run provenance embedded in the JSON rendering
    /// (`fuseconv-manifest-v1`).
    pub manifest: RunManifest,
}

/// Builds the report for `network` on `model`'s array: per-op counters
/// from the analytic fold plans, traffic from the MEM-rule schedule
/// accounting, and the roofline at the given element width and bandwidth.
///
/// Counter totals equal [`LatencyModel::cycles`] sums under the model's
/// default serial fold accounting.
///
/// # Errors
///
/// Propagates [`LatencyError`] from planning or traffic estimation.
///
/// # Panics
///
/// Panics if `bytes_per_cycle` is zero.
pub fn network_perf_report(
    model: &LatencyModel,
    network: &Network,
    variant: &str,
    bytes_per_elem: u64,
    bytes_per_cycle: u64,
) -> Result<PerfReport, LatencyError> {
    let _span = fuseconv_telemetry::span("perf.report");
    let (rows, cols) = (model.array().rows(), model.array().cols());
    let mut ops = Vec::new();
    for named in network.ops() {
        let plan = model.fold_plan(&named.op)?;
        ops.push(OpPerf {
            block: named.block_name.clone(),
            op: named.op.to_string(),
            counters: PerfCounters::from_fold_plan(&plan, rows, cols),
        });
    }
    let traffic = network_traffic(model, network)?;
    let latency = estimate_network(model, network)?;
    let roofline = roofline(model, network, &latency, bytes_per_elem, bytes_per_cycle)?;
    let manifest = RunManifest::capture()
        .with_array(rows, cols, model.array().has_broadcast())
        .with_dataflow(match model.dataflow() {
            Dataflow::OutputStationary => "os",
            Dataflow::WeightStationary => "ws",
            Dataflow::InputStationary => "is",
        });
    Ok(PerfReport {
        network: network.name().to_string(),
        variant: variant.to_string(),
        rows,
        cols,
        bytes_per_elem,
        bytes_per_cycle,
        ops,
        traffic,
        roofline,
        manifest,
    })
}

impl PerfReport {
    fn sum(&self, f: impl Fn(&PerfCounters) -> u64) -> u64 {
        self.ops.iter().map(|o| f(&o.counters)).sum()
    }

    /// Total cycles across all ops (serial accounting).
    pub fn total_cycles(&self) -> u64 {
        self.sum(PerfCounters::cycles)
    }

    /// Total fill cycles.
    pub fn total_fill(&self) -> u64 {
        self.sum(PerfCounters::fill)
    }

    /// Total active-compute cycles.
    pub fn total_active(&self) -> u64 {
        self.sum(PerfCounters::active)
    }

    /// Total compute-bubble cycles.
    pub fn total_bubble(&self) -> u64 {
        self.sum(PerfCounters::bubble)
    }

    /// Total drain cycles.
    pub fn total_drain(&self) -> u64 {
        self.sum(PerfCounters::drain)
    }

    /// Total busy PE·cycles — one MAC each, so also the network's MACs as
    /// executed on the array.
    pub fn total_busy_pe_cycles(&self) -> u64 {
        self.sum(PerfCounters::busy_pe_cycles)
    }

    /// Total weight-broadcast link ticks.
    pub fn total_broadcast_ticks(&self) -> u64 {
        self.sum(PerfCounters::broadcast_ticks)
    }

    /// PEs in the array.
    pub fn pe_count(&self) -> usize {
        self.rows * self.cols
    }

    /// Whole-network PE utilization in `[0, 1]`.
    pub fn utilization(&self) -> f64 {
        fuseconv_trace::pe_utilization(
            self.total_busy_pe_cycles(),
            self.total_cycles(),
            self.pe_count(),
        )
    }

    /// Idle PE·cycles inside compute windows across the network.
    pub fn stall_pe_cycles(&self) -> u64 {
        self.ops.iter().map(|o| o.counters.stall_pe_cycles()).sum()
    }

    /// Network-wide `stall / compute` PE·cycle fraction.
    pub fn compute_stall_fraction(&self) -> f64 {
        let compute: u64 = self
            .ops
            .iter()
            .map(|o| o.counters.compute_pe_cycles())
            .sum();
        if compute == 0 {
            0.0
        } else {
            self.stall_pe_cycles() as f64 / compute as f64
        }
    }

    /// Achieved MACs per cycle (peak is [`Self::pe_count`]).
    pub fn achieved_macs_per_cycle(&self) -> f64 {
        let cycles = self.total_cycles();
        if cycles == 0 {
            0.0
        } else {
            self.total_busy_pe_cycles() as f64 / cycles as f64
        }
    }

    /// Arithmetic intensity: MACs per byte of operand traffic.
    pub fn arithmetic_intensity(&self) -> f64 {
        let bytes = self.traffic.total() * self.bytes_per_elem;
        if bytes == 0 {
            0.0
        } else {
            self.total_busy_pe_cycles() as f64 / bytes as f64
        }
    }

    /// Machine balance: peak MACs per cycle over bytes per cycle — the
    /// arithmetic intensity at which compute and memory time break even.
    pub fn machine_balance(&self) -> f64 {
        self.pe_count() as f64 / self.bytes_per_cycle as f64
    }

    /// Renders the report as human-readable text.
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        let cycles = self.total_cycles();
        let pct = |v: u64| {
            if cycles == 0 {
                0.0
            } else {
                100.0 * v as f64 / cycles as f64
            }
        };
        let _ = writeln!(
            out,
            "performance counters: {} ({}) on {}x{} array",
            self.network, self.variant, self.rows, self.cols
        );
        let _ = writeln!(out, "  cycles     {cycles:>16}");
        let _ = writeln!(
            out,
            "    fill     {:>16}  ({:5.1}%)",
            self.total_fill(),
            pct(self.total_fill())
        );
        let _ = writeln!(
            out,
            "    active   {:>16}  ({:5.1}%)",
            self.total_active(),
            pct(self.total_active())
        );
        let _ = writeln!(
            out,
            "    bubble   {:>16}  ({:5.1}%)",
            self.total_bubble(),
            pct(self.total_bubble())
        );
        let _ = writeln!(
            out,
            "    drain    {:>16}  ({:5.1}%)",
            self.total_drain(),
            pct(self.total_drain())
        );
        let _ = writeln!(
            out,
            "  busy       {:>16} PE-cycles  (utilization {:.2}%)",
            self.total_busy_pe_cycles(),
            100.0 * self.utilization()
        );
        let _ = writeln!(
            out,
            "  stall      {:>16} PE-cycles  ({:.1}% of compute window)",
            self.stall_pe_cycles(),
            100.0 * self.compute_stall_fraction()
        );
        let _ = writeln!(
            out,
            "  broadcast  {:>16} link ticks",
            self.total_broadcast_ticks()
        );
        let _ = writeln!(
            out,
            "roofline ({} B/elem, {} B/cycle):",
            self.bytes_per_elem, self.bytes_per_cycle
        );
        let _ = writeln!(
            out,
            "  MACs/cycle {:.2} achieved of {} peak",
            self.achieved_macs_per_cycle(),
            self.pe_count()
        );
        let _ = writeln!(out, "  traffic    {}", self.traffic);
        let _ = writeln!(
            out,
            "  intensity  {:.3} MACs/B vs balance {:.3} MACs/B",
            self.arithmetic_intensity(),
            self.machine_balance()
        );
        let _ = writeln!(
            out,
            "  compute {} vs transfer {} cycles -> {}",
            self.roofline.compute_cycles, self.roofline.transfer_cycles, self.roofline.bound
        );
        let _ = writeln!(out, "per-op breakdown:");
        let _ = writeln!(
            out,
            "  {:<28} {:>14} {:>6} {:>6} {:>6} {:>6} {:>8}",
            "op", "cycles", "fill%", "actv%", "bubl%", "drn%", "util%"
        );
        for op in &self.ops {
            let c = &op.counters;
            let total = c.cycles().max(1) as f64;
            let _ = writeln!(
                out,
                "  {:<28} {:>14} {:>6.1} {:>6.1} {:>6.1} {:>6.1} {:>8.2}",
                truncate(&format!("{}/{}", op.block, op.op), 28),
                c.cycles(),
                100.0 * c.fill() as f64 / total,
                100.0 * c.active() as f64 / total,
                100.0 * c.bubble() as f64 / total,
                100.0 * c.drain() as f64 / total,
                100.0 * c.utilization()
            );
        }
        out
    }

    /// Renders the report as JSON (schema `fuseconv-perf-v1`).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        let _ = writeln!(out, "  \"schema\": \"fuseconv-perf-v1\",");
        let _ = writeln!(out, "  \"network\": \"{}\",", json_escape(&self.network));
        let _ = writeln!(out, "  \"variant\": \"{}\",", json_escape(&self.variant));
        let _ = writeln!(
            out,
            "  \"array\": {{ \"rows\": {}, \"cols\": {}, \"pe_count\": {} }},",
            self.rows,
            self.cols,
            self.pe_count()
        );
        let _ = writeln!(out, "  \"totals\": {{");
        let _ = writeln!(out, "    \"cycles\": {},", self.total_cycles());
        let _ = writeln!(out, "    \"fill\": {},", self.total_fill());
        let _ = writeln!(out, "    \"active\": {},", self.total_active());
        let _ = writeln!(out, "    \"bubble\": {},", self.total_bubble());
        let _ = writeln!(out, "    \"drain\": {},", self.total_drain());
        let _ = writeln!(
            out,
            "    \"busy_pe_cycles\": {},",
            self.total_busy_pe_cycles()
        );
        let _ = writeln!(out, "    \"stall_pe_cycles\": {},", self.stall_pe_cycles());
        let _ = writeln!(
            out,
            "    \"broadcast_ticks\": {},",
            self.total_broadcast_ticks()
        );
        let _ = writeln!(out, "    \"utilization\": {:.6},", self.utilization());
        let _ = writeln!(
            out,
            "    \"compute_stall_fraction\": {:.6}",
            self.compute_stall_fraction()
        );
        let _ = writeln!(out, "  }},");
        let _ = writeln!(out, "  \"roofline\": {{");
        let _ = writeln!(out, "    \"bytes_per_elem\": {},", self.bytes_per_elem);
        let _ = writeln!(out, "    \"bytes_per_cycle\": {},", self.bytes_per_cycle);
        let _ = writeln!(
            out,
            "    \"compute_cycles\": {},",
            self.roofline.compute_cycles
        );
        let _ = writeln!(
            out,
            "    \"transfer_cycles\": {},",
            self.roofline.transfer_cycles
        );
        let _ = writeln!(
            out,
            "    \"bound_cycles\": {},",
            self.roofline.bound_cycles()
        );
        let _ = writeln!(
            out,
            "    \"bound\": \"{}\",",
            match self.roofline.bound {
                fuseconv_latency::memory::Bound::Compute => "compute",
                fuseconv_latency::memory::Bound::Memory => "memory",
            }
        );
        let _ = writeln!(out, "    \"peak_macs_per_cycle\": {},", self.pe_count());
        let _ = writeln!(
            out,
            "    \"achieved_macs_per_cycle\": {:.6},",
            self.achieved_macs_per_cycle()
        );
        let _ = writeln!(
            out,
            "    \"arithmetic_intensity\": {:.6},",
            self.arithmetic_intensity()
        );
        let _ = writeln!(
            out,
            "    \"machine_balance\": {:.6}",
            self.machine_balance()
        );
        let _ = writeln!(out, "  }},");
        let _ = writeln!(out, "  \"traffic\": {{");
        let _ = writeln!(out, "    \"input_elems\": {},", self.traffic.input_elems);
        let _ = writeln!(out, "    \"weight_elems\": {},", self.traffic.weight_elems);
        let _ = writeln!(out, "    \"output_elems\": {},", self.traffic.output_elems);
        let _ = writeln!(out, "    \"total_elems\": {}", self.traffic.total());
        let _ = writeln!(out, "  }},");
        let _ = writeln!(out, "  \"ops\": [");
        for (i, op) in self.ops.iter().enumerate() {
            let c = &op.counters;
            let _ = writeln!(out, "    {{");
            let _ = writeln!(out, "      \"block\": \"{}\",", json_escape(&op.block));
            let _ = writeln!(out, "      \"op\": \"{}\",", json_escape(&op.op));
            let _ = writeln!(out, "      \"cycles\": {},", c.cycles());
            let _ = writeln!(out, "      \"fill\": {},", c.fill());
            let _ = writeln!(out, "      \"active\": {},", c.active());
            let _ = writeln!(out, "      \"bubble\": {},", c.bubble());
            let _ = writeln!(out, "      \"drain\": {},", c.drain());
            let _ = writeln!(out, "      \"busy_pe_cycles\": {},", c.busy_pe_cycles());
            let _ = writeln!(out, "      \"broadcast_ticks\": {},", c.broadcast_ticks());
            let _ = writeln!(out, "      \"folds\": {},", c.folds().len());
            let _ = writeln!(out, "      \"utilization\": {:.6},", c.utilization());
            let _ = writeln!(
                out,
                "      \"compute_stall_fraction\": {:.6}",
                c.compute_stall_fraction()
            );
            let _ = write!(out, "    }}");
            out.push_str(if i + 1 < self.ops.len() { ",\n" } else { "\n" });
        }
        let _ = writeln!(out, "  ],");
        let _ = writeln!(
            out,
            "  \"manifest\": {}",
            self.manifest.to_json_pretty("  ")
        );
        out.push_str("}\n");
        out
    }
}

fn truncate(s: &str, max: usize) -> String {
    if s.chars().count() <= max {
        s.to_string()
    } else {
        let cut: String = s.chars().take(max.saturating_sub(1)).collect();
        format!("{cut}…")
    }
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use fuseconv_models::zoo;
    use fuseconv_nn::FuSeVariant;
    use fuseconv_systolic::ArrayConfig;

    fn model() -> LatencyModel {
        LatencyModel::new(ArrayConfig::square(64).unwrap().with_broadcast(true))
    }

    #[test]
    fn report_totals_match_latency_model() {
        let model = model();
        let net = zoo::mobilenet_v1();
        let report = network_perf_report(&model, &net, "baseline", 2, 64).unwrap();
        let expected = estimate_network(&model, &net).unwrap().total_cycles;
        assert_eq!(report.total_cycles(), expected);
        assert_eq!(
            report.total_cycles(),
            report.total_fill()
                + report.total_active()
                + report.total_bubble()
                + report.total_drain()
        );
        assert_eq!(report.ops.len(), net.ops().len());
        assert!(report.utilization() > 0.0 && report.utilization() <= 1.0);
    }

    #[test]
    fn fuse_variant_cuts_stall_fraction() {
        let model = model();
        let base = zoo::mobilenet_v1();
        let fused = base.transform_all(FuSeVariant::Half);
        let base_report = network_perf_report(&model, &base, "baseline", 2, 64).unwrap();
        let fuse_report = network_perf_report(&model, &fused, "fuse-half", 2, 64).unwrap();
        assert!(fuse_report.total_cycles() < base_report.total_cycles());
        assert!(fuse_report.utilization() > base_report.utilization());
        assert!(fuse_report.total_broadcast_ticks() > 0);
        assert_eq!(base_report.total_broadcast_ticks(), 0);
    }

    #[test]
    fn text_and_json_render() {
        let model = model();
        let net = zoo::mnasnet_b1();
        let report = network_perf_report(&model, &net, "baseline", 2, 64).unwrap();
        let text = report.to_text();
        assert!(text.contains("performance counters"));
        assert!(text.contains("roofline"));
        let json = report.to_json();
        assert!(json.starts_with("{\n"));
        assert!(json.contains("\"schema\": \"fuseconv-perf-v1\""));
        assert!(json.contains("\"compute_stall_fraction\""));
        // Sanity: balanced braces/brackets.
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }

    #[test]
    fn json_escape_handles_specials() {
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(json_escape("\u{1}"), "\\u0001");
    }
}

//! Counted simulation wrappers: every entry point returns its result
//! *plus* fully cycle-accounted [`PerfCounters`], with the accountability
//! invariant (`fill + active + bubble + drain == SimResult::cycles()`)
//! enforced by `debug_assert` in debug builds.

use crate::counters::{CounterSink, PerfCounters};
use fuseconv_core::trace::{simulate_op_traced, TraceError, TracedSim};
use fuseconv_latency::{LatencyError, LatencyModel};
use fuseconv_nn::ops::Op;
use fuseconv_systolic::conv1d::ChannelLines;
use fuseconv_systolic::{conv1d, gemm, is_gemm, ws_gemm, ArrayConfig, ConfigError, SimResult};
use fuseconv_tensor::Tensor;
use fuseconv_trace::FoldSpec;

/// Debug-build enforcement of the hard invariant: every simulated cycle is
/// attributed to exactly one category, and the PE·cycle work counters
/// match the simulator's own accounting.
fn audited(sink: CounterSink, sim: &SimResult) -> PerfCounters {
    let counters = sink.into_counters();
    debug_assert!(
        counters.verify_total(sim.cycles()).is_ok(),
        "{}",
        counters
            .verify_total(sim.cycles())
            .err()
            .unwrap_or_default()
    );
    debug_assert_eq!(
        counters.busy_pe_cycles(),
        sim.busy_pe_cycles(),
        "counter busy_pe_cycles diverged from SimResult"
    );
    counters
}

/// Output-stationary GEMM with performance counters.
///
/// # Errors
///
/// Same as [`gemm::simulate`].
pub fn gemm_counted(
    cfg: &ArrayConfig,
    a: &Tensor,
    b: &Tensor,
) -> Result<(SimResult, PerfCounters), ConfigError> {
    let mut sink = CounterSink::new(cfg.rows(), cfg.cols());
    let sim = gemm::simulate_traced(cfg, a, b, &mut sink)?;
    let counters = audited(sink, &sim);
    Ok((sim, counters))
}

/// Weight-stationary GEMM with performance counters.
///
/// # Errors
///
/// Same as [`ws_gemm::simulate`].
pub fn ws_gemm_counted(
    cfg: &ArrayConfig,
    a: &Tensor,
    b: &Tensor,
) -> Result<(SimResult, PerfCounters), ConfigError> {
    let mut sink = CounterSink::new(cfg.rows(), cfg.cols());
    let sim = ws_gemm::simulate_traced(cfg, a, b, &mut sink)?;
    let counters = audited(sink, &sim);
    Ok((sim, counters))
}

/// Input-stationary GEMM with performance counters.
///
/// # Errors
///
/// Same as [`is_gemm::simulate`].
pub fn is_gemm_counted(
    cfg: &ArrayConfig,
    a: &Tensor,
    b: &Tensor,
) -> Result<(SimResult, PerfCounters), ConfigError> {
    let mut sink = CounterSink::new(cfg.rows(), cfg.cols());
    let sim = is_gemm::simulate_traced(cfg, a, b, &mut sink)?;
    let counters = audited(sink, &sim);
    Ok((sim, counters))
}

/// Row-broadcast 1-D convolution batch with performance counters.
///
/// # Errors
///
/// Same as [`conv1d::simulate`].
pub fn conv1d_counted(
    cfg: &ArrayConfig,
    inputs: &[Vec<f32>],
    kernels: &[Vec<f32>],
) -> Result<(SimResult, PerfCounters), ConfigError> {
    let mut sink = CounterSink::new(cfg.rows(), cfg.cols());
    let sim = conv1d::simulate_traced(cfg, inputs, kernels, &mut sink)?;
    let counters = audited(sink, &sim);
    Ok((sim, counters))
}

/// Line-packed row-broadcast 1-D convolution with performance counters.
///
/// # Errors
///
/// Same as [`conv1d::simulate_packed`].
pub fn conv1d_packed_counted(
    cfg: &ArrayConfig,
    work: &[ChannelLines],
) -> Result<(SimResult, PerfCounters), ConfigError> {
    let mut sink = CounterSink::new(cfg.rows(), cfg.cols());
    let sim = conv1d::simulate_packed_traced(cfg, work, &mut sink)?;
    let counters = audited(sink, &sim);
    Ok((sim, counters))
}

/// Cycle-exact simulation of one operator (lowered exactly as the latency
/// model lowers it) with performance counters. The counters cover the
/// *simulated* workload: for depthwise ops that is one representative
/// channel, repeated [`TracedSim::repeats`] times by the full operator.
///
/// # Errors
///
/// Same as [`simulate_op_traced`].
pub fn simulate_op_counted(
    model: &LatencyModel,
    op: &Op,
) -> Result<(TracedSim, PerfCounters), TraceError> {
    let _span = fuseconv_telemetry::span("perf.sim_counted");
    let mut sink = CounterSink::new(model.array().rows(), model.array().cols());
    let traced = simulate_op_traced(model, op, &mut sink)?;
    let counters = audited(sink, &traced.sim);
    Ok((traced, counters))
}

/// Performance counters derived from an analytic fold plan by event
/// replay ([`fuseconv_trace::replay`] through a [`CounterSink`]).
///
/// This is the second independent derivation; it agrees with
/// [`plan_counters`] (the pure closed form) on every fold, and with the
/// counted simulators whenever the specs came from
/// [`LatencyModel::fold_plan`] for the same op.
pub fn replay_counted(specs: &[FoldSpec], rows: usize, cols: usize) -> PerfCounters {
    let _span = fuseconv_telemetry::span("perf.replay");
    let mut sink = CounterSink::new(rows, cols);
    let total = fuseconv_trace::replay(specs, &mut sink);
    let counters = sink.into_counters();
    debug_assert!(
        counters.verify_total(total).is_ok(),
        "{}",
        counters.verify_total(total).err().unwrap_or_default()
    );
    counters
}

/// Performance counters derived analytically from the latency model's
/// fold plan for one operator — no simulation, no event stream.
///
/// # Errors
///
/// Same as [`LatencyModel::fold_plan`].
pub fn plan_counters(model: &LatencyModel, op: &Op) -> Result<PerfCounters, LatencyError> {
    let plan = model.fold_plan(op)?;
    Ok(PerfCounters::from_fold_plan(
        &plan,
        model.array().rows(),
        model.array().cols(),
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use fuseconv_nn::ops::Axis1d;
    use fuseconv_tensor::rng::Rng;

    fn cfg(side: usize) -> ArrayConfig {
        ArrayConfig::square(side).unwrap().with_broadcast(true)
    }

    fn model(side: usize) -> LatencyModel {
        LatencyModel::new(cfg(side))
    }

    fn tensor(rng: &mut Rng, dims: &[usize]) -> Tensor {
        Tensor::from_fn(dims, |_| rng.uniform(-1.0, 1.0)).unwrap()
    }

    #[test]
    fn all_three_gemm_dataflows_are_accountable() {
        let mut rng = Rng::seed_from_u64(1);
        let a = tensor(&mut rng, &[10, 7]);
        let b = tensor(&mut rng, &[7, 12]);
        let cfg = cfg(8);
        for (name, result) in [
            ("os", gemm_counted(&cfg, &a, &b)),
            ("ws", ws_gemm_counted(&cfg, &a, &b)),
            ("is", is_gemm_counted(&cfg, &a, &b)),
        ] {
            let (sim, counters) = result.unwrap();
            counters
                .verify_total(sim.cycles())
                .unwrap_or_else(|e| panic!("{name}: {e}"));
            assert_eq!(counters.busy_pe_cycles(), sim.busy_pe_cycles(), "{name}");
            assert_eq!(counters.folds().len() as u64, sim.folds(), "{name}");
            assert_eq!(counters.broadcast_ticks(), 0, "{name}");
        }
    }

    #[test]
    fn conv1d_counts_broadcast_ticks() {
        let inputs: Vec<Vec<f32>> = (0..5).map(|i| vec![i as f32; 9]).collect();
        let kernels: Vec<Vec<f32>> = (0..5).map(|_| vec![1.0, 2.0, 3.0]).collect();
        let (sim, counters) = conv1d_counted(&cfg(4), &inputs, &kernels).unwrap();
        counters.verify_total(sim.cycles()).unwrap();
        // Every fold broadcasts one tap per used row per compute cycle.
        let expected: u64 = counters
            .folds()
            .iter()
            .map(|f| u64::from(f.rows_used) * f.compute())
            .sum();
        assert_eq!(counters.broadcast_ticks(), expected);
        assert!(counters.broadcast_ticks() > 0);
    }

    #[test]
    fn simulator_replay_and_plan_agree_per_op() {
        let model = model(8);
        for op in [
            Op::conv2d(6, 6, 3, 8, 3, 1, 1),
            Op::pointwise(5, 5, 6, 10),
            Op::fuse1d(8, 8, 3, 3, 1, 1, Axis1d::Row),
            Op::fc(20, 12),
        ] {
            let (_, simulated) = simulate_op_counted(&model, &op).unwrap();
            let plan = model.fold_plan(&op).unwrap();
            let replayed = replay_counted(&plan, 8, 8);
            let analytic = plan_counters(&model, &op).unwrap();
            assert_eq!(replayed, analytic, "{op}");
            assert_eq!(simulated.cycles(), analytic.cycles(), "{op}");
            assert_eq!(simulated.fill(), analytic.fill(), "{op}");
            assert_eq!(simulated.active(), analytic.active(), "{op}");
            assert_eq!(simulated.bubble(), analytic.bubble(), "{op}");
            assert_eq!(simulated.drain(), analytic.drain(), "{op}");
            assert_eq!(
                simulated.busy_pe_cycles(),
                analytic.busy_pe_cycles(),
                "{op}"
            );
            assert_eq!(
                simulated.broadcast_ticks(),
                analytic.broadcast_ticks(),
                "{op}"
            );
        }
    }

    #[test]
    fn depthwise_counters_cover_one_repeated_channel() {
        let model = model(8);
        let op = Op::depthwise(6, 6, 4, 3, 1, 1);
        let (traced, counters) = simulate_op_counted(&model, &op).unwrap();
        assert_eq!(traced.repeats, 4);
        counters.verify_total(traced.sim.cycles()).unwrap();
        // The plan covers all channels: c identical copies of the
        // simulated single-channel counters.
        let analytic = plan_counters(&model, &op).unwrap();
        assert_eq!(analytic.cycles(), counters.cycles() * traced.repeats);
    }
}

//! The algorithms analyzed by the paper, written as recurrence systems.
//!
//! Each constructor transcribes the recurrence relations in Figs. 1, 2 and 7
//! of the paper; the accompanying tests assert exactly the paper's
//! classifications.

use crate::{IndexExpr, Recurrence, RecurrenceSystem, Term};

/// Matrix multiplication as a 3-index recurrence system (Fig. 1(b)):
///
/// ```text
/// A[i, j, k] = A[i, j-1, k]          (propagate A along j)
/// B[i, j, k] = B[i-1, j, k]          (propagate B along i)
/// C[i, j, k] = C[i, j, k-1] + A[i, j, k] · B[i, j, k]
/// ```
///
/// All index offsets are constant, so matmul **is** an RIA and hence a
/// candidate systolic algorithm.
pub fn matmul() -> RecurrenceSystem {
    let i = || IndexExpr::axis(0);
    let j = || IndexExpr::axis(1);
    let k = || IndexExpr::axis(2);
    RecurrenceSystem::new(
        "matrix multiplication",
        vec![
            Recurrence::new(
                "A",
                3,
                vec![Term::new(
                    "A",
                    vec![i(), j() - (IndexExpr::constant(1)), k()],
                )],
            ),
            Recurrence::new(
                "B",
                3,
                vec![Term::new(
                    "B",
                    vec![i() - (IndexExpr::constant(1)), j(), k()],
                )],
            ),
            Recurrence::new(
                "C",
                3,
                vec![
                    Term::new("C", vec![i(), j(), k() - (IndexExpr::constant(1))]),
                    Term::new("A", vec![i(), j(), k()]),
                    Term::new("B", vec![i(), j(), k()]),
                ],
            ),
        ],
    )
}

/// Direct 2-D convolution with a `K×K` kernel as a 3-index recurrence
/// (Fig. 2(b)): the `K²` products for output `(i, j)` are serialized along
/// `k`, so the input read becomes
///
/// ```text
/// C[i, j, k] = C[i, j, k-1] + A[i + ⌊k/K⌋, j + (k mod K), 0] · B[⌊k/K⌋, k mod K, 0]
/// ```
///
/// The offsets to `A` and `B` depend on `k` through `⌊k/K⌋` and `k mod K`,
/// violating the constant-index-offset condition: direct 2-D convolution is
/// **not** an RIA (§III-A), and therefore depthwise convolution is not a
/// systolic algorithm.
pub fn conv2d_direct(kernel: usize) -> RecurrenceSystem {
    let k_i64 = kernel as i64;
    let i = || IndexExpr::axis(0);
    let j = || IndexExpr::axis(1);
    let k = || IndexExpr::axis(2);
    RecurrenceSystem::new(
        "direct 2-D convolution",
        vec![Recurrence::new(
            "C",
            3,
            vec![
                Term::new("C", vec![i(), j(), k() - (IndexExpr::constant(1))]),
                Term::new(
                    "A",
                    vec![
                        i() + (k().floor_div(k_i64)),
                        j() + (k().modulo(k_i64)),
                        IndexExpr::constant(0),
                    ],
                ),
                Term::new(
                    "B",
                    vec![
                        k().floor_div(k_i64),
                        k().modulo(k_i64),
                        IndexExpr::constant(0),
                    ],
                ),
            ],
        )],
    )
}

/// 2-D convolution after the `im2col` transformation (Fig. 2(c)): the patch
/// matrix `A'` stores each receptive field in a row, restoring constant
/// offsets. The computation is a GEMM
///
/// ```text
/// C[i, j, k] = C[i, j, k-1] + A'[i, k] · B'[k, j]
/// ```
///
/// with — crucially for §III-B — a single output column `j ∈ {0}` in the
/// depthwise case, so on a 2-D systolic array only one column of PEs is used.
pub fn conv2d_im2col() -> RecurrenceSystem {
    let mut sys = matmul();
    // Structurally identical to matmul once A is replaced by the patch
    // matrix; only the name differs.
    sys = RecurrenceSystem::new("2-D convolution via im2col", sys.recurrences().to_vec());
    sys
}

/// 1-D convolution as a 2-index recurrence (Fig. 7(a)):
///
/// ```text
/// W[i, j] = W[i-1, j]                (broadcast/propagate the weight)
/// C[i, j] = C[i, j-1] + W[i, j] · A[i, j]
/// ```
///
/// where `j` enumerates the `K` taps and `i` the output positions, reading
/// the input `A[i, j] = a[i + j]` which is materialized as a skewed plane.
/// All offsets are constant: 1-D convolution **is** an RIA, the foundation of
/// FuSeConv (§IV-B).
pub fn conv1d() -> RecurrenceSystem {
    let i = || IndexExpr::axis(0);
    let j = || IndexExpr::axis(1);
    RecurrenceSystem::new(
        "1-D convolution",
        vec![
            Recurrence::new(
                "W",
                2,
                vec![Term::new("W", vec![i() - (IndexExpr::constant(1)), j()])],
            ),
            Recurrence::new(
                "C",
                2,
                vec![
                    Term::new("C", vec![i(), j() - (IndexExpr::constant(1))]),
                    Term::new("W", vec![i(), j()]),
                    Term::new("A", vec![i(), j()]),
                ],
            ),
        ],
    )
}

/// Pointwise (`1×1`) convolution: a dot product along channels at each output
/// pixel, i.e. a GEMM over (pixel, out-channel, in-channel) — the same
/// structure as [`matmul`], hence systolic (§IV-B).
pub fn pointwise_conv() -> RecurrenceSystem {
    RecurrenceSystem::new(
        "pointwise (1x1) convolution",
        matmul().recurrences().to_vec(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::RiaViolation;

    #[test]
    fn matmul_is_ria() {
        assert!(matmul().is_regular_iterative());
    }

    #[test]
    fn matmul_dependences_are_unit_vectors() {
        let deps = matmul().dependence_vectors().unwrap();
        assert!(deps.contains(&vec![0, 1, 0]));
        assert!(deps.contains(&vec![1, 0, 0]));
        assert!(deps.contains(&vec![0, 0, 1]));
        assert_eq!(deps.len(), 3);
    }

    #[test]
    fn conv2d_direct_is_not_ria_for_any_kernel() {
        for k in 2..=7 {
            let sys = conv2d_direct(k);
            let errs = sys.check().unwrap_err();
            // Both the A and B reads have k-dependent offsets.
            let non_const = errs
                .iter()
                .filter(|v| matches!(v, RiaViolation::NonConstantOffset { .. }))
                .count();
            assert_eq!(non_const, 2, "kernel size {k}");
        }
    }

    #[test]
    fn conv2d_direct_1x1_degenerates_but_still_uses_div_mod() {
        // Even K=1 is written with floor/mod and is rejected by the static
        // check: regularity is a property of the *specification*, matching
        // the paper's argument that no refactoring of the direct form works.
        assert!(!conv2d_direct(1).is_regular_iterative());
    }

    #[test]
    fn conv2d_im2col_is_ria() {
        assert!(conv2d_im2col().is_regular_iterative());
    }

    #[test]
    fn conv1d_is_ria() {
        assert!(conv1d().is_regular_iterative());
        let deps = conv1d().dependence_vectors().unwrap();
        assert!(deps.contains(&vec![1, 0]));
        assert!(deps.contains(&vec![0, 1]));
    }

    #[test]
    fn pointwise_is_ria() {
        assert!(pointwise_conv().is_regular_iterative());
    }

    #[test]
    fn display_round_trips_names() {
        assert!(matmul().to_string().contains("matrix multiplication"));
        assert!(conv1d().to_string().contains("1-D convolution"));
    }
}

//! Symbolic index expressions for recurrence relations.

use std::fmt;

/// A symbolic expression over the iteration-vector components of a
/// recurrence relation.
///
/// Index expressions describe how an RHS variable's index coordinate is
/// computed from the LHS iteration vector. The RIA condition requires every
/// coordinate to reduce to `Axis(a) + c` (or a bare constant); anything
/// involving `⌊·/·⌋`, `mod`, or a different scale factor breaks the constant
/// index-offset property.
///
/// # Examples
///
/// ```
/// use fuseconv_ria::IndexExpr;
///
/// // i - 1 : a constant-offset access along axis 0.
/// let e = IndexExpr::axis(0) - (IndexExpr::constant(1));
/// assert_eq!(e.as_axis_offset(), Some((0, -1)));
///
/// // floor(k / 3) : not a constant offset.
/// let e = IndexExpr::axis(2).floor_div(3);
/// assert_eq!(e.as_axis_offset(), None);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum IndexExpr {
    /// A component of the LHS iteration vector, by axis position.
    Axis(usize),
    /// An integer constant.
    Const(i64),
    /// Sum of two expressions.
    Add(Box<IndexExpr>, Box<IndexExpr>),
    /// Difference of two expressions.
    Sub(Box<IndexExpr>, Box<IndexExpr>),
    /// Product with an integer constant.
    MulConst(Box<IndexExpr>, i64),
    /// Floor division by a positive integer constant.
    FloorDiv(Box<IndexExpr>, i64),
    /// Remainder modulo a positive integer constant.
    Mod(Box<IndexExpr>, i64),
}

impl IndexExpr {
    /// The iteration-vector component `axis`.
    pub fn axis(axis: usize) -> Self {
        IndexExpr::Axis(axis)
    }

    /// An integer constant.
    pub fn constant(value: i64) -> Self {
        IndexExpr::Const(value)
    }

    /// `self * c`.
    #[must_use]
    pub fn mul_const(self, c: i64) -> Self {
        IndexExpr::MulConst(Box::new(self), c)
    }

    /// `⌊self / d⌋` for `d > 0`.
    ///
    /// # Panics
    ///
    /// Panics if `d <= 0`.
    #[must_use]
    pub fn floor_div(self, d: i64) -> Self {
        assert!(d > 0, "floor_div divisor must be positive");
        IndexExpr::FloorDiv(Box::new(self), d)
    }

    /// `self mod m` for `m > 0`.
    ///
    /// # Panics
    ///
    /// Panics if `m <= 0`.
    #[must_use]
    pub fn modulo(self, m: i64) -> Self {
        assert!(m > 0, "modulo base must be positive");
        IndexExpr::Mod(Box::new(self), m)
    }

    /// Evaluates the expression at a concrete iteration point.
    ///
    /// # Panics
    ///
    /// Panics if the expression references an axis beyond `point.len()`.
    pub fn eval(&self, point: &[i64]) -> i64 {
        match self {
            IndexExpr::Axis(a) => point[*a],
            IndexExpr::Const(c) => *c,
            IndexExpr::Add(l, r) => l.eval(point) + r.eval(point),
            IndexExpr::Sub(l, r) => l.eval(point) - r.eval(point),
            IndexExpr::MulConst(e, c) => e.eval(point) * c,
            IndexExpr::FloorDiv(e, d) => e.eval(point).div_euclid(*d),
            IndexExpr::Mod(e, m) => e.eval(point).rem_euclid(*m),
        }
    }

    /// If the expression is exactly `Axis(a) + c` (a unit-coefficient affine
    /// access), returns `(a, c)`. Returns `None` for constants, scaled axes,
    /// multi-axis sums, floor-divisions and remainders.
    ///
    /// This is the predicate behind the RIA constant-index-offset check: an
    /// RHS coordinate that reads from axis `a` with offset `c` contributes
    /// `-c` to the dependence vector along `a`.
    pub fn as_axis_offset(&self) -> Option<(usize, i64)> {
        let (coeffs, konst, regular) = self.linearize();
        if !regular {
            return None;
        }
        let mut found = None;
        for (axis, &coeff) in coeffs.iter().enumerate() {
            match coeff {
                0 => {}
                1 if found.is_none() => found = Some(axis),
                _ => return None,
            }
        }
        found.map(|axis| (axis, konst))
    }

    /// If the expression is a bare constant (no axis involvement), returns
    /// its value.
    pub fn as_constant(&self) -> Option<i64> {
        let (coeffs, konst, regular) = self.linearize();
        if regular && coeffs.iter().all(|&c| c == 0) {
            Some(konst)
        } else {
            None
        }
    }

    /// Whether the expression is *regular* in the RIA sense: an affine
    /// combination of axes and constants, with no floor-division or modulo.
    pub fn is_affine(&self) -> bool {
        self.linearize().2
    }

    /// Highest axis referenced, if any.
    pub fn max_axis(&self) -> Option<usize> {
        match self {
            IndexExpr::Axis(a) => Some(*a),
            IndexExpr::Const(_) => None,
            IndexExpr::Add(l, r) | IndexExpr::Sub(l, r) => match (l.max_axis(), r.max_axis()) {
                (Some(a), Some(b)) => Some(a.max(b)),
                (a, b) => a.or(b),
            },
            IndexExpr::MulConst(e, _) | IndexExpr::FloorDiv(e, _) | IndexExpr::Mod(e, _) => {
                e.max_axis()
            }
        }
    }

    /// Collects affine coefficients: returns (per-axis coefficients, constant,
    /// is_affine). Coefficient vector is sized to `max_axis + 1`.
    fn linearize(&self) -> (Vec<i64>, i64, bool) {
        let width = self.max_axis().map_or(0, |a| a + 1);
        let mut coeffs = vec![0i64; width];
        let mut konst = 0i64;
        let regular = self.accumulate(1, &mut coeffs, &mut konst);
        (coeffs, konst, regular)
    }

    fn accumulate(&self, scale: i64, coeffs: &mut [i64], konst: &mut i64) -> bool {
        match self {
            IndexExpr::Axis(a) => {
                coeffs[*a] += scale;
                true
            }
            IndexExpr::Const(c) => {
                *konst += scale * c;
                true
            }
            IndexExpr::Add(l, r) => {
                l.accumulate(scale, coeffs, konst) && r.accumulate(scale, coeffs, konst)
            }
            IndexExpr::Sub(l, r) => {
                l.accumulate(scale, coeffs, konst) && r.accumulate(-scale, coeffs, konst)
            }
            IndexExpr::MulConst(e, c) => e.accumulate(scale * c, coeffs, konst),
            // Floor division and modulo are exactly the operations that break
            // regularity (§III-A: the offsets ⌊k/K⌋ and k mod K of direct 2-D
            // convolution).
            IndexExpr::FloorDiv(_, _) | IndexExpr::Mod(_, _) => false,
        }
    }
}

impl std::ops::Add for IndexExpr {
    type Output = IndexExpr;

    fn add(self, rhs: IndexExpr) -> IndexExpr {
        IndexExpr::Add(Box::new(self), Box::new(rhs))
    }
}

impl std::ops::Sub for IndexExpr {
    type Output = IndexExpr;

    fn sub(self, rhs: IndexExpr) -> IndexExpr {
        IndexExpr::Sub(Box::new(self), Box::new(rhs))
    }
}

impl fmt::Display for IndexExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        const AXIS_NAMES: [&str; 6] = ["i", "j", "k", "l", "m", "n"];
        match self {
            IndexExpr::Axis(a) => match AXIS_NAMES.get(*a) {
                Some(name) => write!(f, "{name}"),
                None => write!(f, "x{a}"),
            },
            IndexExpr::Const(c) => write!(f, "{c}"),
            IndexExpr::Add(l, r) => write!(f, "({l} + {r})"),
            IndexExpr::Sub(l, r) => write!(f, "({l} - {r})"),
            IndexExpr::MulConst(e, c) => write!(f, "{c}*{e}"),
            IndexExpr::FloorDiv(e, d) => write!(f, "floor({e}/{d})"),
            IndexExpr::Mod(e, m) => write!(f, "({e} mod {m})"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eval_affine() {
        // 2*i + j - 3 at (i, j) = (4, 5) → 10.
        let e = IndexExpr::axis(0).mul_const(2) + (IndexExpr::axis(1)) - (IndexExpr::constant(3));
        assert_eq!(e.eval(&[4, 5]), 10);
        assert!(e.is_affine());
    }

    #[test]
    fn eval_floor_div_and_mod_use_euclid() {
        let fd = IndexExpr::axis(0).floor_div(3);
        assert_eq!(fd.eval(&[7]), 2);
        assert_eq!(fd.eval(&[-1]), -1); // floor, not truncation
        let md = IndexExpr::axis(0).modulo(3);
        assert_eq!(md.eval(&[7]), 1);
        assert_eq!(md.eval(&[-1]), 2); // non-negative remainder
    }

    #[test]
    fn axis_offset_recognized() {
        let e = IndexExpr::axis(2) - (IndexExpr::constant(1));
        assert_eq!(e.as_axis_offset(), Some((2, -1)));
        let e = IndexExpr::axis(0);
        assert_eq!(e.as_axis_offset(), Some((0, 0)));
        let e = IndexExpr::constant(4) + (IndexExpr::axis(1));
        assert_eq!(e.as_axis_offset(), Some((1, 4)));
    }

    #[test]
    fn non_unit_accesses_rejected() {
        assert_eq!(IndexExpr::axis(0).mul_const(2).as_axis_offset(), None);
        assert_eq!(
            (IndexExpr::axis(0) + IndexExpr::axis(1)).as_axis_offset(),
            None
        );
        assert_eq!(IndexExpr::axis(0).floor_div(3).as_axis_offset(), None);
        assert_eq!(IndexExpr::axis(0).modulo(3).as_axis_offset(), None);
        assert_eq!(IndexExpr::constant(7).as_axis_offset(), None);
    }

    #[test]
    fn cancellation_is_still_affine() {
        // (i + k) - k reduces to i: affine with unit coefficient.
        let e = IndexExpr::axis(0) + (IndexExpr::axis(2)) - (IndexExpr::axis(2));
        assert_eq!(e.as_axis_offset(), Some((0, 0)));
    }

    #[test]
    fn constants_recognized() {
        assert_eq!(IndexExpr::constant(5).as_constant(), Some(5));
        let e = IndexExpr::axis(0) - (IndexExpr::axis(0));
        assert_eq!(e.as_constant(), Some(0));
        assert_eq!(IndexExpr::axis(0).as_constant(), None);
        assert_eq!(IndexExpr::axis(0).modulo(2).as_constant(), None);
    }

    #[test]
    fn display_uses_conventional_names() {
        let e = IndexExpr::axis(2).floor_div(3);
        assert_eq!(e.to_string(), "floor(k/3)");
        let e = IndexExpr::axis(0) - (IndexExpr::constant(1));
        assert_eq!(e.to_string(), "(i - 1)");
    }

    #[test]
    #[should_panic(expected = "divisor must be positive")]
    fn floor_div_rejects_nonpositive() {
        let _ = IndexExpr::axis(0).floor_div(0);
    }
}

//! The Regular Iterative Algorithm (RIA) formalism of Rao et al., as used in
//! §II–III of the FuSeConv paper to decide which algorithms are *systolic*.
//!
//! An algorithm is written as a set of recurrence relations over variables
//! indexed by an iteration vector. The relations form an RIA when:
//!
//! 1. every variable is identified by a name and an index vector,
//! 2. every variable is assigned at most once (single assignment), and
//! 3. in each relation the difference between the LHS index and each RHS
//!    index — the *index offset* — is a constant vector.
//!
//! RIAs are a superset of systolic algorithms; an algorithm that is *not* an
//! RIA cannot be synthesized onto a systolic array. The paper's central
//! formal claims, all reproduced as constructors and tests here:
//!
//! - matrix multiplication **is** an RIA ([`algorithms::matmul`]),
//! - 1-D convolution **is** an RIA ([`algorithms::conv1d`]),
//! - direct 2-D convolution is **not** an RIA — its offsets depend on the
//!   reduction index `k` through `⌊k/K⌋` and `k mod K`
//!   ([`algorithms::conv2d_direct`]),
//! - 2-D convolution after `im2col` **is** an RIA, but its GEMM has a single
//!   output column ([`algorithms::conv2d_im2col`]).
//!
//! [`schedule`] then assigns *systolic* (space) and *time* dimensions to an
//! RIA by searching for a valid linear schedule, completing the story of
//! Fig. 1(c)–(d).
//!
//! # Examples
//!
//! ```
//! use fuseconv_ria::algorithms;
//!
//! let mm = algorithms::matmul();
//! assert!(mm.check().is_ok());
//!
//! let conv = algorithms::conv2d_direct(3);
//! assert!(conv.check().is_err()); // not an RIA → not systolic
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod algorithms;
pub mod expr;
pub mod relation;
pub mod schedule;

pub use expr::IndexExpr;
pub use relation::{Recurrence, RecurrenceSystem, RiaViolation, Term};
pub use schedule::{Schedule, SystolicMapping};

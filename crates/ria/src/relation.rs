//! Recurrence relations and the RIA check.

use crate::IndexExpr;
use std::collections::BTreeSet;
use std::error::Error;
use std::fmt;

/// One RHS operand of a recurrence relation: a variable read at an index
/// given by per-coordinate [`IndexExpr`]s of the LHS iteration vector.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Term {
    /// Variable name (e.g. `"A"`).
    pub var: String,
    /// One expression per coordinate of the read index.
    pub index: Vec<IndexExpr>,
}

impl Term {
    /// Creates a term reading `var` at the given index expressions.
    pub fn new(var: impl Into<String>, index: Vec<IndexExpr>) -> Self {
        Term {
            var: var.into(),
            index,
        }
    }

    /// The index offset of this term relative to the LHS iteration vector,
    /// if every coordinate is a unit-coefficient affine access or constant.
    ///
    /// Coordinate `d` reading `Axis(a) + c` yields offset `c` placed at
    /// position `d` — but only when `a == d` (the coordinate reads "its own"
    /// axis, the situation in all of the paper's examples). Reading a
    /// *different* axis, a scaled axis, or a `⌊·/·⌋`/`mod` expression makes
    /// the offset non-constant and returns `None`.
    pub fn constant_offset(&self) -> Option<Vec<i64>> {
        let mut offsets = Vec::with_capacity(self.index.len());
        for (dim, expr) in self.index.iter().enumerate() {
            match expr.as_axis_offset() {
                Some((axis, c)) if axis == dim => offsets.push(c),
                _ => return None,
            }
        }
        Some(offsets)
    }
}

impl fmt::Display for Term {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}[", self.var)?;
        for (i, e) in self.index.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{e}")?;
        }
        write!(f, "]")
    }
}

/// A single recurrence relation: `lhs[i⃗] = f(terms…)` over an iteration
/// domain of dimension `rank`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Recurrence {
    /// Variable being defined.
    pub lhs: String,
    /// Dimension of the iteration vector.
    pub rank: usize,
    /// RHS operands.
    pub terms: Vec<Term>,
}

impl Recurrence {
    /// Creates a recurrence defining `lhs` over a `rank`-dimensional
    /// iteration space from the given RHS terms.
    pub fn new(lhs: impl Into<String>, rank: usize, terms: Vec<Term>) -> Self {
        Recurrence {
            lhs: lhs.into(),
            rank,
            terms,
        }
    }
}

impl fmt::Display for Recurrence {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        const AXIS_NAMES: [&str; 6] = ["i", "j", "k", "l", "m", "n"];
        write!(f, "{}[", self.lhs)?;
        for d in 0..self.rank {
            if d > 0 {
                write!(f, ", ")?;
            }
            match AXIS_NAMES.get(d) {
                Some(n) => write!(f, "{n}")?,
                None => write!(f, "x{d}")?,
            }
        }
        write!(f, "] = f(")?;
        for (i, t) in self.terms.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{t}")?;
        }
        write!(f, ")")
    }
}

/// Why a recurrence system fails to be a Regular Iterative Algorithm.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum RiaViolation {
    /// A variable is defined by more than one recurrence (violates single
    /// assignment).
    MultipleAssignment {
        /// The multiply-defined variable.
        var: String,
    },
    /// A term's index offset is not a constant vector.
    NonConstantOffset {
        /// Variable defined by the offending recurrence.
        lhs: String,
        /// The offending term, pretty-printed.
        term: String,
    },
    /// A term's index rank disagrees with the recurrence's iteration rank.
    RankMismatch {
        /// Variable defined by the offending recurrence.
        lhs: String,
        /// The offending term, pretty-printed.
        term: String,
        /// Expected rank.
        expected: usize,
        /// Term's rank.
        actual: usize,
    },
}

impl fmt::Display for RiaViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RiaViolation::MultipleAssignment { var } => {
                write!(f, "variable {var} is assigned by more than one recurrence")
            }
            RiaViolation::NonConstantOffset { lhs, term } => write!(
                f,
                "in the recurrence for {lhs}, term {term} has a non-constant index offset"
            ),
            RiaViolation::RankMismatch {
                lhs,
                term,
                expected,
                actual,
            } => write!(
                f,
                "in the recurrence for {lhs}, term {term} has rank {actual}, expected {expected}"
            ),
        }
    }
}

impl Error for RiaViolation {}

/// A set of recurrence relations describing one algorithm.
///
/// # Examples
///
/// ```
/// use fuseconv_ria::{IndexExpr, Recurrence, RecurrenceSystem, Term};
///
/// // C[i,j,k] = C[i,j,k-1] + A[i,k]·B[k,j], written with a propagated
/// // 3-index form as in Fig. 1(b) of the paper.
/// let sys = fuseconv_ria::algorithms::matmul();
/// assert!(sys.check().is_ok());
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RecurrenceSystem {
    name: String,
    recurrences: Vec<Recurrence>,
}

impl RecurrenceSystem {
    /// Creates a named system from its recurrences.
    pub fn new(name: impl Into<String>, recurrences: Vec<Recurrence>) -> Self {
        RecurrenceSystem {
            name: name.into(),
            recurrences,
        }
    }

    /// The system's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The recurrences.
    pub fn recurrences(&self) -> &[Recurrence] {
        &self.recurrences
    }

    /// Checks the three RIA conditions, returning every violation found.
    ///
    /// # Errors
    ///
    /// Returns the (non-empty) list of [`RiaViolation`]s if the system is
    /// not a Regular Iterative Algorithm.
    pub fn check(&self) -> Result<(), Vec<RiaViolation>> {
        let mut violations = Vec::new();
        let mut defined = BTreeSet::new();
        for rec in &self.recurrences {
            if !defined.insert(rec.lhs.clone()) {
                violations.push(RiaViolation::MultipleAssignment {
                    var: rec.lhs.clone(),
                });
            }
            for term in &rec.terms {
                if term.index.len() != rec.rank {
                    violations.push(RiaViolation::RankMismatch {
                        lhs: rec.lhs.clone(),
                        term: term.to_string(),
                        expected: rec.rank,
                        actual: term.index.len(),
                    });
                    continue;
                }
                if term.constant_offset().is_none() {
                    violations.push(RiaViolation::NonConstantOffset {
                        lhs: rec.lhs.clone(),
                        term: term.to_string(),
                    });
                }
            }
        }
        if violations.is_empty() {
            Ok(())
        } else {
            Err(violations)
        }
    }

    /// Whether the system is a Regular Iterative Algorithm.
    pub fn is_regular_iterative(&self) -> bool {
        self.check().is_ok()
    }

    /// The dependence vectors of the system: for each term with constant
    /// offset `c⃗`, the dependence is `-c⃗` (the LHS point depends on the
    /// point `c⃗` away). Self-independent zero vectors from reads of *other*
    /// variables at the same point are included as zero rows only when the
    /// term reads the LHS variable itself; pure input reads at offset 0 do
    /// not constrain a schedule.
    ///
    /// Returns `None` if any offset is non-constant (non-RIA).
    pub fn dependence_vectors(&self) -> Option<Vec<Vec<i64>>> {
        let mut deps = Vec::new();
        for rec in &self.recurrences {
            for term in &rec.terms {
                let offsets = term.constant_offset()?;
                let dep: Vec<i64> = offsets.iter().map(|&c| -c).collect();
                // A read of a *different* variable at the same iteration
                // point is data forwarding within the cell, not a schedule
                // constraint; a zero self-dependence would make any schedule
                // infeasible and cannot occur in single-assignment code.
                if dep.iter().any(|&d| d != 0) {
                    deps.push(dep);
                }
            }
        }
        Some(deps)
    }
}

impl fmt::Display for RecurrenceSystem {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "{}:", self.name)?;
        for rec in &self.recurrences {
            writeln!(f, "  {rec}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn same_point(var: &str, rank: usize) -> Term {
        Term::new(var, (0..rank).map(IndexExpr::axis).collect())
    }

    #[test]
    fn constant_offset_extraction() {
        let t = Term::new(
            "C",
            vec![
                IndexExpr::axis(0),
                IndexExpr::axis(1),
                IndexExpr::axis(2) - (IndexExpr::constant(1)),
            ],
        );
        assert_eq!(t.constant_offset(), Some(vec![0, 0, -1]));
    }

    #[test]
    fn cross_axis_read_is_not_constant_offset() {
        // A[j, i]: coordinate 0 reads axis 1 — a transposed access, which is
        // affine but not an index *offset* in the RIA sense.
        let t = Term::new("A", vec![IndexExpr::axis(1), IndexExpr::axis(0)]);
        assert_eq!(t.constant_offset(), None);
    }

    #[test]
    fn single_assignment_enforced() {
        let sys = RecurrenceSystem::new(
            "double-def",
            vec![
                Recurrence::new("C", 2, vec![same_point("A", 2)]),
                Recurrence::new("C", 2, vec![same_point("B", 2)]),
            ],
        );
        let errs = sys.check().unwrap_err();
        assert!(errs
            .iter()
            .any(|v| matches!(v, RiaViolation::MultipleAssignment { var } if var == "C")));
    }

    #[test]
    fn rank_mismatch_detected() {
        let sys = RecurrenceSystem::new(
            "bad-rank",
            vec![Recurrence::new(
                "C",
                3,
                vec![Term::new("A", vec![IndexExpr::axis(0)])],
            )],
        );
        let errs = sys.check().unwrap_err();
        assert!(matches!(errs[0], RiaViolation::RankMismatch { .. }));
    }

    #[test]
    fn non_constant_offset_detected_and_displayed() {
        let sys = RecurrenceSystem::new(
            "conv-like",
            vec![Recurrence::new(
                "C",
                3,
                vec![Term::new(
                    "A",
                    vec![
                        IndexExpr::axis(0) + (IndexExpr::axis(2).floor_div(3)),
                        IndexExpr::axis(1) + (IndexExpr::axis(2).modulo(3)),
                        IndexExpr::axis(2),
                    ],
                )],
            )],
        );
        let errs = sys.check().unwrap_err();
        assert_eq!(errs.len(), 1);
        let msg = errs[0].to_string();
        assert!(msg.contains("non-constant index offset"), "{msg}");
    }

    #[test]
    fn dependence_vectors_negate_offsets() {
        let sys = RecurrenceSystem::new(
            "chain",
            vec![Recurrence::new(
                "C",
                2,
                vec![
                    Term::new(
                        "C",
                        vec![
                            IndexExpr::axis(0),
                            IndexExpr::axis(1) - (IndexExpr::constant(1)),
                        ],
                    ),
                    same_point("A", 2),
                ],
            )],
        );
        assert_eq!(sys.dependence_vectors(), Some(vec![vec![0, 1]]));
    }

    #[test]
    fn display_shows_loop_variables() {
        let rec = Recurrence::new("C", 2, vec![same_point("A", 2)]);
        assert_eq!(rec.to_string(), "C[i, j] = f(A[i, j])");
    }
}

//! Linear schedules and space–time mappings for RIAs.
//!
//! Mapping an RIA to a systolic array (Fig. 1(c)–(d)) means choosing a
//! *time* direction and projecting the remaining iteration-space dimensions
//! onto the physical array (the *systolic* dimensions). A linear schedule
//! `τ` is valid when every dependence vector `d` satisfies `τ·d ≥ 1`: the
//! producing iteration strictly precedes the consuming one.

use crate::RecurrenceSystem;
use std::error::Error;
use std::fmt;

/// A linear schedule `τ`: iteration point `p⃗` executes at time `τ·p⃗`.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Schedule {
    tau: Vec<i64>,
}

impl Schedule {
    /// Creates a schedule from its coefficient vector.
    pub fn new(tau: Vec<i64>) -> Self {
        Schedule { tau }
    }

    /// The coefficient vector.
    pub fn coefficients(&self) -> &[i64] {
        &self.tau
    }

    /// Execution time of an iteration point.
    ///
    /// # Panics
    ///
    /// Panics if `point.len() != rank`.
    pub fn time_of(&self, point: &[i64]) -> i64 {
        assert_eq!(point.len(), self.tau.len(), "point rank mismatch");
        self.tau.iter().zip(point).map(|(&t, &p)| t * p).sum()
    }

    /// Whether the schedule respects every dependence (each strictly
    /// positive in time).
    pub fn is_valid_for(&self, deps: &[Vec<i64>]) -> bool {
        deps.iter().all(|d| self.time_of(d) >= 1)
    }

    /// Sum of absolute coefficients — the search's cost metric (smaller
    /// schedules mean shorter pipelines).
    pub fn cost(&self) -> i64 {
        self.tau.iter().map(|t| t.abs()).sum()
    }
}

impl fmt::Display for Schedule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "τ = {:?}", self.tau)
    }
}

/// Error returned when no space–time mapping exists.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum MapError {
    /// The system is not an RIA, so dependence vectors are undefined.
    NotRegular,
    /// No valid linear schedule exists within the search bounds.
    NoSchedule,
}

impl fmt::Display for MapError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MapError::NotRegular => {
                write!(f, "system is not a regular iterative algorithm")
            }
            MapError::NoSchedule => write!(f, "no valid linear schedule found"),
        }
    }
}

impl Error for MapError {}

/// A complete space–time mapping of an RIA onto a processor array.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SystolicMapping {
    schedule: Schedule,
    time_axis: usize,
    space_axes: Vec<usize>,
}

impl SystolicMapping {
    /// The linear schedule.
    pub fn schedule(&self) -> &Schedule {
        &self.schedule
    }

    /// The iteration-space axis projected onto time.
    pub fn time_axis(&self) -> usize {
        self.time_axis
    }

    /// The iteration-space axes mapped onto the physical array — the
    /// paper's *systolic dimensions*.
    pub fn space_axes(&self) -> &[usize] {
        &self.space_axes
    }

    /// Number of physical array dimensions used.
    pub fn array_rank(&self) -> usize {
        self.space_axes.len()
    }
}

impl fmt::Display for SystolicMapping {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}, time axis {}, systolic axes {:?}",
            self.schedule, self.time_axis, self.space_axes
        )
    }
}

/// Searches for a minimal valid linear schedule for the given dependence
/// vectors, trying coefficient vectors with entries in `-2..=2` in order of
/// increasing cost.
///
/// # Errors
///
/// Returns [`MapError::NoSchedule`] if no such schedule exists.
pub fn find_schedule(deps: &[Vec<i64>], rank: usize) -> Result<Schedule, MapError> {
    let mut candidates: Vec<Vec<i64>> = Vec::new();
    let mut current = vec![-2i64; rank];
    loop {
        if current.iter().any(|&c| c != 0) {
            candidates.push(current.clone());
        }
        // Odometer increment over -2..=2 per coordinate.
        let mut done = true;
        for slot in current.iter_mut().rev() {
            if *slot < 2 {
                *slot += 1;
                done = false;
                break;
            }
            *slot = -2;
        }
        if done {
            break;
        }
    }
    candidates.sort_by_key(|tau| tau.iter().map(|t| t.abs()).sum::<i64>());
    candidates
        .into_iter()
        .map(Schedule::new)
        .find(|s| s.is_valid_for(deps))
        .ok_or(MapError::NoSchedule)
}

/// Maps an RIA onto a processor array: finds a valid schedule, then selects
/// the *time axis* (the axis with the largest schedule coefficient, along
/// which results accumulate) and designates the remaining axes as systolic.
///
/// For the paper's output-stationary matmul this returns time axis `k` and
/// systolic axes `{i, j}` — exactly Fig. 1(c).
///
/// # Errors
///
/// Returns [`MapError::NotRegular`] for non-RIA systems and
/// [`MapError::NoSchedule`] when scheduling fails.
pub fn map_to_array(system: &RecurrenceSystem) -> Result<SystolicMapping, MapError> {
    let deps = system.dependence_vectors().ok_or(MapError::NotRegular)?;
    let rank = system
        .recurrences()
        .iter()
        .map(|r| r.rank)
        .max()
        .unwrap_or(0);
    let schedule = find_schedule(&deps, rank)?;
    let time_axis = schedule
        .coefficients()
        .iter()
        .enumerate()
        .max_by_key(|(_, &c)| c.abs())
        .map(|(a, _)| a)
        .unwrap_or(0);
    let space_axes: Vec<usize> = (0..rank).filter(|&a| a != time_axis).collect();
    Ok(SystolicMapping {
        schedule,
        time_axis,
        space_axes,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithms;

    #[test]
    fn unit_dependences_admit_all_ones_schedule() {
        let deps = vec![vec![1, 0, 0], vec![0, 1, 0], vec![0, 0, 1]];
        let s = find_schedule(&deps, 3).unwrap();
        assert!(s.is_valid_for(&deps));
        assert_eq!(s.cost(), 3); // [1,1,1] is minimal
    }

    #[test]
    fn opposing_dependences_are_unschedulable() {
        let deps = vec![vec![1, 0], vec![-1, 0]];
        assert_eq!(find_schedule(&deps, 2), Err(MapError::NoSchedule));
    }

    #[test]
    fn empty_dependences_schedule_trivially() {
        // With no dependences any nonzero τ works; the search returns a
        // cost-1 schedule.
        let s = find_schedule(&[], 2).unwrap();
        assert_eq!(s.cost(), 1);
    }

    #[test]
    fn matmul_maps_to_2d_array() {
        let m = map_to_array(&algorithms::matmul()).unwrap();
        assert_eq!(m.array_rank(), 2);
        assert!(m
            .schedule()
            .is_valid_for(&algorithms::matmul().dependence_vectors().unwrap()));
    }

    #[test]
    fn conv1d_maps_to_linear_array() {
        let m = map_to_array(&algorithms::conv1d()).unwrap();
        assert_eq!(m.array_rank(), 1);
    }

    #[test]
    fn conv2d_direct_cannot_be_mapped() {
        assert_eq!(
            map_to_array(&algorithms::conv2d_direct(3)),
            Err(MapError::NotRegular)
        );
    }

    #[test]
    fn schedule_time_is_linear() {
        let s = Schedule::new(vec![1, 2]);
        assert_eq!(s.time_of(&[3, 4]), 11);
        assert_eq!(s.time_of(&[0, 0]), 0);
    }

    #[test]
    #[should_panic(expected = "rank mismatch")]
    fn time_of_checks_rank() {
        let s = Schedule::new(vec![1, 1]);
        let _ = s.time_of(&[1]);
    }
}

#[cfg(test)]
mod exhaustive_tests {
    use super::*;

    /// All 124 nonzero rank-3 dependence vectors with entries in −2..=2.
    fn all_deps() -> Vec<Vec<i64>> {
        let mut out = Vec::new();
        for a in -2i64..=2 {
            for b in -2i64..=2 {
                for c in -2i64..=2 {
                    if (a, b, c) != (0, 0, 0) {
                        out.push(vec![a, b, c]);
                    }
                }
            }
        }
        out
    }

    /// Any schedule found by the search satisfies τ·d ≥ 1 for every
    /// dependence it was given; when the search reports `NoSchedule`, at
    /// least the all-ones schedule must indeed fail.
    fn check(deps: &[Vec<i64>]) {
        match find_schedule(deps, 3) {
            Ok(s) => assert!(s.is_valid_for(deps), "invalid schedule for {deps:?}"),
            Err(MapError::NoSchedule) => {
                let ones = Schedule::new(vec![1, 1, 1]);
                assert!(!ones.is_valid_for(deps), "ones works for {deps:?}");
            }
            Err(e) => panic!("unexpected error {e} for {deps:?}"),
        }
    }

    #[test]
    fn found_schedules_are_valid_for_every_single_dep() {
        check(&[]);
        for d in all_deps() {
            check(&[d]);
        }
    }

    #[test]
    fn found_schedules_are_valid_for_every_dep_pair() {
        let deps = all_deps();
        for (i, u) in deps.iter().enumerate() {
            for v in deps.iter().skip(i) {
                check(&[u.clone(), v.clone()]);
            }
        }
    }

    #[test]
    fn found_schedules_are_valid_for_sampled_triples() {
        // A stride-sampled subset keeps the triple cross-product tractable.
        let deps: Vec<Vec<i64>> = all_deps().into_iter().step_by(7).collect();
        for (i, u) in deps.iter().enumerate() {
            for (j, v) in deps.iter().enumerate().skip(i) {
                for w in deps.iter().skip(j) {
                    check(&[u.clone(), v.clone(), w.clone()]);
                }
            }
        }
    }
}

//! Pluggable batching policies and the request queue.
//!
//! Internally the queue keeps one FIFO bucket per network (requests of
//! one network share every layer shape, so only same-network requests
//! can co-batch) plus a dedicated high-priority lane that bypasses
//! batching entirely. The policies differ in *which* bucket launches
//! and *when*:
//!
//! * [`BatchPolicy::Fifo`] — strict arrival order, batch size 1;
//! * [`BatchPolicy::Dynamic`] — arrival-order fair: the bucket holding
//!   the oldest request launches, but only once it is full
//!   (`max_batch`) or its head has waited `max_wait` cycles;
//! * [`BatchPolicy::Bucketed`] — throughput-greedy: any full bucket
//!   launches first (deepest wins), otherwise the oldest expired head.
//!
//! `Dynamic` and `Bucketed` trade queueing delay for the sub-linear
//! batch cost of [`crate::oracle::CostOracle::request_cycles`].

use std::collections::VecDeque;

/// When and how queued requests coalesce into batches.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchPolicy {
    /// One request per launch, strict arrival order.
    Fifo,
    /// Arrival-order-fair dynamic batching: launch the oldest bucket
    /// when full or when its head request has waited long enough.
    Dynamic {
        /// Largest batch a single launch may carry.
        max_batch: usize,
        /// Longest a batch head may wait before launching partial,
        /// cycles.
        max_wait: u64,
    },
    /// Shape-bucketed batching: prefer any full bucket (deepest
    /// first), fall back to expired heads.
    Bucketed {
        /// Largest batch a single launch may carry.
        max_batch: usize,
        /// Longest a batch head may wait before launching partial,
        /// cycles.
        max_wait: u64,
    },
}

impl BatchPolicy {
    /// Parses a policy name with parameters supplied separately:
    /// `fifo`, `dynamic` or `bucketed`.
    pub fn parse(name: &str, max_batch: usize, max_wait: u64) -> Option<BatchPolicy> {
        let max_batch = max_batch.max(1);
        match name {
            "fifo" => Some(BatchPolicy::Fifo),
            "dynamic" => Some(BatchPolicy::Dynamic {
                max_batch,
                max_wait,
            }),
            "bucketed" => Some(BatchPolicy::Bucketed {
                max_batch,
                max_wait,
            }),
            _ => None,
        }
    }

    /// The policy's short name (`fifo` / `dynamic` / `bucketed`).
    pub fn name(&self) -> &'static str {
        match self {
            BatchPolicy::Fifo => "fifo",
            BatchPolicy::Dynamic { .. } => "dynamic",
            BatchPolicy::Bucketed { .. } => "bucketed",
        }
    }
}

/// One queued request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Pending {
    /// Monotone request id (arrival order).
    pub id: u64,
    /// Index into the workload's network list.
    pub net: usize,
    /// Arrival time, cycles.
    pub arrived: u64,
    /// High-priority tag (served from the priority lane).
    pub high_priority: bool,
}

/// Cycle-exact phase accounting carried with a batch through launches,
/// preemptions and resumes. The engine maintains the invariant that for
/// every member request `latency == form_wait + queue_wait + on_array`
/// (with `form_wait = formed_at − arrived`), because each accumulator
/// is the telescoped difference of adjacent event times: the intervals
/// tile `[formed_at, completion]` exactly. `on_array` further splits
/// into compute and preemption-refill cycles via `refill`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BatchPhase {
    /// When the batch became formable: its latest member arrival.
    /// Earlier members' wait until this point is their batch-form wait.
    pub formed_at: u64,
    /// Cycles the formed batch spent waiting off-array: formed→launch
    /// plus, after a preemption, eviction→relaunch.
    pub queue_wait: u64,
    /// Cycles spent executing on an array across all segments,
    /// including replayed pipeline-refill cycles.
    pub on_array: u64,
    /// Preemption refill-penalty cycles charged into `on_array`.
    pub refill: u64,
}

impl BatchPhase {
    /// A fresh accounting for a batch formed at `formed_at`.
    pub fn formed(formed_at: u64) -> Self {
        BatchPhase {
            formed_at,
            queue_wait: 0,
            on_array: 0,
            refill: 0,
        }
    }
}

/// A launched batch: same-network requests served by one array (or one
/// shard plan) in a single pass.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Batch {
    /// Network index all members share.
    pub net: usize,
    /// Member requests, arrival order.
    pub requests: Vec<Pending>,
    /// Whether the batch came off the high-priority lane.
    pub high_priority: bool,
    /// Phase accounting (batch-form / queue / on-array cycles).
    pub phase: BatchPhase,
}

/// Bounded request queue with per-network buckets and a priority lane.
#[derive(Debug)]
pub struct RequestQueue {
    policy: BatchPolicy,
    capacity: usize,
    covered: usize,
    buckets: Vec<VecDeque<Pending>>,
    high: VecDeque<Pending>,
    len: usize,
}

impl RequestQueue {
    /// An empty queue for `nets` networks holding at most `capacity`
    /// requests under `policy`. Every network starts with a
    /// provisioned shape bucket; see [`Self::with_covered_buckets`].
    pub fn new(policy: BatchPolicy, capacity: usize, nets: usize) -> Self {
        RequestQueue {
            policy,
            capacity: capacity.max(1),
            covered: nets,
            buckets: (0..nets).map(|_| VecDeque::new()).collect(),
            high: VecDeque::new(),
            len: 0,
        }
    }

    /// Limits admission to the first `covered` networks: shape-bucketed
    /// serving provisions a fixed set of compiled batch shapes, and a
    /// request whose network has no bucket cannot be queued at all —
    /// [`Self::push`] rejects it exactly like an at-capacity queue.
    pub fn with_covered_buckets(mut self, covered: usize) -> Self {
        self.covered = covered.min(self.buckets.len());
        self
    }

    /// Requests currently queued (all lanes).
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Admits `p`, or rejects it when the queue is at capacity or when
    /// `p`'s network has no provisioned shape bucket. Returns `true`
    /// on admit.
    pub fn push(&mut self, p: Pending) -> bool {
        if self.len >= self.capacity || p.net >= self.covered {
            return false;
        }
        self.len += 1;
        if p.high_priority {
            self.high.push_back(p);
        } else {
            self.buckets[p.net].push_back(p);
        }
        true
    }

    /// Index of the bucket whose head arrived first (ties break toward
    /// the lower id, which is the same ordering).
    fn oldest_bucket(&self) -> Option<usize> {
        self.buckets
            .iter()
            .enumerate()
            .filter_map(|(i, b)| b.front().map(|p| (p.arrived, p.id, i)))
            .min()
            .map(|(_, _, i)| i)
    }

    fn drain_bucket(&mut self, bucket: usize, take: usize) -> Batch {
        let mut requests = Vec::with_capacity(take);
        for _ in 0..take {
            if let Some(p) = self.buckets[bucket].pop_front() {
                self.len -= 1;
                requests.push(p);
            }
        }
        // Buckets are FIFO, so the last member arrived latest: the
        // batch could not have existed before that arrival.
        let formed_at = requests.last().map_or(0, |p| p.arrived);
        Batch {
            net: bucket,
            requests,
            high_priority: false,
            phase: BatchPhase::formed(formed_at),
        }
    }

    /// Pops the head of the high-priority lane as a batch-1 launch, or
    /// `None` when the lane is empty. Always ready regardless of
    /// policy; the engine drains this lane before preempted work so an
    /// eviction never hands the freed array back to its victim.
    pub fn pop_high(&mut self) -> Option<Batch> {
        let p = self.high.pop_front()?;
        self.len -= 1;
        Some(Batch {
            net: p.net,
            requests: vec![p],
            high_priority: true,
            phase: BatchPhase::formed(p.arrived),
        })
    }

    /// Pops the next ready batch under the queue's policy, or `None`
    /// when nothing may launch yet. The high-priority lane always
    /// launches first, one request at a time, regardless of policy.
    pub fn pop_batch(&mut self, now: u64) -> Option<Batch> {
        if let Some(batch) = self.pop_high() {
            return Some(batch);
        }
        match self.policy {
            BatchPolicy::Fifo => {
                let bucket = self.oldest_bucket()?;
                Some(self.drain_bucket(bucket, 1))
            }
            BatchPolicy::Dynamic {
                max_batch,
                max_wait,
            } => {
                let bucket = self.oldest_bucket()?;
                let depth = self.buckets[bucket].len();
                let head = self.buckets[bucket].front().copied()?;
                if depth >= max_batch || now >= head.arrived.saturating_add(max_wait) {
                    Some(self.drain_bucket(bucket, depth.min(max_batch)))
                } else {
                    None
                }
            }
            BatchPolicy::Bucketed {
                max_batch,
                max_wait,
            } => {
                // Any full bucket: deepest first, oldest head breaks ties.
                let full = self
                    .buckets
                    .iter()
                    .enumerate()
                    .filter(|(_, b)| b.len() >= max_batch)
                    .filter_map(|(i, b)| {
                        b.front()
                            .map(|p| (std::cmp::Reverse(b.len()), p.arrived, p.id, i))
                    })
                    .min()
                    .map(|(_, _, _, i)| i);
                if let Some(bucket) = full {
                    return Some(self.drain_bucket(bucket, max_batch));
                }
                // Otherwise the oldest expired head launches partial.
                let expired = self
                    .buckets
                    .iter()
                    .enumerate()
                    .filter_map(|(i, b)| b.front().map(|p| (p.arrived, p.id, i)))
                    .filter(|&(arrived, _, _)| now >= arrived.saturating_add(max_wait))
                    .min()
                    .map(|(_, _, i)| i);
                expired.map(|bucket| {
                    let take = self.buckets[bucket].len().min(max_batch);
                    self.drain_bucket(bucket, take)
                })
            }
        }
    }

    /// The earliest future time at which a currently-unready batch
    /// becomes launchable by timeout, if any. `None` for FIFO (always
    /// ready) and for empty queues.
    pub fn next_deadline(&self) -> Option<u64> {
        let max_wait = match self.policy {
            BatchPolicy::Fifo => return None,
            BatchPolicy::Dynamic { max_wait, .. } | BatchPolicy::Bucketed { max_wait, .. } => {
                max_wait
            }
        };
        self.buckets
            .iter()
            .filter_map(|b| b.front().map(|p| p.arrived.saturating_add(max_wait)))
            .min()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(id: u64, net: usize, arrived: u64) -> Pending {
        Pending {
            id,
            net,
            arrived,
            high_priority: false,
        }
    }

    #[test]
    fn fifo_serves_in_arrival_order_across_buckets() {
        let mut q = RequestQueue::new(BatchPolicy::Fifo, 16, 2);
        q.push(p(0, 1, 5));
        q.push(p(1, 0, 7));
        q.push(p(2, 1, 9));
        let a = q.pop_batch(10).expect("ready");
        assert_eq!((a.net, a.requests[0].id), (1, 0));
        let b = q.pop_batch(10).expect("ready");
        assert_eq!((b.net, b.requests[0].id), (0, 1));
        assert_eq!(q.len(), 1);
        assert_eq!(q.next_deadline(), None);
    }

    #[test]
    fn dynamic_waits_for_full_batch_or_deadline() {
        let policy = BatchPolicy::Dynamic {
            max_batch: 3,
            max_wait: 100,
        };
        let mut q = RequestQueue::new(policy, 16, 2);
        q.push(p(0, 0, 10));
        q.push(p(1, 0, 20));
        assert!(q.pop_batch(50).is_none(), "neither full nor expired");
        assert_eq!(q.next_deadline(), Some(110));
        q.push(p(2, 0, 60));
        let full = q.pop_batch(61).expect("full batch launches");
        assert_eq!(full.requests.len(), 3);
        // A lone straggler launches at its deadline.
        q.push(p(3, 1, 70));
        assert!(q.pop_batch(100).is_none());
        let partial = q.pop_batch(170).expect("expired head launches");
        assert_eq!(partial.requests.len(), 1);
        assert!(q.is_empty());
    }

    #[test]
    fn bucketed_prefers_the_deepest_full_bucket() {
        let policy = BatchPolicy::Bucketed {
            max_batch: 2,
            max_wait: 1000,
        };
        let mut q = RequestQueue::new(policy, 16, 2);
        // Bucket 1's head is older, but bucket 0 fills up first... both
        // full: equal depth after cap, so the older head (net 1) wins.
        q.push(p(0, 1, 5));
        q.push(p(1, 0, 6));
        q.push(p(2, 0, 7));
        q.push(p(3, 1, 8));
        let first = q.pop_batch(9).expect("full bucket");
        assert_eq!(first.net, 1);
        let second = q.pop_batch(9).expect("other full bucket");
        assert_eq!(second.net, 0);
        assert_eq!(second.requests.len(), 2);
    }

    #[test]
    fn high_priority_lane_bypasses_batching() {
        let policy = BatchPolicy::Dynamic {
            max_batch: 8,
            max_wait: 1_000_000,
        };
        let mut q = RequestQueue::new(policy, 16, 1);
        q.push(p(0, 0, 1));
        q.push(Pending {
            id: 1,
            net: 0,
            arrived: 2,
            high_priority: true,
        });
        let b = q.pop_batch(3).expect("priority lane is always ready");
        assert!(b.high_priority);
        assert_eq!(b.requests.len(), 1);
        assert_eq!(b.requests[0].id, 1);
        assert!(q.pop_batch(3).is_none(), "normal lane still waits");
    }

    #[test]
    fn capacity_bounds_admission() {
        let mut q = RequestQueue::new(BatchPolicy::Fifo, 2, 1);
        assert!(q.push(p(0, 0, 1)));
        assert!(q.push(p(1, 0, 2)));
        assert!(!q.push(p(2, 0, 3)), "third request is dropped");
        assert_eq!(q.len(), 2);
    }

    #[test]
    fn uncovered_networks_are_rejected_at_admission() {
        let policy = BatchPolicy::Bucketed {
            max_batch: 2,
            max_wait: 100,
        };
        let mut q = RequestQueue::new(policy, 16, 2).with_covered_buckets(1);
        assert!(q.push(p(0, 0, 1)), "covered network admits");
        assert!(!q.push(p(1, 1, 2)), "uncovered network is rejected");
        // The high-priority lane gets no exemption: no bucket shape
        // means the request cannot run at all.
        assert!(!q.push(Pending {
            id: 2,
            net: 1,
            arrived: 3,
            high_priority: true,
        }));
        assert_eq!(q.len(), 1);
    }
}

//! The discrete-event serving engine.
//!
//! A single [`std::collections::BinaryHeap`] orders events by
//! `(time, seq)` — `seq` is a monotone tie-breaker, so simultaneous
//! events pop in creation order and the whole simulation is a pure
//! function of its inputs. The clock is `u64` array cycles. Arrivals
//! are generated lazily (one outstanding at a time), so the heap stays
//! O(pod size) deep no matter how many requests are simulated.
//!
//! Event kinds:
//!
//! * **Arrival** — admit (or drop) a request, draw the next arrival,
//!   try to dispatch;
//! * **ArrayDone** — an array finished its batch; stale generations
//!   (preempted batches) are ignored;
//! * **PodDone** — a sharded batch's slowest share finished;
//! * **Deadline** — a batching max-wait expired; re-run dispatch.
//!
//! Dispatch picks, per launched batch, the idle array with the lowest
//! analytic cost for that network/batch size ([`crate::CostOracle`]).
//! Under [`Dispatch::Sharded`] the whole pod serves one batch at a
//! time via the oracle's LPT shard plan. Optional preemption lets a
//! high-priority arrival evict a running non-priority batch at fold
//! granularity, but only when that finishes the arrival earlier than
//! waiting for the first free array would; the victim's remaining
//! cycles (plus a `rows + cols` pipeline-refill penalty) re-enter a
//! resume queue served after the high-priority lane but ahead of
//! normal traffic — the freed array goes to the triggering request,
//! never straight back to its victim.

use crate::batch::{Batch, BatchPolicy, Pending, RequestQueue};
use crate::oracle::CostOracle;
use crate::report::{ArrayReport, LatencyStats, NetworkReport, QueueStats, ServeReport};
use crate::spec::{PodSpec, ServeError};
use crate::timeseries::{Exemplar, TimeSeriesConfig, TimeSeriesRecorder, TimeSeriesReport};
use crate::trace::PodTraceSink;
use crate::traffic::{TrafficGen, Workload};
use fuseconv_telemetry::RunManifest;
use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};

/// How a request's work maps onto the pod.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Dispatch {
    /// Each batch runs whole on a single array (the cheapest idle
    /// one); arrays serve independent batches concurrently.
    Whole,
    /// Each batch's ops are LPT-sharded across every array; the pod
    /// serves one batch at a time and the batch finishes with its
    /// slowest share.
    Sharded,
}

impl Dispatch {
    /// Parses `whole` / `sharded`.
    pub fn parse(name: &str) -> Option<Dispatch> {
        match name {
            "whole" => Some(Dispatch::Whole),
            "sharded" => Some(Dispatch::Sharded),
            _ => None,
        }
    }

    /// The mode's short name.
    pub fn name(&self) -> &'static str {
        match self {
            Dispatch::Whole => "whole",
            Dispatch::Sharded => "sharded",
        }
    }
}

/// Everything that parameterises one pod simulation.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeConfig {
    /// Batching policy.
    pub policy: BatchPolicy,
    /// Dispatch mode.
    pub dispatch: Dispatch,
    /// Whether high-priority arrivals may preempt running batches
    /// (whole dispatch only).
    pub preemption: bool,
    /// Queue admission bound; arrivals beyond it are dropped.
    pub queue_capacity: usize,
    /// Requests to generate.
    pub requests: u64,
    /// Offered load as a fraction of estimated pod capacity (1.0
    /// saturates; >1.0 overloads).
    pub load: f64,
    /// PRNG seed for the arrival process.
    pub seed: u64,
    /// Fraction of requests tagged high priority.
    pub high_priority_frac: f64,
    /// SLO target multiplier over each network's best isolated
    /// batch-1 service time.
    pub slo_multiplier: f64,
    /// Absolute SLO budget in cycles; when set it overrides the
    /// relative multiplier for every network. Unlike the multiplier
    /// (clamped to ≥ 1× the isolated floor, hence always attainable),
    /// an absolute budget can sit below a network's zero-queueing
    /// floor — the SRV002 infeasibility the analyzer proves statically.
    pub slo_budget_cycles: Option<u64>,
    /// Number of provisioned shape buckets under
    /// [`BatchPolicy::Bucketed`]: only the first N workload networks
    /// get a compiled batch shape, requests for the rest are rejected
    /// at admission. `None` provisions every network.
    pub shape_buckets: Option<usize>,
}

impl ServeConfig {
    /// Sensible defaults: FIFO, whole dispatch, no preemption, queue
    /// capacity 4096, 100 000 requests at 80 % load, seed 42, SLO at
    /// 10× isolated latency, every shape bucket provisioned.
    pub fn new() -> Self {
        ServeConfig {
            policy: BatchPolicy::Fifo,
            dispatch: Dispatch::Whole,
            preemption: false,
            queue_capacity: 4096,
            requests: 100_000,
            load: 0.8,
            seed: 42,
            high_priority_frac: 0.0,
            slo_multiplier: 10.0,
            slo_budget_cycles: None,
            shape_buckets: None,
        }
    }
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig::new()
    }
}

/// Heap event payloads; `Ord` is derived but never decides order —
/// the `(time, seq)` prefix of the heap key is already unique.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
enum EvKind {
    Arrival { net: usize, high: bool },
    ArrayDone { array: usize, gen: u64 },
    PodDone,
    Deadline,
}

/// A batch currently executing on one array.
#[derive(Debug)]
struct Running {
    batch: Batch,
    started: u64,
    done: u64,
}

#[derive(Debug, Default)]
struct ArrayState {
    busy: bool,
    gen: u64,
    busy_cycles: u64,
    batches: u64,
    requests: u64,
    running: Option<Running>,
}

/// A preempted batch waiting to re-run: remaining cycles already
/// include the refill penalty.
#[derive(Debug)]
struct ResumeJob {
    batch: Batch,
    remaining: u64,
    /// When the batch was evicted; the gap until relaunch is queue
    /// wait in the batch's phase accounting.
    evicted_at: u64,
}

struct Engine<'a> {
    pod: &'a PodSpec,
    cfg: &'a ServeConfig,
    oracle: CostOracle,
    queue: RequestQueue,
    heap: BinaryHeap<Reverse<(u64, u64, EvKind)>>,
    seq: u64,
    arrays: Vec<ArrayState>,
    resume: VecDeque<ResumeJob>,
    pod_running: Option<(Batch, u64, u64)>,
    traffic: TrafficGen,
    emitted: u64,
    next_id: u64,
    net_names: Vec<String>,
    slo_target: Vec<u64>,
    // Outcome accumulators.
    latencies: Vec<u64>,
    high_latencies: Vec<u64>,
    net_completed: Vec<u64>,
    net_slo_met: Vec<u64>,
    offered: u64,
    dropped: u64,
    batches: u64,
    preemptions: u64,
    events: u64,
    makespan: u64,
    // Time-weighted queue-depth integral.
    depth_area: u128,
    depth_last_t: u64,
    max_depth: u64,
    deadline_scheduled: Option<u64>,
    trace: Option<&'a mut PodTraceSink>,
    ts: Option<TimeSeriesRecorder>,
}

impl<'a> Engine<'a> {
    fn push_event(&mut self, at: u64, kind: EvKind) {
        self.heap.push(Reverse((at, self.seq, kind)));
        self.seq += 1;
    }

    /// Advances the queue-depth integral to `now` (call before any
    /// queue mutation). The flushed interval feeds the time-series
    /// recorder too, so its per-window depth intervals exactly tile
    /// `[0, makespan]`.
    fn tick_depth(&mut self, now: u64) {
        let dt = now.saturating_sub(self.depth_last_t);
        let depth = self.queue.len() as u64;
        self.depth_area += depth as u128 * dt as u128;
        if let Some(ts) = self.ts.as_mut() {
            ts.queue_depth_to(now, depth);
        }
        self.depth_last_t = now;
    }

    fn note_depth(&mut self, now: u64) {
        let depth = self.queue.len() as u64;
        self.max_depth = self.max_depth.max(depth);
        if let Some(trace) = self.trace.as_deref_mut() {
            trace.queue_depth(now, depth as usize);
        }
    }

    fn batch_label(&self, batch: &Batch) -> String {
        let name = &self.net_names[batch.net];
        let prio = if batch.high_priority { " !" } else { "" };
        format!("{} x{}{}", name, batch.requests.len(), prio)
    }

    fn launch(&mut self, array: usize, mut batch: Batch, service: u64, now: u64, resumed: bool) {
        if !resumed {
            // Formation → launch is queue wait; a resumed batch's
            // evict → relaunch wait was credited at resume-pop time.
            batch.phase.queue_wait += now.saturating_sub(batch.phase.formed_at);
        }
        let done = now.saturating_add(service.max(1));
        let state = &mut self.arrays[array];
        state.busy = true;
        if !resumed {
            state.batches += 1;
            self.batches += 1;
        }
        state.running = Some(Running {
            batch,
            started: now,
            done,
        });
        let gen = state.gen;
        self.push_event(done, EvKind::ArrayDone { array, gen });
    }

    fn complete(&mut self, array: usize, now: u64) {
        let Some(mut run) = self.arrays[array].running.take() else {
            return;
        };
        self.arrays[array].busy = false;
        self.arrays[array].busy_cycles += now.saturating_sub(run.started);
        self.arrays[array].requests += run.batch.requests.len() as u64;
        run.batch.phase.on_array += now.saturating_sub(run.started);
        let label = self.batch_label(&run.batch);
        if let Some(trace) = self.trace.as_deref_mut() {
            trace.batch_span(array, run.started, now, &label);
        }
        if let Some(ts) = self.ts.as_mut() {
            ts.busy(array, run.started, now);
        }
        self.record_completions(&run.batch, now);
    }

    fn record_completions(&mut self, batch: &Batch, now: u64) {
        let ph = batch.phase;
        // Re-preemption during a refill replay can book more refill
        // than on-array time; clamp so compute never underflows.
        let refill = ph.refill.min(ph.on_array);
        let compute = ph.on_array - refill;
        if let Some(ts) = self.ts.as_mut() {
            // Every request in the batch completes at `now`; roll the
            // completion window once for all of them.
            ts.completions_at(now);
        }
        for p in &batch.requests {
            let latency = now.saturating_sub(p.arrived);
            let form_wait = ph.formed_at.saturating_sub(p.arrived);
            debug_assert_eq!(
                form_wait + ph.queue_wait + compute + refill,
                latency,
                "phase cycles must sum to end-to-end latency (request {})",
                p.id
            );
            self.latencies.push(latency);
            if p.high_priority {
                self.high_latencies.push(latency);
            }
            self.net_completed[p.net] += 1;
            let met = latency <= self.slo_target[p.net];
            if met {
                self.net_slo_met[p.net] += 1;
            }
            if let Some(ts) = self.ts.as_mut() {
                ts.record(latency, p.net, met);
                // The full phase-accounted record is assembled only
                // for the rare tail candidate.
                if ts.wants_exemplar(latency, p.id) {
                    ts.offer_exemplar(Exemplar {
                        id: p.id,
                        net: p.net,
                        high_priority: p.high_priority,
                        arrived: p.arrived,
                        completed_at: now,
                        latency,
                        form_wait,
                        queue_wait: ph.queue_wait,
                        compute,
                        refill,
                    });
                }
            }
        }
    }

    /// Evicts a running non-priority batch to free an array for a
    /// just-admitted high-priority request of network `net`.
    ///
    /// The victim is the array on which the request would finish
    /// earliest (start `now`, run at that array's batch-1 cost); ties
    /// break toward the latest-completing (least urgent) batch, then
    /// the lower array index. No eviction happens at all when simply
    /// waiting for the first array to free — where the high-priority
    /// lane is served first — would finish the request no later, so a
    /// preemption can only ever shorten the triggering request's
    /// latency.
    fn maybe_preempt(&mut self, now: u64, net: usize) -> Result<(), ServeError> {
        if self.arrays.iter().any(|a| !a.busy) {
            return Ok(());
        }
        // Finish time without preempting: the first array to free runs
        // the request next (high lane outranks resume + normal lanes).
        let mut wait_finish = u64::MAX;
        // Finish time with preempting, per candidate victim.
        let mut best: Option<(u64, u64, usize)> = None; // (finish, done, array)
        for a in 0..self.arrays.len() {
            let Some(run) = self.arrays[a].running.as_ref() else {
                continue;
            };
            let done = run.done;
            let high = run.batch.high_priority;
            let cost = self.oracle.request_cycles(a, net, 1)?;
            wait_finish = wait_finish.min(done.saturating_add(cost));
            if high {
                continue; // never evict another high-priority batch
            }
            let finish = now.saturating_add(cost);
            let better = match best {
                None => true,
                Some((bf, bd, _)) => finish < bf || (finish == bf && done > bd),
            };
            if better {
                best = Some((finish, done, a));
            }
        }
        let Some((finish, _, victim)) = best else {
            return Ok(());
        };
        if finish >= wait_finish {
            return Ok(()); // waiting is at least as fast: don't waste work
        }
        let state = &mut self.arrays[victim];
        state.gen += 1; // invalidate the in-flight ArrayDone
        state.busy = false;
        let Some(mut run) = state.running.take() else {
            return Ok(());
        };
        state.busy_cycles += now.saturating_sub(run.started);
        run.batch.phase.on_array += now.saturating_sub(run.started);
        let refill = self.pod.arrays[victim].refill_penalty();
        // The refill cycles will replay on-array at resume time; book
        // them now so the phase split survives the round trip.
        run.batch.phase.refill += refill;
        let remaining = run.done.saturating_sub(now).saturating_add(refill);
        self.preemptions += 1;
        let label = self.batch_label(&run.batch);
        if let Some(trace) = self.trace.as_deref_mut() {
            trace.batch_span(victim, run.started, now, &format!("{label} (preempted)"));
            trace.preemption(victim, now, &label);
        }
        if let Some(ts) = self.ts.as_mut() {
            ts.busy(victim, run.started, now);
        }
        self.resume.push_back(ResumeJob {
            batch: run.batch,
            remaining,
            evicted_at: now,
        });
        Ok(())
    }

    /// Launches `batch` on whichever of the `idle` arrays prices it
    /// cheapest.
    fn launch_cheapest(
        &mut self,
        idle: &[usize],
        batch: Batch,
        now: u64,
    ) -> Result<(), ServeError> {
        let size = batch.requests.len();
        let mut best = idle[0];
        let mut best_cost = u64::MAX;
        for &a in idle {
            let cost = self.oracle.request_cycles(a, batch.net, size)?;
            if cost < best_cost {
                best_cost = cost;
                best = a;
            }
        }
        self.launch(best, batch, best_cost, now, false);
        Ok(())
    }

    fn dispatch_whole(&mut self, now: u64) -> Result<(), ServeError> {
        loop {
            let idle: Vec<usize> = (0..self.arrays.len())
                .filter(|&a| !self.arrays[a].busy)
                .collect();
            if idle.is_empty() {
                break;
            }
            // The high-priority lane outranks preempted work: when an
            // eviction frees an array, the triggering request must take
            // it, not the victim it just displaced.
            self.tick_depth(now);
            if let Some(batch) = self.queue.pop_high() {
                self.note_depth(now);
                self.launch_cheapest(&idle, batch, now)?;
                continue;
            }
            if let Some(mut job) = self.resume.pop_front() {
                // Remaining cycles were measured on the victim array;
                // re-running them anywhere at face value idealises the
                // resume (fold-granularity approximation).
                job.batch.phase.queue_wait += now.saturating_sub(job.evicted_at);
                self.launch(idle[0], job.batch, job.remaining, now, true);
                continue;
            }
            let Some(batch) = self.queue.pop_batch(now) else {
                self.note_depth(now);
                break;
            };
            self.note_depth(now);
            self.launch_cheapest(&idle, batch, now)?;
        }
        self.schedule_deadline(now, !self.arrays.iter().all(|a| a.busy));
        Ok(())
    }

    fn dispatch_sharded(&mut self, now: u64) -> Result<(), ServeError> {
        if self.pod_running.is_none() {
            self.tick_depth(now);
            let popped = self.queue.pop_batch(now);
            self.note_depth(now);
            if let Some(mut batch) = popped {
                batch.phase.queue_wait += now.saturating_sub(batch.phase.formed_at);
                let plan = self.oracle.shard_plan(batch.net, batch.requests.len())?;
                let label = self.batch_label(&batch);
                // The critical array (largest share) carries the
                // request count so per-array sums stay accountable.
                let critical = plan
                    .shares
                    .iter()
                    .enumerate()
                    .max_by_key(|&(i, &s)| (s, std::cmp::Reverse(i)))
                    .map(|(i, _)| i)
                    .unwrap_or(0);
                // Credited outside the share==0 skip so the per-array
                // requests == completed invariant holds even for an
                // all-zero shard plan.
                self.arrays[critical].requests += batch.requests.len() as u64;
                for (a, &share) in plan.shares.iter().enumerate() {
                    if share == 0 {
                        continue;
                    }
                    let state = &mut self.arrays[a];
                    state.busy_cycles += share;
                    state.batches += 1;
                    if let Some(trace) = self.trace.as_deref_mut() {
                        trace.batch_span(a, now, now + share, &label);
                    }
                    if let Some(ts) = self.ts.as_mut() {
                        ts.busy(a, now, now + share);
                    }
                }
                self.batches += 1;
                let done = now.saturating_add(plan.makespan.max(1));
                self.pod_running = Some((batch, now, done));
                self.push_event(done, EvKind::PodDone);
                return Ok(());
            }
        }
        self.schedule_deadline(now, self.pod_running.is_none());
        Ok(())
    }

    /// Books a wake-up at the queue's next batching deadline, but only
    /// while capacity sits idle (a busy pod re-dispatches on its own
    /// completion events).
    fn schedule_deadline(&mut self, now: u64, capacity_idle: bool) {
        if !capacity_idle || self.queue.is_empty() {
            return;
        }
        if let Some(d) = self.queue.next_deadline() {
            let at = d.max(now + 1);
            let stale = match self.deadline_scheduled {
                None => true,
                Some(s) => at < s || s <= now,
            };
            if stale {
                self.deadline_scheduled = Some(at);
                self.push_event(at, EvKind::Deadline);
            }
        }
    }

    fn dispatch(&mut self, now: u64) -> Result<(), ServeError> {
        match self.cfg.dispatch {
            Dispatch::Whole => self.dispatch_whole(now),
            Dispatch::Sharded => self.dispatch_sharded(now),
        }
    }
}

/// Runs one pod simulation to completion and returns its report.
///
/// Deterministic: the report's `results_fnv1a64` is a pure function of
/// `(pod, workload, cfg)`. Pass a [`PodTraceSink`] to also collect a
/// Chrome trace of the schedule.
///
/// # Errors
///
/// Returns [`ServeError::Config`] for inconsistent configurations
/// (zero requests, non-positive load, preemption under sharded
/// dispatch) and propagates oracle errors for ops the latency model
/// rejects.
pub fn simulate(
    pod: &PodSpec,
    workload: &Workload,
    cfg: &ServeConfig,
    trace: Option<&mut PodTraceSink>,
) -> Result<ServeReport, ServeError> {
    simulate_observed(pod, workload, cfg, trace, None).map(|(report, _)| report)
}

/// Runs one pod simulation like [`simulate`], optionally recording a
/// windowed [`TimeSeriesReport`] alongside the aggregate report.
///
/// With `timeseries` set, the engine additionally streams arrivals,
/// completions, queue-depth intervals and per-array busy segments into
/// a [`TimeSeriesRecorder`]; the returned report carries per-window
/// counters, burn-rate alerts and tail exemplars whose phase cycles
/// sum exactly to each request's end-to-end latency. Recording is
/// deterministic: the time-series `results_fnv1a64` is a pure function
/// of `(pod, workload, cfg, timeseries)`.
///
/// # Errors
///
/// Everything [`simulate`] rejects, plus [`ServeError::Config`] for an
/// invalid [`TimeSeriesConfig`].
pub fn simulate_observed(
    pod: &PodSpec,
    workload: &Workload,
    cfg: &ServeConfig,
    trace: Option<&mut PodTraceSink>,
    timeseries: Option<&TimeSeriesConfig>,
) -> Result<(ServeReport, Option<TimeSeriesReport>), ServeError> {
    let _span = fuseconv_telemetry::span("serve.simulate");
    if let Some(ts_cfg) = timeseries {
        ts_cfg.validate()?;
    }
    if cfg.requests == 0 {
        return Err(ServeError::Config(
            "requests must be at least 1".to_string(),
        ));
    }
    if !(cfg.load.is_finite() && cfg.load > 0.0) {
        return Err(ServeError::Config(format!(
            "load must be finite and positive, got {}",
            cfg.load
        )));
    }
    if cfg.preemption && cfg.dispatch == Dispatch::Sharded {
        return Err(ServeError::Config(
            "preemption requires whole-request dispatch".to_string(),
        ));
    }
    if cfg.shape_buckets.is_some() && !matches!(cfg.policy, BatchPolicy::Bucketed { .. }) {
        return Err(ServeError::Config(
            "shape buckets require the bucketed batching policy".to_string(),
        ));
    }
    let models = pod.models()?;
    let mut oracle = CostOracle::new(models, workload.networks());
    let n_nets = workload.len();

    // SLO targets: the absolute budget when configured, otherwise
    // slo_multiplier × best isolated batch-1 latency.
    let mut slo_target = Vec::with_capacity(n_nets);
    for net in 0..n_nets {
        let best = oracle.best_cycles(net)? as f64;
        slo_target.push(match cfg.slo_budget_cycles {
            Some(budget) => budget,
            None => (best * cfg.slo_multiplier.max(1.0)).round() as u64,
        });
    }

    // Pod capacity estimate (requests/cycle) calibrates offered load;
    // the same oracle formula backs the analyzer's SRV001 ρ, so the
    // static and simulated offered loads agree by construction.
    let capacity = oracle.pod_capacity(&workload.mix_fractions(), cfg.dispatch)?;
    let mean_gap = 1.0 / (cfg.load * capacity);

    // Automatic window sizing targets the *expected* makespan (the
    // arrival span at the offered rate); an overloaded run simply
    // grows extra windows past the target count.
    let expected_makespan = (cfg.requests as f64 * mean_gap).ceil().max(1.0) as u64;
    let recorder =
        timeseries.map(|c| TimeSeriesRecorder::new(c, expected_makespan, pod.len(), n_nets));

    let covered = cfg.shape_buckets.map_or(n_nets, |k| k.min(n_nets));

    let mut engine = Engine {
        pod,
        cfg,
        oracle,
        queue: RequestQueue::new(cfg.policy, cfg.queue_capacity, n_nets)
            .with_covered_buckets(covered),
        heap: BinaryHeap::new(),
        seq: 0,
        arrays: (0..pod.len()).map(|_| ArrayState::default()).collect(),
        resume: VecDeque::new(),
        pod_running: None,
        traffic: TrafficGen::new(cfg.seed, mean_gap, workload, cfg.high_priority_frac),
        emitted: 0,
        next_id: 0,
        net_names: workload
            .networks()
            .iter()
            .map(|n| n.name().to_string())
            .collect(),
        slo_target,
        latencies: Vec::with_capacity(cfg.requests.min(2_000_000) as usize),
        high_latencies: Vec::new(),
        net_completed: vec![0; n_nets],
        net_slo_met: vec![0; n_nets],
        offered: 0,
        dropped: 0,
        batches: 0,
        preemptions: 0,
        events: 0,
        makespan: 0,
        depth_area: 0,
        depth_last_t: 0,
        max_depth: 0,
        deadline_scheduled: None,
        trace,
        ts: recorder,
    };

    let first = engine.traffic.next_after(0);
    engine.emitted = 1;
    engine.push_event(
        first.at,
        EvKind::Arrival {
            net: first.net,
            high: first.high_priority,
        },
    );

    while let Some(Reverse((now, _seq, kind))) = engine.heap.pop() {
        engine.events += 1;
        engine.makespan = engine.makespan.max(now);
        match kind {
            EvKind::Arrival { net, high } => {
                engine.offered += 1;
                let pending = Pending {
                    id: engine.next_id,
                    net,
                    arrived: now,
                    high_priority: high,
                };
                engine.next_id += 1;
                engine.tick_depth(now);
                let admitted = engine.queue.push(pending);
                if !admitted {
                    engine.dropped += 1;
                }
                if let Some(ts) = engine.ts.as_mut() {
                    ts.offered(now);
                    if !admitted {
                        ts.dropped(now);
                    }
                }
                engine.note_depth(now);
                if engine.emitted < cfg.requests {
                    let next = engine.traffic.next_after(now);
                    engine.emitted += 1;
                    engine.push_event(
                        next.at,
                        EvKind::Arrival {
                            net: next.net,
                            high: next.high_priority,
                        },
                    );
                }
                // Only an admitted high-priority request may evict;
                // preempting for a dropped arrival is pure added work.
                if cfg.preemption && high && admitted {
                    engine.maybe_preempt(now, net)?;
                }
                engine.dispatch(now)?;
            }
            EvKind::ArrayDone { array, gen } => {
                if engine.arrays[array].gen != gen {
                    continue; // preempted; the batch re-runs via the resume queue
                }
                engine.complete(array, now);
                engine.dispatch(now)?;
            }
            EvKind::PodDone => {
                if let Some((mut batch, started, done)) = engine.pod_running.take() {
                    batch.phase.on_array += done.saturating_sub(started);
                    engine.record_completions(&batch, done);
                }
                engine.dispatch(now)?;
            }
            EvKind::Deadline => {
                if engine.deadline_scheduled == Some(now) {
                    engine.deadline_scheduled = None;
                }
                engine.dispatch(now)?;
            }
        }
    }
    engine.tick_depth(engine.makespan);

    let ts_report = engine.ts.take().map(|rec| {
        rec.finish(
            engine.makespan.max(1),
            pod.arrays.iter().map(|a| a.name()).collect(),
            engine.net_names.clone(),
            RunManifest::capture()
                .with_config(&format!(
                    "serve-timeseries pod={} policy={} dispatch={} load={} requests={}",
                    pod,
                    cfg.policy.name(),
                    cfg.dispatch.name(),
                    cfg.load,
                    cfg.requests
                ))
                .with_seed(cfg.seed),
        )
    });

    // Metrics: wired in bulk so the hot loop stays allocation-free.
    fuseconv_telemetry::counter("serve.requests_total").add(engine.offered);
    fuseconv_telemetry::counter("serve.completed_total").add(engine.latencies.len() as u64);
    fuseconv_telemetry::counter("serve.dropped_total").add(engine.dropped);
    fuseconv_telemetry::counter("serve.batches_total").add(engine.batches);
    fuseconv_telemetry::counter("serve.preemptions_total").add(engine.preemptions);
    fuseconv_telemetry::counter("serve.events_total").add(engine.events);
    fuseconv_telemetry::counter("serve.oracle_hits_total").add(engine.oracle.memo_hits());
    fuseconv_telemetry::counter("serve.oracle_misses_total").add(engine.oracle.memo_misses());
    let latency_hist = fuseconv_telemetry::histogram("serve.latency_cycles");
    for &l in &engine.latencies {
        latency_hist.record(l);
    }

    let makespan = engine.makespan.max(1);
    let completed = engine.latencies.len() as u64;
    let slo_met: u64 = engine.net_slo_met.iter().sum();
    let arrays = pod
        .arrays
        .iter()
        .zip(&engine.arrays)
        .map(|(spec, state)| ArrayReport {
            name: spec.name(),
            rows: spec.rows,
            cols: spec.cols,
            dataflow: spec.dataflow_name().to_string(),
            batches: state.batches,
            requests: state.requests,
            busy_cycles: state.busy_cycles,
            utilization: state.busy_cycles as f64 / makespan as f64,
        })
        .collect();
    let networks = (0..n_nets)
        .map(|net| NetworkReport {
            name: engine.net_names[net].clone(),
            weight: workload.weights()[net],
            completed: engine.net_completed[net],
            slo_target_cycles: engine.slo_target[net],
            slo_met: engine.net_slo_met[net],
        })
        .collect();
    let report = ServeReport {
        pod: pod.to_string(),
        policy: cfg.policy.name().to_string(),
        dispatch: cfg.dispatch.name().to_string(),
        preemption: cfg.preemption,
        seed: cfg.seed,
        load: cfg.load,
        queue_capacity: cfg.queue_capacity,
        slo_multiplier: cfg.slo_multiplier,
        offered: engine.offered,
        completed,
        dropped: engine.dropped,
        batches: engine.batches,
        preemptions: engine.preemptions,
        events: engine.events,
        makespan_cycles: engine.makespan,
        slo_met,
        high_priority_completed: engine.high_latencies.len() as u64,
        latency: LatencyStats::from_latencies(&engine.latencies),
        high_priority_latency: LatencyStats::from_latencies(&engine.high_latencies),
        queue: QueueStats {
            mean_depth: engine.depth_area as f64 / makespan as f64,
            max_depth: engine.max_depth,
        },
        offered_per_mcycle: engine.offered as f64 * 1e6 / makespan as f64,
        goodput_per_mcycle: slo_met as f64 * 1e6 / makespan as f64,
        arrays,
        networks,
        manifest: RunManifest::capture()
            .with_config(&format!(
                "serve pod={} policy={} dispatch={} load={} requests={}",
                pod,
                cfg.policy.name(),
                cfg.dispatch.name(),
                cfg.load,
                cfg.requests
            ))
            .with_seed(cfg.seed),
    };
    Ok((report, ts_report))
}

#[cfg(test)]
mod tests {
    use super::*;
    use fuseconv_models::zoo;

    fn tiny_workload() -> Workload {
        Workload::uniform(vec![zoo::mobilenet_v1(), zoo::mobilenet_v2()]).expect("mix")
    }

    fn base_cfg(requests: u64) -> ServeConfig {
        ServeConfig {
            requests,
            ..ServeConfig::new()
        }
    }

    #[test]
    fn conservation_every_offered_request_is_accounted() {
        let pod = PodSpec::parse("16x16:os,8x8:ws").expect("pod");
        let report = simulate(&pod, &tiny_workload(), &base_cfg(2000), None).expect("sim");
        assert_eq!(report.offered, 2000);
        assert_eq!(report.completed + report.dropped, report.offered);
        let per_array: u64 = report.arrays.iter().map(|a| a.requests).sum();
        assert_eq!(per_array, report.completed);
        let per_net: u64 = report.networks.iter().map(|n| n.completed).sum();
        assert_eq!(per_net, report.completed);
        assert!(report.latency.p50 <= report.latency.p99);
        assert!(report.latency.p99 <= report.latency.p999);
        assert!(report.latency.p999 <= report.latency.max);
    }

    #[test]
    fn same_seed_is_bit_for_bit_deterministic() {
        let pod = PodSpec::parse("16x16:os,8x8:is").expect("pod");
        let cfg = ServeConfig {
            policy: BatchPolicy::Dynamic {
                max_batch: 4,
                max_wait: 10_000,
            },
            ..base_cfg(3000)
        };
        let a = simulate(&pod, &tiny_workload(), &cfg, None).expect("sim");
        let b = simulate(&pod, &tiny_workload(), &cfg, None).expect("sim");
        // Reports differ only in the manifest's wall-clock fields; every
        // result field must match bit for bit.
        assert_eq!(a.results_hash(), b.results_hash());
        assert_eq!(a.latency, b.latency);
        assert_eq!(a.arrays, b.arrays);
        assert_eq!(a.networks, b.networks);
        assert_eq!(
            (a.offered, a.completed, a.dropped),
            (b.offered, b.completed, b.dropped)
        );
        assert_eq!(a.makespan_cycles, b.makespan_cycles);
        assert_eq!(a.events, b.events);
        let other = simulate(
            &pod,
            &tiny_workload(),
            &ServeConfig { seed: 43, ..cfg },
            None,
        )
        .expect("sim");
        assert_ne!(a.results_hash(), other.results_hash());
    }

    #[test]
    fn overload_bends_goodput_below_offered() {
        let pod = PodSpec::parse("8x8:os").expect("pod");
        let workload = Workload::uniform(vec![zoo::mobilenet_v1()]).expect("mix");
        let under = simulate(
            &pod,
            &workload,
            &ServeConfig {
                load: 0.3,
                ..base_cfg(1500)
            },
            None,
        )
        .expect("sim");
        let over = simulate(
            &pod,
            &workload,
            &ServeConfig {
                load: 3.0,
                queue_capacity: 256,
                ..base_cfg(1500)
            },
            None,
        )
        .expect("sim");
        assert!(under.dropped == 0, "light load drops nothing");
        assert!(
            over.dropped > 0,
            "3x overload with a bounded queue must shed requests"
        );
        assert!(over.latency.p99 > under.latency.p99);
        // Goodput saturates: far below what overload offers.
        assert!(over.goodput_per_mcycle < over.offered_per_mcycle * 0.7);
        assert!(over.queue.max_depth > under.queue.max_depth);
    }

    #[test]
    fn dynamic_batching_launches_multi_request_batches() {
        let pod = PodSpec::parse("16x16:os").expect("pod");
        let workload = Workload::uniform(vec![zoo::mobilenet_v1()]).expect("mix");
        let cfg = ServeConfig {
            policy: BatchPolicy::Dynamic {
                max_batch: 8,
                max_wait: 1_000_000,
            },
            load: 1.5,
            ..base_cfg(800)
        };
        let report = simulate(&pod, &workload, &cfg, None).expect("sim");
        assert!(
            report.batches < report.completed,
            "batching coalesces: {} batches for {} requests",
            report.batches,
            report.completed
        );
    }

    #[test]
    fn sharded_dispatch_uses_every_array() {
        let pod = PodSpec::parse("16x16:os,16x16:os").expect("pod");
        let workload = Workload::uniform(vec![zoo::mobilenet_v1()]).expect("mix");
        let cfg = ServeConfig {
            dispatch: Dispatch::Sharded,
            load: 0.5,
            ..base_cfg(500)
        };
        let report = simulate(&pod, &workload, &cfg, None).expect("sim");
        assert_eq!(report.completed + report.dropped, report.offered);
        for a in &report.arrays {
            assert!(
                a.busy_cycles > 0,
                "{} sat idle under sharded dispatch",
                a.name
            );
        }
        let per_array: u64 = report.arrays.iter().map(|a| a.requests).sum();
        assert_eq!(per_array, report.completed);
    }

    #[test]
    fn preemption_fires_under_pressure_and_keeps_accounting() {
        let pod = PodSpec::parse("8x8:os").expect("pod");
        let workload = Workload::uniform(vec![zoo::mobilenet_v1()]).expect("mix");
        let cfg = ServeConfig {
            preemption: true,
            high_priority_frac: 0.2,
            load: 1.2,
            ..base_cfg(600)
        };
        let report = simulate(&pod, &workload, &cfg, None).expect("sim");
        assert!(
            report.preemptions > 0,
            "overload + high-priority traffic preempts"
        );
        assert_eq!(report.completed + report.dropped, report.offered);
        // Preempted work still finishes: nothing is lost.
        let per_net: u64 = report.networks.iter().map(|n| n.completed).sum();
        assert_eq!(per_net, report.completed);
    }

    #[test]
    fn preemption_cuts_high_priority_latency() {
        let pod = PodSpec::parse("8x8:os").expect("pod");
        let workload = Workload::uniform(vec![zoo::mobilenet_v1()]).expect("mix");
        let base = ServeConfig {
            high_priority_frac: 0.2,
            load: 1.2,
            ..base_cfg(600)
        };
        let without = simulate(
            &pod,
            &workload,
            &ServeConfig {
                preemption: false,
                ..base.clone()
            },
            None,
        )
        .expect("sim");
        let with = simulate(
            &pod,
            &workload,
            &ServeConfig {
                preemption: true,
                ..base
            },
            None,
        )
        .expect("sim");
        assert!(with.preemptions > 0, "overload must trigger preemptions");
        assert!(without.high_priority_completed > 0);
        assert!(with.high_priority_completed > 0);
        // The point of preemption: the high-priority tail gets shorter,
        // not just "preemptions happened".
        assert!(
            with.high_priority_latency.mean < without.high_priority_latency.mean,
            "preemption must cut mean high-priority latency: {} !< {}",
            with.high_priority_latency.mean,
            without.high_priority_latency.mean
        );
        assert!(
            with.high_priority_latency.p99 <= without.high_priority_latency.p99,
            "preemption must not lengthen the high-priority p99: {} > {}",
            with.high_priority_latency.p99,
            without.high_priority_latency.p99
        );
    }

    #[test]
    fn slo_budget_overrides_the_relative_multiplier() {
        let pod = PodSpec::parse("16x16:os").expect("pod");
        let workload = Workload::uniform(vec![zoo::mobilenet_v1()]).expect("mix");
        // A 1-cycle budget is below any network's zero-queueing floor:
        // every completion misses its SLO even at trivial load.
        let strangled = simulate(
            &pod,
            &workload,
            &ServeConfig {
                slo_budget_cycles: Some(1),
                load: 0.1,
                ..base_cfg(300)
            },
            None,
        )
        .expect("sim");
        assert_eq!(strangled.slo_met, 0);
        assert_eq!(strangled.networks[0].slo_target_cycles, 1);
        // A generous absolute budget behaves like the default.
        let roomy = simulate(
            &pod,
            &workload,
            &ServeConfig {
                slo_budget_cycles: Some(u64::MAX / 2),
                load: 0.1,
                ..base_cfg(300)
            },
            None,
        )
        .expect("sim");
        assert_eq!(roomy.slo_met, roomy.completed);
    }

    #[test]
    fn uncovered_shape_bucket_drops_that_networks_requests() {
        let pod = PodSpec::parse("16x16:os").expect("pod");
        let cfg = ServeConfig {
            policy: BatchPolicy::Bucketed {
                max_batch: 4,
                max_wait: 10_000,
            },
            shape_buckets: Some(1),
            ..base_cfg(800)
        };
        let report = simulate(&pod, &tiny_workload(), &cfg, None).expect("sim");
        assert_eq!(
            report.networks[1].completed, 0,
            "network without a bucket never completes"
        );
        assert!(report.networks[0].completed > 0);
        assert!(report.dropped > 0);
        assert_eq!(report.completed + report.dropped, report.offered);
    }

    #[test]
    fn shape_buckets_require_the_bucketed_policy() {
        let pod = PodSpec::parse("8x8:os").expect("pod");
        assert!(matches!(
            simulate(
                &pod,
                &tiny_workload(),
                &ServeConfig {
                    shape_buckets: Some(1),
                    ..base_cfg(10)
                },
                None
            ),
            Err(ServeError::Config(_))
        ));
    }

    #[test]
    fn config_validation_rejects_nonsense() {
        let pod = PodSpec::parse("8x8:os").expect("pod");
        let w = tiny_workload();
        assert!(matches!(
            simulate(&pod, &w, &base_cfg(0), None),
            Err(ServeError::Config(_))
        ));
        assert!(matches!(
            simulate(
                &pod,
                &w,
                &ServeConfig {
                    load: 0.0,
                    ..base_cfg(10)
                },
                None
            ),
            Err(ServeError::Config(_))
        ));
        assert!(matches!(
            simulate(
                &pod,
                &w,
                &ServeConfig {
                    preemption: true,
                    dispatch: Dispatch::Sharded,
                    ..base_cfg(10)
                },
                None
            ),
            Err(ServeError::Config(_))
        ));
    }

    #[test]
    fn observed_windows_sum_to_the_aggregate_report() {
        let pod = PodSpec::parse("16x16:os,8x8:ws").expect("pod");
        let cfg = ServeConfig {
            preemption: true,
            high_priority_frac: 0.1,
            load: 1.2,
            policy: BatchPolicy::Dynamic {
                max_batch: 4,
                max_wait: 5_000,
            },
            ..base_cfg(2000)
        };
        let (report, ts) = simulate_observed(
            &pod,
            &tiny_workload(),
            &cfg,
            None,
            Some(&TimeSeriesConfig::new()),
        )
        .expect("sim");
        let ts = ts.expect("timeseries requested");
        let sum = |f: fn(&crate::timeseries::WindowReport) -> u64| -> u64 {
            ts.windows.iter().map(f).sum()
        };
        assert_eq!(sum(|w| w.offered), report.offered);
        assert_eq!(sum(|w| w.completed), report.completed);
        assert_eq!(sum(|w| w.dropped), report.dropped);
        assert_eq!(sum(|w| w.slo_met), report.slo_met);
        assert_eq!(ts.total.count, report.completed);
        assert_eq!(ts.total.max, report.latency.max);
        // Busy fractions stay physical even under preemption.
        for w in &ts.windows {
            for &f in &w.busy_frac {
                assert!((0.0..=1.0).contains(&f), "busy fraction {f} out of range");
            }
        }
        // The debug phase-invariant assertion ran for every completion
        // (this test compiles with debug assertions in `cargo test`);
        // exemplars expose the same breakdown for the worst requests.
        for e in &ts.exemplars {
            assert_eq!(
                e.form_wait + e.queue_wait + e.compute + e.refill,
                e.latency,
                "exemplar {} phases must sum to latency",
                e.id
            );
        }
    }

    #[test]
    fn observed_run_is_deterministic_and_free_of_drift() {
        let pod = PodSpec::parse("8x8:os").expect("pod");
        let workload = Workload::uniform(vec![zoo::mobilenet_v1()]).expect("mix");
        let cfg = ServeConfig {
            load: 2.0,
            queue_capacity: 128,
            ..base_cfg(1200)
        };
        let ts_cfg = TimeSeriesConfig::new();
        let run = |seed: u64| {
            let cfg = ServeConfig {
                seed,
                ..cfg.clone()
            };
            simulate_observed(&pod, &workload, &cfg, None, Some(&ts_cfg)).expect("sim")
        };
        let (ra, ta) = run(42);
        let (rb, tb) = run(42);
        let (ta, tb) = (ta.expect("ts"), tb.expect("ts"));
        assert_eq!(ta.results_hash(), tb.results_hash());
        assert_eq!(ra.results_hash(), rb.results_hash());
        assert_ne!(ta.results_hash(), run(7).1.expect("ts").results_hash());
        // Overload against a bounded queue must raise burn alerts.
        assert!(
            !ta.alerts.is_empty(),
            "2x overload should burn the SLO error budget"
        );
    }

    #[test]
    fn observed_sharded_dispatch_keeps_phase_accounting() {
        let pod = PodSpec::parse("16x16:os,16x16:os").expect("pod");
        let workload = Workload::uniform(vec![zoo::mobilenet_v1()]).expect("mix");
        let cfg = ServeConfig {
            dispatch: Dispatch::Sharded,
            load: 0.7,
            ..base_cfg(400)
        };
        let (report, ts) =
            simulate_observed(&pod, &workload, &cfg, None, Some(&TimeSeriesConfig::new()))
                .expect("sim");
        let ts = ts.expect("ts");
        assert_eq!(
            ts.windows.iter().map(|w| w.completed).sum::<u64>(),
            report.completed
        );
        for e in &ts.exemplars {
            assert_eq!(e.form_wait + e.queue_wait + e.compute + e.refill, e.latency);
            assert_eq!(e.refill, 0, "sharded dispatch never preempts");
        }
    }

    #[test]
    fn observed_rejects_invalid_timeseries_config() {
        let pod = PodSpec::parse("8x8:os").expect("pod");
        let bad = TimeSeriesConfig {
            window_cycles: Some(0),
            ..TimeSeriesConfig::new()
        };
        assert!(matches!(
            simulate_observed(&pod, &tiny_workload(), &base_cfg(10), None, Some(&bad)),
            Err(ServeError::Config(_))
        ));
    }

    #[test]
    fn trace_sink_collects_pod_lanes() {
        let pod = PodSpec::parse("16x16:os,8x8:ws").expect("pod");
        let mut sink = PodTraceSink::new(&pod);
        let report =
            simulate(&pod, &tiny_workload(), &base_cfg(200), Some(&mut sink)).expect("sim");
        assert!(sink.event_count() > 0);
        let json = sink.into_json();
        assert!(json.contains("array 0: 16x16:os"));
        assert!(json.contains("queue_depth"));
        assert!(report.completed > 0);
    }
}

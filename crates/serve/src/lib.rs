//! Deterministic discrete-event serving simulator for pods of
//! heterogeneous systolic arrays.
//!
//! The rest of the workspace models **one** inference on **one** array;
//! this crate takes the same analytic cost oracle
//! ([`fuseconv_latency::LatencyModel`]) and scales it to a *pod*: N
//! arrays of mixed dimensions and dataflows behind a request queue fed
//! by open-loop Poisson-ish traffic. Everything is hand-rolled and
//! zero-dependency in the style of `fuseconv_tensor::rng` — no tokio,
//! no async: a [`std::collections::BinaryHeap`] of `(time, seq)`-keyed
//! events, a vendored xorshift PRNG for arrivals, and `u64` array
//! cycles for the clock — so a fixed seed reproduces a million-request
//! simulation bit for bit.
//!
//! The pieces:
//!
//! * [`spec`] — pod description (`"64x64:os,32x32:ws,8x8"`) parsed into
//!   per-array [`fuseconv_latency::LatencyModel`]s;
//! * [`oracle`] — memoised per-request cost (fold-plan totals, exact
//!   match with the cycle simulator under serial fold accounting) and
//!   LPT sharding of a network's ops across the pod;
//! * [`traffic`] — workload mix plus exponential inter-arrival
//!   sampling from the vendored PRNG;
//! * [`batch`] — pluggable batching policies: FIFO, dynamic batching
//!   with a max-wait, and shape-bucketed batching;
//! * [`engine`] — the event loop itself: dispatch, optional
//!   preemption, SLO accounting;
//! * [`report`] — the schema-pinned `fuseconv-serve-v1` JSON/text
//!   report with embedded run manifest and a `results_fnv1a64`
//!   determinism fingerprint;
//! * [`trace`] — Chrome-trace export with one lane per array (pid 0),
//!   composing with the host-span trace on pid 1;
//! * [`timeseries`] — streaming per-window observability
//!   (`fuseconv-serve-timeseries-v1`): offered/goodput/drops, queue
//!   depth, per-array utilization, latency quantile sketches,
//!   multi-window SLO burn-rate alerts and tail exemplars with exact
//!   per-request phase accounting.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod batch;
pub mod engine;
pub mod oracle;
pub mod report;
pub mod spec;
pub mod timeseries;
pub mod trace;
pub mod traffic;

pub use batch::BatchPolicy;
pub use engine::{simulate, simulate_observed, Dispatch, ServeConfig};
pub use oracle::{CostOracle, ShardPlan};
pub use report::ServeReport;
pub use spec::{ArraySpec, PodSpec, ServeError};
pub use timeseries::{TimeSeriesConfig, TimeSeriesReport, TIMESERIES_SCHEMA};
pub use trace::PodTraceSink;
pub use traffic::Workload;

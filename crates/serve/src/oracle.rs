//! Per-request cost oracle over the analytic latency model.
//!
//! Serving a million requests is only feasible because per-request cost
//! comes from [`LatencyModel::cycles`] — the closed form whose totals
//! equal the cycle simulator exactly under serial fold accounting (the
//! invariant `tests/serve_cross_check.rs` spot-checks). The oracle
//! memoises per `(array, network, batch)` triple, so steady-state
//! serving costs one `HashMap` probe per dispatch, and it precomputes
//! the LPT shard plan used by [`crate::engine::Dispatch::Sharded`].

use crate::engine::Dispatch;
use crate::spec::ServeError;
use fuseconv_latency::LatencyModel;
use fuseconv_models::Network;
use fuseconv_nn::ops::Op;
use std::collections::HashMap;

/// How a sharded request's ops spread across the pod.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardPlan {
    /// Cycles each array contributes (pod order); zero means the array
    /// sits out this request.
    pub shares: Vec<u64>,
    /// Target array of each op, in the network's op order — the shares
    /// above are exactly the per-array sums of op costs under this
    /// assignment, so an auditor can re-derive them independently.
    pub assignment: Vec<usize>,
    /// Completion time of the slowest share — the request's service
    /// latency under idealised concurrent execution.
    pub makespan: u64,
}

/// Memoising cost oracle: batch-aware per-request cycles and shard
/// plans for every (array, network) pair of the pod.
#[derive(Debug)]
pub struct CostOracle {
    models: Vec<LatencyModel>,
    ops: Vec<Vec<Op>>,
    cost_cache: HashMap<(usize, usize, usize), u64>,
    shard_cache: HashMap<(usize, usize), ShardPlan>,
    hits: u64,
    misses: u64,
}

impl CostOracle {
    /// Builds the oracle for `models` (pod order) over `networks`
    /// (workload order). Ops are flattened once; nothing is simulated.
    pub fn new(models: Vec<LatencyModel>, networks: &[Network]) -> Self {
        let ops = networks
            .iter()
            .map(|n| n.ops().into_iter().map(|named| named.op).collect())
            .collect();
        CostOracle {
            models,
            ops,
            cost_cache: HashMap::new(),
            shard_cache: HashMap::new(),
            hits: 0,
            misses: 0,
        }
    }

    /// Number of arrays the oracle knows about.
    pub fn arrays(&self) -> usize {
        self.models.len()
    }

    /// Number of networks the oracle knows about.
    pub fn networks(&self) -> usize {
        self.ops.len()
    }

    /// The latency model of one array, in pod order.
    pub fn model(&self, array: usize) -> Option<&LatencyModel> {
        self.models.get(array)
    }

    /// The flattened ops of one workload network.
    pub fn network_ops(&self, net: usize) -> Option<&[Op]> {
        self.ops.get(net).map(Vec::as_slice)
    }

    /// Memo probes answered from the cache (cost and shard lookups).
    pub fn memo_hits(&self) -> u64 {
        self.hits
    }

    /// Memo probes that had to price ops through the latency model.
    pub fn memo_misses(&self) -> u64 {
        self.misses
    }

    fn op_cycles(model: &LatencyModel, op: &Op) -> Result<u64, ServeError> {
        model.cycles(op).map_err(ServeError::Latency)
    }

    /// Whole-network cycles for one request batch of size `batch` of
    /// network `net` on array `array`: the sum of analytic op costs at
    /// that batch size (batching adds GEMM rows, so cost grows
    /// sub-linearly in `batch`). Memoised.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::Latency`] if the model rejects an op and
    /// [`ServeError::Config`] on out-of-range indices or overflow.
    pub fn request_cycles(
        &mut self,
        array: usize,
        net: usize,
        batch: usize,
    ) -> Result<u64, ServeError> {
        if let Some(&cycles) = self.cost_cache.get(&(array, net, batch)) {
            self.hits += 1;
            return Ok(cycles);
        }
        self.misses += 1;
        let model = self
            .models
            .get(array)
            .copied()
            .ok_or_else(|| ServeError::Config(format!("array index {array} out of range")))?
            .with_batch(batch.max(1));
        let ops = self
            .ops
            .get(net)
            .ok_or_else(|| ServeError::Config(format!("network index {net} out of range")))?;
        let mut total: u64 = 0;
        for op in ops {
            let c = Self::op_cycles(&model, op)?;
            total = total.checked_add(c).ok_or_else(|| {
                ServeError::Config("network cost overflows u64 cycles".to_string())
            })?;
        }
        self.cost_cache.insert((array, net, batch), total);
        Ok(total)
    }

    /// The cheapest batch-1 service time for `net` anywhere in the pod
    /// — the basis for SLO targets and offered-load calibration.
    ///
    /// # Errors
    ///
    /// Propagates [`Self::request_cycles`] errors.
    pub fn best_cycles(&mut self, net: usize) -> Result<u64, ServeError> {
        let mut best = u64::MAX;
        for array in 0..self.models.len() {
            best = best.min(self.request_cycles(array, net, 1)?);
        }
        Ok(best)
    }

    /// LPT shard plan for one batch of network `net` at size `batch`:
    /// ops are assigned greedily, longest first, to the array where
    /// they finish earliest (load + per-op cost on that array). This is
    /// the classic list-scheduling bound for unrelated machines; the
    /// resulting makespan idealises perfectly overlapped inter-array
    /// execution (no cross-array activation traffic is modelled).
    /// Memoised per `(net, batch)`.
    ///
    /// # Errors
    ///
    /// Propagates [`ServeError::Latency`] from op costing.
    pub fn shard_plan(&mut self, net: usize, batch: usize) -> Result<ShardPlan, ServeError> {
        let batch = batch.max(1);
        if let Some(plan) = self.shard_cache.get(&(net, batch)) {
            self.hits += 1;
            return Ok(plan.clone());
        }
        self.misses += 1;
        let ops = self
            .ops
            .get(net)
            .ok_or_else(|| ServeError::Config(format!("network index {net} out of range")))?
            .clone();
        // Cost table: per op, per array.
        let mut table: Vec<Vec<u64>> = Vec::with_capacity(ops.len());
        for op in &ops {
            let mut row = Vec::with_capacity(self.models.len());
            for model in &self.models {
                let m = (*model).with_batch(batch);
                row.push(Self::op_cycles(&m, op)?);
            }
            table.push(row);
        }
        // Longest processing time first, by each op's best-case cost;
        // ties break on op index so the plan is deterministic.
        let mut order: Vec<usize> = (0..ops.len()).collect();
        order.sort_by_key(|&i| {
            let best = table[i].iter().copied().min().unwrap_or(0);
            (std::cmp::Reverse(best), i)
        });
        let mut shares = vec![0u64; self.models.len()];
        let mut assignment = vec![0usize; ops.len()];
        for &i in &order {
            let mut best_array = 0usize;
            let mut best_finish = u64::MAX;
            for (a, &cost) in table[i].iter().enumerate() {
                let finish = shares[a].saturating_add(cost);
                if finish < best_finish {
                    best_finish = finish;
                    best_array = a;
                }
            }
            shares[best_array] = best_finish;
            assignment[i] = best_array;
        }
        let makespan = shares.iter().copied().max().unwrap_or(0);
        let plan = ShardPlan {
            shares,
            assignment,
            makespan,
        };
        self.shard_cache.insert((net, batch), plan.clone());
        Ok(plan)
    }

    /// Estimated pod throughput in requests per cycle for a workload
    /// mix of per-network fractions `mix_frac` (must sum to 1) under
    /// `dispatch` — the denominator of the offered-load ratio ρ.
    ///
    /// Whole dispatch sums each array's independent service rate
    /// `1 / E[batch-1 cost]`; sharded dispatch serves one request at a
    /// time pod-wide, so capacity is the reciprocal of the mean LPT
    /// makespan. [`crate::engine::simulate`] calibrates its arrival
    /// rate as `load × capacity` from this same estimate, so a
    /// statically-computed ρ and the simulated offered load agree by
    /// construction.
    ///
    /// # Errors
    ///
    /// Propagates pricing errors from [`Self::request_cycles`] /
    /// [`Self::shard_plan`].
    pub fn pod_capacity(
        &mut self,
        mix_frac: &[f64],
        dispatch: Dispatch,
    ) -> Result<f64, ServeError> {
        match dispatch {
            Dispatch::Whole => {
                let mut total = 0.0;
                for a in 0..self.models.len() {
                    let mut mean = 0.0;
                    for (net, &frac) in mix_frac.iter().enumerate() {
                        mean += frac * self.request_cycles(a, net, 1)? as f64;
                    }
                    total += 1.0 / mean;
                }
                Ok(total)
            }
            Dispatch::Sharded => {
                let mut mean = 0.0;
                for (net, &frac) in mix_frac.iter().enumerate() {
                    mean += frac * self.shard_plan(net, 1)?.makespan as f64;
                }
                Ok(1.0 / mean)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::PodSpec;
    use fuseconv_models::zoo;

    fn oracle() -> CostOracle {
        let pod = PodSpec::parse("16x16:os,8x8:ws").expect("valid pod");
        let nets = vec![zoo::mobilenet_v1()];
        CostOracle::new(pod.models().expect("models"), &nets)
    }

    #[test]
    fn request_cost_is_sum_of_op_costs_and_memoised() {
        let mut o = oracle();
        let first = o.request_cycles(0, 0, 1).expect("cost");
        let again = o.request_cycles(0, 0, 1).expect("cost");
        assert_eq!(first, again);
        assert!(first > 0);
        // A second copy via the model directly must agree.
        let model = PodSpec::parse("16x16:os").unwrap().models().unwrap()[0];
        let by_hand: u64 = zoo::mobilenet_v1()
            .ops()
            .iter()
            .map(|n| model.cycles(&n.op).expect("op cost"))
            .sum();
        assert_eq!(first, by_hand);
    }

    #[test]
    fn batching_is_sublinear() {
        let mut o = oracle();
        let one = o.request_cycles(0, 0, 1).expect("cost");
        let four = o.request_cycles(0, 0, 4).expect("cost");
        assert!(four > one, "batch 4 costs more than batch 1 in total");
        assert!(four < 4 * one, "but less than 4 independent requests");
    }

    #[test]
    fn shard_plan_covers_all_ops_and_bounds_makespan() {
        let mut o = oracle();
        let plan = o.shard_plan(0, 1).expect("plan");
        assert_eq!(plan.shares.len(), 2);
        assert_eq!(plan.makespan, *plan.shares.iter().max().unwrap());
        // Sharding across two arrays cannot be slower than serialising
        // everything on the best single array.
        let best = o.best_cycles(0).expect("best");
        assert!(plan.makespan <= best);
        // And the plan must be deterministic.
        assert_eq!(plan, o.shard_plan(0, 1).expect("plan"));
    }

    #[test]
    fn shard_assignment_rederives_shares_and_makespan() {
        let mut o = oracle();
        let plan = o.shard_plan(0, 1).expect("plan");
        let ops: Vec<_> = zoo::mobilenet_v1()
            .ops()
            .into_iter()
            .map(|n| n.op)
            .collect();
        assert_eq!(plan.assignment.len(), ops.len());
        let models = PodSpec::parse("16x16:os,8x8:ws").unwrap().models().unwrap();
        let mut shares = vec![0u64; models.len()];
        for (op, &a) in ops.iter().zip(&plan.assignment) {
            shares[a] += models[a].cycles(op).expect("op cost");
        }
        assert_eq!(shares, plan.shares);
        assert_eq!(plan.makespan, *shares.iter().max().unwrap());
    }

    #[test]
    fn memo_counters_track_hits_and_misses() {
        let mut o = oracle();
        assert_eq!((o.memo_hits(), o.memo_misses()), (0, 0));
        let cold = o.request_cycles(0, 0, 1).expect("cost");
        assert_eq!((o.memo_hits(), o.memo_misses()), (0, 1));
        let warm = o.request_cycles(0, 0, 1).expect("cost");
        assert_eq!((o.memo_hits(), o.memo_misses()), (1, 1));
        assert_eq!(cold, warm, "memoised price must equal the cold price");
        o.shard_plan(0, 1).expect("plan");
        o.shard_plan(0, 1).expect("plan");
        assert_eq!((o.memo_hits(), o.memo_misses()), (2, 2));
    }

    #[test]
    fn capacity_matches_the_hand_formula() {
        let mut o = oracle();
        let whole = o.pod_capacity(&[1.0], Dispatch::Whole).expect("capacity");
        let c0 = o.request_cycles(0, 0, 1).unwrap() as f64;
        let c1 = o.request_cycles(1, 0, 1).unwrap() as f64;
        assert!((whole - (1.0 / c0 + 1.0 / c1)).abs() < 1e-15);
        let sharded = o.pod_capacity(&[1.0], Dispatch::Sharded).expect("capacity");
        let makespan = o.shard_plan(0, 1).unwrap().makespan as f64;
        assert!((sharded - 1.0 / makespan).abs() < 1e-15);
        assert!(whole > 0.0 && sharded > 0.0);
    }

    #[test]
    fn out_of_range_indices_are_config_errors() {
        let mut o = oracle();
        assert!(matches!(
            o.request_cycles(9, 0, 1),
            Err(ServeError::Config(_))
        ));
        assert!(matches!(
            o.request_cycles(0, 9, 1),
            Err(ServeError::Config(_))
        ));
    }
}

//! The `fuseconv-serve-v1` serving report: SLO accounting, per-array
//! utilization and a determinism fingerprint.
//!
//! Percentiles are exact (nearest-rank over every recorded latency,
//! not histogram bounds). The JSON rendering embeds the run manifest
//! and a `results_fnv1a64` hash of every deterministic field, so two
//! runs with the same seed can be compared by one line of `grep` even
//! though manifests differ in wall-clock fields. Schema pinned by
//! `tests/serve_schema.rs`.

use fuseconv_telemetry::{fnv1a64, RunManifest};
use std::fmt::Write as _;

/// Escapes a string for inclusion in a JSON string literal.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Nearest-rank percentile of an ascending-sorted slice, `q` in
/// per-mille (500 = p50, 999 = p99.9). Returns 0 for empty input.
pub fn percentile(sorted: &[u64], q_permille: u64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let n = sorted.len() as u64;
    // Nearest-rank: smallest index whose rank covers q per-mille.
    let rank = (n * q_permille).div_ceil(1000).max(1);
    sorted[(rank - 1).min(n - 1) as usize]
}

/// End-to-end request latency distribution, cycles.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LatencyStats {
    /// Mean latency.
    pub mean: f64,
    /// Median (nearest rank).
    pub p50: u64,
    /// 99th percentile.
    pub p99: u64,
    /// 99.9th percentile.
    pub p999: u64,
    /// Worst observed latency.
    pub max: u64,
}

impl LatencyStats {
    /// Computes the distribution from every completed request's
    /// latency: exact nearest-rank percentiles via
    /// `select_nth_unstable` on one scratch copy — O(n) expected
    /// instead of the O(n log n) full sort the report used to pay
    /// twice (normal + high-priority lane) per million-request run.
    /// Bit-identical to sorting and calling [`percentile`].
    pub fn from_latencies(latencies: &[u64]) -> Self {
        if latencies.is_empty() {
            return LatencyStats {
                mean: 0.0,
                p50: 0,
                p99: 0,
                p999: 0,
                max: 0,
            };
        }
        let n = latencies.len();
        let sum: u128 = latencies.iter().map(|&l| l as u128).sum();
        // Nearest-rank index for q per-mille, matching `percentile`.
        let idx =
            |q: u64| -> usize { (((n as u64 * q).div_ceil(1000).max(1) - 1) as usize).min(n - 1) };
        let mut scratch = latencies.to_vec();
        let targets = [idx(500), idx(990), idx(999)];
        let mut stats = [0u64; 3];
        // The targets ascend, so each selection partitions only the
        // right remainder of the previous one.
        let mut rest: &mut [u64] = &mut scratch;
        let mut base = 0usize;
        let mut prev: Option<(usize, u64)> = None;
        for (k, &t) in targets.iter().enumerate() {
            if let Some((pt, pv)) = prev {
                if pt == t {
                    stats[k] = pv;
                    continue;
                }
            }
            let taken = std::mem::take(&mut rest);
            let (_, &mut v, right) = taken.select_nth_unstable(t - base);
            stats[k] = v;
            prev = Some((t, v));
            rest = right;
            base = t + 1;
        }
        LatencyStats {
            mean: sum as f64 / n as f64,
            p50: stats[0],
            p99: stats[1],
            p999: stats[2],
            max: latencies.iter().copied().max().unwrap_or(0),
        }
    }
}

/// Per-array serving outcome.
#[derive(Debug, Clone, PartialEq)]
pub struct ArrayReport {
    /// Array name (`64x64:os`).
    pub name: String,
    /// Array rows.
    pub rows: usize,
    /// Array columns.
    pub cols: usize,
    /// Dataflow short name.
    pub dataflow: String,
    /// Batches the array executed.
    pub batches: u64,
    /// Requests the array completed (batch members).
    pub requests: u64,
    /// Cycles the array spent busy.
    pub busy_cycles: u64,
    /// Busy fraction of the simulated makespan.
    pub utilization: f64,
}

/// Per-network serving outcome.
#[derive(Debug, Clone, PartialEq)]
pub struct NetworkReport {
    /// Network name.
    pub name: String,
    /// Relative traffic weight.
    pub weight: u64,
    /// Requests of this network completed.
    pub completed: u64,
    /// SLO target, cycles (`slo_multiplier` × best isolated batch-1
    /// service time anywhere in the pod).
    pub slo_target_cycles: u64,
    /// Completions within the SLO target.
    pub slo_met: u64,
}

/// Queue-depth statistics over the simulation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QueueStats {
    /// Time-weighted mean depth.
    pub mean_depth: f64,
    /// Peak depth.
    pub max_depth: u64,
}

/// The complete outcome of one pod simulation (schema
/// `fuseconv-serve-v1`).
#[derive(Debug, Clone, PartialEq)]
pub struct ServeReport {
    /// Pod description string (`64x64:os,32x32:ws`).
    pub pod: String,
    /// Batching policy short name.
    pub policy: String,
    /// Dispatch mode (`whole` / `sharded`).
    pub dispatch: String,
    /// Whether preemption was enabled.
    pub preemption: bool,
    /// PRNG seed.
    pub seed: u64,
    /// Offered load as a fraction of estimated pod capacity.
    pub load: f64,
    /// Queue admission bound.
    pub queue_capacity: usize,
    /// SLO target multiplier over isolated batch-1 service time.
    pub slo_multiplier: f64,
    /// Requests generated (offered).
    pub offered: u64,
    /// Requests completed.
    pub completed: u64,
    /// Requests rejected at admission.
    pub dropped: u64,
    /// Batches launched.
    pub batches: u64,
    /// Preemptions performed.
    pub preemptions: u64,
    /// Discrete events processed.
    pub events: u64,
    /// Last event time, cycles.
    pub makespan_cycles: u64,
    /// Completions within their network's SLO target.
    pub slo_met: u64,
    /// High-priority requests completed (members of `completed`).
    pub high_priority_completed: u64,
    /// Latency distribution over completed requests.
    pub latency: LatencyStats,
    /// Latency distribution over the high-priority subset (all zeros
    /// when no high-priority traffic completed). Preemption exists to
    /// bend exactly these percentiles down.
    pub high_priority_latency: LatencyStats,
    /// Queue-depth statistics.
    pub queue: QueueStats,
    /// Offered request rate, requests per million cycles.
    pub offered_per_mcycle: f64,
    /// SLO-met completion rate, requests per million cycles.
    pub goodput_per_mcycle: f64,
    /// Per-array outcomes, pod order.
    pub arrays: Vec<ArrayReport>,
    /// Per-network outcomes, workload order.
    pub networks: Vec<NetworkReport>,
    /// Run provenance embedded in the JSON rendering.
    pub manifest: RunManifest,
}

impl ServeReport {
    /// Renders every deterministic field (everything except the
    /// manifest) — the byte stream behind [`Self::results_hash`].
    fn results_body(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "  \"schema\": \"fuseconv-serve-v1\",");
        let _ = writeln!(out, "  \"config\": {{");
        let _ = writeln!(out, "    \"pod\": \"{}\",", json_escape(&self.pod));
        let _ = writeln!(out, "    \"policy\": \"{}\",", json_escape(&self.policy));
        let _ = writeln!(
            out,
            "    \"dispatch\": \"{}\",",
            json_escape(&self.dispatch)
        );
        let _ = writeln!(out, "    \"preemption\": {},", self.preemption);
        let _ = writeln!(out, "    \"seed\": {},", self.seed);
        let _ = writeln!(out, "    \"load\": {:.6},", self.load);
        let _ = writeln!(out, "    \"queue_capacity\": {},", self.queue_capacity);
        let _ = writeln!(out, "    \"slo_multiplier\": {:.6}", self.slo_multiplier);
        let _ = writeln!(out, "  }},");
        let _ = writeln!(out, "  \"totals\": {{");
        let _ = writeln!(out, "    \"offered\": {},", self.offered);
        let _ = writeln!(out, "    \"completed\": {},", self.completed);
        let _ = writeln!(out, "    \"dropped\": {},", self.dropped);
        let _ = writeln!(out, "    \"batches\": {},", self.batches);
        let _ = writeln!(out, "    \"preemptions\": {},", self.preemptions);
        let _ = writeln!(out, "    \"events\": {},", self.events);
        let _ = writeln!(out, "    \"makespan_cycles\": {},", self.makespan_cycles);
        let _ = writeln!(out, "    \"slo_met\": {},", self.slo_met);
        let _ = writeln!(
            out,
            "    \"high_priority_completed\": {}",
            self.high_priority_completed
        );
        let _ = writeln!(out, "  }},");
        let _ = writeln!(out, "  \"latency_cycles\": {{");
        let _ = writeln!(out, "    \"mean\": {:.3},", self.latency.mean);
        let _ = writeln!(out, "    \"p50\": {},", self.latency.p50);
        let _ = writeln!(out, "    \"p99\": {},", self.latency.p99);
        let _ = writeln!(out, "    \"p999\": {},", self.latency.p999);
        let _ = writeln!(out, "    \"max\": {}", self.latency.max);
        let _ = writeln!(out, "  }},");
        let _ = writeln!(out, "  \"high_priority_latency_cycles\": {{");
        let _ = writeln!(out, "    \"mean\": {:.3},", self.high_priority_latency.mean);
        let _ = writeln!(out, "    \"p50\": {},", self.high_priority_latency.p50);
        let _ = writeln!(out, "    \"p99\": {},", self.high_priority_latency.p99);
        let _ = writeln!(out, "    \"p999\": {},", self.high_priority_latency.p999);
        let _ = writeln!(out, "    \"max\": {}", self.high_priority_latency.max);
        let _ = writeln!(out, "  }},");
        let _ = writeln!(out, "  \"queue_depth\": {{");
        let _ = writeln!(out, "    \"mean\": {:.3},", self.queue.mean_depth);
        let _ = writeln!(out, "    \"max\": {}", self.queue.max_depth);
        let _ = writeln!(out, "  }},");
        let _ = writeln!(out, "  \"throughput\": {{");
        let _ = writeln!(
            out,
            "    \"offered_per_mcycle\": {:.6},",
            self.offered_per_mcycle
        );
        let _ = writeln!(
            out,
            "    \"goodput_per_mcycle\": {:.6}",
            self.goodput_per_mcycle
        );
        let _ = writeln!(out, "  }},");
        let _ = writeln!(out, "  \"arrays\": [");
        for (i, a) in self.arrays.iter().enumerate() {
            let _ = writeln!(out, "    {{");
            let _ = writeln!(out, "      \"name\": \"{}\",", json_escape(&a.name));
            let _ = writeln!(out, "      \"rows\": {},", a.rows);
            let _ = writeln!(out, "      \"cols\": {},", a.cols);
            let _ = writeln!(out, "      \"dataflow\": \"{}\",", json_escape(&a.dataflow));
            let _ = writeln!(out, "      \"batches\": {},", a.batches);
            let _ = writeln!(out, "      \"requests\": {},", a.requests);
            let _ = writeln!(out, "      \"busy_cycles\": {},", a.busy_cycles);
            let _ = writeln!(out, "      \"utilization\": {:.6}", a.utilization);
            let _ = write!(out, "    }}");
            out.push_str(if i + 1 < self.arrays.len() {
                ",\n"
            } else {
                "\n"
            });
        }
        let _ = writeln!(out, "  ],");
        let _ = writeln!(out, "  \"networks\": [");
        for (i, n) in self.networks.iter().enumerate() {
            let _ = writeln!(out, "    {{");
            let _ = writeln!(out, "      \"name\": \"{}\",", json_escape(&n.name));
            let _ = writeln!(out, "      \"weight\": {},", n.weight);
            let _ = writeln!(out, "      \"completed\": {},", n.completed);
            let _ = writeln!(out, "      \"slo_target_cycles\": {},", n.slo_target_cycles);
            let _ = writeln!(out, "      \"slo_met\": {}", n.slo_met);
            let _ = write!(out, "    }}");
            out.push_str(if i + 1 < self.networks.len() {
                ",\n"
            } else {
                "\n"
            });
        }
        let _ = writeln!(out, "  ],");
        out
    }

    /// `fnv1a64:<16 hex>` fingerprint of every deterministic result
    /// field. Two same-seed runs must produce identical hashes — the
    /// CI serve job diffs exactly this.
    pub fn results_hash(&self) -> String {
        format!("fnv1a64:{:016x}", fnv1a64(self.results_body().as_bytes()))
    }

    /// Renders the report as JSON (schema `fuseconv-serve-v1`), the
    /// determinism fingerprint and embedded run manifest included.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        out.push_str(&self.results_body());
        let _ = writeln!(out, "  \"results_fnv1a64\": \"{}\",", self.results_hash());
        let _ = writeln!(
            out,
            "  \"manifest\": {}",
            self.manifest.to_json_pretty("  ")
        );
        out.push_str("}\n");
        out
    }

    /// Renders the report as a human-readable text summary.
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "pod {} | policy {} | dispatch {} | seed {}",
            self.pod, self.policy, self.dispatch, self.seed
        );
        let _ = writeln!(
            out,
            "offered {} (load {:.2}) completed {} dropped {} batches {} preemptions {}",
            self.offered, self.load, self.completed, self.dropped, self.batches, self.preemptions
        );
        let _ = writeln!(
            out,
            "latency cycles: mean {:.0}  p50 {}  p99 {}  p99.9 {}  max {}",
            self.latency.mean,
            self.latency.p50,
            self.latency.p99,
            self.latency.p999,
            self.latency.max
        );
        if self.high_priority_completed > 0 {
            let _ = writeln!(
                out,
                "high-priority ({} reqs): mean {:.0}  p50 {}  p99 {}  max {}",
                self.high_priority_completed,
                self.high_priority_latency.mean,
                self.high_priority_latency.p50,
                self.high_priority_latency.p99,
                self.high_priority_latency.max
            );
        }
        let _ = writeln!(
            out,
            "queue depth: mean {:.1}  max {}   slo_met {}/{} (x{:.1} target)",
            self.queue.mean_depth,
            self.queue.max_depth,
            self.slo_met,
            self.completed,
            self.slo_multiplier
        );
        let _ = writeln!(
            out,
            "throughput per Mcycle: offered {:.3}  goodput {:.3}   makespan {} cycles, {} events",
            self.offered_per_mcycle, self.goodput_per_mcycle, self.makespan_cycles, self.events
        );
        let _ = writeln!(
            out,
            "{:<14} {:>8} {:>10} {:>14} {:>7}",
            "array", "batches", "requests", "busy_cycles", "util"
        );
        for a in &self.arrays {
            let _ = writeln!(
                out,
                "{:<14} {:>8} {:>10} {:>14} {:>6.1}%",
                a.name,
                a.batches,
                a.requests,
                a.busy_cycles,
                100.0 * a.utilization
            );
        }
        for n in &self.networks {
            let _ = writeln!(
                out,
                "net {:<22} weight {:>3}  completed {:>9}  slo_met {:>9} (target {} cycles)",
                n.name, n.weight, n.completed, n.slo_met, n.slo_target_cycles
            );
        }
        let _ = writeln!(out, "results {}", self.results_hash());
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentile_is_nearest_rank() {
        let v: Vec<u64> = (1..=100).collect();
        assert_eq!(percentile(&v, 500), 50);
        assert_eq!(percentile(&v, 990), 99);
        assert_eq!(percentile(&v, 999), 100);
        assert_eq!(percentile(&[7], 999), 7);
        assert_eq!(percentile(&[], 500), 0);
    }

    #[test]
    fn latency_stats_from_small_sample() {
        let s = LatencyStats::from_latencies(&[10, 30, 20]);
        assert_eq!(s.p50, 20);
        assert_eq!(s.max, 30);
        assert!((s.mean - 20.0).abs() < 1e-9);
    }

    /// The old implementation: sort a copy, take nearest-rank
    /// percentiles. Kept here as the reference the selection-based
    /// path must match bit for bit.
    fn stats_by_sorting(latencies: &[u64]) -> LatencyStats {
        let mut sorted = latencies.to_vec();
        sorted.sort_unstable();
        let sum: u128 = sorted.iter().map(|&l| l as u128).sum();
        LatencyStats {
            mean: if sorted.is_empty() {
                0.0
            } else {
                sum as f64 / sorted.len() as f64
            },
            p50: percentile(&sorted, 500),
            p99: percentile(&sorted, 990),
            p999: percentile(&sorted, 999),
            max: sorted.last().copied().unwrap_or(0),
        }
    }

    #[test]
    fn selection_based_stats_match_the_sorting_path() {
        // Deterministic pseudo-random inputs across awkward sizes:
        // empty, singleton, all-equal, sizes around the nearest-rank
        // index collisions (n < 1000 makes p99/p999 share an index).
        let mut x = 0xA076_1D64_78BD_642Fu64;
        for n in [0usize, 1, 2, 3, 7, 99, 100, 999, 1000, 1001, 4096] {
            let mut v = Vec::with_capacity(n);
            for _ in 0..n {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                v.push(x % 1_000_003);
            }
            let fast = LatencyStats::from_latencies(&v);
            let slow = stats_by_sorting(&v);
            assert_eq!(fast, slow, "n={n}");
        }
        let equal = vec![42u64; 500];
        assert_eq!(
            LatencyStats::from_latencies(&equal),
            stats_by_sorting(&equal)
        );
    }

    fn tiny_report() -> ServeReport {
        ServeReport {
            pod: "8x8:os".to_string(),
            policy: "fifo".to_string(),
            dispatch: "whole".to_string(),
            preemption: false,
            seed: 7,
            load: 0.5,
            queue_capacity: 64,
            slo_multiplier: 10.0,
            offered: 3,
            completed: 3,
            dropped: 0,
            batches: 3,
            preemptions: 0,
            events: 9,
            makespan_cycles: 1000,
            slo_met: 3,
            high_priority_completed: 0,
            latency: LatencyStats::from_latencies(&[10, 20, 30]),
            high_priority_latency: LatencyStats::from_latencies(&[]),
            queue: QueueStats {
                mean_depth: 0.5,
                max_depth: 2,
            },
            offered_per_mcycle: 3000.0,
            goodput_per_mcycle: 3000.0,
            arrays: vec![ArrayReport {
                name: "8x8:os".to_string(),
                rows: 8,
                cols: 8,
                dataflow: "os".to_string(),
                batches: 3,
                requests: 3,
                busy_cycles: 600,
                utilization: 0.6,
            }],
            networks: vec![NetworkReport {
                name: "tiny".to_string(),
                weight: 1,
                completed: 3,
                slo_target_cycles: 2000,
                slo_met: 3,
            }],
            manifest: RunManifest::capture(),
        }
    }

    #[test]
    fn json_is_balanced_and_tagged() {
        let json = tiny_report().to_json();
        assert!(json.contains("\"schema\": \"fuseconv-serve-v1\""));
        assert!(json.contains("\"results_fnv1a64\": \"fnv1a64:"));
        assert!(json.contains("\"manifest\": {"));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }

    #[test]
    fn results_hash_ignores_manifest_but_sees_results() {
        let a = tiny_report();
        let mut b = tiny_report();
        // Manifests differ in wall-clock fields; hashes must not.
        assert_eq!(a.results_hash(), b.results_hash());
        b.completed = 2;
        assert_ne!(a.results_hash(), b.results_hash());
    }

    #[test]
    fn text_rendering_mentions_the_knee_inputs() {
        let text = tiny_report().to_text();
        assert!(text.contains("p99"));
        assert!(text.contains("goodput"));
        assert!(text.contains("8x8:os"));
    }
}

//! Pod descriptions: which arrays make up the serving pod.
//!
//! A pod is written as a comma-separated list of array entries, each
//! `ROWSxCOLS` with an optional `:os` / `:ws` / `:is` dataflow suffix
//! (output-stationary when omitted), e.g. `"64x64:os,32x32:ws,8x8"`.
//! Every array is built with the row-broadcast extension enabled so
//! FuSe-transformed networks are servable on any member of the pod.

use fuseconv_latency::{Dataflow, LatencyError, LatencyModel};
use fuseconv_systolic::{ArrayConfig, ConfigError};
use std::fmt;

/// Everything that can go wrong while building or running a pod
/// simulation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServeError {
    /// A pod/array spec string did not parse.
    Spec(String),
    /// An array dimension was rejected by the systolic configuration.
    Array(ConfigError),
    /// The analytic cost oracle rejected an operator.
    Latency(LatencyError),
    /// The serving configuration itself is inconsistent.
    Config(String),
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::Spec(msg) => write!(f, "pod spec error: {msg}"),
            ServeError::Array(e) => write!(f, "array config error: {e}"),
            ServeError::Latency(e) => write!(f, "latency oracle error: {e}"),
            ServeError::Config(msg) => write!(f, "serve config error: {msg}"),
        }
    }
}

impl std::error::Error for ServeError {}

impl From<ConfigError> for ServeError {
    fn from(e: ConfigError) -> Self {
        ServeError::Array(e)
    }
}

impl From<LatencyError> for ServeError {
    fn from(e: LatencyError) -> Self {
        ServeError::Latency(e)
    }
}

/// One systolic array of the pod: its dimensions and dataflow.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ArraySpec {
    /// Array rows.
    pub rows: usize,
    /// Array columns.
    pub cols: usize,
    /// Dataflow the array's latency model uses.
    pub dataflow: Dataflow,
}

impl ArraySpec {
    /// Parses one entry of a pod string: `ROWSxCOLS[:os|ws|is]`.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::Spec`] for malformed entries and
    /// [`ServeError::Array`] for dimensions the simulator rejects
    /// (e.g. zero).
    pub fn parse(entry: &str) -> Result<Self, ServeError> {
        let entry = entry.trim();
        let (dims, dataflow) = match entry.split_once(':') {
            Some((dims, df)) => {
                let dataflow = match df {
                    "os" => Dataflow::OutputStationary,
                    "ws" => Dataflow::WeightStationary,
                    "is" => Dataflow::InputStationary,
                    other => {
                        return Err(ServeError::Spec(format!(
                            "unknown dataflow `{other}` in `{entry}` (expected os|ws|is)"
                        )))
                    }
                };
                (dims, dataflow)
            }
            None => (entry, Dataflow::OutputStationary),
        };
        let (r, c) = dims.split_once('x').ok_or_else(|| {
            ServeError::Spec(format!("expected ROWSxCOLS in `{entry}` (e.g. 32x32)"))
        })?;
        let rows: usize = r
            .trim()
            .parse()
            .map_err(|_| ServeError::Spec(format!("bad row count `{r}` in `{entry}`")))?;
        let cols: usize = c
            .trim()
            .parse()
            .map_err(|_| ServeError::Spec(format!("bad column count `{c}` in `{entry}`")))?;
        // Validate dimensions eagerly so parse errors surface before the
        // simulation starts.
        ArrayConfig::new(rows, cols)?;
        Ok(ArraySpec {
            rows,
            cols,
            dataflow,
        })
    }

    /// Short display name, e.g. `64x64:os` — also the Chrome-trace lane
    /// label and the per-array report key.
    pub fn name(&self) -> String {
        format!("{}x{}:{}", self.rows, self.cols, self.dataflow_name())
    }

    /// The dataflow as its CLI short name (`os` / `ws` / `is`).
    pub fn dataflow_name(&self) -> &'static str {
        match self.dataflow {
            Dataflow::OutputStationary => "os",
            Dataflow::WeightStationary => "ws",
            Dataflow::InputStationary => "is",
        }
    }

    /// Pipeline-refill penalty a preemption charges the victim on this
    /// array: `rows + cols` cycles to re-skew the systolic wavefront.
    pub fn refill_penalty(&self) -> u64 {
        (self.rows + self.cols) as u64
    }

    /// Builds the array's analytic latency model (row-broadcast
    /// enabled, batch 1).
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::Array`] if the dimensions are rejected.
    pub fn model(&self) -> Result<LatencyModel, ServeError> {
        let array = ArrayConfig::new(self.rows, self.cols)?.with_broadcast(true);
        Ok(LatencyModel::new(array).with_dataflow(self.dataflow))
    }
}

/// The serving pod: an ordered list of heterogeneous arrays.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PodSpec {
    /// Member arrays, in dispatch-preference order (ties in dispatch
    /// cost break toward the lower index).
    pub arrays: Vec<ArraySpec>,
}

impl PodSpec {
    /// Parses a comma-separated pod string, e.g.
    /// `"64x64:os,32x32:ws,16x16,8x8"`.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::Spec`] when empty or when any entry fails
    /// [`ArraySpec::parse`].
    pub fn parse(spec: &str) -> Result<Self, ServeError> {
        let arrays: Vec<ArraySpec> = spec
            .split(',')
            .filter(|s| !s.trim().is_empty())
            .map(ArraySpec::parse)
            .collect::<Result<_, _>>()?;
        if arrays.is_empty() {
            return Err(ServeError::Spec("pod has no arrays".to_string()));
        }
        Ok(PodSpec { arrays })
    }

    /// A pod of identical square output-stationary arrays (test and
    /// example convenience).
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::Array`] if `side` is rejected.
    pub fn homogeneous(count: usize, side: usize) -> Result<Self, ServeError> {
        ArrayConfig::new(side, side)?;
        Ok(PodSpec {
            arrays: vec![
                ArraySpec {
                    rows: side,
                    cols: side,
                    dataflow: Dataflow::OutputStationary,
                };
                count.max(1)
            ],
        })
    }

    /// One latency model per array, in pod order.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::Array`] if any member's dimensions are
    /// rejected.
    pub fn models(&self) -> Result<Vec<LatencyModel>, ServeError> {
        self.arrays.iter().map(ArraySpec::model).collect()
    }

    /// Number of arrays in the pod.
    pub fn len(&self) -> usize {
        self.arrays.len()
    }

    /// Whether the pod is empty (never true for a parsed pod).
    pub fn is_empty(&self) -> bool {
        self.arrays.is_empty()
    }
}

impl fmt::Display for PodSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let names: Vec<String> = self.arrays.iter().map(ArraySpec::name).collect();
        write!(f, "{}", names.join(","))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_mixed_pod() {
        let pod = PodSpec::parse("64x64:os, 32x32:ws,16x16:is,8x8").expect("valid pod");
        assert_eq!(pod.len(), 4);
        assert_eq!(pod.arrays[0].name(), "64x64:os");
        assert_eq!(pod.arrays[1].dataflow, Dataflow::WeightStationary);
        assert_eq!(pod.arrays[3].dataflow, Dataflow::OutputStationary);
        // Display canonicalises: the default dataflow is spelled out.
        assert_eq!(pod.to_string(), "64x64:os,32x32:ws,16x16:is,8x8:os");
    }

    #[test]
    fn rejects_malformed_entries() {
        assert!(matches!(
            PodSpec::parse("64x64:xx"),
            Err(ServeError::Spec(_))
        ));
        assert!(matches!(PodSpec::parse("64"), Err(ServeError::Spec(_))));
        assert!(matches!(PodSpec::parse(""), Err(ServeError::Spec(_))));
        assert!(matches!(PodSpec::parse("0x4"), Err(ServeError::Array(_))));
    }

    #[test]
    fn models_carry_broadcast_and_dataflow() {
        let pod = PodSpec::parse("8x8:ws").expect("valid pod");
        let models = pod.models().expect("models build");
        assert!(models[0].array().has_broadcast());
        assert_eq!(models[0].dataflow(), Dataflow::WeightStationary);
    }
}

//! Streaming time-series observability for pod simulations (schema
//! `fuseconv-serve-timeseries-v1`).
//!
//! The serve report is an end-of-run aggregate; this module makes the
//! *trajectory* observable while staying O(1) per request. The engine
//! feeds a [`TimeSeriesRecorder`] from its existing event stream —
//! arrivals, completions, queue-depth ticks and busy segments — and the
//! recorder bins everything into fixed simulated-cycle windows:
//!
//! * offered vs completed vs dropped requests per window;
//! * queue depth min / time-weighted mean / max;
//! * per-array busy fraction;
//! * per-network completions and SLO attainment;
//! * a [`QuantileSketch`] of completion latency (p50/p99/p999 within
//!   the sketch's documented 1/64 relative-error bound).
//!
//! On top of the windows sit **multi-window SLO burn-rate alerts** (a
//! fast/slow window pair must both burn error budget faster than
//! `burn_threshold` before an alert fires, the classic page-level
//! multi-window rule) and **tail exemplars**: the K worst requests keep
//! their full phase breakdown — batch-form wait plus queue wait plus
//! compute plus preemption refill, which the engine debug-asserts sums
//! to end-to-end latency for *every* request — so the report can say
//! where p999 time went instead of just how big it was.
//!
//! The JSON artifact embeds the run manifest and carries a
//! `results_fnv1a64` determinism fingerprint like the serve report; the
//! text rendering draws per-window sparklines; and
//! [`TimeSeriesReport::append_counters`] adds goodput / per-array
//! utilization counter tracks to a [`PodTraceSink`], composing with the
//! pid-0 pod lanes and pid-1 host spans in one Perfetto view.

use crate::spec::ServeError;
use crate::trace::PodTraceSink;
use fuseconv_telemetry::{fnv1a64, QuantileSketch, RunManifest};
use std::fmt::Write as _;

/// Escapes a string for inclusion in a JSON string literal.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Schema tag of the time-series artifact.
pub const TIMESERIES_SCHEMA: &str = "fuseconv-serve-timeseries-v1";

/// Completion latencies staged before a batched sketch flush (see
/// [`TimeSeriesRecorder`]'s `stage` field).
const STAGE_CAP: usize = 256;

/// Configuration of the time-series layer.
#[derive(Debug, Clone, PartialEq)]
pub struct TimeSeriesConfig {
    /// Window width in simulated cycles; `None` sizes windows so the
    /// run's *expected* makespan spans [`Self::target_windows`] of them
    /// (overload runs simply grow more windows).
    pub window_cycles: Option<u64>,
    /// Window count the automatic width aims for.
    pub target_windows: usize,
    /// SLO attainment objective the burn rate is measured against;
    /// `1 − objective` is the error budget (0.99 → 1 % budget).
    pub objective: f64,
    /// Fast span of the multi-window burn-rate rule, in windows.
    pub fast_windows: usize,
    /// Slow span of the multi-window burn-rate rule, in windows.
    pub slow_windows: usize,
    /// Burn-rate threshold: an alert needs both spans to consume error
    /// budget at ≥ this multiple of the sustainable rate.
    pub burn_threshold: f64,
    /// How many worst-latency requests keep their phase breakdown.
    pub exemplars: usize,
}

impl TimeSeriesConfig {
    /// Defaults: automatic window width targeting 64 windows, a 99 %
    /// SLO objective, a 1-window / 8-window pair at 10× burn, and 8
    /// tail exemplars.
    pub fn new() -> Self {
        TimeSeriesConfig {
            window_cycles: None,
            target_windows: 64,
            objective: 0.99,
            fast_windows: 1,
            slow_windows: 8,
            burn_threshold: 10.0,
            exemplars: 8,
        }
    }

    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::Config`] for a zero window width or span,
    /// a fast span longer than the slow one, an objective outside
    /// (0, 1), or a non-positive burn threshold.
    pub fn validate(&self) -> Result<(), ServeError> {
        if self.window_cycles == Some(0) {
            return Err(ServeError::Config(
                "timeseries window_cycles must be at least 1".to_string(),
            ));
        }
        if self.target_windows == 0 {
            return Err(ServeError::Config(
                "timeseries target_windows must be at least 1".to_string(),
            ));
        }
        if self.fast_windows == 0 || self.slow_windows < self.fast_windows {
            return Err(ServeError::Config(format!(
                "burn-rate windows must satisfy 1 <= fast <= slow, got fast {} slow {}",
                self.fast_windows, self.slow_windows
            )));
        }
        if !(self.objective > 0.0 && self.objective < 1.0) {
            return Err(ServeError::Config(format!(
                "SLO objective must lie in (0, 1), got {}",
                self.objective
            )));
        }
        if !(self.burn_threshold.is_finite() && self.burn_threshold > 0.0) {
            return Err(ServeError::Config(format!(
                "burn threshold must be finite and positive, got {}",
                self.burn_threshold
            )));
        }
        Ok(())
    }
}

impl Default for TimeSeriesConfig {
    fn default() -> Self {
        TimeSeriesConfig::new()
    }
}

/// One completed request with its full phase breakdown; the K worst by
/// latency survive into the report as tail exemplars. The engine
/// guarantees `form_wait + queue_wait + compute + refill == latency`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Exemplar {
    /// Monotone request id (arrival order).
    pub id: u64,
    /// Index into the workload's network list.
    pub net: usize,
    /// Whether the request rode the high-priority lane.
    pub high_priority: bool,
    /// Arrival time, cycles.
    pub arrived: u64,
    /// Completion time, cycles.
    pub completed_at: u64,
    /// End-to-end latency, cycles.
    pub latency: u64,
    /// Cycles waiting for later co-batched arrivals (batch formation).
    pub form_wait: u64,
    /// Cycles the formed batch waited off-array (dispatch + resume).
    pub queue_wait: u64,
    /// Cycles executing on an array, refill excluded.
    pub compute: u64,
    /// Preemption pipeline-refill cycles replayed on-array.
    pub refill: u64,
}

/// One fixed-width window of the run.
#[derive(Debug, Clone, PartialEq)]
pub struct WindowReport {
    /// Window index (start cycle = `index × window_cycles`).
    pub index: u64,
    /// Requests offered (arrivals) in the window.
    pub offered: u64,
    /// Requests completed in the window.
    pub completed: u64,
    /// Requests dropped at admission in the window.
    pub dropped: u64,
    /// Completions that met their network's SLO.
    pub slo_met: u64,
    /// Minimum queue depth observed over the window.
    pub queue_min: u64,
    /// Time-weighted mean queue depth over the window.
    pub queue_mean: f64,
    /// Maximum queue depth observed over the window.
    pub queue_max: u64,
    /// Busy fraction per array, pod order.
    pub busy_frac: Vec<f64>,
    /// Completions per network, workload order.
    pub net_completed: Vec<u64>,
    /// SLO-met completions per network, workload order.
    pub net_slo_met: Vec<u64>,
    /// Median completion latency in the window (sketch estimate).
    pub p50: u64,
    /// 99th-percentile completion latency (sketch estimate).
    pub p99: u64,
    /// 99.9th-percentile completion latency (sketch estimate).
    pub p999: u64,
}

/// One burn-rate alert episode: a maximal run of consecutive windows
/// in which both the fast and the slow span burned error budget at
/// ≥ `burn_threshold` times the sustainable rate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BurnAlert {
    /// First alerting window.
    pub start_window: u64,
    /// Last alerting window (inclusive).
    pub end_window: u64,
    /// Worst fast-span SLO miss fraction during the episode.
    pub peak_fast_miss_rate: f64,
    /// `peak_fast_miss_rate / (1 − objective)` — how many times faster
    /// than sustainable the error budget burned at the peak.
    pub peak_burn_rate: f64,
}

/// Aggregate latency-sketch summary over the whole run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SketchSummary {
    /// Completions recorded.
    pub count: u64,
    /// Mean latency, cycles.
    pub mean: f64,
    /// Smallest latency, cycles (exact).
    pub min: u64,
    /// Median latency (sketch estimate).
    pub p50: u64,
    /// 99th percentile (sketch estimate).
    pub p99: u64,
    /// 99.9th percentile (sketch estimate).
    pub p999: u64,
    /// Largest latency, cycles (exact).
    pub max: u64,
}

/// Per-window accumulators while the simulation runs. Deliberately
/// small (no inline sketch): the recorder keeps one hot
/// [`QuantileSketch`] for the window currently receiving completions
/// and stores only the finalized quantiles here when it rolls over.
#[derive(Debug, Clone)]
struct WindowAcc {
    offered: u64,
    completed: u64,
    dropped: u64,
    slo_met: u64,
    depth_min: u64,
    depth_max: u64,
    depth_area: u128,
    busy: Vec<u64>,
    net_completed: Vec<u64>,
    net_slo_met: Vec<u64>,
    p50: u64,
    p99: u64,
    p999: u64,
}

impl WindowAcc {
    fn new(n_arrays: usize, n_nets: usize) -> Self {
        WindowAcc {
            offered: 0,
            completed: 0,
            dropped: 0,
            slo_met: 0,
            depth_min: u64::MAX,
            depth_max: 0,
            depth_area: 0,
            busy: vec![0; n_arrays],
            net_completed: vec![0; n_nets],
            net_slo_met: vec![0; n_nets],
            p50: 0,
            p99: 0,
            p999: 0,
        }
    }
}

/// Streaming recorder the engine feeds; O(1) per event (interval hooks
/// cost O(windows overlapped), and a single batch segment rarely spans
/// more than a few windows).
///
/// The engine pops events off a time-ordered heap, so completions
/// arrive with non-decreasing timestamps; the recorder exploits that by
/// keeping a single hot latency sketch for the *current* completion
/// window ([`QuantileSketch`] is ~30 KiB — one per window would wreck
/// cache locality and the ≤10 % recording-overhead budget), finalizing
/// its quantiles and merging it into the run total each time the
/// completion window advances.
#[derive(Debug)]
pub(crate) struct TimeSeriesRecorder {
    cfg: TimeSeriesConfig,
    window: u64,
    n_arrays: usize,
    n_nets: usize,
    windows: Vec<WindowAcc>,
    /// Latencies staged for a batched flush into `cur`: individual
    /// sketch records touch scattered bucket cache lines that the
    /// engine evicts between completions, so the hot path is one
    /// append here and the bucket lines are touched with high
    /// locality once per [`STAGE_CAP`] completions.
    stage: Vec<u64>,
    /// Latency sketch of the window currently receiving completions.
    cur: QuantileSketch,
    /// Window index `cur` is recording.
    cur_win: usize,
    /// Exclusive upper cycle bound of `cur_win` — completions advance
    /// monotonically, so window lookup is a compare, not a division.
    cur_hi: u64,
    /// Whole-run latency sketch; absorbs `cur` at each window roll.
    total: QuantileSketch,
    exemplars: Vec<Exemplar>,
    /// Index of the least-worst kept exemplar, valid once the set is
    /// full: makes the common keep/discard decision one comparison.
    worst_slot: usize,
    /// Monotone arrival-window cursor (index and exclusive bound).
    arr_win: usize,
    arr_hi: u64,
    /// Per-array monotone busy cursors — an array executes segments
    /// serially, so each array's segment start only advances.
    busy_win: Vec<usize>,
    busy_hi: Vec<u64>,
    /// Window the queue-depth integral has advanced into (index and
    /// exclusive cycle bound), plus the cycle it has advanced to —
    /// depth ticks tile `[0, makespan]` in order, so the common case
    /// is one compare against `depth_hi`.
    depth_win: usize,
    depth_hi: u64,
    depth_last: u64,
    /// Hot scratch accumulators, one set per event stream. The engine
    /// is only a few hundred nanoseconds per request, so the hooks
    /// cannot afford to chase into the `windows` Vec (a cold cache
    /// line per window) on every event; instead each stream counts
    /// into these recorder-resident scalars and flushes to its
    /// cursor's window only when the cursor moves (and in `finish`).
    /// Arrival scratch for `arr_win`:
    a_offered: u64,
    a_dropped: u64,
    /// Completion scratch for `cur_win`:
    c_completed: u64,
    c_slo_met: u64,
    c_net_completed: Vec<u64>,
    c_net_slo_met: Vec<u64>,
    /// Queue-depth scratch for `depth_win`:
    d_area: u128,
    d_min: u64,
    d_max: u64,
    /// Per-array busy-cycle scratch for `busy_win[array]`:
    busy_acc: Vec<u64>,
}

impl TimeSeriesRecorder {
    /// A recorder whose automatic window width spreads
    /// `expected_makespan` over `cfg.target_windows` windows.
    pub(crate) fn new(
        cfg: &TimeSeriesConfig,
        expected_makespan: u64,
        n_arrays: usize,
        n_nets: usize,
    ) -> Self {
        let window = cfg
            .window_cycles
            .unwrap_or_else(|| (expected_makespan / cfg.target_windows.max(1) as u64).max(1));
        TimeSeriesRecorder {
            cfg: cfg.clone(),
            window,
            n_arrays,
            n_nets,
            windows: Vec::new(),
            stage: Vec::with_capacity(STAGE_CAP),
            cur: QuantileSketch::new(),
            cur_win: 0,
            cur_hi: window,
            total: QuantileSketch::new(),
            exemplars: Vec::new(),
            worst_slot: 0,
            arr_win: 0,
            arr_hi: window,
            busy_win: vec![0; n_arrays],
            busy_hi: vec![window; n_arrays],
            depth_win: 0,
            depth_hi: window,
            depth_last: 0,
            a_offered: 0,
            a_dropped: 0,
            c_completed: 0,
            c_slo_met: 0,
            c_net_completed: vec![0; n_nets],
            c_net_slo_met: vec![0; n_nets],
            d_area: 0,
            d_min: u64::MAX,
            d_max: 0,
            busy_acc: vec![0; n_arrays],
        }
    }

    #[inline]
    fn acc_idx(&mut self, idx: usize) -> &mut WindowAcc {
        while self.windows.len() <= idx {
            self.windows
                .push(WindowAcc::new(self.n_arrays, self.n_nets));
        }
        &mut self.windows[idx]
    }

    #[inline]
    fn acc(&mut self, at: u64) -> &mut WindowAcc {
        let idx = (at / self.window) as usize;
        self.acc_idx(idx)
    }

    /// Writes the arrival scratch into its cursor's window.
    fn flush_arrivals(&mut self) {
        if self.a_offered == 0 && self.a_dropped == 0 {
            return;
        }
        let (offered, dropped) = (self.a_offered, self.a_dropped);
        self.a_offered = 0;
        self.a_dropped = 0;
        let idx = self.arr_win;
        let acc = self.acc_idx(idx);
        acc.offered += offered;
        acc.dropped += dropped;
    }

    /// Advances the arrival cursor to the window of time `at`;
    /// arrivals pop off the event heap in time order, so this is a
    /// compare, not a division, and the scratch flushes only when the
    /// cursor actually moves.
    #[inline]
    fn arrival_advance(&mut self, at: u64) {
        debug_assert!(
            at + self.window >= self.arr_hi,
            "arrivals must advance in event-time order"
        );
        if at >= self.arr_hi {
            self.flush_arrivals();
            while at >= self.arr_hi {
                self.arr_win += 1;
                self.arr_hi += self.window;
            }
        }
    }

    /// An arrival was offered at `at`.
    #[inline]
    pub(crate) fn offered(&mut self, at: u64) {
        self.arrival_advance(at);
        self.a_offered += 1;
    }

    /// An arrival was dropped at admission at `at`.
    #[inline]
    pub(crate) fn dropped(&mut self, at: u64) {
        self.arrival_advance(at);
        self.a_dropped += 1;
    }

    /// Index of the least-worst exemplar under the deterministic
    /// (latency, older-id-wins) order.
    fn least_worst(exemplars: &[Exemplar]) -> usize {
        exemplars
            .iter()
            .enumerate()
            .min_by_key(|(_, e)| (e.latency, std::cmp::Reverse(e.id)))
            .map(|(i, _)| i)
            .expect("exemplar set is nonempty")
    }

    /// Drains the staged latencies into the current window's sketch.
    fn flush_stage(&mut self) {
        self.cur.record_batch(&self.stage);
        self.stage.clear();
    }

    /// Closes the completion window the cursor points at: drains the
    /// stage, writes the scratch counters and the finalized sketch
    /// quantiles into the window, and folds the sketch into the run
    /// total. Idle windows (no completions) are a no-op and keep
    /// their zero quantiles.
    fn close_completion_window(&mut self) {
        self.flush_stage();
        if self.cur.is_empty() {
            return;
        }
        let (p50, p99, p999) = (
            self.cur.quantile(500),
            self.cur.quantile(990),
            self.cur.quantile(999),
        );
        let completed = self.c_completed;
        let slo_met = self.c_slo_met;
        self.c_completed = 0;
        self.c_slo_met = 0;
        let net_completed = std::mem::take(&mut self.c_net_completed);
        let net_slo_met = std::mem::take(&mut self.c_net_slo_met);
        let cur_win = self.cur_win;
        let acc = self.acc_idx(cur_win);
        acc.completed += completed;
        acc.slo_met += slo_met;
        for (dst, src) in acc.net_completed.iter_mut().zip(&net_completed) {
            *dst += *src;
        }
        for (dst, src) in acc.net_slo_met.iter_mut().zip(&net_slo_met) {
            *dst += *src;
        }
        acc.p50 = p50;
        acc.p99 = p99;
        acc.p999 = p999;
        self.total.merge(&self.cur);
        self.cur.clear();
        self.c_net_completed = net_completed;
        self.c_net_completed.fill(0);
        self.c_net_slo_met = net_slo_met;
        self.c_net_slo_met.fill(0);
    }

    /// Closes the current completion window and steps to the next.
    fn roll_window(&mut self) {
        self.close_completion_window();
        self.cur_win += 1;
        self.cur_hi += self.window;
    }

    /// Advances the completion window to `now`. The engine calls this
    /// once per completing batch (every request in a batch finishes at
    /// the same cycle), so the per-request hook skips the roll check.
    #[inline]
    pub(crate) fn completions_at(&mut self, now: u64) {
        debug_assert!(
            now + self.window >= self.cur_hi,
            "completions must advance in event-time order"
        );
        while now >= self.cur_hi {
            self.roll_window();
        }
    }

    /// A request completed at the cycle last passed to
    /// [`Self::completions_at`] — pure scratch-counter updates.
    #[inline]
    pub(crate) fn record(&mut self, latency: u64, net: usize, slo_met: bool) {
        self.stage.push(latency);
        if self.stage.len() == STAGE_CAP {
            self.flush_stage();
        }
        self.c_completed += 1;
        self.c_net_completed[net] += 1;
        if slo_met {
            self.c_slo_met += 1;
            self.c_net_slo_met[net] += 1;
        }
    }

    /// Whether a completion with this `latency` and `id` would enter
    /// the exemplar set — lets the engine skip assembling the full
    /// phase-accounted [`Exemplar`] record for the overwhelming
    /// majority of requests (one comparison against the cached
    /// least-worst kept exemplar).
    #[inline]
    pub(crate) fn wants_exemplar(&self, latency: u64, id: u64) -> bool {
        if self.cfg.exemplars == 0 {
            return false;
        }
        if self.exemplars.len() < self.cfg.exemplars {
            return true;
        }
        // Ties keep the earlier request so the set is deterministic.
        let worst = &self.exemplars[self.worst_slot];
        (latency, std::cmp::Reverse(id)) > (worst.latency, std::cmp::Reverse(worst.id))
    }

    /// Admits an exemplar candidate ([`Self::wants_exemplar`] was true
    /// for its latency and id).
    pub(crate) fn offer_exemplar(&mut self, req: Exemplar) {
        debug_assert!(self.wants_exemplar(req.latency, req.id));
        if self.exemplars.len() < self.cfg.exemplars {
            self.exemplars.push(req);
            if self.exemplars.len() == self.cfg.exemplars {
                self.worst_slot = Self::least_worst(&self.exemplars);
            }
            return;
        }
        self.exemplars[self.worst_slot] = req;
        self.worst_slot = Self::least_worst(&self.exemplars);
    }

    /// One-call completion hook combining [`Self::completions_at`],
    /// [`Self::record`] and the exemplar offer — the convenience form
    /// used by unit tests (the engine calls the pieces directly to
    /// amortize the roll check over a whole batch).
    #[cfg(test)]
    pub(crate) fn completed(&mut self, req: Exemplar, slo_met: bool) {
        self.completions_at(req.completed_at);
        self.record(req.latency, req.net, slo_met);
        if self.wants_exemplar(req.latency, req.id) {
            self.offer_exemplar(req);
        }
    }

    /// Writes the queue-depth scratch into its cursor's window.
    fn flush_depth(&mut self) {
        if self.d_min == u64::MAX {
            return;
        }
        let (area, min, max) = (self.d_area, self.d_min, self.d_max);
        self.d_area = 0;
        self.d_min = u64::MAX;
        self.d_max = 0;
        let idx = self.depth_win;
        let acc = self.acc_idx(idx);
        acc.depth_area += area;
        acc.depth_min = acc.depth_min.min(min);
        acc.depth_max = acc.depth_max.max(max);
    }

    /// The queue held `depth` requests from the last tick up to `now`.
    /// The engine ticks the depth integral before every queue
    /// mutation, so the recorder keeps its own advancing edge and the
    /// fast path is a single window-bound compare.
    #[inline]
    pub(crate) fn queue_depth_to(&mut self, now: u64, depth: u64) {
        let from = self.depth_last;
        if now <= from {
            return;
        }
        self.depth_last = now;
        // Fast path: the interval stays inside the current window.
        if now <= self.depth_hi {
            self.d_area += depth as u128 * (now - from) as u128;
            self.d_min = self.d_min.min(depth);
            self.d_max = self.d_max.max(depth);
            return;
        }
        // Slow path: flush the old window's scratch, write any whole
        // intermediate windows directly, and restart the scratch with
        // the segment that lands in the final window.
        self.flush_depth();
        let window = self.window;
        self.depth_win = ((now - 1) / window) as usize;
        self.depth_hi = (self.depth_win as u64 + 1) * window;
        let depth_lo = self.depth_hi - window;
        let mut t = from;
        while t < now {
            let end = ((t / window + 1) * window).min(now);
            if t >= depth_lo {
                self.d_area += depth as u128 * (end - t) as u128;
                self.d_min = self.d_min.min(depth);
                self.d_max = self.d_max.max(depth);
            } else {
                let acc = self.acc(t);
                acc.depth_area += depth as u128 * (end - t) as u128;
                acc.depth_min = acc.depth_min.min(depth);
                acc.depth_max = acc.depth_max.max(depth);
            }
            t = end;
        }
    }

    /// Writes one array's busy scratch into its cursor's window.
    fn flush_busy(&mut self, array: usize) {
        let cycles = self.busy_acc[array];
        if cycles == 0 {
            return;
        }
        self.busy_acc[array] = 0;
        let idx = self.busy_win[array];
        self.acc_idx(idx).busy[array] += cycles;
    }

    /// Array `array` executed a batch segment over `[from, to)`. Each
    /// array runs segments serially, so the per-array cursor advances
    /// without division; only a segment spanning several windows takes
    /// the splitting loop.
    #[inline]
    pub(crate) fn busy(&mut self, array: usize, from: u64, to: u64) {
        if to <= from {
            return;
        }
        debug_assert!(
            from + self.window >= self.busy_hi[array],
            "an array's busy segments must advance in time order"
        );
        if from >= self.busy_hi[array] {
            self.flush_busy(array);
            while from >= self.busy_hi[array] {
                self.busy_win[array] += 1;
                self.busy_hi[array] += self.window;
            }
        }
        // Fast path: the whole segment lies in the cursor's window.
        if to <= self.busy_hi[array] {
            self.busy_acc[array] += to - from;
            return;
        }
        // Slow path: flush the current window's scratch, write whole
        // intermediate windows directly, restart the scratch with the
        // tail segment and move the cursor to its window.
        self.flush_busy(array);
        let window = self.window;
        let last = ((to - 1) / window) as usize;
        let mut t = from;
        while t < to {
            let end = ((t / window + 1) * window).min(to);
            let idx = (t / window) as usize;
            if idx == last {
                self.busy_acc[array] += end - t;
            } else {
                self.acc_idx(idx).busy[array] += end - t;
            }
            t = end;
        }
        self.busy_win[array] = last;
        self.busy_hi[array] = (last as u64 + 1) * window;
    }

    /// Closes the recording at `makespan` and builds the report.
    pub(crate) fn finish(
        mut self,
        makespan: u64,
        arrays: Vec<String>,
        networks: Vec<String>,
        manifest: RunManifest,
    ) -> TimeSeriesReport {
        // Drain every stream's scratch and close the active completion
        // window (quantiles + fold into the run total).
        self.flush_arrivals();
        self.flush_depth();
        for a in 0..self.n_arrays {
            self.flush_busy(a);
        }
        self.close_completion_window();
        // Cover the full makespan even if the tail saw no events.
        self.acc(makespan.saturating_sub(1));
        let window = self.window;
        let makespan = makespan.max(1);
        let windows: Vec<WindowReport> = self
            .windows
            .iter()
            .enumerate()
            .map(|(i, acc)| {
                let start = i as u64 * window;
                // The last window may be clipped by the makespan.
                let width = (start + window).min(makespan).saturating_sub(start).max(1);
                WindowReport {
                    index: i as u64,
                    offered: acc.offered,
                    completed: acc.completed,
                    dropped: acc.dropped,
                    slo_met: acc.slo_met,
                    queue_min: if acc.depth_min == u64::MAX {
                        0
                    } else {
                        acc.depth_min
                    },
                    queue_mean: acc.depth_area as f64 / width as f64,
                    queue_max: acc.depth_max,
                    busy_frac: acc
                        .busy
                        .iter()
                        .map(|&b| (b as f64 / width as f64).min(1.0))
                        .collect(),
                    net_completed: acc.net_completed.clone(),
                    net_slo_met: acc.net_slo_met.clone(),
                    p50: acc.p50,
                    p99: acc.p99,
                    p999: acc.p999,
                }
            })
            .collect();
        let alerts = burn_alerts(&windows, &self.cfg);
        let mut exemplars = self.exemplars;
        exemplars.sort_by_key(|e| (std::cmp::Reverse(e.latency), e.id));
        TimeSeriesReport {
            window_cycles: window,
            makespan_cycles: makespan,
            objective: self.cfg.objective,
            fast_windows: self.cfg.fast_windows,
            slow_windows: self.cfg.slow_windows,
            burn_threshold: self.cfg.burn_threshold,
            exemplar_capacity: self.cfg.exemplars,
            arrays,
            networks,
            windows,
            alerts,
            exemplars,
            total: SketchSummary {
                count: self.total.count(),
                mean: self.total.mean(),
                min: self.total.min(),
                p50: self.total.quantile(500),
                p99: self.total.quantile(990),
                p999: self.total.quantile(999),
                max: self.total.max(),
            },
            manifest,
        }
    }
}

/// SLO miss fraction over windows `[lo, hi]` (0 when nothing
/// completed).
fn miss_rate(windows: &[WindowReport], lo: usize, hi: usize) -> f64 {
    let mut completed = 0u64;
    let mut met = 0u64;
    for w in &windows[lo..=hi] {
        completed += w.completed;
        met += w.slo_met;
    }
    if completed == 0 {
        0.0
    } else {
        (completed - met) as f64 / completed as f64
    }
}

/// Multi-window burn-rate detection: window `w` alerts when both the
/// fast span `[w−fast+1, w]` and the slow span `[w−slow+1, w]` show an
/// SLO miss fraction ≥ `burn_threshold × (1 − objective)`. The slow
/// span must be fully elapsed, so a run shorter than `slow_windows`
/// windows never alerts. Consecutive alerting windows merge into one
/// episode.
fn burn_alerts(windows: &[WindowReport], cfg: &TimeSeriesConfig) -> Vec<BurnAlert> {
    let budget = 1.0 - cfg.objective;
    let trigger = cfg.burn_threshold * budget;
    let mut alerts: Vec<BurnAlert> = Vec::new();
    let mut open: Option<BurnAlert> = None;
    for w in (cfg.slow_windows.saturating_sub(1))..windows.len() {
        let fast = miss_rate(windows, w + 1 - cfg.fast_windows, w);
        let slow = miss_rate(windows, w + 1 - cfg.slow_windows, w);
        if fast >= trigger && slow >= trigger {
            let alert = open.get_or_insert(BurnAlert {
                start_window: w as u64,
                end_window: w as u64,
                peak_fast_miss_rate: 0.0,
                peak_burn_rate: 0.0,
            });
            alert.end_window = w as u64;
            if fast > alert.peak_fast_miss_rate {
                alert.peak_fast_miss_rate = fast;
                alert.peak_burn_rate = if budget > 0.0 { fast / budget } else { 0.0 };
            }
        } else if let Some(done) = open.take() {
            alerts.push(done);
        }
    }
    if let Some(done) = open.take() {
        alerts.push(done);
    }
    alerts
}

/// The complete time-series outcome of one pod simulation (schema
/// `fuseconv-serve-timeseries-v1`).
#[derive(Debug, Clone, PartialEq)]
pub struct TimeSeriesReport {
    /// Window width, cycles.
    pub window_cycles: u64,
    /// Simulated makespan, cycles.
    pub makespan_cycles: u64,
    /// SLO attainment objective of the burn-rate rule.
    pub objective: f64,
    /// Fast burn-rate span, windows.
    pub fast_windows: usize,
    /// Slow burn-rate span, windows.
    pub slow_windows: usize,
    /// Burn-rate alert threshold (multiple of the sustainable rate).
    pub burn_threshold: f64,
    /// Configured tail-exemplar capacity.
    pub exemplar_capacity: usize,
    /// Array names, pod order (indexes `WindowReport::busy_frac`).
    pub arrays: Vec<String>,
    /// Network names, workload order (indexes the per-net vectors).
    pub networks: Vec<String>,
    /// Per-window records covering `[0, makespan)`.
    pub windows: Vec<WindowReport>,
    /// Burn-rate alert episodes, in time order.
    pub alerts: Vec<BurnAlert>,
    /// Worst-latency requests with full phase breakdown, worst first.
    pub exemplars: Vec<Exemplar>,
    /// Whole-run latency sketch summary.
    pub total: SketchSummary,
    /// Run provenance embedded in the JSON rendering.
    pub manifest: RunManifest,
}

impl TimeSeriesReport {
    /// Renders every deterministic field (everything except the
    /// manifest) — the byte stream behind [`Self::results_hash`].
    fn results_body(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "  \"schema\": \"{TIMESERIES_SCHEMA}\",");
        let _ = writeln!(out, "  \"config\": {{");
        let _ = writeln!(out, "    \"window_cycles\": {},", self.window_cycles);
        let _ = writeln!(out, "    \"objective\": {:.6},", self.objective);
        let _ = writeln!(out, "    \"fast_windows\": {},", self.fast_windows);
        let _ = writeln!(out, "    \"slow_windows\": {},", self.slow_windows);
        let _ = writeln!(out, "    \"burn_threshold\": {:.6},", self.burn_threshold);
        let _ = writeln!(
            out,
            "    \"exemplar_capacity\": {},",
            self.exemplar_capacity
        );
        let _ = writeln!(
            out,
            "    \"sketch_relative_error_bound\": {:.6}",
            QuantileSketch::RELATIVE_ERROR_BOUND
        );
        let _ = writeln!(out, "  }},");
        let (offered, completed, dropped, slo_met) = self
            .windows
            .iter()
            .fold((0u64, 0u64, 0u64, 0u64), |(o, c, d, s), w| {
                (o + w.offered, c + w.completed, d + w.dropped, s + w.slo_met)
            });
        let _ = writeln!(out, "  \"totals\": {{");
        let _ = writeln!(out, "    \"windows\": {},", self.windows.len());
        let _ = writeln!(out, "    \"alerts\": {},", self.alerts.len());
        let _ = writeln!(out, "    \"makespan_cycles\": {},", self.makespan_cycles);
        let _ = writeln!(out, "    \"offered\": {offered},");
        let _ = writeln!(out, "    \"completed\": {completed},");
        let _ = writeln!(out, "    \"dropped\": {dropped},");
        let _ = writeln!(out, "    \"slo_met\": {slo_met}");
        let _ = writeln!(out, "  }},");
        let _ = writeln!(out, "  \"latency_sketch\": {{");
        let _ = writeln!(out, "    \"count\": {},", self.total.count);
        let _ = writeln!(out, "    \"mean\": {:.3},", self.total.mean);
        let _ = writeln!(out, "    \"min\": {},", self.total.min);
        let _ = writeln!(out, "    \"p50\": {},", self.total.p50);
        let _ = writeln!(out, "    \"p99\": {},", self.total.p99);
        let _ = writeln!(out, "    \"p999\": {},", self.total.p999);
        let _ = writeln!(out, "    \"max\": {}", self.total.max);
        let _ = writeln!(out, "  }},");
        let quoted = |names: &[String]| {
            names
                .iter()
                .map(|n| format!("\"{}\"", json_escape(n)))
                .collect::<Vec<_>>()
                .join(", ")
        };
        let _ = writeln!(out, "  \"arrays\": [{}],", quoted(&self.arrays));
        let _ = writeln!(out, "  \"networks\": [{}],", quoted(&self.networks));
        let _ = writeln!(out, "  \"windows\": [");
        let fmt_f64s = |vals: &[f64]| {
            vals.iter()
                .map(|v| format!("{v:.6}"))
                .collect::<Vec<_>>()
                .join(", ")
        };
        let fmt_u64s = |vals: &[u64]| {
            vals.iter()
                .map(|v| v.to_string())
                .collect::<Vec<_>>()
                .join(", ")
        };
        for (i, w) in self.windows.iter().enumerate() {
            let _ = writeln!(out, "    {{");
            let _ = writeln!(out, "      \"index\": {},", w.index);
            let _ = writeln!(
                out,
                "      \"start_cycle\": {},",
                w.index * self.window_cycles
            );
            let _ = writeln!(out, "      \"offered\": {},", w.offered);
            let _ = writeln!(out, "      \"completed\": {},", w.completed);
            let _ = writeln!(out, "      \"dropped\": {},", w.dropped);
            let _ = writeln!(out, "      \"slo_met\": {},", w.slo_met);
            let _ = writeln!(out, "      \"queue_min\": {},", w.queue_min);
            let _ = writeln!(out, "      \"queue_mean\": {:.3},", w.queue_mean);
            let _ = writeln!(out, "      \"queue_max\": {},", w.queue_max);
            let _ = writeln!(out, "      \"busy_frac\": [{}],", fmt_f64s(&w.busy_frac));
            let _ = writeln!(
                out,
                "      \"net_completed\": [{}],",
                fmt_u64s(&w.net_completed)
            );
            let _ = writeln!(
                out,
                "      \"net_slo_met\": [{}],",
                fmt_u64s(&w.net_slo_met)
            );
            let _ = writeln!(out, "      \"p50\": {},", w.p50);
            let _ = writeln!(out, "      \"p99\": {},", w.p99);
            let _ = writeln!(out, "      \"p999\": {}", w.p999);
            let _ = write!(out, "    }}");
            out.push_str(if i + 1 < self.windows.len() {
                ",\n"
            } else {
                "\n"
            });
        }
        let _ = writeln!(out, "  ],");
        let _ = writeln!(out, "  \"alerts\": [");
        for (i, a) in self.alerts.iter().enumerate() {
            let _ = writeln!(out, "    {{");
            let _ = writeln!(out, "      \"start_window\": {},", a.start_window);
            let _ = writeln!(out, "      \"end_window\": {},", a.end_window);
            let _ = writeln!(
                out,
                "      \"peak_fast_miss_rate\": {:.6},",
                a.peak_fast_miss_rate
            );
            let _ = writeln!(out, "      \"peak_burn_rate\": {:.3}", a.peak_burn_rate);
            let _ = write!(out, "    }}");
            out.push_str(if i + 1 < self.alerts.len() {
                ",\n"
            } else {
                "\n"
            });
        }
        let _ = writeln!(out, "  ],");
        let _ = writeln!(out, "  \"exemplars\": [");
        for (i, e) in self.exemplars.iter().enumerate() {
            let name = self.networks.get(e.net).map(String::as_str).unwrap_or("?");
            let _ = writeln!(out, "    {{");
            let _ = writeln!(out, "      \"id\": {},", e.id);
            let _ = writeln!(out, "      \"network\": \"{}\",", json_escape(name));
            let _ = writeln!(out, "      \"high_priority\": {},", e.high_priority);
            let _ = writeln!(out, "      \"arrived_cycle\": {},", e.arrived);
            let _ = writeln!(out, "      \"completed_cycle\": {},", e.completed_at);
            let _ = writeln!(out, "      \"latency_cycles\": {},", e.latency);
            let _ = writeln!(out, "      \"form_wait_cycles\": {},", e.form_wait);
            let _ = writeln!(out, "      \"queue_wait_cycles\": {},", e.queue_wait);
            let _ = writeln!(out, "      \"compute_cycles\": {},", e.compute);
            let _ = writeln!(out, "      \"refill_cycles\": {}", e.refill);
            let _ = write!(out, "    }}");
            out.push_str(if i + 1 < self.exemplars.len() {
                ",\n"
            } else {
                "\n"
            });
        }
        let _ = writeln!(out, "  ],");
        out
    }

    /// `fnv1a64:<16 hex>` fingerprint of every deterministic result
    /// field; two same-seed runs must produce identical hashes.
    pub fn results_hash(&self) -> String {
        format!("fnv1a64:{:016x}", fnv1a64(self.results_body().as_bytes()))
    }

    /// Renders the report as JSON (schema
    /// `fuseconv-serve-timeseries-v1`), fingerprint and embedded run
    /// manifest included.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        out.push_str(&self.results_body());
        let _ = writeln!(out, "  \"results_fnv1a64\": \"{}\",", self.results_hash());
        let _ = writeln!(
            out,
            "  \"manifest\": {}",
            self.manifest.to_json_pretty("  ")
        );
        out.push_str("}\n");
        out
    }

    /// Appends counter tracks to a pod trace: per-window goodput and
    /// per-array utilization, composing with the pid-0 batch lanes and
    /// the engine's own queue-depth counter.
    pub fn append_counters(&self, sink: &mut PodTraceSink) {
        for w in &self.windows {
            let at = w.index * self.window_cycles;
            sink.counter("goodput", at, w.slo_met as f64);
            for (a, frac) in w.busy_frac.iter().enumerate() {
                let name = self.arrays.get(a).map(String::as_str).unwrap_or("?");
                sink.counter(&format!("util {name}"), at, 100.0 * frac);
            }
        }
    }

    /// Renders the report as text with one sparkline per signal.
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "time-series: {} windows x {} cycles | SLO objective {:.2}% | {} burn alert(s)",
            self.windows.len(),
            self.window_cycles,
            100.0 * self.objective,
            self.alerts.len()
        );
        let series =
            |f: fn(&WindowReport) -> f64| -> Vec<f64> { self.windows.iter().map(f).collect() };
        let rows: [(&str, Vec<f64>); 5] = [
            ("offered", series(|w| w.offered as f64)),
            ("goodput", series(|w| w.slo_met as f64)),
            ("dropped", series(|w| w.dropped as f64)),
            ("queue", series(|w| w.queue_mean)),
            ("p99", series(|w| w.p99 as f64)),
        ];
        for (label, values) in &rows {
            let peak = values.iter().cloned().fold(0.0f64, f64::max);
            let _ = writeln!(out, "{:<8} {} peak {:.0}", label, sparkline(values), peak);
        }
        for a in &self.alerts {
            let _ = writeln!(
                out,
                "ALERT windows {}..{}: fast-span SLO miss {:.1}% = {:.1}x error budget \
                 (threshold {:.1}x over {}/{} windows)",
                a.start_window,
                a.end_window,
                100.0 * a.peak_fast_miss_rate,
                a.peak_burn_rate,
                self.burn_threshold,
                self.fast_windows,
                self.slow_windows
            );
        }
        let _ = writeln!(
            out,
            "latency sketch (err <= {:.2}%): n {}  p50 {}  p99 {}  p99.9 {}  max {}",
            100.0 * QuantileSketch::RELATIVE_ERROR_BOUND,
            self.total.count,
            self.total.p50,
            self.total.p99,
            self.total.p999,
            self.total.max
        );
        if !self.exemplars.is_empty() {
            let _ = writeln!(
                out,
                "{:<10} {:<22} {:>10} {:>8} {:>10} {:>10} {:>7}",
                "worst req", "network", "latency", "form", "queue", "compute", "refill"
            );
            for e in &self.exemplars {
                let name = self.networks.get(e.net).map(String::as_str).unwrap_or("?");
                let _ = writeln!(
                    out,
                    "{:<10} {:<22} {:>10} {:>8} {:>10} {:>10} {:>7}",
                    e.id, name, e.latency, e.form_wait, e.queue_wait, e.compute, e.refill
                );
            }
        }
        let _ = writeln!(out, "results {}", self.results_hash());
        out
    }
}

/// Unicode sparkline of `values`, max-pooled down to at most 64 glyphs.
fn sparkline(values: &[f64]) -> String {
    const GLYPHS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
    const WIDTH: usize = 64;
    if values.is_empty() {
        return String::new();
    }
    let pooled: Vec<f64> = if values.len() <= WIDTH {
        values.to_vec()
    } else {
        (0..WIDTH)
            .map(|i| {
                let lo = i * values.len() / WIDTH;
                let hi = ((i + 1) * values.len() / WIDTH).max(lo + 1);
                values[lo..hi].iter().cloned().fold(0.0f64, f64::max)
            })
            .collect()
    };
    let peak = pooled.iter().cloned().fold(0.0f64, f64::max);
    pooled
        .iter()
        .map(|&v| {
            if peak <= 0.0 {
                GLYPHS[0]
            } else {
                let level = ((v / peak) * (GLYPHS.len() - 1) as f64).round() as usize;
                GLYPHS[level.min(GLYPHS.len() - 1)]
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn window(index: u64, completed: u64, slo_met: u64) -> WindowReport {
        WindowReport {
            index,
            offered: completed,
            completed,
            dropped: 0,
            slo_met,
            queue_min: 0,
            queue_mean: 0.0,
            queue_max: 0,
            busy_frac: vec![0.5],
            net_completed: vec![completed],
            net_slo_met: vec![slo_met],
            p50: 10,
            p99: 20,
            p999: 30,
        }
    }

    fn cfg() -> TimeSeriesConfig {
        TimeSeriesConfig {
            fast_windows: 1,
            slow_windows: 4,
            burn_threshold: 10.0,
            objective: 0.99,
            ..TimeSeriesConfig::new()
        }
    }

    #[test]
    fn healthy_windows_never_alert() {
        // 0.5% misses: below the 10x-budget (10%) trigger everywhere.
        let windows: Vec<WindowReport> = (0..16).map(|i| window(i, 200, 199)).collect();
        assert!(burn_alerts(&windows, &cfg()).is_empty());
    }

    #[test]
    fn sustained_burn_alerts_once_and_merges_windows() {
        // Healthy for 6 windows, then a sustained 50% miss rate: one
        // episode, starting only after the slow span fills with misses.
        let mut windows: Vec<WindowReport> = (0..6).map(|i| window(i, 100, 100)).collect();
        for i in 6..16 {
            windows.push(window(i, 100, 50));
        }
        let alerts = burn_alerts(&windows, &cfg());
        assert_eq!(alerts.len(), 1, "{alerts:?}");
        let a = alerts[0];
        assert!(a.start_window >= 6);
        assert_eq!(a.end_window, 15);
        assert!((a.peak_fast_miss_rate - 0.5).abs() < 1e-9);
        assert!((a.peak_burn_rate - 50.0).abs() < 1e-6);
    }

    #[test]
    fn short_runs_cannot_alert() {
        // Fewer windows than the slow span: no verdict possible.
        let windows: Vec<WindowReport> = (0..3).map(|i| window(i, 10, 0)).collect();
        assert!(burn_alerts(&windows, &cfg()).is_empty());
    }

    #[test]
    fn empty_windows_do_not_divide_by_zero() {
        let windows: Vec<WindowReport> = (0..8).map(|i| window(i, 0, 0)).collect();
        assert!(burn_alerts(&windows, &cfg()).is_empty());
    }

    #[test]
    fn recorder_bins_intervals_across_window_boundaries() {
        let ts_cfg = TimeSeriesConfig {
            window_cycles: Some(100),
            ..TimeSeriesConfig::new()
        };
        let mut rec = TimeSeriesRecorder::new(&ts_cfg, 1000, 2, 1);
        // A busy segment spanning three windows: 50 + 100 + 30 cycles.
        rec.busy(0, 50, 230);
        // Queue depth 0 up to cycle 50, then 4 over the same interval.
        rec.queue_depth_to(50, 0);
        rec.queue_depth_to(230, 4);
        rec.offered(10);
        rec.dropped(10);
        let report = rec.finish(
            250,
            vec!["a0".to_string(), "a1".to_string()],
            vec!["net".to_string()],
            RunManifest::capture(),
        );
        assert_eq!(report.windows.len(), 3);
        assert!((report.windows[0].busy_frac[0] - 0.5).abs() < 1e-9);
        assert!((report.windows[1].busy_frac[0] - 1.0).abs() < 1e-9);
        // Final window is clipped to the 250-cycle makespan: 30/50.
        assert!((report.windows[2].busy_frac[0] - 0.6).abs() < 1e-9);
        assert_eq!(report.windows[0].queue_max, 4);
        assert!((report.windows[1].queue_mean - 4.0).abs() < 1e-9);
        assert_eq!(report.windows[0].offered, 1);
        assert_eq!(report.windows[0].dropped, 1);
    }

    #[test]
    fn exemplars_keep_the_k_worst_deterministically() {
        let ts_cfg = TimeSeriesConfig {
            window_cycles: Some(1000),
            exemplars: 3,
            ..TimeSeriesConfig::new()
        };
        let mut rec = TimeSeriesRecorder::new(&ts_cfg, 1000, 1, 1);
        for (id, latency) in [(0, 50), (1, 900), (2, 10), (3, 700), (4, 800), (5, 900)] {
            rec.completed(
                Exemplar {
                    id,
                    net: 0,
                    high_priority: false,
                    arrived: 0,
                    completed_at: latency,
                    latency,
                    form_wait: 0,
                    queue_wait: 0,
                    compute: latency,
                    refill: 0,
                },
                true,
            );
        }
        let report = rec.finish(
            1000,
            vec!["a".to_string()],
            vec!["net".to_string()],
            RunManifest::capture(),
        );
        let kept: Vec<(u64, u64)> = report.exemplars.iter().map(|e| (e.latency, e.id)).collect();
        // Worst first; the 900-latency tie keeps the earlier id first.
        assert_eq!(kept, vec![(900, 1), (900, 5), (800, 4)]);
    }

    #[test]
    fn json_is_balanced_tagged_and_fingerprinted() {
        let ts_cfg = TimeSeriesConfig {
            window_cycles: Some(100),
            ..TimeSeriesConfig::new()
        };
        let mut rec = TimeSeriesRecorder::new(&ts_cfg, 300, 1, 1);
        rec.offered(5);
        rec.completed(
            Exemplar {
                id: 0,
                net: 0,
                high_priority: false,
                arrived: 5,
                completed_at: 105,
                latency: 100,
                form_wait: 0,
                queue_wait: 40,
                compute: 60,
                refill: 0,
            },
            true,
        );
        let report = rec.finish(
            300,
            vec!["8x8:os".to_string()],
            vec!["tiny".to_string()],
            RunManifest::capture(),
        );
        let json = report.to_json();
        assert!(json.contains("\"schema\": \"fuseconv-serve-timeseries-v1\""));
        assert!(json.contains("\"results_fnv1a64\": \"fnv1a64:"));
        assert!(json.contains("\"schema\": \"fuseconv-manifest-v1\""));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
        let text = report.to_text();
        assert!(text.contains("time-series"));
        assert!(text.contains("goodput"));
        assert!(text.contains("worst req"));
    }

    #[test]
    fn config_validation_rejects_nonsense() {
        assert!(TimeSeriesConfig::new().validate().is_ok());
        let bad = |f: fn(&mut TimeSeriesConfig)| {
            let mut c = TimeSeriesConfig::new();
            f(&mut c);
            c.validate().is_err()
        };
        assert!(bad(|c| c.window_cycles = Some(0)));
        assert!(bad(|c| c.target_windows = 0));
        assert!(bad(|c| c.fast_windows = 0));
        assert!(bad(|c| {
            c.fast_windows = 4;
            c.slow_windows = 2;
        }));
        assert!(bad(|c| c.objective = 1.5));
        assert!(bad(|c| c.burn_threshold = 0.0));
    }

    #[test]
    fn sparkline_pools_long_series() {
        let values: Vec<f64> = (0..1000).map(|i| i as f64).collect();
        let line = sparkline(&values);
        assert_eq!(line.chars().count(), 64);
        assert!(line.ends_with('█'));
        assert!(line.starts_with('▁'));
        assert_eq!(sparkline(&[]), "");
    }
}

//! Chrome-trace export for pod simulations.
//!
//! Lays the pod out as process 0 ("serving pod") with one lane (tid)
//! per array carrying batch spans, a `queue_depth` counter track, and
//! instant events marking preemptions. The host-side span profiler
//! renders its spans on **pid 1** (`fuseconv_telemetry::span`), so a
//! serve trace and the host trace concatenate into one Perfetto view
//! without colliding. One array cycle maps to 1 µs, matching the
//! single-array `ChromeTraceSink` convention.

use crate::spec::PodSpec;
use fuseconv_telemetry::RunManifest;

/// Escapes a string for inclusion in a JSON string literal.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Default cap on recorded events; million-request runs would
/// otherwise emit gigabyte traces.
pub const DEFAULT_EVENT_CAP: usize = 50_000;

/// Collects pod scheduling events and renders Chrome trace JSON.
#[derive(Debug, Clone)]
pub struct PodTraceSink {
    lanes: Vec<String>,
    events: Vec<String>,
    cap: usize,
    truncated: bool,
    last_depth: Option<usize>,
}

impl PodTraceSink {
    /// An empty sink with one lane per array of `pod`, capped at
    /// [`DEFAULT_EVENT_CAP`] events.
    pub fn new(pod: &PodSpec) -> Self {
        PodTraceSink {
            lanes: pod.arrays.iter().map(|a| a.name()).collect(),
            events: Vec::new(),
            cap: DEFAULT_EVENT_CAP,
            truncated: false,
            last_depth: None,
        }
    }

    /// Overrides the event cap (tests use tiny caps).
    pub fn with_event_cap(mut self, cap: usize) -> Self {
        self.cap = cap.max(1);
        self
    }

    fn push(&mut self, event: String) {
        if self.events.len() >= self.cap {
            self.truncated = true;
            return;
        }
        self.events.push(event);
    }

    /// Records one executed batch as a complete span on the array's
    /// lane.
    pub fn batch_span(&mut self, array: usize, start: u64, end: u64, label: &str) {
        self.push(format!(
            "{{\"name\":\"{}\",\"ph\":\"X\",\"ts\":{},\"dur\":{},\"pid\":0,\"tid\":{}}}",
            json_escape(label),
            start,
            end.saturating_sub(start).max(1),
            array
        ));
    }

    /// Samples the queue depth; emitted only when the value changes so
    /// the counter track stays compact.
    pub fn queue_depth(&mut self, at: u64, depth: usize) {
        if self.last_depth == Some(depth) {
            return;
        }
        self.last_depth = Some(depth);
        self.push(format!(
            "{{\"name\":\"queue_depth\",\"ph\":\"C\",\"ts\":{at},\"pid\":0,\"args\":{{\"depth\":{depth}}}}}"
        ));
    }

    /// Emits a sample on a named counter track (`ph: "C"`); the
    /// time-series layer uses this for goodput and per-array
    /// utilization tracks beside the batch lanes.
    pub fn counter(&mut self, name: &str, at: u64, value: f64) {
        self.push(format!(
            "{{\"name\":\"{}\",\"ph\":\"C\",\"ts\":{},\"pid\":0,\"args\":{{\"value\":{:.3}}}}}",
            json_escape(name),
            at,
            value
        ));
    }

    /// Marks a preemption as an instant event on the victim array's
    /// lane.
    pub fn preemption(&mut self, array: usize, at: u64, label: &str) {
        self.push(format!(
            "{{\"name\":\"preempt: {}\",\"ph\":\"i\",\"ts\":{},\"pid\":0,\"tid\":{},\"s\":\"t\"}}",
            json_escape(label),
            at,
            array
        ));
    }

    /// Number of span/counter/instant events recorded so far.
    pub fn event_count(&self) -> usize {
        self.events.len()
    }

    /// Whether the event cap truncated the recording.
    pub fn is_truncated(&self) -> bool {
        self.truncated
    }

    /// Finishes the trace: process/thread-name metadata for every
    /// array lane, the recorded events, and the run manifest under a
    /// top-level `"manifest"` key (viewers ignore unknown keys).
    pub fn into_json(self) -> String {
        let mut meta = vec![
            "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":0,\"args\":{\"name\":\"serving pod\"}}"
                .to_string(),
        ];
        for (i, lane) in self.lanes.iter().enumerate() {
            meta.push(format!(
                "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,\"tid\":{},\"args\":{{\"name\":\"array {}: {}\"}}}}",
                i,
                i,
                json_escape(lane)
            ));
        }
        meta.extend(self.events);
        format!(
            "{{\"displayTimeUnit\":\"ms\",\"traceEvents\":[{}],\"truncated\":{},\"manifest\":{}}}\n",
            meta.join(","),
            self.truncated,
            RunManifest::capture().to_json_compact()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pod() -> PodSpec {
        PodSpec::parse("8x8:os,4x4:ws").expect("valid pod")
    }

    #[test]
    fn lanes_spans_and_counters_render() {
        let mut sink = PodTraceSink::new(&pod());
        sink.batch_span(1, 10, 30, "mobilenet-v1 x4");
        sink.queue_depth(10, 3);
        sink.queue_depth(12, 3);
        sink.preemption(0, 15, "mobilenet-v1");
        assert_eq!(sink.event_count(), 3, "repeat depth samples coalesce");
        let json = sink.into_json();
        assert!(json.contains("\"name\":\"array 0: 8x8:os\""));
        assert!(json.contains("\"name\":\"array 1: 4x4:ws\""));
        assert!(json.contains("\"ph\":\"X\""));
        assert!(json.contains("\"ph\":\"C\""));
        assert!(json.contains("preempt: mobilenet-v1"));
        assert!(json.contains("\"manifest\":{\"schema\":\"fuseconv-manifest-v1\""));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
    }

    #[test]
    fn named_counter_tracks_render() {
        let mut sink = PodTraceSink::new(&pod());
        sink.counter("goodput", 100, 12.0);
        sink.counter("util 8x8:os", 100, 87.5);
        let json = sink.into_json();
        assert!(json.contains("\"name\":\"goodput\""));
        assert!(json.contains("\"name\":\"util 8x8:os\""));
        assert!(json.contains("\"value\":87.500"));
    }

    #[test]
    fn event_cap_truncates_gracefully() {
        let mut sink = PodTraceSink::new(&pod()).with_event_cap(2);
        for i in 0..10 {
            sink.batch_span(0, i, i + 1, "b");
        }
        assert_eq!(sink.event_count(), 2);
        assert!(sink.is_truncated());
        let json = sink.into_json();
        assert!(json.contains("\"truncated\":true"));
    }
}

//! Open-loop traffic generation from the vendored PRNG.
//!
//! Requests arrive Poisson-style: exponential inter-arrival gaps drawn
//! by inverse-transform sampling from [`fuseconv_tensor::rng::Rng`],
//! each request picking a network from a weighted mix and (optionally)
//! a high-priority tag. Open-loop means arrivals never slow down under
//! overload — exactly the regime where the goodput-vs-offered-load
//! curve bends.

use crate::spec::ServeError;
use fuseconv_models::Network;
use fuseconv_tensor::rng::Rng;

/// The request mix: which networks the pod serves and how often each
/// one shows up.
#[derive(Debug, Clone)]
pub struct Workload {
    networks: Vec<Network>,
    weights: Vec<u64>,
}

impl Workload {
    /// An equally-weighted mix over `networks`.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::Config`] when `networks` is empty.
    pub fn uniform(networks: Vec<Network>) -> Result<Self, ServeError> {
        let weights = vec![1; networks.len()];
        Workload::weighted(networks, weights)
    }

    /// A mix with explicit per-network weights (relative frequencies).
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::Config`] when empty, when lengths differ,
    /// or when all weights are zero.
    pub fn weighted(networks: Vec<Network>, weights: Vec<u64>) -> Result<Self, ServeError> {
        if networks.is_empty() {
            return Err(ServeError::Config("workload has no networks".to_string()));
        }
        if networks.len() != weights.len() {
            return Err(ServeError::Config(format!(
                "{} networks but {} weights",
                networks.len(),
                weights.len()
            )));
        }
        if weights.iter().all(|&w| w == 0) {
            return Err(ServeError::Config(
                "all workload weights are zero".to_string(),
            ));
        }
        Ok(Workload { networks, weights })
    }

    /// The mix's networks, in index order (request `net` fields index
    /// into this).
    pub fn networks(&self) -> &[Network] {
        &self.networks
    }

    /// Relative frequency of each network.
    pub fn weights(&self) -> &[u64] {
        &self.weights
    }

    /// Each network's share of the request stream as a fraction in
    /// `[0, 1]`; the fractions sum to 1.
    pub fn mix_fractions(&self) -> Vec<f64> {
        let total: u64 = self.weights.iter().sum();
        self.weights
            .iter()
            .map(|&w| w as f64 / total as f64)
            .collect()
    }

    /// Number of networks in the mix.
    pub fn len(&self) -> usize {
        self.networks.len()
    }

    /// Whether the mix is empty (never true for a constructed one).
    pub fn is_empty(&self) -> bool {
        self.networks.is_empty()
    }
}

/// One generated request arrival.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Arrival {
    /// Arrival time, array cycles.
    pub at: u64,
    /// Index into the workload's network list.
    pub net: usize,
    /// Whether the request is tagged high priority (preemption
    /// candidate trigger).
    pub high_priority: bool,
}

/// Deterministic open-loop arrival process.
#[derive(Debug)]
pub struct TrafficGen {
    rng: Rng,
    mean_gap: f64,
    cumulative: Vec<u64>,
    total_weight: u64,
    high_frac: f64,
}

impl TrafficGen {
    /// An arrival process with mean inter-arrival `mean_gap_cycles`,
    /// network mix from `workload`, and a `high_frac` fraction of
    /// high-priority requests, all drawn from a PRNG seeded with
    /// `seed`.
    pub fn new(seed: u64, mean_gap_cycles: f64, workload: &Workload, high_frac: f64) -> Self {
        let mut cumulative = Vec::with_capacity(workload.len());
        let mut total_weight = 0u64;
        for &w in workload.weights() {
            total_weight = total_weight.saturating_add(w);
            cumulative.push(total_weight);
        }
        TrafficGen {
            rng: Rng::seed_from_u64(seed),
            mean_gap: mean_gap_cycles.max(1.0),
            cumulative,
            total_weight,
            high_frac: high_frac.clamp(0.0, 1.0),
        }
    }

    /// Draws the next arrival strictly after `now`: an exponential gap
    /// (inverse-transform, never below one cycle), a weighted network
    /// pick and a priority coin flip. Consumes exactly three PRNG
    /// draws, so the stream is reproducible independent of simulator
    /// state.
    pub fn next_after(&mut self, now: u64) -> Arrival {
        let u = self.rng.next_f64();
        // 1 - u is in (0, 1]; ln of it is finite and non-positive.
        let gap = (-(1.0 - u).ln() * self.mean_gap).ceil().max(1.0);
        let gap = if gap >= u64::MAX as f64 {
            u64::MAX
        } else {
            gap as u64
        };
        let pick = self.rng.below(self.total_weight as usize) as u64;
        let net = self
            .cumulative
            .iter()
            .position(|&c| pick < c)
            .unwrap_or(self.cumulative.len() - 1);
        let high_priority = self.rng.next_f64() < self.high_frac;
        Arrival {
            at: now.saturating_add(gap),
            net,
            high_priority,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fuseconv_models::zoo;

    fn mix() -> Workload {
        Workload::weighted(vec![zoo::mobilenet_v1(), zoo::mobilenet_v2()], vec![3, 1])
            .expect("valid mix")
    }

    #[test]
    fn rejects_degenerate_mixes() {
        assert!(Workload::uniform(vec![]).is_err());
        assert!(Workload::weighted(vec![zoo::mobilenet_v1()], vec![0]).is_err());
        assert!(Workload::weighted(vec![zoo::mobilenet_v1()], vec![1, 2]).is_err());
    }

    #[test]
    fn arrivals_are_strictly_increasing_and_deterministic() {
        let w = mix();
        let mut a = TrafficGen::new(7, 100.0, &w, 0.25);
        let mut b = TrafficGen::new(7, 100.0, &w, 0.25);
        let mut now = 0u64;
        for _ in 0..1000 {
            let next = a.next_after(now);
            assert_eq!(next, b.next_after(now), "same seed, same stream");
            assert!(next.at > now);
            assert!(next.net < w.len());
            now = next.at;
        }
    }

    #[test]
    fn weighted_mix_respects_ratios_roughly() {
        let w = mix();
        let mut gen = TrafficGen::new(11, 10.0, &w, 0.0);
        let mut counts = [0u64; 2];
        let mut now = 0;
        for _ in 0..4000 {
            let a = gen.next_after(now);
            counts[a.net] += 1;
            now = a.at;
            assert!(!a.high_priority, "high_frac 0 never tags requests");
        }
        // 3:1 mix — allow generous slack, this is a smoke check.
        assert!(counts[0] > counts[1] * 2);
    }

    #[test]
    fn mean_gap_is_approximately_honoured() {
        let w = mix();
        let mut gen = TrafficGen::new(3, 500.0, &w, 0.0);
        let mut now = 0u64;
        let n = 4000;
        for _ in 0..n {
            now = gen.next_after(now).at;
        }
        let mean = now as f64 / n as f64;
        assert!(mean > 350.0 && mean < 700.0, "observed mean gap {mean}");
    }
}

//! Array configuration.

use std::error::Error;
use std::fmt;

/// Dimensions and features of the simulated systolic array.
///
/// # Examples
///
/// ```
/// # fn main() -> Result<(), fuseconv_systolic::ConfigError> {
/// use fuseconv_systolic::ArrayConfig;
///
/// let cfg = ArrayConfig::new(64, 64)?.with_broadcast(true);
/// assert_eq!(cfg.rows(), 64);
/// assert!(cfg.has_broadcast());
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ArrayConfig {
    rows: usize,
    cols: usize,
    broadcast: bool,
}

impl ArrayConfig {
    /// Creates an array of `rows × cols` PEs without broadcast links.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError::EmptyArray`] if either dimension is zero.
    pub fn new(rows: usize, cols: usize) -> Result<Self, ConfigError> {
        if rows == 0 || cols == 0 {
            return Err(ConfigError::EmptyArray { rows, cols });
        }
        Ok(ArrayConfig {
            rows,
            cols,
            broadcast: false,
        })
    }

    /// Creates the square `s × s` array used throughout the paper.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError::EmptyArray`] if `s` is zero.
    pub fn square(s: usize) -> Result<Self, ConfigError> {
        Self::new(s, s)
    }

    /// Enables or disables the per-row weight-broadcast links required by
    /// the FuSeConv dataflow (§IV-C-1).
    #[must_use]
    pub fn with_broadcast(mut self, broadcast: bool) -> Self {
        self.broadcast = broadcast;
        self
    }

    /// Number of PE rows (systolic dimension 2 in the paper's figures).
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of PE columns (systolic dimension 1 in the paper's figures).
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Total number of PEs.
    pub fn pe_count(&self) -> usize {
        self.rows * self.cols
    }

    /// Whether the array has per-row weight-broadcast links.
    pub fn has_broadcast(&self) -> bool {
        self.broadcast
    }
}

impl fmt::Display for ArrayConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}x{} systolic array{}",
            self.rows,
            self.cols,
            if self.broadcast {
                " with row-broadcast links"
            } else {
                ""
            }
        )
    }
}

/// Error constructing an [`ArrayConfig`] or running a simulation.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ConfigError {
    /// A zero-sized array was requested.
    EmptyArray {
        /// Requested rows.
        rows: usize,
        /// Requested columns.
        cols: usize,
    },
    /// The FuSeConv dataflow was requested on an array without broadcast
    /// links.
    BroadcastUnavailable,
    /// Simulation operands had invalid shapes.
    BadOperand {
        /// Description of the problem.
        what: &'static str,
    },
    /// The static legality gate rejected the dataflow's space–time mapping
    /// (see [`crate::legality`]).
    IllegalMapping {
        /// Name of the rejected dataflow.
        dataflow: &'static str,
        /// The concatenated legality violations.
        detail: String,
    },
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConfigError::EmptyArray { rows, cols } => {
                write!(f, "array dimensions {rows}x{cols} must be nonzero")
            }
            ConfigError::BroadcastUnavailable => write!(
                f,
                "the fuseconv dataflow requires an array with row-broadcast links"
            ),
            ConfigError::BadOperand { what } => write!(f, "invalid operand: {what}"),
            ConfigError::IllegalMapping { dataflow, detail } => {
                write!(f, "illegal {dataflow} mapping: {detail}")
            }
        }
    }
}

impl Error for ConfigError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_dimensions_rejected() {
        assert!(ArrayConfig::new(0, 4).is_err());
        assert!(ArrayConfig::new(4, 0).is_err());
        assert!(ArrayConfig::square(0).is_err());
    }

    #[test]
    fn builder_sets_broadcast() {
        let cfg = ArrayConfig::square(32).unwrap();
        assert!(!cfg.has_broadcast());
        let cfg = cfg.with_broadcast(true);
        assert!(cfg.has_broadcast());
        assert_eq!(cfg.pe_count(), 1024);
    }

    #[test]
    fn display_mentions_broadcast() {
        let cfg = ArrayConfig::new(8, 16).unwrap().with_broadcast(true);
        let s = cfg.to_string();
        assert!(s.contains("8x16"));
        assert!(s.contains("broadcast"));
    }
}

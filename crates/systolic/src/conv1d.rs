//! The FuSeConv row-broadcast dataflow (§IV-C, Figs. 5–7).
//!
//! A batch of independent stride-1 1-D convolutions — one per occupied array
//! row — runs concurrently. Within a fold:
//!
//! 1. **Load** — each row's input window (`cu + K − 1` values) is preloaded
//!    through the row's edge port, one value per cycle, pipelined:
//!    `cu + K − 1` cycles.
//! 2. **Compute** — for `K` cycles, tap `w[τ]` is broadcast over the row's
//!    weight link while the input slides one PE to the left each cycle;
//!    PE `(r, c)` accumulates `w_r[τ] · a_r[c + τ]`. *Every* used PE does a
//!    MAC every compute cycle — the full-utilization property that motivates
//!    FuSeConv.
//! 3. **Drain** — outputs leave down the columns: `ru` cycles.
//!
//! ```text
//! T_fold = (cu + K − 1) + K + ru
//! ```
//!
//! Folds tile the batch (`⌈#convs/rows⌉`) and each convolution's output
//! positions (`⌈L_out/cols⌉`).

use crate::{ArrayConfig, ConfigError, SimResult};
use fuseconv_tensor::Tensor;
use fuseconv_trace::{FoldKind, NullSink, Operand, Phase, TraceEvent, TraceSink};

/// Exact cycles of one broadcast-dataflow fold using `ru` rows, `cu`
/// output columns and kernel length `k`.
///
/// # Panics
///
/// Panics if any argument is zero.
pub fn fold_cycles(ru: usize, cu: usize, k: usize) -> u64 {
    assert!(ru > 0 && cu > 0 && k > 0, "fold dimensions must be nonzero");
    ((cu + k - 1) + k + ru) as u64
}

/// Golden model: direct stride-1 1-D convolution (cross-correlation).
///
/// # Panics
///
/// Panics if `kernel` is empty or longer than `input`.
pub fn conv1d_direct(input: &[f32], kernel: &[f32]) -> Vec<f32> {
    assert!(
        !kernel.is_empty() && kernel.len() <= input.len(),
        "kernel must be nonempty and no longer than input"
    );
    let l_out = input.len() - kernel.len() + 1;
    (0..l_out)
        .map(|c| kernel.iter().zip(&input[c..]).map(|(w, a)| w * a).sum())
        .collect()
}

/// Simulates a batch of independent stride-1 1-D convolutions using the
/// row-broadcast dataflow.
///
/// All convolutions share the kernel length; each row `r` of the batch
/// convolves `inputs[r]` with `kernels[r]`. Returns one output row per
/// convolution (shape `[#convs, L_out]`).
///
/// # Errors
///
/// - [`ConfigError::BroadcastUnavailable`] if `cfg` lacks broadcast links —
///   the dataflow physically requires them.
/// - [`ConfigError::BadOperand`] for an empty batch, mismatched batch
///   lengths, ragged inputs, or kernels longer than inputs.
pub fn simulate(
    cfg: &ArrayConfig,
    inputs: &[Vec<f32>],
    kernels: &[Vec<f32>],
) -> Result<SimResult, ConfigError> {
    simulate_traced(cfg, inputs, kernels, &mut NullSink)
}

/// [`simulate`] with every cycle narrated to `sink` as trace events.
///
/// The pipelined input preload is the fold's fill phase, the `K` broadcast
/// cycles its compute phase (each also reported as a
/// [`TraceEvent::WeightBroadcast`] tick per used row), and the output
/// drain its drain phase.
///
/// # Errors
///
/// Same as [`simulate`].
pub fn simulate_traced(
    cfg: &ArrayConfig,
    inputs: &[Vec<f32>],
    kernels: &[Vec<f32>],
    sink: &mut dyn TraceSink,
) -> Result<SimResult, ConfigError> {
    let _span = fuseconv_telemetry::span("sim.conv1d_bcast");
    if !cfg.has_broadcast() {
        return Err(ConfigError::BroadcastUnavailable);
    }
    crate::legality::gate(crate::legality::DataflowKind::RowBroadcast, cfg)?;
    if inputs.is_empty() || inputs.len() != kernels.len() {
        return Err(ConfigError::BadOperand {
            what: "batch must be nonempty with one kernel per input",
        });
    }
    let l_in = inputs[0].len();
    let k = kernels[0].len();
    if k == 0 || l_in < k {
        return Err(ConfigError::BadOperand {
            what: "kernel must be nonempty and no longer than the input",
        });
    }
    if inputs.iter().any(|i| i.len() != l_in) || kernels.iter().any(|w| w.len() != k) {
        return Err(ConfigError::BadOperand {
            what: "all inputs and kernels in a batch must have equal lengths",
        });
    }

    let n_convs = inputs.len();

    let l_out = l_in - k + 1;
    let mut out = vec![0.0f32; n_convs * l_out];
    let mut busy_trace: Vec<u32> = Vec::new();
    let mut busy_pe_cycles = 0u64;
    let mut folds = 0u64;

    let wants_pe = sink.wants_pe_fires();
    let wants_ops = sink.wants_operand_events();
    let wants_bcast = sink.wants_broadcast_events();
    for conv0 in (0..n_convs).step_by(cfg.rows()) {
        let ru = cfg.rows().min(n_convs - conv0);
        for col0 in (0..l_out).step_by(cfg.cols()) {
            let cu = cfg.cols().min(l_out - col0);
            sink.on_event(&TraceEvent::FoldStart {
                fold: folds,
                tag: folds,
                cycle: busy_trace.len() as u64,
                kind: FoldKind::RowBroadcast,
                rows_used: ru as u32,
                cols_used: cu as u32,
            });
            folds += 1;
            // Load: pipelined preload of cu + k - 1 inputs per row.
            for p in 0..(cu + k - 1) {
                let cycle = busy_trace.len() as u64;
                if wants_ops {
                    for r in 0..ru {
                        sink.on_event(&TraceEvent::OperandRead {
                            cycle,
                            operand: Operand::Ifmap,
                            lane: r as u32,
                            addr: ((conv0 + r) * l_in + (col0 + p)) as u64,
                        });
                    }
                }
                sink.on_event(&TraceEvent::Cycle {
                    cycle,
                    phase: Phase::Fill,
                    busy: 0,
                });
                busy_trace.push(0);
            }
            // Compute: k broadcast cycles, all ru*cu PEs busy.
            for tap in 0..k {
                let cycle = busy_trace.len() as u64;
                for r in 0..ru {
                    let w = kernels[conv0 + r][tap];
                    let row_in = &inputs[conv0 + r];
                    for c in 0..cu {
                        out[(conv0 + r) * l_out + (col0 + c)] += w * row_in[col0 + c + tap];
                    }
                    if wants_bcast {
                        sink.on_event(&TraceEvent::WeightBroadcast {
                            cycle,
                            row: r as u32,
                            tap: tap as u32,
                        });
                    }
                    if wants_ops {
                        sink.on_event(&TraceEvent::OperandRead {
                            cycle,
                            operand: Operand::Filter,
                            lane: r as u32,
                            addr: ((conv0 + r) * k + tap) as u64,
                        });
                    }
                    if wants_pe {
                        for c in 0..cu {
                            sink.on_event(&TraceEvent::PeFire {
                                cycle,
                                row: r as u32,
                                col: c as u32,
                            });
                        }
                    }
                }
                sink.on_event(&TraceEvent::Cycle {
                    cycle,
                    phase: Phase::Compute,
                    busy: (ru * cu) as u32,
                });
                busy_trace.push((ru * cu) as u32);
                busy_pe_cycles += (ru * cu) as u64;
            }
            // Drain: outputs of array row d exit down the columns.
            for d in 0..ru {
                let cycle = busy_trace.len() as u64;
                if wants_ops {
                    for c in 0..cu {
                        sink.on_event(&TraceEvent::OutputWrite {
                            cycle,
                            addr: ((conv0 + d) * l_out + (col0 + c)) as u64,
                        });
                    }
                }
                sink.on_event(&TraceEvent::Cycle {
                    cycle,
                    phase: Phase::Drain,
                    busy: 0,
                });
                busy_trace.push(0);
            }
            sink.on_event(&TraceEvent::FoldEnd {
                fold: folds - 1,
                cycle: busy_trace.len() as u64,
            });
        }
    }

    let output = Tensor::from_vec(out, &[n_convs, l_out]).expect("nonzero dims");
    let macs = (n_convs * l_out * k) as u64;
    let sim = SimResult::new(
        output,
        macs,
        busy_pe_cycles,
        cfg.pe_count(),
        folds,
        busy_trace,
    );
    crate::record_sim_metrics(&sim);
    Ok(sim)
}

/// Analytic total cycles for a batch of `n_convs` stride-1 1-D convolutions
/// with output length `l_out` and kernel length `k` — the closed form
/// validated against [`simulate`].
///
/// # Panics
///
/// Panics if any argument is zero.
pub fn analytic_cycles(cfg: &ArrayConfig, n_convs: usize, l_out: usize, k: usize) -> u64 {
    assert!(
        n_convs > 0 && l_out > 0 && k > 0,
        "batch dimensions must be nonzero"
    );
    let mut total = 0u64;
    for conv0 in (0..n_convs).step_by(cfg.rows()) {
        let ru = cfg.rows().min(n_convs - conv0);
        for col0 in (0..l_out).step_by(cfg.cols()) {
            let cu = cfg.cols().min(l_out - col0);
            total += fold_cycles(ru, cu, k);
        }
    }
    total
}

/// All 1-D convolution work belonging to one channel: a single kernel
/// applied independently to several *lines* (the feature-map rows or columns
/// of Fig. 6's slicing).
///
/// Lines of the same channel share their kernel, so several of them can sit
/// side by side in one array row and still be served by that row's single
/// weight-broadcast link — the packing that keeps the array full when the
/// output lines are shorter than the array (late network layers).
#[derive(Debug, Clone, PartialEq)]
pub struct ChannelLines {
    /// The channel's 1-D kernel.
    pub kernel: Vec<f32>,
    /// The input lines this kernel filters.
    pub lines: Vec<Vec<f32>>,
}

/// Cycles of the packed mapping at a *fixed* packing factor `lpr`.
fn cycles_at_lpr(
    cfg: &ArrayConfig,
    channels: usize,
    lines: usize,
    l_out: usize,
    k: usize,
    lpr: usize,
) -> u64 {
    let slots_per_channel = lines.div_ceil(lpr);
    let n_slots = channels * slots_per_channel;
    let mut total = 0u64;
    for slot0 in (0..n_slots).step_by(cfg.rows()) {
        let ru = cfg.rows().min(n_slots - slot0);
        if lpr == 1 {
            for c0 in (0..l_out).step_by(cfg.cols()) {
                let cw = cfg.cols().min(l_out - c0);
                total += ((cw + k - 1) + k + ru) as u64;
            }
        } else {
            let max_width = lpr * l_out;
            total += ((max_width + k - 1) + k + ru) as u64;
        }
    }
    total
}

/// The packing factor the scheduler uses: the number of same-channel lines
/// sharing one array row, chosen to *minimize total cycles*. Packing trades
/// row-parallelism for serial load width, so the optimum is workload-
/// dependent: deep batches of short lines pack hard, shallow batches often
/// stay at 1.
pub fn lines_per_row(
    cfg: &ArrayConfig,
    channels: usize,
    lines: usize,
    l_out: usize,
    k: usize,
) -> usize {
    let max_lpr = if l_out >= cfg.cols() {
        1
    } else {
        (cfg.cols() / l_out).clamp(1, lines)
    };
    (1..=max_lpr)
        .min_by_key(|&lpr| cycles_at_lpr(cfg, channels, lines, l_out, k, lpr))
        .unwrap_or(1)
}

/// Simulates a packed batch: each channel's lines are grouped
/// [`lines_per_row`] to an array row (sharing the row's broadcast weight);
/// row groups from different channels fill the remaining array rows.
///
/// Returns outputs of shape `[channels · lines, l_out]`, ordered channel-
/// major then line-major.
///
/// # Errors
///
/// - [`ConfigError::BroadcastUnavailable`] without broadcast links.
/// - [`ConfigError::BadOperand`] for an empty batch, ragged line or kernel
///   lengths, unequal line counts per channel, or kernels longer than lines.
pub fn simulate_packed(cfg: &ArrayConfig, work: &[ChannelLines]) -> Result<SimResult, ConfigError> {
    simulate_packed_traced(cfg, work, &mut NullSink)
}

/// [`simulate_packed`] with every cycle narrated to `sink` as trace
/// events.
///
/// Fold occupancy is reported in schedule positions: `rows_used` counts
/// occupied slots (array rows) and `cols_used` the nominal packed row
/// width. Ifmap addresses during fill are schedule-positional within each
/// slot's first line.
///
/// # Errors
///
/// Same as [`simulate_packed`].
pub fn simulate_packed_traced(
    cfg: &ArrayConfig,
    work: &[ChannelLines],
    sink: &mut dyn TraceSink,
) -> Result<SimResult, ConfigError> {
    let _span = fuseconv_telemetry::span("sim.conv1d_packed");
    if !cfg.has_broadcast() {
        return Err(ConfigError::BroadcastUnavailable);
    }
    crate::legality::gate(crate::legality::DataflowKind::RowBroadcast, cfg)?;
    let Some(first) = work.first() else {
        return Err(ConfigError::BadOperand {
            what: "packed batch must be nonempty",
        });
    };
    let k = first.kernel.len();
    let lines = first.lines.len();
    let Some(l_in) = first.lines.first().map(Vec::len) else {
        return Err(ConfigError::BadOperand {
            what: "every channel needs at least one line",
        });
    };
    if k == 0 || l_in < k {
        return Err(ConfigError::BadOperand {
            what: "kernel must be nonempty and no longer than the lines",
        });
    }
    for ch in work {
        if ch.kernel.len() != k
            || ch.lines.len() != lines
            || ch.lines.iter().any(|l| l.len() != l_in)
        {
            return Err(ConfigError::BadOperand {
                what: "all channels must have equal kernel, line count and line length",
            });
        }
    }

    let n_ch = work.len();
    let l_out = l_in - k + 1;
    let lpr = lines_per_row(cfg, n_ch, lines, l_out, k);
    // One slot = one array row's worth of same-channel lines.
    let slots: Vec<(usize, usize, usize)> = (0..n_ch)
        .flat_map(|ch| {
            (0..lines)
                .step_by(lpr)
                .map(move |l0| (ch, l0, lpr.min(lines - l0)))
        })
        .collect();

    let mut out = vec![0.0f32; n_ch * lines * l_out];
    let mut busy_trace: Vec<u32> = Vec::new();
    let mut busy_pe_cycles = 0u64;
    let mut folds = 0u64;
    let col_tiles: Vec<(usize, usize)> = if lpr == 1 {
        (0..l_out)
            .step_by(cfg.cols())
            .map(|c0| (c0, cfg.cols().min(l_out - c0)))
            .collect()
    } else {
        vec![(0, 0)] // single tile; width is per-slot (n_lines · l_out)
    };

    let wants_pe = sink.wants_pe_fires();
    let wants_ops = sink.wants_operand_events();
    let wants_bcast = sink.wants_broadcast_events();
    for slot0 in (0..slots.len()).step_by(cfg.rows()) {
        let chunk = &slots[slot0..slots.len().min(slot0 + cfg.rows())];
        let ru = chunk.len();
        for &(c0, cw) in &col_tiles {
            // Load time is charged for the nominal row width (lpr lines)
            // even in remainder folds — the input ports run for the full
            // schedule regardless; this matches `analytic_cycles_packed`.
            let width = |n_lines: usize| if lpr == 1 { cw } else { n_lines * l_out };
            let nominal_width = if lpr == 1 { cw } else { lpr * l_out };
            sink.on_event(&TraceEvent::FoldStart {
                fold: folds,
                tag: folds,
                cycle: busy_trace.len() as u64,
                kind: FoldKind::RowBroadcast,
                rows_used: ru as u32,
                cols_used: nominal_width as u32,
            });
            folds += 1;
            for p in 0..(nominal_width + k - 1) {
                let cycle = busy_trace.len() as u64;
                if wants_ops {
                    for (r, &(ch, l0, _)) in chunk.iter().enumerate() {
                        sink.on_event(&TraceEvent::OperandRead {
                            cycle,
                            operand: Operand::Ifmap,
                            lane: r as u32,
                            addr: ((ch * lines + l0) * l_in + p) as u64,
                        });
                    }
                }
                sink.on_event(&TraceEvent::Cycle {
                    cycle,
                    phase: Phase::Fill,
                    busy: 0,
                });
                busy_trace.push(0);
            }
            let fold_busy: u64 = chunk.iter().map(|&(_, _, n)| width(n) as u64).sum();
            for tap in 0..k {
                let cycle = busy_trace.len() as u64;
                for (r, &(ch, l0, n_lines)) in chunk.iter().enumerate() {
                    let kernel = &work[ch].kernel;
                    let span = if lpr == 1 { 1 } else { n_lines };
                    if wants_bcast {
                        sink.on_event(&TraceEvent::WeightBroadcast {
                            cycle,
                            row: r as u32,
                            tap: tap as u32,
                        });
                    }
                    if wants_ops {
                        sink.on_event(&TraceEvent::OperandRead {
                            cycle,
                            operand: Operand::Filter,
                            lane: r as u32,
                            addr: (ch * k + tap) as u64,
                        });
                    }
                    for li in 0..span.max(1) {
                        let line_idx = l0 + li;
                        let line = &work[ch].lines[line_idx];
                        let (cols0, colw) = if lpr == 1 { (c0, cw) } else { (0, l_out) };
                        for c in 0..colw {
                            out[(ch * lines + line_idx) * l_out + cols0 + c] +=
                                kernel[tap] * line[cols0 + c + tap];
                            if wants_pe {
                                sink.on_event(&TraceEvent::PeFire {
                                    cycle,
                                    row: r as u32,
                                    col: (li * l_out + c) as u32,
                                });
                            }
                        }
                    }
                }
                sink.on_event(&TraceEvent::Cycle {
                    cycle,
                    phase: Phase::Compute,
                    busy: fold_busy as u32,
                });
                busy_trace.push(fold_busy as u32);
                busy_pe_cycles += fold_busy;
            }
            // One drain cycle per occupied slot, each flushing that slot's
            // outputs down the columns.
            for &(ch, l0, n_lines) in chunk {
                let cycle = busy_trace.len() as u64;
                if wants_ops {
                    let span = if lpr == 1 { 1 } else { n_lines };
                    for li in 0..span.max(1) {
                        let (cols0, colw) = if lpr == 1 { (c0, cw) } else { (0, l_out) };
                        for c in 0..colw {
                            sink.on_event(&TraceEvent::OutputWrite {
                                cycle,
                                addr: ((ch * lines + l0 + li) * l_out + cols0 + c) as u64,
                            });
                        }
                    }
                }
                sink.on_event(&TraceEvent::Cycle {
                    cycle,
                    phase: Phase::Drain,
                    busy: 0,
                });
                busy_trace.push(0);
            }
            sink.on_event(&TraceEvent::FoldEnd {
                fold: folds - 1,
                cycle: busy_trace.len() as u64,
            });
        }
    }

    let output = Tensor::from_vec(out, &[n_ch * lines, l_out]).expect("nonzero dims");
    let macs = (n_ch * lines * l_out * k) as u64;
    let sim = SimResult::new(
        output,
        macs,
        busy_pe_cycles,
        cfg.pe_count(),
        folds,
        busy_trace,
    );
    crate::record_sim_metrics(&sim);
    Ok(sim)
}

/// Analytic cycles of the packed mapping for `channels` channels of
/// `lines` lines each, output length `l_out`, kernel length `k`.
///
/// The closed form validated against [`simulate_packed`]; this is what the
/// latency model uses for FuSeConv operators (stride is folded into
/// `l_out`/`lines` by the caller).
///
/// # Panics
///
/// Panics if any argument is zero.
pub fn analytic_cycles_packed(
    cfg: &ArrayConfig,
    channels: usize,
    lines: usize,
    l_out: usize,
    k: usize,
) -> u64 {
    assert!(
        channels > 0 && lines > 0 && l_out > 0 && k > 0,
        "packed dimensions must be nonzero"
    );
    let lpr = lines_per_row(cfg, channels, lines, l_out, k);
    cycles_at_lpr(cfg, channels, lines, l_out, k, lpr)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bcast(rows: usize, cols: usize) -> ArrayConfig {
        ArrayConfig::new(rows, cols).unwrap().with_broadcast(true)
    }

    #[test]
    fn requires_broadcast_links() {
        let cfg = ArrayConfig::new(4, 4).unwrap();
        let r = simulate(&cfg, &[vec![1.0; 5]], &[vec![1.0; 3]]);
        assert_eq!(r.unwrap_err(), ConfigError::BroadcastUnavailable);
    }

    #[test]
    fn single_conv_matches_golden() {
        let cfg = bcast(4, 8);
        let input = vec![1.0, 2.0, 3.0, 4.0, 5.0];
        let kernel = vec![1.0, 0.0, -1.0];
        let sim = simulate(
            &cfg,
            std::slice::from_ref(&input),
            std::slice::from_ref(&kernel),
        )
        .unwrap();
        assert_eq!(sim.output().as_slice(), conv1d_direct(&input, &kernel));
        assert_eq!(sim.folds(), 1);
        assert_eq!(sim.cycles(), fold_cycles(1, 3, 3));
    }

    #[test]
    fn batch_matches_golden_with_folds() {
        let cfg = bcast(2, 3);
        let inputs: Vec<Vec<f32>> = (0..5)
            .map(|r| (0..9).map(|x| ((r * 7 + x) % 5) as f32 - 2.0).collect())
            .collect();
        let kernels: Vec<Vec<f32>> = (0..5)
            .map(|r| (0..3).map(|t| (r + t) as f32 * 0.5 - 1.0).collect())
            .collect();
        let sim = simulate(&cfg, &inputs, &kernels).unwrap();
        for (r, (i, w)) in inputs.iter().zip(&kernels).enumerate() {
            let gold = conv1d_direct(i, w);
            let got = &sim.output().as_slice()[r * 7..(r + 1) * 7];
            for (a, b) in got.iter().zip(&gold) {
                assert!((a - b).abs() < 1e-5);
            }
        }
        // ceil(5/2)=3 row tiles, ceil(7/3)=3 col tiles.
        assert_eq!(sim.folds(), 9);
        assert_eq!(sim.cycles(), analytic_cycles(&cfg, 5, 7, 3));
    }

    #[test]
    fn compute_phase_fully_utilizes_used_pes() {
        // The headline property (§IV-C-3): during compute, every used PE
        // MACs every cycle.
        let cfg = bcast(4, 4);
        let inputs: Vec<Vec<f32>> = (0..4).map(|_| vec![1.0; 6]).collect();
        let kernels: Vec<Vec<f32>> = (0..4).map(|_| vec![1.0; 3]).collect();
        let sim = simulate(&cfg, &inputs, &kernels).unwrap();
        let peak = sim.busy_trace().iter().copied().max().unwrap();
        assert_eq!(peak as usize, cfg.pe_count());
        // busy cycles = folds * k at full array occupancy
        assert_eq!(sim.busy_pe_cycles(), 4 * 4 * 3);
    }

    #[test]
    fn ragged_batches_rejected() {
        let cfg = bcast(2, 2);
        assert!(simulate(&cfg, &[], &[]).is_err());
        assert!(simulate(&cfg, &[vec![1.0; 4]], &[]).is_err());
        assert!(simulate(
            &cfg,
            &[vec![1.0; 4], vec![1.0; 5]],
            &[vec![1.0; 2], vec![1.0; 2]]
        )
        .is_err());
        assert!(simulate(&cfg, &[vec![1.0; 2]], &[vec![1.0; 3]]).is_err());
        assert!(simulate(&cfg, &[vec![1.0; 2]], &[vec![]]).is_err());
    }

    #[test]
    fn broadcast_beats_single_column_for_same_work() {
        // A depthwise-like workload: 16 independent 3-tap convolutions over
        // 18-element inputs. Via im2col each is a 16x9 · 9x1 GEMM on one
        // column; via broadcast they pack the whole array.
        let cfg = bcast(8, 8);
        let inputs: Vec<Vec<f32>> = (0..16).map(|_| vec![1.0; 18]).collect();
        let kernels: Vec<Vec<f32>> = (0..16).map(|_| vec![1.0; 3]).collect();
        let fuse = simulate(&cfg, &inputs, &kernels).unwrap();
        // The single-column GEMM alternative: each channel is a 16x9 · 9x1
        // GEMM (M = 16 outputs, K = 9 taps of a hypothetical 3x3 kernel with
        // the same MAC count), split into two row folds of 8.
        let im2col_cycles: u64 = (0..16).map(|_| crate::gemm::fold_cycles(8, 1, 9) * 2).sum();
        assert!(
            fuse.cycles() < im2col_cycles,
            "broadcast {} should beat im2col {}",
            fuse.cycles(),
            im2col_cycles
        );
        // Short kernels make the load phase dominate each fold, so absolute
        // utilization is modest — but still far above im2col's 1/cols bound.
        assert!(fuse.utilization() > 1.0 / cfg.cols() as f64);
    }
}

#[cfg(test)]
mod packed_tests {
    use super::*;

    fn bcast(rows: usize, cols: usize) -> ArrayConfig {
        ArrayConfig::new(rows, cols).unwrap().with_broadcast(true)
    }

    fn work(channels: usize, lines: usize, l_in: usize, k: usize) -> Vec<ChannelLines> {
        (0..channels)
            .map(|ch| ChannelLines {
                kernel: (0..k).map(|t| (ch * 3 + t) as f32 * 0.25 - 0.5).collect(),
                lines: (0..lines)
                    .map(|l| {
                        (0..l_in)
                            .map(|x| ((ch + 2 * l + x) % 7) as f32 - 3.0)
                            .collect()
                    })
                    .collect(),
            })
            .collect()
    }

    #[test]
    fn packed_is_functionally_exact() {
        let cfg = bcast(4, 16);
        let w = work(3, 5, 9, 3);
        let sim = simulate_packed(&cfg, &w).unwrap();
        for (ch, cw) in w.iter().enumerate() {
            for (li, line) in cw.lines.iter().enumerate() {
                let gold = conv1d_direct(line, &cw.kernel);
                let got = &sim.output().as_slice()[(ch * 5 + li) * 7..(ch * 5 + li + 1) * 7];
                for (a, b) in got.iter().zip(&gold) {
                    assert!((a - b).abs() < 1e-5);
                }
            }
        }
    }

    #[test]
    fn packed_cycles_match_analytic() {
        for (rows, cols, ch, lines, l_in, k) in [
            (4usize, 16usize, 3usize, 5usize, 9usize, 3usize),
            (8, 8, 2, 7, 20, 3),   // l_out=18 > cols → column tiling path
            (2, 32, 5, 4, 6, 3),   // heavy packing: l_out=4, 8 lines/row
            (64, 64, 10, 7, 9, 3), // one row per channel
        ] {
            let cfg = bcast(rows, cols);
            let w = work(ch, lines, l_in, k);
            let sim = simulate_packed(&cfg, &w).unwrap();
            let analytic = analytic_cycles_packed(&cfg, ch, lines, l_in - k + 1, k);
            assert_eq!(
                sim.cycles(),
                analytic,
                "{rows}x{cols} ch={ch} lines={lines} l_in={l_in}"
            );
            assert_eq!(sim.macs(), (ch * lines * (l_in - k + 1) * k) as u64);
        }
    }

    #[test]
    fn packing_beats_one_conv_per_row_for_short_lines() {
        // Late-layer shape: 7x7 map, 64 channels, k=3 on a 64x64 array.
        // Packed: each channel's 7 lines fit one row → 1 fold.
        let cfg = bcast(64, 64);
        let w = work(64, 7, 9, 3);
        let packed = simulate_packed(&cfg, &w).unwrap();
        let flat_inputs: Vec<Vec<f32>> = w.iter().flat_map(|c| c.lines.iter().cloned()).collect();
        let flat_kernels: Vec<Vec<f32>> = w
            .iter()
            .flat_map(|c| std::iter::repeat_n(c.kernel.clone(), 7))
            .collect();
        let naive = simulate(&cfg, &flat_inputs, &flat_kernels).unwrap();
        assert!(packed.cycles() < naive.cycles());
        assert_eq!(packed.folds(), 1);
        // Functional agreement between the two mappings.
        assert!(packed.output().max_abs_diff(naive.output()).unwrap() < 1e-5);
    }

    #[test]
    fn packed_validation() {
        let cfg = bcast(4, 4);
        assert!(simulate_packed(&cfg, &[]).is_err());
        // Ragged line counts across channels.
        let mut w = work(2, 3, 8, 3);
        w[1].lines.pop();
        assert!(simulate_packed(&cfg, &w).is_err());
        // Kernel longer than line.
        let w = work(1, 1, 2, 3);
        assert!(simulate_packed(&cfg, &w).is_err());
        // No broadcast.
        let plain = ArrayConfig::new(4, 4).unwrap();
        assert!(simulate_packed(&plain, &work(1, 1, 8, 3)).is_err());
    }

    #[test]
    fn lines_per_row_boundaries() {
        let cfg = bcast(64, 64);
        // Deep batch of short lines: pack a whole channel per row.
        assert_eq!(lines_per_row(&cfg, 64, 7, 7, 3), 7);
        // Lines as wide as (or wider than) the array: no packing possible.
        assert_eq!(lines_per_row(&cfg, 4, 10, 64, 3), 1);
        assert_eq!(lines_per_row(&cfg, 4, 10, 100, 3), 1);
        // Plenty of row capacity but few slots either way: the optimizer
        // may legitimately pick any factor; it must never be slower than
        // the unpacked mapping.
        let best = lines_per_row(&cfg, 1, 2, 17, 1);
        assert!(cycles_at_lpr(&cfg, 1, 2, 17, 1, best) <= cycles_at_lpr(&cfg, 1, 2, 17, 1, 1));
    }

    #[test]
    fn packing_choice_is_never_worse_than_either_extreme() {
        for (cfg, ch, lines, l_out, k) in [
            (bcast(64, 64), 1usize, 2usize, 17usize, 1usize),
            (bcast(64, 64), 64, 7, 7, 3),
            (bcast(8, 8), 3, 5, 4, 3),
            (bcast(16, 16), 2, 9, 3, 5),
        ] {
            let chosen = analytic_cycles_packed(&cfg, ch, lines, l_out, k);
            let unpacked = cycles_at_lpr(&cfg, ch, lines, l_out, k, 1);
            assert!(chosen <= unpacked, "{ch} {lines} {l_out} {k}");
        }
    }
}

#[cfg(test)]
mod grid_tests {
    use super::*;
    use fuseconv_tensor::rng::Rng;

    /// Packed mapping: functional exactness and analytic-cycle equality
    /// across a deterministic grid of geometries.
    #[test]
    fn packed_matches_golden_and_analytic_on_grid() {
        let mut rng = Rng::seed_from_u64(0x7061_636b);
        for &(rows, cols) in &[(1, 1), (2, 9), (4, 4), (5, 2)] {
            let cfg = ArrayConfig::new(rows, cols).unwrap().with_broadcast(true);
            for &(channels, lines, l_in, k) in &[
                (1, 1, 1, 1),
                (1, 7, 13, 4),
                (5, 1, 8, 3),
                (3, 4, 9, 3),
                (2, 6, 14, 1),
                (4, 3, 5, 5),
            ] {
                let w: Vec<ChannelLines> = (0..channels)
                    .map(|_| ChannelLines {
                        kernel: (0..k).map(|_| rng.uniform(-0.5, 0.5)).collect(),
                        lines: (0..lines)
                            .map(|_| (0..l_in).map(|_| rng.uniform(-0.5, 0.5)).collect())
                            .collect(),
                    })
                    .collect();
                let sim = simulate_packed(&cfg, &w).unwrap();
                let l_out = l_in - k + 1;
                let ctx = format!("{rows}x{cols} array, c{channels} l{lines} in{l_in} k{k}");
                for (ch, cw) in w.iter().enumerate() {
                    for (li, line) in cw.lines.iter().enumerate() {
                        let gold = conv1d_direct(line, &cw.kernel);
                        let got = &sim.output().as_slice()
                            [(ch * lines + li) * l_out..(ch * lines + li + 1) * l_out];
                        for (a, b) in got.iter().zip(&gold) {
                            assert!((a - b).abs() < 1e-4, "{ctx}");
                        }
                    }
                }
                assert_eq!(
                    sim.cycles(),
                    analytic_cycles_packed(&cfg, channels, lines, l_out, k),
                    "{ctx}"
                );
            }
        }
    }

    /// The broadcast simulator is functionally exact and its cycle count
    /// matches the closed form, across a grid of batches and array sizes.
    #[test]
    fn simulator_matches_golden_and_analytic_on_grid() {
        let mut rng = Rng::seed_from_u64(0x6276_3164);
        for &(rows, cols) in &[(1, 1), (2, 5), (4, 4), (5, 2)] {
            let cfg = ArrayConfig::new(rows, cols).unwrap().with_broadcast(true);
            for &(n_convs, l_in, k) in &[
                (1, 1, 1),
                (1, 15, 5),
                (9, 7, 3),
                (4, 12, 1),
                (7, 9, 4),
                (3, 5, 5),
            ] {
                let inputs: Vec<Vec<f32>> = (0..n_convs)
                    .map(|_| (0..l_in).map(|_| rng.uniform(-0.5, 0.5)).collect())
                    .collect();
                let kernels: Vec<Vec<f32>> = (0..n_convs)
                    .map(|_| (0..k).map(|_| rng.uniform(-0.5, 0.5)).collect())
                    .collect();
                let sim = simulate(&cfg, &inputs, &kernels).unwrap();
                let l_out = l_in - k + 1;
                let ctx = format!("{rows}x{cols} array, n{n_convs} in{l_in} k{k}");
                for (r, (i, w)) in inputs.iter().zip(&kernels).enumerate() {
                    let gold = conv1d_direct(i, w);
                    let got = &sim.output().as_slice()[r * l_out..(r + 1) * l_out];
                    for (a, b) in got.iter().zip(&gold) {
                        assert!((a - b).abs() < 1e-4, "{ctx}");
                    }
                }
                assert_eq!(
                    sim.cycles(),
                    analytic_cycles(&cfg, n_convs, l_out, k),
                    "{ctx}"
                );
                assert_eq!(sim.macs(), (n_convs * l_out * k) as u64, "{ctx}");
            }
        }
    }
}

//! Output-stationary GEMM on the systolic array (§II-C, Fig. 1(d)).
//!
//! Operand `A` (`M×K`) streams in from the left, one array row per output
//! row; operand `B` (`K×N`) streams from the top, one array column per
//! output column. Both streams are skewed one cycle per position so that
//! PE `(i, j)` performs the MAC for reduction index `t − i − j` at cycle
//! `t`. Outputs stay in the PEs and drain down the columns afterwards.
//!
//! Work larger than the array is tiled into `⌈M/rows⌉·⌈N/cols⌉` *folds*;
//! each fold of used size `ru×cu` costs
//!
//! ```text
//! T_fold = (ru + cu + K − 2)   skewed fill + compute
//!        +  ru                 output drain down the columns
//!        = 2·ru + cu + K − 2   (the SCALE-Sim output-stationary formula)
//! ```

use crate::{ArrayConfig, ConfigError, SimResult};
use fuseconv_tensor::Tensor;
use fuseconv_trace::{FoldKind, NullSink, Operand, Phase, TraceEvent, TraceSink};

/// Exact cycles of one output-stationary fold using `ru` rows, `cu`
/// columns and reduction length `k`.
///
/// # Panics
///
/// Panics if any argument is zero.
pub fn fold_cycles(ru: usize, cu: usize, k: usize) -> u64 {
    assert!(ru > 0 && cu > 0 && k > 0, "fold dimensions must be nonzero");
    (2 * ru + cu + k - 2) as u64
}

/// Simulates `C = A·B` on the array, cycle by cycle.
///
/// Returns the product (bit-identical to the golden
/// [`matmul`](fuseconv_tensor::gemm::matmul) up to f32 summation order — the
/// simulator accumulates in the same `k` order, so results are exactly
/// equal) together with exact cycle counts and the per-cycle busy trace.
///
/// # Errors
///
/// Returns [`ConfigError::BadOperand`] unless `a` is `M×K` and `b` is `K×N`.
pub fn simulate(cfg: &ArrayConfig, a: &Tensor, b: &Tensor) -> Result<SimResult, ConfigError> {
    simulate_traced(cfg, a, b, &mut NullSink)
}

/// [`simulate`] with every cycle narrated to `sink` as trace events.
///
/// Per-PE and per-element events are generated only when the sink opts in
/// ([`TraceSink::wants_pe_fires`] / [`TraceSink::wants_operand_events`]);
/// the cycle numbers carried by the events match the returned
/// [`SimResult::cycles`](crate::SimResult::cycles) exactly.
///
/// # Errors
///
/// Returns [`ConfigError::BadOperand`] unless `a` is `M×K` and `b` is `K×N`.
pub fn simulate_traced(
    cfg: &ArrayConfig,
    a: &Tensor,
    b: &Tensor,
    sink: &mut dyn TraceSink,
) -> Result<SimResult, ConfigError> {
    let _span = fuseconv_telemetry::span("sim.gemm_os");
    crate::legality::gate(crate::legality::DataflowKind::OutputStationary, cfg)?;
    let (ad, bd) = (a.shape().dims(), b.shape().dims());
    if ad.len() != 2 || bd.len() != 2 || ad[1] != bd[0] {
        return Err(ConfigError::BadOperand {
            what: "gemm operands must be MxK and KxN",
        });
    }
    let (m, k, n) = (ad[0], ad[1], bd[1]);
    let (av, bv) = (a.as_slice(), b.as_slice());
    let mut out = vec![0.0f32; m * n];
    let mut busy_trace: Vec<u32> = Vec::new();
    let mut busy_pe_cycles = 0u64;
    let mut folds = 0u64;
    let wants_pe = sink.wants_pe_fires();
    let wants_ops = sink.wants_operand_events();

    for row0 in (0..m).step_by(cfg.rows()) {
        let ru = cfg.rows().min(m - row0);
        for col0 in (0..n).step_by(cfg.cols()) {
            let cu = cfg.cols().min(n - col0);
            sink.on_event(&TraceEvent::FoldStart {
                fold: folds,
                tag: folds,
                cycle: busy_trace.len() as u64,
                kind: FoldKind::OutputStationary,
                rows_used: ru as u32,
                cols_used: cu as u32,
            });
            folds += 1;
            // Skewed fill + compute window. OS has no separate fill phase:
            // operand skew overlaps compute, so the window is all Compute.
            let window = ru + cu + k - 2;
            for t in 0..window {
                let cycle = busy_trace.len() as u64;
                let mut busy = 0u32;
                for i in 0..ru {
                    // PE (i, j) is busy when 0 <= t - i - j < k.
                    if t < i {
                        continue;
                    }
                    for j in 0..cu {
                        if t < i + j {
                            break;
                        }
                        let kk = t - i - j;
                        if kk < k {
                            let gi = row0 + i;
                            let gj = col0 + j;
                            out[gi * n + gj] += av[gi * k + kk] * bv[kk * n + gj];
                            busy += 1;
                            if wants_pe {
                                sink.on_event(&TraceEvent::PeFire {
                                    cycle,
                                    row: i as u32,
                                    col: j as u32,
                                });
                            }
                            if wants_ops {
                                sink.on_event(&TraceEvent::OperandRead {
                                    cycle,
                                    operand: Operand::Ifmap,
                                    lane: i as u32,
                                    addr: (gi * k + kk) as u64,
                                });
                                sink.on_event(&TraceEvent::OperandRead {
                                    cycle,
                                    operand: Operand::Filter,
                                    lane: j as u32,
                                    addr: (kk * n + gj) as u64,
                                });
                            }
                        }
                    }
                }
                sink.on_event(&TraceEvent::Cycle {
                    cycle,
                    phase: Phase::Compute,
                    busy,
                });
                busy_trace.push(busy);
                busy_pe_cycles += busy as u64;
            }
            // Output drain: ru cycles, no MACs; drain cycle d flushes array
            // row d's accumulated outputs down the columns.
            for d in 0..ru {
                let cycle = busy_trace.len() as u64;
                if wants_ops {
                    for j in 0..cu {
                        sink.on_event(&TraceEvent::OutputWrite {
                            cycle,
                            addr: ((row0 + d) * n + (col0 + j)) as u64,
                        });
                    }
                }
                sink.on_event(&TraceEvent::Cycle {
                    cycle,
                    phase: Phase::Drain,
                    busy: 0,
                });
                busy_trace.push(0);
            }
            sink.on_event(&TraceEvent::FoldEnd {
                fold: folds - 1,
                cycle: busy_trace.len() as u64,
            });
        }
    }

    let output = Tensor::from_vec(out, &[m, n]).expect("m, n nonzero");
    let macs = (m * k * n) as u64;
    let sim = SimResult::new(
        output,
        macs,
        busy_pe_cycles,
        cfg.pe_count(),
        folds,
        busy_trace,
    );
    crate::record_sim_metrics(&sim);
    Ok(sim)
}

/// Analytic total cycles for an `M×K·K×N` GEMM on the array — the closed
/// form the cycle simulator is validated against.
///
/// # Panics
///
/// Panics if any dimension is zero.
pub fn analytic_cycles(cfg: &ArrayConfig, m: usize, k: usize, n: usize) -> u64 {
    assert!(m > 0 && k > 0 && n > 0, "gemm dimensions must be nonzero");
    let mut total = 0u64;
    for row0 in (0..m).step_by(cfg.rows()) {
        let ru = cfg.rows().min(m - row0);
        for col0 in (0..n).step_by(cfg.cols()) {
            let cu = cfg.cols().min(n - col0);
            total += fold_cycles(ru, cu, k);
        }
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;
    use fuseconv_tensor::gemm::matmul;

    fn tensor(dims: &[usize], f: impl FnMut(&[usize]) -> f32) -> Tensor {
        Tensor::from_fn(dims, f).unwrap()
    }

    #[test]
    fn single_fold_matches_golden_model() {
        let cfg = ArrayConfig::new(8, 8).unwrap();
        let a = tensor(&[4, 5], |ix| (ix[0] * 5 + ix[1]) as f32 * 0.25 - 2.0);
        let b = tensor(&[5, 6], |ix| ((ix[0] + 2 * ix[1]) % 7) as f32 - 3.0);
        let sim = simulate(&cfg, &a, &b).unwrap();
        let gold = matmul(&a, &b).unwrap();
        assert!(sim.output().max_abs_diff(&gold).unwrap() < 1e-5);
        assert_eq!(sim.folds(), 1);
        assert_eq!(sim.cycles(), fold_cycles(4, 6, 5));
    }

    #[test]
    fn multi_fold_matches_golden_model() {
        let cfg = ArrayConfig::new(3, 4).unwrap();
        let a = tensor(&[7, 5], |ix| ((ix[0] * 3 + ix[1]) % 5) as f32 - 1.0);
        let b = tensor(&[5, 9], |ix| ((ix[0] * 2 + ix[1]) % 3) as f32);
        let sim = simulate(&cfg, &a, &b).unwrap();
        let gold = matmul(&a, &b).unwrap();
        assert!(sim.output().max_abs_diff(&gold).unwrap() < 1e-5);
        assert_eq!(sim.folds(), 3 * 3); // ceil(7/3)=3 row tiles, ceil(9/4)=3 col tiles
        assert_eq!(sim.cycles(), analytic_cycles(&cfg, 7, 5, 9));
    }

    #[test]
    fn macs_counted_exactly() {
        let cfg = ArrayConfig::new(2, 2).unwrap();
        let a = tensor(&[3, 4], |_| 1.0);
        let b = tensor(&[4, 5], |_| 1.0);
        let sim = simulate(&cfg, &a, &b).unwrap();
        assert_eq!(sim.macs(), 3 * 4 * 5);
        // Every MAC occupies exactly one PE-cycle.
        assert_eq!(sim.busy_pe_cycles(), sim.macs());
    }

    #[test]
    fn busy_trace_is_consistent() {
        let cfg = ArrayConfig::new(4, 4).unwrap();
        let a = tensor(&[4, 6], |_| 1.0);
        let b = tensor(&[6, 4], |_| 1.0);
        let sim = simulate(&cfg, &a, &b).unwrap();
        let total: u64 = sim.busy_trace().iter().map(|&b| b as u64).sum();
        assert_eq!(total, sim.busy_pe_cycles());
        assert_eq!(sim.busy_trace().len() as u64, sim.cycles());
        // No cycle can have more busy PEs than exist.
        assert!(sim
            .busy_trace()
            .iter()
            .all(|&b| b as usize <= cfg.pe_count()));
    }

    #[test]
    fn single_column_gemm_uses_one_column() {
        // The depthwise/im2col case of §III-B: N = 1 ⇒ only one array
        // column is ever busy ⇒ utilization bounded by 1/cols.
        let cfg = ArrayConfig::new(8, 8).unwrap();
        let a = tensor(&[8, 9], |_| 1.0);
        let b = tensor(&[9, 1], |_| 1.0);
        let sim = simulate(&cfg, &a, &b).unwrap();
        let max_busy = sim.busy_trace().iter().copied().max().unwrap();
        assert!(max_busy as usize <= cfg.rows());
        assert!(sim.utilization() <= 1.0 / cfg.cols() as f64 + 1e-9);
    }

    #[test]
    fn bad_operands_rejected() {
        let cfg = ArrayConfig::new(4, 4).unwrap();
        let a = tensor(&[2, 3], |_| 0.0);
        let b = tensor(&[4, 2], |_| 0.0);
        assert!(simulate(&cfg, &a, &b).is_err());
        let v = tensor(&[3], |_| 0.0);
        assert!(simulate(&cfg, &a, &v).is_err());
    }

    #[test]
    fn fold_formula_matches_scale_sim() {
        // 2*Sr + Sc + T - 2 with full array usage.
        assert_eq!(fold_cycles(32, 32, 100), 2 * 32 + 32 + 100 - 2);
        // Degenerate 1x1x1 fold: one compute cycle plus one drain cycle.
        assert_eq!(fold_cycles(1, 1, 1), 2);
    }

    #[test]
    #[should_panic(expected = "must be nonzero")]
    fn fold_cycles_rejects_zero() {
        let _ = fold_cycles(0, 1, 1);
    }
}

#[cfg(test)]
mod grid_tests {
    use super::*;
    use fuseconv_tensor::gemm::matmul;
    use fuseconv_tensor::rng::Rng;

    /// The cycle simulator computes exactly the golden GEMM and exactly
    /// the analytic cycle count, across a deterministic grid of shapes and
    /// array sizes (the former randomized property, now seeded and
    /// reproducible offline).
    #[test]
    fn simulator_matches_golden_and_analytic_on_grid() {
        let mut rng = Rng::seed_from_u64(0x6765_6d6d);
        for &(rows, cols) in &[(1, 1), (2, 5), (4, 4), (5, 2), (3, 1)] {
            let cfg = ArrayConfig::new(rows, cols).unwrap();
            for &(m, k, n) in &[
                (1, 1, 1),
                (1, 7, 1),
                (11, 1, 5),
                (4, 5, 6),
                (7, 5, 9),
                (8, 9, 1),
                (12, 11, 12),
            ] {
                let a = Tensor::from_fn(&[m, k], |_| rng.uniform(-0.5, 0.5)).unwrap();
                let b = Tensor::from_fn(&[k, n], |_| rng.uniform(-0.5, 0.5)).unwrap();
                let sim = simulate(&cfg, &a, &b).unwrap();
                let gold = matmul(&a, &b).unwrap();
                let ctx = format!("{rows}x{cols} array, {m}x{k}x{n}");
                assert!(sim.output().max_abs_diff(&gold).unwrap() < 1e-4, "{ctx}");
                assert_eq!(sim.cycles(), analytic_cycles(&cfg, m, k, n), "{ctx}");
                assert_eq!(sim.macs(), (m * k * n) as u64, "{ctx}");
                assert_eq!(sim.busy_pe_cycles(), sim.macs(), "{ctx}");
            }
        }
    }
}

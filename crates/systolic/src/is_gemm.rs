//! Input-stationary GEMM — the third dataflow §II-C names ("we can
//! similarly study input and weight stationary dataflows").
//!
//! A tile of `A` (`M×K`) is pinned in the PEs — array row `i` holds output
//! row `m0+i`, array column `j` holds reduction index `k0+j`. Columns of
//! `B` stream through the array (one per cycle, skewed), partial sums flow
//! *rightward along rows* and exit at the right edge. The temporal
//! dimension is `N`:
//!
//! ```text
//! T_fold = cu                    input preload (one array column per cycle)
//!        + (N + ru + cu − 2)     skewed streaming + drain
//!        = ru + 2·cu + N − 2
//! ```
//!
//! Tiles run over `M` (array rows) and `K` (array columns); `K`-tiles
//! accumulate into the same outputs (in output SRAM, free of array
//! cycles), exactly mirroring the weight-stationary treatment.

use crate::{ArrayConfig, ConfigError, SimResult};
use fuseconv_tensor::Tensor;
use fuseconv_trace::{FoldKind, NullSink, Operand, Phase, TraceEvent, TraceSink};

/// Exact cycles of one input-stationary fold using `ru` rows, `cu`
/// columns and `n` streamed output columns.
///
/// # Panics
///
/// Panics if any argument is zero.
pub fn fold_cycles(ru: usize, cu: usize, n: usize) -> u64 {
    assert!(ru > 0 && cu > 0 && n > 0, "fold dimensions must be nonzero");
    (cu + (n + ru + cu - 2)) as u64
}

/// Simulates `C = A·B` under the input-stationary dataflow, cycle by
/// cycle.
///
/// # Errors
///
/// Returns [`ConfigError::BadOperand`] unless `a` is `M×K` and `b` is
/// `K×N`.
pub fn simulate(cfg: &ArrayConfig, a: &Tensor, b: &Tensor) -> Result<SimResult, ConfigError> {
    simulate_traced(cfg, a, b, &mut NullSink)
}

/// [`simulate`] with every cycle narrated to `sink` as trace events.
///
/// The input preload is reported as the fold's fill phase; the streaming
/// window (whose tail doubles as the drain) as its compute phase. Output
/// writes are emitted as each partial sum leaves the rightmost array
/// column.
///
/// # Errors
///
/// Returns [`ConfigError::BadOperand`] unless `a` is `M×K` and `b` is
/// `K×N`.
pub fn simulate_traced(
    cfg: &ArrayConfig,
    a: &Tensor,
    b: &Tensor,
    sink: &mut dyn TraceSink,
) -> Result<SimResult, ConfigError> {
    let _span = fuseconv_telemetry::span("sim.gemm_is");
    crate::legality::gate(crate::legality::DataflowKind::InputStationary, cfg)?;
    let (ad, bd) = (a.shape().dims(), b.shape().dims());
    if ad.len() != 2 || bd.len() != 2 || ad[1] != bd[0] {
        return Err(ConfigError::BadOperand {
            what: "gemm operands must be MxK and KxN",
        });
    }
    let (m, k, n) = (ad[0], ad[1], bd[1]);
    let (av, bv) = (a.as_slice(), b.as_slice());
    let mut out = vec![0.0f32; m * n];
    let mut busy_trace: Vec<u32> = Vec::new();
    let mut busy_pe_cycles = 0u64;
    let mut folds = 0u64;
    let wants_pe = sink.wants_pe_fires();
    let wants_ops = sink.wants_operand_events();

    for m0 in (0..m).step_by(cfg.rows()) {
        let ru = cfg.rows().min(m - m0);
        for k0 in (0..k).step_by(cfg.cols()) {
            let cu = cfg.cols().min(k - k0);
            sink.on_event(&TraceEvent::FoldStart {
                fold: folds,
                tag: folds,
                cycle: busy_trace.len() as u64,
                kind: FoldKind::InputStationary,
                rows_used: ru as u32,
                cols_used: cu as u32,
            });
            folds += 1;
            // Input preload: one array column per cycle, no MACs.
            for p in 0..cu {
                let cycle = busy_trace.len() as u64;
                if wants_ops {
                    for i in 0..ru {
                        sink.on_event(&TraceEvent::OperandRead {
                            cycle,
                            operand: Operand::Ifmap,
                            lane: i as u32,
                            addr: ((m0 + i) * k + (k0 + p)) as u64,
                        });
                    }
                }
                sink.on_event(&TraceEvent::Cycle {
                    cycle,
                    phase: Phase::Fill,
                    busy: 0,
                });
                busy_trace.push(0);
            }
            // Skewed streaming: PE (i, j) multiplies b[k0+j, n'] with its
            // stationary a[m0+i, k0+j] at cycle t = n' + i + j.
            let window = n + ru + cu - 2;
            for t in 0..window {
                let cycle = busy_trace.len() as u64;
                let mut busy = 0u32;
                for i in 0..ru {
                    if t < i {
                        continue;
                    }
                    for j in 0..cu {
                        if t < i + j {
                            break;
                        }
                        let nn = t - i - j;
                        if nn < n {
                            out[(m0 + i) * n + nn] +=
                                av[(m0 + i) * k + (k0 + j)] * bv[(k0 + j) * n + nn];
                            busy += 1;
                            if wants_pe {
                                sink.on_event(&TraceEvent::PeFire {
                                    cycle,
                                    row: i as u32,
                                    col: j as u32,
                                });
                            }
                            if wants_ops {
                                sink.on_event(&TraceEvent::OperandRead {
                                    cycle,
                                    operand: Operand::Filter,
                                    lane: j as u32,
                                    addr: ((k0 + j) * n + nn) as u64,
                                });
                                if j == cu - 1 {
                                    // Partial sum exits the right edge.
                                    sink.on_event(&TraceEvent::OutputWrite {
                                        cycle,
                                        addr: ((m0 + i) * n + nn) as u64,
                                    });
                                }
                            }
                        }
                    }
                }
                sink.on_event(&TraceEvent::Cycle {
                    cycle,
                    phase: Phase::Compute,
                    busy,
                });
                busy_trace.push(busy);
                busy_pe_cycles += busy as u64;
            }
            sink.on_event(&TraceEvent::FoldEnd {
                fold: folds - 1,
                cycle: busy_trace.len() as u64,
            });
        }
    }

    let output = Tensor::from_vec(out, &[m, n]).expect("m, n nonzero");
    let sim = SimResult::new(
        output,
        (m * k * n) as u64,
        busy_pe_cycles,
        cfg.pe_count(),
        folds,
        busy_trace,
    );
    crate::record_sim_metrics(&sim);
    Ok(sim)
}

/// Analytic total cycles for an `M×K·K×N` input-stationary GEMM.
///
/// # Panics
///
/// Panics if any dimension is zero.
pub fn analytic_cycles(cfg: &ArrayConfig, m: usize, k: usize, n: usize) -> u64 {
    assert!(m > 0 && k > 0 && n > 0, "gemm dimensions must be nonzero");
    let mut total = 0u64;
    for m0 in (0..m).step_by(cfg.rows()) {
        let ru = cfg.rows().min(m - m0);
        for k0 in (0..k).step_by(cfg.cols()) {
            let cu = cfg.cols().min(k - k0);
            total += fold_cycles(ru, cu, n);
        }
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;
    use fuseconv_tensor::gemm::matmul;

    fn tensor(dims: &[usize], f: impl FnMut(&[usize]) -> f32) -> Tensor {
        Tensor::from_fn(dims, f).unwrap()
    }

    #[test]
    fn matches_golden_model() {
        let cfg = ArrayConfig::new(3, 4).unwrap();
        let a = tensor(&[7, 5], |ix| ((ix[0] * 3 + ix[1]) % 5) as f32 - 1.5);
        let b = tensor(&[5, 9], |ix| ((ix[0] * 2 + ix[1]) % 3) as f32 * 0.5);
        let sim = simulate(&cfg, &a, &b).unwrap();
        let gold = matmul(&a, &b).unwrap();
        assert!(sim.output().max_abs_diff(&gold).unwrap() < 1e-5);
        // ceil(7/3)=3 m-tiles, ceil(5/4)=2 k-tiles.
        assert_eq!(sim.folds(), 6);
        assert_eq!(sim.cycles(), analytic_cycles(&cfg, 7, 5, 9));
    }

    #[test]
    fn temporal_dimension_is_n() {
        let cfg = ArrayConfig::new(8, 8).unwrap();
        assert_eq!(fold_cycles(8, 8, 100), (8 + 100 + 8 + 8 - 2) as u64);
        let narrow = analytic_cycles(&cfg, 8, 8, 10);
        let wide = analytic_cycles(&cfg, 8, 8, 100);
        assert!(wide > narrow);
    }

    #[test]
    fn is_beats_os_and_ws_for_wide_outputs_with_small_inputs() {
        // M=8, K=8 fits in the array; N=1000 streams through once under
        // input-stationary, but refolds N/cols times under the others.
        let cfg = ArrayConfig::new(8, 8).unwrap();
        let is = analytic_cycles(&cfg, 8, 8, 1000);
        let os = crate::gemm::analytic_cycles(&cfg, 8, 8, 1000);
        let ws = crate::ws_gemm::analytic_cycles(&cfg, 8, 8, 1000);
        assert!(is < os, "input-stationary {is} vs output-stationary {os}");
        assert!(is < ws, "input-stationary {is} vs weight-stationary {ws}");
    }

    #[test]
    fn three_dataflows_agree_functionally() {
        let cfg = ArrayConfig::new(4, 3).unwrap();
        let a = tensor(&[6, 7], |ix| ((ix[0] + 2 * ix[1]) % 5) as f32 - 2.0);
        let b = tensor(&[7, 5], |ix| ((3 * ix[0] + ix[1]) % 4) as f32 * 0.3);
        let os = crate::gemm::simulate(&cfg, &a, &b).unwrap();
        let ws = crate::ws_gemm::simulate(&cfg, &a, &b).unwrap();
        let is = simulate(&cfg, &a, &b).unwrap();
        assert!(os.output().max_abs_diff(ws.output()).unwrap() < 1e-5);
        assert!(os.output().max_abs_diff(is.output()).unwrap() < 1e-5);
    }

    #[test]
    fn macs_accounting() {
        let cfg = ArrayConfig::new(4, 4).unwrap();
        let a = tensor(&[6, 5], |_| 1.0);
        let b = tensor(&[5, 3], |_| 1.0);
        let sim = simulate(&cfg, &a, &b).unwrap();
        assert_eq!(sim.macs(), 6 * 5 * 3);
        assert_eq!(sim.busy_pe_cycles(), sim.macs());
    }

    #[test]
    fn bad_operands_rejected() {
        let cfg = ArrayConfig::new(4, 4).unwrap();
        let a = tensor(&[2, 3], |_| 0.0);
        let b = tensor(&[4, 2], |_| 0.0);
        assert!(simulate(&cfg, &a, &b).is_err());
    }
}

#[cfg(test)]
mod grid_tests {
    use super::*;
    use fuseconv_tensor::gemm::matmul;
    use fuseconv_tensor::rng::Rng;

    /// Input-stationary simulation is functionally exact and matches its
    /// closed form across a deterministic grid of shapes and array sizes.
    #[test]
    fn simulator_matches_golden_and_analytic_on_grid() {
        let mut rng = Rng::seed_from_u64(0x6973_6765);
        for &(rows, cols) in &[(1, 1), (2, 5), (4, 4), (5, 2), (3, 1)] {
            let cfg = ArrayConfig::new(rows, cols).unwrap();
            for &(m, k, n) in &[
                (1, 1, 1),
                (1, 7, 1),
                (9, 1, 5),
                (4, 5, 6),
                (7, 5, 9),
                (8, 9, 1),
            ] {
                let a = Tensor::from_fn(&[m, k], |_| rng.uniform(-0.5, 0.5)).unwrap();
                let b = Tensor::from_fn(&[k, n], |_| rng.uniform(-0.5, 0.5)).unwrap();
                let sim = simulate(&cfg, &a, &b).unwrap();
                let gold = matmul(&a, &b).unwrap();
                let ctx = format!("{rows}x{cols} array, {m}x{k}x{n}");
                assert!(sim.output().max_abs_diff(&gold).unwrap() < 1e-4, "{ctx}");
                assert_eq!(sim.cycles(), analytic_cycles(&cfg, m, k, n), "{ctx}");
            }
        }
    }
}

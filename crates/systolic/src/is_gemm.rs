//! Input-stationary GEMM — the third dataflow §II-C names ("we can
//! similarly study input and weight stationary dataflows").
//!
//! A tile of `A` (`M×K`) is pinned in the PEs — array row `i` holds output
//! row `m0+i`, array column `j` holds reduction index `k0+j`. Columns of
//! `B` stream through the array (one per cycle, skewed), partial sums flow
//! *rightward along rows* and exit at the right edge. The temporal
//! dimension is `N`:
//!
//! ```text
//! T_fold = cu                    input preload (one array column per cycle)
//!        + (N + ru + cu − 2)     skewed streaming + drain
//!        = ru + 2·cu + N − 2
//! ```
//!
//! Tiles run over `M` (array rows) and `K` (array columns); `K`-tiles
//! accumulate into the same outputs (in output SRAM, free of array
//! cycles), exactly mirroring the weight-stationary treatment.

use crate::{ArrayConfig, ConfigError, SimResult};
use fuseconv_tensor::Tensor;

/// Exact cycles of one input-stationary fold using `ru` rows, `cu`
/// columns and `n` streamed output columns.
///
/// # Panics
///
/// Panics if any argument is zero.
pub fn fold_cycles(ru: usize, cu: usize, n: usize) -> u64 {
    assert!(ru > 0 && cu > 0 && n > 0, "fold dimensions must be nonzero");
    (cu + (n + ru + cu - 2)) as u64
}

/// Simulates `C = A·B` under the input-stationary dataflow, cycle by
/// cycle.
///
/// # Errors
///
/// Returns [`ConfigError::BadOperand`] unless `a` is `M×K` and `b` is
/// `K×N`.
pub fn simulate(cfg: &ArrayConfig, a: &Tensor, b: &Tensor) -> Result<SimResult, ConfigError> {
    let (ad, bd) = (a.shape().dims(), b.shape().dims());
    if ad.len() != 2 || bd.len() != 2 || ad[1] != bd[0] {
        return Err(ConfigError::BadOperand {
            what: "gemm operands must be MxK and KxN",
        });
    }
    let (m, k, n) = (ad[0], ad[1], bd[1]);
    let (av, bv) = (a.as_slice(), b.as_slice());
    let mut out = vec![0.0f32; m * n];
    let mut busy_trace: Vec<u32> = Vec::new();
    let mut busy_pe_cycles = 0u64;
    let mut folds = 0u64;

    for m0 in (0..m).step_by(cfg.rows()) {
        let ru = cfg.rows().min(m - m0);
        for k0 in (0..k).step_by(cfg.cols()) {
            let cu = cfg.cols().min(k - k0);
            folds += 1;
            // Input preload: one array column per cycle, no MACs.
            busy_trace.extend(std::iter::repeat_n(0, cu));
            // Skewed streaming: PE (i, j) multiplies b[k0+j, n'] with its
            // stationary a[m0+i, k0+j] at cycle t = n' + i + j.
            let window = n + ru + cu - 2;
            for t in 0..window {
                let mut busy = 0u32;
                for i in 0..ru {
                    if t < i {
                        continue;
                    }
                    for j in 0..cu {
                        if t < i + j {
                            break;
                        }
                        let nn = t - i - j;
                        if nn < n {
                            out[(m0 + i) * n + nn] +=
                                av[(m0 + i) * k + (k0 + j)] * bv[(k0 + j) * n + nn];
                            busy += 1;
                        }
                    }
                }
                busy_trace.push(busy);
                busy_pe_cycles += busy as u64;
            }
        }
    }

    let output = Tensor::from_vec(out, &[m, n]).expect("m, n nonzero");
    Ok(SimResult::new(
        output,
        (m * k * n) as u64,
        busy_pe_cycles,
        cfg.pe_count(),
        folds,
        busy_trace,
    ))
}

/// Analytic total cycles for an `M×K·K×N` input-stationary GEMM.
///
/// # Panics
///
/// Panics if any dimension is zero.
pub fn analytic_cycles(cfg: &ArrayConfig, m: usize, k: usize, n: usize) -> u64 {
    assert!(m > 0 && k > 0 && n > 0, "gemm dimensions must be nonzero");
    let mut total = 0u64;
    for m0 in (0..m).step_by(cfg.rows()) {
        let ru = cfg.rows().min(m - m0);
        for k0 in (0..k).step_by(cfg.cols()) {
            let cu = cfg.cols().min(k - k0);
            total += fold_cycles(ru, cu, n);
        }
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;
    use fuseconv_tensor::gemm::matmul;

    fn tensor(dims: &[usize], f: impl FnMut(&[usize]) -> f32) -> Tensor {
        Tensor::from_fn(dims, f).unwrap()
    }

    #[test]
    fn matches_golden_model() {
        let cfg = ArrayConfig::new(3, 4).unwrap();
        let a = tensor(&[7, 5], |ix| ((ix[0] * 3 + ix[1]) % 5) as f32 - 1.5);
        let b = tensor(&[5, 9], |ix| ((ix[0] * 2 + ix[1]) % 3) as f32 * 0.5);
        let sim = simulate(&cfg, &a, &b).unwrap();
        let gold = matmul(&a, &b).unwrap();
        assert!(sim.output().max_abs_diff(&gold).unwrap() < 1e-5);
        // ceil(7/3)=3 m-tiles, ceil(5/4)=2 k-tiles.
        assert_eq!(sim.folds(), 6);
        assert_eq!(sim.cycles(), analytic_cycles(&cfg, 7, 5, 9));
    }

    #[test]
    fn temporal_dimension_is_n() {
        let cfg = ArrayConfig::new(8, 8).unwrap();
        assert_eq!(fold_cycles(8, 8, 100), (8 + 100 + 8 + 8 - 2) as u64);
        let narrow = analytic_cycles(&cfg, 8, 8, 10);
        let wide = analytic_cycles(&cfg, 8, 8, 100);
        assert!(wide > narrow);
    }

    #[test]
    fn is_beats_os_and_ws_for_wide_outputs_with_small_inputs() {
        // M=8, K=8 fits in the array; N=1000 streams through once under
        // input-stationary, but refolds N/cols times under the others.
        let cfg = ArrayConfig::new(8, 8).unwrap();
        let is = analytic_cycles(&cfg, 8, 8, 1000);
        let os = crate::gemm::analytic_cycles(&cfg, 8, 8, 1000);
        let ws = crate::ws_gemm::analytic_cycles(&cfg, 8, 8, 1000);
        assert!(is < os, "input-stationary {is} vs output-stationary {os}");
        assert!(is < ws, "input-stationary {is} vs weight-stationary {ws}");
    }

    #[test]
    fn three_dataflows_agree_functionally() {
        let cfg = ArrayConfig::new(4, 3).unwrap();
        let a = tensor(&[6, 7], |ix| ((ix[0] + 2 * ix[1]) % 5) as f32 - 2.0);
        let b = tensor(&[7, 5], |ix| ((3 * ix[0] + ix[1]) % 4) as f32 * 0.3);
        let os = crate::gemm::simulate(&cfg, &a, &b).unwrap();
        let ws = crate::ws_gemm::simulate(&cfg, &a, &b).unwrap();
        let is = simulate(&cfg, &a, &b).unwrap();
        assert!(os.output().max_abs_diff(ws.output()).unwrap() < 1e-5);
        assert!(os.output().max_abs_diff(is.output()).unwrap() < 1e-5);
    }

    #[test]
    fn macs_accounting() {
        let cfg = ArrayConfig::new(4, 4).unwrap();
        let a = tensor(&[6, 5], |_| 1.0);
        let b = tensor(&[5, 3], |_| 1.0);
        let sim = simulate(&cfg, &a, &b).unwrap();
        assert_eq!(sim.macs(), 6 * 5 * 3);
        assert_eq!(sim.busy_pe_cycles(), sim.macs());
    }

    #[test]
    fn bad_operands_rejected() {
        let cfg = ArrayConfig::new(4, 4).unwrap();
        let a = tensor(&[2, 3], |_| 0.0);
        let b = tensor(&[4, 2], |_| 0.0);
        assert!(simulate(&cfg, &a, &b).is_err());
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use fuseconv_tensor::gemm::matmul;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        /// Input-stationary simulation is functionally exact and matches
        /// its closed form for arbitrary shapes and array sizes.
        #[test]
        fn simulator_matches_golden_and_analytic(
            m in 1usize..10,
            k in 1usize..10,
            n in 1usize..10,
            rows in 1usize..6,
            cols in 1usize..6,
            seed in 0u64..500,
        ) {
            let cfg = ArrayConfig::new(rows, cols).unwrap();
            let mut state = seed.wrapping_mul(0xA24BAED4963EE407).wrapping_add(5);
            let mut next = move || {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                ((state >> 40) as f32 / (1u32 << 24) as f32) - 0.5
            };
            let a = Tensor::from_fn(&[m, k], |_| next()).unwrap();
            let b = Tensor::from_fn(&[k, n], |_| next()).unwrap();
            let sim = simulate(&cfg, &a, &b).unwrap();
            let gold = matmul(&a, &b).unwrap();
            prop_assert!(sim.output().max_abs_diff(&gold).unwrap() < 1e-4);
            prop_assert_eq!(sim.cycles(), analytic_cycles(&cfg, m, k, n));
        }
    }
}
